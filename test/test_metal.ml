(* metal language: parsing the paper's checkers, compilation, options,
   error handling. *)

let t = Alcotest.test_case

let parse_one src =
  match Metal_parse.parse ~file:"<m>" src with
  | [ m ] -> m
  | _ -> Alcotest.fail "expected one sm"

let suite =
  [
    t "Figure 1 free checker parses" `Quick (fun () ->
        let m = parse_one Free_checker.source in
        Alcotest.(check string) "name" "free_checker" m.Metal_ast.sm_name;
        Alcotest.(check (option string)) "svar" (Some "v") (Metal_ast.svar_of m);
        Alcotest.(check int) "clauses" 2 (List.length m.Metal_ast.sm_clauses));
    t "Figure 3 lock checker parses with branch dest" `Quick (fun () ->
        let m = parse_one Lock_checker.source in
        let first_rule =
          match m.Metal_ast.sm_clauses with
          | { c_rules = r :: _; _ } :: _ -> r
          | _ -> Alcotest.fail "no rules"
        in
        match first_rule.Metal_ast.r_dest with
        | Metal_ast.Dbranch (Metal_ast.Dvar ("l", "locked"), Metal_ast.Dvar ("l", "stop")) -> ()
        | _ -> Alcotest.fail "expected { true = l.locked, false = l.stop }");
    t "state decl vs plain decl" `Quick (fun () ->
        let m =
          parse_one
            "sm s { state decl any_pointer v; decl any_expr x, y; start: { f(v) } ==> v.used; }"
        in
        Alcotest.(check int) "decls" 2 (List.length m.Metal_ast.sm_decls);
        Alcotest.(check (option string)) "svar" (Some "v") (Metal_ast.svar_of m);
        Alcotest.(check int) "holes" 3 (List.length (Metal_ast.holes_of m)));
    t "concrete C type hole" `Quick (fun () ->
        let m = parse_one "sm s { decl int n; decl struct foo *p; start: { f(n) } ==> done_; }" in
        match m.Metal_ast.sm_decls with
        | [ { d_hole = Holes.Concrete t1; _ }; { d_hole = Holes.Concrete t2; _ } ] ->
            Alcotest.(check bool) "int" true (Ctyp.equal t1 Ctyp.int_);
            Alcotest.(check bool) "struct ptr" true
              (Ctyp.equal t2 (Ctyp.Ptr (Ctyp.Struct "foo")))
        | _ -> Alcotest.fail "expected two concrete holes");
    t "multiple rules separated by |" `Quick (fun () ->
        let m = parse_one Free_checker.source in
        match m.Metal_ast.sm_clauses with
        | [ _; { c_rules; _ } ] -> Alcotest.(check int) "two rules" 2 (List.length c_rules)
        | _ -> Alcotest.fail "bad clauses");
    t "action-only rule" `Quick (fun () ->
        let m = parse_one {|sm s { start: { f() } ==> { err("boom"); }; }|} in
        match m.Metal_ast.sm_clauses with
        | [ { c_rules = [ { r_dest = Metal_ast.Dnone; r_actions = [ a ]; _ } ]; _ } ] ->
            Alcotest.(check string) "action" "err" a.Metal_ast.ac_name
        | _ -> Alcotest.fail "expected action-only rule");
    t "callout pattern ${...}" `Quick (fun () ->
        let m =
          parse_one
            {|sm s { decl any_fn_call fn; decl any_arguments args;
                start: { fn(args) } && ${ mc_is_call_to(fn, "gets") } ==> flagged; }|}
        in
        match m.Metal_ast.sm_clauses with
        | [ { c_rules = [ { r_pattern = Pattern.Pand (_, Pattern.Pcallout _); _ } ]; _ } ] -> ()
        | _ -> Alcotest.fail "expected conjunction with callout");
    t "degenerate callouts ${0} ${1}" `Quick (fun () ->
        let m = parse_one "sm s { start: ${1} && ${0} ==> next; }" in
        match m.Metal_ast.sm_clauses with
        | [ { c_rules = [ { r_pattern = Pattern.Pand (Pattern.Palways, Pattern.Pnever); _ } ]; _ } ] -> ()
        | _ -> Alcotest.fail "expected Palways && Pnever");
    t "end_of_path pattern" `Quick (fun () ->
        let m = parse_one "sm s { state decl any_pointer l; l.held: $end_of_path$ ==> l.stop; }" in
        match m.Metal_ast.sm_clauses with
        | [ { c_rules = [ { r_pattern = Pattern.Pend_of_path; _ } ]; _ } ] -> ()
        | _ -> Alcotest.fail "expected end_of_path");
    t "options parse" `Quick (fun () ->
        let m =
          parse_one
            "sm s { option no_auto_kill; option byval_restore; start: { f() } ==> go; }"
        in
        Alcotest.(check (list string)) "options" [ "no_auto_kill"; "byval_restore" ]
          m.Metal_ast.sm_options);
    t "compile sets flags from options" `Quick (fun () ->
        let sm =
          List.hd
            (Metal_compile.load ~file:"<m>"
               "sm s { option no_auto_kill; option no_synonyms; start: { f() } ==> go; }")
        in
        Alcotest.(check bool) "auto_kill off" false sm.Sm.auto_kill;
        Alcotest.(check bool) "synonyms off" false sm.Sm.track_synonyms);
    t "compile rejects wrong state variable" `Quick (fun () ->
        match
          Metal_compile.load ~file:"<m>"
            "sm s { state decl any_pointer v; start: { f(v) } ==> w.used; }"
        with
        | exception Metal_compile.Compile_error _ -> ()
        | _ -> Alcotest.fail "expected compile error");
    t "compile rejects unknown action" `Quick (fun () ->
        let sms =
          Metal_compile.load ~file:"<m>"
            {|sm s { start: { f() } ==> { frobnicate_xyz("a"); }; }|}
        in
        (* the error surfaces when the action runs; fault containment
           turns it into a degraded root instead of a crashed run *)
        let result =
          Engine.check_source ~file:"t.c" "int g(void) { f(); return 0; }" sms
        in
        match result.Engine.degraded with
        | [ d ] ->
            Alcotest.(check string) "root" "g" d.Engine.d_root;
            Alcotest.(check bool) "names the exception" true
              (let w = d.Engine.d_reason in
               let nl = String.length "Compile_error" and wl = String.length w in
               let rec at i =
                 i + nl <= wl
                 && (String.equal "Compile_error" (String.sub w i nl) || at (i + 1))
               in
               at 0)
        | ds -> Alcotest.failf "expected one degraded root, got %d" (List.length ds));
    t "parse error has location" `Quick (fun () ->
        match Metal_parse.parse ~file:"<m>" "sm s { start: ==> x; }" with
        | exception Metal_parse.Metal_error (loc, _) ->
            Alcotest.(check bool) "line" true (loc.Srcloc.line >= 1)
        | _ -> Alcotest.fail "expected Metal_error");
    t "two sms in one file" `Quick (fun () ->
        let ms =
          Metal_parse.parse ~file:"<m>"
            "sm one { start: { f() } ==> a; }  sm two { start: { g() } ==> b; }"
        in
        Alcotest.(check int) "two" 2 (List.length ms));
    t "first clause defines the start state" `Quick (fun () ->
        let sm =
          List.hd
            (Metal_compile.load ~file:"<m>" Intr_checker.source)
        in
        Alcotest.(check string) "start" "is_enabled" sm.Sm.start_state);
    t "set_global action updates the global machine" `Quick (fun () ->
        let sms =
          Metal_compile.load ~file:"<m>"
            {|sm g {
               calm:
                 { alarm() } ==> { set_global("panicking"); }
               ;
               panicking:
                 { step() } ==> { err("stepping while panicking"); }
               ;
             }|}
        in
        let r =
          Engine.check_source ~file:"t.c" "int f(void) { alarm(); step(); return 0; }" sms
        in
        Alcotest.(check int) "fired in new gstate" 1 (List.length r.Engine.reports));
    t "pretty-print round trip for every built-in checker" `Quick (fun () ->
        List.iter
          (fun e ->
            match e.Registry.e_source with
            | None -> ()
            | Some src ->
                let parsed = Metal_parse.parse ~file:"<m>" src in
                List.iter
                  (fun m ->
                    let printed = Metal_pp.to_string m in
                    let reparsed =
                      match Metal_parse.parse ~file:"<pp>" printed with
                      | [ m2 ] -> m2
                      | _ -> Alcotest.fail "round trip lost the sm"
                    in
                    Alcotest.(check string)
                      (e.Registry.e_name ^ " name")
                      m.Metal_ast.sm_name reparsed.Metal_ast.sm_name;
                    Alcotest.(check int)
                      (e.Registry.e_name ^ " clauses")
                      (List.length m.Metal_ast.sm_clauses)
                      (List.length reparsed.Metal_ast.sm_clauses);
                    Alcotest.(check int)
                      (e.Registry.e_name ^ " rules")
                      (List.length
                         (List.concat_map
                            (fun (c : Metal_ast.clause) -> c.c_rules)
                            m.Metal_ast.sm_clauses))
                      (List.length
                         (List.concat_map
                            (fun (c : Metal_ast.clause) -> c.c_rules)
                            reparsed.Metal_ast.sm_clauses));
                    (* and the reprinted checker still compiles and works *)
                    ignore (Metal_compile.compile reparsed))
                  parsed)
          (Registry.all ()));
    t "reprinted free checker finds the same bugs" `Quick (fun () ->
        let m = List.hd (Metal_parse.parse ~file:"<m>" Free_checker.source) in
        let printed = Metal_pp.to_string m in
        let sm = List.hd (Metal_compile.load ~file:"<pp>" printed) in
        let r =
          Engine.check_source ~file:"t.c" "int f(int *p) { kfree(p); return *p; }"
            [ sm ]
        in
        Alcotest.(check int) "same error" 1 (List.length r.Engine.reports));
    t "all registry sources compile" `Quick (fun () ->
        List.iter
          (fun e -> ignore (e.Registry.e_make ()))
          (Registry.all ()));
    t "checker sizes match the paper's 10-200 line claim" `Quick (fun () ->
        List.iter
          (fun e ->
            let loc = Registry.loc e in
            if Option.is_some e.Registry.e_source then
              Alcotest.(check bool)
                (e.Registry.e_name ^ " size")
                true
                (loc >= 3 && loc <= 200))
          (Registry.all ()));
  ]
