(* Triage sessions: export/import round trip, verdict application. *)

let t = Alcotest.test_case

let mk ?(msg = "m") ?(func = "f") ?var ?rule () =
  Report.make ~checker:"c" ~message:msg
    ~loc:(Srcloc.make ~file:"x.c" ~line:5 ~col:1)
    ~func ~file:"x.c" ?var ?rule ()

let suite =
  [
    t "export lists all reports with undecided marks" `Quick (fun () ->
        let reports = [ mk ~msg:"a" (); mk ~msg:"b" () ] in
        let text = Triage.export reports in
        let lines =
          List.filter
            (fun l -> String.length l > 0 && l.[0] <> '#')
            (String.split_on_char '\n' text)
        in
        Alcotest.(check int) "two entries" 2 (List.length lines);
        List.iter
          (fun l -> Alcotest.(check char) "mark" '?' l.[0])
          lines);
    t "import round trip attaches verdicts" `Quick (fun () ->
        let r1 = mk ~msg:"real one" () and r2 = mk ~msg:"noise" () in
        let text = Triage.export [ r1; r2 ] in
        (* mark the first R, second F *)
        let marked =
          String.split_on_char '\n' text
          |> List.map (fun l ->
                 if String.length l = 0 || l.[0] = '#' then l
                 else if
                   String.length l > 10
                   &&
                   let n = String.length l and pat = "real one" in
                   let m = String.length pat in
                   let rec go i =
                     i + m <= n && (String.equal (String.sub l i m) pat || go (i + 1))
                   in
                   go 0
                 then "R" ^ String.sub l 1 (String.length l - 1)
                 else "F" ^ String.sub l 1 (String.length l - 1))
          |> String.concat "\n"
        in
        let entries = Triage.import ~reports:[ r1; r2 ] marked in
        (match entries with
        | [ e1; e2 ] ->
            Alcotest.(check bool) "r1 real" true (e1.Triage.verdict = Triage.Real);
            Alcotest.(check bool) "r2 fp" true
              (e2.Triage.verdict = Triage.False_positive)
        | _ -> Alcotest.fail "two entries expected"));
    t "missing entries come back undecided" `Quick (fun () ->
        let r1 = mk ~msg:"present" () and r2 = mk ~msg:"absent" () in
        let text = Triage.export [ r1 ] in
        let entries = Triage.import ~reports:[ r1; r2 ] text in
        match entries with
        | [ _; e2 ] ->
            Alcotest.(check bool) "undecided" true (e2.Triage.verdict = Triage.Undecided)
        | _ -> Alcotest.fail "two entries expected");
    t "malformed lines raise with line numbers" `Quick (fun () ->
        (match Triage.import ~reports:[] "garbage line without pipes" with
        | exception Triage.Malformed (1, _) -> ()
        | _ -> Alcotest.fail "expected Malformed");
        match Triage.import ~reports:[] "X|a|b|c|d|e|f" with
        | exception Triage.Malformed (1, _) -> ()
        | _ -> Alcotest.fail "expected Malformed for bad mark");
    t "apply folds false positives into history and counts rules" `Quick (fun () ->
        let fp = mk ~msg:"fp" ~rule:"ruleA" () in
        let real = mk ~msg:"real" ~rule:"ruleA" () in
        let other = mk ~msg:"other" ~rule:"ruleB" () in
        let entries =
          [
            { Triage.verdict = Triage.False_positive; report = fp };
            { Triage.verdict = Triage.Real; report = real };
            { Triage.verdict = Triage.Undecided; report = other };
          ]
        in
        let db, stats = Triage.apply entries History.empty in
        Alcotest.(check int) "one suppressed" 1 (History.size db);
        Alcotest.(check bool) "fp suppressed" true (History.mem db fp);
        Alcotest.(check bool) "real kept" false (History.mem db real);
        Alcotest.(check (list (triple string int int))) "rule stats"
          [ ("ruleA", 1, 1); ("ruleB", 0, 0) ]
          stats);
    t "end-to-end: triaged FPs vanish from the next run" `Quick (fun () ->
        let src = "int f(int *p) { kfree(p); return *p; }" in
        let run () =
          (Engine.check_source ~file:"t.c" src [ Free_checker.checker () ]).Engine.reports
        in
        let r1 = run () in
        let text = Triage.export r1 in
        (* user marks everything as FP *)
        let marked =
          String.concat "\n"
            (List.map
               (fun l ->
                 if String.length l > 0 && l.[0] = '?' then
                   "F" ^ String.sub l 1 (String.length l - 1)
                 else l)
               (String.split_on_char '\n' text))
        in
        let entries = Triage.import ~reports:r1 marked in
        let db, _ = Triage.apply entries History.empty in
        let kept, suppressed = History.suppress db (run ()) in
        Alcotest.(check int) "all suppressed" 0 (List.length kept);
        Alcotest.(check int) "count" (List.length r1) suppressed);
  ]
