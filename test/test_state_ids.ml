(* Hash-consed expression identity ([Exprid]) and integer-coded tuple
   state: ids are equality tokens for rendered keys (same id iff same
   key, in both modes), the base table is shared read-only across
   domains, and [--no-state-ids] (the string-keyed A/B baseline) is a
   pure cost model — reports are byte-identical to id mode at any job
   count, warm caches replay across the mode boundary (the flag is
   excluded from the options digest), and per-root fault containment
   rolls back int-keyed journal state exactly like string state. *)

let t = Alcotest.test_case
let e s = Cparse.expr_of_string ~file:"<t>" s

let temp_dir () =
  let f = Filename.temp_file "xgcc_test_state_ids" "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let free () = [ Free_checker.checker () ]
let report_lines (r : Engine.result) = List.map Report.to_string r.Engine.reports
let strings_options = { Engine.default_options with state_ids = false }
let sg_of src = Supergraph.build [ Cparse.parse_tunit ~file:"ids.c" src ]

let gen_sg ~seed =
  Supergraph.build
    (Gen.generate_files ~seed ~n_files:3 ~funcs_per_file:8 ~bug_rate:0.5
    |> List.map (fun (file, g) -> Cparse.parse_tunit ~file g.Gen.source))

let src =
  "int f(int *p, int a) {\n\
  \  int x = a + 1;\n\
  \  if (a) { kfree(p); }\n\
  \  return *p + x;\n\
   }\n"

(* A pool with both program expressions and synthesized trees, including
   the literal pair whose keys collided before contents were escaped. *)
let pool =
  [ "p"; "a"; "*p"; "a + 1"; "kfree(p)"; "q->f[2]"; "'a'"; "97";
    {|f("x\",s\"y")|}; {|f("x", "y")|} ]

let table_tests =
  [
    t "ids are key identity in both modes" `Quick (fun () ->
        let sg = sg_of src in
        List.iter
          (fun strings ->
            let ctx = Exprid.make_ctx ~strings sg.Supergraph.ids in
            let mode = if strings then "strings" else "ids" in
            List.iter
              (fun s1 ->
                List.iter
                  (fun s2 ->
                    let e1 = e s1 and e2 = e s2 in
                    Alcotest.(check bool)
                      (Printf.sprintf "id eq iff key eq (%s): %s / %s" mode s1
                         s2)
                      (String.equal (Cast.key_of_expr e1) (Cast.key_of_expr e2))
                      (Exprid.id ctx e1 = Exprid.id ctx e2))
                  pool)
              pool)
          [ false; true ]);
    t "ids round-trip to rendered keys" `Quick (fun () ->
        let sg = sg_of src in
        let ctx = Exprid.make_ctx sg.Supergraph.ids in
        List.iter
          (fun s ->
            let ex = e s in
            let id = Exprid.id ctx ex in
            Alcotest.(check string)
              (Printf.sprintf "key of id: %s" s)
              (Cast.key_of_expr ex) (Exprid.key ctx id);
            Alcotest.(check (option string))
              (Printf.sprintf "find_key: %s" s)
              (Some (Cast.key_of_expr ex))
              (Exprid.find_key ctx id))
          pool;
        (* program nodes resolve through the dense base table *)
        Alcotest.(check bool) "program expr has base id" true
          (Exprid.id ctx (e "a + 1") < Exprid.n sg.Supergraph.ids));
    t "base ids are stable across domains" `Quick (fun () ->
        (* the base table is frozen by Supergraph.build and shared
           read-only: every worker domain's private ctx must assign a
           program expression the same id *)
        let sg = sg_of src in
        let ids_in_domain () =
          Domain.spawn (fun () ->
              let ctx = Exprid.make_ctx sg.Supergraph.ids in
              List.map (fun s -> Exprid.id ctx (e s)) pool)
        in
        let d1 = ids_in_domain () and d2 = ids_in_domain () in
        let v1 = Domain.join d1 and v2 = Domain.join d2 in
        let ctx = Exprid.make_ctx sg.Supergraph.ids in
        let v0 = List.map (fun s -> Exprid.id ctx (e s)) pool in
        List.iter2
          (fun (a, b) s ->
            (* overflow ids are context-private by design; base ids (all
               the program expressions) must agree everywhere *)
            if a < Exprid.n sg.Supergraph.ids || b < Exprid.n sg.Supergraph.ids
            then Alcotest.(check int) (Printf.sprintf "base id of %s" s) a b)
          (List.combine v0 v1) pool;
        List.iter2
          (fun (a, b) s ->
            if a < Exprid.n sg.Supergraph.ids || b < Exprid.n sg.Supergraph.ids
            then Alcotest.(check int) (Printf.sprintf "base id of %s (d2)" s) a b)
          (List.combine v1 v2) pool);
  ]

let identity_tests =
  [
    t "strings and ids reports byte-identical at -j1/-j2" `Quick (fun () ->
        let sg = gen_sg ~seed:17 in
        let ids_r = Engine.run sg (free ()) in
        List.iter
          (fun jobs ->
            let str_r = Engine.run ~options:strings_options ~jobs sg (free ()) in
            Alcotest.(check (list string))
              (Printf.sprintf "reports (strings j=%d)" jobs)
              (report_lines ids_r) (report_lines str_r);
            Alcotest.(check (list (triple string int int)))
              (Printf.sprintf "counters (strings j=%d)" jobs)
              ids_r.Engine.counters str_r.Engine.counters)
          [ 1; 2 ];
        let ids_j2 = Engine.run ~jobs:2 sg (free ()) in
        Alcotest.(check (list string))
          "ids -j2 = ids -j1" (report_lines ids_r) (report_lines ids_j2));
    t "warm cache replays across the state-ids boundary" `Quick (fun () ->
        (* [state_ids] is a representation choice, not an analysis
           option: it is excluded from the options digest, so summaries
           written by an id-mode run must be replayed verbatim by a
           strings-mode run (and vice versa) instead of being orphaned. *)
        Alcotest.(check string)
          "digest ignores state_ids"
          (Engine.options_digest Engine.default_options)
          (Engine.options_digest strings_options);
        let sg = gen_sg ~seed:19 in
        let store_over dir =
          Summary_store.create ~dir
            ~ext_keys:
              (Summary_store.ext_keys_of
                 ~options_digest:(Engine.options_digest Engine.default_options)
                 ~sources:[ "free" ])
            ()
        in
        let dir = temp_dir () in
        let uncached = Engine.run sg (free ()) in
        let cold = Engine.run ~cache:(store_over dir) sg (free ()) in
        let warm_store = store_over dir in
        let warm =
          Engine.run ~options:strings_options ~cache:warm_store sg (free ())
        in
        Alcotest.(check (list string))
          "cold ids = uncached" (report_lines uncached) (report_lines cold);
        Alcotest.(check (list string))
          "warm strings = uncached" (report_lines uncached) (report_lines warm);
        let st = Summary_store.stats warm_store in
        Alcotest.(check int)
          "strings warm run recomputes nothing" 0
          st.Summary_store.roots_recomputed;
        Alcotest.(check bool)
          "strings warm run replays id-written roots" true
          (st.Summary_store.roots_replayed > 0));
  ]

let explosion_src =
  "int f(int *p) { kfree(p); return *p; }\n\
   int h(int *r) { kfree(r); return *r; }\n"

let explode_fn =
  "int explode(int a, int b, int c, int d) {\n\
  \  int *p1; int *p2; int *p3; int *p4;\n\
  \  if (a) { kfree(p1); } if (b) { kfree(p2); }\n\
  \  if (c) { kfree(p3); } if (d) { kfree(p4); }\n\
  \  if (a) { b = 1; } if (b) { c = 1; } if (c) { d = 1; } if (d) { a = 1; }\n\
  \  return *p1 + *p2 + *p3 + *p4;\n\
   }\n"

let rollback_tests =
  [
    t "degraded root rolls back int-keyed journals at -j1/-j2" `Quick
      (fun () ->
        (* report dedup and summary sources are keyed by interned ints;
           rollback must unwind those journal entries so healthy roots'
           output matches a run that never had the bad root, in both
           representation modes *)
        let budgeted = { Engine.default_options with max_nodes_per_root = 40 } in
        let healthy = Engine.run (sg_of explosion_src) (free ()) in
        Alcotest.(check int) "baseline sanity" 0
          (List.length healthy.Engine.degraded);
        let faulty_sg = sg_of (explosion_src ^ explode_fn) in
        List.iter
          (fun (options, mode) ->
            List.iter
              (fun jobs ->
                let r = Engine.run ~options ~jobs faulty_sg (free ()) in
                Alcotest.(check (list string))
                  (Printf.sprintf "degraded root only (%s j=%d)" mode jobs)
                  [ "explode" ]
                  (List.map
                     (fun (d : Engine.degraded) -> d.Engine.d_root)
                     r.Engine.degraded);
                Alcotest.(check (list string))
                  (Printf.sprintf "healthy roots identical (%s j=%d)" mode jobs)
                  (report_lines healthy) (report_lines r))
              [ 1; 2 ])
          [
            ({ budgeted with state_ids = true }, "ids");
            ({ budgeted with state_ids = false }, "strings");
          ]);
  ]

let suite = table_tests @ identity_tests @ rollback_tests
