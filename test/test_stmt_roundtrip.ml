(* Property: whole functions survive print → reparse, and the engine sees
   the same program either way. The statement generator covers every
   statement form the CFG builder lowers. *)

module G = QCheck2.Gen

let var_gen = G.map (fun c -> Printf.sprintf "v%c" c) (G.char_range 'a' 'e')

let leaf_expr_gen =
  G.oneof
    [
      G.map (fun n -> Cast.intlit (Int64.of_int (abs n mod 100))) G.small_int;
      G.map Cast.ident var_gen;
    ]

let expr_gen =
  G.(
    sized @@ fix (fun self n ->
        if n <= 1 then leaf_expr_gen
        else
          oneof
            [
              leaf_expr_gen;
              map2
                (fun l r -> Cast.mk_expr (Cast.Ebinary (Cast.Add, l, r)))
                (self (n / 2)) (self (n / 2));
              map2
                (fun l r -> Cast.mk_expr (Cast.Ebinary (Cast.Lt, l, r)))
                (self (n / 2)) (self (n / 2));
              map
                (fun e -> Cast.mk_expr (Cast.Ecall (Cast.ident "g", [ e ])))
                (self (n - 1));
              map2
                (fun x r -> Cast.mk_expr (Cast.Eassign (None, Cast.ident x, r)))
                var_gen (self (n - 1));
            ]))

let stmt_gen =
  G.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              map (fun e -> Cast.mk_stmt (Cast.Sexpr e)) expr_gen;
              map (fun e -> Cast.mk_stmt (Cast.Sreturn (Some e))) expr_gen;
              return (Cast.mk_stmt Cast.Snull);
            ]
        in
        if n <= 1 then leaf
        else
          oneof
            [
              leaf;
              map2
                (fun c t -> Cast.mk_stmt (Cast.Sif (c, t, None)))
                expr_gen (self (n / 2));
              map3
                (fun c t e -> Cast.mk_stmt (Cast.Sif (c, t, Some e)))
                expr_gen (self (n / 2)) (self (n / 2));
              map2
                (fun c b -> Cast.mk_stmt (Cast.Swhile (c, b)))
                expr_gen (self (n / 2));
              map2
                (fun b c -> Cast.mk_stmt (Cast.Sdo (b, c)))
                (self (n / 2)) expr_gen;
              map
                (fun ss -> Cast.mk_stmt (Cast.Sblock ss))
                (list_size (int_range 1 3) (self (n / 3)));
              map2
                (fun g b ->
                  Cast.mk_stmt
                    (Cast.Sswitch
                       ( Cast.ident "va",
                         [
                           { Cast.case_guard = Some (Int64.of_int (abs g mod 10)); case_body = [ b ] };
                           { Cast.case_guard = None; case_body = [ Cast.mk_stmt Cast.Sbreak ] };
                         ] )))
                small_int (self (n / 2));
            ]))

(* The printer renders a function body from a block; wrap the statement. *)
let fundef_of_stmt s =
  {
    Cast.fname = "rt_fn";
    freturn = Ctyp.int_;
    fparams = [ ("va", Ctyp.int_); ("vb", Ctyp.int_); ("vc", Ctyp.int_);
                ("vd", Ctyp.int_); ("ve", Ctyp.int_) ];
    fvariadic = false;
    fbody = Cast.mk_stmt (Cast.Sblock [ s; Cast.mk_stmt (Cast.Sreturn (Some (Cast.intlit 0L))) ]);
    floc = Srcloc.dummy;
    ffile = "rt.c";
    fstatic = false;
  }

(* The printer may brace a then-branch to avoid the dangling-else trap;
   compare modulo singleton-block wrapping. *)
let rec normalize (s : Cast.stmt) : Cast.stmt =
  let mk = Cast.mk_stmt in
  match s.snode with
  | Cast.Sblock [ s1 ] -> normalize s1
  | Cast.Sblock ss -> mk (Cast.Sblock (List.map normalize ss))
  | Cast.Sif (c, t, e) -> mk (Cast.Sif (c, normalize t, Option.map normalize e))
  | Cast.Swhile (c, b) -> mk (Cast.Swhile (c, normalize b))
  | Cast.Sdo (b, c) -> mk (Cast.Sdo (normalize b, c))
  | Cast.Sfor (i, c, st, b) ->
      mk (Cast.Sfor (Option.map normalize i, c, st, normalize b))
  | Cast.Sswitch (e, cases) ->
      mk
        (Cast.Sswitch
           ( e,
             List.map
               (fun (cs : Cast.case) ->
                 { cs with Cast.case_body = List.map normalize cs.case_body })
               cases ))
  | Cast.Slabel (l, b) -> mk (Cast.Slabel (l, normalize b))
  | _ -> s

let roundtrip_stmt =
  QCheck2.Test.make ~name:"function print/reparse round-trip" ~count:300 stmt_gen
    (fun s ->
      let f = fundef_of_stmt s in
      let printed = Format.asprintf "%a" Cprint.pp_fundef f in
      match (Cparse.parse_tunit ~file:"rt.c" printed).Cast.tu_globals with
      | [ Cast.Gfun f2 ] ->
          Cast.equal_stmt (normalize f.Cast.fbody) (normalize f2.Cast.fbody)
      | _ -> false)

let engine_agrees =
  (* print/reparse must not change what the engine computes *)
  QCheck2.Test.make ~name:"engine results stable under reprinting" ~count:60
    QCheck2.Gen.(int_range 1 10000)
    (fun seed ->
      let g = Gen.generate ~seed ~n_funcs:5 ~bug_rate:0.6 in
      let tu = Cparse.parse_tunit ~file:"g.c" g.Gen.source in
      let printed = Cprint.tunit_to_string tu in
      let tu2 = Cparse.parse_tunit ~file:"g2.c" printed in
      let reports tu =
        List.sort compare
          (List.map
             (fun (r : Report.t) -> (r.Report.func, r.Report.checker, r.Report.message))
             (Engine.run (Supergraph.build [ tu ])
                [ Free_checker.checker (); Lock_checker.checker ();
                  Intr_checker.checker () ])
               .Engine.reports)
      in
      reports tu = reports tu2)

let suite =
  [ QCheck_alcotest.to_alcotest roundtrip_stmt; QCheck_alcotest.to_alcotest engine_agrees ]
