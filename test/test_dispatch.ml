(* Compiled transition dispatch: head-constructor classification, the
   pruned callsite model, and the A/B oracle — the indexed engine must
   produce byte-identical output to the naive full scan on every corpus,
   at any job count, and through a warm persistent cache. *)

let t = Alcotest.test_case

let e s = Cparse.expr_of_string ~file:"<t>" s
let p s = Pattern.Pexpr (e s)

let v_hole = [ ("v", Holes.Any_pointer) ]

let temp_dir () =
  let f = Filename.temp_file "xgcc_test_dispatch" "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let sg_of src = Supergraph.build [ Cparse.parse_tunit ~file:"dispatch.c" src ]

let all_checkers () = List.map (fun ex -> ex.Registry.e_make ()) (Registry.all ())

let naive = { Engine.default_options with Engine.dispatch = false }

(* emission-order lines: the contract is byte-identical output, not
   merely same-set *)
let output_lines (r : Engine.result) =
  List.map Report.to_string r.Engine.reports
  @ List.map
      (fun (rule, ex, cx) -> Printf.sprintf "%s %d %d" rule ex cx)
      r.Engine.counters

let shapes_of = function
  | Dispatch.Rooted { shapes; _ } -> List.map Block_heads.shape_name shapes
  | Dispatch.Wildcard -> Alcotest.fail "expected Rooted, got Wildcard"

let calls_of = function
  | Dispatch.Rooted { calls; _ } -> calls
  | Dispatch.Wildcard -> Alcotest.fail "expected Rooted, got Wildcard"

let is_wild = function Dispatch.Wildcard -> true | Dispatch.Rooted _ -> false

let classification_tests =
  [
    t "named call classifies by callee" `Quick (fun () ->
        let c = Dispatch.classify ~holes:v_hole (p "kfree(v)") in
        Alcotest.(check (list string)) "calls" [ "kfree" ] (calls_of c);
        Alcotest.(check (list string)) "no shapes" [] (shapes_of c));
    t "deref pattern classifies as deref shape" `Quick (fun () ->
        let c = Dispatch.classify ~holes:v_hole (p "*v") in
        Alcotest.(check (list string)) "shapes" [ "deref" ] (shapes_of c));
    t "assignment-rooted pattern classifies as assign" `Quick (fun () ->
        let holes = [ ("v", Holes.Any_pointer); ("w", Holes.Any_expr) ] in
        let c = Dispatch.classify ~holes (p "v = w") in
        Alcotest.(check (list string)) "shapes" [ "assign" ] (shapes_of c));
    t "bare hole is a wildcard" `Quick (fun () ->
        Alcotest.(check bool) "wild" true
          (is_wild (Dispatch.classify ~holes:v_hole (p "v"))));
    t "disjunction unions heads across shapes" `Quick (fun () ->
        let c =
          Dispatch.classify ~holes:v_hole
            (Pattern.Por (p "*v", p "kfree(v)"))
        in
        Alcotest.(check (list string)) "shapes" [ "deref" ] (shapes_of c);
        Alcotest.(check (list string)) "calls" [ "kfree" ] (calls_of c));
    t "callout-only pattern is a wildcard" `Quick (fun () ->
        Alcotest.(check bool) "wild" true
          (is_wild
             (Dispatch.classify ~holes:v_hole
                (Pattern.Pcallout (e "mc_is_ident(v)")))));
    t "conjunction with a callout narrows to the call" `Quick (fun () ->
        let c =
          Dispatch.classify ~holes:v_hole
            (Pattern.Pand (Pattern.Pcallout (e "mc_is_ident(v)"), p "kfree(v)"))
        in
        Alcotest.(check (list string)) "calls" [ "kfree" ] (calls_of c));
    t "any_fn_call hole matches any call but only calls" `Quick (fun () ->
        let holes =
          [ ("fn", Holes.Any_fn_call); ("args", Holes.Any_arguments) ]
        in
        match Dispatch.classify ~holes (p "fn(args)") with
        | Dispatch.Rooted { shapes; calls; any_call } ->
            Alcotest.(check (list string)) "no named calls" [] calls;
            Alcotest.(check bool) "any_call" true any_call;
            Alcotest.(check int) "no shapes" 0 (List.length shapes)
        | Dispatch.Wildcard -> Alcotest.fail "expected Rooted");
    t "never/end-of-path patterns can match no node" `Quick (fun () ->
        match Dispatch.classify ~holes:[] Pattern.Pend_of_path with
        | Dispatch.Rooted { shapes = []; calls = []; any_call = false } -> ()
        | _ -> Alcotest.fail "expected the empty Rooted classification");
  ]

let shape_walk_tests =
  [
    t "comma expression's value can come from a call" `Quick (fun () ->
        Alcotest.(check bool) "comma" true
          (Dispatch.expr_shape_is_call (e "(x, f(y))"));
        Alcotest.(check bool) "left call only" false
          (Dispatch.expr_shape_is_call (e "(f(y), x)")));
    t "conditional arms can come from a call" `Quick (fun () ->
        Alcotest.(check bool) "both arms" true
          (Dispatch.expr_shape_is_call (e "c ? f(x) : g(x)"));
        Alcotest.(check bool) "one arm suffices" true
          (Dispatch.expr_shape_is_call (e "c ? f(x) : y"));
        Alcotest.(check bool) "no arm" false
          (Dispatch.expr_shape_is_call (e "c ? x : y")));
    t "assign and cast chains look through to the call" `Quick (fun () ->
        Alcotest.(check bool) "assign of comma" true
          (Dispatch.expr_shape_is_call (e "p = (x, f(y))"));
        Alcotest.(check bool) "cast" true
          (Dispatch.expr_shape_is_call (e "(int *) f(y)"));
        Alcotest.(check bool) "binary is not a call" false
          (Dispatch.expr_shape_is_call (e "f(x) + 1")));
    t "call_model keeps call disjuncts, drops bare holes" `Quick (fun () ->
        match Dispatch.call_model (Pattern.Por (p "kfree(v)", p "v")) with
        | Some (Pattern.Pexpr ce) ->
            Alcotest.(check bool) "kept the call side" true
              (Dispatch.expr_shape_is_call ce)
        | _ -> Alcotest.fail "expected the call disjunct alone");
    t "call_model keeps conjunctions whole, drops non-calls" `Quick (fun () ->
        (match
           Dispatch.call_model
             (Pattern.Pand (Pattern.Pcallout (e "mc_is_ident(v)"), p "kfree(v)"))
         with
        | Some (Pattern.Pand _) -> ()
        | _ -> Alcotest.fail "expected the conjunction kept whole");
        Alcotest.(check bool) "deref does not model a call" true
          (Dispatch.call_model (p "*v") = None);
        Alcotest.(check bool) "comma-call models" true
          (Dispatch.pattern_models_call (p "(x, f(y))")))
  ]

(* The satellite-1 regression at the engine level: a bare hole sitting in
   a disjunction with a call pattern must not suppress following a
   defined callee. With zero tracked instances the [v.tracked] rule can
   never fire, so its [{ release(v) } || { v }] pattern must not count as
   modelling the call to [helper2] — the old prepass matched the full
   pattern (the bare hole matched anything) and never followed. *)
let bare_hole_checker =
  {|
sm baretest {
  state decl any_pointer v;

  start:
    { mark(v) } ==> v.tracked
  ;

  v.tracked:
    { release(v) } || { v } ==> v.stop
  ;
}
|}

let bare_hole_code =
  "void helper2(int *p) { kfree(p); }\n\
   int root(int *p) { helper2(p); return 0; }\n"

let regression_tests =
  [
    t "bare-hole disjunct does not suppress call following" `Quick (fun () ->
        let ext =
          match Metal_compile.load ~file:"baretest.metal" bare_hole_checker with
          | [ sm ] -> sm
          | _ -> Alcotest.fail "expected one sm"
        in
        let run options =
          (Engine.run ~options (sg_of bare_hole_code) [ ext ]).Engine.stats
            .Engine.calls_followed
        in
        Alcotest.(check int) "indexed follows helper2" 1
          (run Engine.default_options);
        Alcotest.(check int) "naive scan agrees" 1 (run naive));
    t "skip sets leave end-of-path transitions alone" `Quick (fun () ->
        (* the leak checker's report fires at end of scope inside a block
           with no matchable node; skipping apply_transitions for such
           blocks must not lose it *)
        let src =
          "int leaky(int n) { int *p = kmalloc(n); if (n) { return 0; } \
           kfree(p); return 1; }"
        in
        let with_idx =
          Engine.run (sg_of src) [ Leak_checker.checker () ]
        in
        let without =
          Engine.run ~options:naive (sg_of src) [ Leak_checker.checker () ]
        in
        Alcotest.(check (list string))
          "same reports" (output_lines without) (output_lines with_idx);
        Alcotest.(check bool) "leak found" true (with_idx.Engine.reports <> []));
  ]

(* A/B oracle: every corpus, indexed vs naive, -j 1 vs -j 2, and warm
   cache replay — output must be byte-identical in every cell. *)
let corpora () =
  [
    ("fixture driver", Fixture_driver.files);
    ( "generated 30",
      [ ("gen30.c", (Gen.generate ~seed:11 ~n_funcs:30 ~bug_rate:0.4).Gen.source) ]
    );
    ("diamond", [ ("diamond.c", Synth.diamond_chain ~n:8) ]);
    ("call tree", [ ("tree.c", Synth.call_tree ~depth:3 ~fanout:3) ]);
    ("correlated", [ ("corr.c", Synth.correlated_branches ~n:4) ]);
    ("no-match heavy", [ ("nm.c", Synth.no_match_heavy ~n_funcs:10 ~stmts:16) ]);
    ("locks", [ ("locks.c", Synth.lock_workload ~n_funcs:12 ~bug_every:3) ]);
  ]

let sg_of_files files =
  Supergraph.build
    (List.map (fun (file, src) -> Cparse.parse_tunit ~file src) files)

let oracle_tests =
  [
    t "indexed equals naive on every corpus (all checkers)" `Quick (fun () ->
        List.iter
          (fun (name, files) ->
            let sg = sg_of_files files in
            let idx = Engine.run sg (all_checkers ()) in
            let nv = Engine.run ~options:naive sg (all_checkers ()) in
            Alcotest.(check (list string))
              (name ^ ": byte-identical output")
              (output_lines nv) (output_lines idx);
            Alcotest.(check int)
              (name ^ ": same transitions fired")
              nv.Engine.stats.Engine.transitions_fired
              idx.Engine.stats.Engine.transitions_fired)
          (corpora ()));
    t "indexed equals naive at -j 2" `Quick (fun () ->
        let sg = sg_of_files Fixture_driver.files in
        let idx = Engine.run ~jobs:2 sg (all_checkers ()) in
        let nv = Engine.run ~options:naive ~jobs:2 sg (all_checkers ()) in
        Alcotest.(check (list string))
          "byte-identical output" (output_lines nv) (output_lines idx));
    t "index reduces match attempts without losing fires" `Quick (fun () ->
        let sg = sg_of_files (List.assoc "no-match heavy" (corpora ())) in
        let idx = Engine.run sg (all_checkers ()) in
        let nv = Engine.run ~options:naive sg (all_checkers ()) in
        let ai = idx.Engine.stats.Engine.match_attempts in
        let an = nv.Engine.stats.Engine.match_attempts in
        Alcotest.(check bool)
          (Printf.sprintf "fewer attempts (%d < %d)" ai an)
          true (ai < an);
        Alcotest.(check bool) "blocks skipped" true
          (idx.Engine.stats.Engine.blocks_skipped > 0);
        Alcotest.(check bool) "naive skips nothing" true
          (nv.Engine.stats.Engine.blocks_skipped = 0));
    t "warm cache replay is identical with and without the index" `Quick
      (fun () ->
        let files = List.assoc "generated 30" (corpora ()) in
        let dir = temp_dir () in
        let store options =
          Summary_store.create ~dir
            ~ext_keys:
              (Summary_store.ext_keys_of
                 ~options_digest:(Engine.options_digest options)
                 ~sources:[ "free" ])
            ()
        in
        let run options =
          output_lines
            (Engine.run ~options ~cache:(store options) (sg_of_files files)
               [ Free_checker.checker () ])
        in
        let cold = run Engine.default_options in
        (* the dispatch flag is not part of the options digest, so the
           naive warm run replays entries written by the indexed run *)
        let warm_naive = run naive in
        let warm_idx = run Engine.default_options in
        Alcotest.(check (list string)) "warm naive = cold" cold warm_naive;
        Alcotest.(check (list string)) "warm indexed = cold" cold warm_idx);
  ]

let suite =
  classification_tests @ shape_walk_tests @ regression_tests @ oracle_tests
