(* The persistent incremental cache: fingerprints, the pass-1 AST object
   cache (including emit-target disambiguation), summary serialisation,
   and the engine's cached mode — warm runs must be byte-identical to
   cold runs at any job count, and a leaf edit must invalidate exactly
   the leaf and its transitive callers. *)

let t = Alcotest.test_case

let temp_dir () =
  let f = Filename.temp_file "xgcc_test_cache" "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let free () = [ Free_checker.checker () ]

let sg_of_files files =
  Supergraph.build
    (List.map (fun (file, src) -> Cparse.parse_tunit ~file src) files)

let store_over dir =
  Summary_store.create ~dir
    ~ext_keys:
      (Summary_store.ext_keys_of
         ~options_digest:(Engine.options_digest Engine.default_options)
         ~sources:[ "free" ])
    ()

(* emission-order report lines: the byte-identity contract is about output
   order, so no sorting here *)
let report_lines (r : Engine.result) = List.map Report.to_string r.Engine.reports

let leaf_v1 =
  "static void leaf(int *p) { int e = 1; (void)e; kfree(p); }\n\
   int caller(int n) { int *x = kmalloc(n); leaf(x); return *x; }\n\
   int unrelated(int n) { int *y = kmalloc(n); kfree(y); return *y; }\n"

(* same program with the leaf's body edited in place: the dead constant
   changes, so the body hash changes, but no source location moves and no
   analysis behaviour changes — the summary-neutral edit shape. (An edit
   that inserts or removes text shifts the locations of everything after
   it, and locations are observable through report and tuple trees, so
   such an edit IS a content change.) *)
let leaf_v2 =
  "static void leaf(int *p) { int e = 2; (void)e; kfree(p); }\n\
   int caller(int n) { int *x = kmalloc(n); leaf(x); return *x; }\n\
   int unrelated(int n) { int *y = kmalloc(n); kfree(y); return *y; }\n"

let suite =
  [
    t "fingerprints are stable and content-sensitive" `Quick (fun () ->
        Alcotest.(check string)
          "same input, same digest"
          (Fingerprint.of_string "hello")
          (Fingerprint.of_string "hello");
        Alcotest.(check bool)
          "different input, different digest" false
          (String.equal (Fingerprint.of_string "a") (Fingerprint.of_string "b"));
        Alcotest.(check bool)
          "salt changes the digest" false
          (String.equal
             (Fingerprint.of_string ~salt:"v1" "x")
             (Fingerprint.of_string ~salt:"v2" "x"));
        Alcotest.(check bool)
          "combine is order-sensitive" false
          (String.equal
             (Fingerprint.combine [ "a"; "b" ])
             (Fingerprint.combine [ "b"; "a" ])));
    t "ast fingerprint includes the file name" `Quick (fun () ->
        (* locations are baked into the AST, so the same text under two
           names must yield two cache objects *)
        Alcotest.(check bool)
          "same source, different file" false
          (String.equal
             (Cast_io.ast_fingerprint ~file:"a.c" ~source:"int x;")
             (Cast_io.ast_fingerprint ~file:"b.c" ~source:"int x;")));
    t "AST object cache round-trips a translation unit" `Quick (fun () ->
        let cache_dir = temp_dir () in
        let src = "int f(int *p) { kfree(p); return *p; }" in
        let tu = Cparse.parse_tunit ~file:"rt.c" src in
        let fp = Cast_io.ast_fingerprint ~file:"rt.c" ~source:src in
        Alcotest.(check bool)
          "miss before write" true
          (Cast_io.read_cached ~cache_dir fp = None);
        Cast_io.write_cached ~cache_dir fp tu;
        match Cast_io.read_cached ~cache_dir fp with
        | None -> Alcotest.fail "expected a cache hit"
        | Some tu' ->
            Alcotest.(check string)
              "identical emitted form" (Cast_io.emit_string tu)
              (Cast_io.emit_string tu'));
    t "emit targets keep unique basenames, disambiguate collisions" `Quick
      (fun () ->
        Alcotest.(check (list (pair string string)))
          "unique basenames unchanged"
          [ ("dir/x.c", "x.mcast"); ("dir/y.c", "y.mcast") ]
          (Cast_io.emit_targets [ "dir/x.c"; "dir/y.c" ]);
        (* the regression: a/util.c and b/util.c used to overwrite each
           other's util.mcast *)
        let targets = Cast_io.emit_targets [ "a/util.c"; "b/util.c" ] in
        let outs = List.map snd targets in
        Alcotest.(check int)
          "two distinct outputs" 2
          (List.length (List.sort_uniq String.compare outs));
        List.iter
          (fun o ->
            Alcotest.(check bool) "keeps .mcast suffix" true
              (Filename.check_suffix o ".mcast"))
          outs;
        match Cast_io.emit_targets [ "dup.c"; "./dup.c" ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument on a residual collision");
    t "summary sexp round-trip is lossless" `Quick (fun () ->
        let src =
          "int use(int *p, int c) { if (c) { kfree(p); } return *p; }\n\
           int top(int *p, int c) { use(p, c); return 0; }"
        in
        let sg = sg_of_files [ ("s.c", src) ] in
        let _, per_ext = Engine.run_with_summaries sg (free ()) in
        let checked = ref 0 in
        List.iter
          (fun (_, tbl) ->
            Hashtbl.iter
              (fun _ (bs, sfx) ->
                Array.iter
                  (fun s ->
                    incr checked;
                    let sx = Summary.to_sexp s in
                    Alcotest.(check string)
                      "to_sexp . of_sexp . to_sexp = to_sexp"
                      (Sexp.to_string sx)
                      (Sexp.to_string (Summary.to_sexp (Summary.of_sexp sx))))
                  (Array.append bs sfx))
              tbl)
          per_ext;
        Alcotest.(check bool) "exercised some summaries" true (!checked > 0));
    t "root entries round-trip through the store" `Quick (fun () ->
        let dir = temp_dir () in
        let store = store_over dir in
        let ext = Summary_store.ext_key store 0 in
        let r = Engine.check_source ~file:"r.c" leaf_v1 (free ()) in
        Alcotest.(check bool) "have a report" true (r.Engine.reports <> []);
        let entry =
          {
            Summary_store.r_root = "caller";
            r_key = Fingerprint.of_string "key";
            r_reports = r.Engine.reports;
            r_counters = [ ("rule", 3, 1) ];
            r_annots = [];
            r_traversed = [ "caller"; "leaf" ];
            r_stats = [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ];
          }
        in
        Summary_store.store_root store ~ext entry;
        (match
           Summary_store.load_root store ~ext ~root:"caller"
             ~key:(Fingerprint.of_string "key")
         with
        | None -> Alcotest.fail "expected a root hit"
        | Some e ->
            Alcotest.(check (list string))
              "reports round-trip"
              (List.map Report.to_string entry.Summary_store.r_reports)
              (List.map Report.to_string e.Summary_store.r_reports);
            Alcotest.(check (list (triple string int int)))
              "counters round-trip" entry.Summary_store.r_counters
              e.Summary_store.r_counters;
            Alcotest.(check (list string))
              "traversed round-trips" entry.Summary_store.r_traversed
              e.Summary_store.r_traversed);
        Alcotest.(check bool)
          "stale key misses" true
          (Summary_store.load_root store ~ext ~root:"caller"
             ~key:(Fingerprint.of_string "other")
          = None));
    t "warm run is byte-identical to cold, including -j" `Quick (fun () ->
        let files =
          Gen.generate_files ~seed:31 ~n_files:3 ~funcs_per_file:8 ~bug_rate:0.5
          |> List.map (fun (file, g) -> (file, g.Gen.source))
        in
        let sg = sg_of_files files in
        let uncached = Engine.run sg (free ()) in
        let dir = temp_dir () in
        let cold = Engine.run ~cache:(store_over dir) sg (free ()) in
        let warm_store = store_over dir in
        let warm = Engine.run ~cache:warm_store sg (free ()) in
        let warm4 = Engine.run ~jobs:4 ~cache:(store_over dir) sg (free ()) in
        Alcotest.(check (list string))
          "cold = uncached" (report_lines uncached) (report_lines cold);
        Alcotest.(check (list string))
          "warm = uncached" (report_lines uncached) (report_lines warm);
        Alcotest.(check (list string))
          "warm -j 4 = uncached" (report_lines uncached) (report_lines warm4);
        let st = Summary_store.stats warm_store in
        Alcotest.(check int)
          "warm run recomputes nothing" 0 st.Summary_store.roots_recomputed;
        Alcotest.(check bool)
          "warm run replays roots" true (st.Summary_store.roots_replayed > 0));
    t "summary-neutral leaf edit cuts off at the leaf" `Quick (fun () ->
        let dir = temp_dir () in
        (* cold run populates the store for v1 *)
        let _ =
          Engine.run
            ~cache:(store_over dir)
            (sg_of_files [ ("inv.c", leaf_v1) ])
            (free ())
        in
        let store = store_over dir in
        let v2 =
          Engine.run ~cache:store (sg_of_files [ ("inv.c", leaf_v2) ]) (free ())
        in
        let st = Summary_store.stats store in
        (* functions: leaf, caller, unrelated. The edit changes a dead
           constant in leaf, so leaf's own key (body hash) goes stale and
           it recomputes — but its canonical summary content is unchanged,
           so the cutoff fires: caller's key folds leaf's CONTENT and
           still validates. This is the early-cutoff upgrade over
           body-hash closure keying, which recomputed caller too. *)
        Alcotest.(check int) "caller and unrelated still valid" 2
          st.Summary_store.fn_hits;
        Alcotest.(check int) "only leaf stale" 1 st.Summary_store.fn_stale;
        Alcotest.(check int) "nothing absent" 0 st.Summary_store.fn_absent;
        Alcotest.(check int) "only leaf recomputed" 1
          st.Summary_store.fns_recomputed;
        Alcotest.(check int) "leaf's content unchanged" 1
          st.Summary_store.sums_unchanged;
        (* roots: both replay — caller only because the cutoff fired *)
        Alcotest.(check int) "both roots replay" 2
          st.Summary_store.roots_replayed;
        Alcotest.(check int) "no root recomputes" 0
          st.Summary_store.roots_recomputed;
        Alcotest.(check int) "caller was salvaged by the cutoff" 1
          st.Summary_store.roots_salvaged;
        (* and the result still matches an uncached run of v2 *)
        let uncached = Engine.check_source ~file:"inv.c" leaf_v2 (free ()) in
        Alcotest.(check (list string))
          "edited run = uncached" (report_lines uncached) (report_lines v2));
    t "summary-changing edit invalidates exactly the transitive callers"
      `Quick (fun () ->
        (* chain top -> mid -> leaf, plus an unrelated root: editing leaf
           so its summary content changes (it now frees its argument) must
           recompute exactly the chain's entries and the chain's root, and
           leave unrelated untouched *)
        let v1 =
          "static void leaf(int *p) { (void)p; }\n\
           static void mid(int *p) { leaf(p); }\n\
           int top(int n) { int *x = kmalloc(n); mid(x); return *x; }\n\
           int unrelated(int n) { int *y = kmalloc(n); kfree(y); return *y; }\n"
        in
        let v2 =
          "static void leaf(int *p) { kfree(p); }\n\
           static void mid(int *p) { leaf(p); }\n\
           int top(int n) { int *x = kmalloc(n); mid(x); return *x; }\n\
           int unrelated(int n) { int *y = kmalloc(n); kfree(y); return *y; }\n"
        in
        let dir = temp_dir () in
        let _ =
          Engine.run ~cache:(store_over dir) (sg_of_files [ ("ch.c", v1) ]) (free ())
        in
        let store = store_over dir in
        let warm =
          Engine.run ~cache:store (sg_of_files [ ("ch.c", v2) ]) (free ())
        in
        let st = Summary_store.stats store in
        (* leaf stale on body hash; its new content propagates, so mid and
           top go stale in turn — no cutoff anywhere on the chain *)
        Alcotest.(check int) "unrelated still valid" 1 st.Summary_store.fn_hits;
        Alcotest.(check int) "the chain is stale" 3 st.Summary_store.fn_stale;
        Alcotest.(check int) "chain recomputed" 3 st.Summary_store.fns_recomputed;
        Alcotest.(check int) "no content survived the edit" 0
          st.Summary_store.sums_unchanged;
        Alcotest.(check int) "unrelated replays" 1 st.Summary_store.roots_replayed;
        Alcotest.(check int) "top recomputes" 1 st.Summary_store.roots_recomputed;
        let uncached = Engine.check_source ~file:"ch.c" v2 (free ()) in
        Alcotest.(check (list string))
          "edited run = uncached" (report_lines uncached) (report_lines warm));
    t "comment-only edit replays everything" `Quick (fun () ->
        (* comments never reach the AST, so every fingerprint — body,
           declarations, annotations — is unchanged: the warm run must
           recompute no summaries and no roots. Trailing comments only:
           a comment on its own line before the code would shift every
           source location, which IS a content change *)
        let v2 = leaf_v1 ^ "/* tidy: reviewed 2026-08 */\n" in
        let dir = temp_dir () in
        let cold =
          Engine.run ~cache:(store_over dir) (sg_of_files [ ("cm.c", leaf_v1) ]) (free ())
        in
        let store = store_over dir in
        let warm =
          Engine.run ~cache:store (sg_of_files [ ("cm.c", v2) ]) (free ())
        in
        let st = Summary_store.stats store in
        Alcotest.(check int) "no summaries recomputed" 0
          st.Summary_store.fns_recomputed;
        Alcotest.(check int) "no summaries stale" 0 st.Summary_store.fn_stale;
        Alcotest.(check int) "no roots recomputed" 0
          st.Summary_store.roots_recomputed;
        Alcotest.(check (list string))
          "reports byte-identical" (report_lines cold) (report_lines warm));
    t "persist:false stores replay but never write" `Quick (fun () ->
        let dir = temp_dir () in
        let sg = sg_of_files [ ("ro.c", leaf_v1) ] in
        let ro =
          Summary_store.create ~dir ~persist:false
            ~ext_keys:
              (Summary_store.ext_keys_of
                 ~options_digest:(Engine.options_digest Engine.default_options)
                 ~sources:[ "free" ])
            ()
        in
        let _ = Engine.run ~cache:ro sg (free ()) in
        Alcotest.(check bool)
          "no entries written" true
          (not (Sys.file_exists (Filename.concat dir "root")));
        (* a second read-only run still misses — nothing was persisted *)
        let ro2 =
          Summary_store.create ~dir ~persist:false
            ~ext_keys:
              (Summary_store.ext_keys_of
                 ~options_digest:(Engine.options_digest Engine.default_options)
                 ~sources:[ "free" ])
            ()
        in
        let _ = Engine.run ~cache:ro2 sg (free ()) in
        Alcotest.(check int)
          "still cold" 0 (Summary_store.stats ro2).Summary_store.roots_replayed);
    t "options digest carries the analysis version stamp" `Quick (fun () ->
        (* the stamp is what orphans cached results when engine or builtin
           checker semantics change without any checker source changing *)
        let d = Engine.options_digest Engine.default_options in
        let v = Engine.analysis_version in
        Alcotest.(check bool)
          "digest starts with the version stamp" true
          (String.length d > String.length v
          && String.equal (String.sub d 0 (String.length v)) v));
    t "non-function global edit invalidates cached roots" `Quick (fun () ->
        (* the regression: typedefs, struct layouts, enums, prototypes and
           global-variable declarations feed analysis through the typing
           environment but appear in no function-body hash, so editing one
           used to leave every closure key — and the stale cached results —
           untouched *)
        let v1 = "int g = 1;\n" ^ leaf_v1 in
        let v2 = "int g = 2;\n" ^ leaf_v1 in
        let dir = temp_dir () in
        let _ =
          Engine.run ~cache:(store_over dir) (sg_of_files [ ("g.c", v1) ]) (free ())
        in
        let store = store_over dir in
        let warm =
          Engine.run ~cache:store (sg_of_files [ ("g.c", v2) ]) (free ())
        in
        let st = Summary_store.stats store in
        Alcotest.(check int)
          "no root replays across a declaration edit" 0
          st.Summary_store.roots_replayed;
        Alcotest.(check int)
          "no summary hits across a declaration edit" 0 st.Summary_store.fn_hits;
        let uncached = Engine.check_source ~file:"g.c" v2 (free ()) in
        Alcotest.(check (list string))
          "edited run = uncached" (report_lines uncached) (report_lines warm));
    t "corrupt root entries degrade to misses" `Quick (fun () ->
        let dir = temp_dir () in
        let sg = sg_of_files [ ("c.c", leaf_v1) ] in
        let uncached = Engine.run sg (free ()) in
        let _ = Engine.run ~cache:(store_over dir) sg (free ()) in
        (* tamper: still a well-formed sexp of the right shape, but with a
           non-numeric stat atom — decoding raises Failure, which must read
           as a miss rather than abort the run *)
        let rootdir = Filename.concat dir "root" in
        Array.iter
          (fun f ->
            let oc = open_out (Filename.concat rootdir f) in
            output_string oc "(root caller x () () () () (zz))\n";
            close_out oc)
          (Sys.readdir rootdir);
        let store = store_over dir in
        let warm = Engine.run ~cache:store sg (free ()) in
        Alcotest.(check int)
          "all roots recompute" 0 (Summary_store.stats store).Summary_store.roots_replayed;
        Alcotest.(check (list string))
          "reports unaffected" (report_lines uncached) (report_lines warm));
    t "truncated and corrupt summary entries degrade to misses" `Quick
      (fun () ->
        let dir = temp_dir () in
        let store = store_over dir in
        let ext = Summary_store.ext_key store 0 in
        let key = Fingerprint.of_string "k" in
        Summary_store.store_fn store ~ext ~fname:"f" ~key
          ~content:(Fingerprint.of_string "c")
          ~bs:[| Summary.create () |]
          ~sfx:[| Summary.create () |]
          ~rets:[ "rs" ];
        (match Summary_store.probe_fn store ~ext ~fname:"f" ~key with
        | Summary_store.Hit e ->
            Alcotest.(check string) "name round-trips" "f" e.Summary_store.f_name;
            Alcotest.(check (list string))
              "rets round-trip" [ "rs" ] e.Summary_store.f_rets
        | _ -> Alcotest.fail "expected a hit on the intact entry");
        let sumdir = Filename.concat dir "sum" in
        let mangle f =
          let path = Filename.concat sumdir f in
          let ic = open_in_bin path in
          let len = in_channel_length ic in
          let data = really_input_string ic len in
          close_in ic;
          path, data
        in
        Array.iter
          (fun f ->
            let path, data = mangle f in
            (* truncated mid-frame: the length-prefixed decoder must raise
               Corrupt, which probes as a miss *)
            let oc = open_out_bin path in
            output_string oc (String.sub data 0 (String.length data / 2));
            close_out oc;
            (match Summary_store.probe_fn store ~ext ~fname:"f" ~key with
            | Summary_store.Absent -> ()
            | _ -> Alcotest.fail "truncated entry must probe Absent");
            (* wrong magic / non-binary garbage *)
            let oc = open_out_bin path in
            output_string oc "(fn f c () ())\n";
            close_out oc;
            match Summary_store.probe_fn store ~ext ~fname:"f" ~key with
            | Summary_store.Absent -> ()
            | _ -> Alcotest.fail "garbage entry must probe Absent")
          (Sys.readdir sumdir));
    t "binary summary round-trip is lossless" `Quick (fun () ->
        let src =
          "int use(int *p, int c) { if (c) { kfree(p); } return *p; }\n\
           int top(int *p, int c) { use(p, c); return 0; }"
        in
        let sg = sg_of_files [ ("sb.c", src) ] in
        let _, per_ext = Engine.run_with_summaries sg (free ()) in
        let checked = ref 0 in
        List.iter
          (fun (_, tbl) ->
            Hashtbl.iter
              (fun _ (bs, sfx) ->
                Array.iter
                  (fun s ->
                    incr checked;
                    let bin s =
                      let b = Wire.writer () in
                      Summary.to_bin b s;
                      Wire.contents b
                    in
                    let bytes = bin s in
                    let s' = Summary.of_bin (Wire.reader bytes) in
                    (* byte-stable round-trip: decoded tables reserialise
                       identically, which is what makes content hashes
                       agree between disk-loaded and fresh summaries *)
                    Alcotest.(check string)
                      "to_bin . of_bin . to_bin = to_bin" bytes (bin s');
                    Alcotest.(check string)
                      "sexp view agrees"
                      (Sexp.to_string (Summary.to_sexp s))
                      (Sexp.to_string (Summary.to_sexp s')))
                  (Array.append bs sfx))
              tbl)
          per_ext;
        Alcotest.(check bool) "exercised some summaries" true (!checked > 0));
    t "old store version is orphaned cleanly" `Quick (fun () ->
        let dir = temp_dir () in
        let sg = sg_of_files [ ("ov.c", leaf_v1) ] in
        let uncached = Engine.run sg (free ()) in
        let _ = Engine.run ~cache:(store_over dir) sg (free ()) in
        (* forge an older store: stamp the VERSION back. The version is
           salted into every extension key, so the existing entries become
           unreachable — a run against the "upgraded" store recomputes
           from cold without ever decoding them, and restamps VERSION *)
        let oc = open_out (Filename.concat dir "VERSION") in
        output_string oc "sumstore-0\n";
        close_out oc;
        let old_keys =
          Summary_store.ext_keys_of
            ~options_digest:(Engine.options_digest Engine.default_options)
            ~sources:[ "free" ]
        in
        let forged =
          Summary_store.create ~dir
            ~ext_keys:(List.map (fun k -> Fingerprint.combine [ k; "old" ]) old_keys)
            ()
        in
        let forged_run = Engine.run ~cache:forged sg (free ()) in
        Alcotest.(check int)
          "nothing replays from the orphaned generation" 0
          (Summary_store.stats forged).Summary_store.roots_replayed;
        Alcotest.(check (list string))
          "reports unaffected" (report_lines uncached) (report_lines forged_run);
        (* creating the store restamped the directory *)
        let ic = open_in (Filename.concat dir "VERSION") in
        let v = input_line ic in
        close_in ic;
        Alcotest.(check string)
          "VERSION restamped" Summary_store.store_version v);
    t "corrupt AST cache objects degrade to misses" `Quick (fun () ->
        let cache_dir = temp_dir () in
        let src = "int f(int *p) { kfree(p); return *p; }" in
        let tu = Cparse.parse_tunit ~file:"cc.c" src in
        let fp = Cast_io.ast_fingerprint ~file:"cc.c" ~source:src in
        Cast_io.write_cached ~cache_dir fp tu;
        (* parses as a sexp, but the enum item raises Failure in decoding *)
        let astdir = Filename.concat cache_dir "ast" in
        Array.iter
          (fun f ->
            let oc = open_out (Filename.concat astdir f) in
            output_string oc "(tunit cc.c (enumdef E (k zz)))\n";
            close_out oc)
          (Sys.readdir astdir);
        Alcotest.(check bool)
          "corrupt object reads as a miss" true
          (Cast_io.read_cached ~cache_dir fp = None));
    t "positional twins replay byte-identically" `Quick (fun () ->
        (* two translation units claiming the same file name (a header
           parsed into two units), with textually identical expressions at
           identical positions inside different functions: the persisted
           annotation delta must resolve back to exactly the node the
           worker annotated, not to every node sharing its position *)
        let files =
          [
            ("twin.h", "int a(int *p) { if (p) { kfree(p); } return 0; }\n");
            ("twin.h", "int b(int *p) { if (p) { kfree(p); } return 0; }\n");
          ]
        in
        let exts () = [ Free_checker.checker (); Leak_checker.checker () ] in
        let store2 dir =
          Summary_store.create ~dir
            ~ext_keys:
              (Summary_store.ext_keys_of
                 ~options_digest:(Engine.options_digest Engine.default_options)
                 ~sources:[ "free"; "leak" ])
            ()
        in
        let sg = sg_of_files files in
        let uncached = Engine.run sg (exts ()) in
        let dir = temp_dir () in
        let _ = Engine.run ~cache:(store2 dir) sg (exts ()) in
        let warm_store = store2 dir in
        let warm = Engine.run ~cache:warm_store sg (exts ()) in
        Alcotest.(check (list string))
          "warm = uncached" (report_lines uncached) (report_lines warm);
        Alcotest.(check int)
          "warm run replays every root" 0
          (Summary_store.stats warm_store).Summary_store.roots_recomputed);
  ]
