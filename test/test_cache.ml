(* The persistent incremental cache: fingerprints, the pass-1 AST object
   cache (including emit-target disambiguation), summary serialisation,
   and the engine's cached mode — warm runs must be byte-identical to
   cold runs at any job count, and a leaf edit must invalidate exactly
   the leaf and its transitive callers. *)

let t = Alcotest.test_case

let temp_dir () =
  let f = Filename.temp_file "xgcc_test_cache" "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let free () = [ Free_checker.checker () ]

let sg_of_files files =
  Supergraph.build
    (List.map (fun (file, src) -> Cparse.parse_tunit ~file src) files)

let store_over dir =
  Summary_store.create ~dir
    ~ext_keys:
      (Summary_store.ext_keys_of
         ~options_digest:(Engine.options_digest Engine.default_options)
         ~sources:[ "free" ])
    ()

(* emission-order report lines: the byte-identity contract is about output
   order, so no sorting here *)
let report_lines (r : Engine.result) = List.map Report.to_string r.Engine.reports

let leaf_v1 =
  "static void leaf(int *p) { kfree(p); }\n\
   int caller(int n) { int *x = kmalloc(n); leaf(x); return *x; }\n\
   int unrelated(int n) { int *y = kmalloc(n); kfree(y); return *y; }\n"

(* same program with the leaf's body edited *)
let leaf_v2 =
  "static void leaf(int *p) { int e = 1; (void)e; kfree(p); }\n\
   int caller(int n) { int *x = kmalloc(n); leaf(x); return *x; }\n\
   int unrelated(int n) { int *y = kmalloc(n); kfree(y); return *y; }\n"

let suite =
  [
    t "fingerprints are stable and content-sensitive" `Quick (fun () ->
        Alcotest.(check string)
          "same input, same digest"
          (Fingerprint.of_string "hello")
          (Fingerprint.of_string "hello");
        Alcotest.(check bool)
          "different input, different digest" false
          (String.equal (Fingerprint.of_string "a") (Fingerprint.of_string "b"));
        Alcotest.(check bool)
          "salt changes the digest" false
          (String.equal
             (Fingerprint.of_string ~salt:"v1" "x")
             (Fingerprint.of_string ~salt:"v2" "x"));
        Alcotest.(check bool)
          "combine is order-sensitive" false
          (String.equal
             (Fingerprint.combine [ "a"; "b" ])
             (Fingerprint.combine [ "b"; "a" ])));
    t "ast fingerprint includes the file name" `Quick (fun () ->
        (* locations are baked into the AST, so the same text under two
           names must yield two cache objects *)
        Alcotest.(check bool)
          "same source, different file" false
          (String.equal
             (Cast_io.ast_fingerprint ~file:"a.c" ~source:"int x;")
             (Cast_io.ast_fingerprint ~file:"b.c" ~source:"int x;")));
    t "AST object cache round-trips a translation unit" `Quick (fun () ->
        let cache_dir = temp_dir () in
        let src = "int f(int *p) { kfree(p); return *p; }" in
        let tu = Cparse.parse_tunit ~file:"rt.c" src in
        let fp = Cast_io.ast_fingerprint ~file:"rt.c" ~source:src in
        Alcotest.(check bool)
          "miss before write" true
          (Cast_io.read_cached ~cache_dir fp = None);
        Cast_io.write_cached ~cache_dir fp tu;
        match Cast_io.read_cached ~cache_dir fp with
        | None -> Alcotest.fail "expected a cache hit"
        | Some tu' ->
            Alcotest.(check string)
              "identical emitted form" (Cast_io.emit_string tu)
              (Cast_io.emit_string tu'));
    t "emit targets keep unique basenames, disambiguate collisions" `Quick
      (fun () ->
        Alcotest.(check (list (pair string string)))
          "unique basenames unchanged"
          [ ("dir/x.c", "x.mcast"); ("dir/y.c", "y.mcast") ]
          (Cast_io.emit_targets [ "dir/x.c"; "dir/y.c" ]);
        (* the regression: a/util.c and b/util.c used to overwrite each
           other's util.mcast *)
        let targets = Cast_io.emit_targets [ "a/util.c"; "b/util.c" ] in
        let outs = List.map snd targets in
        Alcotest.(check int)
          "two distinct outputs" 2
          (List.length (List.sort_uniq String.compare outs));
        List.iter
          (fun o ->
            Alcotest.(check bool) "keeps .mcast suffix" true
              (Filename.check_suffix o ".mcast"))
          outs;
        match Cast_io.emit_targets [ "dup.c"; "./dup.c" ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument on a residual collision");
    t "summary sexp round-trip is lossless" `Quick (fun () ->
        let src =
          "int use(int *p, int c) { if (c) { kfree(p); } return *p; }\n\
           int top(int *p, int c) { use(p, c); return 0; }"
        in
        let sg = sg_of_files [ ("s.c", src) ] in
        let _, per_ext = Engine.run_with_summaries sg (free ()) in
        let checked = ref 0 in
        List.iter
          (fun (_, tbl) ->
            Hashtbl.iter
              (fun _ (bs, sfx) ->
                Array.iter
                  (fun s ->
                    incr checked;
                    let sx = Summary.to_sexp s in
                    Alcotest.(check string)
                      "to_sexp . of_sexp . to_sexp = to_sexp"
                      (Sexp.to_string sx)
                      (Sexp.to_string (Summary.to_sexp (Summary.of_sexp sx))))
                  (Array.append bs sfx))
              tbl)
          per_ext;
        Alcotest.(check bool) "exercised some summaries" true (!checked > 0));
    t "root entries round-trip through the store" `Quick (fun () ->
        let dir = temp_dir () in
        let store = store_over dir in
        let ext = Summary_store.ext_key store 0 in
        let r = Engine.check_source ~file:"r.c" leaf_v1 (free ()) in
        Alcotest.(check bool) "have a report" true (r.Engine.reports <> []);
        let entry =
          {
            Summary_store.r_root = "caller";
            r_closure = Fingerprint.of_string "closure";
            r_reports = r.Engine.reports;
            r_counters = [ ("rule", 3, 1) ];
            r_annots = [];
            r_traversed = [ "caller"; "leaf" ];
            r_stats = [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ];
          }
        in
        Summary_store.store_root store ~ext entry;
        (match
           Summary_store.load_root store ~ext ~root:"caller"
             ~closure:(Fingerprint.of_string "closure")
         with
        | None -> Alcotest.fail "expected a root hit"
        | Some e ->
            Alcotest.(check (list string))
              "reports round-trip"
              (List.map Report.to_string entry.Summary_store.r_reports)
              (List.map Report.to_string e.Summary_store.r_reports);
            Alcotest.(check (list (triple string int int)))
              "counters round-trip" entry.Summary_store.r_counters
              e.Summary_store.r_counters;
            Alcotest.(check (list string))
              "traversed round-trips" entry.Summary_store.r_traversed
              e.Summary_store.r_traversed);
        Alcotest.(check bool)
          "stale closure misses" true
          (Summary_store.load_root store ~ext ~root:"caller"
             ~closure:(Fingerprint.of_string "other")
          = None));
    t "warm run is byte-identical to cold, including -j" `Quick (fun () ->
        let files =
          Gen.generate_files ~seed:31 ~n_files:3 ~funcs_per_file:8 ~bug_rate:0.5
          |> List.map (fun (file, g) -> (file, g.Gen.source))
        in
        let sg = sg_of_files files in
        let uncached = Engine.run sg (free ()) in
        let dir = temp_dir () in
        let cold = Engine.run ~cache:(store_over dir) sg (free ()) in
        let warm_store = store_over dir in
        let warm = Engine.run ~cache:warm_store sg (free ()) in
        let warm4 = Engine.run ~jobs:4 ~cache:(store_over dir) sg (free ()) in
        Alcotest.(check (list string))
          "cold = uncached" (report_lines uncached) (report_lines cold);
        Alcotest.(check (list string))
          "warm = uncached" (report_lines uncached) (report_lines warm);
        Alcotest.(check (list string))
          "warm -j 4 = uncached" (report_lines uncached) (report_lines warm4);
        let st = Summary_store.stats warm_store in
        Alcotest.(check int)
          "warm run recomputes nothing" 0 st.Summary_store.roots_recomputed;
        Alcotest.(check bool)
          "warm run replays roots" true (st.Summary_store.roots_replayed > 0));
    t "leaf edit invalidates the leaf and its callers only" `Quick (fun () ->
        let dir = temp_dir () in
        (* cold run populates the store for v1 *)
        let _ =
          Engine.run
            ~cache:(store_over dir)
            (sg_of_files [ ("inv.c", leaf_v1) ])
            (free ())
        in
        let store = store_over dir in
        let v2 =
          Engine.run ~cache:store (sg_of_files [ ("inv.c", leaf_v2) ]) (free ())
        in
        let st = Summary_store.stats store in
        (* functions: leaf, caller, unrelated — leaf changed, so leaf and
           caller go stale; unrelated still hits *)
        Alcotest.(check int) "one summary still valid" 1 st.Summary_store.fn_hits;
        Alcotest.(check int) "leaf and caller stale" 2 st.Summary_store.fn_stale;
        Alcotest.(check int) "nothing absent" 0 st.Summary_store.fn_absent;
        (* roots: caller (recomputed — its closure contains leaf) and
           unrelated (replayed verbatim) *)
        Alcotest.(check int) "unrelated replays" 1 st.Summary_store.roots_replayed;
        Alcotest.(check int) "caller recomputes" 1 st.Summary_store.roots_recomputed;
        (* and the result still matches an uncached run of v2 *)
        let uncached = Engine.check_source ~file:"inv.c" leaf_v2 (free ()) in
        Alcotest.(check (list string))
          "edited run = uncached" (report_lines uncached) (report_lines v2));
    t "persist:false stores replay but never write" `Quick (fun () ->
        let dir = temp_dir () in
        let sg = sg_of_files [ ("ro.c", leaf_v1) ] in
        let ro =
          Summary_store.create ~dir ~persist:false
            ~ext_keys:
              (Summary_store.ext_keys_of
                 ~options_digest:(Engine.options_digest Engine.default_options)
                 ~sources:[ "free" ])
            ()
        in
        let _ = Engine.run ~cache:ro sg (free ()) in
        Alcotest.(check bool)
          "no entries written" true
          (not (Sys.file_exists (Filename.concat dir "root")));
        (* a second read-only run still misses — nothing was persisted *)
        let ro2 =
          Summary_store.create ~dir ~persist:false
            ~ext_keys:
              (Summary_store.ext_keys_of
                 ~options_digest:(Engine.options_digest Engine.default_options)
                 ~sources:[ "free" ])
            ()
        in
        let _ = Engine.run ~cache:ro2 sg (free ()) in
        Alcotest.(check int)
          "still cold" 0 (Summary_store.stats ro2).Summary_store.roots_replayed);
    t "options digest carries the analysis version stamp" `Quick (fun () ->
        (* the stamp is what orphans cached results when engine or builtin
           checker semantics change without any checker source changing *)
        let d = Engine.options_digest Engine.default_options in
        let v = Engine.analysis_version in
        Alcotest.(check bool)
          "digest starts with the version stamp" true
          (String.length d > String.length v
          && String.equal (String.sub d 0 (String.length v)) v));
    t "non-function global edit invalidates cached roots" `Quick (fun () ->
        (* the regression: typedefs, struct layouts, enums, prototypes and
           global-variable declarations feed analysis through the typing
           environment but appear in no function-body hash, so editing one
           used to leave every closure key — and the stale cached results —
           untouched *)
        let v1 = "int g = 1;\n" ^ leaf_v1 in
        let v2 = "int g = 2;\n" ^ leaf_v1 in
        let dir = temp_dir () in
        let _ =
          Engine.run ~cache:(store_over dir) (sg_of_files [ ("g.c", v1) ]) (free ())
        in
        let store = store_over dir in
        let warm =
          Engine.run ~cache:store (sg_of_files [ ("g.c", v2) ]) (free ())
        in
        let st = Summary_store.stats store in
        Alcotest.(check int)
          "no root replays across a declaration edit" 0
          st.Summary_store.roots_replayed;
        Alcotest.(check int)
          "no summary hits across a declaration edit" 0 st.Summary_store.fn_hits;
        let uncached = Engine.check_source ~file:"g.c" v2 (free ()) in
        Alcotest.(check (list string))
          "edited run = uncached" (report_lines uncached) (report_lines warm));
    t "corrupt root entries degrade to misses" `Quick (fun () ->
        let dir = temp_dir () in
        let sg = sg_of_files [ ("c.c", leaf_v1) ] in
        let uncached = Engine.run sg (free ()) in
        let _ = Engine.run ~cache:(store_over dir) sg (free ()) in
        (* tamper: still a well-formed sexp of the right shape, but with a
           non-numeric stat atom — decoding raises Failure, which must read
           as a miss rather than abort the run *)
        let rootdir = Filename.concat dir "root" in
        Array.iter
          (fun f ->
            let oc = open_out (Filename.concat rootdir f) in
            output_string oc "(root caller x () () () () (zz))\n";
            close_out oc)
          (Sys.readdir rootdir);
        let store = store_over dir in
        let warm = Engine.run ~cache:store sg (free ()) in
        Alcotest.(check int)
          "all roots recompute" 0 (Summary_store.stats store).Summary_store.roots_replayed;
        Alcotest.(check (list string))
          "reports unaffected" (report_lines uncached) (report_lines warm));
    t "corrupt summary entries degrade to misses" `Quick (fun () ->
        let dir = temp_dir () in
        let store = store_over dir in
        let ext = Summary_store.ext_key store 0 in
        Summary_store.store_fn store ~ext ~fname:"f" ~closure:"c" ~bs:[||]
          ~sfx:[||] ~rets:[];
        (* matching header, but a tuple whose location decodes with
           int_of_string: Failure must read as a miss *)
        let sumdir = Filename.concat dir "sum" in
        Array.iter
          (fun f ->
            let oc = open_out (Filename.concat sumdir f) in
            output_string oc
              "(fn f c () (((sum ((t (g k ((v x) (@ f zz 1)) val 0) (g))) ()) (sum () ()))))\n";
            close_out oc)
          (Sys.readdir sumdir);
        Alcotest.(check bool)
          "corrupt entry loads as None" true
          (Summary_store.load_fn store ~ext ~fname:"f" ~closure:"c" = None));
    t "corrupt AST cache objects degrade to misses" `Quick (fun () ->
        let cache_dir = temp_dir () in
        let src = "int f(int *p) { kfree(p); return *p; }" in
        let tu = Cparse.parse_tunit ~file:"cc.c" src in
        let fp = Cast_io.ast_fingerprint ~file:"cc.c" ~source:src in
        Cast_io.write_cached ~cache_dir fp tu;
        (* parses as a sexp, but the enum item raises Failure in decoding *)
        let astdir = Filename.concat cache_dir "ast" in
        Array.iter
          (fun f ->
            let oc = open_out (Filename.concat astdir f) in
            output_string oc "(tunit cc.c (enumdef E (k zz)))\n";
            close_out oc)
          (Sys.readdir astdir);
        Alcotest.(check bool)
          "corrupt object reads as a miss" true
          (Cast_io.read_cached ~cache_dir fp = None));
    t "positional twins replay byte-identically" `Quick (fun () ->
        (* two translation units claiming the same file name (a header
           parsed into two units), with textually identical expressions at
           identical positions inside different functions: the persisted
           annotation delta must resolve back to exactly the node the
           worker annotated, not to every node sharing its position *)
        let files =
          [
            ("twin.h", "int a(int *p) { if (p) { kfree(p); } return 0; }\n");
            ("twin.h", "int b(int *p) { if (p) { kfree(p); } return 0; }\n");
          ]
        in
        let exts () = [ Free_checker.checker (); Leak_checker.checker () ] in
        let store2 dir =
          Summary_store.create ~dir
            ~ext_keys:
              (Summary_store.ext_keys_of
                 ~options_digest:(Engine.options_digest Engine.default_options)
                 ~sources:[ "free"; "leak" ])
            ()
        in
        let sg = sg_of_files files in
        let uncached = Engine.run sg (exts ()) in
        let dir = temp_dir () in
        let _ = Engine.run ~cache:(store2 dir) sg (exts ()) in
        let warm_store = store2 dir in
        let warm = Engine.run ~cache:warm_store sg (exts ()) in
        Alcotest.(check (list string))
          "warm = uncached" (report_lines uncached) (report_lines warm);
        Alcotest.(check int)
          "warm run replays every root" 0
          (Summary_store.stats warm_store).Summary_store.roots_recomputed);
  ]
