(* Integration tests over the VFS corpus (fixture_vfs.ml): recursion,
   gotos, switch dispatch, deeper interprocedural chains. *)

let t = Alcotest.test_case

let run_all () =
  let sg = Fixture_vfs.supergraph () in
  Engine.run sg
    [
      Free_checker.checker ();
      Lock_checker.checker ();
      Security_checker.checker ();
      Leak_checker.checker ();
    ]

let reports_in result func =
  List.filter (fun (r : Report.t) -> String.equal r.Report.func func)
    result.Engine.reports

let has result ~checker ~func =
  List.exists
    (fun (r : Report.t) ->
      String.equal r.Report.checker checker && String.equal r.Report.func func)
    result.Engine.reports

let suite =
  [
    t "V1: double free via the release chain" `Quick (fun () ->
        (* the error fires where the second kfree happens: inside
           inode_free, entered the second time with n already freed *)
        let r = run_all () in
        Alcotest.(check bool) "found" true
          (has r ~checker:"free_checker" ~func:"inode_free"));
    t "V2: use-after-free after inode_put(parent)" `Quick (fun () ->
        let r = run_all () in
        Alcotest.(check bool) "found" true
          (has r ~checker:"free_checker" ~func:"walk_path");
        (* and it is an interprocedural find *)
        match
          List.find_opt
            (fun (x : Report.t) ->
              String.equal x.Report.func "walk_path"
              && String.equal x.Report.checker "free_checker")
            r.Engine.reports
        with
        | Some rep -> Alcotest.(check bool) "interproc" true (rep.Report.call_depth > 0)
        | None -> ());
    t "V3: goto-based cleanup that skips the unlock" `Quick (fun () ->
        let r = run_all () in
        Alcotest.(check bool) "found" true
          (has r ~checker:"lock_checker" ~func:"sb_remount"));
    t "V4: user pointer in one switch arm only" `Quick (fun () ->
        let r = run_all () in
        Alcotest.(check bool) "found" true
          (has r ~checker:"user_pointer_checker" ~func:"sb_ioctl");
        Alcotest.(check int) "exactly one report there" 1
          (List.length (reports_in r "sb_ioctl")));
    t "V5: leak on the eviction overflow path" `Quick (fun () ->
        let r = run_all () in
        Alcotest.(check bool) "found" true
          (has r ~checker:"leak_checker" ~func:"cache_gc"));
    t "W1/W2/W3: recursion, correct goto cleanup, clean switch" `Quick (fun () ->
        let r = run_all () in
        List.iter
          (fun func ->
            Alcotest.(check (list string)) (func ^ " clean") []
              (List.map (fun (x : Report.t) -> x.Report.message) (reports_in r func)))
          [ "inode_get"; "sb_sync"; "cache_lookup" ]);
    t "recursive inode_get terminates with caching" `Quick (fun () ->
        let r = run_all () in
        Alcotest.(check bool) "ran" true (r.Engine.stats.Engine.blocks_visited > 0));
  ]
