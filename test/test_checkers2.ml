(* The second wave of checkers: leaks, tainted ranges, the conservative
   free checker with targeted suppression (Section 8), null-check rule
   inference, and severity annotation composition. *)

let t = Alcotest.test_case

let run checkers src = Engine.check_source ~file:"t.c" src checkers
let count checkers src = List.length (run checkers src).Engine.reports
let msgs r = List.map (fun (x : Report.t) -> x.Report.message) r.Engine.reports

let suite =
  [
    (* leak checker *)
    t "leak: allocation never freed" `Quick (fun () ->
        let r = run [ Leak_checker.checker () ] "int f(int n) { int *p = kmalloc(n); *p = n; return n; }" in
        Alcotest.(check (list string)) "leak"
          [ "allocation stored in p is never freed (leak)" ]
          (msgs r));
    t "leak: freed allocation is clean" `Quick (fun () ->
        Alcotest.(check int) "clean" 0
          (count [ Leak_checker.checker () ]
             "int f(int n) { int *p = kmalloc(n); kfree(p); return n; }"));
    t "leak: leak on one path only" `Quick (fun () ->
        Alcotest.(check int) "one" 1
          (count [ Leak_checker.checker () ]
             "int f(int n) { int *p = kmalloc(n); if (n) { return n; } kfree(p); return 0; }"));
    t "leak: returned pointer escapes" `Quick (fun () ->
        Alcotest.(check int) "clean" 0
          (count [ Leak_checker.checker () ]
             "int *f(int n) { int *p = kmalloc(n); return p; }"));
    t "leak: stored pointer escapes" `Quick (fun () ->
        Alcotest.(check int) "clean" 0
          (count [ Leak_checker.checker () ]
             "struct s { int *slot; };\n\
              int f(struct s *st, int n) { int *p = kmalloc(n); st->slot = p; return 0; }"));
    t "leak: pointer passed to a call escapes" `Quick (fun () ->
        Alcotest.(check int) "clean" 0
          (count [ Leak_checker.checker () ]
             "int f(int n) { int *p = kmalloc(n); enqueue(p); return 0; }"));
    t "leak: failed allocation needs no free" `Quick (fun () ->
        Alcotest.(check int) "clean" 0
          (count [ Leak_checker.checker () ]
             "int f(int n) { int *p = kmalloc(n); if (!p) { return -1; } kfree(p); return 0; }"));
    (* range checker *)
    t "range: unchecked user index flagged as SECURITY" `Quick (fun () ->
        let r =
          run [ Range_checker.checker () ]
            "int f(int *tbl) { int n = get_user_int(); return tbl[n]; }"
        in
        match r.Engine.reports with
        | [ rep ] ->
            Alcotest.(check bool) "security" true
              (List.mem "SECURITY" rep.Report.annotations)
        | _ -> Alcotest.fail "expected one report");
    t "range: bounds-checked index is clean" `Quick (fun () ->
        Alcotest.(check int) "clean" 0
          (count [ Range_checker.checker () ]
             "int f(int *tbl, int max) { int n = get_user_int(); if (n < max) { return tbl[n]; } return 0; }"));
    t "range: failed check keeps taint" `Quick (fun () ->
        Alcotest.(check int) "flagged" 1
          (count [ Range_checker.checker () ]
             "int f(int *tbl, int max) { int n = get_user_int(); if (n < max) { return 0; } return tbl[n]; }"));
    t "range: user size to kmalloc flagged" `Quick (fun () ->
        Alcotest.(check int) "flagged" 1
          (count [ Range_checker.checker () ]
             "int f(void) { int n = get_user_int(); int *p = kmalloc(n); return 0; }"));
    (* strict free + targeted suppression *)
    t "strict free: any use flagged without suppression" `Quick (fun () ->
        let src =
          "int f(int *p) { kfree(p); debug_print(p); return 0; }"
        in
        Alcotest.(check int) "conservative FP" 1
          (count [ Strict_free.checker ~suppress_idioms:false ] src);
        Alcotest.(check int) "suppressed" 0
          (count [ Strict_free.checker ~suppress_idioms:true ] src));
    t "strict free: reinit-by-address idiom suppressed and killed" `Quick (fun () ->
        let src = "int f(int *p) { kfree(p); reinit(&p); return *p; }" in
        (* after reinit(&p) the pointer is valid again: no report at all *)
        Alcotest.(check int) "reinit accepted" 0
          (count [ Strict_free.checker ~suppress_idioms:true ] src);
        Alcotest.(check bool) "conservative flags it" true
          (count [ Strict_free.checker ~suppress_idioms:false ] src >= 1));
    t "strict free: true errors survive suppression" `Quick (fun () ->
        let src = "int f(int *p) { kfree(p); use(p); return 0; }" in
        Alcotest.(check int) "still flagged" 1
          (count [ Strict_free.checker ~suppress_idioms:true ] src));
    t "strict free: stored freed pointer flagged" `Quick (fun () ->
        let src = "int *g;\nint f(int *p) { kfree(p); g = p; return 0; }" in
        Alcotest.(check int) "flagged" 1
          (count [ Strict_free.checker ~suppress_idioms:true ] src));
    (* null-check inference *)
    t "infer_nullcheck: reliable rule found, deviant use reported" `Quick (fun () ->
        let src =
          "int a(void) { int *p = get_obj(); if (!p) { return 0; } return *p; }\n\
           int b(void) { int *q = get_obj(); if (q) { return *q; } return 0; }\n\
           int c(void) { int *r = get_obj(); if (!r) { return 0; } return *r; }\n\
           int d(void) { int *s = get_obj(); return *s; }"
        in
        let tu = Cparse.parse_tunit ~file:"t.c" src in
        let sg = Supergraph.build [ tu ] in
        let cands = Infer_nullcheck.candidates sg in
        Alcotest.(check (list string)) "candidate" [ "get_obj" ] cands;
        let result, ranking = Infer_nullcheck.run sg ~funcs:cands in
        let viol =
          List.filter (fun (r : Report.t) -> String.equal r.Report.func "d")
            result.Engine.reports
        in
        Alcotest.(check int) "violation in d" 1 (List.length viol);
        match ranking with
        | (rule, z) :: _ ->
            Alcotest.(check string) "rule" "get_obj" rule;
            Alcotest.(check bool) "positive z" true (z > 0.0)
        | [] -> Alcotest.fail "no ranking");
    (* annotation composition into severities *)
    t "severity annotations on AST nodes reach reports" `Quick (fun () ->
        (* a first extension annotates every deref of 'danger' with
           SECURITY; the free checker's report then ranks as security *)
        Callout.install_builtins ();
        let annotator =
          List.hd
            (Metal_compile.load ~file:"<m>"
               {|sm annotate_danger {
                  decl any_pointer v;
                  start:
                    { *v } && ${ mc_name_contains(v, "danger") } ==>
                      { annotate_ast(mc_stmt, "SECURITY"); }
                  ;
                }|})
        in
        let src = "int f(int *danger_buf) { kfree(danger_buf); return *danger_buf; }" in
        let r = run [ annotator; Free_checker.checker () ] src in
        match r.Engine.reports with
        | [ rep ] ->
            Alcotest.(check bool) "picked up SECURITY" true
              (List.mem "SECURITY" rep.Report.annotations)
        | _ -> Alcotest.fail "expected one report");
    t "ranking code: wrapper functions sink, real bugs rise" `Quick (fun () ->
        (* worker pairs locks correctly many times with one slip; the
           acquire-wrapper never releases (every call a counterexample) *)
        let src =
          "struct lk { int h; };\n\
           void acquire_wrapper(struct lk *l) { lock(l); }\n\
           int worker1(struct lk *l) { lock(l); unlock(l); lock(l); unlock(l); return 0; }\n\
           int worker2(struct lk *l) { lock(l); unlock(l); lock(l); unlock(l); return 0; }\n\
           int worker3(struct lk *l, int c) { lock(l); unlock(l); lock(l); if (c) { return 1; } unlock(l); return 0; }"
        in
        let tu = Cparse.parse_tunit ~file:"t.c" src in
        let sg = Supergraph.build [ tu ] in
        let _result, ranking = Lock_stat.run sg in
        let z f = Option.value (List.assoc_opt f ranking) ~default:nan in
        (* worker3 has many successes and one slip: highest-ranked error
           site; the wrapper is all counterexamples: lowest *)
        Alcotest.(check bool) "worker3 above wrapper" true
          (z "worker3" > z "acquire_wrapper"));
    t "path annotators: SECURITY and ERROR stratify downstream reports" `Quick
      (fun () ->
        let src =
          "int f_sec(int len) { char *u = get_user_pointer(len); kfree(u); return *u; }\n\
           int f_err(int *p, int r) { kfree(p); if (r < 0) { return *p; } return 0; }\n\
           int f_norm(int *p) { kfree(p); return *p; }"
        in
        let r =
          run
            [
              Path_annotators.security ();
              Path_annotators.error_path ();
              Free_checker.checker ();
            ]
            src
        in
        let sev func =
          match
            List.find_opt (fun (x : Report.t) -> String.equal x.Report.func func)
              r.Engine.reports
          with
          | Some rep -> Rank.severity_of rep
          | None -> Alcotest.fail ("no report in " ^ func)
        in
        Alcotest.(check bool) "f_sec is SECURITY" true (sev "f_sec" = Rank.Security);
        Alcotest.(check bool) "f_err is ERROR" true (sev "f_err" = Rank.Error_path);
        Alcotest.(check bool) "f_norm is normal" true (sev "f_norm" = Rank.Normal);
        (* ranking order: security, error, normal *)
        match Rank.generic_sort r.Engine.reports with
        | a :: b :: c :: _ ->
            Alcotest.(check (list string)) "order" [ "f_sec"; "f_err"; "f_norm" ]
              [ a.Report.func; b.Report.func; c.Report.func ]
        | _ -> Alcotest.fail "expected three reports");
    t "fmt: user string as format flagged; %s idiom clean" `Quick (fun () ->
        let bad = "int f(int n) { char *s = get_user_string(n); printf(s); return 0; }" in
        let good =
          "int f(int n) { char *s = get_user_string(n); printf(\"%s\", s); return 0; }"
        in
        let r = run [ Fmt_checker.checker () ] bad in
        Alcotest.(check int) "flagged" 1 (List.length r.Engine.reports);
        (match r.Engine.reports with
        | [ rep ] ->
            Alcotest.(check bool) "SECURITY" true
              (List.mem "SECURITY" rep.Report.annotations)
        | _ -> ());
        Alcotest.(check int) "idiom clean" 0 (count [ Fmt_checker.checker () ] good));
    t "registry includes the new checkers" `Quick (fun () ->
        List.iter
          (fun n -> Alcotest.(check bool) n true (Option.is_some (Registry.find n)))
          [ "leak"; "range"; "strictfree"; "fmt"; "lockstat"; "secpath"; "errpath" ]);
  ]
