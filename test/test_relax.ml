(* F6: the relax (suffix-summary) computation, exercised through
   multi-block functions where the function summary can only be right if
   backward propagation composed the block summaries correctly. *)

let t = Alcotest.test_case

let summaries_for ?(checker = Free_checker.checker ()) src =
  let tu = Cparse.parse_tunit ~file:"t.c" src in
  let sg = Supergraph.build [ tu ] in
  let result, per_ext = Engine.run_with_summaries sg [ checker ] in
  let summaries =
    match per_ext with [ (_, s) ] -> s | _ -> failwith "one extension expected"
  in
  (sg, result, summaries)

let entry_suffix sg summaries fname =
  let _, sfx = Hashtbl.find summaries fname in
  let cfg = Option.get (Supergraph.cfg_of sg fname) in
  List.map (Format.asprintf "%a" Summary.pp_edge) (Summary.edges sfx.(cfg.Cfg.entry))

let mem l s = List.exists (String.equal s) l

let suite =
  [
    t "suffix edges propagate through a straight chain of blocks" `Quick (fun () ->
        (* blocks are split by the branches; the entry's suffix must still
           see the free that happens three blocks later *)
        let src =
          "void late_free(int *p, int a, int b) {\n\
           if (a) { a = 1; } else { a = 2; }\n\
           if (b) { b = 1; } else { b = 2; }\n\
           kfree(p);\n\
           }"
        in
        let sg, _, summaries = summaries_for src in
        let sfx = entry_suffix sg summaries "late_free" in
        Alcotest.(check bool) "add edge reached entry" true
          (mem sfx "(start,v:p->unknown) --> (start,v:p->freed)"));
    t "add edges compose with global-only edges (Fig. 6 add case)" `Quick (fun () ->
        (* the instance is created after a global-state change; the
           propagated add edge must carry the entry global state *)
        let checker =
          List.hd
            (Metal_compile.load ~file:"<m>"
               {|sm g { state decl any_pointer v;
                  start: { enter() } ==> inside;
                  inside: { grab(v) } ==> v.held;
                  v.held: { drop(v) } ==> v.stop; }|})
        in
        let src = "void f(int *p) { enter(); grab(p); }" in
        let sg, _, summaries = summaries_for ~checker src in
        let sfx = entry_suffix sg summaries "f" in
        Alcotest.(check bool) "add edge starts in 'start'" true
          (mem sfx "(start,v:p->unknown) --> (inside,v:p->held)"));
    t "transition edges compose across states" `Quick (fun () ->
        let src =
          "void f(int *p, int c) {\n\
           if (c) { c = 2; }\n\
           kfree(p);\n\
           }"
        in
        let sg, _, summaries = summaries_for src in
        let sfx = entry_suffix sg summaries "f" in
        Alcotest.(check bool) "p freed at exit" true
          (mem sfx "(start,v:p->unknown) --> (start,v:p->freed)"));
    t "suffix summaries power distinct-entry-state reuse (Section 6.2)" `Quick
      (fun () ->
        (* 'sink' is entered once with p fresh and once with p freed; the
           second entry is a summary application, not a re-traversal, and
           must still produce the freed exit state for the caller *)
        let src =
          "void sink(int *p) { use(p); }\n\
           int top(int *p) {\n\
           sink(p);\n\
           kfree(p);\n\
           sink(p);\n\
           return *p;\n\
           }"
        in
        let sg, result, summaries = summaries_for src in
        ignore sg;
        ignore summaries;
        (* deref after both calls still sees freed state *)
        Alcotest.(check int) "error at top" 1 (List.length result.Engine.reports));
    t "suffix summary at a cache-hit block is relaxed along the aborted path"
      `Quick (fun () ->
        (* the diamond guarantees cache hits at the join; after the run the
           entry suffix must exist even though later paths aborted early *)
        let src = Synth.diamond_chain ~n:4 in
        let sg, result, summaries = summaries_for src in
        let sfx = entry_suffix sg summaries "diamond" in
        Alcotest.(check bool) "cache hits happened" true
          (result.Engine.stats.Engine.cache_hits > 0);
        Alcotest.(check bool) "entry suffix nonempty" true (sfx <> []));
    t "stop edges never appear in suffix summaries" `Quick (fun () ->
        let src = "void f(int *p) { kfree(p); p = 0; }" in
        let sg, _, summaries = summaries_for src in
        let sfx = entry_suffix sg summaries "f" in
        Alcotest.(check bool) "no stop" true
          (not (List.exists (fun s ->
               let n = String.length s and pat = "stop" in
               let m = String.length pat in
               let rec go i = i + m <= n && (String.equal (String.sub s i m) pat || go (i + 1)) in
               go 0) sfx)));
    t "baseline: exhaustive state count dwarfs top-down (Section 6)" `Quick
      (fun () ->
        let sg =
          Supergraph.build
            [ Cparse.parse_tunit ~file:"b.c" (Synth.call_tree ~depth:2 ~fanout:3) ]
        in
        let free = Free_checker.checker () in
        let td = Baseline.topdown_entry_states sg free in
        let ex = Baseline.exhaustive_entry_states sg free in
        Alcotest.(check bool) "top-down strictly smaller" true (td < ex);
        (* and the exhaustive scheme really performs that many runs *)
        let runs = Baseline.run_exhaustive sg free in
        Alcotest.(check int) "runs = predicted states" ex runs);
    t "baseline: state space of the free checker" `Quick (fun () ->
        let free = Free_checker.checker () in
        Alcotest.(check (list string)) "var states" [ "freed" ]
          (Baseline.state_values free);
        Alcotest.(check (list string)) "global states" [ "start" ]
          (Baseline.global_values free));
    t "function summary is the entry block's suffix summary" `Quick (fun () ->
        (* cross-check: applying 'release' twice from the same state uses
           the summary the second time (summary_hits grows) *)
        let src =
          "void release(int *q) { kfree(q); }\n\
           int a(int *p) { release(p); return 0; }\n\
           int b(int *p) { release(p); return 0; }"
        in
        let _, result, _ = summaries_for src in
        Alcotest.(check bool) "second call is a summary hit" true
          (result.Engine.stats.Engine.summary_hits >= 1));
  ]
