(* Engine edge cases: unusual C shapes, option toggles, multi-checker
   interactions. *)

let t = Alcotest.test_case

let run ?options ?(checkers = [ Free_checker.checker () ]) src =
  Engine.check_source ?options ~file:"t.c" src checkers

let count ?options ?checkers src = List.length (run ?options ?checkers src).Engine.reports

let suite =
  [
    t "state survives goto" `Quick (fun () ->
        let src =
          "int f(int *p, int c) { kfree(p); if (c) goto use; return 0; use: return *p; }"
        in
        Alcotest.(check int) "err" 1 (count src));
    t "goto loop terminates" `Quick (fun () ->
        let src =
          "int f(int n) { again: n = n - 1; if (n > 0) goto again; return n; }"
        in
        Alcotest.(check int) "no reports" 0 (count src));
    t "switch fallthrough carries state" `Quick (fun () ->
        let src =
          "int f(int *p, int m) {\n\
           switch (m) {\n\
           case 1: kfree(p);\n\
           case 2: return *p;\n\
           default: break;\n\
           }\n\
           return 0;\n\
           }"
        in
        (* case 1 falls through to the deref *)
        Alcotest.(check int) "err" 1 (count src));
    t "ternary subexpressions are visited" `Quick (fun () ->
        let src = "int f(int *p, int c) { kfree(p); return c ? *p : 0; }" in
        Alcotest.(check int) "err in ternary arm" 1 (count src));
    t "comma expression order" `Quick (fun () ->
        let src = "int f(int *p) { int x; x = (kfree(p), *p); return x; }" in
        Alcotest.(check int) "err" 1 (count src));
    t "compound assignment kills" `Quick (fun () ->
        let src = "int f(int **a, int i) { kfree(a[i]); i += 1; return *a[i]; }" in
        Alcotest.(check int) "killed" 0 (count src));
    t "do-while body analysed" `Quick (fun () ->
        let src = "int f(int *p, int n) { kfree(p); do { n = *p; } while (0); return n; }" in
        Alcotest.(check int) "err" 1 (count src));
    t "nested call arguments in exec order" `Quick (fun () ->
        let src = "int f(int *p) { use(kfree(p), *p); return 0; }" in
        (* kfree(p) is an argument evaluated before *p *)
        Alcotest.(check int) "err" 1 (count src));
    t "for loop with free inside" `Quick (fun () ->
        let src =
          "int f(int *p, int n) { for (int i = 0; i < n; i++) { if (i == 2) { kfree(p); } } return *p; }"
        in
        Alcotest.(check bool) "found" true (count src >= 1));
    t "no_synonyms option stops alias tracking" `Quick (fun () ->
        let src = "int f(int *p) { int *q; kfree(p); q = p; return *q; }" in
        Alcotest.(check int) "with synonyms" 1 (count src);
        Alcotest.(check int) "without" 0
          (count ~options:{ Engine.default_options with Engine.synonyms = false } src));
    t "max_call_depth bounds recursion work" `Quick (fun () ->
        let src = Synth.call_chain ~depth:30 in
        let r =
          run ~options:{ Engine.default_options with Engine.max_call_depth = 5 } src
        in
        (* depth-capped: the free at the bottom is never seen *)
        Alcotest.(check int) "no report" 0 (List.length r.Engine.reports));
    t "two sms from one metal file both run" `Quick (fun () ->
        let sms =
          Metal_compile.load ~file:"<m>"
            {|sm first { start: { a() } ==> { err("saw a"); }; }
              sm second { start: { b() } ==> { err("saw b"); }; }|}
        in
        let r = run ~checkers:sms "int f(void) { a(); b(); return 0; }" in
        Alcotest.(check int) "both" 2 (List.length r.Engine.reports));
    t "string and char literals in patterns" `Quick (fun () ->
        let sms =
          Metal_compile.load ~file:"<m>"
            {|sm lit { decl any_arguments args;
               start: { strcpy(args) } && ${ mc_num_args(args) == 2 } ==> { err("strcpy!"); }; }|}
        in
        let r = run ~checkers:sms "int f(char *d, char *s) { strcpy(d, s); return 0; }" in
        Alcotest.(check int) "flagged" 1 (List.length r.Engine.reports));
    t "instance data values persist across blocks" `Quick (fun () ->
        let src =
          "struct lk { int h; };\n\
           int f(struct lk *l, int c) { rlock(l); if (c) { rlock(l); runlock(l); } runlock(l); return 0; }"
        in
        Alcotest.(check int) "balanced" 0
          (count ~checkers:[ Lock_checker.recursive_checker () ] src));
    t "global + var state interplay" `Quick (fun () ->
        (* a checker whose var transitions are gated on the global state *)
        let sms =
          Metal_compile.load ~file:"<m>"
            {|sm gated {
               state decl any_pointer v;
               outside:
                 { enter() } ==> inside
               ;
               inside:
                 { leave() } ==> outside
               | { touch(v) } ==> v.dirty
               ;
               v.dirty:
                 { *v } ==> v.stop, { err("dirty deref"); }
               ;
             }|}
        in
        let flagged =
          count ~checkers:sms
            "int f(int *p) { enter(); touch(p); return *p; }"
        in
        let clean =
          count ~checkers:sms "int f(int *p) { touch(p); return *p; }"
        in
        Alcotest.(check int) "inside flags" 1 flagged;
        Alcotest.(check int) "outside ignores" 0 clean);
    t "engine handles empty functions" `Quick (fun () ->
        Alcotest.(check int) "empty" 0 (count "void f(void) {}"));
    t "unreachable code after return is not analysed" `Quick (fun () ->
        let src = "int f(int *p) { return 0; kfree(p); return *p; }" in
        Alcotest.(check int) "dead" 0 (count src));
    t "report dedup: same error reported once across paths" `Quick (fun () ->
        let src =
          "int f(int *p, int a) { kfree(p); if (a) { a = 1; } else { a = 2; } return *p; }"
        in
        Alcotest.(check int) "single" 1 (count src));
    t "annotations survive between extensions in one run" `Quick (fun () ->
        let first =
          List.hd
            (Metal_compile.load ~file:"<m>"
               {|sm marker { decl any_fn_call fn; decl any_arguments args;
                  start: { fn(args) } && ${ mc_is_call_to(fn, "seal") } ==>
                    { annotate_ast(mc_stmt, "sealed"); }; }|})
        in
        let second =
          List.hd
            (Metal_compile.load ~file:"<m>"
               {|sm reader { decl any_fn_call fn; decl any_arguments args;
                  start: { fn(args) } && ${ mc_annotated(mc_stmt, "sealed") } ==>
                    { err("saw sealed call"); }; }|})
        in
        let r = run ~checkers:[ first; second ] "int f(void) { seal(); return 0; }" in
        Alcotest.(check int) "second sees first's mark" 1
          (List.length r.Engine.reports));
  ]
