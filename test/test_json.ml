(* JSON report output. *)

let t = Alcotest.test_case

let suite =
  [
    t "escaping" `Quick (fun () ->
        Alcotest.(check string) "quotes" "a\\\"b" (Json_out.escape "a\"b");
        Alcotest.(check string) "backslash" "a\\\\b" (Json_out.escape "a\\b");
        Alcotest.(check string) "newline" "a\\nb" (Json_out.escape "a\nb");
        Alcotest.(check string) "control" "\\u0001" (Json_out.escape "\001"));
    t "values print" `Quick (fun () ->
        Alcotest.(check string) "null" "null" (Json_out.to_string Json_out.Null);
        Alcotest.(check string) "bool" "true" (Json_out.to_string (Json_out.Bool true));
        Alcotest.(check string) "int" "42" (Json_out.to_string (Json_out.Int 42));
        Alcotest.(check string) "arr" "[1,2]"
          (Json_out.to_string (Json_out.Arr [ Json_out.Int 1; Json_out.Int 2 ]));
        Alcotest.(check string) "obj" {|{"k":"v"}|}
          (Json_out.to_string (Json_out.Obj [ ("k", Json_out.Str "v") ])));
    t "report round structure" `Quick (fun () ->
        let r =
          Report.make ~checker:"free" ~message:"boom \"quoted\""
            ~loc:(Srcloc.make ~file:"a.c" ~line:3 ~col:7)
            ~func:"f" ~var:"p" ~annotations:[ "SECURITY" ] ()
        in
        let js = Json_out.to_string (Json_out.of_report r) in
        let has needle =
          let n = String.length js and m = String.length needle in
          let rec go i =
            i + m <= n && (String.equal (String.sub js i m) needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool) "checker" true (has {|"checker":"free"|});
        Alcotest.(check bool) "line" true (has {|"line":3|});
        Alcotest.(check bool) "escaped msg" true (has {|boom \"quoted\"|});
        Alcotest.(check bool) "annotations" true (has {|["SECURITY"]|}));
    t "reports array is parseable-ish" `Quick (fun () ->
        let r1 = Report.make ~checker:"a" ~message:"m1" ~loc:Srcloc.dummy () in
        let r2 = Report.make ~checker:"b" ~message:"m2" ~loc:Srcloc.dummy () in
        let out = Json_out.reports_to_string [ r1; r2 ] in
        Alcotest.(check bool) "starts [" true (String.length out > 0 && out.[0] = '[');
        Alcotest.(check bool) "has comma" true (String.contains out ','));
    t "empty report list" `Quick (fun () ->
        let out = Json_out.reports_to_string [] in
        Alcotest.(check bool) "brackets" true
          (String.length out >= 2 && out.[0] = '['));
  ]
