(* Intraprocedural engine behaviour: transitions, kills, synonyms, caching,
   branch splitting, global state, composition, instance caps. *)

let t = Alcotest.test_case

let run ?options ?(checkers = [ Free_checker.checker () ]) src =
  Engine.check_source ?options ~file:"t.c" src checkers

let msgs result = List.map (fun (r : Report.t) -> r.Report.message) result.Engine.reports
let count result = List.length result.Engine.reports

let suite =
  [
    t "use after free flagged" `Quick (fun () ->
        let r = run "int f(int *p) { kfree(p); return *p; }" in
        Alcotest.(check (list string)) "msgs" [ "using p after free!" ] (msgs r));
    t "double free flagged" `Quick (fun () ->
        let r = run "int f(int *p) { kfree(p); kfree(p); return 0; }" in
        Alcotest.(check (list string)) "msgs" [ "double free of p!" ] (msgs r));
    t "free then no use is clean" `Quick (fun () ->
        let r = run "int f(int *p) { kfree(p); return 0; }" in
        Alcotest.(check int) "none" 0 (count r));
    t "no transition fires at the creating statement (Section 3.2)" `Quick
      (fun () ->
        (* a single kfree must not immediately double-free *)
        let r = run "int f(int *p) { kfree(p); return 0; }" in
        Alcotest.(check int) "no dup" 0 (count r));
    t "refree after stop reinstantiates the SM" `Quick (fun () ->
        let r =
          run "int f(int *p) { kfree(p); kfree(p); kfree(p); return 0; }"
        in
        (* kfree2 errors and stops; kfree3 re-creates then... only one error
           because the double-free message dedups per location pair; at
           least one error must be present *)
        Alcotest.(check bool) "errors" true (count r >= 1));
    t "kill on redefinition suppresses FP (p = 0)" `Quick (fun () ->
        let r = run "int f(int *p) { kfree(p); p = 0; return *p; }" in
        Alcotest.(check int) "no report" 0 (count r));
    t "kill extends to expressions using the variable" `Quick (fun () ->
        (* a[i] has state; i redefined; a[i] must be killed *)
        let r =
          run
            "int g(int **a, int i) { kfree(a[i]); i = i + 1; return *a[i]; }"
        in
        Alcotest.(check int) "killed" 0 (count r));
    t "increment kills dependent expressions" `Quick (fun () ->
        let r = run "int g(int **a, int i) { kfree(a[i]); i++; return *a[i]; }" in
        Alcotest.(check int) "killed" 0 (count r));
    t "auto-kill can be disabled per checker" `Quick (fun () ->
        let src = "int f(int *p) { kfree(p); p = 0; return *p; }" in
        let sm =
          List.hd
            (Metal_compile.load ~file:"<m>"
               ({|sm nk { option no_auto_kill; state decl any_pointer v;
                  start: { kfree(v) } ==> v.freed;
                  v.freed: { *v } ==> v.stop, { err("use after free"); }; }|}))
        in
        let r = run ~checkers:[ sm ] src in
        Alcotest.(check int) "reported without kill" 1 (count r));
    t "synonyms catch aliased use (q = p)" `Quick (fun () ->
        let r = run "int f(int *p) { int *q; kfree(p); q = p; return *q; }" in
        Alcotest.(check (list string)) "msgs" [ "using q after free!" ] (msgs r));
    t "synonym state mirrors on transition" `Quick (fun () ->
        (* unlocking via the alias releases the original too *)
        let src =
          "struct lk { int x; };\n\
           int f(struct lk *a) { struct lk *b; lock(a); b = a; unlock(b); return 0; }"
        in
        let r = run ~checkers:[ Lock_checker.checker () ] src in
        Alcotest.(check int) "no leak report" 0 (count r));
    t "branch splits and rejoins" `Quick (fun () ->
        let r =
          run
            "int f(int *p, int c) { if (c) { kfree(p); } else { kfree(p); } return *p; }"
        in
        Alcotest.(check int) "one report" 1 (count r));
    t "error only on the freeing path" `Quick (fun () ->
        let r = run "int f(int *p, int c) { if (c) { kfree(p); } return 0; }" in
        Alcotest.(check int) "clean" 0 (count r));
    t "loops terminate via caching" `Quick (fun () ->
        let r =
          run
            "int f(int *p, int n) { while (n > 0) { n = n - 1; } kfree(p); return *p; }"
        in
        Alcotest.(check int) "one" 1 (count r));
    t "free inside loop: cache bounds reanalysis" `Quick (fun () ->
        let r =
          run "int f(int **a, int n) { int i = 0; while (i < n) { kfree(a[i]); i = i + 1; } return 0; }"
        in
        (* a[i] killed by i reassignment each iteration; must terminate *)
        Alcotest.(check int) "no fp" 0 (count r));
    t "switch: all arms explored" `Quick (fun () ->
        let r =
          run
            "int f(int *p, int m) { switch (m) { case 1: kfree(p); break; default: break; } return *p; }"
        in
        Alcotest.(check int) "one" 1 (count r));
    t "global state machine (interrupts)" `Quick (fun () ->
        let src = "int f(int w) { cli(); if (w) { return w; } sti(); return 0; }" in
        let r = run ~checkers:[ Intr_checker.checker () ] src in
        Alcotest.(check (list string)) "msg"
          [ "path ends with interrupts disabled!" ]
          (msgs r));
    t "global double-disable" `Quick (fun () ->
        let src = "int f(void) { cli(); cli(); sti(); return 0; }" in
        let r = run ~checkers:[ Intr_checker.checker () ] src in
        Alcotest.(check bool) "double disable" true
          (List.mem "disabling interrupts that are already disabled" (msgs r)));
    t "composition: path-kill suppresses downstream reports" `Quick (fun () ->
        let src = "int f(int *p) { kfree(p); panic(\"dead\"); return *p; }" in
        let r =
          run ~checkers:[ Pathkill.checker (); Free_checker.checker () ] src
        in
        Alcotest.(check int) "suppressed" 0 (count r));
    t "without path-kill the report appears" `Quick (fun () ->
        let src = "int f(int *p) { kfree(p); panic(\"dead\"); return *p; }" in
        let r = run src in
        Alcotest.(check int) "present" 1 (count r));
    t "caching stats: revisits are hits" `Quick (fun () ->
        let src =
          "int f(int *p, int a, int b) { kfree(p); if (a) { b = 1; } if (b) { a = 2; } return *p; }"
        in
        let r = run src in
        Alcotest.(check bool) "has cache hits" true (r.Engine.stats.Engine.cache_hits > 0));
    t "caching off explores exponentially more paths" `Quick (fun () ->
        let src = Synth.diamond_chain ~n:8 in
        let on = run src in
        let off = run ~options:{ Engine.default_options with Engine.caching = false } src in
        Alcotest.(check bool) "fewer paths with caching" true
          (on.Engine.stats.Engine.paths_explored * 4
          < off.Engine.stats.Engine.paths_explored);
        Alcotest.(check int) "same errors" (count on) (count off));
    t "independence: instances scale linearly" `Quick (fun () ->
        let r10 = run (Synth.many_tracked ~n:10) in
        let r20 = run (Synth.many_tracked ~n:20) in
        Alcotest.(check int) "10 errors" 10 (count r10);
        Alcotest.(check int) "20 errors" 20 (count r20);
        let n10 = r10.Engine.stats.Engine.nodes_visited in
        let n20 = r20.Engine.stats.Engine.nodes_visited in
        (* roughly linear: visiting nodes should not quadruple *)
        Alcotest.(check bool) "sub-quadratic" true (n20 < n10 * 3));
    t "instance cap bounds tracking" `Quick (fun () ->
        let src = Synth.many_tracked ~n:50 in
        let r =
          run ~options:{ Engine.default_options with Engine.max_instances = 5 } src
        in
        Alcotest.(check bool) "capped" true (count r <= 6));
    t "trylock models both outcomes (Fig. 3)" `Quick (fun () ->
        let src =
          "struct lk { int x; };\n\
           int f(struct lk *l) { if (trylock(l)) { unlock(l); } return 0; }"
        in
        let r = run ~checkers:[ Lock_checker.checker () ] src in
        Alcotest.(check int) "clean" 0 (count r));
    t "trylock false branch holds no lock" `Quick (fun () ->
        let src =
          "struct lk { int x; };\n\
           int f(struct lk *l) { if (trylock(l)) { return 1; } return 0; }"
        in
        let r = run ~checkers:[ Lock_checker.checker () ] src in
        (* true branch: lock held, return -> "never released" *)
        Alcotest.(check (list string)) "leak on true branch"
          [ "lock l never released" ]
          (msgs r));
    t "trylock result stored in variable then branched" `Quick (fun () ->
        let src =
          "struct lk { int x; };\n\
           int f(struct lk *l) { int ok; ok = trylock(l); if (ok) { unlock(l); } return 0; }"
        in
        let r = run ~checkers:[ Lock_checker.checker () ] src in
        Alcotest.(check int) "clean" 0 (count r));
    t "declaration initializer is an assignment event" `Quick (fun () ->
        let src = "int f(void) { int *p = kmalloc(4); return *p; }" in
        let r = run ~checkers:[ Null_checker.checker () ] src in
        Alcotest.(check int) "unchecked deref" 1 (count r));
    t "null checker: checked pointer is clean" `Quick (fun () ->
        let src =
          "int f(void) { int *p = kmalloc(4); if (!p) { return -1; } return *p; }"
        in
        let r = run ~checkers:[ Null_checker.checker () ] src in
        Alcotest.(check int) "clean" 0 (count r));
    t "null checker: deref on failed-check path" `Quick (fun () ->
        let src =
          "int f(void) { int *p = kmalloc(4); if (!p) { return *p; } return 0; }"
        in
        let r = run ~checkers:[ Null_checker.checker () ] src in
        Alcotest.(check bool) "definite null deref" true
          (List.exists
             (fun (m : string) ->
               String.length m > 0 && String.sub m 0 13 = "dereferencing")
             (msgs r)));
    t "several checkers in one run share nothing but annotations" `Quick
      (fun () ->
        let src =
          "int f(int *p) { kfree(p); cli(); sti(); return *p; }"
        in
        let r =
          run ~checkers:[ Free_checker.checker (); Intr_checker.checker () ] src
        in
        Alcotest.(check int) "only the free error" 1 (count r));
    t "report carries conditionals crossed" `Quick (fun () ->
        let src =
          "int f(int *p, int a, int b) { kfree(p); if (a) { b = 1; } if (b) { a = 1; } return *p; }"
        in
        let r = run src in
        match r.Engine.reports with
        | rep :: _ -> Alcotest.(check bool) "conds > 0" true (rep.Report.conditionals > 0)
        | [] -> Alcotest.fail "expected a report");
    t "report start_loc is the free site" `Quick (fun () ->
        let src = "int f(int *p) {\n  kfree(p);\n  return *p;\n}" in
        let r = run src in
        match r.Engine.reports with
        | rep :: _ ->
            Alcotest.(check int) "start line" 2 rep.Report.start_loc.Srcloc.line;
            Alcotest.(check int) "err line" 3 rep.Report.loc.Srcloc.line
        | [] -> Alcotest.fail "expected a report");
  ]
