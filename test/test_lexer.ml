(* Lexer tests: C tokens, comments, literals, metal-mode lexemes. *)

let toks ?(mode = Clex.C_mode) src =
  List.map (fun t -> t.Clex.tok) (Clex.tokenize ~mode ~file:"<test>" src)

let check_toks name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let got = toks src in
      Alcotest.(check (list string))
        name
        (List.map Tok.to_string (expected @ [ Tok.EOF ]))
        (List.map Tok.to_string got))

let t = Alcotest.test_case

let suite =
  [
    check_toks "identifiers and ints" "foo bar42 7"
      [ Tok.IDENT "foo"; Tok.IDENT "bar42"; Tok.INT_LIT 7L ];
    check_toks "keywords" "if else while int return"
      [ Tok.KW_IF; Tok.KW_ELSE; Tok.KW_WHILE; Tok.KW_INT; Tok.KW_RETURN ];
    check_toks "hex and octal" "0x10 010" [ Tok.INT_LIT 16L; Tok.INT_LIT 8L ];
    check_toks "integer suffixes" "10UL 3u" [ Tok.INT_LIT 10L; Tok.INT_LIT 3L ];
    check_toks "float" "1.5 2e3" [ Tok.FLOAT_LIT 1.5; Tok.FLOAT_LIT 2000.0 ];
    check_toks "char literals" "'a' '\\n' '\\0'"
      [ Tok.CHAR_LIT 'a'; Tok.CHAR_LIT '\n'; Tok.CHAR_LIT '\000' ];
    check_toks "string with escapes" {|"a\tb"|} [ Tok.STR_LIT "a\tb" ];
    check_toks "operators two-char" "== != <= >= && || << >> -> ++ --"
      [
        Tok.EQEQ; Tok.NEQ; Tok.LE; Tok.GE; Tok.ANDAND; Tok.OROR; Tok.SHL; Tok.SHR;
        Tok.ARROW; Tok.PLUSPLUS; Tok.MINUSMINUS;
      ];
    check_toks "compound assigns" "+= -= *= /= %= &= |= ^= <<= >>="
      [
        Tok.PLUS_ASSIGN; Tok.MINUS_ASSIGN; Tok.STAR_ASSIGN; Tok.SLASH_ASSIGN;
        Tok.PERCENT_ASSIGN; Tok.AMP_ASSIGN; Tok.PIPE_ASSIGN; Tok.CARET_ASSIGN;
        Tok.SHL_ASSIGN; Tok.SHR_ASSIGN;
      ];
    check_toks "line comment" "a // comment here\nb" [ Tok.IDENT "a"; Tok.IDENT "b" ];
    check_toks "block comment" "a /* x\ny */ b" [ Tok.IDENT "a"; Tok.IDENT "b" ];
    check_toks "preprocessor line skipped" "#include <stdio.h>\nx"
      [ Tok.IDENT "x" ];
    check_toks "preprocessor continuation" "#define A \\\n 42\ny" [ Tok.IDENT "y" ];
    check_toks "ellipsis" "f(int, ...)"
      [ Tok.IDENT "f"; Tok.LPAREN; Tok.KW_INT; Tok.COMMA; Tok.ELLIPSIS; Tok.RPAREN ];
    t "metal mode: fat arrow" `Quick (fun () ->
        let got = toks ~mode:Clex.Metal_mode "a ==> b" in
        Alcotest.(check bool)
          "has FAT_ARROW" true
          (List.mem Tok.FAT_ARROW got));
    t "C mode: ==> is == then >" `Quick (fun () ->
        let got = toks "a ==> b" in
        Alcotest.(check bool) "EQEQ" true (List.mem Tok.EQEQ got);
        Alcotest.(check bool) "GT" true (List.mem Tok.GT got));
    t "metal mode: dollar forms" `Quick (fun () ->
        let got = toks ~mode:Clex.Metal_mode "$end_of_path$ ${" in
        Alcotest.(check bool)
          "dollar word" true
          (List.mem (Tok.DOLLAR_WORD "end_of_path") got);
        Alcotest.(check bool) "dollar brace" true (List.mem Tok.DOLLAR_LBRACE got));
    t "locations track lines" `Quick (fun () ->
        let ts = Clex.tokenize ~file:"f.c" "a\nb\n  c" in
        let locs = List.map (fun t -> (t.Clex.loc.Srcloc.line, t.Clex.loc.Srcloc.col)) ts in
        match locs with
        | (1, 1) :: (2, 1) :: (3, 3) :: _ -> ()
        | _ -> Alcotest.fail "bad locations");
    t "lex error raises" `Quick (fun () ->
        match toks "a ` b" with
        | exception Clex.Lex_error _ -> ()
        | _ -> Alcotest.fail "expected Lex_error");
    t "unterminated string raises" `Quick (fun () ->
        match toks "\"abc" with
        | exception Clex.Lex_error _ -> ()
        | _ -> Alcotest.fail "expected Lex_error");
    t "unterminated comment raises" `Quick (fun () ->
        match toks "/* abc" with
        | exception Clex.Lex_error _ -> ()
        | _ -> Alcotest.fail "expected Lex_error");
    t "adjacent string concatenation is parser-side" `Quick (fun () ->
        let got = toks {|"a" "b"|} in
        Alcotest.(check int) "two strings" 3 (List.length got));
  ]
