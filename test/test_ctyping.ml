(* Light type inference used by typed pattern holes. *)

let t = Alcotest.test_case
let e s = Cparse.expr_of_string ~file:"<t>" s

let env =
  Ctyping.of_program
    [
      Cparse.parse_tunit ~file:"<t>"
        {|
typedef int myint;
typedef myint *intp;
struct node { int value; struct node *next; };
int gi; float gf; int *gp; char *gs;
struct node gn; struct node *gnp;
intp tp;
int add(int a, int b);
int *alloc(int n);
|};
    ]

let ty s = Ctyping.type_of_expr env (e s)

let check_ty name src expected =
  t name `Quick (fun () ->
      Alcotest.(check string) name expected (Ctyp.to_string (ty src)))

let suite =
  [
    check_ty "int literal" "42" "int";
    check_ty "global int" "gi" "int";
    check_ty "float" "gf" "float";
    check_ty "deref pointer" "*gp" "int";
    check_ty "address-of" "&gi" "int *";
    check_ty "string literal" "\"s\"" "char *";
    check_ty "field access" "gn.value" "int";
    check_ty "arrow access" "gnp->value" "int";
    check_ty "nested arrow" "gnp->next->next" "struct node *";
    check_ty "index" "gp[3]" "int";
    check_ty "call returns declared type" "add(1, 2)" "int";
    check_ty "call returning pointer" "alloc(4)" "int *";
    check_ty "deref of call" "*alloc(4)" "int";
    check_ty "comparison is int" "gi < gf" "int";
    check_ty "cast wins" "(char *)gp" "char *";
    check_ty "pointer arithmetic keeps pointer" "gp + 1" "int *";
    check_ty "comma takes rhs" "gi, gf" "float";
    check_ty "assignment has lhs type" "gi = 2" "int";
    check_ty "unknown ident" "mystery" "?";
    t "typedef resolution" `Quick (fun () ->
        Alcotest.(check bool) "tp is pointer" true (Ctyping.is_pointer_expr env (e "tp"));
        Alcotest.(check string) "deref typedef ptr" "int"
          (Ctyp.to_string (Ctyping.type_of_expr env (e "*tp"))));
    t "is_pointer_expr" `Quick (fun () ->
        Alcotest.(check bool) "gp" true (Ctyping.is_pointer_expr env (e "gp"));
        Alcotest.(check bool) "gi" false (Ctyping.is_pointer_expr env (e "gi"));
        Alcotest.(check bool) "&gi" true (Ctyping.is_pointer_expr env (e "&gi"));
        Alcotest.(check bool) "gnp->next" true (Ctyping.is_pointer_expr env (e "gnp->next")));
    t "is_scalar_expr" `Quick (fun () ->
        Alcotest.(check bool) "int" true (Ctyping.is_scalar_expr env (e "gi"));
        Alcotest.(check bool) "struct" false (Ctyping.is_scalar_expr env (e "gn")));
    t "enter_function sees params and locals" `Quick (fun () ->
        let tu =
          Cparse.parse_tunit ~file:"<t>"
            "int f(int *param) { int local; { char inner; } return 0; }"
        in
        match tu.Cast.tu_globals with
        | [ Cast.Gfun f ] ->
            let fenv = Ctyping.enter_function env f in
            Alcotest.(check bool) "param" true
              (Ctyping.is_pointer_expr fenv (e "param"));
            Alcotest.(check string) "local" "int"
              (Ctyp.to_string (Ctyping.type_of_expr fenv (e "local")));
            Alcotest.(check string) "inner-scope local" "char"
              (Ctyp.to_string (Ctyping.type_of_expr fenv (e "inner")))
        | _ -> Alcotest.fail "expected function");
    t "global info for file-scope rules" `Quick (fun () ->
        let tu1 = Cparse.parse_tunit ~file:"a.c" "static int fsv; int shared;" in
        let env = Ctyping.of_program [ tu1 ] in
        Alcotest.(check (option (pair string bool))) "static" (Some ("a.c", true))
          (Ctyping.lookup_global_info env "fsv");
        Alcotest.(check (option (pair string bool))) "extern" (Some ("a.c", false))
          (Ctyping.lookup_global_info env "shared");
        Alcotest.(check (option (pair string bool))) "unknown" None
          (Ctyping.lookup_global_info env "nope"));
    t "holes match via typing" `Quick (fun () ->
        Alcotest.(check bool) "any_pointer gp" true
          (Holes.matches env Holes.Any_pointer (e "gp"));
        Alcotest.(check bool) "any_pointer gi" false
          (Holes.matches env Holes.Any_pointer (e "gi"));
        Alcotest.(check bool) "concrete int" true
          (Holes.matches env (Holes.Concrete Ctyp.int_) (e "gi"));
        Alcotest.(check bool) "any_fn_call" true
          (Holes.matches env Holes.Any_fn_call (e "add(1,2)"));
        Alcotest.(check bool) "hole names parse" true
          (Holes.of_name "any_arguments" = Some Holes.Any_arguments));
  ]
