(* Interned state tuples: the Intern table itself, the id-indexed Summary
   behaviour built on it, the engine counters it feeds (cache probes/hits on
   loop and diamond CFGs), and the Supergraph duplicate-definition guard. *)

let t = Alcotest.test_case

let run ?(checkers = [ Free_checker.checker () ]) src =
  Engine.check_source ~file:"t.c" src checkers

(* ---------------------------------------------------------------- *)
(* Intern                                                            *)
(* ---------------------------------------------------------------- *)

let intern_tests =
  [
    t "atom ids are stable and dense" `Quick (fun () ->
        let it = Intern.create () in
        let a = Intern.atom it "alpha" in
        let b = Intern.atom it "beta" in
        Alcotest.(check bool) "distinct" true (a <> b);
        Alcotest.(check int) "memoised" a (Intern.atom it "alpha");
        Alcotest.(check string) "name round-trip" "beta" (Intern.name it b);
        Alcotest.(check int) "two atoms" 2 (Intern.n_atoms it));
    t "tuple ids memoise the rendered key" `Quick (fun () ->
        let it = Intern.create () in
        let id = Intern.tuple it ~g:(Intern.atom it "locked") ~vkey:Intern.no_var ~vval:Intern.no_var in
        Alcotest.(check string) "renders like tuple_key" "(locked,<>)"
          (Intern.name it id);
        Alcotest.(check int) "same triple, same id" id
          (Intern.tuple it ~g:(Intern.atom it "locked") ~vkey:Intern.no_var
             ~vval:Intern.no_var);
        (* and it lands in the same atom space as a pre-rendered key *)
        Alcotest.(check int) "atom of rendered key" id
          (Intern.atom it "(locked,<>)");
        Alcotest.(check int) "one tuple triple" 1 (Intern.n_tuples it));
    t "tables grow past the initial capacity" `Quick (fun () ->
        let it = Intern.create () in
        for i = 0 to 999 do
          ignore (Intern.atom it (string_of_int i))
        done;
        Alcotest.(check int) "all kept" 1000 (Intern.n_atoms it);
        Alcotest.(check string) "late name intact" "997"
          (Intern.name it (Intern.atom it "997")));
  ]

(* ---------------------------------------------------------------- *)
(* Summary over interned ids                                         *)
(* ---------------------------------------------------------------- *)

let g a = Summary.global_tuple a
let unk v = Summary.unknown_tuple ~gstate:"start" (Cast.ident v)

let edge s d : Summary.edge =
  { Summary.e_src = s; e_dst = d; e_kind = Summary.Transition }

let summary_tests =
  [
    t "find_by_dst returns edges in insertion order" `Quick (fun () ->
        let s = Summary.create () in
        let e1 = edge (g "a") (g "z") in
        let e2 = edge (g "b") (g "z") in
        let e3 = edge (g "c") (g "y") in
        List.iter (fun e -> ignore (Summary.add_edge s e)) [ e1; e2; e3 ];
        let keys = List.map Summary.edge_key (Summary.find_by_dst s (g "z")) in
        Alcotest.(check (list string))
          "indexed lookup = ordered filter"
          (List.map Summary.edge_key
             (List.filter
                (fun (e : Summary.edge) -> Summary.tuple_equal e.e_dst (g "z"))
                (Summary.edges s)))
          keys;
        Alcotest.(check int) "both z-edges" 2 (List.length keys);
        Alcotest.(check int) "no y confusion" 1
          (List.length (Summary.find_by_dst s (g "y"))));
    t "remove_edge also updates the dst index" `Quick (fun () ->
        let s = Summary.create () in
        let e1 = edge (g "a") (g "z") in
        let e2 = edge (g "b") (g "z") in
        ignore (Summary.add_edge s e1);
        ignore (Summary.add_edge s e2);
        Summary.remove_edge s e1;
        Alcotest.(check (list string))
          "only e2 left"
          [ Summary.edge_key e2 ]
          (List.map Summary.edge_key (Summary.find_by_dst s (g "z"))));
    t "mem_src_global and add_src_key share the atom space" `Quick (fun () ->
        let s = Summary.create () in
        Summary.add_src_key s (Summary.tuple_key (g "locked"));
        Alcotest.(check bool) "probe hits" true (Summary.mem_src_global s "locked");
        Alcotest.(check bool) "other state misses" false
          (Summary.mem_src_global s "unlocked");
        Alcotest.(check (list string))
          "srcs_list renders the key" [ "(locked,<>)" ] (Summary.srcs_list s));
    t "interned summary round-trips through sexp unchanged" `Quick (fun () ->
        let s = Summary.create () in
        ignore (Summary.add_edge s (edge (unk "p") (g "stop")));
        ignore (Summary.add_edge s (edge (g "a") (g "b")));
        Summary.add_src s (g "a");
        let sx = Summary.to_sexp s in
        let s' = Summary.of_sexp sx in
        Alcotest.(check string)
          "sexp stable" (Sexp.to_string sx)
          (Sexp.to_string (Summary.to_sexp s'));
        Alcotest.(check (list string))
          "edges preserved in order"
          (List.map Summary.edge_key (Summary.edges s))
          (List.map Summary.edge_key (Summary.edges s'));
        Alcotest.(check (list string))
          "srcs preserved" (Summary.srcs_list s) (Summary.srcs_list s'));
    t "summaries can share one intern table" `Quick (fun () ->
        let it = Intern.create () in
        let s1 = Summary.create ~intern:it () in
        let s2 = Summary.create ~intern:it () in
        ignore (Summary.add_edge s1 (edge (g "a") (g "b")));
        ignore (Summary.add_edge s2 (edge (g "a") (g "b")));
        Alcotest.(check bool) "independent contents" true
          (Summary.size s1 = 1 && Summary.size s2 = 1);
        (* both summaries' tuples interned once in the shared table: atoms
           "a", "(a,<>)", "b", "(b,<>)" and the two tuple triples *)
        Alcotest.(check int) "shared atoms" 4 (Intern.n_atoms it);
        Alcotest.(check int) "shared tuples" 2 (Intern.n_tuples it));
  ]

(* ---------------------------------------------------------------- *)
(* Engine counters on known CFG shapes                               *)
(* ---------------------------------------------------------------- *)

let counter_tests =
  [
    t "loop: third path caches out (2 hits over 3 paths)" `Quick (fun () ->
        (* while-loop back edge: first iteration lays tuples down, the
           re-entry with freed state and the re-entry with clean state each
           terminate on the block cache *)
        let r = run "int f(int *p) { while (*p) { kfree(p); } return 0; }" in
        let st = r.Engine.stats in
        Alcotest.(check int) "paths" 3 st.Engine.paths_explored;
        Alcotest.(check int) "cache hits" 2 st.Engine.cache_hits;
        Alcotest.(check int) "cache probes" 8 st.Engine.cache_probes;
        Alcotest.(check bool) "atoms interned" true (st.Engine.intern_atoms > 0);
        Alcotest.(check bool) "tuples interned" true
          (st.Engine.intern_tuples > 0));
    t "diamond: join block explored once, cached once" `Quick (fun () ->
        let r =
          run
            "int f(int *p, int x) { if (x) { x = 1; } else { x = 2; } \
             kfree(p); return 0; }"
        in
        let st = r.Engine.stats in
        Alcotest.(check int) "paths" 2 st.Engine.paths_explored;
        Alcotest.(check int) "cache hits" 1 st.Engine.cache_hits;
        Alcotest.(check int) "cache probes" 6 st.Engine.cache_probes);
    t "caching off: diamond explores both full paths, no hits" `Quick
      (fun () ->
        let options = { Engine.default_options with caching = false } in
        let r =
          Engine.check_source ~options ~file:"t.c"
            "int f(int *p, int x) { if (x) { x = 1; } else { x = 2; } \
             kfree(p); return 0; }"
            [ Free_checker.checker () ]
        in
        let st = r.Engine.stats in
        Alcotest.(check int) "no hits" 0 st.Engine.cache_hits;
        Alcotest.(check int) "no probes" 0 st.Engine.cache_probes;
        Alcotest.(check int) "both paths walked to exit" 2
          st.Engine.paths_explored);
  ]

(* ---------------------------------------------------------------- *)
(* Supergraph duplicate definitions                                  *)
(* ---------------------------------------------------------------- *)

let dup_tests =
  [
    t "first definition wins deterministically" `Quick (fun () ->
        let tus =
          [
            Cparse.parse_tunit ~file:"a.c"
              "int f(int *p) { kfree(p); return *p; }";
            Cparse.parse_tunit ~file:"b.c" "int f(int *p) { return 0; }";
          ]
        in
        let sg = Supergraph.build tus in
        (* the kept body is a.c's: analysing it reports the use-after-free *)
        let r = Engine.run sg [ Free_checker.checker () ] in
        Alcotest.(check int) "a.c body analysed" 1 (List.length r.Engine.reports);
        Alcotest.(check (option string))
          "cfg table agrees" (Some "a.c")
          (Supergraph.file_of_function sg "f"));
    t "duplicate definition logs a warning with both locations" `Quick
      (fun () ->
        (* the warning goes through the uniform stderr diagnostics channel
           (Diag), not the Logs reporter: it must survive with no reporter
           installed and keep stdout machine-parseable *)
        let warnings = ref [] in
        let saved = !Diag.sink in
        Diag.sink := (fun s -> warnings := s :: !warnings);
        Fun.protect
          ~finally:(fun () -> Diag.sink := saved)
          (fun () ->
            ignore
              (Supergraph.build
                 [
                   Cparse.parse_tunit ~file:"a.c" "int f(void) { return 1; }";
                   Cparse.parse_tunit ~file:"b.c" "int f(void) { return 2; }";
                 ]);
            match !warnings with
            | [ w ] ->
                let has needle =
                  let nl = String.length needle and wl = String.length w in
                  let rec at i =
                    i + nl <= wl
                    && (String.equal needle (String.sub w i nl) || at (i + 1))
                  in
                  at 0
                in
                Alcotest.(check bool) "names the function" true (has "f");
                Alcotest.(check bool) "names the dropped site" true (has "b.c");
                Alcotest.(check bool) "names the kept site" true (has "a.c")
            | ws ->
                Alcotest.failf "expected exactly one warning, got %d"
                  (List.length ws)));
    t "no warning without duplicates" `Quick (fun () ->
        let sg =
          Supergraph.build
            [ Cparse.parse_tunit ~file:"a.c" "int f(void) { return 1; } int g(void) { return f(); }" ]
        in
        Alcotest.(check bool) "both functions present" true
          (Supergraph.cfg_of sg "f" <> None && Supergraph.cfg_of sg "g" <> None));
  ]

let suite = intern_tests @ summary_tests @ counter_tests @ dup_tests
