(* F2: the paper's running example (Figures 1, 2 and the Section 2.2
   execution trace), with the exact line numbers of Figure 2. *)

let t = Alcotest.test_case

let fig2 =
  {|int contrived(int *p, int *w, int x) {
   int *q;

   if(x)
   {
      kfree(w);
      q = p;
      p = 0;
   }
   if(!x)
      return *w;
   return *q;
}
int contrived_caller(int *w, int x, int *p) {
   kfree(p);
   contrived(p, w, x);
   return *w;
}
|}

let run ?options () =
  let checkers = Metal_compile.load ~file:"fig1.metal" Free_checker.source in
  Engine.check_source ?options ~file:"fig2.c" fig2 checkers

let lines result =
  List.map (fun (r : Report.t) -> r.Report.loc.Srcloc.line) result.Engine.reports
  |> List.sort Int.compare

let suite =
  [
    t "exactly the two paper errors (lines 12 and 17)" `Quick (fun () ->
        let r = run () in
        Alcotest.(check (list int)) "lines" [ 12; 17 ] (lines r));
    t "messages name the variables (q then w)" `Quick (fun () ->
        let r = run () in
        let sorted =
          List.sort
            (fun (a : Report.t) b -> Int.compare a.loc.Srcloc.line b.loc.Srcloc.line)
            r.Engine.reports
        in
        Alcotest.(check (list string))
          "messages"
          [ "using q after free!"; "using w after free!" ]
          (List.map (fun (r : Report.t) -> r.Report.message) sorted));
    t "the w error is interprocedural, the q error is local-ish" `Quick (fun () ->
        let r = run () in
        let by_line n =
          List.find (fun (rep : Report.t) -> rep.loc.Srcloc.line = n) r.Engine.reports
        in
        Alcotest.(check string) "q err in contrived" "contrived" (by_line 12).func;
        Alcotest.(check string) "w err in caller" "contrived_caller" (by_line 17).func);
    t "pruning removes the false positive at line 11 (step 8)" `Quick (fun () ->
        (* without false-path pruning, the infeasible path x && !x reaches
           'return *w' with w freed: a third (false) report appears *)
        let r =
          run ~options:{ Engine.default_options with Engine.pruning = false } ()
        in
        Alcotest.(check (list int)) "extra FP at line 11" [ 11; 12; 17 ] (lines r));
    t "two infeasible paths pruned (steps 8 and 10)" `Quick (fun () ->
        let r = run () in
        Alcotest.(check int) "pruned" 2 r.Engine.stats.Engine.pruned_branches);
    t "the call to contrived is followed, kfree is not (supergraph note)" `Quick
      (fun () ->
        let r = run () in
        Alcotest.(check int) "one call followed" 1 r.Engine.stats.Engine.calls_followed);
    t "outgoing instances of contrived are p and w (step 12)" `Quick (fun () ->
        (* verify via the function summary: the suffix summary of
           contrived's entry block must map p->freed to freed and add
           w->freed; q must not appear *)
        let tu = Cparse.parse_tunit ~file:"fig2.c" fig2 in
        let sg = Supergraph.build [ tu ] in
        let _, per_ext = Engine.run_with_summaries sg [ Free_checker.checker () ] in
        let summaries = snd (List.hd per_ext) in
        let _, sfx = Hashtbl.find summaries "contrived" in
        let cfg = Option.get (Supergraph.cfg_of sg "contrived") in
        let entry_sfx = sfx.(cfg.Cfg.entry) in
        let edge_strings =
          List.map (Format.asprintf "%a" Summary.pp_edge) (Summary.edges entry_sfx)
        in
        let mem s = List.exists (fun x -> String.equal x s) edge_strings in
        Alcotest.(check bool) "p edge" true
          (mem "(start,v:p->freed) --> (start,v:p->freed)");
        Alcotest.(check bool) "w add edge" true
          (mem "(start,v:w->unknown) --> (start,v:w->freed)");
        Alcotest.(check bool) "no q edges" true
          (not
             (List.exists
                (fun s ->
                  let has_q = ref false in
                  String.iteri
                    (fun i c ->
                      if c = 'q' && i > 0 && s.[i - 1] = ':' then has_q := true)
                    s;
                  !has_q)
                edge_strings)));
  ]
