(* Fault containment: parser error recovery, per-root analysis budgets,
   and worker isolation. Every case checks the same invariant from a
   different angle — a fault in one unit of work (definition, file, root,
   worker chunk) degrades only that unit, and everything else's output is
   identical to a run without the faulty part. *)

let t = Alcotest.test_case

let report_lines (r : Engine.result) =
  List.map Report.to_string r.Engine.reports

(* Capture Diag warnings so fault-injection tests keep stderr quiet and
   can assert on the diagnostics themselves. *)
let with_diag f =
  let warnings = ref [] in
  let saved = !Diag.sink in
  Diag.sink := (fun s -> warnings := s :: !warnings);
  Fun.protect
    ~finally:(fun () -> Diag.sink := saved)
    (fun () ->
      let v = f () in
      (v, List.rev !warnings))

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i =
    i + m <= n && (String.equal (String.sub hay i m) needle || go (i + 1))
  in
  go 0

let free () = Free_checker.checker ()

(* An extension whose action blows up whenever the analysed code calls
   boom(): the engine must treat the raise like any other per-root fault. *)
let crasher () =
  Sm.make ~name:"crasher"
    [
      {
        Sm.tr_source = Sm.Src_global "start";
        tr_pattern = Pattern.Pexpr (Cparse.expr_of_string ~file:"<crash>" "boom()");
        tr_dest = Sm.Same;
        tr_action = Some (fun _ -> failwith "injected fault");
      };
    ]

let parse_recovery_tests =
  [
    t "mid-file parse error: rest of the file still analysed" `Quick (fun () ->
        let src =
          "int f(int *p) { kfree(p); return *p; }\n\
           int broken(void) { return }\n\
           int g(int *q) { kfree(q); return *q; }\n"
        in
        let (r, stubs), warnings =
          with_diag (fun () ->
              let tu = Cparse.parse_tunit ~file:"t.c" src in
              let stubs =
                List.filter_map
                  (function Cast.Gskipped sk -> Some sk | _ -> None)
                  tu.Cast.tu_globals
              in
              (Engine.run (Supergraph.build [ tu ]) [ free () ], stubs))
        in
        Alcotest.(check int) "one stub" 1 (List.length stubs);
        Alcotest.(check (option string))
          "stub names the definition" (Some "broken")
          (List.hd stubs).Cast.sk_name;
        Alcotest.(check int) "both good functions report" 2
          (List.length r.Engine.reports);
        Alcotest.(check int) "skip warned once" 1 (List.length warnings);
        Alcotest.(check bool) "uniform prefix" true
          (contains (List.hd warnings) "xgcc: warning:"));
    t "parse error in file 1 of 3: other files byte-identical" `Quick
      (fun () ->
        let a = "int f(int *p) { kfree(p); return *p; }" in
        let broken = "int oops(void) { return }" in
        let c = "int h(int *r) { kfree(r); return *r; }" in
        let run files =
          fst
            (with_diag (fun () ->
                 let tus =
                   List.map (fun (f, s) -> Cparse.parse_tunit ~file:f s) files
                 in
                 Engine.run (Supergraph.build tus) [ free () ]))
        in
        let with_broken =
          run [ ("a.c", a); ("broken.c", broken); ("c.c", c) ]
        in
        let without = run [ ("a.c", a); ("c.c", c) ] in
        Alcotest.(check (list string))
          "good-file reports unchanged"
          (report_lines without) (report_lines with_broken));
  ]

(* A root whose path count explodes combinatorially, next to small healthy
   roots; placed last so dropping it does not shift the others' locations. *)
let explosion_src =
  "int f(int *p) { kfree(p); return *p; }\n\
   int h(int *r) { kfree(r); return *r; }\n"

let explode_fn =
  "int explode(int a, int b, int c, int d) {\n\
  \  int *p1; int *p2; int *p3; int *p4;\n\
  \  if (a) { kfree(p1); } if (b) { kfree(p2); }\n\
  \  if (c) { kfree(p3); } if (d) { kfree(p4); }\n\
  \  if (a) { b = 1; } if (b) { c = 1; } if (c) { d = 1; } if (d) { a = 1; }\n\
  \  return *p1 + *p2 + *p3 + *p4;\n\
   }\n"

let budget_tests =
  [
    t "node budget degrades only the exploding root" `Quick (fun () ->
        let budgeted =
          { Engine.default_options with max_nodes_per_root = 40 }
        in
        let run ?(options = Engine.default_options) ?(jobs = 1) src =
          fst
            (with_diag (fun () ->
                 Engine.run ~options ~jobs
                   (Supergraph.build [ Cparse.parse_tunit ~file:"t.c" src ])
                   [ free () ]))
        in
        let healthy = run explosion_src in
        Alcotest.(check (list string)) "baseline sanity" []
          (List.map (fun (d : Engine.degraded) -> d.Engine.d_root)
             healthy.Engine.degraded);
        List.iter
          (fun jobs ->
            let r = run ~options:budgeted ~jobs (explosion_src ^ explode_fn) in
            (match r.Engine.degraded with
            | [ d ] ->
                Alcotest.(check string)
                  (Printf.sprintf "degraded root (j=%d)" jobs)
                  "explode" d.Engine.d_root;
                Alcotest.(check bool) "reason names the budget" true
                  (contains d.Engine.d_reason "budget")
            | ds ->
                Alcotest.failf "expected one degraded root at j=%d, got %d"
                  jobs (List.length ds));
            Alcotest.(check (list string))
              (Printf.sprintf "other roots byte-identical (j=%d)" jobs)
              (report_lines healthy) (report_lines r))
          [ 1; 2 ]);
    t "budget exhaustion does not leak partial stats or summaries" `Quick
      (fun () ->
        (* the degraded root's rollback restores counters: a budgeted run of
           just the healthy roots and a budgeted run including the exploding
           root agree on reports exactly *)
        let options =
          { Engine.default_options with max_nodes_per_root = 40 }
        in
        let run src =
          fst
            (with_diag (fun () ->
                 Engine.run ~options
                   (Supergraph.build [ Cparse.parse_tunit ~file:"t.c" src ])
                   [ free () ]))
        in
        let healthy = run explosion_src in
        let faulty = run (explosion_src ^ explode_fn) in
        Alcotest.(check int) "healthy roots unaffected" 0
          (List.length healthy.Engine.degraded);
        Alcotest.(check (list string)) "reports agree"
          (report_lines healthy) (report_lines faulty);
        Alcotest.(check int) "stats rolled back" healthy.Engine.stats.Engine.nodes_visited
          faulty.Engine.stats.Engine.nodes_visited);
  ]

let worker_tests =
  [
    t "worker exception at -j 2 degrades one root, rest identical" `Quick
      (fun () ->
        (* boom() sits in its own root; the crashing extension must not
           take down the free checker's reports from any root, and -j 2
           output must match -j 1 *)
        let src =
          "int f(int *p) { kfree(p); return *p; }\n\
           int bad(void) { boom(); return 0; }\n\
           int h(int *r) { kfree(r); return *r; }\n"
        in
        let run jobs =
          fst
            (with_diag (fun () ->
                 Engine.run ~jobs
                   (Supergraph.build [ Cparse.parse_tunit ~file:"t.c" src ])
                   [ crasher (); free () ]))
        in
        let r1 = run 1 and r2 = run 2 in
        List.iter
          (fun (label, (r : Engine.result)) ->
            match r.Engine.degraded with
            | [ d ] ->
                Alcotest.(check string) (label ^ " root") "bad" d.Engine.d_root;
                Alcotest.(check bool) (label ^ " reason") true
                  (contains d.Engine.d_reason "injected fault")
            | ds ->
                Alcotest.failf "%s: expected one degraded root, got %d" label
                  (List.length ds))
          [ ("j1", r1); ("j2", r2) ];
        Alcotest.(check int) "free checker reports survive" 2
          (List.length r1.Engine.reports);
        Alcotest.(check (list string)) "parallel identical to sequential"
          (report_lines r1) (report_lines r2));
  ]

let mcast_tests =
  [
    t "corrupt .mcast yields Error, intact one round-trips" `Quick (fun () ->
        let good = Filename.temp_file "mc_fault" ".mcast" in
        let tu = Cparse.parse_tunit ~file:"t.c" "int f(void) { return 0; }" in
        Cast_io.emit_file good tu;
        (match Cast_io.read_file_result good with
        | Ok tu' ->
            Alcotest.(check int) "globals preserved"
              (List.length tu.Cast.tu_globals)
              (List.length tu'.Cast.tu_globals)
        | Error e -> Alcotest.failf "intact file rejected: %s" e);
        (* truncate the valid encoding mid-stream *)
        let full = In_channel.with_open_bin good In_channel.input_all in
        let bad = Filename.temp_file "mc_fault_bad" ".mcast" in
        Out_channel.with_open_bin bad (fun oc ->
            Out_channel.output_string oc
              (String.sub full 0 (String.length full / 2)));
        (match Cast_io.read_file_result bad with
        | Error e -> Alcotest.(check bool) "has description" true (String.length e > 0)
        | Ok _ -> Alcotest.fail "truncated file accepted");
        (* outright garbage *)
        Out_channel.with_open_bin bad (fun oc ->
            Out_channel.output_string oc "\x00\xffnot a sexp((((");
        (match Cast_io.read_file_result bad with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "garbage accepted");
        (* missing file: contained as Error, not Sys_error *)
        (match Cast_io.read_file_result "/nonexistent/xgcc.mcast" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "missing file accepted");
        Sys.remove good;
        Sys.remove bad);
  ]

let suite = parse_recovery_tests @ budget_tests @ worker_tests @ mcast_tests
