(* F5: block and suffix summaries of Figure 5, plus general summary-set
   semantics (edge kinds, dedup, src cache, presentation rules). *)

let t = Alcotest.test_case

let fig2 =
  {|int contrived(int *p, int *w, int x) {
   int *q;

   if(x)
   {
      kfree(w);
      q = p;
      p = 0;
   }
   if(!x)
      return *w;
   return *q;
}
int contrived_caller(int *w, int x, int *p) {
   kfree(p);
   contrived(p, w, x);
   return *w;
}
|}

let with_summaries f =
  let tu = Cparse.parse_tunit ~file:"fig2.c" fig2 in
  let sg = Supergraph.build [ tu ] in
  let _, per_ext = Engine.run_with_summaries sg [ Free_checker.checker () ] in
  let summaries =
    match per_ext with [ (_, s) ] -> s | _ -> failwith "one extension expected"
  in
  f sg summaries

let edges_of sum = List.map (Format.asprintf "%a" Summary.pp_edge) (Summary.edges sum)
let mem sum s = List.exists (String.equal s) (edges_of sum)

(* the block containing a given printed element *)
let block_with sg fname elem_str =
  let cfg = Option.get (Supergraph.cfg_of sg fname) in
  let b =
    List.find
      (fun (b : Block.t) ->
        List.exists
          (fun e -> String.equal (Format.asprintf "%a" Block.pp_elem e) elem_str)
          b.elems
        || String.equal (Format.asprintf "%a" Block.pp_terminator b.term) elem_str)
      (Array.to_list cfg.Cfg.blocks)
  in
  b.Block.bid

let suite =
  [
    t "Fig5 B7: kfree(w); q = p; p = 0 block summary" `Quick (fun () ->
        with_summaries (fun sg summaries ->
            let bs, sfx = Hashtbl.find summaries "contrived" in
            let bid = block_with sg "contrived" "kfree(w);" in
            (* (start,w->unknown) -> (start,w->freed): add edge *)
            Alcotest.(check bool) "w add" true
              (mem bs.(bid) "(start,v:w->unknown) --> (start,v:w->freed)");
            (* (start,q->unknown) -> (start,q->freed): synonym creation *)
            Alcotest.(check bool) "q add" true
              (mem bs.(bid) "(start,v:q->unknown) --> (start,v:q->freed)");
            (* (start,p->freed) -> (start,p->stop): kill at p = 0 *)
            Alcotest.(check bool) "p stop" true
              (mem bs.(bid) "(start,v:p->freed) --> (start,v:p->stop)");
            (* suffix omits stop edges and local q *)
            Alcotest.(check bool) "suffix has w" true
              (mem sfx.(bid) "(start,v:w->unknown) --> (start,v:w->freed)");
            Alcotest.(check bool) "suffix drops p->stop" false
              (mem sfx.(bid) "(start,v:p->freed) --> (start,v:p->stop)");
            let q_edges =
              List.filter
                (fun s ->
                  let found = ref false in
                  String.iteri (fun i c -> if c = ':' && i + 1 < String.length s && s.[i + 1] = 'q' then found := true) s;
                  !found)
                (edges_of sfx.(bid))
            in
            Alcotest.(check (list string)) "suffix drops q" [] q_edges));
    t "Fig5 B10: return *q stops q, suffix keeps w" `Quick (fun () ->
        with_summaries (fun sg summaries ->
            let bs, sfx = Hashtbl.find summaries "contrived" in
            let bid = block_with sg "contrived" "return *q" in
            Alcotest.(check bool) "q stop in block summary" true
              (mem bs.(bid) "(start,v:q->freed) --> (start,v:q->stop)");
            Alcotest.(check bool) "w identity in suffix" true
              (mem sfx.(bid) "(start,v:w->freed) --> (start,v:w->freed)")))
    ;
    t "Fig5 B2: caller's kfree(p) add edge" `Quick (fun () ->
        with_summaries (fun sg summaries ->
            let bs, _ = Hashtbl.find summaries "contrived_caller" in
            let bid = block_with sg "contrived_caller" "kfree(p);" in
            Alcotest.(check bool) "p add" true
              (mem bs.(bid) "(start,v:p->unknown) --> (start,v:p->freed)")));
    t "Fig5: exit block suffix equals its block summary" `Quick (fun () ->
        with_summaries (fun sg summaries ->
            let bs, sfx = Hashtbl.find summaries "contrived" in
            let cfg = Option.get (Supergraph.cfg_of sg "contrived") in
            let ep = cfg.Cfg.exit_ in
            List.iter
              (fun edge_str ->
                if
                  (not (String.length edge_str > 60))
                  || true (* compare all non-stop, non-local edges *)
                then ()
                )
              (edges_of bs.(ep));
            (* every suffix edge at ep must come from its own block summary *)
            List.iter
              (fun s ->
                Alcotest.(check bool) ("from bs: " ^ s) true (mem bs.(ep) s))
              (edges_of sfx.(ep))));
    t "run_with_summaries keys summaries by extension" `Quick (fun () ->
        (* regression: fsums used to be reset per extension, so with two
           checkers only the last extension's summaries survived *)
        let tu = Cparse.parse_tunit ~file:"fig2.c" fig2 in
        let sg = Supergraph.build [ tu ] in
        let free = Free_checker.checker () in
        let lock = Lock_checker.checker () in
        let _, per_ext = Engine.run_with_summaries sg [ free; lock ] in
        let names = List.map fst per_ext in
        Alcotest.(check (list string))
          "both extensions, in run order"
          [ free.Sm.sm_name; lock.Sm.sm_name ]
          names;
        (* the first extension's summaries are the free checker's, not a
           leftover from the lock run: contrived has kfree transitions *)
        let free_sums = List.assoc free.Sm.sm_name per_ext in
        let bs, _ = Hashtbl.find free_sums "contrived" in
        let bid = block_with sg "contrived" "kfree(w);" in
        Alcotest.(check bool) "free edges under free key" true
          (mem bs.(bid) "(start,v:w->unknown) --> (start,v:w->freed)");
        (* and the lock checker's table is its own: no kfree edges there *)
        let lock_sums = List.assoc lock.Sm.sm_name per_ext in
        (match Hashtbl.find_opt lock_sums "contrived" with
        | None -> ()
        | Some (lbs, _) ->
            Alcotest.(check bool) "no free edges under lock key" false
              (mem lbs.(bid) "(start,v:w->unknown) --> (start,v:w->freed)")));
    (* --- Summary data structure semantics --------------------------- *)
    t "edges deduplicate" `Quick (fun () ->
        let s = Summary.create () in
        let tup v =
          Summary.
            {
              t_g = "start";
              t_v =
                Some
                  {
                    v_key = "k";
                    v_tree = Cast.ident "x";
                    v_value = v;
                    v_depth = 0;
                  };
            }
        in
        let e =
          Summary.{ e_src = tup "a"; e_dst = tup "b"; e_kind = Summary.Transition }
        in
        Alcotest.(check bool) "first add" true (Summary.add_edge s e);
        Alcotest.(check bool) "dup rejected" false (Summary.add_edge s e);
        Alcotest.(check int) "size" 1 (Summary.size s));
    t "tuple keys ignore depth" `Quick (fun () ->
        let mk d =
          Summary.
            {
              t_g = "g";
              t_v =
                Some { v_key = "k"; v_tree = Cast.ident "x"; v_value = "v"; v_depth = d };
            }
        in
        Alcotest.(check string) "same key" (Summary.tuple_key (mk 0))
          (Summary.tuple_key (mk 3)));
    t "src cache membership" `Quick (fun () ->
        let s = Summary.create () in
        let tup = Summary.global_tuple "start" in
        Alcotest.(check bool) "absent" false (Summary.mem_src s tup);
        Summary.add_src s tup;
        Alcotest.(check bool) "present" true (Summary.mem_src s tup));
    t "global-only and stop classification" `Quick (fun () ->
        let g = Summary.global_tuple "a" in
        let stop_tup =
          Summary.
            {
              t_g = "a";
              t_v =
                Some
                  { v_key = "k"; v_tree = Cast.ident "x"; v_value = Sm.stop_value; v_depth = 0 };
            }
        in
        let e1 = Summary.{ e_src = g; e_dst = g; e_kind = Summary.Transition } in
        let e2 = Summary.{ e_src = g; e_dst = stop_tup; e_kind = Summary.Transition } in
        Alcotest.(check bool) "global only" true (Summary.is_global_only e1);
        Alcotest.(check bool) "ends in stop" true (Summary.ends_in_stop e2);
        Alcotest.(check bool) "not global only" false (Summary.is_global_only e2));
    t "pp hides placeholder-only edges when others exist" `Quick (fun () ->
        let s = Summary.create () in
        let g = Summary.global_tuple "start" in
        ignore (Summary.add_edge s Summary.{ e_src = g; e_dst = g; e_kind = Transition });
        let tup =
          Summary.
            {
              t_g = "start";
              t_v = Some { v_key = "k"; v_tree = Cast.ident "x"; v_value = "v"; v_depth = 0 };
            }
        in
        ignore
          (Summary.add_edge s Summary.{ e_src = tup; e_dst = tup; e_kind = Transition });
        let printed = Format.asprintf "%a" Summary.pp s in
        Alcotest.(check bool) "no <> shown" true
          (not
             (let found = ref false in
              String.iteri
                (fun i c ->
                  if c = '<' && i + 1 < String.length printed && printed.[i + 1] = '>' then
                    found := true)
                printed;
              !found)));
  ]
