(* The domain pool and the parallel (-j) analysis mode: Pool.run
   semantics, and the determinism contract — parallel output must be
   identical to sequential output, independent of scheduling. *)

let t = Alcotest.test_case

exception Boom

let checkers () =
  [
    Free_checker.checker ();
    Lock_checker.checker ();
    Null_checker.checker ();
    Leak_checker.checker ();
  ]

let build_workload ~seed =
  let files = Gen.generate_files ~seed ~n_files:4 ~funcs_per_file:8 ~bug_rate:0.5 in
  let tus =
    List.map (fun (file, g) -> Cparse.parse_tunit ~file g.Gen.source) files
  in
  Supergraph.build tus

let report_lines (r : Engine.result) =
  List.map Report.to_string (Rank.generic_sort r.Engine.reports)

let suite =
  [
    t "Pool.run returns results in index order" `Quick (fun () ->
        let r = Pool.run ~jobs:4 20 (fun i -> i * i) in
        Alcotest.(check (array int))
          "squares"
          (Array.init 20 (fun i -> i * i))
          r);
    t "Pool.run with jobs=1 runs inline" `Quick (fun () ->
        let d = Domain.self () in
        let r = Pool.run ~jobs:1 5 (fun _ -> Domain.self ()) in
        Array.iter
          (fun d' -> Alcotest.(check bool) "same domain" true (d' = d))
          r);
    t "Pool.run on zero tasks" `Quick (fun () ->
        Alcotest.(check (array int)) "empty" [||] (Pool.run ~jobs:4 0 (fun i -> i)));
    t "Pool.run propagates the first exception" `Quick (fun () ->
        match Pool.run ~jobs:4 16 (fun i -> if i = 7 then raise Boom else i) with
        | _ -> Alcotest.fail "expected Boom"
        | exception Boom -> ());
    t "Pool.run runs every task exactly once" `Quick (fun () ->
        let hits = Array.make 64 0 in
        (* each slot is written only by the domain that claimed index i,
           so no lock is needed to count executions *)
        ignore (Pool.run ~jobs:4 64 (fun i -> hits.(i) <- hits.(i) + 1));
        Alcotest.(check (array int)) "once each" (Array.make 64 1) hits);
    t "parallel run equals sequential run (4 checkers, 32 funcs)" `Quick
      (fun () ->
        let sg = build_workload ~seed:42 in
        let seq = Engine.run ~jobs:1 sg (checkers ()) in
        let par = Engine.run ~jobs:4 sg (checkers ()) in
        Alcotest.(check (list string))
          "ranked reports identical" (report_lines seq) (report_lines par);
        Alcotest.(check (list (triple string int int)))
          "counters identical" seq.Engine.counters par.Engine.counters);
    t "parallel determinism across seeds and job counts" `Quick (fun () ->
        List.iter
          (fun seed ->
            let sg = build_workload ~seed in
            let seq = report_lines (Engine.run ~jobs:1 sg (checkers ())) in
            List.iter
              (fun jobs ->
                let par = report_lines (Engine.run ~jobs sg (checkers ())) in
                Alcotest.(check (list string))
                  (Printf.sprintf "seed %d, -j %d" seed jobs)
                  seq par)
              [ 2; 3; 8 ])
          [ 7; 99; 123 ]);
    t "parallel run reports are emitted, not lost" `Quick (fun () ->
        (* guard against a merge that silently drops every report *)
        let sg = build_workload ~seed:42 in
        let par = Engine.run ~jobs:4 sg (checkers ()) in
        Alcotest.(check bool) "found some bugs" true
          (List.length par.Engine.reports > 0));
  ]
