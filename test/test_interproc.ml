(* Interprocedural analysis: Table 2 refine/restore rules, function
   summaries, recursion, cross-file state. *)

let t = Alcotest.test_case
let e s = Cparse.expr_of_string ~file:"<t>" s

let run ?options ?(checkers = [ Free_checker.checker () ]) src =
  Engine.check_source ?options ~file:"t.c" src checkers

let count result = List.length result.Engine.reports
let msgs result = List.map (fun (r : Report.t) -> r.Report.message) result.Engine.reports

(* --- unit tests of the mapping (Table 2) ---------------------------- *)

let mapping params args =
  Refine.make_mapping
    ~params:(List.map (fun p -> (p, Ctyp.void_ptr)) params)
    ~args:(List.map e args)

let refine m tree = Cprint.expr_to_string (Refine.refine_tree m (e tree))
let restore m tree = Cprint.expr_to_string (Refine.restore_tree m (e tree))

let suite =
  [
    t "T2 row 1: xa/xf, state in xa" `Quick (fun () ->
        let m = mapping [ "xf" ] [ "xa" ] in
        Alcotest.(check string) "refine" "xf" (refine m "xa");
        Alcotest.(check string) "restore" "xa" (restore m "xf"));
    t "T2 row 2: &xa/xf, state in xa maps through *xf" `Quick (fun () ->
        let m = mapping [ "xf" ] [ "&xa" ] in
        Alcotest.(check string) "refine" "*xf" (refine m "xa");
        Alcotest.(check string) "restore" "xa" (restore m "*xf"));
    t "T2 row 3: state in xa.field" `Quick (fun () ->
        let m = mapping [ "xf" ] [ "xa" ] in
        Alcotest.(check string) "refine" "xf.field" (refine m "xa.field");
        Alcotest.(check string) "restore" "xa.field" (restore m "xf.field"));
    t "T2 row 4: state in xa->field" `Quick (fun () ->
        let m = mapping [ "xf" ] [ "xa" ] in
        Alcotest.(check string) "refine" "xf->field" (refine m "xa->field");
        Alcotest.(check string) "restore" "xa->field" (restore m "xf->field"));
    t "T2 row 5: state in *xa" `Quick (fun () ->
        let m = mapping [ "xf" ] [ "xa" ] in
        Alcotest.(check string) "refine" "*xf" (refine m "*xa");
        Alcotest.(check string) "restore" "*xa" (restore m "*xf"));
    t "T2: deeper indirection levels" `Quick (fun () ->
        let m = mapping [ "p" ] [ "q" ] in
        Alcotest.(check string) "refine" "**p" (refine m "**q");
        Alcotest.(check string) "restore" "*q->next" (restore m "*p->next"));
    t "T2: complex actual expression" `Quick (fun () ->
        let m = mapping [ "f" ] [ "dev->buf" ] in
        Alcotest.(check string) "refine" "*f" (refine m "*dev->buf");
        Alcotest.(check string) "restore" "dev->buf[3]" (restore m "f[3]"));
    t "same-name actual and formal round-trips" `Quick (fun () ->
        let m = mapping [ "p" ] [ "p" ] in
        Alcotest.(check string) "refine" "p" (refine m "p");
        Alcotest.(check string) "restore" "*p" (restore m "*p"));
    t "larger actuals substitute first" `Quick (fun () ->
        let m = mapping [ "a"; "b" ] [ "p"; "p->next" ] in
        Alcotest.(check string) "p->next goes to b" "b" (refine m "p->next");
        Alcotest.(check string) "p goes to a" "a" (refine m "p"));
    t "casted actual is stripped" `Quick (fun () ->
        let m =
          Refine.make_mapping
            ~params:[ ("xf", Ctyp.void_ptr) ]
            ~args:[ e "(void *)xa" ]
        in
        Alcotest.(check string) "refine" "xf"
          (Cprint.expr_to_string (Refine.refine_tree m (e "xa"))));
    (* --- end-to-end interprocedural ------------------------------- *)
    t "state flows into callee (paper step 3)" `Quick (fun () ->
        let src =
          "int use(int *q) { return *q; }\n\
           int top(int *p) { kfree(p); return use(p); }"
        in
        let r = run src in
        Alcotest.(check (list string)) "err in callee" [ "using q after free!" ] (msgs r));
    t "state flows back to caller (by reference)" `Quick (fun () ->
        let src =
          "void release(int *q) { kfree(q); }\n\
           int top(int *p) { release(p); return *p; }"
        in
        let r = run src in
        Alcotest.(check (list string)) "err in caller" [ "using p after free!" ] (msgs r));
    t "by-value restore keeps caller state (Table 2 option)" `Quick (fun () ->
        let sm =
          List.hd
            (Metal_compile.load ~file:"<m>"
               ({|sm bv { option byval_restore; state decl any_pointer v;
                  start: { kfree(v) } ==> v.freed;
                  v.freed: { *v } ==> v.stop, { err("use after free"); }; }|}))
        in
        (* callee re-frees its (by-value) view; caller keeps 'freed' from
           its own kfree; no crash, exactly one error at the caller deref *)
        let src =
          "void touch(int *q) { q = 0; }\n\
           int top(int *p) { kfree(p); touch(p); return *p; }"
        in
        let r = run ~checkers:[ sm ] src in
        Alcotest.(check int) "caller err" 1 (count r));
    t "address-of actual: state through *xf" `Quick (fun () ->
        let src =
          "void freeit(int **h) { kfree(*h); }\n\
           int top(int *p) { freeit(&p); return *p; }"
        in
        let r = run src in
        Alcotest.(check (list string)) "err" [ "using p after free!" ] (msgs r));
    t "callee-local state dies at return" `Quick (fun () ->
        let src =
          "int inner(void) { int *t = kmalloc(4); kfree(t); return 0; }\n\
           int top(int *p) { inner(); return *p; }"
        in
        let r = run src in
        Alcotest.(check int) "clean" 0 (count r));
    t "caller-local state survives the call" `Quick (fun () ->
        let src =
          "void noop(int x) { x = x + 1; }\n\
           int top(void) { int *p = kmalloc(4); kfree(p); noop(1); return *p; }"
        in
        let r = run src in
        Alcotest.(check int) "err" 1 (count r));
    t "global object state passes through calls" `Quick (fun () ->
        let src =
          "int *gp;\n\
           void gfree(void) { kfree(gp); }\n\
           int top(void) { gfree(); return *gp; }"
        in
        let r = run src in
        Alcotest.(check (list string)) "err on global" [ "using gp after free!" ] (msgs r));
    t "function summaries avoid re-analysis" `Quick (fun () ->
        let src = Synth.call_tree ~depth:3 ~fanout:3 in
        let r = run src in
        Alcotest.(check bool) "summary hits" true
          (r.Engine.stats.Engine.summary_hits > 5);
        (* the use-after-free at the root, plus the (real) double free when
           the second subtree re-frees p *)
        let root_errs =
          List.filter (fun (x : Report.t) -> String.equal x.Report.func "troot") r.Engine.reports
        in
        Alcotest.(check int) "one error at root" 1 (List.length root_errs));
    t "deep call chain propagates state" `Quick (fun () ->
        let r = run (Synth.call_chain ~depth:10) in
        Alcotest.(check int) "err" 1 (count r);
        match r.Engine.reports with
        | rep :: _ ->
            Alcotest.(check bool) "interprocedural" true (rep.Report.call_depth > 0)
        | [] -> ());
    t "recursion terminates" `Quick (fun () ->
        let src =
          "int walk(int *p, int n) { if (n) { return walk(p, n - 1); } kfree(p); return 0; }\n\
           int top(int *p) { walk(p, 3); return *p; }"
        in
        let r = run src in
        Alcotest.(check bool) "terminates" true (count r >= 0));
    t "mutual recursion terminates" `Quick (fun () ->
        let src =
          "int pong(int n);\n\
           int ping(int n) { if (n) { return pong(n - 1); } return 0; }\n\
           int pong(int n) { return ping(n); }\n\
           int top(void) { return ping(5); }"
        in
        let r = run src in
        Alcotest.(check int) "no reports" 0 (count r));
    t "different entry states re-analyze the callee" `Quick (fun () ->
        let src =
          "int use(int *q) { return *q; }\n\
           int top(int *p, int *w) { use(p); kfree(p); use(p); return 0; }"
        in
        let r = run src in
        (* second call enters with p freed: error inside use *)
        Alcotest.(check int) "err on second call" 1 (count r));
    t "static file-scope state is inactivated across files" `Quick (fun () ->
        let tu1 =
          Cparse.parse_tunit ~file:"a.c"
            "static int *fsp;\n\
             int other_file(void);\n\
             int top(void) { kfree(fsp); other_file(); return *fsp; }"
        in
        let tu2 =
          Cparse.parse_tunit ~file:"b.c"
            "int other_file(void) { return 0; }"
        in
        let sg = Supergraph.build [ tu1; tu2 ] in
        let r = Engine.run sg [ Free_checker.checker () ] in
        (* state survives the cross-file call and still flags the deref *)
        Alcotest.(check int) "err" 1 (List.length r.Engine.reports));
    t "interproc can be disabled" `Quick (fun () ->
        let src =
          "void release(int *q) { kfree(q); }\n\
           int top(int *p) { release(p); return *p; }"
        in
        let r =
          run ~options:{ Engine.default_options with Engine.interproc = false } src
        in
        Alcotest.(check int) "no cross-function err" 0 (count r));
    t "matched calls are not followed (kfree is modelled)" `Quick (fun () ->
        (* define kfree in-program: the extension matches it, so the body
           must not be traversed (which would kill the state) *)
        let src =
          "void kfree(int *x) { x = 0; }\n\
           int top(int *p) { kfree(p); return *p; }"
        in
        let r = run src in
        Alcotest.(check int) "still flagged" 1 (count r));
    t "value flow: state returns through allocation wrappers" `Quick (fun () ->
        let src =
          "int *alloc_obj(int n) { int *q = kmalloc(n); return q; }\n\
           int user(int n) { int *p = alloc_obj(n); return *p; }\n\
           int user_ok(int n) { int *p = alloc_obj(n); if (!p) { return -1; } return *p; }"
        in
        let r = run ~checkers:[ Null_checker.checker () ] src in
        Alcotest.(check int) "one unchecked deref" 1 (count r);
        match r.Engine.reports with
        | [ rep ] -> Alcotest.(check string) "in user" "user" rep.Report.func
        | _ -> ());
    t "value flow: freed state through a returning wrapper" `Quick (fun () ->
        let src =
          "int *make(int n) { int *q = kmalloc(n); return q; }\n\
           int f(int n) { int *p = make(n); kfree(p); return *p; }"
        in
        let r = run src in
        Alcotest.(check int) "uaf found" 1 (count r));
    t "bare-hole patterns do not suppress call following" `Quick (fun () ->
        (* a checker whose only var pattern is { v } must still follow
           pointer-returning calls *)
        let src =
          "int *wrap(int *p) { kfree(p); return p; }\n\
           int f(int *p) { wrap(p); return *p; }"
        in
        let r = run src in
        Alcotest.(check int) "followed and flagged" 1 (count r);
        Alcotest.(check bool) "call followed" true
          (r.Engine.stats.Engine.calls_followed >= 1));
    t "conditional free in callee over-approximates to the caller" `Quick
      (fun () ->
        (* the function summary merges both callee paths; the caller
           continues with the freed outcome and flags the possible UAF *)
        let src =
          "void maybe_free(int *q, int c) { if (c) { kfree(q); } }\n\
           int top(int *p, int c) { maybe_free(p, c); return *p; }"
        in
        let r = run src in
        Alcotest.(check int) "possible UAF" 1 (count r));
    t "call-chain length accumulates through stacked summaries" `Quick (fun () ->
        let r = run (Synth.call_chain ~depth:10) in
        match r.Engine.reports with
        | [ rep ] ->
            Alcotest.(check bool)
              (Printf.sprintf "depth %d >= 5" rep.Report.call_depth)
              true
              (rep.Report.call_depth >= 5)
        | _ -> Alcotest.fail "expected one report");
    t "check_files analyses a multi-file program from disk" `Quick (fun () ->
        let f1 = Filename.temp_file "mc_a" ".c" in
        let f2 = Filename.temp_file "mc_b" ".c" in
        let write path s =
          let oc = open_out path in
          output_string oc s;
          close_out oc
        in
        write f1 "void release(int *q) { kfree(q); }";
        write f2 "int top(int *p) { release(p); return *p; }";
        let r = Engine.check_files [ f1; f2 ] [ Free_checker.checker () ] in
        Sys.remove f1;
        Sys.remove f2;
        Alcotest.(check int) "cross-file err" 1 (count r));
    t "paper example end-to-end (Figure 2 trace)" `Quick (fun () ->
        let src =
          "int contrived(int *p, int *w, int x) {\n\
           int *q;\n\
           if (x) { kfree(w); q = p; p = 0; }\n\
           if (!x) return *w;\n\
           return *q;\n\
           }\n\
           int contrived_caller(int *w, int x, int *p) {\n\
           kfree(p);\n\
           contrived(p, w, x);\n\
           return *w;\n\
           }"
        in
        let r = run src in
        Alcotest.(check int) "two errors" 2 (count r));
  ]
