(* P4: false-path pruning end-to-end (Section 8). *)

let t = Alcotest.test_case

let run ?options ?(checkers = [ Free_checker.checker () ]) src =
  Engine.check_source ?options ~file:"t.c" src checkers

let count r = List.length r.Engine.reports
let no_prune = { Engine.default_options with Engine.pruning = false }

let suite =
  [
    t "contradictory conditions pruned (Fig. 2 core)" `Quick (fun () ->
        let src =
          "int f(int *p, int x) { if (x) { kfree(p); } if (!x) { return *p; } return 0; }"
        in
        Alcotest.(check int) "pruned" 0 (count (run src));
        Alcotest.(check int) "unpruned FP" 1 (count (run ~options:no_prune src)));
    t "equality guards prune" `Quick (fun () ->
        let src =
          "int f(int *p, int x) { if (x == 1) { kfree(p); } if (x == 2) { return *p; } return 0; }"
        in
        Alcotest.(check int) "pruned" 0 (count (run src)));
    t "constant conditions fold" `Quick (fun () ->
        let src = "int f(int *p) { if (0) { kfree(p); } return *p; }" in
        Alcotest.(check int) "dead code skipped" 0 (count (run src)));
    t "constant-true keeps the live branch" `Quick (fun () ->
        let src = "int f(int *p) { if (1) { kfree(p); } return *p; }" in
        Alcotest.(check int) "real error" 1 (count (run src)));
    t "assignment then test prunes" `Quick (fun () ->
        let src =
          "int f(int *p) { int mode = 0; if (mode) { kfree(p); } return *p; }"
        in
        Alcotest.(check int) "pruned" 0 (count (run src)));
    t "derived values prune (y = x + 1)" `Quick (fun () ->
        let src =
          "int f(int *p) { int x = 1; int y = x + 1; if (y == 2) { kfree(p); } return 0; }"
        in
        let r = run src in
        (* kfree happens on the (feasible) path; no error, but the branch
           must be decided, not split *)
        Alcotest.(check int) "no error" 0 (count r);
        Alcotest.(check bool) "branch decided" true
          (r.Engine.stats.Engine.pruned_branches > 0));
    t "congruence classes via copies (synonym null check idiom)" `Quick (fun () ->
        (* p = q = kmalloc(); checking p also validates q *)
        let src =
          "int f(void) { int *p; int *q; p = q = kmalloc(8); if (!p) { return 0; } return *q; }"
        in
        let r = run ~checkers:[ Null_checker.checker () ] src in
        Alcotest.(check int) "no FP on q" 0 (count r));
    t "inequalities prune transitively contradictory branches" `Quick (fun () ->
        let src =
          "int f(int *p, int x) { if (x < 3) { kfree(p); } if (x > 5) { return *p; } return 0; }"
        in
        Alcotest.(check int) "pruned" 0 (count (run src)));
    t "loop havoc prevents wrong pruning" `Quick (fun () ->
        (* x starts 0 but is modified in the loop: the analysis must NOT
           assume x == 0 after it *)
        let src =
          "int f(int *p, int n) {\n\
           int x = 0;\n\
           while (n > 0) { x = x + 1; n = n - 1; }\n\
           if (x) { kfree(p); }\n\
           if (x) { return *p; }\n\
           return 0;\n\
           }"
        in
        (* both ifs have the same condition, so the path x && x reaching
           *p after kfree is feasible: a real (path-sensitive) error *)
        Alcotest.(check int) "real error kept" 1 (count (run src));
        let src_dead =
          "int f(int *p, int n) { int x = 0; if (x) { kfree(p); } return *p; }"
        in
        Alcotest.(check int) "no-loop constant still prunes" 0 (count (run src_dead)));
    t "same-condition branches stay correlated" `Quick (fun () ->
        let src =
          "int f(int *p, int x) { if (x) { kfree(p); } if (x) { return *p; } return 0; }"
        in
        (* feasible: x true on both; real error *)
        Alcotest.(check int) "real error" 1 (count (run src)));
    t "unknown-call results are not pruned" `Quick (fun () ->
        let src =
          "int f(int *p) { int r = probe(); if (r) { kfree(p); } if (!r) { return 0; } return *p; }"
        in
        (* r unknown but consistent: error on r-true path *)
        Alcotest.(check int) "error kept" 1 (count (run src)));
    t "switch pruning on known scrutinee" `Quick (fun () ->
        let src =
          "int f(int *p) { int m = 3; switch (m) { case 1: kfree(p); break; default: break; } return *p; }"
        in
        Alcotest.(check int) "case 1 dead" 0 (count (run src)));
    t "switch assumption inside a case arm" `Quick (fun () ->
        let src =
          "int f(int *p, int m) {\n\
           switch (m) { case 1: kfree(p); break; default: break; }\n\
           if (m == 1) { return 0; }\n\
           return *p;\n\
           }"
        in
        (* in the case-1 arm m==1 is assumed, so 'return *p' is unreachable
           with p freed *)
        Alcotest.(check int) "pruned" 0 (count (run src)));
    t "default arm knows the scrutinee differs from the guards" `Quick (fun () ->
        let src =
          "int f(int *p, int m) {\n\
           switch (m) { case 1: break; default: kfree(p); break; }\n\
           if (m == 1) { return *p; }\n\
           return 0;\n\
           }"
        in
        (* p is freed only when m != 1; the deref is guarded by m == 1 *)
        Alcotest.(check int) "pruned" 0 (count (run src)));
    t "address-taken variables are havocked at unknown calls" `Quick (fun () ->
        let src =
          "int f(int *p) { int x = 0; fill(&x); if (x) { kfree(p); } if (x) { return *p; } return 0; }"
        in
        (* x unknown after fill(&x): correlated branches give a real error *)
        Alcotest.(check int) "error kept" 1 (count (run src)));
  ]
