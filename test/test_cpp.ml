(* The mini preprocessor: macros, conditionals, includes — and the key
   property that checkers match post-expansion code. *)

let t = Alcotest.test_case
let pp ?defines ?resolve_include src = Cpp.preprocess ?defines ?resolve_include ~file:"t.c" src

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.equal (String.sub hay i m) needle || go (i + 1)) in
  go 0

let suite =
  [
    t "object-like macro expands" `Quick (fun () ->
        let out = pp "#define LIMIT 64\nint x = LIMIT;" in
        Alcotest.(check bool) "expanded" true (contains out "int x = 64;"));
    t "function-like macro with arguments" `Quick (fun () ->
        let out = pp "#define MAX(a, b) ((a) > (b) ? (a) : (b))\nint m = MAX(x + 1, y);" in
        Alcotest.(check bool) "expanded" true
          (contains out "((x + 1) > (y) ? (x + 1) : (y))"));
    t "nested macro expansion" `Quick (fun () ->
        let out = pp "#define A B\n#define B 42\nint x = A;" in
        Alcotest.(check bool) "two steps" true (contains out "int x = 42;"));
    t "self-referential macros terminate" `Quick (fun () ->
        let out = pp "#define LOOP LOOP + 1\nint x = LOOP;" in
        Alcotest.(check bool) "guarded" true (contains out "LOOP + 1"));
    t "no expansion inside strings or comments" `Quick (fun () ->
        let out =
          pp "#define FOO 1\nchar *s = \"FOO\"; /* FOO */ int x = FOO; // FOO"
        in
        Alcotest.(check bool) "string kept" true (contains out "\"FOO\"");
        Alcotest.(check bool) "block comment kept" true (contains out "/* FOO */");
        Alcotest.(check bool) "code expanded" true (contains out "int x = 1;"));
    t "undef stops expansion" `Quick (fun () ->
        let out = pp "#define N 1\n#undef N\nint x = N;" in
        Alcotest.(check bool) "not expanded" true (contains out "int x = N;"));
    t "ifdef / else / endif" `Quick (fun () ->
        let out = pp "#define DEBUG\n#ifdef DEBUG\nint a;\n#else\nint b;\n#endif" in
        Alcotest.(check bool) "then branch" true (contains out "int a;");
        Alcotest.(check bool) "else dropped" false (contains out "int b;");
        let out2 = pp "#ifdef NOPE\nint a;\n#else\nint b;\n#endif" in
        Alcotest.(check bool) "else branch" true (contains out2 "int b;"));
    t "ifndef and nesting" `Quick (fun () ->
        let out =
          pp "#ifndef GUARD\n#define GUARD\n#ifdef GUARD\nint inner;\n#endif\nint outer;\n#endif"
        in
        Alcotest.(check bool) "inner" true (contains out "int inner;");
        Alcotest.(check bool) "outer" true (contains out "int outer;"));
    t "#if 0 disables a region" `Quick (fun () ->
        let out = pp "#if 0\nint dead;\n#endif\nint live;" in
        Alcotest.(check bool) "dead gone" false (contains out "int dead;");
        Alcotest.(check bool) "live kept" true (contains out "int live;"));
    t "line continuations join" `Quick (fun () ->
        let out = pp "#define TWO \\\n 2\nint x = TWO;" in
        Alcotest.(check bool) "joined" true (contains out "int x = 2;"));
    t "include via resolver" `Quick (fun () ->
        let resolve = function
          | "defs.h" -> Some "#define FROM_HEADER 7\n"
          | _ -> None
        in
        let out = pp ~resolve_include:resolve "#include \"defs.h\"\nint x = FROM_HEADER;" in
        Alcotest.(check bool) "header macro" true (contains out "int x = 7;"));
    t "missing include becomes a comment" `Quick (fun () ->
        let out = pp "#include <linux/slab.h>\nint x;" in
        Alcotest.(check bool) "skipped note" true (contains out "include skipped");
        Alcotest.(check bool) "rest kept" true (contains out "int x;"));
    t "command-line defines" `Quick (fun () ->
        let out = pp ~defines:[ ("MODE", "3") ] "int x = MODE;" in
        Alcotest.(check bool) "defined" true (contains out "int x = 3;"));
    t "line numbers survive directives" `Quick (fun () ->
        let src = "#define F 1\nint f(int *p) {\nkfree(p);\nreturn *p;\n}" in
        let out = pp src in
        let tu = Cparse.parse_tunit ~file:"lines.c" out in
        let r =
          Engine.run (Supergraph.build [ tu ]) [ Free_checker.checker () ]
        in
        match r.Engine.reports with
        | [ rep ] -> Alcotest.(check int) "deref on line 4" 4 rep.Report.loc.Srcloc.line
        | _ -> Alcotest.fail "expected one report");
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"preprocessing preserves line counts" ~count:30
         QCheck2.Gen.(int_range 1 2000)
         (fun seed ->
           let g = Gen.generate ~seed ~n_funcs:4 ~bug_rate:0.5 in
           let src =
             "#define GUARD 1\n#ifdef GUARD\n" ^ g.Gen.source ^ "\n#endif\n"
           in
           let count s =
             String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 s
           in
           count (Cpp.preprocess ~file:"g.c" src) = count src));
    t "macro-heavy corpus: same findings as hand-expanded code" `Quick (fun () ->
        let macro_src =
          "#define ALLOC(n) kmalloc(n)\n\
           #define RELEASE(p) kfree(p)\n\
           #define CHECKED(p) if (!p) { return -1; }\n\
           int a(int n) { int *x = ALLOC(n); CHECKED(x) RELEASE(x); return *x; }\n\
           int b(int n) { int *y = ALLOC(n); CHECKED(y) RELEASE(y); return 0; }"
        in
        let plain_src =
          "int a(int n) { int *x = kmalloc(n); if (!x) { return -1; } kfree(x); return *x; }\n\
           int b(int n) { int *y = kmalloc(n); if (!y) { return -1; } kfree(y); return 0; }"
        in
        let reports src =
          List.sort compare
            (List.map
               (fun (r : Report.t) -> (r.Report.func, r.Report.message))
               (Engine.check_source ~file:"m.c" src [ Free_checker.checker () ])
                 .Engine.reports)
        in
        Alcotest.(check (list (pair string string)))
          "identical"
          (reports plain_src)
          (reports (Cpp.preprocess ~file:"m.c" macro_src)));
    t "checkers match post-expansion actions (the xgcc property)" `Quick (fun () ->
        (* the kernel-style wrapper expands to a kfree the checker sees *)
        let src =
          "#define KFREE(p) kfree(p)\n\
           #define DEREF(p) (*(p))\n\
           int f(int *buf) {\n\
           KFREE(buf);\n\
           return DEREF(buf);\n\
           }"
        in
        let out = pp src in
        let r =
          Engine.check_source ~file:"m.c" out [ Free_checker.checker () ]
        in
        Alcotest.(check int) "use-after-free through macros" 1
          (List.length r.Engine.reports));
    t "do-while(0) wrapper macros behave (kill inside macro)" `Quick (fun () ->
        let src =
          "#define SAFE_FREE(p) do { kfree(p); p = 0; } while (0)\n\
           #define RAW_FREE(p) kfree(p)\n\
           int safe(int *a) { SAFE_FREE(a); return *a; }\n\
           int raw(int *b) { RAW_FREE(b); return *b; }"
        in
        let r =
          Engine.check_source ~file:"w.c" (pp src) [ Free_checker.checker () ]
        in
        let funcs = List.map (fun (x : Report.t) -> x.Report.func) r.Engine.reports in
        Alcotest.(check (list string)) "only raw flagged" [ "raw" ] funcs);
    t "macro-defined lock discipline" `Quick (fun () ->
        let src =
          "#define LOCK_GUARD(l) lock(l)\n\
           #define UNLOCK_GUARD(l) unlock(l)\n\
           struct lk { int h; };\n\
           int f(struct lk *m, int c) {\n\
           LOCK_GUARD(m);\n\
           if (c) { return c; }\n\
           UNLOCK_GUARD(m);\n\
           return 0;\n\
           }"
        in
        let r = Engine.check_source ~file:"l.c" (pp src) [ Lock_checker.checker () ] in
        Alcotest.(check int) "leak through macro" 1 (List.length r.Engine.reports));
    t "conditional compilation changes the bug population" `Quick (fun () ->
        let src =
          "int f(int *p) {\n\
           kfree(p);\n\
           #ifdef PARANOID\n\
           p = 0;\n\
           #endif\n\
           return *p;\n\
           }"
        in
        let count defines =
          List.length
            (Engine.check_source ~file:"c.c" (pp ~defines src)
               [ Free_checker.checker () ])
              .Engine.reports
        in
        Alcotest.(check int) "without PARANOID: bug" 1 (count []);
        Alcotest.(check int) "with PARANOID: killed" 0 (count [ ("PARANOID", "") ]));
    (* --- #if / #elif constant expressions ---------------------------- *)
    t "#if defined(X) and defined X" `Quick (fun () ->
        let out =
          pp ~defines:[ ("FEATURE", "") ]
            "#if defined(FEATURE)\nint a;\n#endif\n#if defined FEATURE\nint b;\n#endif\n#if defined(NOPE)\nint c;\n#endif"
        in
        Alcotest.(check bool) "paren form" true (contains out "int a;");
        Alcotest.(check bool) "bare form" true (contains out "int b;");
        Alcotest.(check bool) "undefined false" false (contains out "int c;"));
    t "#if arithmetic, comparison and logic" `Quick (fun () ->
        let out =
          pp ~defines:[ ("VER", "3") ]
            "#if VER >= 2 && VER < 10\nint pass;\n#endif\n\
             #if VER == 2 || VER * 2 == 6\nint arith;\n#endif\n\
             #if !defined(MISSING) && (VER + 1) % 2 == 0\nint parity;\n#endif\n\
             #if VER > 100\nint big;\n#endif"
        in
        Alcotest.(check bool) "range" true (contains out "int pass;");
        Alcotest.(check bool) "arith" true (contains out "int arith;");
        Alcotest.(check bool) "parity" true (contains out "int parity;");
        Alcotest.(check bool) "false comparison" false (contains out "int big;"));
    t "#if hex and char literals, undefined idents are 0" `Quick (fun () ->
        let out =
          pp
            "#if 0x10 == 16\nint hex;\n#endif\n\
             #if 'A' == 65\nint chr;\n#endif\n\
             #if UNDEFINED_THING\nint undef;\n#endif"
        in
        Alcotest.(check bool) "hex" true (contains out "int hex;");
        Alcotest.(check bool) "char" true (contains out "int chr;");
        Alcotest.(check bool) "undefined -> 0" false (contains out "int undef;"));
    t "#elif chains take exactly one branch" `Quick (fun () ->
        let src v =
          Printf.sprintf
            "#define V %d\n#if V == 1\nint one;\n#elif V == 2\nint two;\n#elif V == 3\nint three;\n#else\nint other;\n#endif"
            v
        in
        let branch v = pp (src v) in
        Alcotest.(check bool) "v=1 one" true (contains (branch 1) "int one;");
        Alcotest.(check bool) "v=1 not two" false (contains (branch 1) "int two;");
        Alcotest.(check bool) "v=2 two" true (contains (branch 2) "int two;");
        Alcotest.(check bool) "v=2 not else" false (contains (branch 2) "int other;");
        Alcotest.(check bool) "v=3 three" true (contains (branch 3) "int three;");
        Alcotest.(check bool) "v=9 else" true (contains (branch 9) "int other;"));
    t "#elif after a taken branch stays off even if true" `Quick (fun () ->
        let out = pp "#if 1\nint first;\n#elif 1\nint second;\n#else\nint third;\n#endif" in
        Alcotest.(check bool) "first kept" true (contains out "int first;");
        Alcotest.(check bool) "true #elif skipped" false (contains out "int second;");
        Alcotest.(check bool) "else skipped" false (contains out "int third;"));
    t "#if inside an inactive region is not evaluated" `Quick (fun () ->
        (* garbage expression under #if 0 must not raise *)
        let out = pp "#if 0\n#if ) not ( an expression\nint x;\n#endif\n#endif\nint live;" in
        Alcotest.(check bool) "survives" true (contains out "int live;");
        Alcotest.(check bool) "dead gone" false (contains out "int x;"));
    t "#if macro expansion feeds the expression" `Quick (fun () ->
        let out =
          pp
            "#define A 2\n#define B (A * 3)\n#if B == 6\nint six;\n#endif\n\
             #define PICK(x) ((x) + 1)\n#if PICK(4) == 5\nint five;\n#endif"
        in
        Alcotest.(check bool) "object macro" true (contains out "int six;");
        Alcotest.(check bool) "function macro" true (contains out "int five;"));
    t "#if conditional compilation drives checker findings" `Quick (fun () ->
        let src =
          "int f(int *p) {\n\
           kfree(p);\n\
           #if defined(HARDEN) && HARDEN >= 2\n\
           p = 0;\n\
           #endif\n\
           return *p;\n\
           }"
        in
        let count defines =
          List.length
            (Engine.check_source ~file:"c.c" (pp ~defines src)
               [ Free_checker.checker () ])
              .Engine.reports
        in
        Alcotest.(check int) "no HARDEN: bug" 1 (count []);
        Alcotest.(check int) "HARDEN=1: still a bug" 1 (count [ ("HARDEN", "1") ]);
        Alcotest.(check int) "HARDEN=2: killed" 0 (count [ ("HARDEN", "2") ]));
    t "bad #if expressions degrade to false with a warning" `Quick (fun () ->
        (* fault containment: a malformed condition must not kill the
           translation unit — it evaluates to false and warns on the
           diagnostics channel with the condition's location *)
        let bad s =
          let warns = ref [] in
          let old = !Diag.sink in
          Diag.sink := (fun w -> warns := w :: !warns);
          let out =
            Fun.protect ~finally:(fun () -> Diag.sink := old) (fun () -> pp s)
          in
          Alcotest.(check bool) "guarded code dropped" false (contains out "int x;");
          match !warns with
          | [ w ] -> w
          | ws -> Alcotest.failf "expected exactly one warning, got %d" (List.length ws)
        in
        let w = bad "#if 1 / 0\nint x;\n#endif" in
        Alcotest.(check bool) "prefix" true (contains w "xgcc: warning:");
        Alcotest.(check bool) "reason" true (contains w "division by zero");
        Alcotest.(check bool) "location" true (contains w "t.c:1");
        Alcotest.(check bool) "modulo by zero" true
          (contains (bad "#if 1 % 0\nint x;\n#endif") "modulo by zero");
        Alcotest.(check bool) "unbalanced paren" true
          (contains (bad "#if (1\nint x;\n#endif") "t.c:1");
        Alcotest.(check bool) "empty expr on line 2" true
          (contains (bad "int y;\n#if\nint x;\n#endif") "t.c:2"));
  ]
