(* False-path pruning store (Section 8): value tracking, congruence
   closure, orderings, havoc, branch decisions. *)

let e s = Cparse.expr_of_string ~file:"<t>" s
let t = Alcotest.test_case

let verdict =
  Alcotest.testable
    (fun ppf v ->
      Format.pp_print_string ppf
        (match v with Store.True -> "True" | Store.False -> "False" | Store.Unknown -> "Unknown"))
    ( = )

let suite =
  [
    t "constants decide" `Quick (fun () ->
        let s = Store.empty in
        Alcotest.check verdict "1" Store.True (Store.decide s (e "1"));
        Alcotest.check verdict "0" Store.False (Store.decide s (e "0"));
        Alcotest.check verdict "2 > 1" Store.True (Store.decide s (e "2 > 1")));
    t "assignment of constant propagates" `Quick (fun () ->
        let s = Store.assign Store.empty "x" (e "10") in
        Alcotest.(check (option int64)) "x" (Some 10L) (Store.eval s (e "x"));
        Alcotest.check verdict "x == 10" Store.True (Store.decide s (e "x == 10"));
        Alcotest.check verdict "x < 5" Store.False (Store.decide s (e "x < 5")));
    t "expression over known values folds" `Quick (fun () ->
        let s = Store.assign Store.empty "x" (e "10") in
        let s = Store.assign s "y" (e "x + 1") in
        Alcotest.(check (option int64)) "y" (Some 11L) (Store.eval s (e "y")));
    t "renaming: reassignment invalidates old facts" `Quick (fun () ->
        let s = Store.assign Store.empty "x" (e "1") in
        let s = Store.assign s "x" (e "2") in
        Alcotest.(check (option int64)) "x" (Some 2L) (Store.eval s (e "x")));
    t "congruence: same expression same class" `Quick (fun () ->
        let s = Store.assign Store.empty "y" (e "x + 1") in
        let s = Store.assign s "z" (e "x + 1") in
        Alcotest.check verdict "y == z" Store.True (Store.decide s (e "y == z")));
    t "congruence: different expressions unknown" `Quick (fun () ->
        let s = Store.assign Store.empty "y" (e "x + 1") in
        let s = Store.assign s "z" (e "x + 2") in
        Alcotest.check verdict "y == z" Store.Unknown (Store.decide s (e "y == z")));
    t "copy assignment creates equality" `Quick (fun () ->
        let s = Store.assign Store.empty "y" (e "x") in
        Alcotest.check verdict "x == y" Store.True (Store.decide s (e "x == y")));
    t "assume equality merges classes" `Quick (fun () ->
        let s = Store.assume Store.empty (e "a == b") true in
        Alcotest.check verdict "a == b" Store.True (Store.decide s (e "a == b"));
        Alcotest.check verdict "a != b" Store.False (Store.decide s (e "a != b")));
    t "assume disequality" `Quick (fun () ->
        let s = Store.assume Store.empty (e "a == b") false in
        Alcotest.check verdict "a == b" Store.False (Store.decide s (e "a == b")));
    t "truthiness tracks through branches (the Figure 2 pattern)" `Quick (fun () ->
        (* taking if(x) true then asking if(!x) must prune *)
        let s = Store.assume Store.empty (e "x") true in
        Alcotest.check verdict "x" Store.True (Store.decide s (e "x"));
        let s0 = Store.assume Store.empty (e "x") false in
        Alcotest.check verdict "x on false branch" Store.False (Store.decide s0 (e "x"));
        Alcotest.check verdict "x == 0" Store.True (Store.decide s0 (e "x == 0")));
    t "orderings: x < y assumed" `Quick (fun () ->
        let s = Store.assume Store.empty (e "x < y") true in
        Alcotest.check verdict "x < y" Store.True (Store.decide s (e "x < y"));
        Alcotest.check verdict "y < x" Store.False (Store.decide s (e "y < x"));
        Alcotest.check verdict "x == y" Store.False (Store.decide s (e "x == y"));
        Alcotest.check verdict "x <= y" Store.True (Store.decide s (e "x <= y")));
    t "orderings: negation of < is >=" `Quick (fun () ->
        let s = Store.assume Store.empty (e "x < y") false in
        Alcotest.check verdict "y <= x" Store.True (Store.decide s (e "y <= x"));
        Alcotest.check verdict "x < y" Store.False (Store.decide s (e "x < y")));
    t "equality propagates constants" `Quick (fun () ->
        let s = Store.assign Store.empty "x" (e "5") in
        let s = Store.assume s (e "y == x") true in
        Alcotest.(check (option int64)) "y" (Some 5L) (Store.eval s (e "y")));
    t "havoc forgets" `Quick (fun () ->
        let s = Store.assign Store.empty "x" (e "1") in
        let s = Store.havoc s [ "x" ] in
        Alcotest.(check (option int64)) "x" None (Store.eval s (e "x"));
        Alcotest.check verdict "x == 1" Store.Unknown (Store.decide s (e "x == 1")));
    t "calls are opaque" `Quick (fun () ->
        let s = Store.assign Store.empty "x" (e "f()") in
        Alcotest.(check (option int64)) "x" None (Store.eval s (e "x"));
        let s2 = Store.assign s "y" (e "f()") in
        Alcotest.check verdict "x == y" Store.Unknown (Store.decide s2 (e "x == y")));
    t "comparison via constants on both sides" `Quick (fun () ->
        let s = Store.assign Store.empty "a" (e "3") in
        let s = Store.assign s "b" (e "7") in
        Alcotest.check verdict "a < b" Store.True (Store.decide s (e "a < b"));
        Alcotest.check verdict "a >= b" Store.False (Store.decide s (e "a >= b")));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"assume is consistent with decide" ~count:300
         QCheck2.Gen.(
           list_size (int_range 1 5)
             (tup2
                (oneofl [ "x < y"; "x == y"; "y < z"; "x == 3"; "z != 0" ])
                bool))
         (fun assumptions ->
           (* after an assume, decide must not contradict it unless an
              earlier assumption already decided it the other way *)
           let e s = Cparse.expr_of_string ~file:"<q>" s in
           let ok = ref true in
           let _ =
             List.fold_left
               (fun st (cond_src, taken) ->
                 let cond = e cond_src in
                 let before = Store.decide st cond in
                 let st' = Store.assume st cond taken in
                 (match (before, Store.decide st' cond, taken) with
                 | Store.Unknown, Store.False, true -> ok := false
                 | Store.Unknown, Store.True, false -> ok := false
                 | _ -> ());
                 st')
               Store.empty assumptions
           in
           !ok));
    (* qcheck: decisions are never wrong w.r.t. a concrete environment *)
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"decide is sound on concrete assignments" ~count:500
         QCheck2.Gen.(
           tup3 (int_range (-5) 5) (int_range (-5) 5)
             (oneofl [ "x < y"; "x == y"; "x != y"; "x <= y"; "x > 5"; "x + y == 0" ]))
         (fun (vx, vy, cond_src) ->
           let s = Store.assign Store.empty "x" (e (string_of_int vx)) in
           let s = Store.assign s "y" (e (string_of_int vy)) in
           let cond = e cond_src in
           let concrete =
             let env_eval = Store.eval s cond in
             match env_eval with
             | Some n -> Some (not (Int64.equal n 0L))
             | None -> None
           in
           match (Store.decide s cond, concrete) with
           | Store.True, Some b -> b
           | Store.False, Some b -> not b
           | Store.Unknown, _ -> true
           | _, None -> true));
  ]
