(* Pattern matching (Section 4) and Table 1 hole types. *)

let t = Alcotest.test_case
let e s = Cparse.expr_of_string ~file:"<t>" s

let typing_of src = Ctyping.of_program [ Cparse.parse_tunit ~file:"<t>" src ]

let decls =
  typing_of
    {|
int i; float fl; double d; char c;
int *ip; char *cp; void *vp;
struct s { int x; } sv;
int fn2(int a, int b);
|}

let ctx ?(typing = decls) node =
  { Callout.typing; node; annots = Hashtbl.create 1 }

let match_p ?typing ~holes pat_src node_src =
  let pat = Pattern.Pexpr (e pat_src) in
  let node = e node_src in
  Pattern.match_event ~ctx:(ctx ?typing (Some node)) ~holes pat (Pattern.At_node node)

let matches ?typing ~holes pat node = Option.is_some (match_p ?typing ~holes pat node)

let bound_to ~holes pat node name =
  match match_p ~holes pat node with
  | Some bindings -> (
      match List.assoc_opt name bindings with
      | Some (Pattern.Bnode b) -> Some (Cprint.expr_to_string b)
      | Some (Pattern.Bargs args) ->
          Some (String.concat "," (List.map Cprint.expr_to_string args))
      | None -> None)
  | None -> None

let hp = [ ("v", Holes.Any_pointer) ]
let he = [ ("x", Holes.Any_expr) ]

let suite =
  [
    t "literal call pattern matches" `Quick (fun () ->
        Alcotest.(check bool) "rand()" true (matches ~holes:[] "rand()" "rand()");
        Alcotest.(check bool) "other" false (matches ~holes:[] "rand()" "srand()"));
    t "lexical artifacts do not interfere (AST matching)" `Quick (fun () ->
        Alcotest.(check bool) "spacing" true (matches ~holes:he "f( x )" "f(1+  2)"));
    (* Table 1: hole types *)
    t "T1: concrete C type hole" `Quick (fun () ->
        let holes = [ ("n", Holes.Concrete Ctyp.int_) ] in
        Alcotest.(check bool) "int var" true (matches ~holes "f(n)" "f(i)");
        Alcotest.(check bool) "float var" false (matches ~holes "f(n)" "f(fl)"));
    t "T1: any_expr matches anything" `Quick (fun () ->
        Alcotest.(check bool) "expr" true (matches ~holes:he "f(x)" "f(i + fl)"));
    t "T1: any_scalar" `Quick (fun () ->
        let holes = [ ("s", Holes.Any_scalar) ] in
        Alcotest.(check bool) "int" true (matches ~holes "f(s)" "f(i)");
        Alcotest.(check bool) "float" true (matches ~holes "f(s)" "f(fl)");
        Alcotest.(check bool) "pointer is scalar" true (matches ~holes "f(s)" "f(ip)");
        Alcotest.(check bool) "struct not scalar" false (matches ~holes "f(s)" "f(sv)"));
    t "T1: any_pointer" `Quick (fun () ->
        Alcotest.(check bool) "int*" true (matches ~holes:hp "f(v)" "f(ip)");
        Alcotest.(check bool) "char*" true (matches ~holes:hp "f(v)" "f(cp)");
        Alcotest.(check bool) "void*" true (matches ~holes:hp "f(v)" "f(vp)");
        Alcotest.(check bool) "plain int" false (matches ~holes:hp "f(v)" "f(i)"));
    t "T1: any_arguments" `Quick (fun () ->
        let holes = [ ("args", Holes.Any_arguments) ] in
        Alcotest.(check (option string))
          "binds arg list" (Some "i,fl")
          (bound_to ~holes "fn2(args)" "fn2(i, fl)" "args");
        Alcotest.(check bool) "empty args" true (matches ~holes "g(args)" "g()"));
    t "T1: any_fn_call in function position" `Quick (fun () ->
        let holes = [ ("fn", Holes.Any_fn_call); ("args", Holes.Any_arguments) ] in
        Alcotest.(check (option string))
          "binds callee" (Some "fn2")
          (bound_to ~holes "fn(args)" "fn2(i, fl)" "fn"));
    t "deref pattern from Fig. 1" `Quick (fun () ->
        Alcotest.(check bool) "*v" true (matches ~holes:hp "*v" "*ip");
        Alcotest.(check (option string)) "binding" (Some "ip")
          (bound_to ~holes:hp "*v" "*ip" "v"));
    t "repeated holes need equal ASTs (Section 4)" `Quick (fun () ->
        Alcotest.(check bool) "foo(0,0)" true (matches ~holes:he "foo(x, x)" "foo(0, 0)");
        Alcotest.(check bool)
          "foo(a[i],a[i])" true
          (matches ~holes:he "foo(x, x)" "foo(a[i], a[i])");
        Alcotest.(check bool) "foo(0,1)" false (matches ~holes:he "foo(x, x)" "foo(0, 1)"));
    t "assignment pattern" `Quick (fun () ->
        let holes = [ ("v", Holes.Any_pointer); ("x", Holes.Any_expr) ] in
        Alcotest.(check bool)
          "v = malloc(x)" true
          (matches ~holes "v = malloc(x)" "ip = malloc(10)"));
    t "cast on subject is transparent for holes" `Quick (fun () ->
        Alcotest.(check bool) "f((int*)v)" true (matches ~holes:hp "f(v)" "f((int *)ip)"));
    t "and composition threads bindings" `Quick (fun () ->
        let holes = [ ("fn", Holes.Any_fn_call); ("args", Holes.Any_arguments) ] in
        let pat =
          Pattern.Pand
            ( Pattern.Pexpr (e "fn(args)"),
              Pattern.Pcallout (e {|mc_is_call_to(fn, "gets")|}) )
        in
        let node = e "gets(buf)" in
        let r = Pattern.match_event ~ctx:(ctx (Some node)) ~holes pat (Pattern.At_node node) in
        Alcotest.(check bool) "gets matches" true (Option.is_some r);
        let node2 = e "puts(buf)" in
        let r2 =
          Pattern.match_event ~ctx:(ctx (Some node2)) ~holes pat (Pattern.At_node node2)
        in
        Alcotest.(check bool) "puts does not" false (Option.is_some r2));
    t "or composition takes first success" `Quick (fun () ->
        let pat = Pattern.Por (Pattern.Pexpr (e "a()"), Pattern.Pexpr (e "b()")) in
        let node = e "b()" in
        Alcotest.(check bool)
          "b matches" true
          (Option.is_some
             (Pattern.match_event ~ctx:(ctx (Some node)) ~holes:[] pat
                (Pattern.At_node node))));
    t "degenerate callouts" `Quick (fun () ->
        let node = e "anything()" in
        Alcotest.(check bool)
          "${1}" true
          (Option.is_some
             (Pattern.match_event ~ctx:(ctx (Some node)) ~holes:[] Pattern.Palways
                (Pattern.At_node node)));
        Alcotest.(check bool)
          "${0}" false
          (Option.is_some
             (Pattern.match_event ~ctx:(ctx (Some node)) ~holes:[] Pattern.Pnever
                (Pattern.At_node node))));
    t "end_of_path matches only the path-end event" `Quick (fun () ->
        let node = e "f()" in
        Alcotest.(check bool)
          "not at node" false
          (Option.is_some
             (Pattern.match_event ~ctx:(ctx (Some node)) ~holes:[] Pattern.Pend_of_path
                (Pattern.At_node node)));
        Alcotest.(check bool)
          "at end" true
          (Option.is_some
             (Pattern.match_event ~ctx:(ctx None) ~holes:[] Pattern.Pend_of_path
                Pattern.At_end_of_path)));
    t "callout mc_stmt refers to current node" `Quick (fun () ->
        let node = e "gets(s)" in
        let pat = Pattern.Pcallout (e {|mc_is_call_to(mc_stmt, "gets")|}) in
        Alcotest.(check bool)
          "mc_stmt" true
          (Option.is_some
             (Pattern.match_event ~ctx:(ctx (Some node)) ~holes:[] pat
                (Pattern.At_node node))));
    t "callout library: constants and args" `Quick (fun () ->
        let holes = [ ("x", Holes.Any_expr) ] in
        let pat =
          Pattern.Pand
            (Pattern.Pexpr (e "f(x)"), Pattern.Pcallout (e "mc_is_constant(x)"))
        in
        let yes = e "f(42)" and no = e "f(i)" in
        Alcotest.(check bool)
          "const arg" true
          (Option.is_some
             (Pattern.match_event ~ctx:(ctx (Some yes)) ~holes pat (Pattern.At_node yes)));
        Alcotest.(check bool)
          "non-const arg" false
          (Option.is_some
             (Pattern.match_event ~ctx:(ctx (Some no)) ~holes pat (Pattern.At_node no))));
    t "custom callout registration" `Quick (fun () ->
        Callout.register "test_is_ident_q" (fun _ctx args ->
            match args with
            | [ Callout.Vast { Cast.enode = Cast.Eident "q"; _ } ] -> Callout.Vbool true
            | _ -> Callout.Vbool false);
        let holes = [ ("x", Holes.Any_expr) ] in
        let pat =
          Pattern.Pand
            (Pattern.Pexpr (e "f(x)"), Pattern.Pcallout (e "test_is_ident_q(x)"))
        in
        let yes = e "f(q)" and no = e "f(r)" in
        Alcotest.(check bool)
          "q" true
          (Option.is_some
             (Pattern.match_event ~ctx:(ctx (Some yes)) ~holes pat (Pattern.At_node yes)));
        Alcotest.(check bool)
          "r" false
          (Option.is_some
             (Pattern.match_event ~ctx:(ctx (Some no)) ~holes pat (Pattern.At_node no))));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"hole-free patterns match exactly themselves"
         ~count:200
         QCheck2.Gen.(
           oneofl
             [ "f(1, 2)"; "a + b * c"; "*p->next"; "x = y"; "tbl[i]"; "g()";
               "a && (b || c)"; "s.f1.f2"; "-n"; "(x + 1) * 2" ])
         (fun src ->
           let node = e src in
           let pat = Pattern.Pexpr (e src) in
           Option.is_some
             (Pattern.match_event ~ctx:(ctx (Some node)) ~holes:[] pat
                (Pattern.At_node node))));
    t "pattern only matches at its root" `Quick (fun () ->
        (* the pattern kfree(v) must not match the node '*kfree(v)' *)
        Alcotest.(check bool)
          "deref node" false
          (matches ~holes:hp "kfree(v)" "*kfree(ip)"));
  ]
