(* Section 9: generic ranking, severity stratification, z-statistic,
   statistical sort, grouping, history suppression. *)

let t = Alcotest.test_case

let mk ?(checker = "c") ?(msg = "m") ?(line = 10) ?(start_line = 10) ?(conds = 0)
    ?(syn = 0) ?(depth = 0) ?(annotations = []) ?rule ?(func = "f") ?var () =
  Report.make ~checker ~message:msg
    ~loc:(Srcloc.make ~file:"x.c" ~line ~col:1)
    ~start_loc:(Srcloc.make ~file:"x.c" ~line:start_line ~col:1)
    ~func ~file:"x.c" ?var ?rule ~conditionals:conds ~syn_chain:syn ~call_depth:depth
    ~annotations ()

let order reports = List.map (fun (r : Report.t) -> r.Report.message) reports

let suite =
  [
    t "distance ranks near errors first" `Quick (fun () ->
        let far = mk ~msg:"far" ~line:100 ~start_line:1 () in
        let near = mk ~msg:"near" ~line:12 ~start_line:10 () in
        Alcotest.(check (list string)) "order" [ "near"; "far" ]
          (order (Rank.generic_sort [ far; near ])));
    t "each conditional counts as ten lines" `Quick (fun () ->
        let conds = mk ~msg:"conds" ~line:10 ~start_line:10 ~conds:3 () in
        let dist = mk ~msg:"dist" ~line:35 ~start_line:10 () in
        (* 30 vs 25 lines-equivalent *)
        Alcotest.(check (list string)) "order" [ "dist"; "conds" ]
          (order (Rank.generic_sort [ conds; dist ])));
    t "local errors rank above interprocedural" `Quick (fun () ->
        let inter = mk ~msg:"inter" ~depth:1 () in
        let local = mk ~msg:"local" ~line:90 ~start_line:1 () in
        Alcotest.(check (list string)) "order" [ "local"; "inter" ]
          (order (Rank.generic_sort [ inter; local ])));
    t "global errors ordered by call-chain length" `Quick (fun () ->
        let d3 = mk ~msg:"d3" ~depth:3 () in
        let d1 = mk ~msg:"d1" ~depth:1 () in
        Alcotest.(check (list string)) "order" [ "d1"; "d3" ]
          (order (Rank.generic_sort [ d3; d1 ])));
    t "direct errors rank above synonym-mediated" `Quick (fun () ->
        let syn = mk ~msg:"syn" ~syn:2 () in
        let direct = mk ~msg:"direct" ~line:80 ~start_line:1 () in
        Alcotest.(check (list string)) "order" [ "direct"; "syn" ]
          (order (Rank.generic_sort [ syn; direct ])));
    t "synonyms ordered by chain length" `Quick (fun () ->
        let s2 = mk ~msg:"s2" ~syn:2 () in
        let s1 = mk ~msg:"s1" ~syn:1 () in
        Alcotest.(check (list string)) "order" [ "s1"; "s2" ]
          (order (Rank.generic_sort [ s2; s1 ])));
    t "severity stratifies above everything" `Quick (fun () ->
        let minor = mk ~msg:"minor" ~annotations:[ "MINOR" ] () in
        let sec = mk ~msg:"sec" ~line:500 ~start_line:1 ~depth:4 ~annotations:[ "SECURITY" ] () in
        let err = mk ~msg:"err" ~annotations:[ "ERROR" ] () in
        let normal = mk ~msg:"normal" () in
        Alcotest.(check (list string)) "order" [ "sec"; "err"; "normal"; "minor" ]
          (order (Rank.generic_sort [ minor; sec; err; normal ])));
    t "z-statistic formula" `Quick (fun () ->
        (* z(n=100, e=90) with p0 = .5: (0.9-0.5)/sqrt(0.0025) = 8 *)
        Alcotest.(check (float 1e-9)) "z" 8.0 (Zstat.z ~n:100 ~e:90 ());
        Alcotest.(check (float 1e-9)) "z half" 0.0 (Zstat.z ~n:10 ~e:5 ());
        Alcotest.(check bool) "empty" true (Zstat.z ~n:0 ~e:0 () = neg_infinity));
    t "rank_rules sorts by reliability" `Quick (fun () ->
        let ranked =
          Zstat.rank_rules
            [ ("random", 5, 5); ("reliable", 99, 1); ("inverted", 1, 9) ]
        in
        Alcotest.(check (list string)) "order" [ "reliable"; "random"; "inverted" ]
          (List.map fst ranked));
    t "statistical sort pushes bad-rule clusters down" `Quick (fun () ->
        let good = mk ~msg:"real" ~rule:"always_free" () in
        let noise1 = mk ~msg:"n1" ~rule:"cond_free" () in
        let noise2 = mk ~msg:"n2" ~rule:"cond_free" () in
        let counters = [ ("always_free", 50, 1); ("cond_free", 2, 48) ] in
        Alcotest.(check (list string)) "order" [ "real"; "n1"; "n2" ]
          (order (Rank.statistical_sort ~counters [ noise1; good; noise2 ])));
    t "group_by_rule groups common analysis facts" `Quick (fun () ->
        let a1 = mk ~msg:"a1" ~rule:"A" () in
        let b1 = mk ~msg:"b1" ~rule:"B" () in
        let a2 = mk ~msg:"a2" ~rule:"A" () in
        let groups = Rank.group_by_rule [ a1; b1; a2 ] in
        Alcotest.(check (list string)) "rules" [ "A"; "B" ] (List.map fst groups);
        Alcotest.(check int) "A size" 2 (List.length (List.assoc "A" groups)));
    t "sort is stable for equal keys" `Quick (fun () ->
        let r1 = mk ~msg:"first" () in
        let r2 = mk ~msg:"second" () in
        Alcotest.(check (list string)) "stable" [ "first"; "second" ]
          (order (Rank.generic_sort [ r1; r2 ])));
    t "stratified classes in inspection order" `Quick (fun () ->
        let sec = mk ~msg:"sec" ~annotations:[ "SECURITY" ] () in
        let nrm1 = mk ~msg:"n1" () in
        let nrm2 = mk ~msg:"n2" ~line:90 ~start_line:1 () in
        let strata = Rank.stratified [ nrm2; sec; nrm1 ] in
        match strata with
        | [ (Rank.Security, [ s1 ]); (Rank.Normal, [ a; b ]) ] ->
            Alcotest.(check string) "sec" "sec" s1.Report.message;
            Alcotest.(check (list string)) "normals sorted" [ "n1"; "n2" ]
              [ a.Report.message; b.Report.message ]
        | _ -> Alcotest.fail "bad strata");
    (* history *)
    t "history suppression matches identity, not line numbers" `Quick (fun () ->
        let v1 = mk ~msg:"use after free" ~func:"f" ~var:"p" ~line:10 () in
        let db = History.of_reports [ v1 ] in
        (* same error moved to a different line: still suppressed *)
        let v2 = mk ~msg:"use after free" ~func:"f" ~var:"p" ~line:42 () in
        let kept, n = History.suppress db [ v2 ] in
        Alcotest.(check int) "suppressed" 1 n;
        Alcotest.(check int) "kept" 0 (List.length kept));
    t "history distinguishes variables and functions" `Quick (fun () ->
        let v1 = mk ~msg:"m" ~func:"f" ~var:"p" () in
        let db = History.of_reports [ v1 ] in
        let other_var = mk ~msg:"m" ~func:"f" ~var:"q" () in
        let other_fn = mk ~msg:"m" ~func:"g" ~var:"p" () in
        let kept, _ = History.suppress db [ other_var; other_fn ] in
        Alcotest.(check int) "both kept" 2 (List.length kept));
    t "history save/load round-trips" `Quick (fun () ->
        let v1 = mk ~msg:"m1" () and v2 = mk ~msg:"m2" () in
        let db = History.of_reports [ v1; v2 ] in
        let path = Filename.temp_file "mc_history" ".db" in
        History.save path db;
        let db2 = History.load path in
        Sys.remove path;
        Alcotest.(check int) "size" 2 (History.size db2);
        Alcotest.(check bool) "mem" true (History.mem db2 v1));
    t "loading a missing history file is empty" `Quick (fun () ->
        let db = History.load "/nonexistent/path/xyz.db" in
        Alcotest.(check int) "empty" 0 (History.size db));
    (* report plumbing *)
    t "report identity key fields" `Quick (fun () ->
        let r = mk ~checker:"free" ~msg:"boom" ~func:"f" ~var:"p" () in
        let k = Report.identity_key r in
        Alcotest.(check bool) "has file" true (String.length k > 0);
        let r2 = mk ~checker:"free" ~msg:"boom" ~func:"f" ~var:"p" ~line:99 () in
        Alcotest.(check string) "line-insensitive" k (Report.identity_key r2));
    t "collector preserves order" `Quick (fun () ->
        let c = Report.new_collector () in
        Report.emit c (mk ~msg:"a" ());
        Report.emit c (mk ~msg:"b" ());
        Alcotest.(check (list string)) "order" [ "a"; "b" ]
          (List.map (fun (r : Report.t) -> r.Report.message) (Report.reports c));
        Alcotest.(check int) "count" 2 (Report.count c);
        Report.clear c;
        Alcotest.(check int) "cleared" 0 (Report.count c));
  ]
