(* Printer smoke tests: every pretty-printer produces sane, grep-able
   output (these power the CLI dump commands and error messages). *)

let t = Alcotest.test_case

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.equal (String.sub hay i m) needle || go (i + 1)) in
  go 0

let cfg_of src =
  match (Cparse.parse_tunit ~file:"<t>" src).Cast.tu_globals with
  | Cast.Gfun f :: _ -> Cfg.of_fundef f
  | _ -> Alcotest.fail "expected function"

let suite =
  [
    t "Cfg.pp shows blocks and terminators" `Quick (fun () ->
        let cfg = cfg_of "int f(int x) { if (x) { x = 1; } return x; }" in
        let s = Format.asprintf "%a" Cfg.pp cfg in
        Alcotest.(check bool) "entry" true (contains s "function f");
        Alcotest.(check bool) "branch" true (contains s "if (x)");
        Alcotest.(check bool) "exit" true (contains s "exit"));
    t "Block.pp shows havoc sets" `Quick (fun () ->
        let cfg = cfg_of "int f(int n) { while (n) { n = n - 1; } return n; }" in
        let s = Format.asprintf "%a" Cfg.pp cfg in
        Alcotest.(check bool) "havoc" true (contains s "havoc: n"));
    t "Callgraph.pp lists roots and edges" `Quick (fun () ->
        let tu =
          Cparse.parse_tunit ~file:"<t>" "void a(void) { b(); } void b(void) {}"
        in
        let funcs =
          List.filter_map (function Cast.Gfun f -> Some f | _ -> None) tu.Cast.tu_globals
        in
        let s = Format.asprintf "%a" Callgraph.pp (Callgraph.build funcs) in
        Alcotest.(check bool) "roots" true (contains s "roots: a");
        Alcotest.(check bool) "edge" true (contains s "a -> b"));
    t "Store.pp shows constants and relations" `Quick (fun () ->
        let e s = Cparse.expr_of_string ~file:"<t>" s in
        let st = Store.assign Store.empty "x" (e "5") in
        let st = Store.assume st (e "x < y") true in
        let s = Format.asprintf "%a" Store.pp st in
        Alcotest.(check bool) "const" true (contains s "x = 5");
        Alcotest.(check bool) "relation" true (contains s "<"));
    t "Sm.pp_inst shows global state and instances" `Quick (fun () ->
        let sm = Sm.initial (Free_checker.checker ()) in
        let ids = Exprid.make_ctx (Exprid.empty ()) in
        Sm.add_instance sm
          (Sm.new_instance ~ids ~target:(Cast.ident "p") ~value:"freed"
             ~created_at:0 ~created_loc:Srcloc.dummy ~created_depth:0 ());
        let s = Format.asprintf "%a" Sm.pp_inst sm in
        Alcotest.(check bool) "gstate" true (contains s "gstate=start");
        Alcotest.(check bool) "instance" true (contains s "p : freed"));
    t "Sm.pp_dest covers all shapes" `Quick (fun () ->
        let p d = Format.asprintf "%a" Sm.pp_dest d in
        Alcotest.(check string) "var" "v.locked" (p (Sm.To_var "locked"));
        Alcotest.(check string) "stop" "v.stop" (p Sm.To_stop);
        Alcotest.(check bool) "branch" true
          (contains (p (Sm.On_branch (Sm.To_var "a", Sm.To_stop))) "true = v.a"));
    t "Report.pp carries annotations and depth" `Quick (fun () ->
        let r =
          Report.make ~checker:"c" ~message:"m"
            ~loc:(Srcloc.make ~file:"f.c" ~line:3 ~col:1)
            ~func:"fn" ~annotations:[ "SECURITY" ] ~call_depth:2 ()
        in
        let s = Report.to_string r in
        Alcotest.(check bool) "loc" true (contains s "f.c:3:1");
        Alcotest.(check bool) "ann" true (contains s "SECURITY");
        Alcotest.(check bool) "depth" true (contains s "depth 2"));
    t "Summary.pp_tuple prints placeholder and unknown specially" `Quick (fun () ->
        Alcotest.(check string) "placeholder" "(start,<>)"
          (Format.asprintf "%a" Summary.pp_tuple (Summary.global_tuple "start"));
        let unk = Summary.unknown_tuple ~gstate:"start" (Cast.ident "p") in
        Alcotest.(check string) "unknown" "(start,v:p->unknown)"
          (Format.asprintf "%a" Summary.pp_tuple unk));
    (* lexer print/re-lex property on token streams *)
    t "token to_string round-trips through the lexer" `Quick (fun () ->
        let src = "if (a <= b && c->f++) { x[i] >>= 2; } else return sizeof(int);" in
        let toks1 =
          List.filter
            (fun t -> t <> Tok.EOF)
            (List.map (fun t -> t.Clex.tok) (Clex.tokenize ~file:"<t>" src))
        in
        let printed = String.concat " " (List.map Tok.to_string toks1) in
        let toks2 =
          List.filter
            (fun t -> t <> Tok.EOF)
            (List.map (fun t -> t.Clex.tok) (Clex.tokenize ~file:"<t>" printed))
        in
        Alcotest.(check bool) "same stream" true (toks1 = toks2));
    (* malformed metal inputs die with located errors *)
    t "malformed metal sources raise located errors" `Quick (fun () ->
        List.iter
          (fun src ->
            match Metal_parse.parse ~file:"<m>" src with
            | exception Metal_parse.Metal_error (_, _) -> ()
            | exception Cparse.Parse_error (_, _) -> ()
            | exception Clex.Lex_error (_, _) -> ()
            | _ -> Alcotest.fail ("should not parse: " ^ src))
          [
            "sm { start: { f() } ==> a; }";          (* missing name *)
            "sm s { start: { f() } a; }";            (* missing arrow *)
            "sm s { start: {  } ==> a; }";           (* empty fragment *)
            "sm s { start: { f() } ==> ; }";         (* missing dest *)
            "sm s { start: { f() } ==> { err(\"x\") } ; }";  (* missing ; in action *)
            "sm s { decl ; start: { f() } ==> a; }"; (* bad decl *)
            "sm s { start: { f( } ==> a; }";         (* unbalanced fragment *)
          ]);
    t "malformed C sources recover with located skip stubs" `Quick (fun () ->
        List.iter
          (fun src ->
            match Cparse.parse_tunit ~file:"<t>" src with
            | exception Clex.Lex_error (_, _) -> ()
            | tu ->
                let stubs =
                  List.filter_map
                    (function Cast.Gskipped sk -> Some sk | _ -> None)
                    tu.Cast.tu_globals
                in
                (match stubs with
                | [] -> Alcotest.fail ("should not parse cleanly: " ^ src)
                | sk :: _ ->
                    Alcotest.(check bool) "has line" true
                      (sk.Cast.sk_from.Srcloc.line >= 1);
                    Alcotest.(check bool) "carries a message" true
                      (String.length sk.Cast.sk_msg > 0)))
          [
            "int f(void) { return }";
            "int f(void { return 0; }";
            "int f(void) { if }";
            "struct { int";
            "int f(void) { x = ; }";
          ]);
  ]
