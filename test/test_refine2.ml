(* Dedicated refine/restore classification suite (Table 2 plumbing beyond
   the mapping algebra covered in test_interproc). *)

let t = Alcotest.test_case
let e s = Cparse.expr_of_string ~file:"<t>" s

let program =
  {|
int global_obj;
static int file_scope_obj;
void callee(int *xf, int n) { n = n + 1; }
int caller(int *xa, int m) {
   int local_only;
   local_only = m;
   callee(xa, m);
   return local_only;
}
|}

let setup () =
  let tu = Cparse.parse_tunit ~file:"a.c" program in
  let typing = Ctyping.of_program [ tu ] in
  let funcs =
    List.filter_map (function Cast.Gfun f -> Some f | _ -> None) tu.Cast.tu_globals
  in
  let find n = List.find (fun (f : Cast.fundef) -> String.equal f.fname n) funcs in
  (typing, find "caller", find "callee")

let mapping () =
  Refine.make_mapping
    ~params:[ ("xf", Ctyp.Ptr Ctyp.int_); ("n", Ctyp.int_) ]
    ~args:[ e "xa"; e "m" ]

let classify tree =
  let typing, caller, callee = setup () in
  Refine.classify_refine ~typing ~caller ~callee_file:callee.Cast.ffile (mapping ())
    (e tree)

let classify_back tree =
  let typing, _, callee = setup () in
  Refine.classify_restore ~typing ~callee (mapping ()) (e tree)

let xfer =
  Alcotest.testable
    (fun ppf -> function
      | Refine.Mapped t -> Format.fprintf ppf "Mapped(%s)" (Cprint.expr_to_string t)
      | Refine.Global_pass -> Format.pp_print_string ppf "Global_pass"
      | Refine.Inactivate -> Format.pp_print_string ppf "Inactivate"
      | Refine.Save -> Format.pp_print_string ppf "Save")
    (fun a b ->
      match (a, b) with
      | Refine.Mapped x, Refine.Mapped y -> Cast.equal_expr x y
      | Refine.Global_pass, Refine.Global_pass
      | Refine.Inactivate, Refine.Inactivate
      | Refine.Save, Refine.Save ->
          true
      | _ -> false)

let back =
  Alcotest.testable
    (fun ppf -> function
      | Refine.Back t -> Format.fprintf ppf "Back(%s)" (Cprint.expr_to_string t)
      | Refine.Back_global -> Format.pp_print_string ppf "Back_global"
      | Refine.Back_dropped -> Format.pp_print_string ppf "Back_dropped")
    (fun a b ->
      match (a, b) with
      | Refine.Back x, Refine.Back y -> Cast.equal_expr x y
      | Refine.Back_global, Refine.Back_global
      | Refine.Back_dropped, Refine.Back_dropped ->
          true
      | _ -> false)

let suite =
  [
    t "argument state maps into the callee" `Quick (fun () ->
        Alcotest.check xfer "xa" (Refine.Mapped (e "xf")) (classify "xa");
        Alcotest.check xfer "*xa" (Refine.Mapped (e "*xf")) (classify "*xa");
        Alcotest.check xfer "xa->next" (Refine.Mapped (e "xf->next")) (classify "xa->next"));
    t "global objects pass unchanged" `Quick (fun () ->
        Alcotest.check xfer "global" Refine.Global_pass (classify "global_obj"));
    t "file-scope statics cross files asleep" `Quick (fun () ->
        (* caller and callee are in the same file here: stays active *)
        Alcotest.check xfer "same file" Refine.Global_pass (classify "file_scope_obj");
        (* simulate a callee in another file *)
        let typing, caller, _ = setup () in
        let other_callee =
          {
            Cast.fname = "other";
            freturn = Ctyp.Void;
            fparams = [ ("xf", Ctyp.Ptr Ctyp.int_); ("n", Ctyp.int_) ];
            fvariadic = false;
            fbody = Cast.mk_stmt (Cast.Sblock []);
            floc = Srcloc.dummy;
            ffile = "b.c";
            fstatic = false;
          }
        in
        ignore other_callee;
        let r =
          Refine.classify_refine ~typing ~caller ~callee_file:"b.c" (mapping ())
            (e "file_scope_obj")
        in
        Alcotest.check xfer "cross file" Refine.Inactivate r);
    t "caller-local state is saved" `Quick (fun () ->
        Alcotest.check xfer "local" Refine.Save (classify "local_only");
        Alcotest.check xfer "local expr" Refine.Save (classify "local_only + 1"));
    t "mixed tree with a leftover caller-local is saved" `Quick (fun () ->
        Alcotest.check xfer "mixed" Refine.Save (classify "xa[local_only]"));
    t "restore maps formals back" `Quick (fun () ->
        Alcotest.check back "xf" (Refine.Back (e "xa")) (classify_back "xf");
        Alcotest.check back "*xf" (Refine.Back (e "*xa")) (classify_back "*xf");
        Alcotest.check back "xf->f" (Refine.Back (e "xa->f")) (classify_back "xf->f"));
    t "restore passes globals through" `Quick (fun () ->
        Alcotest.check back "global" Refine.Back_global (classify_back "global_obj"));
    t "by-value root detection" `Quick (fun () ->
        let m = mapping () in
        Alcotest.(check bool) "xf is byval root" true (Refine.is_byval_root m (e "xf"));
        Alcotest.(check bool) "*xf is not" false (Refine.is_byval_root m (e "*xf"));
        let m2 =
          Refine.make_mapping ~params:[ ("xf", Ctyp.Ptr Ctyp.int_) ] ~args:[ e "&xa" ]
        in
        Alcotest.(check bool) "&-mapped formal is not byval" false
          (Refine.is_byval_root m2 (e "xf")));
    t "variadic extras are ignored" `Quick (fun () ->
        let m =
          Refine.make_mapping ~params:[ ("fmt", Ctyp.Ptr Ctyp.char_) ]
            ~args:[ e "f"; e "a"; e "b" ]
        in
        Alcotest.(check string) "only fmt mapped" "fmt"
          (Cprint.expr_to_string (Refine.refine_tree m (e "f")));
        Alcotest.(check string) "extras untouched" "a"
          (Cprint.expr_to_string (Refine.refine_tree m (e "a"))));
    t "missing actuals leave formals unmapped" `Quick (fun () ->
        let m = Refine.make_mapping ~params:[ ("p", Ctyp.void_ptr); ("q", Ctyp.void_ptr) ]
            ~args:[ e "x" ] in
        (* q has no actual: a tree over q cannot come back *)
        let typing, _, callee = setup () in
        ignore typing;
        ignore callee;
        Alcotest.(check string) "p maps" "p"
          (Cprint.expr_to_string (Refine.refine_tree m (e "x")));
        Alcotest.(check string) "restore p" "x"
          (Cprint.expr_to_string (Refine.restore_tree m (e "p"))));
  ]
