(* Parser tests: expression grammar, statements, declarations, typedefs,
   plus a qcheck round-trip property (print then reparse is identity). *)

let expr s = Cparse.expr_of_string ~file:"<t>" s
let pe s = Cprint.expr_to_string (expr s)

let check_expr name src expected_print =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string) name expected_print (pe src))

let tu src = Cparse.parse_tunit ~file:"<t>" src
let t = Alcotest.test_case

let fn_body src =
  match (tu src).Cast.tu_globals with
  | Cast.Gfun f :: _ -> f
  | _ -> Alcotest.fail "expected a function"

(* --- qcheck round-trip ---------------------------------------------- *)

let leaf_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun n -> Cast.intlit (Int64.of_int (abs n))) small_int;
        map
          (fun c -> Cast.ident (Printf.sprintf "v%c" c))
          (char_range 'a' 'e');
      ])

let expr_gen =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n <= 1 then leaf_gen
        else
          oneof
            [
              leaf_gen;
              map2
                (fun l r -> Cast.mk_expr (Cast.Ebinary (Cast.Add, l, r)))
                (self (n / 2)) (self (n / 2));
              map2
                (fun l r -> Cast.mk_expr (Cast.Ebinary (Cast.Mul, l, r)))
                (self (n / 2)) (self (n / 2));
              map2
                (fun l r -> Cast.mk_expr (Cast.Ebinary (Cast.Lt, l, r)))
                (self (n / 2)) (self (n / 2));
              map2
                (fun l r -> Cast.mk_expr (Cast.Ebinary (Cast.Land, l, r)))
                (self (n / 2)) (self (n / 2));
              map (fun e -> Cast.mk_expr (Cast.Eunary (Cast.Deref, e))) (self (n - 1));
              map (fun e -> Cast.mk_expr (Cast.Eunary (Cast.Lognot, e))) (self (n - 1));
              map
                (fun e -> Cast.mk_expr (Cast.Ecall (Cast.ident "f", [ e ])))
                (self (n - 1));
              map2
                (fun a i -> Cast.mk_expr (Cast.Eindex (a, i)))
                (map (fun c -> Cast.ident (Printf.sprintf "a%c" c)) (char_range 'a' 'c'))
                (self (n - 1));
              map2
                (fun l r -> Cast.mk_expr (Cast.Eassign (None, Cast.ident "x", Cast.mk_expr (Cast.Ebinary (Cast.Add, l, r)))))
                (self (n / 2)) (self (n / 2));
            ]))

let roundtrip =
  QCheck2.Test.make ~name:"print/reparse round-trip" ~count:300 expr_gen (fun e ->
      let printed = Cprint.expr_to_string e in
      let reparsed = Cparse.expr_of_string ~file:"<rt>" printed in
      Cast.equal_expr e reparsed)

let const_eval_matches =
  QCheck2.Test.make ~name:"const_eval agrees after reparse" ~count:300
    QCheck2.Gen.(
      sized @@ fix (fun self n ->
          if n <= 1 then map (fun k -> Cast.intlit (Int64.of_int (k - 50))) (int_bound 100)
          else
            oneof
              [
                map (fun k -> Cast.intlit (Int64.of_int (k - 50))) (int_bound 100);
                map2
                  (fun l r -> Cast.mk_expr (Cast.Ebinary (Cast.Add, l, r)))
                  (self (n / 2)) (self (n / 2));
                map2
                  (fun l r -> Cast.mk_expr (Cast.Ebinary (Cast.Mul, l, r)))
                  (self (n / 2)) (self (n / 2));
                map2
                  (fun l r -> Cast.mk_expr (Cast.Ebinary (Cast.Sub, l, r)))
                  (self (n / 2)) (self (n / 2));
              ]))
    (fun e ->
      let printed = Cprint.expr_to_string e in
      let reparsed = Cparse.expr_of_string ~file:"<rt>" printed in
      Option.equal Int64.equal (Cparse.const_eval e) (Cparse.const_eval reparsed))

let suite =
  [
    (* precedence and associativity *)
    check_expr "mul binds tighter" "1+2*3" "1 + 2 * 3";
    check_expr "parens preserved where needed" "(1+2)*3" "(1 + 2) * 3";
    check_expr "relational vs logic" "a<b&&c>d" "a < b && c > d";
    check_expr "assign right assoc" "a=b=c" "a = b = c";
    check_expr "ternary" "a?b:c" "a ? b : c";
    check_expr "unary deref field" "(*p).f" "(*p).f";
    check_expr "arrow chain" "p->next->prev" "p->next->prev";
    check_expr "index call mix" "a[i](x)" "a[i](x)";
    check_expr "address of deref" "&*p" "&*p";
    check_expr "comma" "a, b" "a, b";
    check_expr "compound assign" "x+=2" "x += 2";
    check_expr "postincrement" "x++" "x++";
    (* casts and sizeof *)
    t "cast expression" `Quick (fun () ->
        match (expr "(int *)p").Cast.enode with
        | Cast.Ecast (Ctyp.Ptr _, _) -> ()
        | _ -> Alcotest.fail "expected cast");
    t "sizeof type" `Quick (fun () ->
        match (expr "sizeof(int)").Cast.enode with
        | Cast.Esizeof_type t when Ctyp.equal t Ctyp.int_ -> ()
        | _ -> Alcotest.fail "expected sizeof(int)");
    t "sizeof expr" `Quick (fun () ->
        match (expr "sizeof(x)").Cast.enode with
        | Cast.Esizeof_expr _ -> ()
        | _ -> Alcotest.fail "expected sizeof expr");
    t "string concatenation" `Quick (fun () ->
        match (expr {|"a" "b"|}).Cast.enode with
        | Cast.Estr "ab" -> ()
        | _ -> Alcotest.fail "expected concatenated string");
    (* statements *)
    t "if else chain" `Quick (fun () ->
        let f = fn_body "int f(int x){ if (x) return 1; else if (x>2) return 2; else return 3; }" in
        match f.Cast.fbody.snode with
        | Cast.Sblock [ { snode = Cast.Sif (_, _, Some _); _ } ] -> ()
        | _ -> Alcotest.fail "bad if/else shape");
    t "for loop with decl init" `Quick (fun () ->
        let f = fn_body "int f(void){ int s = 0; for (int i = 0; i < 10; i++) s += i; return s; }" in
        ignore f);
    t "do while" `Quick (fun () ->
        let f = fn_body "int f(int x){ do { x--; } while (x > 0); return x; }" in
        ignore f);
    t "switch with cases and default" `Quick (fun () ->
        let f = fn_body "int f(int x){ switch(x) { case 1: return 1; case 2+3: return 5; default: break; } return 0; }" in
        match f.Cast.fbody.snode with
        | Cast.Sblock ({ snode = Cast.Sswitch (_, cases); _ } :: _) ->
            Alcotest.(check int) "cases" 3 (List.length cases);
            (match cases with
            | _ :: { case_guard = Some 5L; _ } :: _ -> ()
            | _ -> Alcotest.fail "case 2+3 should fold to 5")
        | _ -> Alcotest.fail "bad switch shape");
    t "goto and labels" `Quick (fun () ->
        let f = fn_body "int f(int x){ if (x) goto out; x = 1; out: return x; }" in
        ignore f);
    t "multiple declarators" `Quick (fun () ->
        let f = fn_body "int f(void){ int a = 1, *b, c[3]; return a; }" in
        match f.Cast.fbody.snode with
        | Cast.Sblock ({ snode = Cast.Sdecl ds; _ } :: _) ->
            Alcotest.(check int) "three declarators" 3 (List.length ds);
            let types = List.map (fun (d : Cast.decl) -> d.dtyp) ds in
            (match types with
            | [ Ctyp.Int _; Ctyp.Ptr (Ctyp.Int _); Ctyp.Array (Ctyp.Int _, Some 3) ] -> ()
            | _ -> Alcotest.fail "bad declarator types")
        | _ -> Alcotest.fail "bad decl shape");
    (* top level *)
    t "typedef then use" `Quick (fun () ->
        let u = tu "typedef int myint; myint g; myint f(myint x) { return x; }" in
        Alcotest.(check int) "globals" 3 (List.length u.Cast.tu_globals));
    t "struct definition and fields" `Quick (fun () ->
        let u = tu "struct point { int x; int y; struct point *next; };" in
        match u.Cast.tu_globals with
        | [ Cast.Gcomposite { cname = "point"; cfields; _ } ] ->
            Alcotest.(check int) "fields" 3 (List.length cfields)
        | _ -> Alcotest.fail "expected struct def");
    t "enum constants fold in case labels" `Quick (fun () ->
        let u = tu "enum mode { A, B = 10, C }; int f(int x){ switch(x){ case C: return 1; default: return 0; } }" in
        match u.Cast.tu_globals with
        | [ Cast.Genum { eitems; _ }; Cast.Gfun f ] ->
            Alcotest.(check bool) "C = 11" true (List.assoc "C" eitems = 11L);
            (match f.Cast.fbody.snode with
            | Cast.Sblock [ { snode = Cast.Sswitch (_, { case_guard = Some 11L; _ } :: _); _ } ] -> ()
            | _ -> Alcotest.fail "case C should be 11")
        | _ -> Alcotest.fail "expected enum + function");
    t "function prototype" `Quick (fun () ->
        let u = tu "int foo(int, char *);" in
        match u.Cast.tu_globals with
        | [ Cast.Gproto { pname = "foo"; ptyp = Ctyp.Func (_, [ _; _ ], false) } ] -> ()
        | _ -> Alcotest.fail "expected prototype");
    t "variadic function" `Quick (fun () ->
        let u = tu "int printf(char *fmt, ...);" in
        match u.Cast.tu_globals with
        | [ Cast.Gproto { ptyp = Ctyp.Func (_, _, true); _ } ] -> ()
        | _ -> Alcotest.fail "expected variadic prototype");
    t "function pointer declarator" `Quick (fun () ->
        let u = tu "int dispatch(int (*cb)(int), int x) { return cb(x); }" in
        match u.Cast.tu_globals with
        | [ Cast.Gfun f ] -> (
            match f.Cast.fparams with
            | [ (_, Ctyp.Ptr (Ctyp.Func _)); _ ] -> ()
            | _ -> Alcotest.fail "expected function-pointer param")
        | _ -> Alcotest.fail "expected function");
    t "static marks function" `Quick (fun () ->
        match (tu "static int f(void) { return 0; }").Cast.tu_globals with
        | [ Cast.Gfun { fstatic = true; _ } ] -> ()
        | _ -> Alcotest.fail "expected static function");
    t "global initializer list" `Quick (fun () ->
        match (tu "int tbl[3] = {1, 2, 3};").Cast.tu_globals with
        | [ Cast.Gvar { gdecl = { dinit = Some { enode = Cast.Einit_list l; _ }; _ }; _ } ] ->
            Alcotest.(check int) "items" 3 (List.length l)
        | _ -> Alcotest.fail "expected init list");
    t "parse error recovers with a skipped stub" `Quick (fun () ->
        (match tu "int f(void) { return ; }" with
        | exception Cparse.Parse_error _ -> Alcotest.fail "return; is legal"
        | _ -> ());
        (* error recovery: the broken definition becomes a Gskipped stub
           carrying the error (with its location baked into the message)
           instead of aborting the unit *)
        match (tu "int f(void) { +++; }").Cast.tu_globals with
        | [ Cast.Gskipped sk ] ->
            Alcotest.(check bool) "names f" true (sk.Cast.sk_name = Some "f");
            Alcotest.(check bool) "message nonempty" true
              (String.length sk.Cast.sk_msg > 0);
            Alcotest.(check bool) "range starts at line 1" true
              (sk.Cast.sk_from.Srcloc.line = 1)
        | gs -> Alcotest.failf "expected one skipped stub, got %d globals"
                  (List.length gs));
    t "systems-C construct sweep" `Quick (fun () ->
        List.iter
          (fun src ->
            match tu src with
            | _ -> ()
            | exception e ->
                Alcotest.fail (src ^ " failed: " ^ Printexc.to_string e))
          [
            "int f(void) { int *a[3]; return 0; }";
            "int f(void) { const char *s = \"x\"; return *s; }";
            "int f(int a, int b, int c) { return a ? b : c ? 1 : 2; }";
            "int f(void) { struct pt { int x; } p; p.x = 1; return p.x; }";
            "int f(void) { static int counter; counter++; return counter; }";
            "int f(int n) { for (int i = 0, j = 1; i < n; i++, j++) { n = j; } return n; }";
            "int f(int x) { return sizeof x; }";
            "unsigned long f(unsigned long x) { return x << 2; }";
            "int f(void) { int x = (1, 2); return x; }";
            "void (*handler)(int);";
            "int f(int **argv) { return argv[0][1]; }";
            "int f(void) { char c = 'a'; switch (c) { case 'a': return 1; } return 0; }";
            "typedef struct node { struct node *next; } node_t; int f(node_t *n) { return n->next == 0; }";
            "int f(int x) { do ; while (x--); return x; }";
            "long long big(void) { return 1; }";
          ]);
    QCheck_alcotest.to_alcotest roundtrip;
    QCheck_alcotest.to_alcotest const_eval_matches;
  ]
