(* AST structural operations: equality, keys, substitution, execution
   order, base lvalues. *)

let e s = Cparse.expr_of_string ~file:"<t>" s
let t = Alcotest.test_case

let exec_strings s =
  List.map Cprint.expr_to_string (Cast.exec_order (e s))

let suite =
  [
    t "equal ignores ids and locations" `Quick (fun () ->
        Alcotest.(check bool) "eq" true (Cast.equal_expr (e "a + b*2") (e "a+b*2"));
        Alcotest.(check bool) "neq" false (Cast.equal_expr (e "a + b") (e "a - b")));
    t "key discriminates" `Quick (fun () ->
        Alcotest.(check bool)
          "same" true
          (String.equal (Cast.key_of_expr (e "p->f[i]")) (Cast.key_of_expr (e "p->f[i]")));
        Alcotest.(check bool)
          "diff" false
          (String.equal (Cast.key_of_expr (e "p->f")) (Cast.key_of_expr (e "p->g"))));
    t "key separates call from ident" `Quick (fun () ->
        Alcotest.(check bool)
          "f vs f()" false
          (String.equal (Cast.key_of_expr (e "f")) (Cast.key_of_expr (e "f()"))));
    t "contains subtree" `Quick (fun () ->
        Alcotest.(check bool) "yes" true (Cast.contains_expr ~needle:(e "p") (e "*p + 1"));
        Alcotest.(check bool) "no" false (Cast.contains_expr ~needle:(e "q") (e "*p + 1")));
    t "subst replaces all occurrences" `Quick (fun () ->
        let out = Cast.subst_expr ~needle:(e "x") ~replacement:(e "y") (e "x + f(x)") in
        Alcotest.(check string) "subst" "y + f(y)" (Cprint.expr_to_string out));
    t "subst of compound needle" `Quick (fun () ->
        let out =
          Cast.subst_expr ~needle:(e "p->next") ~replacement:(e "q") (e "p->next->prev")
        in
        Alcotest.(check string) "subst" "q->prev" (Cprint.expr_to_string out));
    t "exec order: RHS before LHS before assignment" `Quick (fun () ->
        let order = exec_strings "x = y" in
        Alcotest.(check (list string)) "order" [ "y"; "x"; "x = y" ] order);
    t "exec order: args before call" `Quick (fun () ->
        let order = exec_strings "f(g(a), b)" in
        (* f, a, g(a), b, call *)
        Alcotest.(check (list string))
          "order"
          [ "f"; "g"; "a"; "g(a)"; "b"; "f(g(a), b)" ]
          order);
    t "exec order ends at root" `Quick (fun () ->
        let order = Cast.exec_order (e "a + b * c") in
        match List.rev order with
        | root :: _ -> Alcotest.(check bool) "root last" true (Cast.equal_expr root (e "a + b * c"))
        | [] -> Alcotest.fail "empty");
    t "base lvalue shapes" `Quick (fun () ->
        let base s =
          match Cast.base_lvalue (e s) with
          | Some { Cast.enode = Cast.Eident x; _ } -> x
          | _ -> "<none>"
        in
        Alcotest.(check string) "x" "x" (base "x");
        Alcotest.(check string) "x.f" "x" (base "x.f");
        Alcotest.(check string) "x->f" "x" (base "x->f");
        Alcotest.(check string) "*x" "x" (base "*x");
        Alcotest.(check string) "x[i]" "x" (base "x[i]");
        Alcotest.(check string) "call" "<none>" (base "f(x)"));
    t "idents_of_expr" `Quick (fun () ->
        Alcotest.(check (list string))
          "idents" [ "a"; "i"; "f"; "b" ]
          (Cast.idents_of_expr (e "a[i] + f(b)")));
    t "fresh ids are distinct" `Quick (fun () ->
        let a = Cast.ident "x" and b = Cast.ident "x" in
        Alcotest.(check bool) "distinct" true (a.Cast.eid <> b.Cast.eid));
    (* qcheck: substitution identity and idempotence-ish properties *)
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"subst with self is identity" ~count:200
         QCheck2.Gen.(
           oneofl
             [ "a + b"; "f(x, y)"; "*p + q[i]"; "a ? b : c"; "x = y + 1"; "p->f.g" ])
         (fun src ->
           let ex = e src in
           let out = Cast.subst_expr ~needle:(e "zz") ~replacement:(e "ww") ex in
           Cast.equal_expr ex out));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"key equality coincides with equal_expr" ~count:200
         QCheck2.Gen.(
           pair
             (oneofl [ "a"; "a + b"; "f(a)"; "*p"; "p->f"; "a[1]"; "a = b" ])
             (oneofl [ "a"; "a + b"; "f(a)"; "*p"; "p->f"; "a[1]"; "a = b" ]))
         (fun (s1, s2) ->
           let e1 = e s1 and e2 = e s2 in
           Bool.equal (Cast.equal_expr e1 e2)
             (String.equal (Cast.key_of_expr e1) (Cast.key_of_expr e2))));
    (* regression: string/char literal contents must not leak key syntax.
       Unescaped, the one-argument call f("x\",s\"y") rendered the same
       key as the two-argument f("x","y"). *)
    t "literal contents cannot forge key structure" `Quick (fun () ->
        let one = e {|f("x\",s\"y")|} and two = e {|f("x", "y")|} in
        Alcotest.(check bool)
          "escaped args" false
          (String.equal (Cast.key_of_expr one) (Cast.key_of_expr two));
        Alcotest.(check bool)
          "char comma vs string comma" false
          (String.equal (Cast.key_of_expr (e "','")) (Cast.key_of_expr (e {|","|})));
        Alcotest.(check bool)
          "char vs its code" false
          (String.equal (Cast.key_of_expr (e "'a'")) (Cast.key_of_expr (e "97")));
        Alcotest.(check bool)
          "same literal same key" true
          (String.equal
             (Cast.key_of_expr (e {|f("x\",s\"y")|}))
             (Cast.key_of_expr (e {|f("x\",s\"y")|}))));
    t "compare_expr agrees with key order" `Quick (fun () ->
        let pool =
          [ "a"; "a + b"; "f(a)"; "'a'"; {|"a"|}; {|f("x\",s\"y")|};
            {|f("x", "y")|}; "*p"; "p->f"; "a[1]"; "a = b"; "97" ]
        in
        List.iter
          (fun s1 ->
            List.iter
              (fun s2 ->
                let e1 = e s1 and e2 = e s2 in
                let c = Cast.compare_expr e1 e2 in
                let k = String.equal (Cast.key_of_expr e1) (Cast.key_of_expr e2) in
                Alcotest.(check bool)
                  (Printf.sprintf "zero iff equal keys: %s / %s" s1 s2)
                  k (c = 0);
                Alcotest.(check bool)
                  (Printf.sprintf "antisymmetric: %s / %s" s1 s2)
                  true
                  (compare (Cast.compare_expr e2 e1) 0 = compare 0 c))
              pool)
          pool);
  ]
