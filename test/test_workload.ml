(* Workload generators: determinism, parseability, ground-truth detection. *)

let t = Alcotest.test_case

let all_checkers () = List.map (fun e -> e.Registry.e_make ()) (Registry.all ())

let detect (g : Gen.t) =
  let tu = Cparse.parse_tunit ~file:"gen.c" g.Gen.source in
  let sg = Supergraph.build [ tu ] in
  let result = Engine.run sg (all_checkers ()) in
  let found (p : Gen.planted) =
    List.exists
      (fun (r : Report.t) -> String.equal r.Report.func p.Gen.in_function)
      result.Engine.reports
  in
  (List.length (List.filter found g.Gen.planted), List.length g.Gen.planted, result)

let suite =
  [
    t "generation is deterministic per seed" `Quick (fun () ->
        let a = Gen.generate ~seed:11 ~n_funcs:10 ~bug_rate:0.5 in
        let b = Gen.generate ~seed:11 ~n_funcs:10 ~bug_rate:0.5 in
        Alcotest.(check string) "same source" a.Gen.source b.Gen.source;
        let c = Gen.generate ~seed:12 ~n_funcs:10 ~bug_rate:0.5 in
        Alcotest.(check bool) "different seed differs" true
          (not (String.equal a.Gen.source c.Gen.source)));
    t "generated programs parse and round-trip" `Quick (fun () ->
        let g = Gen.generate ~seed:3 ~n_funcs:25 ~bug_rate:0.4 in
        let tu = Cparse.parse_tunit ~file:"gen.c" g.Gen.source in
        let printed = Cprint.tunit_to_string tu in
        let tu2 = Cparse.parse_tunit ~file:"gen2.c" printed in
        Alcotest.(check int) "same #globals" (List.length tu.Cast.tu_globals)
          (List.length tu2.Cast.tu_globals));
    t "zero bug rate yields no planted bugs and no reports" `Quick (fun () ->
        let g = Gen.generate ~seed:5 ~n_funcs:30 ~bug_rate:0.0 in
        Alcotest.(check int) "none planted" 0 (List.length g.Gen.planted);
        let _, _, result = detect g in
        Alcotest.(check int) "no false positives" 0
          (List.length result.Engine.reports));
    t "planted bugs are detected (several seeds)" `Quick (fun () ->
        List.iter
          (fun seed ->
            let g = Gen.generate ~seed ~n_funcs:20 ~bug_rate:0.5 in
            let found, planted, _ = detect g in
            Alcotest.(check bool)
              (Printf.sprintf "seed %d: %d/%d" seed found planted)
              true
              (float_of_int found >= 0.9 *. float_of_int planted))
          [ 1; 2; 3; 4; 5 ]);
    t "reports point at functions with planted bugs (low FP)" `Quick (fun () ->
        let g = Gen.generate ~seed:9 ~n_funcs:30 ~bug_rate:0.3 in
        let _, _, result = detect g in
        let buggy_fns =
          List.map (fun (p : Gen.planted) -> p.Gen.in_function) g.Gen.planted
        in
        let fps =
          List.filter
            (fun (r : Report.t) -> not (List.mem r.Report.func buggy_fns))
            result.Engine.reports
        in
        Alcotest.(check int) "no false positives" 0 (List.length fps));
    t "multi-file generation crosses files" `Quick (fun () ->
        let files = Gen.generate_files ~seed:2 ~n_files:3 ~funcs_per_file:8 ~bug_rate:0.4 in
        Alcotest.(check int) "3 files" 3 (List.length files);
        let tus =
          List.map (fun (name, g) -> Cparse.parse_tunit ~file:name g.Gen.source) files
        in
        let sg = Supergraph.build tus in
        let result = Engine.run sg (all_checkers ()) in
        let planted = List.concat_map (fun (_, g) -> g.Gen.planted) files in
        Alcotest.(check bool) "some bugs found" true
          (planted = [] || result.Engine.reports <> []));
    t "synthetic scaling programs parse" `Quick (fun () ->
        List.iter
          (fun src -> ignore (Cparse.parse_tunit ~file:"s.c" src))
          [
            Synth.diamond_chain ~n:6;
            Synth.many_tracked ~n:8;
            Synth.call_chain ~depth:5;
            Synth.call_tree ~depth:2 ~fanout:3;
            Synth.correlated_branches ~n:4;
            Synth.lock_workload ~n_funcs:5 ~bug_every:2;
          ]);
    t "correlated branches have zero true errors" `Quick (fun () ->
        let r =
          Engine.check_source ~file:"c.c"
            (Synth.correlated_branches ~n:5)
            [ Free_checker.checker () ]
        in
        Alcotest.(check int) "pruned to zero" 0 (List.length r.Engine.reports));
    t "scales to a 1000-function program in reasonable time" `Quick (fun () ->
        let g = Gen.generate ~seed:77 ~n_funcs:1000 ~bug_rate:0.25 in
        let t0 = Sys.time () in
        let found, planted, _ = detect g in
        let dt = Sys.time () -. t0 in
        Alcotest.(check bool)
          (Printf.sprintf "all found (%d/%d)" found planted)
          true (found = planted);
        Alcotest.(check bool)
          (Printf.sprintf "fast enough (%.2fs)" dt)
          true (dt < 30.0));
    t "linked corpus: cross-file interprocedural bugs detected" `Quick (fun () ->
        let files =
          Gen.generate_linked ~seed:8 ~n_files:3 ~funcs_per_file:6 ~bug_rate:0.5
        in
        let tus =
          List.map (fun (name, (g : Gen.t)) -> Cparse.parse_tunit ~file:name g.Gen.source)
            files
        in
        let sg = Supergraph.build tus in
        let result =
          Engine.run sg [ Free_checker.checker (); Lock_checker.checker () ]
        in
        let planted = List.concat_map (fun (_, (g : Gen.t)) -> g.Gen.planted) files in
        Alcotest.(check bool) "bugs planted" true (planted <> []);
        List.iter
          (fun (p : Gen.planted) ->
            Alcotest.(check bool)
              (p.Gen.in_function ^ " found")
              true
              (List.exists
                 (fun (r : Report.t) -> String.equal r.Report.func p.Gen.in_function)
                 result.Engine.reports))
          planted;
        (* no reports in clean functions (helpers never flagged) *)
        let buggy = List.map (fun (p : Gen.planted) -> p.Gen.in_function) planted in
        List.iter
          (fun (r : Report.t) ->
            Alcotest.(check bool)
              (r.Report.func ^ " expected buggy")
              true
              (List.mem r.Report.func buggy))
          result.Engine.reports);
    t "kill workload: zero FPs with kill, n without" `Quick (fun () ->
        let src = Synth.kill_workload ~n:6 in
        let run options =
          List.length
            (Engine.check_source ~options ~file:"k.c" src [ Free_checker.checker () ])
              .Engine.reports
        in
        Alcotest.(check int) "kill on" 0 (run Engine.default_options);
        Alcotest.(check int) "kill off" 6
          (run { Engine.default_options with Engine.auto_kill = false }));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"caching never changes the report set" ~count:25
         QCheck2.Gen.(int_range 1 5000)
         (fun seed ->
           (* loop-free generated programs: caching is a pure optimisation *)
           let g = Gen.generate ~seed ~n_funcs:6 ~bug_rate:0.5 in
           let run options =
             List.sort compare
               (List.map
                  (fun (r : Report.t) -> (r.Report.func, r.Report.message))
                  (Engine.check_source ~options ~file:"g.c" g.Gen.source
                     [ Free_checker.checker (); Lock_checker.checker () ])
                    .Engine.reports)
           in
           run Engine.default_options
           = run { Engine.default_options with Engine.caching = false }));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"pruning only ever removes reports" ~count:25
         QCheck2.Gen.(int_range 1 5000)
         (fun seed ->
           let g = Gen.generate ~seed ~n_funcs:6 ~bug_rate:0.5 in
           let run options =
             List.sort_uniq compare
               (List.map
                  (fun (r : Report.t) -> (r.Report.func, r.Report.message))
                  (Engine.check_source ~options ~file:"g.c" g.Gen.source
                     [ Free_checker.checker (); Lock_checker.checker () ])
                    .Engine.reports)
           in
           let pruned = run Engine.default_options in
           let unpruned = run { Engine.default_options with Engine.pruning = false } in
           List.for_all (fun r -> List.mem r unpruned) pruned));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"no option combination crashes the engine" ~count:40
         QCheck2.Gen.(tup2 (int_range 1 2000) (int_bound 31))
         (fun (seed, bits) ->
           let g = Gen.generate ~seed ~n_funcs:5 ~bug_rate:0.5 in
           let options =
             {
               Engine.default_options with
               Engine.caching = bits land 1 = 0;
               pruning = bits land 2 = 0;
               interproc = bits land 4 = 0;
               auto_kill = bits land 8 = 0;
               synonyms = bits land 16 = 0;
             }
           in
           let r =
             Engine.check_source ~options ~file:"g.c" g.Gen.source (all_checkers ())
           in
           List.length r.Engine.reports >= 0));
    t "bug kinds map to checkers" `Quick (fun () ->
        List.iter
          (fun k ->
            Alcotest.(check bool)
              (Gen.bug_kind_to_string k)
              true
              (Option.is_some (Registry.find (Gen.checker_of_kind k))))
          [
            Gen.Use_after_free; Gen.Double_free; Gen.Missing_unlock; Gen.Double_lock;
            Gen.Null_deref; Gen.User_pointer_deref; Gen.Interrupts_left_off;
          ]);
  ]
