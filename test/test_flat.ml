(* The flat supergraph tables ([Flat]) and the engine's flat events mode:
   flat block ids must round-trip to (function, block) pairs and replicate
   the boxed CFG views exactly, and flat mode is a pure execution
   strategy — reports are byte-identical to boxed mode at any job count,
   warm caches replay across the mode boundary (the flag is excluded from
   the options digest), and per-root fault containment rolls back flat
   state (first-visit annotation bits) exactly like boxed state. *)

let t = Alcotest.test_case

let temp_dir () =
  let f = Filename.temp_file "xgcc_test_flat" "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let free () = [ Free_checker.checker () ]
let report_lines (r : Engine.result) = List.map Report.to_string r.Engine.reports

let boxed_options = { Engine.default_options with flatten = false }

let sg_of src = Supergraph.build [ Cparse.parse_tunit ~file:"flat.c" src ]

let gen_sg ~seed =
  Supergraph.build
    (Gen.generate_files ~seed ~n_files:3 ~funcs_per_file:8 ~bug_rate:0.5
    |> List.map (fun (file, g) -> Cparse.parse_tunit ~file g.Gen.source))

(* A small program exercising every block shape the flat tables encode:
   branches (dedup'd equal arms come from the generator tests), a switch,
   returns, calls through names and pointers, decl initialisers. *)
let shapes_src =
  "int helper(int *p) { kfree(p); return 0; }\n\
   int f(int a, int *p) {\n\
  \  int x = a + 1;\n\
  \  if (a) { helper(p); } else { x = 2; }\n\
  \  switch (x) { case 1: a = 3; break; case 2: a = 4; break; default: a = 5; }\n\
  \  while (a) { a = a - 1; }\n\
  \  return *p + x;\n\
   }\n\
   int g(void (*fp)(int)) { fp(1); return 0; }\n"

let table_tests =
  [
    t "flat ids round-trip through unflatten" `Quick (fun () ->
        let sg = sg_of shapes_src in
        let flat = sg.Supergraph.flat in
        Hashtbl.iter
          (fun fname (cfg : Cfg.t) ->
            let base = Flat.fbase flat fname in
            Alcotest.(check bool)
              (fname ^ " known to flat table") true (base >= 0);
            Array.iteri
              (fun bid _ ->
                Alcotest.(check (pair string int))
                  (Printf.sprintf "unflatten %s#%d" fname bid)
                  (fname, bid)
                  (Flat.unflatten flat (base + bid)))
              cfg.Cfg.blocks)
          sg.Supergraph.cfgs;
        Alcotest.(check int) "unknown function has no base" (-1)
          (Flat.fbase flat "no_such_function"));
    t "flat successors replicate Cfg.successors" `Quick (fun () ->
        let sg = gen_sg ~seed:7 in
        let flat = sg.Supergraph.flat in
        Hashtbl.iter
          (fun fname (cfg : Cfg.t) ->
            let base = Flat.fbase flat fname in
            Array.iteri
              (fun bid _ ->
                let boxed =
                  List.map (fun s -> base + s) (Cfg.successors cfg bid)
                in
                Alcotest.(check (list int))
                  (Printf.sprintf "successors %s#%d" fname bid)
                  boxed
                  (Flat.successors flat (base + bid)))
              cfg.Cfg.blocks)
          sg.Supergraph.cfgs);
    t "flat head masks and calls replicate Block_heads" `Quick (fun () ->
        let sg = sg_of shapes_src in
        let flat = sg.Supergraph.flat in
        Hashtbl.iter
          (fun fname (cfg : Cfg.t) ->
            let base = Flat.fbase flat fname in
            let heads = Block_heads.of_cfg cfg in
            Array.iteri
              (fun bid (h : Block_heads.t) ->
                Alcotest.(check int)
                  (Printf.sprintf "mask %s#%d" fname bid)
                  h.Block_heads.mask
                  flat.Flat.head_mask.(base + bid);
                Alcotest.(check (list string))
                  (Printf.sprintf "calls %s#%d" fname bid)
                  h.Block_heads.calls
                  (Flat.calls flat (base + bid)))
              heads)
          sg.Supergraph.cfgs);
    t "entry/exit ids and table size are sane" `Quick (fun () ->
        let sg = sg_of shapes_src in
        let flat = sg.Supergraph.flat in
        (match (Supergraph.cfg_of sg "f", Flat.fidx flat "f") with
        | Some cfg, Some fi ->
            let base = Flat.fbase flat "f" in
            Alcotest.(check int) "entry" (base + cfg.Cfg.entry)
              flat.Flat.entry.(fi);
            Alcotest.(check int) "exit" (base + cfg.Cfg.exit_)
              flat.Flat.exit_.(fi)
        | _ -> Alcotest.fail "f missing from supergraph or flat table");
        Alcotest.(check bool) "table_bytes positive" true
          (Flat.table_bytes flat > 0));
  ]

let identity_tests =
  [
    t "flat and boxed reports byte-identical at -j1/-j2" `Quick (fun () ->
        let sg = gen_sg ~seed:11 in
        let flat_r = Engine.run sg (free ()) in
        List.iter
          (fun jobs ->
            let boxed_r =
              Engine.run ~options:boxed_options ~jobs sg (free ())
            in
            Alcotest.(check (list string))
              (Printf.sprintf "reports (boxed j=%d)" jobs)
              (report_lines flat_r) (report_lines boxed_r);
            Alcotest.(check (list (triple string int int)))
              (Printf.sprintf "counters (boxed j=%d)" jobs)
              flat_r.Engine.counters boxed_r.Engine.counters)
          [ 1; 2 ];
        let flat_j2 = Engine.run ~jobs:2 sg (free ()) in
        Alcotest.(check (list string))
          "flat -j2 = flat -j1" (report_lines flat_r) (report_lines flat_j2));
    t "warm cache replays across the flatten boundary" `Quick (fun () ->
        (* [flatten] is an execution strategy, not an analysis option: it
           is excluded from the options digest, so summaries written by a
           flat run must be replayed verbatim by a boxed run (and vice
           versa) instead of being orphaned. *)
        Alcotest.(check string)
          "digest ignores flatten"
          (Engine.options_digest Engine.default_options)
          (Engine.options_digest boxed_options);
        let sg = gen_sg ~seed:13 in
        let store_over dir =
          Summary_store.create ~dir
            ~ext_keys:
              (Summary_store.ext_keys_of
                 ~options_digest:(Engine.options_digest Engine.default_options)
                 ~sources:[ "free" ])
            ()
        in
        let dir = temp_dir () in
        let uncached = Engine.run sg (free ()) in
        let cold = Engine.run ~cache:(store_over dir) sg (free ()) in
        let warm_store = store_over dir in
        let warm =
          Engine.run ~options:boxed_options ~cache:warm_store sg (free ())
        in
        Alcotest.(check (list string))
          "cold flat = uncached" (report_lines uncached) (report_lines cold);
        Alcotest.(check (list string))
          "warm boxed = uncached" (report_lines uncached) (report_lines warm);
        let st = Summary_store.stats warm_store in
        Alcotest.(check int)
          "boxed warm run recomputes nothing" 0
          st.Summary_store.roots_recomputed;
        Alcotest.(check bool)
          "boxed warm run replays flat-written roots" true
          (st.Summary_store.roots_replayed > 0));
  ]

(* A root whose path count explodes, placed last so dropping it does not
   shift the healthy roots' output. *)
let explosion_src =
  "int f(int *p) { kfree(p); return *p; }\n\
   int h(int *r) { kfree(r); return *r; }\n"

let explode_fn =
  "int explode(int a, int b, int c, int d) {\n\
  \  int *p1; int *p2; int *p3; int *p4;\n\
  \  if (a) { kfree(p1); } if (b) { kfree(p2); }\n\
  \  if (c) { kfree(p3); } if (d) { kfree(p4); }\n\
  \  if (a) { b = 1; } if (b) { c = 1; } if (c) { d = 1; } if (d) { a = 1; }\n\
  \  return *p1 + *p2 + *p3 + *p4;\n\
   }\n"

let rollback_tests =
  [
    t "degraded root rolls back flat-mode state at -j1/-j2" `Quick (fun () ->
        (* flat mode tracks first-visit terminator annotations in a
           per-context bitset; rollback must clear the degraded root's
           bits (and annotations) so healthy roots' output is identical
           to a run that never had the bad root, in both modes *)
        let budgeted =
          { Engine.default_options with max_nodes_per_root = 40 }
        in
        let healthy = Engine.run (sg_of explosion_src) (free ()) in
        Alcotest.(check int) "baseline sanity" 0
          (List.length healthy.Engine.degraded);
        let faulty_sg = sg_of (explosion_src ^ explode_fn) in
        List.iter
          (fun (options, mode) ->
            List.iter
              (fun jobs ->
                let r = Engine.run ~options ~jobs faulty_sg (free ()) in
                Alcotest.(check (list string))
                  (Printf.sprintf "degraded root only (%s j=%d)" mode jobs)
                  [ "explode" ]
                  (List.map
                     (fun (d : Engine.degraded) -> d.Engine.d_root)
                     r.Engine.degraded);
                Alcotest.(check (list string))
                  (Printf.sprintf "healthy roots identical (%s j=%d)" mode
                     jobs)
                  (report_lines healthy) (report_lines r))
              [ 1; 2 ])
          [
            ({ budgeted with flatten = true }, "flat");
            ({ budgeted with flatten = false }, "boxed");
          ]);
  ]

let suite =
  table_tests @ identity_tests @ rollback_tests
