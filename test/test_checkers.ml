(* The built-in checkers on focused positive and negative snippets. *)

let t = Alcotest.test_case

let run checkers src = Engine.check_source ~file:"t.c" src checkers
let count checkers src = List.length (run checkers src).Engine.reports

let free () = [ Free_checker.checker () ]
let lock () = [ Lock_checker.checker () ]
let sec () = [ Security_checker.checker () ]
let intr () = [ Intr_checker.checker () ]

let suite =
  [
    t "free: custom deallocator list" `Quick (fun () ->
        let c = [ Free_checker.checker_for ~dealloc:[ "put_page" ] ] in
        Alcotest.(check int) "flagged" 1
          (count c "int f(int *p) { put_page(p); return *p; }");
        Alcotest.(check int) "kfree not tracked here" 0
          (count c "int f(int *p) { kfree(p); return *p; }"));
    t "free: struct field targets" `Quick (fun () ->
        let src =
          "struct box { int *data; };\n\
           int f(struct box *b) { kfree(b->data); return *b->data; }"
        in
        Alcotest.(check int) "field tracked" 1 (count (free ()) src));
    t "free: distinct fields are independent" `Quick (fun () ->
        let src =
          "struct box { int *a; int *b; };\n\
           int f(struct box *x) { kfree(x->a); return *x->b; }"
        in
        Alcotest.(check int) "no confusion" 0 (count (free ()) src));
    t "lock: correct pairing clean" `Quick (fun () ->
        let src =
          "struct lk { int h; };\n\
           int f(struct lk *l) { lock(l); unlock(l); return 0; }"
        in
        Alcotest.(check int) "clean" 0 (count (lock ()) src));
    t "lock: two locks tracked independently" `Quick (fun () ->
        let src =
          "struct lk { int h; };\n\
           int f(struct lk *a, struct lk *b) { lock(a); lock(b); unlock(b); return 0; }"
        in
        let r = run (lock ()) src in
        Alcotest.(check int) "one leak" 1 (List.length r.Engine.reports);
        match r.Engine.reports with
        | [ rep ] -> Alcotest.(check (option string)) "its a" (Some "a") rep.Report.var
        | _ -> ());
    t "lock: release on all paths required" `Quick (fun () ->
        let src = Synth.lock_workload ~n_funcs:6 ~bug_every:3 in
        Alcotest.(check int) "two leaks" 2 (count (lock ()) src));
    t "rlock: balanced recursion clean" `Quick (fun () ->
        let src =
          "struct lk { int h; };\n\
           int f(struct lk *l) { rlock(l); rlock(l); runlock(l); runlock(l); return 0; }"
        in
        Alcotest.(check int) "clean" 0
          (count [ Lock_checker.recursive_checker () ] src));
    t "rlock: unbalanced depth flagged" `Quick (fun () ->
        let src =
          "struct lk { int h; };\n\
           int f(struct lk *l) { rlock(l); rlock(l); runlock(l); return 0; }"
        in
        Alcotest.(check int) "flagged" 1
          (count [ Lock_checker.recursive_checker () ] src));
    t "security: validated pointer is clean" `Quick (fun () ->
        let src =
          "int f(int len) { char kb[8]; char *u = get_user_pointer(len); copy_from_user(kb, u, len); return kb[0]; }"
        in
        Alcotest.(check int) "clean" 0 (count (sec ()) src));
    t "security: raw deref flagged with SECURITY" `Quick (fun () ->
        let src = "int f(int len) { char *u = get_user_pointer(len); return *u; }" in
        let r = run (sec ()) src in
        match r.Engine.reports with
        | [ rep ] ->
            Alcotest.(check bool) "security annotation" true
              (List.mem "SECURITY" rep.Report.annotations);
            Alcotest.(check bool) "ranked as security" true
              (Rank.severity_of rep = Rank.Security)
        | _ -> Alcotest.fail "expected one report");
    t "security: explicit validation with branch" `Quick (fun () ->
        let src =
          "int f(int len) { char *u = get_user_pointer(len); if (validate_user_pointer(u)) { return *u; } return 0; }"
        in
        Alcotest.(check int) "clean" 0 (count (sec ()) src));
    t "intr: balanced cli/sti clean" `Quick (fun () ->
        Alcotest.(check int) "clean" 0
          (count (intr ()) "int f(void) { cli(); sti(); return 0; }"));
    t "intr: enable without disable" `Quick (fun () ->
        let r = run (intr ()) "int f(void) { sti(); return 0; }" in
        Alcotest.(check int) "flagged" 1 (List.length r.Engine.reports));
    t "pathkill: annotates and stops its own path" `Quick (fun () ->
        let r =
          run
            [ Pathkill.checker (); Intr_checker.checker () ]
            "int f(void) { cli(); panic(\"x\"); return 0; }"
        in
        (* the missing sti() is on a panic path: suppressed *)
        Alcotest.(check int) "suppressed" 0 (List.length r.Engine.reports));
    t "pathkill: custom killer list" `Quick (fun () ->
        let r =
          run
            [ Pathkill.checker_for ~killers:[ "my_die" ]; Free_checker.checker () ]
            "int f(int *p) { kfree(p); my_die(); return *p; }"
        in
        Alcotest.(check int) "suppressed" 0 (List.length r.Engine.reports));
    t "free_stat: conditional-freer identified and down-ranked" `Quick (fun () ->
        let src =
          "void rel(int *p) { kfree(p); }\n\
           void maybe(int *p, int m) { if (m) { kfree(p); } }\n\
           int u1(int n) { int *a = kmalloc(n); rel(a); return *a; }\n\
           int u2(int n) { int *b = kmalloc(n); rel(b); return 0; }\n\
           int u3(int n) { int *c = kmalloc(n); rel(c); return 0; }\n\
           int u4(int n) { int *d = kmalloc(n); maybe(d, 0); return *d; }\n\
           int u5(int n) { int *e2 = kmalloc(n); maybe(e2, 0); return *e2; }"
        in
        let tu = Cparse.parse_tunit ~file:"t.c" src in
        let sg = Supergraph.build [ tu ] in
        let frees = Free_stat.freeing_functions sg ~dealloc:[ "kfree" ] in
        Alcotest.(check bool) "rel frees" true (List.mem_assoc "rel" frees);
        Alcotest.(check bool) "maybe frees (flow-insensitive!)" true
          (List.mem_assoc "maybe" frees);
        let _result, ranking = Free_stat.run sg ~dealloc:[ "kfree" ] in
        let z rule = Option.value (List.assoc_opt rule ranking) ~default:nan in
        Alcotest.(check bool) "rel more reliable than maybe" true (z "rel" > z "maybe"));
    t "infer_pairs: finds the paired rule and its violation" `Quick (fun () ->
        let src =
          "int a1(int n) { acquire_thing(n); release_thing(n); return 0; }\n\
           int a2(int n) { acquire_thing(n); n++; release_thing(n); return 0; }\n\
           int a3(int n) { acquire_thing(n); return n; }"
        in
        let tu = Cparse.parse_tunit ~file:"t.c" src in
        let sg = Supergraph.build [ tu ] in
        let pairs = Infer_pairs.candidates sg () in
        Alcotest.(check bool) "pair found" true
          (List.mem ("acquire_thing", "release_thing") pairs);
        let result, _ = Infer_pairs.run sg ~pairs:[ ("acquire_thing", "release_thing") ] in
        let viol =
          List.filter
            (fun (r : Report.t) -> String.equal r.Report.func "a3")
            result.Engine.reports
        in
        Alcotest.(check int) "violation in a3" 1 (List.length viol);
        let e, c =
          match result.Engine.counters with
          | [ (_, e, c) ] -> (e, c)
          | _ -> Alcotest.fail "one rule expected"
        in
        Alcotest.(check int) "examples" 2 e;
        Alcotest.(check int) "counterexamples" 1 c);
    t "registry finds all names" `Quick (fun () ->
        List.iter
          (fun n ->
            Alcotest.(check bool) n true (Option.is_some (Registry.find n)))
          (Registry.names ()));
  ]
