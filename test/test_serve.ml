(* The analysis daemon: protocol decode, edit-storm coalescing,
   byte-identity of warm diagnostics against a cold batch run, restart
   recovery from the persisted store (including a store a crash left
   torn), concurrent batch runs against the same cache dir, and the
   stale-snapshot / per-request Diag plumbing the daemon relies on. *)

let t = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "xgcc_serve_test_%d_%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let a_src =
  "int use_after(int *p) { kfree(p); return *p; }\n\
   int fine(int *p) { kfree(p); return 0; }\n"

let b_src = "int other(int *q) { kfree(q); q = 0; return 0; }\n"

(* an edit that changes summaries and adds a report *)
let a_src_buggy = a_src ^ "int extra(int *r) { kfree(r); return *r; }\n"

(* an edit that changes bytes but no token *)
let a_src_comment = a_src ^ "/* reviewed */\n"

let mk_corpus () =
  let dir = fresh_dir () in
  let a = Filename.concat dir "a.c" and b = Filename.concat dir "b.c" in
  write_file a a_src;
  write_file b b_src;
  (dir, a, b)

let parse ~path ~source =
  match Cparse.parse_tunit ~file:path source with
  | tu -> Ok tu
  | exception Clex.Lex_error (loc, msg) ->
      Error (Printf.sprintf "%s: lexical error: %s" (Srcloc.to_string loc) msg)

let sources = [ "free" ]
let options = Engine.default_options

let mk_store ~dir ~persist =
  let ext_keys =
    Summary_store.ext_keys_of
      ~options_digest:(Engine.options_digest options)
      ~sources
  in
  Summary_store.create ~dir ~persist ~memory:true ~ext_keys ()

let mk_server ?store files =
  let cfg =
    {
      Server.c_files = files;
      c_parse = parse;
      c_exts = [ Free_checker.checker () ];
      c_options = options;
      c_jobs = 1;
      c_store = store;
      c_rank = "generic";
    }
  in
  match Server.create cfg with
  | Ok s -> s
  | Error msg -> Alcotest.fail msg

(* What a cold `xgcc check --format json` of the current on-disk tree
   prints — the byte-identity oracle. *)
let cold_check files =
  let tus =
    List.map (fun p -> Cparse.parse_tunit ~file:p (read_file p)) files
  in
  let sg = Supergraph.build tus in
  let result = Engine.run ~options sg [ Free_checker.checker () ] in
  Json_out.reports_to_string (Rank.generic_sort result.Engine.reports)

(* ------------------------------------------------------------------ *)
(* Reply plumbing                                                      *)
(* ------------------------------------------------------------------ *)

let field reply k =
  match reply with
  | Json_out.Obj fields -> (
      match List.assoc_opt k fields with
      | Some v -> v
      | None -> Alcotest.fail (Printf.sprintf "reply lacks field %S" k))
  | _ -> Alcotest.fail "reply is not an object"

let sfield reply k =
  match field reply k with
  | Json_out.Str s -> s
  | _ -> Alcotest.fail (Printf.sprintf "field %S is not a string" k)

let ifield reply k =
  match field reply k with
  | Json_out.Int i -> i
  | _ -> Alcotest.fail (Printf.sprintf "field %S is not an int" k)

let bfield reply k =
  match field reply k with
  | Json_out.Bool b -> b
  | _ -> Alcotest.fail (Printf.sprintf "field %S is not a bool" k)

let req server ~more_pending r =
  let reply, _quit = Server.handle_request server ~more_pending r in
  reply

let did_change ~path ~text = Proto.Did_change { path; text = Some text }

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let json_roundtrip () =
  let samples =
    [
      Json_out.Null;
      Json_out.Bool true;
      Json_out.Int (-42);
      Json_out.Str "line1\nline2\ttab \"quoted\" back\\slash";
      Json_out.Arr [ Json_out.Int 1; Json_out.Str "x"; Json_out.Null ];
      Json_out.Obj
        [ ("a", Json_out.Arr []); ("b", Json_out.Obj [ ("c", Json_out.Bool false) ]) ];
    ]
  in
  List.iter
    (fun v ->
      let s = Json_out.to_string v in
      Alcotest.(check string)
        ("roundtrip " ^ s) s
        (Json_out.to_string (Json_out.of_string s)))
    samples;
  (* whitespace and \u escapes *)
  (match Json_out.of_string " { \"k\" : [ 1 , 2.5 , \"\\u0041\" ] } " with
  | Json_out.Obj [ ("k", Json_out.Arr [ Json_out.Int 1; Json_out.Float f; Json_out.Str "A" ]) ]
    when Float.equal f 2.5 ->
      ()
  | _ -> Alcotest.fail "structured parse mismatch");
  List.iter
    (fun bad ->
      match Json_out.of_string bad with
      | exception Json_out.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" bad))
    [ ""; "{"; "[1,]"; "\"unterminated"; "{}x"; "{\"a\" 1}"; "nul" ]

let request_decode () =
  (match Proto.request_of_line "{\"cmd\":\"check\"}" with
  | Ok Proto.Check -> ()
  | _ -> Alcotest.fail "check");
  (match Proto.request_of_line "{\"cmd\":\"didChange\",\"path\":\"x.c\",\"text\":\"int f;\"}" with
  | Ok (Proto.Did_change { path = "x.c"; text = Some "int f;" }) -> ()
  | _ -> Alcotest.fail "didChange with text");
  (match Proto.request_of_line "{\"cmd\":\"didChange\",\"path\":\"x.c\"}" with
  | Ok (Proto.Did_change { path = "x.c"; text = None }) -> ()
  | _ -> Alcotest.fail "didChange without text");
  List.iter
    (fun line ->
      match Proto.request_of_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" line))
    [
      "not json"; "[1]"; "{\"cmd\":\"didChange\"}"; "{\"cmd\":\"nope\"}";
      "{\"path\":\"x.c\"}";
    ]

(* ------------------------------------------------------------------ *)
(* Daemon lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

let coalescing () =
  let _dir, a, b = mk_corpus () in
  let server = mk_server [ a; b ] in
  let r1 = req server ~more_pending:false Proto.Check in
  Alcotest.(check bool) "first check rechecks" true (bfield r1 "rechecked");
  (* edit storm: three rapid didChange lines, only the last drains *)
  let r2 = req server ~more_pending:true (did_change ~path:a ~text:a_src_buggy) in
  Alcotest.(check string) "queued" "queued" (sfield r2 "event");
  let r3 = req server ~more_pending:true (did_change ~path:a ~text:a_src) in
  Alcotest.(check string) "queued again" "queued" (sfield r3 "event");
  let r4 = req server ~more_pending:false (did_change ~path:a ~text:a_src_buggy) in
  Alcotest.(check string) "storm drains to diagnostics" "diagnostics" (sfield r4 "event");
  Alcotest.(check bool) "drain rechecks" true (bfield r4 "rechecked");
  let st = req server ~more_pending:false Proto.Stats in
  Alcotest.(check int) "edits seen" 3 (ifield st "edits");
  Alcotest.(check int) "two coalesced" 2 (ifield st "coalesced");
  Alcotest.(check int) "exactly two rechecks" 2 (ifield st "rechecks");
  (* an unchanged tree serves the cached result without re-running *)
  let r5 = req server ~more_pending:false Proto.Check in
  Alcotest.(check bool) "clean check is cached" false (bfield r5 "rechecked");
  Alcotest.(check string) "cached diagnostics identical"
    (sfield r4 "diagnostics") (sfield r5 "diagnostics")

let byte_identity_summary_edit () =
  let _dir, a, b = mk_corpus () in
  let server = mk_server [ a; b ] in
  let r1 = req server ~more_pending:false Proto.Check in
  Alcotest.(check string) "cold tree matches batch" (cold_check [ a; b ])
    (sfield r1 "diagnostics");
  (* summary-changing edit through the daemon; same edit on disk for the
     batch oracle *)
  let r2 = req server ~more_pending:false (did_change ~path:a ~text:a_src_buggy) in
  write_file a a_src_buggy;
  Alcotest.(check string) "edited tree matches batch" (cold_check [ a; b ])
    (sfield r2 "diagnostics");
  Alcotest.(check bool) "more reports after the edit" true
    (ifield r2 "reports" > ifield r1 "reports")

let byte_identity_comment_edit () =
  let dir, a, b = mk_corpus () in
  let store = mk_store ~dir:(Filename.concat dir "cache") ~persist:false in
  let server = mk_server ~store [ a; b ] in
  let r1 = req server ~more_pending:false Proto.Check in
  let r2 = req server ~more_pending:false (did_change ~path:a ~text:a_src_comment) in
  Alcotest.(check string) "comment edit: identical diagnostics"
    (sfield r1 "diagnostics") (sfield r2 "diagnostics");
  write_file a a_src_comment;
  Alcotest.(check string) "comment edit matches batch" (cold_check [ a; b ])
    (sfield r2 "diagnostics");
  (* the early-cutoff machinery must have replayed everything *)
  Alcotest.(check int) "no roots recomputed" 0 (ifield r2 "roots_recomputed");
  Alcotest.(check int) "no summaries recomputed" 0 (ifield r2 "fns_recomputed");
  Alcotest.(check bool) "all roots replayed" true (ifield r2 "roots_replayed" > 0)

let restart_recovery () =
  let dir, a, b = mk_corpus () in
  let cache = Filename.concat dir "cache" in
  (* first daemon persists its results, then "dies" mid-session with an
     overlay edit that never reached disk *)
  let s1 = mk_server ~store:(mk_store ~dir:cache ~persist:true) [ a; b ] in
  let r1 = req s1 ~more_pending:false Proto.Check in
  let _queued = req s1 ~more_pending:true (did_change ~path:a ~text:a_src_buggy) in
  (* a crash mid-recheck can also leave a torn entry: emulate the torn
     write surviving a rename-free store by truncating one entry file *)
  let sum_dir = Filename.concat cache "sum" in
  (match Sys.readdir sum_dir with
  | [||] -> Alcotest.fail "no persisted summary entries"
  | entries -> write_file (Filename.concat sum_dir entries.(0)) "XGFN1\ntorn");
  (* restart: overlay is gone (it lived in the dead process), disk tree
     is authoritative, persisted store warms the new daemon *)
  let s2 = mk_server ~store:(mk_store ~dir:cache ~persist:true) [ a; b ] in
  let r2 = req s2 ~more_pending:false Proto.Check in
  Alcotest.(check string) "restart serves the on-disk tree"
    (sfield r1 "diagnostics") (sfield r2 "diagnostics");
  Alcotest.(check string) "restart matches batch" (cold_check [ a; b ])
    (sfield r2 "diagnostics");
  (* everything except the torn entry's root replays from the store *)
  Alcotest.(check bool) "store warms the restart" true
    (ifield r2 "roots_replayed" > 0)

let concurrent_batch_check () =
  let dir, a, b = mk_corpus () in
  let cache = Filename.concat dir "cache" in
  let server = mk_server ~store:(mk_store ~dir:cache ~persist:true) [ a; b ] in
  let r1 = req server ~more_pending:false Proto.Check in
  (* a batch `xgcc check --cache-dir` against the same store directory,
     while the daemon stays up *)
  let batch_run () =
    let ext_keys =
      Summary_store.ext_keys_of
        ~options_digest:(Engine.options_digest options)
        ~sources
    in
    let store = Summary_store.create ~dir:cache ~ext_keys () in
    let tus = List.map (fun p -> Cparse.parse_tunit ~file:p (read_file p)) [ a; b ] in
    let sg = Supergraph.build tus in
    let result = Engine.run ~options ~cache:store sg [ Free_checker.checker () ] in
    let st = Summary_store.stats store in
    (Json_out.reports_to_string (Rank.generic_sort result.Engine.reports),
     st.Summary_store.roots_recomputed)
  in
  let batch_diag, batch_recomputed = batch_run () in
  Alcotest.(check string) "batch replays the daemon's entries"
    (sfield r1 "diagnostics") batch_diag;
  Alcotest.(check int) "batch recomputes nothing" 0 batch_recomputed;
  (* daemon keeps working after the concurrent reader *)
  let r2 = req server ~more_pending:false (did_change ~path:a ~text:a_src_buggy) in
  write_file a a_src_buggy;
  Alcotest.(check string) "daemon still byte-identical after batch run"
    (cold_check [ a; b ]) (sfield r2 "diagnostics");
  (* and the batch run sees the daemon's persisted post-edit entries *)
  let batch_diag2, batch_recomputed2 = batch_run () in
  Alcotest.(check string) "batch sees the edit" (sfield r2 "diagnostics") batch_diag2;
  Alcotest.(check int) "edit already persisted for the batch run" 0 batch_recomputed2

let disk_edit_revalidated () =
  let _dir, a, b = mk_corpus () in
  let server = mk_server [ a; b ] in
  let _r1 = req server ~more_pending:false Proto.Check in
  (* edit lands on disk behind the daemon's back: the pre-run revalidate
     must pick it up without any didChange *)
  write_file a a_src_buggy;
  let r2 = req server ~more_pending:false Proto.Check in
  Alcotest.(check bool) "disk edit forces a recheck" true (bfield r2 "rechecked");
  Alcotest.(check string) "disk edit matches batch" (cold_check [ a; b ])
    (sfield r2 "diagnostics")

let midrun_drift_detection () =
  let _dir, a, b = mk_corpus () in
  (* Watch-level: a file rewritten after the snapshot is reported by
     drifted (read-only) and its roots are the ones to degrade *)
  let w = match Watch.create [ a; b ] with Ok w -> w | Error m -> Alcotest.fail m in
  Alcotest.(check (list string)) "no drift initially" [] (Watch.drifted w);
  write_file a a_src_buggy;
  Alcotest.(check (list string)) "rewritten file drifts" [ a ] (Watch.drifted w);
  let tus = List.map (fun p -> Cparse.parse_tunit ~file:p (read_file p)) [ a; b ] in
  let sg = Supergraph.build tus in
  let stale = Watch.stale_roots sg [ a ] in
  Alcotest.(check bool) "a.c's roots are stale" true (List.mem "use_after" stale);
  Alcotest.(check bool) "b.c's root is not" false (List.mem "other" stale);
  let changed, missing = Watch.revalidate w in
  Alcotest.(check (list string)) "revalidate reloads the change" [ a ] changed;
  Alcotest.(check (list string)) "nothing missing" [] missing;
  Alcotest.(check (list string)) "drift settles after revalidate" [] (Watch.drifted w)

let per_request_diag_sink () =
  let _dir, a, b = mk_corpus () in
  let server = mk_server [ a; b ] in
  (* route the global sink into a leak detector for the duration *)
  let leaked = ref [] in
  let saved = !Diag.sink in
  Diag.sink := (fun s -> leaked := s :: !leaked);
  Fun.protect
    ~finally:(fun () -> Diag.sink := saved)
    (fun () ->
      (* a lexically broken overlay (unterminated comment): the file is
         skipped wholesale with a warning that must land in this
         request's reply, not in the global sink *)
      let broken = "int broken(void) { return 0; } /* unterminated" in
      let r =
        req server ~more_pending:false (did_change ~path:a ~text:broken)
      in
      let warnings =
        match field r "warnings" with
        | Json_out.Arr ws ->
            List.map (function Json_out.Str s -> s | _ -> "") ws
        | _ -> Alcotest.fail "warnings not an array"
      in
      Alcotest.(check bool) "skip warning in the reply" true
        (List.exists
           (fun w ->
             let contains hay needle =
               let n = String.length hay and m = String.length needle in
               let rec go i =
                 i + m <= n
                 && (String.equal (String.sub hay i m) needle || go (i + 1))
               in
               go 0
             in
             contains w "skipping entire file")
           warnings);
      Alcotest.(check (list string)) "nothing leaked to the global sink" []
        !leaked;
      (* the skipped file contributes nothing; b.c still analysed *)
      Alcotest.(check string) "degraded tree still matches batch-style output"
        (cold_check [ b ])
        (sfield r "diagnostics"))

let unknown_path_rejected () =
  let _dir, a, b = mk_corpus () in
  let server = mk_server [ a; b ] in
  let r =
    req server ~more_pending:false
      (did_change ~path:"/nonexistent/c.c" ~text:"int f;")
  in
  Alcotest.(check bool) "rejected" false (bfield r "ok");
  (* server still healthy *)
  let r2 = req server ~more_pending:false Proto.Check in
  Alcotest.(check bool) "still serving" true (bfield r2 "ok")

let with_sink_restores () =
  let captured = ref [] in
  (match
     Diag.with_sink
       (fun s -> captured := s :: !captured)
       (fun () ->
         Diag.warnf "inside";
         failwith "boom")
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  Alcotest.(check int) "captured inside" 1 (List.length !captured);
  let after = ref [] in
  let saved = !Diag.sink in
  Diag.sink := (fun s -> after := s :: !after);
  Fun.protect
    ~finally:(fun () -> Diag.sink := saved)
    (fun () -> Diag.warnf "outside");
  Alcotest.(check int) "sink restored after exception" 1 (List.length !after)

let suite =
  [
    t "json roundtrip and errors" `Quick json_roundtrip;
    t "request decode" `Quick request_decode;
    t "edit-storm coalescing" `Quick coalescing;
    t "byte identity: summary-changing edit" `Quick byte_identity_summary_edit;
    t "byte identity: comment-only edit replays" `Quick byte_identity_comment_edit;
    t "kill and restart recovers from persisted store" `Quick restart_recovery;
    t "concurrent batch check shares the cache dir" `Quick concurrent_batch_check;
    t "on-disk edit revalidated at check" `Quick disk_edit_revalidated;
    t "mid-run drift detection and stale roots" `Quick midrun_drift_detection;
    t "per-request diag sink" `Quick per_request_diag_sink;
    t "unknown didChange path rejected" `Quick unknown_path_rejected;
    t "with_sink restores on exception" `Quick with_sink_restores;
  ]
