(* A second hand-written corpus: a small VFS-flavoured subsystem that leans
   on the constructs the first corpus does not — recursion, gotos, switch
   dispatch, file-scope state crossing files, and deeper call chains.

   Bug inventory:
     V1  inode.c   inode_put       double free via recursive release chain
     V2  inode.c   walk_path       use-after-free after iput on the parent
     V3  super.c   sb_remount      goto-based cleanup skips the unlock
     V4  super.c   sb_ioctl        switch arm dereferences a user pointer
     V5  cache.c   cache_gc        leak: evicted entry never freed
   Non-bugs:
     W1  inode_get's recursion terminates and is clean
     W2  sb_sync uses goto cleanup correctly (unlock on all paths)
     W3  cache_lookup's switch covers all arms without state leaks *)

let inode_c =
  {|
struct inode {
   int ino;
   int refcount;
   struct inode *parent;
};

void inode_free(struct inode *n) {
   kfree(n);
}

void inode_put(struct inode *n, int both) {
   inode_free(n);
   if (both) {
      inode_free(n);          /* V1: double free through the chain */
   }
}

int inode_get(struct inode *n, int depth) {
   if (depth > 0) {
      return inode_get(n, depth - 1);   /* W1: clean recursion */
   }
   return n->ino;
}

int walk_path(struct inode *dir) {
   struct inode *parent = dir->parent;
   inode_put(parent, 0);
   return parent->ino;        /* V2: parent freed by inode_put */
}

void inode_release_all(struct inode *n, int force) {
   inode_put(n, force);       /* force unknown: both branches explored */
}
|}

let super_c =
  {|
struct lk { int held; };
struct superblock {
   int flags;
   int dirty;
};

static int sb_generation;

int sb_remount(struct lk *mu, struct superblock *sb, int flags) {
   int err;
   lock(mu);
   err = 0;
   if (flags < 0) {
      err = -22;
      goto out;               /* V3: 'out' skips the unlock */
   }
   sb->flags = flags;
   unlock(mu);
out:
   return err;
}

int sb_sync(struct lk *mu, struct superblock *sb) {
   int err;
   lock(mu);
   err = 0;
   if (sb->dirty) {
      sb->dirty = 0;
      sb_generation = sb_generation + 1;
   }
   goto done;                 /* W2: cleanup label releases the lock */
done:
   unlock(mu);
   return err;
}

int sb_ioctl(int cmd, int len) {
   char *ubuf = get_user_pointer(len);
   char kb[8];
   switch (cmd) {
   case 1:
      copy_from_user(kb, ubuf, len);
      return kb[0];
   case 2:
      return *ubuf;           /* V4: raw user pointer in the cmd=2 arm */
   default:
      return -25;
   }
}
|}

let cache_c =
  {|
struct entry {
   int key;
   int hot;
};

int cache_lookup(int key, int mode) {
   int hit;
   hit = 0;
   switch (mode) {
   case 0:
      hit = key;
      break;
   case 1:
      hit = key + 1;
      break;
   default:
      hit = -1;
      break;
   }
   return hit;                /* W3: clean switch */
}

int cache_gc(int n) {
   int *victim = kmalloc(n);
   if (!victim) { return 0; }
   *victim = n;
   if (n > 100) {
      return 1;               /* V5: victim leaked on eviction overflow */
   }
   kfree(victim);
   return 0;
}
|}

let files = [ ("inode.c", inode_c); ("super.c", super_c); ("cache.c", cache_c) ]

let supergraph () =
  Supergraph.build
    (List.map (fun (name, src) -> Cparse.parse_tunit ~file:name src) files)
