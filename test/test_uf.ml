(* Persistent union-find: the backbone of the congruence closure. *)

let t = Alcotest.test_case

let suite =
  [
    t "fresh classes are distinct" `Quick (fun () ->
        let u, a = Uf.fresh Uf.empty in
        let u, b = Uf.fresh u in
        Alcotest.(check bool) "distinct" false (Uf.equal u a b));
    t "union merges" `Quick (fun () ->
        let u, a = Uf.fresh Uf.empty in
        let u, b = Uf.fresh u in
        let u = Uf.union u a b in
        Alcotest.(check bool) "merged" true (Uf.equal u a b));
    t "union is transitive" `Quick (fun () ->
        let u, a = Uf.fresh Uf.empty in
        let u, b = Uf.fresh u in
        let u, c = Uf.fresh u in
        let u = Uf.union u a b in
        let u = Uf.union u b c in
        Alcotest.(check bool) "a~c" true (Uf.equal u a c));
    t "persistence: old version unaffected" `Quick (fun () ->
        let u, a = Uf.fresh Uf.empty in
        let u, b = Uf.fresh u in
        let u2 = Uf.union u a b in
        Alcotest.(check bool) "new merged" true (Uf.equal u2 a b);
        Alcotest.(check bool) "old separate" false (Uf.equal u a b));
    t "find is idempotent" `Quick (fun () ->
        let u, a = Uf.fresh Uf.empty in
        let u, b = Uf.fresh u in
        let u = Uf.union u a b in
        let r = Uf.find u a in
        Alcotest.(check int) "stable" r (Uf.find u r));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"random unions keep equivalence relation" ~count:200
         QCheck2.Gen.(list_size (int_bound 20) (pair (int_bound 9) (int_bound 9)))
         (fun pairs ->
           (* build 10 classes, apply unions, check symmetry/transitivity *)
           let u = ref Uf.empty in
           let ids = Array.init 10 (fun _ ->
               let u', x = Uf.fresh !u in
               u := u';
               x)
           in
           List.iter (fun (i, j) -> u := Uf.union !u ids.(i) ids.(j)) pairs;
           let ok = ref true in
           for i = 0 to 9 do
             for j = 0 to 9 do
               if Uf.equal !u ids.(i) ids.(j) <> Uf.equal !u ids.(j) ids.(i) then
                 ok := false;
               for k = 0 to 9 do
                 if
                   Uf.equal !u ids.(i) ids.(j)
                   && Uf.equal !u ids.(j) ids.(k)
                   && not (Uf.equal !u ids.(i) ids.(k))
                 then ok := false
               done
             done
           done;
           !ok));
  ]
