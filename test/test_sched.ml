(* The work-stealing parallel scheduler and the shared summary-unit
   store: Pool.run_sched semantics (priority order, stealing, spawn
   degradation), and the engine-level contract on the uneven-cost
   corpus — byte-identical reports at any -j, every shared unit
   computed exactly once (recompute counter pinned at 0), and the
   deterministic stats subset independent of the job count. *)

let t = Alcotest.test_case

exception Boom

let checkers () =
  [
    Free_checker.checker ();
    Lock_checker.checker ();
    Null_checker.checker ();
    Leak_checker.checker ();
  ]

(* 12 uneven roots (root6 is 50x the others) over a diamond callgraph
   (root -> mid_a/mid_b -> hub) with one hot shared leaf. *)
let sched_sg ?(heavy = 150) () =
  let src = Synth.sched_corpus ~n_roots:12 ~light:3 ~heavy in
  Supergraph.build [ Cparse.parse_tunit ~file:"sched.c" src ]

(* raw emission order, not ranked: the merge contract is byte-identity
   with the sequential run, which is stronger than rank-equality *)
let raw_lines (r : Engine.result) = List.map Report.to_string r.Engine.reports

(* every stats field, named; [timing] excludes the two fields the
   scheduler is allowed to vary between runs (steals, waits) *)
let stats_fields ~timing (st : Engine.stats) =
  [
    ("blocks_visited", st.Engine.blocks_visited);
    ("nodes_visited", st.Engine.nodes_visited);
    ("cache_hits", st.Engine.cache_hits);
    ("paths_explored", st.Engine.paths_explored);
    ("calls_followed", st.Engine.calls_followed);
    ("summary_hits", st.Engine.summary_hits);
    ("pruned_branches", st.Engine.pruned_branches);
    ("transitions_fired", st.Engine.transitions_fired);
    ("instances_created", st.Engine.instances_created);
    ("functions_traversed", st.Engine.functions_traversed);
    ("cache_probes", st.Engine.cache_probes);
    ("intern_atoms", st.Engine.intern_atoms);
    ("intern_tuples", st.Engine.intern_tuples);
    ("match_attempts", st.Engine.match_attempts);
    ("index_hits", st.Engine.index_hits);
    ("blocks_skipped", st.Engine.blocks_skipped);
    ("shared_published", st.Engine.shared_published);
    ("shared_replayed", st.Engine.shared_replayed);
    ("shared_recomputed", st.Engine.shared_recomputed);
  ]
  @
  if timing then
    [
      ("sched_steals", st.Engine.sched_steals);
      ("sched_waits", st.Engine.sched_waits);
    ]
  else []

let degraded_pairs (r : Engine.result) =
  List.map (fun (d : Engine.degraded) -> (d.Engine.d_root, d.Engine.d_reason)) r.Engine.degraded

(* capture Diag warnings for the duration of [f] *)
let with_diag_capture f =
  let lines = ref [] in
  let old = !Diag.sink in
  Diag.sink := (fun s -> lines := s :: !lines);
  Fun.protect ~finally:(fun () -> Diag.sink := old) (fun () ->
      let r = f () in
      (r, List.rev !lines))

let failing_spawn _ = failwith "simulated spawn failure"

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let suite =
  [
    (* ------------------------------------------------------------ *)
    (* Pool.run_sched primitive                                      *)
    (* ------------------------------------------------------------ *)
    t "run_sched returns results in index order" `Quick (fun () ->
        let results, _ = Pool.run_sched ~jobs:4 20 (fun ~worker:_ i -> i * i) in
        Array.iteri
          (fun i r ->
            match r with
            | Ok v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) v
            | Error e -> Alcotest.failf "slot %d raised %s" i (Printexc.to_string e))
          results;
        Alcotest.(check int) "all slots" 20 (Array.length results));
    t "run_sched runs every task exactly once under a permuted order" `Quick
      (fun () ->
        let n = 48 in
        (* reverse priority: last index first *)
        let order = Array.init n (fun k -> n - 1 - k) in
        let hits = Array.make n 0 in
        let results, _ =
          Pool.run_sched ~jobs:4 ~order n (fun ~worker:_ i ->
              hits.(i) <- hits.(i) + 1;
              i)
        in
        Alcotest.(check (array int)) "once each" (Array.make n 1) hits;
        Array.iteri
          (fun i r -> Alcotest.(check bool) "ok" true (r = Ok i))
          results);
    t "run_sched inline at jobs=1 respects the priority order" `Quick
      (fun () ->
        let trace = ref [] in
        let order = [| 3; 0; 2; 1 |] in
        let results, st =
          Pool.run_sched ~jobs:1 ~order 4 (fun ~worker i ->
              trace := i :: !trace;
              Alcotest.(check int) "inline worker id" 0 worker;
              i * 10)
        in
        Alcotest.(check (list int)) "executed in order" [ 3; 0; 2; 1 ]
          (List.rev !trace);
        Alcotest.(check int) "workers" 1 st.Pool.workers;
        Alcotest.(check int) "stolen" 0 st.Pool.stolen;
        Array.iteri
          (fun i r -> Alcotest.(check bool) "slot" true (r = Ok (i * 10)))
          results);
    t "run_sched isolates a crashing task to its own slot" `Quick (fun () ->
        let results, _ =
          Pool.run_sched ~jobs:4 16 (fun ~worker:_ i ->
              if i = 7 then raise Boom else i)
        in
        Array.iteri
          (fun i r ->
            if i = 7 then
              Alcotest.(check bool) "slot 7 errored" true (r = Error Boom)
            else Alcotest.(check bool) (Printf.sprintf "slot %d ok" i) true (r = Ok i))
          results);
    t "run_sched degrades when no worker domain can spawn" `Quick (fun () ->
        (* all spawns fail: the calling domain must drain its own deque
           (indices 0,4 under default striping at nw=4) and steal the
           other three deques' six tasks *)
        let (results, st), diags =
          with_diag_capture (fun () ->
              Pool.run_sched ~spawn:failing_spawn ~jobs:4 8 (fun ~worker i ->
                  Alcotest.(check int) "only worker 0 runs" 0 worker;
                  i))
        in
        Array.iteri
          (fun i r -> Alcotest.(check bool) "completed" true (r = Ok i))
          results;
        Alcotest.(check int) "workers" 1 st.Pool.workers;
        Alcotest.(check int) "spawn_failures" 3 st.Pool.spawn_failures;
        Alcotest.(check int) "orphaned deques drained by stealing" 6
          st.Pool.stolen;
        Alcotest.(check bool) "one spawn warning" true
          (List.exists (contains ~affix:"Domain.spawn failed") diags));
    t "Pool.run and run_results degrade on spawn failure too" `Quick
      (fun () ->
        let (r1, diags) =
          with_diag_capture (fun () ->
              Pool.run ~spawn:failing_spawn ~jobs:4 16 (fun i -> i + 1))
        in
        Alcotest.(check (array int)) "run results"
          (Array.init 16 (fun i -> i + 1))
          r1;
        Alcotest.(check bool) "warned" true (diags <> []);
        let (r2, _) =
          with_diag_capture (fun () ->
              Pool.run_results ~spawn:failing_spawn ~jobs:4 9 (fun i -> i * 3))
        in
        Array.iteri
          (fun i r -> Alcotest.(check bool) "ok" true (r = Ok (i * 3)))
          r2);
    (* ------------------------------------------------------------ *)
    (* Engine contract on the scheduler corpus                       *)
    (* ------------------------------------------------------------ *)
    t "sched corpus: reports byte-identical at -j1/2/4" `Quick (fun () ->
        let sg = sched_sg () in
        let seq = Engine.run ~jobs:1 sg (checkers ()) in
        Alcotest.(check bool) "corpus produces reports" true
          (List.length seq.Engine.reports > 0);
        List.iter
          (fun jobs ->
            let par = Engine.run ~jobs sg (checkers ()) in
            Alcotest.(check (list string))
              (Printf.sprintf "raw report lines, -j%d" jobs)
              (raw_lines seq) (raw_lines par);
            Alcotest.(check (list (triple string int int)))
              (Printf.sprintf "counters, -j%d" jobs)
              seq.Engine.counters par.Engine.counters)
          [ 2; 4 ]);
    t "sched corpus: shared units are computed exactly once" `Quick (fun () ->
        let sg = sched_sg () in
        let seq = Engine.run ~jobs:1 sg (checkers ()) in
        Alcotest.(check int) "sequential publishes nothing" 0
          seq.Engine.stats.Engine.shared_published;
        Alcotest.(check int) "sequential replays nothing" 0
          seq.Engine.stats.Engine.shared_replayed;
        let par = Engine.run ~jobs:4 sg (checkers ()) in
        let st = par.Engine.stats in
        Alcotest.(check bool) "units were shared" true
          (st.Engine.shared_published > 0);
        Alcotest.(check bool) "every publication replayed at least once" true
          (st.Engine.shared_replayed >= st.Engine.shared_published);
        (* the acceptance tripwire: nothing analysed twice, at any -j *)
        Alcotest.(check int) "recompute counter (-j4)" 0
          st.Engine.shared_recomputed;
        let par2 = Engine.run ~jobs:2 sg (checkers ()) in
        Alcotest.(check int) "recompute counter (-j2)" 0
          par2.Engine.stats.Engine.shared_recomputed);
    t "sched corpus: deterministic stats subset matches -j1" `Quick (fun () ->
        let sg = sched_sg () in
        let seq = Engine.run ~jobs:1 sg (checkers ()) in
        let par = Engine.run ~jobs:4 sg (checkers ()) in
        (* reports, counters, coverage and degradation are scheduling-
           independent AND mode-independent: -jN must agree with -j1 *)
        List.iter
          (fun field ->
            Alcotest.(check int)
              (field ^ " (-j1 vs -j4)")
              (List.assoc field (stats_fields ~timing:false seq.Engine.stats))
              (List.assoc field (stats_fields ~timing:false par.Engine.stats)))
          [ "functions_traversed"; "transitions_fired"; "instances_created" ];
        Alcotest.(check (list (pair string string)))
          "degraded" (degraded_pairs seq) (degraded_pairs par));
    t "sched corpus: -j2 and -j4 stats identical except steals/waits" `Quick
      (fun () ->
        let sg = sched_sg () in
        let a = Engine.run ~jobs:2 sg (checkers ()) in
        let b = Engine.run ~jobs:4 sg (checkers ()) in
        List.iter2
          (fun (na, va) (nb, vb) ->
            Alcotest.(check string) "field order" na nb;
            Alcotest.(check int) na va vb)
          (stats_fields ~timing:false a.Engine.stats)
          (stats_fields ~timing:false b.Engine.stats));
    t "sched corpus: budget-degraded heavy root stays byte-identical" `Quick
      (fun () ->
        (* root6 carries 400 diamonds against a 600-node budget; every
           light root (3 diamonds) fits comfortably. Unit sharing stays
           ON under node budgets: a replayed unit is charged to the
           demanding root's fuel exactly as a private traversal would
           have been, so reports, degradations and the recompute
           tripwire all hold with the shared store active. *)
        let sg = sched_sg ~heavy:400 () in
        let options =
          { Engine.default_options with Engine.max_nodes_per_root = 600 }
        in
        let seq = Engine.run ~options ~jobs:1 sg (checkers ()) in
        (* one degradation per extension run, always the heavy root *)
        Alcotest.(check (list string))
          "root6 degrades once per checker, nothing else does"
          [ "root6"; "root6"; "root6"; "root6" ]
          (List.map fst (degraded_pairs seq));
        List.iter
          (fun jobs ->
            let par = Engine.run ~options ~jobs sg (checkers ()) in
            Alcotest.(check (list string))
              (Printf.sprintf "raw report lines, -j%d" jobs)
              (raw_lines seq) (raw_lines par);
            Alcotest.(check (list (pair string string)))
              (Printf.sprintf "degraded, -j%d" jobs)
              (degraded_pairs seq) (degraded_pairs par);
            Alcotest.(check bool)
              (Printf.sprintf "sharing stays on under budgets, -j%d" jobs)
              true
              (par.Engine.stats.Engine.shared_published > 0);
            Alcotest.(check int)
              (Printf.sprintf "no shared unit recomputed under budgets, -j%d"
                 jobs)
              0 par.Engine.stats.Engine.shared_recomputed)
          [ 2; 4 ]);
    t "sched corpus: budgets at -j2 and -j4 agree with the shared store"
      `Quick (fun () ->
        (* scheduling-independence of the budget accounting itself: the
           charged fuel of every root is a deterministic function of the
           program, so two different worker counts agree byte-for-byte
           on reports, degradations and the deterministic stats subset *)
        let sg = sched_sg ~heavy:400 () in
        let options =
          { Engine.default_options with Engine.max_nodes_per_root = 600 }
        in
        let a = Engine.run ~options ~jobs:2 sg (checkers ()) in
        let b = Engine.run ~options ~jobs:4 sg (checkers ()) in
        Alcotest.(check (list string)) "raw report lines" (raw_lines a)
          (raw_lines b);
        Alcotest.(check (list (pair string string)))
          "degraded" (degraded_pairs a) (degraded_pairs b);
        List.iter2
          (fun (na, va) (nb, vb) ->
            Alcotest.(check string) "field order" na nb;
            Alcotest.(check int) na va vb)
          (stats_fields ~timing:false a.Engine.stats)
          (stats_fields ~timing:false b.Engine.stats);
        (* a generous budget must not change anything at all vs no budget *)
        let generous =
          Engine.run
            ~options:
              { Engine.default_options with Engine.max_nodes_per_root = 1_000_000 }
            ~jobs:4 sg (checkers ())
        in
        let free = Engine.run ~jobs:4 sg (checkers ()) in
        Alcotest.(check (list string))
          "generous budget = unbudgeted, raw lines" (raw_lines free)
          (raw_lines generous);
        Alcotest.(check (list (pair string string)))
          "generous budget = unbudgeted, degraded" (degraded_pairs free)
          (degraded_pairs generous));
  ]
