(* CFG construction: lowering shapes, short-circuit conditions, loop havoc,
   switch arms, goto, successors, callgraph roots. *)

let t = Alcotest.test_case

let cfg_of src =
  match (Cparse.parse_tunit ~file:"<t>" src).Cast.tu_globals with
  | Cast.Gfun f :: _ -> Cfg.of_fundef f
  | _ -> Alcotest.fail "expected function"

let branch_conditions cfg =
  List.filter_map
    (fun (b : Block.t) ->
      match b.term with
      | Block.Branch (c, _, _) -> Some (Cprint.expr_to_string c)
      | _ -> None)
    (Array.to_list cfg.Cfg.blocks)

let suite =
  [
    t "straight line is one block plus exit" `Quick (fun () ->
        let cfg = cfg_of "int f(int x) { x = x + 1; return x; }" in
        Alcotest.(check int) "blocks" 2 (Cfg.n_blocks cfg));
    t "if produces branch and join" `Quick (fun () ->
        let cfg = cfg_of "int f(int x) { if (x) x = 1; return x; }" in
        let branches = branch_conditions cfg in
        Alcotest.(check (list string)) "conds" [ "x" ] branches);
    t "short-circuit && lowers to two branches" `Quick (fun () ->
        let cfg = cfg_of "int f(int a, int b) { if (a && b) return 1; return 0; }" in
        Alcotest.(check (list string)) "conds" [ "a"; "b" ] (branch_conditions cfg));
    t "short-circuit || lowers to two branches" `Quick (fun () ->
        let cfg = cfg_of "int f(int a, int b) { if (a || b) return 1; return 0; }" in
        Alcotest.(check (list string)) "conds" [ "a"; "b" ] (branch_conditions cfg));
    t "negation swaps targets, keeps atom" `Quick (fun () ->
        let cfg = cfg_of "int f(int a) { if (!a) return 1; return 0; }" in
        Alcotest.(check (list string)) "conds" [ "a" ] (branch_conditions cfg));
    t "nested mixed condition" `Quick (fun () ->
        let cfg =
          cfg_of "int f(int a, int b, int c) { if (a && (b || !c)) return 1; return 0; }"
        in
        Alcotest.(check (list string)) "conds" [ "a"; "b"; "c" ] (branch_conditions cfg));
    t "while loop headers carry havoc" `Quick (fun () ->
        let cfg =
          cfg_of "int f(int n) { int i = 0; while (i < n) { i = i + 1; } return i; }"
        in
        let havocs =
          List.concat_map (fun (b : Block.t) -> b.havoc) (Array.to_list cfg.Cfg.blocks)
        in
        Alcotest.(check bool) "i havoced" true (List.mem "i" havocs));
    t "for loop step variable havoced" `Quick (fun () ->
        let cfg = cfg_of "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }" in
        let havocs =
          List.concat_map (fun (b : Block.t) -> b.havoc) (Array.to_list cfg.Cfg.blocks)
        in
        Alcotest.(check bool) "i havoced" true (List.mem "i" havocs);
        Alcotest.(check bool) "s havoced" true (List.mem "s" havocs));
    t "do-while body precedes condition" `Quick (fun () ->
        let cfg = cfg_of "int f(int x) { do { x--; } while (x > 0); return x; }" in
        Alcotest.(check bool) "has branch" true (branch_conditions cfg <> []));
    t "switch arms and default" `Quick (fun () ->
        let cfg =
          cfg_of
            "int f(int x) { switch (x) { case 1: return 1; case 2: return 2; default: return 3; } }"
        in
        let arms =
          List.find_map
            (fun (b : Block.t) ->
              match b.term with Block.Switch (_, arms) -> Some arms | _ -> None)
            (Array.to_list cfg.Cfg.blocks)
        in
        match arms with
        | Some arms -> Alcotest.(check int) "arms" 3 (List.length arms)
        | None -> Alcotest.fail "no switch terminator");
    t "switch without default gets implicit one" `Quick (fun () ->
        let cfg = cfg_of "int f(int x) { switch (x) { case 1: return 1; } return 0; }" in
        let arms =
          List.find_map
            (fun (b : Block.t) ->
              match b.term with Block.Switch (_, arms) -> Some arms | _ -> None)
            (Array.to_list cfg.Cfg.blocks)
        in
        match arms with
        | Some arms ->
            Alcotest.(check bool) "has default" true
              (List.exists (fun (g, _) -> g = None) arms)
        | None -> Alcotest.fail "no switch terminator");
    t "goto wires to label block" `Quick (fun () ->
        let cfg = cfg_of "int f(int x) { if (x) goto out; x = 1; out: return x; }" in
        (* every block reachable from entry should terminate *)
        let reachable = Hashtbl.create 8 in
        let rec visit bid =
          if not (Hashtbl.mem reachable bid) then begin
            Hashtbl.replace reachable bid ();
            List.iter visit (Cfg.successors cfg bid)
          end
        in
        visit cfg.Cfg.entry;
        Alcotest.(check bool) "exit reachable" true (Hashtbl.mem reachable cfg.Cfg.exit_));
    t "return flows to exit node" `Quick (fun () ->
        let cfg = cfg_of "int f(void) { return 1; }" in
        Alcotest.(check (list int)) "succ" [ cfg.Cfg.exit_ ]
          (Cfg.successors cfg cfg.Cfg.entry));
    t "exit node lists locals for scope end" `Quick (fun () ->
        let cfg = cfg_of "int f(int p) { int a; int b; return p; }" in
        let exit_b = Cfg.block cfg cfg.Cfg.exit_ in
        match exit_b.Block.elems with
        | [ Block.End_of_scope vars ] ->
            Alcotest.(check (list string)) "locals only" [ "a"; "b" ] vars
        | _ -> Alcotest.fail "expected End_of_scope");
    t "break and continue" `Quick (fun () ->
        let cfg =
          cfg_of
            "int f(int n) { int i = 0; while (1) { i++; if (i > n) break; if (i == 2) continue; } return i; }"
        in
        Alcotest.(check bool) "built" true (Cfg.n_blocks cfg > 4));
    (* callgraph *)
    t "callgraph roots and callees" `Quick (fun () ->
        let tus =
          [ Cparse.parse_tunit ~file:"a.c"
              "void leaf(void) {} void mid(void) { leaf(); } void root(void) { mid(); leaf(); }"
          ]
        in
        let funcs =
          List.concat_map
            (fun (tu : Cast.tunit) ->
              List.filter_map (function Cast.Gfun f -> Some f | _ -> None) tu.tu_globals)
            tus
        in
        let cg = Callgraph.build funcs in
        Alcotest.(check (list string)) "roots" [ "root" ] (Callgraph.roots cg);
        Alcotest.(check (list string)) "callees" [ "mid"; "leaf" ] (Callgraph.callees cg "root"));
    t "recursive cycle gets an arbitrary root" `Quick (fun () ->
        let tu =
          Cparse.parse_tunit ~file:"r.c"
            "void ping(int n) { pong(n); } void pong(int n) { ping(n); }"
        in
        let funcs =
          List.filter_map (function Cast.Gfun f -> Some f | _ -> None) tu.Cast.tu_globals
        in
        let cg = Callgraph.build funcs in
        Alcotest.(check int) "one root" 1 (List.length (Callgraph.roots cg));
        Alcotest.(check bool) "cycle detected" true (Callgraph.in_cycle cg "ping"));
    t "self recursion detected" `Quick (fun () ->
        let tu = Cparse.parse_tunit ~file:"s.c" "int fact(int n) { if (n) return n * fact(n - 1); return 1; }" in
        let funcs =
          List.filter_map (function Cast.Gfun f -> Some f | _ -> None) tu.Cast.tu_globals
        in
        let cg = Callgraph.build funcs in
        Alcotest.(check bool) "cyclic" true (Callgraph.in_cycle cg "fact");
        Alcotest.(check (list string)) "root" [ "fact" ] (Callgraph.roots cg));
    t "supergraph collects typing and files" `Quick (fun () ->
        let tu1 = Cparse.parse_tunit ~file:"one.c" "int f(void) { return g(); }" in
        let tu2 = Cparse.parse_tunit ~file:"two.c" "int g(void) { return 1; }" in
        let sg = Supergraph.build [ tu1; tu2 ] in
        Alcotest.(check (option string)) "file of g" (Some "two.c")
          (Supergraph.file_of_function sg "g");
        Alcotest.(check (list string)) "roots" [ "f" ] (Supergraph.roots sg));
  ]
