(* Whole-system integration tests over the hand-written driver corpus
   (see fixture_driver.ml for the bug inventory). *)

let t = Alcotest.test_case

let run_all () =
  let sg = Fixture_driver.supergraph () in
  let checkers =
    [
      Pathkill.checker ();
      Free_checker.checker ();
      Lock_checker.checker ();
      Intr_checker.checker ();
      Security_checker.checker ();
      Null_checker.checker ();
      Leak_checker.checker ();
    ]
  in
  Engine.run sg checkers

let reports_in result func =
  List.filter (fun (r : Report.t) -> String.equal r.Report.func func)
    result.Engine.reports

let checkers_in result func =
  List.sort_uniq String.compare
    (List.map (fun (r : Report.t) -> r.Report.checker) (reports_in result func))

let suite =
  [
    t "B1: double free in rb_destroy" `Quick (fun () ->
        let r = run_all () in
        Alcotest.(check bool) "found" true
          (List.exists
             (fun (x : Report.t) ->
               String.equal x.Report.checker "free_checker"
               && String.equal x.Report.func "rb_destroy")
             r.Engine.reports));
    t "B2: use-after-free through the release helper" `Quick (fun () ->
        let r = run_all () in
        let reps = reports_in r "rb_grow" in
        Alcotest.(check bool) "found" true
          (List.exists
             (fun (x : Report.t) -> String.equal x.Report.checker "free_checker")
             reps));
    t "B3: unvalidated user pointer in dev_ioctl" `Quick (fun () ->
        let r = run_all () in
        Alcotest.(check (list string)) "checker" [ "user_pointer_checker" ]
          (checkers_in r "dev_ioctl"));
    t "B4: lock leak in dev_write" `Quick (fun () ->
        let r = run_all () in
        Alcotest.(check bool) "found" true
          (List.exists
             (fun (x : Report.t) ->
               String.equal x.Report.checker "lock_checker"
               && String.equal x.Report.func "dev_write")
             r.Engine.reports));
    t "B5: interrupts left disabled in dev_read" `Quick (fun () ->
        let r = run_all () in
        Alcotest.(check bool) "found" true
          (List.exists
             (fun (x : Report.t) ->
               String.equal x.Report.checker "intr_checker"
               && String.equal x.Report.func "dev_read")
             r.Engine.reports));
    t "B6: unchecked wrapper allocation in task_spawn" `Quick (fun () ->
        let r = run_all () in
        Alcotest.(check bool) "found" true
          (List.exists
             (fun (x : Report.t) ->
               String.equal x.Report.checker "null_checker"
               && String.equal x.Report.func "task_spawn")
             r.Engine.reports));
    t "B7: leak on the full-queue path" `Quick (fun () ->
        let r = run_all () in
        Alcotest.(check bool) "found" true
          (List.exists
             (fun (x : Report.t) ->
               String.equal x.Report.checker "leak_checker"
               && String.equal x.Report.func "queue_push")
             r.Engine.reports));
    t "B8: leak on sched_tick's mode=0 path" `Quick (fun () ->
        let r = run_all () in
        Alcotest.(check (list string)) "only the leak" [ "leak_checker" ]
          (checkers_in r "sched_tick"));
    t "non-bugs stay clean (N1, N2, N3, N5)" `Quick (fun () ->
        let r = run_all () in
        List.iter
          (fun func ->
            Alcotest.(check (list string)) (func ^ " clean") [] (checkers_in r func))
          [ "rb_put"; "dev_open"; "dev_close"; "task_spawn_checked" ]);
    t "N4: the free checker is silent on sched_tick (infeasible path)" `Quick
      (fun () ->
        let r = run_all () in
        Alcotest.(check bool) "no free report" true
          (not
             (List.exists
                (fun (x : Report.t) ->
                  String.equal x.Report.func "sched_tick"
                  && String.equal x.Report.checker "free_checker")
                r.Engine.reports)));
    t "every report names a buggy function (no stray FPs)" `Quick (fun () ->
        let r = run_all () in
        let buggy =
          [
            "rb_destroy"; "rb_grow"; "dev_ioctl"; "dev_write"; "dev_read";
            "task_spawn"; "queue_push"; "sched_tick";
            (* helpers the buggy flows pass through *)
            "slots_release"; "task_alloc"; "rb_init";
          ]
        in
        List.iter
          (fun (x : Report.t) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s in buggy set (%s: %s)" x.Report.func x.Report.checker
                 x.Report.message)
              true
              (List.mem x.Report.func buggy))
          r.Engine.reports);
    t "severity ranking puts the SECURITY bug first" `Quick (fun () ->
        let r = run_all () in
        match Rank.generic_sort r.Engine.reports with
        | top :: _ -> Alcotest.(check string) "top" "dev_ioctl" top.Report.func
        | [] -> Alcotest.fail "no reports");
    t "history: second run on same corpus is fully suppressed" `Quick (fun () ->
        let r1 = run_all () in
        let db = History.of_reports r1.Engine.reports in
        let r2 = run_all () in
        let fresh, suppressed = History.suppress db r2.Engine.reports in
        Alcotest.(check int) "all suppressed" 0 (List.length fresh);
        Alcotest.(check int) "count" (List.length r2.Engine.reports) suppressed);
    t "corpus survives the .mcast round trip with identical findings" `Quick
      (fun () ->
        let direct = run_all () in
        let tus =
          List.map
            (fun (name, src) ->
              Cast_io.read_string
                (Cast_io.emit_string (Cparse.parse_tunit ~file:name src)))
            Fixture_driver.files
        in
        let sg = Supergraph.build tus in
        let roundtrip =
          Engine.run sg
            [
              Pathkill.checker (); Free_checker.checker (); Lock_checker.checker ();
              Intr_checker.checker (); Security_checker.checker ();
              Null_checker.checker (); Leak_checker.checker ();
            ]
        in
        let key (x : Report.t) = (x.Report.checker, x.Report.func, x.Report.message) in
        Alcotest.(check int) "same count"
          (List.length direct.Engine.reports)
          (List.length roundtrip.Engine.reports);
        Alcotest.(check bool) "same set" true
          (List.sort compare (List.map key direct.Engine.reports)
          = List.sort compare (List.map key roundtrip.Engine.reports)));
    t "json output over the corpus is well-formed-ish" `Quick (fun () ->
        let r = run_all () in
        let js = Json_out.reports_to_string r.Engine.reports in
        Alcotest.(check bool) "array" true (js.[0] = '[');
        let opens = ref 0 and closes = ref 0 in
        String.iter
          (fun c ->
            if c = '{' then incr opens;
            if c = '}' then incr closes)
          js;
        Alcotest.(check int) "balanced objects" !opens !closes);
  ]
