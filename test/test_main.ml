(* Aggregate test runner for the metal/xgcc reproduction. *)

let () =
  Alcotest.run "metal-xgcc"
    [
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("ast", Test_cast.suite);
      ("typing", Test_ctyping.suite);
      ("preprocessor", Test_cpp.suite);
      ("cfg", Test_cfg.suite);
      ("union-find", Test_uf.suite);
      ("fpp-store", Test_store.suite);
      ("patterns", Test_pattern.suite);
      ("metal", Test_metal.suite);
      ("engine", Test_engine.suite);
      ("interproc", Test_interproc.suite);
      ("paper-example", Test_paper_example.suite);
      ("summaries", Test_summaries.suite);
      ("relax", Test_relax.suite);
      ("false-path-pruning", Test_fpp.suite);
      ("ranking", Test_rank.suite);
      ("checkers", Test_checkers.suite);
      ("workload", Test_workload.suite);
      ("ast-io", Test_castio.suite);
      ("checkers-2", Test_checkers2.suite);
      ("json", Test_json.suite);
      ("engine-2", Test_engine2.suite);
      ("integration", Test_integration.suite);
      ("stmt-roundtrip", Test_stmt_roundtrip.suite);
      ("integration-vfs", Test_integration_vfs.suite);
      ("refine", Test_refine2.suite);
      ("callouts", Test_callout.suite);
      ("printers", Test_pp.suite);
      ("triage", Test_triage.suite);
      ("parallel", Test_parallel.suite);
      ("cache", Test_cache.suite);
      ("interning", Test_intern.suite);
      ("dispatch", Test_dispatch.suite);
      ("faults", Test_faults.suite);
      ("scheduler", Test_sched.suite);
      ("flat", Test_flat.suite);
      ("state-ids", Test_state_ids.suite);
      ("serve", Test_serve.suite);
    ]
