(* The builtin callout library, exercised directly. *)

let t = Alcotest.test_case
let e s = Cparse.expr_of_string ~file:"<t>" s

let typing =
  Ctyping.of_program
    [ Cparse.parse_tunit ~file:"<t>" "int i; int *ip; struct s { int f; } sv;" ]

let ctx node = { Callout.typing; node; annots = Hashtbl.create 4 }

let call name args node =
  match Callout.lookup name with
  | Some fn -> fn (ctx node) args
  | None -> Alcotest.fail ("missing builtin " ^ name)

let vb = function Callout.Vbool b -> b | v -> Callout.truthy v

let suite =
  [
    t "mc_is_call_to on calls and names" `Quick (fun () ->
        Alcotest.(check bool) "call node" true
          (vb (call "mc_is_call_to" [ Callout.Vast (e "gets(s)"); Callout.Vstr "gets" ] None));
        Alcotest.(check bool) "bare name" true
          (vb (call "mc_is_call_to" [ Callout.Vast (e "gets"); Callout.Vstr "gets" ] None));
        Alcotest.(check bool) "wrong name" false
          (vb (call "mc_is_call_to" [ Callout.Vast (e "puts(s)"); Callout.Vstr "gets" ] None)));
    t "mc_identifier prints source" `Quick (fun () ->
        match call "mc_identifier" [ Callout.Vast (e "p->next[2]") ] None with
        | Callout.Vstr s -> Alcotest.(check string) "printed" "p->next[2]" s
        | _ -> Alcotest.fail "expected string");
    t "mc_is_constant / mc_constant_value" `Quick (fun () ->
        Alcotest.(check bool) "const" true
          (vb (call "mc_is_constant" [ Callout.Vast (e "3 * 4") ] None));
        Alcotest.(check bool) "non-const" false
          (vb (call "mc_is_constant" [ Callout.Vast (e "x + 1") ] None));
        match call "mc_constant_value" [ Callout.Vast (e "3 * 4") ] None with
        | Callout.Vint 12L -> ()
        | _ -> Alcotest.fail "expected 12");
    t "mc_is_pointer / mc_is_scalar use the typing env" `Quick (fun () ->
        Alcotest.(check bool) "ip pointer" true
          (vb (call "mc_is_pointer" [ Callout.Vast (e "ip") ] None));
        Alcotest.(check bool) "i not pointer" false
          (vb (call "mc_is_pointer" [ Callout.Vast (e "i") ] None));
        Alcotest.(check bool) "sv not scalar" false
          (vb (call "mc_is_scalar" [ Callout.Vast (e "sv") ] None)));
    t "mc_num_args / mc_nth_arg" `Quick (fun () ->
        let args = Callout.Vargs [ e "a"; e "b"; e "c" ] in
        (match call "mc_num_args" [ args ] None with
        | Callout.Vint 3L -> ()
        | _ -> Alcotest.fail "expected 3");
        match call "mc_nth_arg" [ args; Callout.Vint 1L ] None with
        | Callout.Vast b -> Alcotest.(check string) "b" "b" (Cprint.expr_to_string b)
        | _ -> Alcotest.fail "expected ast");
    t "mc_nth_arg out of range" `Quick (fun () ->
        match call "mc_nth_arg" [ Callout.Vargs [ e "a" ]; Callout.Vint 5L ] None with
        | Callout.Vunit -> ()
        | _ -> Alcotest.fail "expected unit");
    t "mc_contains" `Quick (fun () ->
        Alcotest.(check bool) "found" true
          (vb (call "mc_contains" [ Callout.Vast (e "f(a + b)"); Callout.Vast (e "b") ] None));
        Alcotest.(check bool) "absent" false
          (vb (call "mc_contains" [ Callout.Vast (e "f(a)"); Callout.Vast (e "b") ] None)));
    t "mc_derefs shapes" `Quick (fun () ->
        let v = Callout.Vast (e "p") in
        Alcotest.(check bool) "*p" true
          (vb (call "mc_derefs" [ Callout.Vast (e "*p"); v ] None));
        Alcotest.(check bool) "p->f" true
          (vb (call "mc_derefs" [ Callout.Vast (e "p->f"); v ] None));
        Alcotest.(check bool) "p[i]" true
          (vb (call "mc_derefs" [ Callout.Vast (e "p[i]"); v ] None));
        Alcotest.(check bool) "q->f" false
          (vb (call "mc_derefs" [ Callout.Vast (e "q->f"); v ] None));
        Alcotest.(check bool) "p alone" false
          (vb (call "mc_derefs" [ Callout.Vast (e "p"); v ] None)));
    t "mc_is_ident" `Quick (fun () ->
        Alcotest.(check bool) "ident" true
          (vb (call "mc_is_ident" [ Callout.Vast (e "x") ] None));
        Alcotest.(check bool) "field path" false
          (vb (call "mc_is_ident" [ Callout.Vast (e "x->f") ] None)));
    t "mc_annotated via explicit node and mc_stmt" `Quick (fun () ->
        let node = e "panic()" in
        let c = ctx (Some node) in
        Hashtbl.replace c.Callout.annots node.Cast.eid [ "sealed" ];
        let fn = Option.get (Callout.lookup "mc_annotated") in
        Alcotest.(check bool) "explicit" true
          (vb (fn c [ Callout.Vast node; Callout.Vstr "sealed" ]));
        Alcotest.(check bool) "implicit mc_stmt form" true
          (vb (fn c [ Callout.Vstr "sealed" ]));
        Alcotest.(check bool) "other tag" false
          (vb (fn c [ Callout.Vstr "other" ])));
    t "mc_name_contains" `Quick (fun () ->
        Alcotest.(check bool) "substring" true
          (vb
             (call "mc_name_contains"
                [ Callout.Vast (e "spin_lock_irq(x)"); Callout.Vstr "lock" ]
                None));
        Alcotest.(check bool) "absent" false
          (vb
             (call "mc_name_contains"
                [ Callout.Vast (e "mutex_init(x)"); Callout.Vstr "lock" ]
                None)));
    t "registry names are sorted and complete" `Quick (fun () ->
        let names = Callout.names () in
        Alcotest.(check bool) "sorted" true
          (names = List.sort String.compare names);
        List.iter
          (fun n -> Alcotest.(check bool) n true (List.mem n names))
          [
            "mc_is_call_to"; "mc_identifier"; "mc_is_constant"; "mc_constant_value";
            "mc_is_pointer"; "mc_is_scalar"; "mc_num_args"; "mc_nth_arg";
            "mc_contains"; "mc_annotated"; "mc_derefs"; "mc_is_ident";
            "mc_name_contains";
          ]);
    t "truthiness rules" `Quick (fun () ->
        Alcotest.(check bool) "Vbool" true (Callout.truthy (Callout.Vbool true));
        Alcotest.(check bool) "zero int" false (Callout.truthy (Callout.Vint 0L));
        Alcotest.(check bool) "nonzero" true (Callout.truthy (Callout.Vint 2L));
        Alcotest.(check bool) "empty string" false (Callout.truthy (Callout.Vstr ""));
        Alcotest.(check bool) "unit" false (Callout.truthy Callout.Vunit);
        Alcotest.(check bool) "ast" true (Callout.truthy (Callout.Vast (e "x"))));
  ]
