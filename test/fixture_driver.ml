(* A hand-written, realistic "character device driver" corpus in the style
   of the systems code the paper analysed, spread over three files with a
   known bug inventory. Used by the integration tests.

   Bug inventory (the ground truth):
     B1  ringbuf.c  rb_destroy       double free of rb->slots
     B2  ringbuf.c  rb_grow          use-after-free of old (via helper free)
     B3  chardev.c  dev_ioctl        user pointer dereferenced unvalidated
     B4  chardev.c  dev_write        lock leaked on the EINVAL early return
     B5  chardev.c  dev_read         interrupts left disabled on error path
     B6  sched.c    task_spawn       kmalloc result used without null check
     B7  sched.c    queue_push       allocation leaked when queue is full
     B8  sched.c    sched_tick       leak on the mode=0 path (never freed)
   Non-bugs that must NOT be flagged:
     N1  rb_put checks trylock correctly
     N2  dev_open frees and NULLs the scratch buffer (kill suppression)
     N3  dev_close passes a freed pointer to debug logging only (strictfree
         suppression idiom; base free checker never flags it)
     N4  sched_tick's deref of the freed pointer is on an infeasible path
         (pruning): the free checker stays silent even though the leak
         checker rightly reports B8
     N5  task_spawn_checked null-checks through the alloc wrapper *)

let ringbuf_c =
  {|
struct ring {
   int **slots;
   int cap;
   int len;
};

static void slots_release(int **s) {
   kfree(s);
}

int rb_init(struct ring *rb, int cap) {
   rb->slots = kmalloc(cap);
   if (!rb->slots) { return -1; }
   rb->cap = cap;
   rb->len = 0;
   return 0;
}

void rb_destroy(struct ring *rb, int twice) {
   kfree(rb->slots);
   if (twice) {
      kfree(rb->slots);       /* B1: double free */
   }
}

int rb_grow(struct ring *rb, int ncap) {
   int **old = rb->slots;
   rb->slots = kmalloc(ncap);
   if (!rb->slots) {
      rb->slots = old;
      return -1;
   }
   slots_release(old);
   return **old;              /* B2: use after (helper) free */
}
|}

let chardev_c =
  {|
struct lk { int held; };
struct ring;

struct lk dev_lock;
static int dev_count;

int dev_open(int sz) {
   char *scratch = kmalloc(sz);
   if (!scratch) { return -1; }
   scratch[0] = 0;
   kfree(scratch);
   scratch = 0;               /* N2: killed; no use-after-free below */
   dev_count = dev_count + 1;
   return 0;
}

int dev_close(int sz) {
   char *tmp = kmalloc(sz);
   if (!tmp) { return -1; }
   kfree(tmp);
   debug_print(tmp);          /* N3: log-only use of freed pointer */
   return 0;
}

int dev_ioctl(int len) {
   char *ubuf = get_user_pointer(len);
   char kbuf[16];
   if (len > 16) { return -1; }
   return *ubuf;              /* B3: unvalidated user pointer */
}

int dev_write(struct lk *mu, int n) {
   lock(mu);
   if (n < 0) {
      return -22;             /* B4: lock never released */
   }
   dev_count = dev_count + n;
   unlock(mu);
   return n;
}

int dev_read(struct lk *mu, int want) {
   cli();
   if (want < 0) {
      return -1;              /* B5: interrupts left disabled */
   }
   want = want + dev_count;
   sti();
   return want;
}

int rb_put(struct lk *mu, int v) {
   if (trylock(mu)) {         /* N1: correct trylock discipline */
      dev_count = v;
      unlock(mu);
      return 0;
   }
   return -16;
}
|}

let sched_c =
  {|
struct task {
   int prio;
   int state;
};

static int runq_len;

int *task_alloc(int prio) {
   int *t = kmalloc(prio);
   return t;
}

int task_spawn(int prio) {
   int *t = task_alloc(prio);
   return *t;                 /* B6: wrapper result not null-checked */
}

int task_spawn_checked(int prio) {
   int *t = task_alloc(prio);
   if (!t) { return -1; }     /* N5: checked through the wrapper */
   return *t;
}

int queue_push(int prio) {
   int *slot = kmalloc(prio);
   if (!slot) { return -1; }
   if (runq_len > 64) {
      return -11;             /* B7: slot leaked on the full-queue path */
   }
   *slot = prio;
   enqueue(slot);
   return 0;
}

int sched_tick(int mode) {
   int *stale = kmalloc(8);
   if (!stale) { return 0; }
   if (mode) {
      kfree(stale);
   }
   if (!mode) {
      return *stale;          /* N4: infeasible with the branch above */
   }
   return 0;
}
|}

let files = [ ("ringbuf.c", ringbuf_c); ("chardev.c", chardev_c); ("sched.c", sched_c) ]

let supergraph () =
  Supergraph.build
    (List.map (fun (name, src) -> Cparse.parse_tunit ~file:name src) files)
