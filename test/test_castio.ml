(* S-expressions and AST serialisation (the two-pass architecture). *)

let t = Alcotest.test_case

let suite =
  [
    t "sexp atom round trip" `Quick (fun () ->
        let t1 = Sexp.atom "hello" in
        Alcotest.(check string) "plain" "hello" (Sexp.to_string t1);
        let back = Sexp.of_string "hello" in
        Alcotest.(check bool) "eq" true (back = t1));
    t "sexp quoting round trip" `Quick (fun () ->
        let tricky = [ "has space"; "par(en"; "qu\"ote"; "tab\there"; "nl\nthere"; "" ] in
        List.iter
          (fun s ->
            let printed = Sexp.to_string (Sexp.atom s) in
            match Sexp.of_string printed with
            | Sexp.Atom s' -> Alcotest.(check string) ("rt " ^ String.escaped s) s s'
            | Sexp.List _ -> Alcotest.fail "expected atom")
          tricky);
    t "sexp nested lists" `Quick (fun () ->
        let src = "(a (b c) (d (e f)) g)" in
        let parsed = Sexp.of_string src in
        Alcotest.(check string) "print" src (Sexp.to_string parsed));
    t "sexp comments skipped" `Quick (fun () ->
        match Sexp.of_string "; header\n(a b) ; trailer" with
        | Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b" ] -> ()
        | _ -> Alcotest.fail "bad parse");
    t "sexp errors carry offsets" `Quick (fun () ->
        (match Sexp.of_string "(a b" with
        | exception Sexp.Parse_error (_, _) -> ()
        | _ -> Alcotest.fail "unterminated should fail");
        match Sexp.of_string "(a) b" with
        | exception Sexp.Parse_error (_, _) -> ()
        | _ -> Alcotest.fail "trailing should fail");
    t "of_string_many" `Quick (fun () ->
        Alcotest.(check int) "three" 3 (List.length (Sexp.of_string_many "(a) b (c d)")));
    t "expr serialisation round trip" `Quick (fun () ->
        List.iter
          (fun src ->
            let e = Cparse.expr_of_string ~file:"t.c" src in
            let back = Cast_io.expr_of_sexp (Cast_io.expr_to_sexp e) in
            Alcotest.(check bool) ("rt " ^ src) true (Cast.equal_expr e back))
          [
            "a + b * 2"; "f(x, y[i])"; "*p->next"; "(char *)buf"; "a ? b : c";
            "x = y = 0"; "s.f1.f2"; "sizeof(int)"; "sizeof(x + 1)"; "a, b";
            "-x + !y"; "p++ + --q"; "\"string with spaces\""; "'c'"; "x += 3";
          ]);
    t "ctyp serialisation round trip" `Quick (fun () ->
        List.iter
          (fun ty ->
            let back = Cast_io.ctyp_of_sexp (Cast_io.ctyp_to_sexp ty) in
            Alcotest.(check bool) (Ctyp.to_string ty) true (Ctyp.equal ty back))
          [
            Ctyp.Void; Ctyp.int_; Ctyp.unsigned_int; Ctyp.char_;
            Ctyp.Ptr (Ctyp.Ptr Ctyp.Void);
            Ctyp.Array (Ctyp.int_, Some 4);
            Ctyp.Array (Ctyp.char_, None);
            Ctyp.Func (Ctyp.int_, [ Ctyp.int_; Ctyp.Ptr Ctyp.char_ ], true);
            Ctyp.Struct "s"; Ctyp.Union "u"; Ctyp.Enum "e"; Ctyp.Named "t";
            Ctyp.Unknown;
          ]);
    t "tunit round trip preserves analysis results" `Quick (fun () ->
        let src =
          "struct lk { int h; };\n\
           typedef int myint;\n\
           enum mode { A, B = 5 };\n\
           static int fsv;\n\
           int helper(int *p);\n\
           int f(int *p, int n) {\n\
           int *q = kmalloc(n);\n\
           if (!q) { return -1; }\n\
           kfree(p);\n\
           switch (n) { case 1: return *p; default: break; }\n\
           while (n > 0) { n--; }\n\
           kfree(q);\n\
           return 0;\n\
           }"
        in
        let tu = Cparse.parse_tunit ~file:"orig.c" src in
        let tu2 = Cast_io.read_string (Cast_io.emit_string tu) in
        Alcotest.(check int) "globals" (List.length tu.Cast.tu_globals)
          (List.length tu2.Cast.tu_globals);
        let run tu = Engine.run (Supergraph.build [ tu ]) [ Free_checker.checker () ] in
        let r1 = run tu and r2 = run tu2 in
        Alcotest.(check (list string)) "same reports"
          (List.map (fun (r : Report.t) -> r.Report.message) r1.Engine.reports)
          (List.map (fun (r : Report.t) -> r.Report.message) r2.Engine.reports));
    t "emit/read files (pass 1 / pass 2)" `Quick (fun () ->
        let src = "int g(int *p) { kfree(p); return *p; }" in
        let tu = Cparse.parse_tunit ~file:"g.c" src in
        let path = Filename.temp_file "mc_ast" ".mcast" in
        Cast_io.emit_file path tu;
        let tu2 = Cast_io.read_file path in
        Sys.remove path;
        let r = Engine.run (Supergraph.build [ tu2 ]) [ Free_checker.checker () ] in
        Alcotest.(check int) "error survives round trip" 1
          (List.length r.Engine.reports));
    t "AST files are a small multiple of the source (paper: 4-5x)" `Quick (fun () ->
        let g = Gen.generate ~seed:4 ~n_funcs:20 ~bug_rate:0.3 in
        let tu = Cparse.parse_tunit ~file:"g.c" g.Gen.source in
        let emitted = Cast_io.emit_string tu in
        let ratio =
          float_of_int (String.length emitted) /. float_of_int (String.length g.Gen.source)
        in
        Alcotest.(check bool)
          (Printf.sprintf "ratio %.1f in [2, 20]" ratio)
          true
          (ratio >= 2.0 && ratio <= 20.0));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"generated programs round-trip through .mcast"
         ~count:20
         QCheck2.Gen.(int_range 1 1000)
         (fun seed ->
           let g = Gen.generate ~seed ~n_funcs:6 ~bug_rate:0.5 in
           let tu = Cparse.parse_tunit ~file:"g.c" g.Gen.source in
           let tu2 = Cast_io.read_string (Cast_io.emit_string tu) in
           let reports tu =
             List.map
               (fun (r : Report.t) -> (r.Report.func, r.Report.message))
               (Engine.run (Supergraph.build [ tu ])
                  [ Free_checker.checker (); Lock_checker.checker () ])
                 .Engine.reports
           in
           reports tu = reports tu2));
  ]
