(* Benchmark harness: regenerates every figure/table artifact of the paper
   (see DESIGN.md's per-experiment index) and times the engine with
   bechamel. Two parts:

   1. "experiment tables" — deterministic reproductions printed as rows
      (who wins / what is found / how counts scale), mirroring what the
      paper reports qualitatively;
   2. bechamel micro-benchmarks — one Test.make per experiment id, timing
      the corresponding engine configuration. *)

open Bechamel
open Toolkit

let line () = print_endline (String.make 72 '-')

(* Machine-readable result lines: printed as "BENCH {json}" and appended to
   BENCH_results.json at the repo root (one JSON object per line). *)
let bench_out json =
  Printf.printf "BENCH %s\n" json;
  try
    let oc =
      open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_results.json"
    in
    output_string oc json;
    output_char oc '\n';
    close_out oc
  with Sys_error _ -> ()

let header title =
  line ();
  Printf.printf "%s\n" title;
  line ()

(* ------------------------------------------------------------------ *)
(* Shared setup                                                        *)
(* ------------------------------------------------------------------ *)

let sg_of src = Supergraph.build [ Cparse.parse_tunit ~file:"bench.c" src ]
let run_src ?options src checkers = Engine.run ?options (sg_of src) checkers

(* Figure 2 with the paper's exact line numbering (errors at 12 and 17) *)
let fig2_code =
  {|int contrived(int *p, int *w, int x) {
   int *q;

   if(x)
   {
      kfree(w);
      q = p;
      p = 0;
   }
   if(!x)
      return *w;
   return *q;
}
int contrived_caller(int *w, int x, int *p) {
   kfree(p);
   contrived(p, w, x);
   return *w;
}
|}

let no_cache = { Engine.default_options with Engine.caching = false }
let no_prune = { Engine.default_options with Engine.pruning = false }

(* ------------------------------------------------------------------ *)
(* Part 1: experiment tables                                           *)
(* ------------------------------------------------------------------ *)

let table_f2 () =
  header "F2 | Figure 2: the free checker on the paper's running example";
  let r = run_src fig2_code [ Free_checker.checker () ] in
  Printf.printf "%-8s %-22s %s\n" "LINE" "FUNCTION" "MESSAGE";
  List.iter
    (fun (rep : Report.t) ->
      Printf.printf "%-8d %-22s %s\n" rep.Report.loc.Srcloc.line rep.Report.func
        rep.Report.message)
    r.Engine.reports;
  Printf.printf "paper: 2 errors (lines 12, 17); measured: %d errors\n"
    (List.length r.Engine.reports)

let table_t1 () =
  header "T1 | Table 1: hole types and what they match";
  let typing =
    Ctyping.of_program
      [
        Cparse.parse_tunit ~file:"<t>"
          "int i; float fl; int *ip; char *cp; struct s { int f; } sv; int fn(int);";
      ]
  in
  let exprs =
    [ "i"; "fl"; "ip"; "cp"; "sv"; "fn(i)" ]
    |> List.map (fun s -> (s, Cparse.expr_of_string ~file:"<t>" s))
  in
  let holes =
    [
      ("int (concrete)", Holes.Concrete Ctyp.int_);
      ("any_expr", Holes.Any_expr);
      ("any_scalar", Holes.Any_scalar);
      ("any_pointer", Holes.Any_pointer);
      ("any_fn_call", Holes.Any_fn_call);
    ]
  in
  Printf.printf "%-16s" "HOLE \\ EXPR";
  List.iter (fun (s, _) -> Printf.printf " %-6s" s) exprs;
  print_newline ();
  List.iter
    (fun (hname, h) ->
      Printf.printf "%-16s" hname;
      List.iter
        (fun (_, e) ->
          Printf.printf " %-6s" (if Holes.matches typing h e then "yes" else "-"))
        exprs;
      print_newline ())
    holes

let table_t2 () =
  header "T2 | Table 2: refine/restore across a call f(xa) with formal xf";
  let e s = Cparse.expr_of_string ~file:"<t>" s in
  let show actual state =
    let m =
      Refine.make_mapping ~params:[ ("xf", Ctyp.void_ptr) ] ~args:[ e actual ]
    in
    let refined = Refine.refine_tree m (e state) in
    let restored = Refine.restore_tree m refined in
    Printf.printf "%-8s %-12s refine: state(%s)    restore: state(%s)\n" actual state
      (Cprint.expr_to_string refined)
      (Cprint.expr_to_string restored)
  in
  Printf.printf "%-8s %-12s %s\n" "ACTUAL" "STATE IN" "RULE";
  show "xa" "xa";
  show "&xa" "xa";
  show "xa" "xa.field";
  show "xa" "xa->field";
  show "xa" "*xa"

let table_p1 () =
  header "P1 | SM independence: cost scales linearly in tracked instances";
  Printf.printf "%-12s %-12s %-12s %-10s\n" "INSTANCES" "NODES" "BLOCKS" "ERRORS";
  List.iter
    (fun n ->
      let r = run_src (Synth.many_tracked ~n) [ Free_checker.checker () ] in
      Printf.printf "%-12d %-12d %-12d %-10d\n" n r.Engine.stats.Engine.nodes_visited
        r.Engine.stats.Engine.blocks_visited
        (List.length r.Engine.reports))
    [ 4; 8; 16; 32 ];
  Printf.printf "paper claim: linear (not exponential) growth with instances\n"

let table_p2 () =
  header "P2 | Block caching: exponential paths collapse to linear";
  Printf.printf "%-10s %-16s %-16s %-14s\n" "DIAMONDS" "PATHS(cached)" "PATHS(no cache)"
    "ERRORS(same?)";
  List.iter
    (fun n ->
      let src = Synth.diamond_chain ~n in
      let on = run_src src [ Free_checker.checker () ] in
      let off = run_src ~options:no_cache src [ Free_checker.checker () ] in
      Printf.printf "%-10d %-16d %-16d %b\n" n on.Engine.stats.Engine.paths_explored
        off.Engine.stats.Engine.paths_explored
        (List.length on.Engine.reports = List.length off.Engine.reports))
    [ 4; 8; 12 ];
  Printf.printf "paper claim: caching makes the DFS tractable on real code\n"

let table_p3 () =
  header "P3 | Function summaries memoise whole-function effects";
  Printf.printf "%-22s %-10s %-14s %-14s\n" "WORKLOAD" "CALLS" "SUMMARY-HITS"
    "TRAVERSALS";
  List.iter
    (fun (name, src) ->
      let r = run_src src [ Free_checker.checker () ] in
      let st = r.Engine.stats in
      Printf.printf "%-22s %-10d %-14d %-14d\n" name st.Engine.calls_followed
        st.Engine.summary_hits
        (st.Engine.calls_followed - st.Engine.summary_hits))
    [
      ("chain depth 12", Synth.call_chain ~depth:12);
      ("tree 3^3 + helper", Synth.call_tree ~depth:3 ~fanout:3);
      ("tree 2^6 + helper", Synth.call_tree ~depth:6 ~fanout:2);
    ];
  Printf.printf
    "paper claim: each function is analysed per entry state, not per callsite\n"

let table_p4 () =
  header "P4 | False-path pruning kills correlated-branch false positives";
  Printf.printf "%-10s %-18s %-18s\n" "PAIRS" "FP(pruning on)" "FP(pruning off)";
  List.iter
    (fun n ->
      let src = Synth.correlated_branches ~n in
      let on = run_src src [ Free_checker.checker () ] in
      let off = run_src ~options:no_prune src [ Free_checker.checker () ] in
      Printf.printf "%-10d %-18d %-18d\n" n
        (List.length on.Engine.reports)
        (List.length off.Engine.reports))
    [ 2; 4; 6 ];
  Printf.printf "paper claim (Fig. 2): contradictory conditions yield no reports\n";
  let no_kill = { Engine.default_options with Engine.auto_kill = false } in
  Printf.printf "\nkill-on-redefinition ('the single most important technique'):\n";
  Printf.printf "%-10s %-18s %-18s\n" "FUNCS" "FP(kill on)" "FP(kill off)";
  List.iter
    (fun n ->
      let src = Synth.kill_workload ~n in
      let on = run_src src [ Free_checker.checker () ] in
      let off = run_src ~options:no_kill src [ Free_checker.checker () ] in
      Printf.printf "%-10d %-18d %-18d\n" n
        (List.length on.Engine.reports)
        (List.length off.Engine.reports))
    [ 4; 16 ]

let table_p5 () =
  header "P5 | Statistical ranking: z-statistic sorts real errors first";
  let src =
    "void rel(int *p) { kfree(p); }\n\
     void maybe(int *p, int m) { if (m) { kfree(p); } }\n\
     int u1(int n) { int *a = kmalloc(n); rel(a); return *a; }\n\
     int u2(int n) { int *b = kmalloc(n); rel(b); return 0; }\n\
     int u3(int n) { int *c = kmalloc(n); rel(c); return 0; }\n\
     int u4(int n) { int *d = kmalloc(n); rel(d); return 0; }\n\
     int u5(int n) { int *e = kmalloc(n); maybe(e, 0); return *e; }\n\
     int u6(int n) { int *f = kmalloc(n); maybe(f, 0); return *f; }\n\
     int u7(int n) { int *g = kmalloc(n); maybe(g, 0); return *g; }"
  in
  let sg = sg_of src in
  let result, ranking = Free_stat.run sg ~dealloc:[ "kfree" ] in
  Printf.printf "%-14s %-8s\n" "RULE" "Z";
  List.iter (fun (rule, z) -> Printf.printf "%-14s %8.2f\n" rule z) ranking;
  let sorted =
    Rank.statistical_sort ~counters:result.Engine.counters result.Engine.reports
  in
  Printf.printf "top-ranked report: %s\n"
    (match sorted with r :: _ -> Report.to_string r | [] -> "<none>");
  Printf.printf
    "paper claim: 'all of the real errors went to the top' -- the always-free\n\
     rule outranks the conditional-free cluster\n"

let table_p6 () =
  header "P6 | Checker sizes (paper: extensions are 10-200 lines)";
  Printf.printf "%-12s %-6s %s\n" "CHECKER" "LOC" "DESCRIPTION";
  List.iter
    (fun e ->
      Printf.printf "%-12s %-6d %s\n" e.Registry.e_name (Registry.loc e)
        e.Registry.e_description)
    (Registry.all ())

let table_detection () =
  header "W  | Workload detection (substitute for the paper's kernel runs)";
  Printf.printf "%-8s %-10s %-10s %-10s %-8s\n" "SEED" "PLANTED" "DETECTED" "REPORTS"
    "FP";
  let all_checkers () = List.map (fun e -> e.Registry.e_make ()) (Registry.all ()) in
  List.iter
    (fun seed ->
      let g = Gen.generate ~seed ~n_funcs:40 ~bug_rate:0.3 in
      let sg = sg_of g.Gen.source in
      let result = Engine.run sg (all_checkers ()) in
      let buggy = List.map (fun (p : Gen.planted) -> p.Gen.in_function) g.Gen.planted in
      let detected =
        List.filter
          (fun (p : Gen.planted) ->
            List.exists
              (fun (r : Report.t) -> String.equal r.Report.func p.Gen.in_function)
              result.Engine.reports)
          g.Gen.planted
      in
      let fps =
        List.filter
          (fun (r : Report.t) -> not (List.mem r.Report.func buggy))
          result.Engine.reports
      in
      Printf.printf "%-8d %-10d %-10d %-10d %-8d\n" seed
        (List.length g.Gen.planted)
        (List.length detected)
        (List.length result.Engine.reports)
        (List.length fps))
    [ 1; 2; 3 ]

let table_p10 () =
  header "P10| Top-down vs. exhaustive bottom-up entry states (Section 6)";
  Printf.printf "%-22s %-18s %-20s %-14s\n" "WORKLOAD" "TOP-DOWN STATES"
    "EXHAUSTIVE STATES" "RATIO";
  let free = Free_checker.checker () in
  List.iter
    (fun (name, src) ->
      let sg = sg_of src in
      let td = Baseline.topdown_entry_states sg free in
      let ex = Baseline.exhaustive_entry_states sg free in
      Printf.printf "%-22s %-18d %-20d %.1fx\n" name td ex
        (float_of_int ex /. float_of_int (max 1 td)))
    [
      ("fig2", fig2_code);
      ("call tree 3^3", Synth.call_tree ~depth:3 ~fanout:3);
      ("workload 40 fns", (Gen.generate ~seed:5 ~n_funcs:40 ~bug_rate:0.3).Gen.source);
    ];
  (* actually execute the exhaustive scheme on the small example *)
  let sg = sg_of fig2_code in
  let t0 = Sys.time () in
  let runs = Baseline.run_exhaustive sg free in
  let t_ex = Sys.time () -. t0 in
  let t1 = Sys.time () in
  ignore (Engine.run sg [ free ]);
  let t_td = Sys.time () -. t1 in
  Printf.printf
    "fig2 executed: exhaustive %d runs (%.4fs) vs top-down 1 run (%.4fs)\n" runs t_ex
    t_td;
  Printf.printf
    "paper claim: top-down analyses only the states that actually reach a function\n"

let table_scale () =
  header "S  | Whole-program scaling (all checkers, generated corpora)";
  Printf.printf "%-10s %-12s %-12s %-12s %-10s\n" "FUNCS" "NODES" "BLOCKS" "REPORTS"
    "SECONDS";
  let all_checkers () = List.map (fun e -> e.Registry.e_make ()) (Registry.all ()) in
  List.iter
    (fun n ->
      let g = Gen.generate ~seed:55 ~n_funcs:n ~bug_rate:0.25 in
      let sg = sg_of g.Gen.source in
      let t0 = Sys.time () in
      let r = Engine.run sg (all_checkers ()) in
      let dt = Sys.time () -. t0 in
      Printf.printf "%-10d %-12d %-12d %-12d %-10.3f\n" n
        r.Engine.stats.Engine.nodes_visited r.Engine.stats.Engine.blocks_visited
        (List.length r.Engine.reports) dt)
    [ 100; 400; 1600 ];
  Printf.printf
    "paper claim: the approach scales to large programs (2 MLOC Linux)\n"

(* ------------------------------------------------------------------ *)
(* Part 2: bechamel micro-benchmarks                                   *)
(* ------------------------------------------------------------------ *)

let stage = Staged.stage

let bench_tests () =
  (* pre-build supergraphs so timings measure the engine, not the parser *)
  let free = Free_checker.checker () in
  let fig2_sg = sg_of fig2_code in
  let diamond_sg = sg_of (Synth.diamond_chain ~n:8) in
  let many_sg = sg_of (Synth.many_tracked ~n:16) in
  let tree_sg = sg_of (Synth.call_tree ~depth:3 ~fanout:3) in
  let corr_sg = sg_of (Synth.correlated_branches ~n:4) in
  let gen = Gen.generate ~seed:7 ~n_funcs:30 ~bug_rate:0.3 in
  let gen_sg = sg_of gen.Gen.source in
  let all_checkers = List.map (fun e -> e.Registry.e_make ()) (Registry.all ()) in
  let pattern_node = Cparse.expr_of_string ~file:"<b>" "kfree(p)" in
  let pattern_holes = [ ("v", Holes.Any_expr) ] in
  let pattern = Pattern.Pexpr (Cparse.expr_of_string ~file:"<b>" "kfree(v)") in
  let pattern_ctx =
    {
      Callout.typing = Ctyping.empty;
      node = Some pattern_node;
      annots = Hashtbl.create 1;
    }
  in
  let zdata = List.init 50 (fun i -> (Printf.sprintf "rule%d" i, i * 3, 100 - i)) in
  [
    Test.make ~name:"fig2_free_checker"
      (stage (fun () -> Engine.run fig2_sg [ free ]));
    Test.make ~name:"caching_on_diamond8"
      (stage (fun () -> Engine.run diamond_sg [ free ]));
    Test.make ~name:"caching_off_diamond8"
      (stage (fun () -> Engine.run ~options:no_cache diamond_sg [ free ]));
    Test.make ~name:"independence_16_tracked"
      (stage (fun () -> Engine.run many_sg [ free ]));
    Test.make ~name:"interproc_summaries_tree"
      (stage (fun () -> Engine.run tree_sg [ free ]));
    Test.make ~name:"fpp_on_correlated4"
      (stage (fun () -> Engine.run corr_sg [ free ]));
    Test.make ~name:"fpp_off_correlated4"
      (stage (fun () -> Engine.run ~options:no_prune corr_sg [ free ]));
    Test.make ~name:"all_checkers_workload30"
      (stage (fun () -> Engine.run gen_sg all_checkers));
    Test.make ~name:"pattern_match"
      (stage (fun () ->
           Pattern.match_event ~ctx:pattern_ctx ~holes:pattern_holes pattern
             (Pattern.At_node pattern_node)));
    Test.make ~name:"metal_compile_free"
      (stage (fun () -> Metal_compile.load ~file:"<b>" Free_checker.source));
    Test.make ~name:"parse_fig2"
      (stage (fun () -> Cparse.parse_tunit ~file:"<b>" fig2_code));
    Test.make ~name:"zstat_rank_50_rules" (stage (fun () -> Zstat.rank_rules zdata));
  ]

(* ------------------------------------------------------------------ *)
(* Parallel root analysis: -j 1 vs -j N on a multi-file workload        *)
(* ------------------------------------------------------------------ *)

let table_parallel () =
  header "J  | Domain-parallel root analysis (-j 1 vs -j N, wall clock)";
  (* the scheduler's stress shape: many independent roots of uneven cost
     (one 20x-heavier mid-list root defeats contiguous chunking) plus a
     hot shared callee layer that must be analysed exactly once fleet-wide *)
  let sg =
    sg_of (Synth.sched_corpus ~n_roots:24 ~light:100 ~heavy:2000)
  in
  let all_checkers = List.map (fun e -> e.Registry.e_make ()) (Registry.all ()) in
  let cores = Pool.recommended_jobs () in
  let jn = max 2 cores in
  (* determinism first, unconditionally: the parallel merge must reproduce
     sequential output byte for byte, whatever the core count. A mismatch
     is a scheduler bug, not a measurement artifact — fail the harness. *)
  let seq = Engine.run ~jobs:1 sg all_checkers in
  let par = Engine.run ~jobs:jn sg all_checkers in
  let lines (r : Engine.result) = List.map Report.to_string r.Engine.reports in
  let same = List.equal String.equal (lines seq) (lines par) in
  Printf.printf "deterministic: %b (%d reports either way)\n" same
    (List.length seq.Engine.reports);
  if not same then
    failwith "parallel_speedup: -j N reports diverge from -j 1";
  let pst = par.Engine.stats in
  Printf.printf
    "shared units: %d published, %d replayed, %d recomputed; %d steals\n"
    pst.Engine.shared_published pst.Engine.shared_replayed
    pst.Engine.shared_recomputed pst.Engine.sched_steals;
  if pst.Engine.shared_recomputed <> 0 then
    failwith "parallel_speedup: a shared summary unit was computed twice";
  if cores <= 1 then begin
    (* a speedup ratio measured on one core is noise, not a parallelism
       claim: record an explicit skip (dashboards must not read a ~1x or
       sub-1x ratio here as a scaling regression) *)
    bench_out
      (Printf.sprintf
         "{\"experiment\": \"parallel_speedup\", \"skipped\": \"single-core\", \
          \"cores\": %d, \"deterministic\": %b, \"published\": %d, \
          \"replayed\": %d, \"recomputed\": %d}"
         cores same pst.Engine.shared_published pst.Engine.shared_replayed
         pst.Engine.shared_recomputed);
    Printf.printf
      "skipped: single-core host (determinism and once-only sharing still \
       checked above)\n"
  end
  else begin
    (* wall-clock (monotonic) per-run estimate for each job count *)
    let measure jobs =
      let test =
        Test.make
          ~name:(Printf.sprintf "check_j%d" jobs)
          (Staged.stage (fun () -> Engine.run ~jobs sg all_checkers))
      in
      let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
      let ols =
        Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
      in
      let results = Benchmark.all cfg [ Instance.monotonic_clock ] test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.fold
        (fun _ res acc ->
          match Analyze.OLS.estimates res with Some (e :: _) -> e | _ -> acc)
        analyzed nan
    in
    let j1_ns = measure 1 in
    let jn_ns = measure jn in
    Printf.printf "%-16s %16s\n" "JOBS" "ns/run";
    Printf.printf "%-16d %16.1f\n" 1 j1_ns;
    Printf.printf "%-16d %16.1f\n" jn jn_ns;
    bench_out
      (Printf.sprintf
         "{\"experiment\": \"parallel_speedup\", \"jobs\": %d, \"cores\": %d, \
          \"j1_ns\": %.1f, \"jn_ns\": %.1f, \"speedup\": %.3f, \
          \"deterministic\": %b, \"published\": %d, \"replayed\": %d, \
          \"recomputed\": %d}"
         jn cores j1_ns jn_ns (j1_ns /. jn_ns) same
         pst.Engine.shared_published pst.Engine.shared_replayed
         pst.Engine.shared_recomputed);
    Printf.printf "speedup at -j %d on %d cores: %.2fx\n" jn cores
      (j1_ns /. jn_ns)
  end;
  Printf.printf
    "paper note: roots are independent given the supergraph, so the analysis\n\
     parallelises across callgraph roots, stealing uneven roots and sharing\n\
     pure-entry callee summaries; on one core expect speedup <= 1\n"

(* ------------------------------------------------------------------ *)
(* State interning: cold-path wall clock and allocation                 *)
(* ------------------------------------------------------------------ *)

(* A/B label for the representation under test, settable from the
   environment so the same harness can measure two builds (the
   BENCH_results.json trajectory then shows before/after lines):
   XGCC_BENCH_IMPL=strings ./bench   # string-keyed state (pre-interning)
   default: "interned"               # interned-id state *)
let bench_impl =
  match Sys.getenv_opt "XGCC_BENCH_IMPL" with Some s -> s | None -> "interned"

let table_interning ?(reps = 5) () =
  header "I  | State representation: cold analysis wall clock + allocation";
  (* Path-heavy synthetic workloads: deep diamond chains and many tracked
     instances stress the block cache (mem_src/add_src probes), the call
     tree stresses summary application and relax (find_by_dst), and the
     generated corpus mixes everything at whole-program scale. *)
  let srcs =
    [
      ("diamond14", Synth.diamond_chain ~n:14);
      ("tracked32", Synth.many_tracked ~n:32);
      ("calltree3^4", Synth.call_tree ~depth:4 ~fanout:3);
      ("correlated6", Synth.correlated_branches ~n:6);
      ("workload120", (Gen.generate ~seed:99 ~n_funcs:120 ~bug_rate:0.3).Gen.source);
    ]
  in
  let sgs = List.map (fun (_, src) -> sg_of src) srcs in
  let checkers = List.map (fun e -> e.Registry.e_make ()) (Registry.all ()) in
  (* every Engine.run builds a fresh root context, so each rep is a cold
     run: no block summaries or function summaries survive between reps *)
  let run_all () = List.iter (fun sg -> ignore (Engine.run sg checkers)) sgs in
  run_all () (* warm up pattern compilation and allocator arenas *);
  let measure () =
    Gc.minor ();
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      run_all ()
    done;
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
    let da = (Gc.allocated_bytes () -. a0) /. float_of_int reps in
    (dt *. 1e9, da)
  in
  let ns, alloc = measure () in
  (* GC satellite: same workload with the batch-run minor heap the CLI
     sets (bin/xgcc.ml), to keep the effect measured rather than asserted *)
  let g0 = Gc.get () in
  Gc.set { g0 with Gc.minor_heap_size = 4 * 1024 * 1024 };
  let ns_bigminor, _ = measure () in
  Gc.set g0;
  Printf.printf "%-14s %18s %20s\n" "IMPL" "ns/cold-run" "bytes alloc/run";
  Printf.printf "%-14s %18.0f %20.0f\n" bench_impl ns alloc;
  Printf.printf "with 4M-word minor heap: %18.0f ns/run (%.2fx)\n" ns_bigminor
    (ns /. ns_bigminor);
  bench_out
    (Printf.sprintf
       "{\"experiment\": \"state_interning\", \"impl\": \"%s\", \"reps\": %d, \
        \"ns_per_run\": %.0f, \"alloc_bytes_per_run\": %.0f, \
        \"ns_per_run_4Mw_minor\": %.0f}"
       bench_impl reps ns alloc ns_bigminor);
  Printf.printf
    "workloads: %s\n"
    (String.concat ", " (List.map fst srcs))

(* ------------------------------------------------------------------ *)
(* Persistent incremental cache: cold vs warm vs single-file edit       *)
(* ------------------------------------------------------------------ *)

let table_cache () =
  header "C  | Persistent incremental cache (cold / warm / one-file edit)";
  let files =
    Gen.generate_files ~seed:21 ~n_files:6 ~funcs_per_file:12 ~bug_rate:0.3
    |> List.map (fun (file, g) -> (file, g.Gen.source))
  in
  let checkers = List.map (fun e -> e.Registry.e_make ()) (Registry.all ()) in
  let sources =
    List.map
      (fun e ->
        Option.value e.Registry.e_source
          ~default:(e.Registry.e_name ^ "\n" ^ e.Registry.e_description))
      (Registry.all ())
  in
  let cache_dir =
    let f = Filename.temp_file "xgcc_bench_cache" "" in
    Sys.remove f;
    Sys.mkdir f 0o755;
    f
  in
  let open_store () =
    Summary_store.create ~dir:cache_dir
      ~ext_keys:
        (Summary_store.ext_keys_of
           ~options_digest:(Engine.options_digest Engine.default_options)
           ~sources)
      ()
  in
  (* one full pipeline run: pass 1 through the AST object cache, then
     supergraph + cached engine — what `xgcc check --cache-dir` does *)
  let full_run ?(jobs = 1) ?store srcs =
    let tus =
      List.map
        (fun (file, src) ->
          let fp = Cast_io.ast_fingerprint ~file ~source:src in
          match Cast_io.read_cached ~cache_dir fp with
          | Some tu -> tu
          | None ->
              let tu = Cparse.parse_tunit ~file src in
              Cast_io.write_cached ~cache_dir fp tu;
              tu)
        srcs
    in
    let sg = Supergraph.build tus in
    Engine.run ~jobs ?cache:store sg checkers
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let reports r = List.map Report.to_string r.Engine.reports in
  (* reference: no cache at all *)
  let uncached, _ =
    timed (fun () ->
        Engine.run
          (Supergraph.build
             (List.map (fun (file, src) -> Cparse.parse_tunit ~file src) files))
          checkers)
  in
  let cold, t_cold = timed (fun () -> full_run ~store:(open_store ()) files) in
  let warm_store = open_store () in
  let warm, t_warm = timed (fun () -> full_run ~store:warm_store files) in
  let warmj_store = open_store () in
  let warmj, _ =
    timed (fun () -> full_run ~jobs:(max 2 (Pool.recommended_jobs ())) ~store:warmj_store files)
  in
  (* single-file edit: insert a statement into the first function of the
     first translation unit, everything else untouched *)
  let edited =
    match files with
    | (file, src) :: rest ->
        let needle = ") {" in
        let rec find i =
          if String.sub src i (String.length needle) = needle then i
          else find (i + 1)
        in
        let i = find 0 + String.length needle in
        ( file,
          String.sub src 0 i
          ^ " int __bench_edit = 1; (void)__bench_edit; "
          ^ String.sub src i (String.length src - i) )
        :: rest
    | [] -> []
  in
  let edit_store = open_store () in
  let edit_run, t_edit = timed (fun () -> full_run ~store:edit_store edited) in
  (* the edited program analysed without any cache: the invalidation
     criterion is that the edit run's reports stay byte-identical to it *)
  let edited_uncached =
    Engine.run
      (Supergraph.build
         (List.map (fun (file, src) -> Cparse.parse_tunit ~file src) edited))
      checkers
  in
  (* comment-only edit: text changes, the AST (and every location in it)
     does not — the early-cutoff criterion is zero recomputation. Note the
     comment goes at the END of the file; a comment line before the code
     would shift every source location, which is a real content change. *)
  let commented =
    match edited with
    | (file, src) :: rest -> (file, src ^ "/* reviewed */\n") :: rest
    | [] -> []
  in
  let comment_store = open_store () in
  let comment_run, t_comment =
    timed (fun () -> full_run ~store:comment_store commented)
  in
  (* edited corpus again under -j2 against the already-warm edit store:
     replay order must not depend on the job count *)
  let edit_j2, _ =
    timed (fun () -> full_run ~jobs:2 ~store:(open_store ()) edited)
  in
  let wst = Summary_store.stats warm_store in
  let est = Summary_store.stats edit_store in
  let cst = Summary_store.stats comment_store in
  let deterministic =
    List.equal String.equal (reports uncached) (reports cold)
    && List.equal String.equal (reports uncached) (reports warm)
    && List.equal String.equal (reports uncached) (reports warmj)
    && List.equal String.equal (reports edited_uncached) (reports edit_run)
    && List.equal String.equal (reports edited_uncached) (reports edit_j2)
    && List.equal String.equal (reports edited_uncached) (reports comment_run)
  in
  let speedup = t_cold /. t_warm in
  let edit_vs_cold = t_edit /. t_cold in
  (* the same one-file edit against a warm `xgcc serve` daemon: the corpus
     is written to disk once, the server holds ASTs and an in-memory
     summary store, and the edit arrives as a didChange overlay — so the
     re-check pays only re-parse of the one file plus engine replay *)
  let daemon_dir =
    let f = Filename.temp_file "xgcc_bench_daemon" "" in
    Sys.remove f;
    Sys.mkdir f 0o755;
    f
  in
  let daemon_path file = Filename.concat daemon_dir file in
  List.iter
    (fun (file, src) ->
      let oc = open_out (daemon_path file) in
      output_string oc src;
      close_out oc)
    files;
  let daemon_store =
    Summary_store.create
      ~dir:(Filename.concat daemon_dir "memstore")
      ~persist:false ~memory:true
      ~ext_keys:
        (Summary_store.ext_keys_of
           ~options_digest:(Engine.options_digest Engine.default_options)
           ~sources)
      ()
  in
  let srv =
    let config =
      {
        Server.c_files = List.map (fun (file, _) -> daemon_path file) files;
        c_parse =
          (fun ~path ~source ->
            match Cparse.parse_tunit ~file:path source with
            | tu -> Ok tu
            | exception Clex.Lex_error (_, msg) -> Error msg);
        c_exts = List.map (fun e -> e.Registry.e_make ()) (Registry.all ());
        c_options = Engine.default_options;
        c_jobs = 1;
        c_store = Some daemon_store;
        c_rank = "generic";
      }
    in
    match Server.create config with
    | Ok s -> s
    | Error e -> failwith ("bench daemon: " ^ e)
  in
  let warm_up = Server.check srv in
  assert warm_up.Server.o_rechecked;
  let efile, esrc = List.hd edited in
  let daemon_reply, t_daemon =
    timed (fun () ->
        fst
          (Server.handle_request srv ~more_pending:false
             (Proto.Did_change { path = daemon_path efile; text = Some esrc })))
  in
  let daemon_diag =
    match daemon_reply with
    | Json_out.Obj fields -> (
        match List.assoc_opt "diagnostics" fields with
        | Some (Json_out.Str s) -> s
        | _ -> "")
    | _ -> ""
  in
  (* oracle: a cold uncached run of the edited tree under the daemon's
     paths, ranked the way `xgcc check --format json` ranks *)
  let daemon_oracle =
    let r =
      Engine.run
        (Supergraph.build
           (List.map
              (fun (file, src) ->
                Cparse.parse_tunit ~file:(daemon_path file) src)
              edited))
        (List.map (fun e -> e.Registry.e_make ()) (Registry.all ()))
    in
    Json_out.reports_to_string (Rank.generic_sort r.Engine.reports)
  in
  let daemon_identical = String.equal daemon_diag daemon_oracle in
  let daemon_vs_edit = t_edit /. t_daemon in
  Printf.printf "%-22s %10s %28s\n" "RUN" "seconds" "roots replayed/recomputed";
  Printf.printf "%-22s %10.4f %28s\n" "cold (empty cache)" t_cold "0 / all";
  Printf.printf "%-22s %10.4f %20d / %d\n" "warm (no change)" t_warm
    wst.Summary_store.roots_replayed wst.Summary_store.roots_recomputed;
  Printf.printf "%-22s %10.4f %20d / %d\n" "one-function edit" t_edit
    est.Summary_store.roots_replayed est.Summary_store.roots_recomputed;
  Printf.printf "%-22s %10.4f %20d / %d\n" "comment-only edit" t_comment
    cst.Summary_store.roots_replayed cst.Summary_store.roots_recomputed;
  Printf.printf "%-22s %10.4f %28s\n" "daemon warm re-check" t_daemon
    (Printf.sprintf "%.0fx vs cached edit run" daemon_vs_edit);
  Printf.printf "daemon diagnostics byte-identical to cold check: %b\n"
    daemon_identical;
  Printf.printf
    "warm speedup: %.1fx; edit/cold: %.2f; byte-identical reports (incl. -j): %b\n"
    speedup edit_vs_cold deterministic;
  Printf.printf
    "edit cutoff: %d fns recomputed, %d summaries unchanged, %d roots salvaged\n"
    est.Summary_store.fns_recomputed est.Summary_store.sums_unchanged
    est.Summary_store.roots_salvaged;
  bench_out
    (Printf.sprintf
       "{\"experiment\": \"incremental_cache\", \"files\": %d, \"cold_s\": %.4f, \
        \"warm_s\": %.4f, \"edit_s\": %.4f, \"comment_edit_s\": %.4f, \
        \"warm_speedup\": %.3f, \"edit_vs_cold\": %.3f, \
        \"roots_replayed_warm\": %d, \"roots_recomputed_warm\": %d, \
        \"roots_replayed_edit\": %d, \"roots_recomputed_edit\": %d, \
        \"fns_recomputed_edit\": %d, \"sums_unchanged_edit\": %d, \
        \"roots_salvaged_edit\": %d, \"roots_recomputed_comment_edit\": %d, \
        \"daemon_warm_recheck_s\": %.4f, \"daemon_vs_edit\": %.1f, \
        \"daemon_identical\": %b, \"deterministic\": %b}"
       (List.length files) t_cold t_warm t_edit t_comment speedup edit_vs_cold
       wst.Summary_store.roots_replayed wst.Summary_store.roots_recomputed
       est.Summary_store.roots_replayed est.Summary_store.roots_recomputed
       est.Summary_store.fns_recomputed est.Summary_store.sums_unchanged
       est.Summary_store.roots_salvaged cst.Summary_store.roots_recomputed
       t_daemon daemon_vs_edit daemon_identical deterministic);
  Printf.printf
    "paper note: xgcc's two-pass design makes both passes cacheable -- pass 1\n\
     by post-preprocess content, pass 2 by two-level summary-content keys\n\
     with early cutoff (a summary-neutral edit stops at the edited function)\n"

(* ------------------------------------------------------------------ *)
(* Compiled transition dispatch: indexed vs naive scan                  *)
(* ------------------------------------------------------------------ *)

let table_dispatch ?(reps = 3) () =
  header "D  | Compiled transition dispatch (head index + block skip sets)";
  let naive = { Engine.default_options with Engine.dispatch = false } in
  let indexed = Engine.default_options in
  (* a bug-bearing whole-program corpus, a no-match-heavy corpus where
     every node is a non-match (the case the index exists for), and a
     summary-heavy call tree *)
  let srcs =
    [
      ("workload60", (Gen.generate ~seed:31 ~n_funcs:60 ~bug_rate:0.3).Gen.source);
      ("nomatch40x24", Synth.no_match_heavy ~n_funcs:40 ~stmts:24);
      ("calltree3^4", Synth.call_tree ~depth:4 ~fanout:3);
    ]
  in
  let sgs = List.map (fun (name, src) -> (name, sg_of src)) srcs in
  let checkers = List.map (fun e -> e.Registry.e_make ()) (Registry.all ()) in
  (* one measured pass: stats and reports per configuration *)
  let sweep options =
    List.fold_left
      (fun (attempts, hits, skipped, reports) (_, sg) ->
        let r = Engine.run ~options sg checkers in
        let st = r.Engine.stats in
        ( attempts + st.Engine.match_attempts,
          hits + st.Engine.index_hits,
          skipped + st.Engine.blocks_skipped,
          reports @ List.map Report.to_string r.Engine.reports ))
      (0, 0, 0, []) sgs
  in
  let a_naive, _, _, reps_naive = sweep naive in
  let a_idx, hits, skipped, reps_idx = sweep indexed in
  let identical = List.equal String.equal reps_naive reps_idx in
  let measure options =
    ignore (sweep options) (* warm-up *);
    Gc.minor ();
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (sweep options)
    done;
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
    let da = (Gc.allocated_bytes () -. a0) /. float_of_int reps in
    (dt *. 1e9, da)
  in
  let ns_naive, alloc_naive = measure naive in
  let ns_idx, alloc_idx = measure indexed in
  let ratio = float_of_int a_naive /. float_of_int (max 1 a_idx) in
  Printf.printf "%-10s %16s %16s %16s\n" "MODE" "match attempts" "ns/run"
    "bytes alloc/run";
  Printf.printf "%-10s %16d %16.0f %16.0f\n" "naive" a_naive ns_naive alloc_naive;
  Printf.printf "%-10s %16d %16.0f %16.0f\n" "indexed" a_idx ns_idx alloc_idx;
  Printf.printf
    "attempt reduction: %.1fx; speedup: %.2fx; index hits: %d; blocks skipped: \
     %d; identical reports: %b\n"
    ratio (ns_naive /. ns_idx) hits skipped identical;
  bench_out
    (Printf.sprintf
       "{\"experiment\": \"pattern_dispatch\", \"reps\": %d, \
        \"attempts_naive\": %d, \"attempts_indexed\": %d, \"attempt_ratio\": \
        %.2f, \"ns_naive\": %.0f, \"ns_indexed\": %.0f, \"speedup\": %.3f, \
        \"alloc_naive\": %.0f, \"alloc_indexed\": %.0f, \"index_hits\": %d, \
        \"blocks_skipped\": %d, \"identical_reports\": %b}"
       reps a_naive a_idx ratio ns_naive ns_idx (ns_naive /. ns_idx) alloc_naive
       alloc_idx hits skipped identical);
  Printf.printf
    "workloads: %s\npaper note: xgcc matched patterns at every node; compiling \
     each extension's\ntransitions to a head-constructor index makes non-match \
     nodes near-free\n"
    (String.concat ", " (List.map fst srcs))

(* ------------------------------------------------------------------ *)
(* Hot-path memory flattening: flat event tables vs boxed rebuilding    *)
(* ------------------------------------------------------------------ *)

let table_memory_flattening ?(reps = 3) () =
  header "M  | Hot-path memory flattening (flat event tables vs boxed lists)";
  let boxed = { Engine.default_options with Engine.flatten = false } in
  let flat = Engine.default_options in
  (* the state_interning corpus: the allocation target the flattening is
     judged against rides on exactly these workloads *)
  let srcs =
    [
      ("diamond14", Synth.diamond_chain ~n:14);
      ("tracked32", Synth.many_tracked ~n:32);
      ("calltree3^4", Synth.call_tree ~depth:4 ~fanout:3);
      ("correlated6", Synth.correlated_branches ~n:6);
      ("workload120", (Gen.generate ~seed:99 ~n_funcs:120 ~bug_rate:0.3).Gen.source);
    ]
  in
  let sgs = List.map (fun (name, src) -> (name, sg_of src)) srcs in
  let checkers = List.map (fun e -> e.Registry.e_make ()) (Registry.all ()) in
  let sweep options =
    List.concat_map
      (fun (_, sg) ->
        let r = Engine.run ~options sg checkers in
        List.map Report.to_string r.Engine.reports)
      sgs
  in
  let reps_boxed = sweep boxed in
  let reps_flat = sweep flat in
  let identical = List.equal String.equal reps_boxed reps_flat in
  (* parallel byte-identity across the flattening boundary, both modes *)
  let identical_j2 =
    List.equal String.equal
      (List.concat_map
         (fun (_, sg) ->
           List.map Report.to_string
             (Engine.run ~options:boxed ~jobs:2 sg checkers).Engine.reports)
         sgs)
      (List.concat_map
         (fun (_, sg) ->
           List.map Report.to_string
             (Engine.run ~options:flat ~jobs:2 sg checkers).Engine.reports)
         sgs)
  in
  let measure options =
    ignore (sweep options) (* warm-up *);
    Gc.minor ();
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (sweep options)
    done;
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
    let da = (Gc.allocated_bytes () -. a0) /. float_of_int reps in
    (dt *. 1e9, da)
  in
  let ns_boxed, alloc_boxed = measure boxed in
  let ns_flat, alloc_flat = measure flat in
  let flat_bytes =
    List.fold_left
      (fun n (_, sg) -> n + Flat.table_bytes sg.Supergraph.flat)
      0 sgs
  in
  Printf.printf "%-10s %16s %20s\n" "MODE" "ns/cold-run" "bytes alloc/run";
  Printf.printf "%-10s %16.0f %20.0f\n" "boxed" ns_boxed alloc_boxed;
  Printf.printf "%-10s %16.0f %20.0f\n" "flat" ns_flat alloc_flat;
  Printf.printf
    "alloc reduction: %.2fx; speedup: %.2fx; flat tables: %.1f KiB; identical \
     reports: %b (with -j2: %b)\n"
    (alloc_boxed /. Float.max 1. alloc_flat)
    (ns_boxed /. ns_flat)
    (float_of_int flat_bytes /. 1024.)
    identical identical_j2;
  bench_out
    (Printf.sprintf
       "{\"experiment\": \"memory_flattening\", \"impl\": \"%s\", \"reps\": %d, \
        \"ns_boxed\": %.0f, \"ns_flat\": %.0f, \"speedup\": %.3f, \
        \"alloc_boxed\": %.0f, \"alloc_flat\": %.0f, \"alloc_ratio\": %.3f, \
        \"flat_table_bytes\": %d, \"identical_reports\": %b, \
        \"identical_reports_j2\": %b}"
       bench_impl reps ns_boxed ns_flat (ns_boxed /. ns_flat) alloc_boxed
       alloc_flat
       (alloc_boxed /. Float.max 1. alloc_flat)
       flat_bytes identical identical_j2);
  Printf.printf "workloads: %s\n" (String.concat ", " (List.map fst srcs))

(* ------------------------------------------------------------------ *)
(* Hash-consed state identity: int-coded tuple state vs rendered keys   *)
(* ------------------------------------------------------------------ *)

let table_state_ids ?(reps = 3) () =
  header "S  | Hash-consed state identity (int ids vs rendered key strings)";
  let strings = { Engine.default_options with Engine.state_ids = false } in
  let ids = Engine.default_options in
  (* same corpus the flattening target is judged against *)
  let srcs =
    [
      ("diamond14", Synth.diamond_chain ~n:14);
      ("tracked32", Synth.many_tracked ~n:32);
      ("calltree3^4", Synth.call_tree ~depth:4 ~fanout:3);
      ("correlated6", Synth.correlated_branches ~n:6);
      ("workload120", (Gen.generate ~seed:99 ~n_funcs:120 ~bug_rate:0.3).Gen.source);
    ]
  in
  let sgs = List.map (fun (name, src) -> (name, sg_of src)) srcs in
  let checkers = List.map (fun e -> e.Registry.e_make ()) (Registry.all ()) in
  let sweep options =
    List.concat_map
      (fun (_, sg) ->
        let r = Engine.run ~options sg checkers in
        List.map Report.to_string r.Engine.reports)
      sgs
  in
  let reps_strings = sweep strings in
  let reps_ids = sweep ids in
  let identical = List.equal String.equal reps_strings reps_ids in
  (* parallel byte-identity across the representation boundary, both modes *)
  let identical_j2 =
    List.equal String.equal
      (List.concat_map
         (fun (_, sg) ->
           List.map Report.to_string
             (Engine.run ~options:strings ~jobs:2 sg checkers).Engine.reports)
         sgs)
      (List.concat_map
         (fun (_, sg) ->
           List.map Report.to_string
             (Engine.run ~options:ids ~jobs:2 sg checkers).Engine.reports)
         sgs)
  in
  let measure options =
    ignore (sweep options) (* warm-up *);
    Gc.minor ();
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (sweep options)
    done;
    let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
    let da = (Gc.allocated_bytes () -. a0) /. float_of_int reps in
    (dt *. 1e9, da)
  in
  let ns_strings, alloc_strings = measure strings in
  let ns_ids, alloc_ids = measure ids in
  let id_bytes =
    List.fold_left
      (fun n (_, sg) -> n + Exprid.table_bytes sg.Supergraph.ids)
      0 sgs
  in
  let id_count =
    List.fold_left (fun n (_, sg) -> n + Exprid.n sg.Supergraph.ids) 0 sgs
  in
  Printf.printf "%-10s %16s %20s\n" "MODE" "ns/cold-run" "bytes alloc/run";
  Printf.printf "%-10s %16.0f %20.0f\n" "strings" ns_strings alloc_strings;
  Printf.printf "%-10s %16.0f %20.0f\n" "ids" ns_ids alloc_ids;
  Printf.printf
    "alloc reduction: %.2fx; speedup: %.2fx; id table: %d ids, %.1f KiB; \
     identical reports: %b (with -j2: %b)\n"
    (alloc_strings /. Float.max 1. alloc_ids)
    (ns_strings /. ns_ids)
    id_count
    (float_of_int id_bytes /. 1024.)
    identical identical_j2;
  bench_out
    (Printf.sprintf
       "{\"experiment\": \"state_ids\", \"impl\": \"%s\", \"reps\": %d, \
        \"ns_strings\": %.0f, \"ns_ids\": %.0f, \"speedup\": %.3f, \
        \"alloc_strings\": %.0f, \"alloc_ids\": %.0f, \"alloc_ratio\": %.3f, \
        \"id_table_bytes\": %d, \"id_count\": %d, \"identical_reports\": %b, \
        \"identical_reports_j2\": %b}"
       bench_impl reps ns_strings ns_ids (ns_strings /. ns_ids) alloc_strings
       alloc_ids
       (alloc_strings /. Float.max 1. alloc_ids)
       id_bytes id_count identical identical_j2);
  Printf.printf "workloads: %s\n" (String.concat ", " (List.map fst srcs))

(* ------------------------------------------------------------------ *)
(* Fault containment: per-root budgets and degraded-root isolation      *)
(* ------------------------------------------------------------------ *)

let table_containment ?(reps = 3) () =
  header "F  | Fault containment (per-root node budgets)";
  (* a healthy bug-bearing corpus, plus one synthetic state-explosion
     root appended at the end (so healthy locations are unchanged): the
     budget must abandon exactly that root, keep every healthy root's
     reports byte-identical, and cost ~nothing on the healthy corpus *)
  let healthy_src = (Gen.generate ~seed:17 ~n_funcs:40 ~bug_rate:0.3).Gen.source in
  (* block caching keeps diamonds linear in tracked instances (the
     Section 5.2 result benched above), so "pathological" here is sheer
     size: ~2000 diamonds is ~22k nodes for one root, past the budget *)
  let explode_fn =
    let n = 2000 in
    let b = Buffer.create (n * 64) in
    Buffer.add_string b "int explode(";
    for i = 0 to 7 do
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b (Printf.sprintf "int c%d" i)
    done;
    Buffer.add_string b ") {\n";
    for i = 0 to n - 1 do
      Buffer.add_string b (Printf.sprintf "  int *p%d;\n" i);
      Buffer.add_string b (Printf.sprintf "  if (c%d) { kfree(p%d); }\n" (i mod 8) i)
    done;
    Buffer.add_string b "  return ";
    for i = 0 to n - 1 do
      if i > 0 then Buffer.add_string b " + ";
      Buffer.add_string b (Printf.sprintf "*p%d" i)
    done;
    Buffer.add_string b ";\n}\n";
    Buffer.contents b
  in
  let sg_healthy = sg_of healthy_src in
  let budgeted = { Engine.default_options with Engine.max_nodes_per_root = 20_000 } in
  let run options sg = Engine.run ~options sg [ Free_checker.checker () ] in
  let reports r = List.map Report.to_string r.Engine.reports in
  let r_healthy = run Engine.default_options sg_healthy in
  let contained, n_degraded =
    (* scoped so the big faulty supergraph is dead before timing starts *)
    let r_faulty = run budgeted (sg_of (healthy_src ^ explode_fn)) in
    ( List.equal String.equal (reports r_healthy) (reports r_faulty)
      && List.length r_faulty.Engine.degraded = 1
      && (List.hd r_faulty.Engine.degraded).Engine.d_root = "explode",
      List.length r_faulty.Engine.degraded )
  in
  (* budget-charging overhead on the healthy corpus: defaults (fuel
     armed at max_int) vs an explicit generous budget. Interleaved with
     a compact per round so GC pacing from earlier rounds cannot bias
     one configuration. *)
  ignore (run Engine.default_options sg_healthy) (* warm-up *);
  ignore (run budgeted sg_healthy);
  let time options =
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    ignore (run options sg_healthy);
    Unix.gettimeofday () -. t0
  in
  let t_default = ref infinity and t_budgeted = ref infinity in
  for _ = 1 to reps do
    t_default := Float.min !t_default (time Engine.default_options);
    t_budgeted := Float.min !t_budgeted (time budgeted)
  done;
  let ns_default = !t_default *. 1e9 and ns_budgeted = !t_budgeted *. 1e9 in
  let overhead = ns_budgeted /. ns_default in
  Printf.printf "%-26s %16s\n" "MODE (healthy corpus)" "ns/run";
  Printf.printf "%-26s %16.0f\n" "no budget" ns_default;
  Printf.printf "%-26s %16.0f\n" "20k-node budget" ns_budgeted;
  Printf.printf
    "budget overhead: %.2fx; exploding root degraded: %b; healthy reports \
     byte-identical: %b\n"
    overhead (n_degraded = 1) contained;
  bench_out
    (Printf.sprintf
       "{\"experiment\": \"fault_containment\", \"reps\": %d, \"ns_unbudgeted\": \
        %.0f, \"ns_budgeted\": %.0f, \"budget_overhead\": %.3f, \
        \"degraded_roots\": %d, \"contained\": %b}"
       reps ns_default ns_budgeted overhead n_degraded contained);
  Printf.printf
    "paper note: xgcc ran whole-OS corpora where single pathological \
     functions\ncould starve the run; per-root fuel turns them into one \
     degraded note\n"

let run_benchmarks () =
  header "Bechamel micro-benchmarks (ns per run, OLS estimate)";
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  Printf.printf "%-28s %16s %10s\n" "BENCHMARK" "ns/run" "r^2";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ Instance.monotonic_clock ] test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> e
            | _ -> nan
          in
          let r2 = Option.value (Analyze.OLS.r_square ols_result) ~default:nan in
          Printf.printf "%-28s %16.1f %10.4f\n" name est r2)
        analyzed)
    (bench_tests ())

(* --smoke: the quick subset CI runs on every PR — the experiments that
   append BENCH lines (perf trajectory), with reduced repetition, and no
   bechamel micro-benchmark sweep. *)
let () =
  let smoke = Array.exists (String.equal "--smoke") Sys.argv in
  print_endline "metal/xgcc benchmark harness";
  print_endline
    (if smoke then "(smoke mode: BENCH-line experiments only)"
     else "(one experiment per table/figure/claim; see DESIGN.md index)");
  if smoke then begin
    table_interning ~reps:2 ();
    table_dispatch ~reps:2 ();
    table_memory_flattening ~reps:2 ();
    table_state_ids ~reps:2 ();
    table_containment ~reps:2 ();
    table_parallel ();
    table_cache ()
  end
  else begin
    table_f2 ();
    table_t1 ();
    table_t2 ();
    table_p1 ();
    table_p2 ();
    table_p3 ();
    table_p4 ();
    table_p5 ();
    table_p6 ();
    table_detection ();
    table_p10 ();
    table_scale ();
    table_interning ();
    table_dispatch ();
    table_memory_flattening ();
    table_state_ids ();
    table_containment ();
    table_parallel ();
    table_cache ();
    run_benchmarks ()
  end;
  line ();
  print_endline "done."
