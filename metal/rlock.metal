
sm recursive_lock_checker {
  state decl any_pointer l;

  start:
    { rlock(l) } ==> l.held, { incr("depth"); }
  | { runlock(l) } ==> { err("releasing unheld recursive lock %s", mc_identifier(l)); }
  ;

  l.held:
    { rlock(l) } ==> l.held,
      { incr("depth");
        err_if_over("depth", 8, "recursive lock depth exceeds bound"); }
  | { runlock(l) } ==> l.held,
      { decr("depth");
        err_if_under("depth", 0, "unbalanced recursive unlock"); }
  | $end_of_path$ ==> l.stop,
      { err_if_over("depth", 0, "recursive lock still held at exit"); }
  ;
}
