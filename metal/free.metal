
sm free_checker {
  state decl any_pointer v;

  start:
    { kfree(v) } || { free(v) } ==> v.freed
  ;

  v.freed:
    { *v } || ${ mc_derefs(mc_stmt, v) } ==> v.stop,
      { err("using %s after free!", mc_identifier(v)); }
  | { kfree(v) } || { free(v) } ==> v.stop, { err("double free of %s!", mc_identifier(v)); }
  ;
}
