
sm error_path_annotator {
  decl any_scalar r;
  decl any_expr b;

  start:
    { r < 0 } ==> { true = on_error_path, false = start }
  ;

  on_error_path:
    ${1} ==> on_error_path, { annotate_ast(mc_stmt, "ERROR"); }
  ;
}
