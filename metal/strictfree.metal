
sm strict_free_checker {
  state decl any_pointer v;
  decl any_expr x;
  decl any_arguments args;
  decl any_fn_call fn;

  start:
    { kfree(v) } ==> v.freed
  ;

  v.freed:
    { kfree(v) } ==> v.stop, { err("double free of %s!", mc_identifier(v)); }
  | { printk(args) } && ${ mc_contains(mc_stmt, v) } ==> v.freed
  | { debug_print(args) } && ${ mc_contains(mc_stmt, v) } ==> v.freed
  | { dprintf(args) } && ${ mc_contains(mc_stmt, v) } ==> v.freed
  | { log_ptr(args) } && ${ mc_contains(mc_stmt, v) } ==> v.freed
  | { reinit(&v) } ==> v.stop
  | { pool_put(&v) } ==> v.stop
  | { recycle(&v) } ==> v.stop
  | { *v } || ${ mc_derefs(mc_stmt, v) } ==> v.stop,
      { err("use of %s after free!", mc_identifier(v)); }
  | { fn(args) } && ${ mc_contains(mc_stmt, v) } ==> v.stop,
      { err("freed pointer %s passed to %s!", mc_identifier(v), mc_identifier(fn)); }
  | { x = v } ==> v.stop, { err("freed pointer %s stored!", mc_identifier(v)); }
  ;
}
