
sm leak_checker {
  state decl any_pointer v;
  decl any_expr x;
  decl any_fn_call fn;
  decl any_arguments args;

  start:
    ({ v = kmalloc(x) } || { v = malloc(x) }) && ${ mc_is_ident(v) } ==> v.alloced
  ;

  v.alloced:
    { kfree(v) } || { free(v) } ==> v.stop
  | { v } && ${ mc_annotated(mc_stmt, "mc_branch") } ==> { true = v.alloced, false = v.stop }
  | { v } && ${ mc_annotated(mc_stmt, "mc_return") } ==> v.stop
  | { x = v } ==> v.stop
  | { fn(args) } && ${ mc_contains(mc_stmt, v) } ==> v.stop
  | $end_of_path$ ==> v.stop,
      { err("allocation stored in %s is never freed (leak)", mc_identifier(v)); }
  ;
}
