
sm lock_checker {
  state decl any_pointer l;

  start:
    { trylock(l) } ==> { true = l.locked, false = l.stop }
  | { lock(l) } || { spin_lock(l) } ==> l.locked
  | { unlock(l) } || { spin_unlock(l) } ==>
      { err("releasing unheld lock %s", mc_identifier(l)); }
  ;

  l.locked:
    { unlock(l) } || { spin_unlock(l) } ==> l.stop
  | { lock(l) } || { spin_lock(l) } || { trylock(l) } ==>
      { err("double acquire of lock %s", mc_identifier(l)); }
  | $end_of_path$ ==> l.stop, { err("lock %s never released", mc_identifier(l)); }
  ;
}
