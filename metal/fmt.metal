
sm fmt_checker {
  state decl any_pointer v;
  decl any_arguments args;
  decl any_expr x;

  start:
    { v = get_user_string(x) } || { v = read_line_from_user() } ==> v.tainted
  ;

  v.tainted:
    { printf(v) } || { printk(v) } || { syslog(x, v) } ==> v.stop,
      { annotate("SECURITY");
        err("user-controlled string %s used as a format string", mc_identifier(v)); }
  | { printf("%s", v) } || { printk("%s", v) } ==> v.stop
  | { sanitize_format(v) } ==> v.stop
  ;
}
