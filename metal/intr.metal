
sm intr_checker {
  is_enabled:
    { cli() } || { disable_interrupts() } ==> is_disabled
  | { sti() } || { enable_interrupts() } ==>
      { err("enabling interrupts that are already enabled"); }
  ;

  is_disabled:
    { sti() } || { enable_interrupts() } ==> is_enabled
  | { cli() } || { disable_interrupts() } ==>
      { err("disabling interrupts that are already disabled"); }
  | $end_of_path$ ==>
      { annotate("ERROR"); err("path ends with interrupts disabled!"); }
  ;
}
