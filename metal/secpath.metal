
sm security_path_annotator {
  decl any_arguments args;

  start:
    { get_user_pointer(args) } || { get_user_int(args) } || { syscall_arg(args) }
      ==> on_user_path
  ;

  on_user_path:
    ${1} ==> on_user_path, { annotate_ast(mc_stmt, "SECURITY"); }
  ;
}
