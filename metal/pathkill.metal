
sm path_kill {
  decl any_fn_call fn;
  decl any_arguments args;

  start:
    { fn(args) } && ${ mc_is_call_to(fn, "panic") || mc_is_call_to(fn, "BUG") || mc_is_call_to(fn, "assert_fail") || mc_is_call_to(fn, "exit") || mc_is_call_to(fn, "abort") } ==>
      { annotate_ast(mc_stmt, "mc_kill_path"); kill_path(); }
  ;
}
