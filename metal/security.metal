
sm user_pointer_checker {
  state decl any_pointer v;
  decl any_expr dst;
  decl any_expr len;

  start:
    { v = get_user_pointer(len) } || { v = syscall_arg(len) } ==> v.tainted
  ;

  v.tainted:
    { *v } || ${ mc_derefs(mc_stmt, v) } ==> v.stop,
      { annotate("SECURITY");
        err("dereferencing user pointer %s without validation", mc_identifier(v)); }
  | { copy_from_user(dst, v, len) } || { copy_to_user(v, dst, len) } ==> v.stop
  | { validate_user_pointer(v) } ==> { true = v.stop, false = v.tainted }
  ;
}
