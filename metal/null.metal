
sm null_checker {
  state decl any_pointer v;
  decl any_arguments args;

  start:
    { v = kmalloc(args) } || { v = malloc(args) } ==> v.unchecked
  ;

  v.unchecked:
    { v } ==> { true = v.ok, false = v.null }
  | { v == 0 } ==> { true = v.null, false = v.ok }
  | { v != 0 } ==> { true = v.ok, false = v.null }
  | { *v } || ${ mc_derefs(mc_stmt, v) } ==> v.stop,
      { err("dereferencing %s, which may be NULL (unchecked allocation)",
            mc_identifier(v)); }
  ;

  v.null:
    { *v } || ${ mc_derefs(mc_stmt, v) } ==> v.stop,
      { annotate("ERROR");
        err("dereferencing %s on a path where it is NULL", mc_identifier(v)); }
  ;

  v.ok:
    $end_of_path$ ==> v.stop
  ;
}
