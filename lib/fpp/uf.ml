module Imap = Map.Make (Int)

type t = { parent : int Imap.t; next : int }

let empty = { parent = Imap.empty; next = 0 }
let fresh t = ({ t with next = t.next + 1 }, t.next)

let rec find t x =
  match Imap.find_opt x t.parent with Some p when p <> x -> find t p | _ -> x

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then t else { t with parent = Imap.add ra rb t.parent }

let equal t a b = find t a = find t b
