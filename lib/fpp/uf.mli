(** Persistent union-find over integer class ids.

    Persistence matters: the false-path pruner's store is copied down each
    branch of the DFS and must revert on backtracking (Section 8), so the
    classic mutable union-find with path compression does not fit. Unions
    are by naive parent-link; [find] walks to the representative. Stores are
    small (a handful of tracked variables per path), so the lack of
    balancing is irrelevant in practice. *)

type t

val empty : t

val fresh : t -> t * int
(** Allocate a new singleton class. *)

val find : t -> int -> int
(** Representative of the class containing [x]. *)

val union : t -> int -> int -> t
(** Merge the two classes; the second argument's representative wins. *)

val equal : t -> int -> int -> bool
