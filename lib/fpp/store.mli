(** Per-path symbolic store for false-path pruning (Section 8).

    Implements the paper's algorithm:
    1. track variable assignments and comparisons to constants and to other
       variables, renaming on each assignment (a fresh class per definition);
    2. evaluate expressions from known constants, otherwise remember the
       whole expression (congruence: syntactically equal expressions over
       the same operand classes share a class);
    3. havoc loop-assigned variables;
    4. derive equalities via a congruence-closure union-find and keep
       disequalities and orderings between classes;
    5. decide branch conditions from constants and class relations;
    (step 6, summary rollback, lives in the engine).

    The store is persistent: the engine copies it down each DFS branch and
    discards it on backtrack. *)

type t

type verdict = True | False | Unknown

val create : unit -> t
(** An empty store starting a fresh {e family}: every store derived from
    it shares one append-only variable-interning table (names are resolved
    to dense ints once; the class maps are int-keyed). The table is
    mutated without synchronisation, so a family must stay within one
    domain — the engine makes one per root context. *)

val empty : t
(** A process-wide shared family, for single-domain callers and tests.
    Domain-parallel callers must use {!create}. *)

val assign : t -> string -> Cast.expr -> t
(** [assign t x e] records [x = e]: [x] gets a fresh binding equal to the
    class of [e] (constants fold; unknown [e] yields a congruence class keyed
    by [e]'s shape). *)

val assign_unknown : t -> string -> t
(** [x] was redefined by something we cannot model (e.g. via a pointer). *)

val havoc : t -> string list -> t
(** Forget the listed variables (loop rule). *)

val eval : t -> Cast.expr -> int64 option
(** Constant value of [e] under the store, if known. *)

val decide : t -> Cast.expr -> verdict
(** Truth of a branch condition under the store. *)

val assume : t -> Cast.expr -> bool -> t
(** [assume t cond taken] refines the store with the knowledge that [cond]
    evaluated to [taken]. Contradictory assumptions are possible only when
    [decide] answered [Unknown]; the refined store then simply records the
    new facts. *)

val pp : Format.formatter -> t -> unit
