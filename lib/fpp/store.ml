module Smap = Map.Make (String)
module Imap = Map.Make (Int)
module I64map = Map.Make (Int64)

(* Variable names are interned to dense ints in a per-family table so the
   hot maps below are int-keyed. The table is shared (mutably, append-only)
   by every store derived from one [create] call — the engine makes one
   family per root context, so the table never crosses domains. *)
type vartab = { names : (string, int) Hashtbl.t; mutable next : int }

type t = {
  vars : vartab;
  uf : Uf.t;
  env : int Imap.t;  (* var id -> class id *)
  consts : int64 Imap.t;  (* class repr -> known constant *)
  const_class : int I64map.t;  (* constant -> its class *)
  terms : int Imap.t;  (* packed congruence key -> class *)
  terms_spill : int Smap.t;  (* rendered keys whose classes overflow the packing *)
  diseqs : (int * int) list;
  lts : (int * int) list;  (* (a, b) means a < b *)
  les : (int * int) list;  (* (a, b) means a <= b *)
}

type verdict = True | False | Unknown

let create () =
  {
    vars = { names = Hashtbl.create 16; next = 0 };
    uf = Uf.empty;
    env = Imap.empty;
    consts = Imap.empty;
    const_class = I64map.empty;
    terms = Imap.empty;
    terms_spill = Smap.empty;
    diseqs = [];
    lts = [];
    les = [];
  }

let empty = create ()

let var_id t x =
  match Hashtbl.find_opt t.vars.names x with
  | Some id -> id
  | None ->
      let id = t.vars.next in
      t.vars.next <- id + 1;
      Hashtbl.add t.vars.names x id;
      id

let const_of t c = Imap.find_opt (Uf.find t.uf c) t.consts

let class_of_const t n =
  match I64map.find_opt n t.const_class with
  | Some c -> (t, c)
  | None ->
      let uf, c = Uf.fresh t.uf in
      ( {
          t with
          uf;
          consts = Imap.add c n t.consts;
          const_class = I64map.add n c t.const_class;
        },
        c )

(* Merge two classes; constants are carried to the surviving repr. A
   constant conflict means the path is infeasible, but [decide] catches that
   case before [assume] is ever called with it, so we just keep one value. *)
let merge t a b =
  let ra = Uf.find t.uf a and rb = Uf.find t.uf b in
  if ra = rb then t
  else
    let uf = Uf.union t.uf ra rb in
    let rb' = Uf.find uf rb in
    let consts =
      match Imap.find_opt ra t.consts with
      | Some n -> Imap.add rb' n t.consts
      | None -> t.consts
    in
    { t with uf; consts }

let class_of_var t x =
  let vx = var_id t x in
  match Imap.find_opt vx t.env with
  | Some c -> (t, c)
  | None ->
      let uf, c = Uf.fresh t.uf in
      ({ t with uf; env = Imap.add vx c t.env }, c)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let rec eval t (e : Cast.expr) : int64 option =
  let ( let* ) = Option.bind in
  match e.enode with
  | Cast.Eint n -> Some n
  | Cast.Echar c -> Some (Int64.of_int (Char.code c))
  | Cast.Eident x -> (
      match Hashtbl.find_opt t.vars.names x with
      | Some vx -> (
          match Imap.find_opt vx t.env with Some c -> const_of t c | None -> None)
      | None -> None)
  | Cast.Eunary (Cast.Neg, e1) ->
      let* v = eval t e1 in
      Some (Int64.neg v)
  | Cast.Eunary (Cast.Lognot, e1) ->
      let* v = eval t e1 in
      Some (if Int64.equal v 0L then 1L else 0L)
  | Cast.Eunary (Cast.Bitnot, e1) ->
      let* v = eval t e1 in
      Some (Int64.lognot v)
  | Cast.Ebinary (op, l, r) -> (
      let* a = eval t l in
      let* b = eval t r in
      let bool_ c = Some (if c then 1L else 0L) in
      match op with
      | Cast.Add -> Some (Int64.add a b)
      | Cast.Sub -> Some (Int64.sub a b)
      | Cast.Mul -> Some (Int64.mul a b)
      | Cast.Div -> if Int64.equal b 0L then None else Some (Int64.div a b)
      | Cast.Mod -> if Int64.equal b 0L then None else Some (Int64.rem a b)
      | Cast.Shl -> Some (Int64.shift_left a (Int64.to_int b land 63))
      | Cast.Shr -> Some (Int64.shift_right a (Int64.to_int b land 63))
      | Cast.Lt -> bool_ (Int64.compare a b < 0)
      | Cast.Gt -> bool_ (Int64.compare a b > 0)
      | Cast.Le -> bool_ (Int64.compare a b <= 0)
      | Cast.Ge -> bool_ (Int64.compare a b >= 0)
      | Cast.Eq -> bool_ (Int64.equal a b)
      | Cast.Ne -> bool_ (not (Int64.equal a b))
      | Cast.Band -> Some (Int64.logand a b)
      | Cast.Bor -> Some (Int64.logor a b)
      | Cast.Bxor -> Some (Int64.logxor a b)
      | Cast.Land -> bool_ ((not (Int64.equal a 0L)) && not (Int64.equal b 0L))
      | Cast.Lor -> bool_ ((not (Int64.equal a 0L)) || not (Int64.equal b 0L)))
  | Cast.Ecast (_, e1) | Cast.Ecomma (_, e1) -> eval t e1
  | Cast.Eassign (None, _, r) -> eval t r
  | _ -> None

(* Congruence keys pack (operator, left class repr, right class repr) into
   one int: the operator code above two 20-bit biased class fields (unary
   terms carry -1, biased to 0, on the right). Class ids count [Uf.fresh]
   calls along one path — far below the field limit in practice; the
   pathological overflow falls back to the rendered-string key with
   identical semantics, so no sprintf runs on the common path. *)
let term_lim = 1 lsl 20

let pack_term op a b =
  if a + 1 < term_lim && b + 1 < term_lim then
    Some ((op lsl 40) lor ((a + 1) lsl 20) lor (b + 1))
  else None

let binop_code = function
  | Cast.Add -> 3
  | Cast.Sub -> 4
  | Cast.Mul -> 5
  | Cast.Div -> 6
  | Cast.Mod -> 7
  | Cast.Band -> 8
  | Cast.Bor -> 9
  | Cast.Bxor -> 10
  | Cast.Shl -> 11
  | Cast.Shr -> 12
  | _ -> 0 (* unreachable: callers guard on the trackable operators *)

(* Class of an expression, creating classes as needed. [None] when the
   expression's shape cannot be tracked (calls, memory accesses). *)
let rec class_of_expr t (e : Cast.expr) : t * int option =
  match eval t e with
  | Some n ->
      let t, c = class_of_const t n in
      (t, Some c)
  | None -> (
      match e.enode with
      | Cast.Eident x ->
          let t, c = class_of_var t x in
          (t, Some c)
      | Cast.Eunary (((Cast.Neg | Cast.Bitnot) as u), e1) -> (
          let t, c1 = class_of_expr t e1 in
          match c1 with
          | None -> (t, None)
          | Some c1 ->
              let op = match u with Cast.Neg -> 1 | _ -> 2 in
              let r1 = Uf.find t.uf c1 in
              term_class t
                ~packed:(pack_term op r1 (-1))
                ~render:(fun () ->
                  Printf.sprintf "u%s:%d"
                    (match u with Cast.Neg -> "-" | _ -> "~")
                    r1))
      | Cast.Ebinary (op, l, r)
        when (match op with
             | Cast.Add | Cast.Sub | Cast.Mul | Cast.Div | Cast.Mod | Cast.Band
             | Cast.Bor | Cast.Bxor | Cast.Shl | Cast.Shr ->
                 true
             | _ -> false) -> (
          let t, cl = class_of_expr t l in
          match cl with
          | None -> (t, None)
          | Some cl -> (
              let t, cr = class_of_expr t r in
              match cr with
              | None -> (t, None)
              | Some cr ->
                  let rl = Uf.find t.uf cl and rr = Uf.find t.uf cr in
                  term_class t
                    ~packed:(pack_term (binop_code op) rl rr)
                    ~render:(fun () ->
                      Format.asprintf "b%a:%d:%d" Cast.pp_binop op rl rr)))
      | Cast.Ecast (_, e1) -> class_of_expr t e1
      | _ -> (t, None))

and term_class t ~packed ~render =
  match packed with
  | Some key -> (
      match Imap.find_opt key t.terms with
      | Some c -> (t, Some c)
      | None ->
          let uf, c = Uf.fresh t.uf in
          ({ t with uf; terms = Imap.add key c t.terms }, Some c))
  | None -> (
      let key = render () in
      match Smap.find_opt key t.terms_spill with
      | Some c -> (t, Some c)
      | None ->
          let uf, c = Uf.fresh t.uf in
          ({ t with uf; terms_spill = Smap.add key c t.terms_spill }, Some c))

(* ------------------------------------------------------------------ *)
(* Updates                                                             *)
(* ------------------------------------------------------------------ *)

let assign t x e =
  let t, cls = class_of_expr t e in
  match cls with
  | Some c -> { t with env = Imap.add (var_id t x) c t.env }
  | None ->
      let uf, c = Uf.fresh t.uf in
      { t with uf; env = Imap.add (var_id t x) c t.env }

let assign_unknown t x =
  let uf, c = Uf.fresh t.uf in
  { t with uf; env = Imap.add (var_id t x) c t.env }

let havoc t vars =
  (* a never-interned variable has no binding; don't intern it just to
     remove nothing *)
  {
    t with
    env =
      List.fold_left
        (fun m v ->
          match Hashtbl.find_opt t.vars.names v with
          | Some id -> Imap.remove id m
          | None -> m)
        t.env vars;
  }

(* ------------------------------------------------------------------ *)
(* Relations                                                           *)
(* ------------------------------------------------------------------ *)

let same_pair t (a, b) (x, y) =
  let f = Uf.find t.uf in
  (f a = f x && f b = f y) || (f a = f y && f b = f x)

let ordered_pair t (a, b) (x, y) =
  let f = Uf.find t.uf in
  f a = f x && f b = f y

let has_diseq t a b = List.exists (fun p -> same_pair t p (a, b)) t.diseqs
let has_lt t a b = List.exists (fun p -> ordered_pair t p (a, b)) t.lts
let has_le t a b = List.exists (fun p -> ordered_pair t p (a, b)) t.les

(* One-hop bounds through the recorded relations and class constants:
   [upper t c = Some (u, strict)] means c < u (strict) or c <= u. *)
let upper t c =
  let cands =
    (match const_of t c with Some v -> [ (v, false) ] | None -> [])
    @ List.filter_map
        (fun (a, b) ->
          if Uf.find t.uf a = Uf.find t.uf c then
            match const_of t b with Some v -> Some (v, true) | None -> None
          else None)
        t.lts
    @ List.filter_map
        (fun (a, b) ->
          if Uf.find t.uf a = Uf.find t.uf c then
            match const_of t b with Some v -> Some (v, false) | None -> None
          else None)
        t.les
  in
  List.fold_left
    (fun best (v, s) ->
      match best with
      | None -> Some (v, s)
      | Some (bv, bs) ->
          if Int64.compare v bv < 0 || (Int64.equal v bv && s && not bs) then Some (v, s)
          else best)
    None cands

let lower t c =
  let cands =
    (match const_of t c with Some v -> [ (v, false) ] | None -> [])
    @ List.filter_map
        (fun (a, b) ->
          if Uf.find t.uf b = Uf.find t.uf c then
            match const_of t a with Some v -> Some (v, true) | None -> None
          else None)
        t.lts
    @ List.filter_map
        (fun (a, b) ->
          if Uf.find t.uf b = Uf.find t.uf c then
            match const_of t a with Some v -> Some (v, false) | None -> None
          else None)
        t.les
  in
  List.fold_left
    (fun best (v, s) ->
      match best with
      | None -> Some (v, s)
      | Some (bv, bs) ->
          if Int64.compare v bv > 0 || (Int64.equal v bv && s && not bs) then Some (v, s)
          else best)
    None cands

type rel = Req | Rne | Rlt | Rle

let negate_rel = function
  | Req -> (Rne, false)
  | Rne -> (Req, false)
  | Rlt -> (Rle, true)  (* !(a<b) = b<=a: swap *)
  | Rle -> (Rlt, true)  (* !(a<=b) = b<a: swap *)

(* Normalize a condition to (lhs, rel, rhs, swap). *)
let normalize (e : Cast.expr) : (Cast.expr * rel * Cast.expr * bool) option =
  match e.enode with
  | Cast.Ebinary (Cast.Eq, a, b) -> Some (a, Req, b, false)
  | Cast.Ebinary (Cast.Ne, a, b) -> Some (a, Rne, b, false)
  | Cast.Ebinary (Cast.Lt, a, b) -> Some (a, Rlt, b, false)
  | Cast.Ebinary (Cast.Gt, a, b) -> Some (b, Rlt, a, false)
  | Cast.Ebinary (Cast.Le, a, b) -> Some (a, Rle, b, false)
  | Cast.Ebinary (Cast.Ge, a, b) -> Some (b, Rle, a, false)
  | _ -> Some (e, Rne, Cast.intlit 0L, false)

(* A < B is provable from a direct relation or via constant bounds:
   A (<|<=) u and l (<|<=) B with u < l, or u = l and one side strict. *)
let lt_holds t a b =
  has_lt t a b
  ||
  match (upper t a, lower t b) with
  | Some (ua, sa), Some (lb, sb) ->
      Int64.compare ua lb < 0 || (Int64.equal ua lb && (sa || sb))
  | _ -> false

(* A >= B via direct relation or bounds: lower(A) >= upper(B). *)
let ge_holds t a b =
  has_le t b a || has_lt t b a
  ||
  match (lower t a, upper t b) with
  | Some (la, _), Some (ub, _) -> Int64.compare la ub >= 0
  | _ -> false

let le_holds t a b =
  has_le t a b || has_lt t a b || lt_holds t a b
  ||
  match (upper t a, lower t b) with
  | Some (ua, _), Some (lb, _) -> Int64.compare ua lb <= 0
  | _ -> false

let rec decide t (e : Cast.expr) : verdict =
  match eval t e with
  | Some n -> if Int64.equal n 0L then False else True
  | None -> (
      match e.enode with
      | Cast.Eunary (Cast.Lognot, e1) -> (
          match decide t e1 with True -> False | False -> True | Unknown -> Unknown)
      | _ -> (
          match normalize e with
          | None -> Unknown
          | Some (a, rel, b, _) -> (
              let t, ca = class_of_expr t a in
              let t, cb = class_of_expr t b in
              match (ca, cb) with
              | Some ca, Some cb -> (
                  let eq = Uf.equal t.uf ca cb in
                  let consts_known =
                    match (const_of t ca, const_of t cb) with
                    | Some x, Some y -> Some (Int64.compare x y)
                    | _ -> None
                  in
                  match rel with
                  | Req ->
                      if eq then True
                      else if has_diseq t ca cb || has_lt t ca cb || has_lt t cb ca then
                        False
                      else (
                        match consts_known with
                        | Some 0 -> True
                        | Some _ -> False
                        | None -> Unknown)
                  | Rne -> (
                      match decide t { e with enode = Cast.Ebinary (Cast.Eq, a, b) } with
                      | True -> False
                      | False -> True
                      | Unknown -> Unknown)
                  | Rlt ->
                      if eq then False
                      else if lt_holds t ca cb then True
                      else if ge_holds t ca cb then False
                      else (
                        match consts_known with
                        | Some c -> if c < 0 then True else False
                        | None -> Unknown)
                  | Rle ->
                      if eq || le_holds t ca cb then True
                      else if lt_holds t cb ca then False
                      else (
                        match consts_known with
                        | Some c -> if c <= 0 then True else False
                        | None -> Unknown))
              | _ -> Unknown)))

let rec assume t (e : Cast.expr) taken =
  match e.enode with
  | Cast.Eunary (Cast.Lognot, e1) ->
      (* should have been lowered away, but be safe *)
      assume_pos t e1 (not taken)
  | _ -> assume_pos t e taken

and assume_pos t e taken =
  match normalize e with
  | None -> t
  | Some (a, rel, b, _) -> (
      let rel, swapped = if taken then (rel, false) else negate_rel rel in
      let a, b = if swapped then (b, a) else (a, b) in
      let t, ca = class_of_expr t a in
      let t, cb = class_of_expr t b in
      match (ca, cb) with
      | Some ca, Some cb -> (
          match rel with
          | Req -> merge t ca cb
          | Rne -> { t with diseqs = (ca, cb) :: t.diseqs }
          | Rlt -> { t with lts = (ca, cb) :: t.lts }
          | Rle -> { t with les = (ca, cb) :: t.les })
      | _ -> t)

let pp ppf t =
  Format.fprintf ppf "@[<v>store:";
  let bound =
    Hashtbl.fold
      (fun x id acc ->
        match Imap.find_opt id t.env with Some c -> (x, c) :: acc | None -> acc)
      t.vars.names []
  in
  List.iter
    (fun (x, c) ->
      match const_of t c with
      | Some n -> Format.fprintf ppf "@ %s = %Ld (class %d)" x n (Uf.find t.uf c)
      | None -> Format.fprintf ppf "@ %s : class %d" x (Uf.find t.uf c))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) bound);
  List.iter (fun (a, b) -> Format.fprintf ppf "@ class %d != class %d" a b) t.diseqs;
  List.iter (fun (a, b) -> Format.fprintf ppf "@ class %d < class %d" a b) t.lts;
  List.iter (fun (a, b) -> Format.fprintf ppf "@ class %d <= class %d" a b) t.les;
  Format.fprintf ppf "@]"
