let source =
  {|
sm intr_checker {
  is_enabled:
    { cli() } || { disable_interrupts() } ==> is_disabled
  | { sti() } || { enable_interrupts() } ==>
      { err("enabling interrupts that are already enabled"); }
  ;

  is_disabled:
    { sti() } || { enable_interrupts() } ==> is_enabled
  | { cli() } || { disable_interrupts() } ==>
      { err("disabling interrupts that are already disabled"); }
  | $end_of_path$ ==>
      { annotate("ERROR"); err("path ends with interrupts disabled!"); }
  ;
}
|}

let checker () =
  match Metal_compile.load ~file:"intr_checker.metal" source with
  | [ sm ] -> sm
  | _ -> invalid_arg "intr_checker: expected exactly one sm"
