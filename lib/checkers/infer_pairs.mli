(** Statistical inference of must-be-paired functions ("bugs as deviant
    behavior" [10], summarised in Section 3.2):

    "to infer whether routines a and b must be paired: (1) assume that they
    must, (2) count the number of times they occur together and (3) count
    the number of times they do not (rule violations). The reported
    violations are then sorted using a statistical significance test."

    [candidates] proposes (a, b) pairs from syntactic co-occurrence;
    [checker_for] builds a per-pair extension whose actions bump the
    example/counterexample counters; [run] executes them all and ranks the
    inferred rules by z-statistic. *)

val candidates : Supergraph.t -> ?min_support:int -> unit -> (string * string) list
(** Pairs (a, b) such that a call to [a] precedes a call to [b] in at least
    [min_support] (default 2) function bodies, both functions being
    undefined in the program (library-level primitives). *)

val checker_for : string * string -> Sm.t

val pair_rule : string * string -> string
(** The rule key used in counters/reports, ["a/b"]. *)

val run :
  ?options:Engine.options ->
  Supergraph.t ->
  pairs:(string * string) list ->
  Engine.result * (string * float) list
(** Returns the engine result (with one checker per pair) and the inferred
    rules ranked by z-statistic. *)
