let rec assigned_calls acc (e : Cast.expr) =
  let acc =
    match e.enode with
    | Cast.Eassign (None, _, { enode = Cast.Ecall ({ enode = Cast.Eident f; _ }, _); _ })
      ->
        f :: acc
    | _ -> acc
  in
  let children =
    match e.enode with
    | Cast.Eunary (_, e1)
    | Cast.Ecast (_, e1)
    | Cast.Esizeof_expr e1
    | Cast.Efield (e1, _)
    | Cast.Earrow (e1, _) ->
        [ e1 ]
    | Cast.Ebinary (_, l, r)
    | Cast.Eassign (_, l, r)
    | Cast.Eindex (l, r)
    | Cast.Ecomma (l, r) ->
        [ l; r ]
    | Cast.Econd (c, t, f) -> [ c; t; f ]
    | Cast.Ecall (f, args) -> f :: args
    | Cast.Einit_list es -> es
    | _ -> []
  in
  List.fold_left assigned_calls acc children

let rec stmt_assigned_calls acc (s : Cast.stmt) =
  match s.snode with
  | Cast.Sexpr e -> assigned_calls acc e
  | Cast.Sdecl ds ->
      List.fold_left
        (fun acc (d : Cast.decl) ->
          match d.dinit with
          | Some { enode = Cast.Ecall ({ enode = Cast.Eident f; _ }, _); _ } -> f :: acc
          | Some e -> assigned_calls acc e
          | None -> acc)
        acc ds
  | Cast.Sif (c, t, e) ->
      let acc = assigned_calls acc c in
      let acc = stmt_assigned_calls acc t in
      Option.fold ~none:acc ~some:(stmt_assigned_calls acc) e
  | Cast.Swhile (c, b) -> stmt_assigned_calls (assigned_calls acc c) b
  | Cast.Sdo (b, c) -> assigned_calls (stmt_assigned_calls acc b) c
  | Cast.Sfor (init, c, step, b) ->
      let acc = Option.fold ~none:acc ~some:(stmt_assigned_calls acc) init in
      let acc = Option.fold ~none:acc ~some:(assigned_calls acc) c in
      let acc = Option.fold ~none:acc ~some:(assigned_calls acc) step in
      stmt_assigned_calls acc b
  | Cast.Sreturn (Some e) -> assigned_calls acc e
  | Cast.Sblock ss -> List.fold_left stmt_assigned_calls acc ss
  | Cast.Sswitch (e, cases) ->
      let acc = assigned_calls acc e in
      List.fold_left
        (fun acc (c : Cast.case) -> List.fold_left stmt_assigned_calls acc c.case_body)
        acc cases
  | Cast.Slabel (_, s) -> stmt_assigned_calls acc s
  | Cast.Sreturn None | Cast.Sbreak | Cast.Scontinue | Cast.Sgoto _ | Cast.Snull -> acc

let candidates (sg : Supergraph.t) =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (f : Cast.fundef) ->
      List.iter
        (fun callee ->
          if Option.is_none (Supergraph.cfg_of sg callee) then
            Hashtbl.replace counts callee
              (1 + Option.value (Hashtbl.find_opt counts callee) ~default:0))
        (stmt_assigned_calls [] f.fbody))
    (Ctyping.fundefs sg.Supergraph.typing);
  Hashtbl.fold (fun f n acc -> if n >= 2 then f :: acc else acc) counts []
  |> List.sort String.compare

let checker_for fname =
  let src =
    Printf.sprintf
      {|
sm nullcheck_%s {
  state decl any_pointer v;
  decl any_arguments args;

  start:
    { v = %s(args) } ==> v.fresh
  ;

  v.fresh:
    { v } ==> { true = v.ok, false = v.ok },
      { example("%s"); }
  | { v == 0 } ==> { true = v.ok, false = v.ok },
      { example("%s"); }
  | { v != 0 } ==> { true = v.ok, false = v.ok },
      { example("%s"); }
  | { *v } ==> v.stop,
      { counterexample("%s"); set_rule("%s");
        err("result of %s() dereferenced without a null check"); }
  ;

  v.ok:
    $end_of_path$ ==> v.stop
  ;
}
|}
      fname fname fname fname fname fname fname fname
  in
  match Metal_compile.load ~file:(fname ^ "_nullcheck.metal") src with
  | [ sm ] -> sm
  | _ -> invalid_arg "infer_nullcheck: expected exactly one sm"

let run ?options sg ~funcs =
  let checkers = List.map checker_for funcs in
  let result = Engine.run ?options sg checkers in
  (result, Zstat.rank_rules result.Engine.counters)
