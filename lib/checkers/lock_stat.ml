let source =
  {|
sm lock_stat {
  state decl any_pointer l;

  start:
    { lock(l) } ==> l.locked
  | { trylock(l) } ==> { true = l.locked, false = l.stop }
  | { unlock(l) } ==>
      { counterexample_in_func(); set_rule_to_func();
        err("%s released without acquire", mc_identifier(l)); }
  ;

  l.locked:
    { unlock(l) } ==> l.stop, { example_in_func(); }
  | $end_of_path$ ==> l.stop,
      { counterexample_in_func(); set_rule_to_func();
        err("%s acquired but not released", mc_identifier(l)); }
  ;
}
|}

let checker () =
  match Metal_compile.load ~file:"lock_stat.metal" source with
  | [ sm ] -> sm
  | _ -> invalid_arg "lock_stat: expected exactly one sm"

let run ?options sg =
  let options =
    Option.value options
      ~default:{ Engine.default_options with Engine.interproc = false }
  in
  let result = Engine.run ~options sg [ checker () ] in
  (result, Zstat.rank_rules result.Engine.counters)
