module Smap = Map.Make (String)

let rec call_names_in_order acc (s : Cast.stmt) =
  let rec of_expr acc (e : Cast.expr) =
    let acc =
      match e.enode with
      | Cast.Ecall ({ enode = Cast.Eident f; _ }, _) -> f :: acc
      | _ -> acc
    in
    let children =
      match e.enode with
      | Cast.Eunary (_, e1)
      | Cast.Ecast (_, e1)
      | Cast.Esizeof_expr e1
      | Cast.Efield (e1, _)
      | Cast.Earrow (e1, _) ->
          [ e1 ]
      | Cast.Ebinary (_, l, r)
      | Cast.Eassign (_, l, r)
      | Cast.Eindex (l, r)
      | Cast.Ecomma (l, r) ->
          [ l; r ]
      | Cast.Econd (c, t, f) -> [ c; t; f ]
      | Cast.Ecall (f, args) -> f :: args
      | Cast.Einit_list es -> es
      | _ -> []
    in
    List.fold_left of_expr acc children
  in
  match s.snode with
  | Cast.Sexpr e -> of_expr acc e
  | Cast.Sdecl ds ->
      List.fold_left
        (fun acc (d : Cast.decl) ->
          match d.dinit with Some e -> of_expr acc e | None -> acc)
        acc ds
  | Cast.Sif (c, t, e) ->
      let acc = of_expr acc c in
      let acc = call_names_in_order acc t in
      Option.fold ~none:acc ~some:(call_names_in_order acc) e
  | Cast.Swhile (c, b) -> call_names_in_order (of_expr acc c) b
  | Cast.Sdo (b, c) -> of_expr (call_names_in_order acc b) c
  | Cast.Sfor (init, c, step, b) ->
      let acc = Option.fold ~none:acc ~some:(call_names_in_order acc) init in
      let acc = Option.fold ~none:acc ~some:(of_expr acc) c in
      let acc = Option.fold ~none:acc ~some:(of_expr acc) step in
      call_names_in_order acc b
  | Cast.Sblock ss -> List.fold_left call_names_in_order acc ss
  | Cast.Sswitch (e, cases) ->
      let acc = of_expr acc e in
      List.fold_left
        (fun acc (c : Cast.case) ->
          List.fold_left call_names_in_order acc c.case_body)
        acc cases
  | Cast.Slabel (_, s) -> call_names_in_order acc s
  | Cast.Sreturn (Some e) -> of_expr acc e
  | Cast.Sreturn None | Cast.Sbreak | Cast.Scontinue | Cast.Sgoto _ | Cast.Snull -> acc

let candidates (sg : Supergraph.t) ?(min_support = 2) () =
  let support : (string * string, int) Hashtbl.t = Hashtbl.create 32 in
  let defined f = Option.is_some (Supergraph.cfg_of sg f) in
  List.iter
    (fun (f : Cast.fundef) ->
      let calls = List.rev (call_names_in_order [] f.fbody) in
      let calls = List.filter (fun c -> not (defined c)) calls in
      (* each (a, b) with a strictly before b, once per function *)
      let seen = Hashtbl.create 8 in
      let rec walk = function
        | [] -> ()
        | a :: rest ->
            List.iter
              (fun b ->
                if (not (String.equal a b)) && not (Hashtbl.mem seen (a, b)) then begin
                  Hashtbl.replace seen (a, b) ();
                  Hashtbl.replace support (a, b)
                    (1 + Option.value (Hashtbl.find_opt support (a, b)) ~default:0)
                end)
              rest;
            walk rest
      in
      walk calls)
    (Ctyping.fundefs sg.Supergraph.typing);
  Hashtbl.fold
    (fun (a, b) n acc -> if n >= min_support then (a, b) :: acc else acc)
    support []
  |> List.sort compare

let pair_rule (a, b) = Printf.sprintf "%s/%s" a b

let checker_for (a, b) =
  let rule = pair_rule (a, b) in
  let src =
    Printf.sprintf
      {|
sm pair_%s_%s {
  decl any_arguments args;
  decl any_arguments args2;

  start:
    { %s(args) } ==> opened
  ;

  opened:
    { %s(args2) } ==> start, { example("%s"); }
  | $end_of_path$ ==>
      { counterexample("%s");
        set_rule("%s");
        err("call to %s is not followed by %s on this path"); }
  ;
}
|}
      a b a b rule rule rule a b
  in
  match Metal_compile.load ~file:(rule ^ ".metal") src with
  | [ sm ] -> sm
  | _ -> invalid_arg "infer_pairs: expected exactly one sm"

let run ?options sg ~pairs =
  let checkers = List.map checker_for pairs in
  let result = Engine.run ?options sg checkers in
  let ranking = Zstat.rank_rules result.Engine.counters in
  (result, ranking)
