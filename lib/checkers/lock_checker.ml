let source =
  {|
sm lock_checker {
  state decl any_pointer l;

  start:
    { trylock(l) } ==> { true = l.locked, false = l.stop }
  | { lock(l) } || { spin_lock(l) } ==> l.locked
  | { unlock(l) } || { spin_unlock(l) } ==>
      { err("releasing unheld lock %s", mc_identifier(l)); }
  ;

  l.locked:
    { unlock(l) } || { spin_unlock(l) } ==> l.stop
  | { lock(l) } || { spin_lock(l) } || { trylock(l) } ==>
      { err("double acquire of lock %s", mc_identifier(l)); }
  | $end_of_path$ ==> l.stop, { err("lock %s never released", mc_identifier(l)); }
  ;
}
|}

(* Section 3.2: "we could extend the lock checker ... to handle recursive
   locks by using the data values in each instance of l to track the
   current depth of the lock". *)
let recursive_source =
  {|
sm recursive_lock_checker {
  state decl any_pointer l;

  start:
    { rlock(l) } ==> l.held, { incr("depth"); }
  | { runlock(l) } ==> { err("releasing unheld recursive lock %s", mc_identifier(l)); }
  ;

  l.held:
    { rlock(l) } ==> l.held,
      { incr("depth");
        err_if_over("depth", 8, "recursive lock depth exceeds bound"); }
  | { runlock(l) } ==> l.held,
      { decr("depth");
        err_if_under("depth", 0, "unbalanced recursive unlock"); }
  | $end_of_path$ ==> l.stop,
      { err_if_over("depth", 0, "recursive lock still held at exit"); }
  ;
}
|}

let compile_one name src =
  match Metal_compile.load ~file:name src with
  | [ sm ] -> sm
  | _ -> invalid_arg (name ^ ": expected exactly one sm")

let checker () = compile_one "lock_checker.metal" source
let recursive_checker () = compile_one "recursive_lock_checker.metal" recursive_source
