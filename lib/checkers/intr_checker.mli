(** Interrupt-state checker — a purely global-state extension ("interrupts
    are disabled" is the paper's example of a program-wide property).

    Flags re-disabling, re-enabling, and paths that end with interrupts
    still disabled. *)

val source : string
val checker : unit -> Sm.t
