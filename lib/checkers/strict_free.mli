(** The "conservative" free checker of Section 8 ("Targeted suppression of
    false positives"): it flags {e every} use of a freed pointer, not just
    dereferences. The paper reports two classes of false positives for this
    checker — freed pointers passed to debugging print functions, and (in
    BSD) addresses of freed variables passed to reinitialising functions —
    and suppresses both with eight extra lines of metal. We reproduce the
    checker and the suppression. *)

val source : strict:bool -> string
(** [strict:true] is the conservative checker; [strict:false] adds the
    suppression transitions for the idioms above. *)

val checker : suppress_idioms:bool -> Sm.t

val default_debug_fns : string list
val default_reinit_fns : string list
