(* Flow-insensitive "which functions free their arguments" fixpoint. *)

let rec calls_in_expr acc (e : Cast.expr) =
  let acc = match e.enode with Cast.Ecall _ -> e :: acc | _ -> acc in
  let children =
    match e.enode with
    | Cast.Eunary (_, e1)
    | Cast.Ecast (_, e1)
    | Cast.Esizeof_expr e1
    | Cast.Efield (e1, _)
    | Cast.Earrow (e1, _) ->
        [ e1 ]
    | Cast.Ebinary (_, l, r)
    | Cast.Eassign (_, l, r)
    | Cast.Eindex (l, r)
    | Cast.Ecomma (l, r) ->
        [ l; r ]
    | Cast.Econd (c, t, f) -> [ c; t; f ]
    | Cast.Ecall (f, args) -> f :: args
    | Cast.Einit_list es -> es
    | _ -> []
  in
  List.fold_left calls_in_expr acc children

let rec calls_in_stmt acc (s : Cast.stmt) =
  match s.snode with
  | Cast.Sexpr e -> calls_in_expr acc e
  | Cast.Sdecl ds ->
      List.fold_left
        (fun acc (d : Cast.decl) ->
          match d.dinit with Some e -> calls_in_expr acc e | None -> acc)
        acc ds
  | Cast.Sif (c, t, e) ->
      let acc = calls_in_expr acc c in
      let acc = calls_in_stmt acc t in
      Option.fold ~none:acc ~some:(calls_in_stmt acc) e
  | Cast.Swhile (c, b) -> calls_in_stmt (calls_in_expr acc c) b
  | Cast.Sdo (b, c) -> calls_in_expr (calls_in_stmt acc b) c
  | Cast.Sfor (init, c, step, b) ->
      let acc = Option.fold ~none:acc ~some:(calls_in_stmt acc) init in
      let acc = Option.fold ~none:acc ~some:(calls_in_expr acc) c in
      let acc = Option.fold ~none:acc ~some:(calls_in_expr acc) step in
      calls_in_stmt acc b
  | Cast.Sreturn (Some e) -> calls_in_expr acc e
  | Cast.Sblock ss -> List.fold_left calls_in_stmt acc ss
  | Cast.Sswitch (e, cases) ->
      let acc = calls_in_expr acc e in
      List.fold_left
        (fun acc (c : Cast.case) -> List.fold_left calls_in_stmt acc c.case_body)
        acc cases
  | Cast.Slabel (_, s) -> calls_in_stmt acc s
  | Cast.Sreturn None | Cast.Sbreak | Cast.Scontinue | Cast.Sgoto _ | Cast.Snull -> acc

let freeing_functions (sg : Supergraph.t) ~dealloc =
  let frees : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace frees f 0) dealloc;
  let funcs = Ctyping.fundefs sg.Supergraph.typing in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Cast.fundef) ->
        if not (Hashtbl.mem frees f.fname) then begin
          let param_names = List.map fst f.fparams in
          let calls = calls_in_stmt [] f.fbody in
          List.iter
            (fun (call : Cast.expr) ->
              match call.enode with
              | Cast.Ecall ({ enode = Cast.Eident callee; _ }, args) -> (
                  match Hashtbl.find_opt frees callee with
                  | Some freed_idx -> (
                      match List.nth_opt args freed_idx with
                      | Some { enode = Cast.Eident arg; _ } -> (
                          match
                            List.find_index (String.equal arg) param_names
                          with
                          | Some j when not (Hashtbl.mem frees f.fname) ->
                              Hashtbl.replace frees f.fname j;
                              changed := true
                          | _ -> ())
                      | _ -> ())
                  | None -> ())
              | _ -> ())
            calls
        end)
      funcs
  done;
  List.sort compare (Hashtbl.fold (fun f i acc -> (f, i) :: acc) frees [])

(* ------------------------------------------------------------------ *)
(* The checker, via the OCaml API                                      *)
(* ------------------------------------------------------------------ *)

let svar = "v"
let rule_field = "free_rule"

let holes =
  [ (svar, Holes.Any_pointer); ("__a0", Holes.Any_expr); ("__a1", Holes.Any_expr);
    ("__a2", Holes.Any_expr); ("__a3", Holes.Any_expr) ]

(* Pattern matching a call to [f] with [v] at argument [idx], given [f]'s
   arity: other positions are wildcard holes. *)
let call_pattern (sg : Supergraph.t) fname idx =
  let arity =
    match Ctyping.lookup_function sg.Supergraph.typing fname with
    | Some (Ctyp.Func (_, params, _)) -> max (List.length params) (idx + 1)
    | _ -> idx + 1
  in
  let args =
    List.init arity (fun i ->
        if i = idx then Cast.ident svar else Cast.ident (Printf.sprintf "__a%d" i))
  in
  Pattern.Pexpr (Cast.mk_expr (Cast.Ecall (Cast.ident fname, args)))

let checker (sg : Supergraph.t) ~frees =
  let create_transitions =
    List.map
      (fun (fname, idx) ->
        {
          Sm.tr_source = Sm.Src_global "start";
          tr_pattern = call_pattern sg fname idx;
          tr_dest = Sm.To_var "freed";
          tr_action =
            Some
              (fun (actx : Sm.actx) ->
                match actx.a_inst with
                | Some i -> Sm.set_data i rule_field fname
                | None -> ());
        })
      frees
  in
  let rule_of (actx : Sm.actx) =
    match actx.a_inst with
    | Some i -> Option.value (Sm.get_data i rule_field) ~default:"<unknown>"
    | None -> "<unknown>"
  in
  let deref_transition =
    {
      Sm.tr_source = Sm.Src_var "freed";
      tr_pattern = Pattern.Pexpr (Cast.deref (Cast.ident svar));
      tr_dest = Sm.To_stop;
      tr_action =
        Some
          (fun actx ->
            let rule = rule_of actx in
            actx.a_count `Counterexample rule;
            let var =
              match actx.a_inst with
              | Some i -> Cprint.expr_to_string i.Sm.target
              | None -> "?"
            in
            actx.a_report ~rule
              (Printf.sprintf "use of %s after it was passed to freeing function %s"
                 var rule));
    }
  in
  let eop_transition =
    {
      Sm.tr_source = Sm.Src_var "freed";
      tr_pattern = Pattern.Pend_of_path;
      tr_dest = Sm.To_stop;
      tr_action = Some (fun actx -> actx.a_count `Example (rule_of actx));
    }
  in
  Sm.make ~name:"free_stat" ~svar ~holes
    (create_transitions @ [ deref_transition; eop_transition ])

let run ?options sg ~dealloc =
  let frees = freeing_functions sg ~dealloc in
  let result = Engine.run ?options sg [ checker sg ~frees ] in
  let ranking =
    Zstat.rank_rules
      (List.map (fun (rule, e, c) -> (rule, e, c)) result.Engine.counters)
  in
  (result, ranking)
