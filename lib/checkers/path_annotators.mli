(** The path-annotating composition extensions of Section 9:

    "Many extensions are composed with a simple extension that annotates
    paths that can be triggered by the user (using the string SECURITY) and
    paths that are likely to be error paths (using the string ERROR)."

    Run these {e before} the real checkers: they walk into the interesting
    paths and annotate every node there ([${1}] matches everything);
    subsequent checkers' reports automatically absorb the
    [SECURITY]/[ERROR] tags found on their error nodes, so ranking
    stratifies them (security first, error-path next). *)

val security_source : string
(** Tags everything downstream of a user-input call
    ([get_user_pointer]/[get_user_int]/[syscall_arg]). *)

val error_path_source : string
(** Tags the failure branch of [r < 0] tests — "error paths are less
    tested", so errors there are empirically more likely real. *)

val security : unit -> Sm.t
val error_path : unit -> Sm.t
