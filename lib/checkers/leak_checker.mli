(** Memory-leak checker: an allocation whose pointer permanently leaves
    scope without reaching a deallocator (or escaping via return / an
    escaping call) is a leak. A classic pairing rule in the spirit of the
    allocation checkers of [9]. *)

val source : string
val checker : unit -> Sm.t
