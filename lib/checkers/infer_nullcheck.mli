(** Statistical inference of "this function's result must be null-checked"
    — the second deviance template of [10] (Section 3.2's statistical
    actions): for each function whose result is stored into a pointer,
    count stores whose pointer is checked against null before use
    (examples) vs. used unchecked (counterexamples); rank candidate rules
    by z-statistic and report the violations of reliable rules. *)

val candidates : Supergraph.t -> string list
(** Undefined functions whose result is assigned to a pointer at least
    twice in the program. *)

val checker_for : string -> Sm.t

val run :
  ?options:Engine.options ->
  Supergraph.t ->
  funcs:string list ->
  Engine.result * (string * float) list
