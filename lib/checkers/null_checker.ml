let source_for alloc =
  let alloc_pattern =
    String.concat " || "
      (List.map (fun f -> Printf.sprintf "{ v = %s(args) }" f) alloc)
  in
  Printf.sprintf
    {|
sm null_checker {
  state decl any_pointer v;
  decl any_arguments args;

  start:
    %s ==> v.unchecked
  ;

  v.unchecked:
    { v } ==> { true = v.ok, false = v.null }
  | { v == 0 } ==> { true = v.null, false = v.ok }
  | { v != 0 } ==> { true = v.ok, false = v.null }
  | { *v } || ${ mc_derefs(mc_stmt, v) } ==> v.stop,
      { err("dereferencing %%s, which may be NULL (unchecked allocation)",
            mc_identifier(v)); }
  ;

  v.null:
    { *v } || ${ mc_derefs(mc_stmt, v) } ==> v.stop,
      { annotate("ERROR");
        err("dereferencing %%s on a path where it is NULL", mc_identifier(v)); }
  ;

  v.ok:
    $end_of_path$ ==> v.stop
  ;
}
|}
    alloc_pattern

let source = source_for [ "kmalloc"; "malloc" ]

let compile_one src =
  match Metal_compile.load ~file:"null_checker.metal" src with
  | [ sm ] -> sm
  | _ -> invalid_arg "null_checker: expected exactly one sm"

let checker () = compile_one source
let checker_for ~alloc = compile_one (source_for alloc)
