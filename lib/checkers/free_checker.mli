(** The free checker (Figure 1): flags dereferences of freed pointers and
    double frees. Tracks any pointer passed to a [kfree]-like deallocator. *)

val source : string
(** The metal source, verbatim from Figure 1 (modulo the configurable list
    of deallocator names). *)

val checker : unit -> Sm.t
(** Compiled with the default deallocators [kfree] and [free]. *)

val checker_for : dealloc:string list -> Sm.t
(** A variant recognising the given deallocation functions. *)
