(** Null-dereference checker for allocator results.

    [p = kmalloc(...)] may return NULL; dereferencing [p] before a null
    check is flagged, and dereferencing on a path where the check {e
    failed} is flagged as definite. Exercises path-specific transitions on
    plain conditions ([if (!p)] — short-circuit lowering presents the bare
    pointer as the branch condition). *)

val source : string
val checker : unit -> Sm.t
val checker_for : alloc:string list -> Sm.t
