(** Format-string checker (the classic security rule from [1]): a string
    that came from the user must never reach a printf-family format
    position; printing it requires the ["%s"]-literal idiom. *)

val source : string
val checker : unit -> Sm.t
