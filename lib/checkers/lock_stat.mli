(** "Ranking code" (Section 9): the intraprocedural lock checker whose
    per-function example/counterexample counts identify wrapper functions.

    "When each function is analyzed, we set e to the number of times the
    function correctly acquired and released locks and c to the number of
    mismatched pairs. The highest ranked functions had a large number of
    successful acquire/release pairs with only a few errors" — while
    functions that {e always} mismatch (lock/unlock wrappers, where the
    pairing rule simply does not apply) sink to the bottom. *)

val source : string
val checker : unit -> Sm.t

val run :
  ?options:Engine.options -> Supergraph.t -> Engine.result * (string * float) list
(** Run intraprocedurally (wrappers must look unbalanced, as in the paper)
    and rank the {e functions} by z-statistic. *)
