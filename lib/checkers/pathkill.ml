let source_for killers =
  let test =
    String.concat " || "
      (List.map (fun f -> Printf.sprintf "mc_is_call_to(fn, \"%s\")" f) killers)
  in
  Printf.sprintf
    {|
sm path_kill {
  decl any_fn_call fn;
  decl any_arguments args;

  start:
    { fn(args) } && ${ %s } ==>
      { annotate_ast(mc_stmt, "mc_kill_path"); kill_path(); }
  ;
}
|}
    test

let default_killers = [ "panic"; "BUG"; "assert_fail"; "exit"; "abort" ]
let source = source_for default_killers

let compile_one src =
  match Metal_compile.load ~file:"path_kill.metal" src with
  | [ sm ] -> sm
  | _ -> invalid_arg "path_kill: expected exactly one sm"

let checker () = compile_one source
let checker_for ~killers = compile_one (source_for killers)
