(** The statistical free checker (Section 9, "Statistical ranking").

    Mirrors the paper's earlier free checker: a flow-insensitive,
    interprocedural pass computes "a list of all functions that freed their
    arguments or passed an argument to a function that did"; a local pass
    then flags uses of pointers passed to those functions. Each freeing
    function is its own rule; uses-after-call are counterexamples and
    pointers never touched again are examples, so the z-statistic pushes
    wrapper functions that only free conditionally to the bottom of the
    ranking.

    Written against the OCaml checker API (not metal) — this is the paper's
    "escape to general-purpose code" in our setting: the state space (one
    rule per discovered function) is not known until analysis time. *)

val freeing_functions :
  Supergraph.t -> dealloc:string list -> (string * int) list
(** [(function, argument index it frees)] pairs, computed to fixpoint over
    the callgraph, seeded with the primitive deallocators (index 0). *)

val checker : Supergraph.t -> frees:(string * int) list -> Sm.t

val run :
  ?options:Engine.options ->
  Supergraph.t ->
  dealloc:string list ->
  Engine.result * (string * float) list
(** Run the checker; also return the per-rule z-statistic ranking. *)
