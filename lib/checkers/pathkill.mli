(** The path-kill composition extension (Section 3.2): flags every call to a
    terminating function ([panic], [BUG], [assert_fail], [exit]) so that
    extensions run {e after} it stop traversing paths dominated by those
    calls. Run it first in the extension list passed to {!Engine.run}. *)

val source : string
val checker : unit -> Sm.t
val checker_for : killers:string list -> Sm.t
