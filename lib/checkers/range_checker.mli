(** Tainted-index range checker (the security checkers of [1]): an integer
    obtained from user space must be bounds-checked before it indexes an
    array or sizes an allocation. Exercises path-specific transitions on
    comparisons and SECURITY-annotated ranking. *)

val source : string
val checker : unit -> Sm.t
