let source_for dealloc =
  let free_pattern =
    String.concat " || " (List.map (fun f -> Printf.sprintf "{ %s(v) }" f) dealloc)
  in
  Printf.sprintf
    {|
sm free_checker {
  state decl any_pointer v;

  start:
    %s ==> v.freed
  ;

  v.freed:
    { *v } || ${ mc_derefs(mc_stmt, v) } ==> v.stop,
      { err("using %%s after free!", mc_identifier(v)); }
  | %s ==> v.stop, { err("double free of %%s!", mc_identifier(v)); }
  ;
}
|}
    free_pattern free_pattern

let source = source_for [ "kfree"; "free" ]

let compile_one src =
  match Metal_compile.load ~file:"free_checker.metal" src with
  | [ sm ] -> sm
  | _ -> invalid_arg "free_checker: expected exactly one sm"

let checker () = compile_one source
let checker_for ~dealloc = compile_one (source_for dealloc)
