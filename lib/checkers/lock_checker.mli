(** The lock checker (Figure 3): warns when locks are released without being
    acquired, double-acquired, or never released. Demonstrates path-specific
    transitions ([trylock] succeeds on the true branch only) and the
    [$end_of_path$] pattern. *)

val source : string

val checker : unit -> Sm.t
(** Recognises [lock]/[unlock]/[trylock] (and the [spin_lock] family). *)

val recursive_source : string
(** A variant using instance data values to track lock depth — the
    "recursive locks" extension sketched in Section 3.2. *)

val recursive_checker : unit -> Sm.t
