(** User-pointer security checker (in the spirit of [1]): pointers received
    from user space must be vetted with [copy_from_user]/[copy_to_user] (or
    an explicit range check), never dereferenced directly in the kernel.
    Errors carry the [SECURITY] annotation so ranking puts them first. *)

val source : string
val checker : unit -> Sm.t
