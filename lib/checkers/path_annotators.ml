let security_source =
  {|
sm security_path_annotator {
  decl any_arguments args;

  start:
    { get_user_pointer(args) } || { get_user_int(args) } || { syscall_arg(args) }
      ==> on_user_path
  ;

  on_user_path:
    ${1} ==> on_user_path, { annotate_ast(mc_stmt, "SECURITY"); }
  ;
}
|}

let error_path_source =
  {|
sm error_path_annotator {
  decl any_scalar r;
  decl any_expr b;

  start:
    { r < 0 } ==> { true = on_error_path, false = start }
  ;

  on_error_path:
    ${1} ==> on_error_path, { annotate_ast(mc_stmt, "ERROR"); }
  ;
}
|}

let compile_one name src =
  match Metal_compile.load ~file:name src with
  | [ sm ] -> sm
  | _ -> invalid_arg (name ^ ": expected exactly one sm")

let security () = compile_one "security_path_annotator.metal" security_source
let error_path () = compile_one "error_path_annotator.metal" error_path_source
