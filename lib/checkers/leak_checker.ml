(* Escapes are approximated syntactically: a tracked pointer that is
   returned (the engine annotates return-expression roots with
   [mc_return]), assigned to anything, or passed to any call stops being
   tracked — ownership may have transferred. What remains at end of path
   is a leak. *)
let source =
  {|
sm leak_checker {
  state decl any_pointer v;
  decl any_expr x;
  decl any_fn_call fn;
  decl any_arguments args;

  start:
    ({ v = kmalloc(x) } || { v = malloc(x) }) && ${ mc_is_ident(v) } ==> v.alloced
  ;

  v.alloced:
    { kfree(v) } || { free(v) } ==> v.stop
  | { v } && ${ mc_annotated(mc_stmt, "mc_branch") } ==> { true = v.alloced, false = v.stop }
  | { v } && ${ mc_annotated(mc_stmt, "mc_return") } ==> v.stop
  | { x = v } ==> v.stop
  | { fn(args) } && ${ mc_contains(mc_stmt, v) } ==> v.stop
  | $end_of_path$ ==> v.stop,
      { err("allocation stored in %s is never freed (leak)", mc_identifier(v)); }
  ;
}
|}

let checker () =
  match Metal_compile.load ~file:"leak_checker.metal" source with
  | [ sm ] -> sm
  | _ -> invalid_arg "leak_checker: expected exactly one sm"
