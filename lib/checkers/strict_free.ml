let default_debug_fns = [ "printk"; "debug_print"; "dprintf"; "log_ptr" ]
let default_reinit_fns = [ "reinit"; "pool_put"; "recycle" ]

let source ~strict =
  let suppression =
    if strict then ""
    else
      (* the paper: "We added eight lines of code to the checker to
         suppress both classes of false positives." *)
      let debug =
        String.concat "\n  | "
          (List.map
             (fun f -> Printf.sprintf "{ %s(args) } && ${ mc_contains(mc_stmt, v) } ==> v.freed" f)
             default_debug_fns)
      in
      let reinit =
        String.concat "\n  | "
          (List.map (fun f -> Printf.sprintf "{ %s(&v) } ==> v.stop" f) default_reinit_fns)
      in
      "  | " ^ debug ^ "\n  | " ^ reinit ^ "\n"
  in
  Printf.sprintf
    {|
sm strict_free_checker {
  state decl any_pointer v;
  decl any_expr x;
  decl any_arguments args;
  decl any_fn_call fn;

  start:
    { kfree(v) } ==> v.freed
  ;

  v.freed:
    { kfree(v) } ==> v.stop, { err("double free of %%s!", mc_identifier(v)); }
%s  | { *v } || ${ mc_derefs(mc_stmt, v) } ==> v.stop,
      { err("use of %%s after free!", mc_identifier(v)); }
  | { fn(args) } && ${ mc_contains(mc_stmt, v) } ==> v.stop,
      { err("freed pointer %%s passed to %%s!", mc_identifier(v), mc_identifier(fn)); }
  | { x = v } ==> v.stop, { err("freed pointer %%s stored!", mc_identifier(v)); }
  ;
}
|}
    suppression

let checker ~suppress_idioms =
  match
    Metal_compile.load ~file:"strict_free.metal" (source ~strict:(not suppress_idioms))
  with
  | [ sm ] -> sm
  | _ -> invalid_arg "strict_free: expected exactly one sm"
