type entry = {
  e_name : string;
  e_description : string;
  e_source : string option;
  e_make : unit -> Sm.t;
}

let entries =
  [
    {
      e_name = "free";
      e_description = "use-after-free and double-free of deallocated pointers (Fig. 1)";
      e_source = Some Free_checker.source;
      e_make = Free_checker.checker;
    };
    {
      e_name = "lock";
      e_description =
        "unpaired lock acquire/release, double acquire, release of unheld (Fig. 3)";
      e_source = Some Lock_checker.source;
      e_make = Lock_checker.checker;
    };
    {
      e_name = "rlock";
      e_description = "recursive lock depth tracking via instance data values (Sec. 3.2)";
      e_source = Some Lock_checker.recursive_source;
      e_make = Lock_checker.recursive_checker;
    };
    {
      e_name = "null";
      e_description = "dereference of possibly-NULL allocator results";
      e_source = Some Null_checker.source;
      e_make = Null_checker.checker;
    };
    {
      e_name = "intr";
      e_description = "interrupt enable/disable discipline (global state)";
      e_source = Some Intr_checker.source;
      e_make = Intr_checker.checker;
    };
    {
      e_name = "security";
      e_description = "unchecked dereference of user-space pointers (SECURITY-ranked)";
      e_source = Some Security_checker.source;
      e_make = Security_checker.checker;
    };
    {
      e_name = "leak";
      e_description = "allocations that never reach a deallocator or escape";
      e_source = Some Leak_checker.source;
      e_make = Leak_checker.checker;
    };
    {
      e_name = "range";
      e_description = "user-controlled values used unchecked as index/size (SECURITY)";
      e_source = Some Range_checker.source;
      e_make = Range_checker.checker;
    };
    {
      e_name = "strictfree";
      e_description =
        "conservative all-uses free checker with idiom suppression (Sec. 8)";
      e_source = Some (Strict_free.source ~strict:false);
      e_make = (fun () -> Strict_free.checker ~suppress_idioms:true);
    };
    {
      e_name = "lockstat";
      e_description = "per-function lock pairing statistics (ranking code, Sec. 9)";
      e_source = Some Lock_stat.source;
      e_make = Lock_stat.checker;
    };
    {
      e_name = "fmt";
      e_description = "user-controlled format strings (SECURITY)";
      e_source = Some Fmt_checker.source;
      e_make = Fmt_checker.checker;
    };
    {
      e_name = "secpath";
      e_description = "composition: tag user-reachable paths SECURITY (Sec. 9)";
      e_source = Some Path_annotators.security_source;
      e_make = Path_annotators.security;
    };
    {
      e_name = "errpath";
      e_description = "composition: tag error paths ERROR (Sec. 9)";
      e_source = Some Path_annotators.error_path_source;
      e_make = Path_annotators.error_path;
    };
    {
      e_name = "pathkill";
      e_description = "composition extension: stop paths after panic()/BUG() (Sec. 3.2)";
      e_source = Some Pathkill.source;
      e_make = Pathkill.checker;
    };
  ]

let all () = entries
let find name = List.find_opt (fun e -> String.equal e.e_name name) entries
let names () = List.map (fun e -> e.e_name) entries

let loc e =
  match e.e_source with
  | None -> 0
  | Some src ->
      List.length
        (List.filter
           (fun l -> not (String.equal (String.trim l) ""))
           (String.split_on_char '\n' src))
