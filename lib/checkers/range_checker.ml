let source =
  {|
sm range_checker {
  state decl any_scalar n;
  decl any_expr arr;
  decl any_expr bound;

  start:
    { n = get_user_int() } || { n = syscall_int_arg() } ==> n.tainted
  ;

  n.tainted:
    { n < bound } ==> { true = n.checked, false = n.tainted }
  | { n <= bound } ==> { true = n.checked, false = n.tainted }
  | { n > bound } ==> { true = n.tainted, false = n.checked }
  | { n >= bound } ==> { true = n.tainted, false = n.checked }
  | { arr[n] } ==> n.stop,
      { annotate("SECURITY");
        err("user-controlled value %s used as array index without a bounds check",
            mc_identifier(n)); }
  | { kmalloc(n) } || { malloc(n) } ==> n.stop,
      { annotate("SECURITY");
        err("user-controlled value %s used as allocation size without a bounds check",
            mc_identifier(n)); }
  ;

  n.checked:
    $end_of_path$ ==> n.stop
  ;
}
|}

let checker () =
  match Metal_compile.load ~file:"range_checker.metal" source with
  | [ sm ] -> sm
  | _ -> invalid_arg "range_checker: expected exactly one sm"
