(** Registry of the built-in checkers, for the CLI and examples. *)

type entry = {
  e_name : string;
  e_description : string;
  e_source : string option;  (** metal source, [None] for OCaml-API checkers *)
  e_make : unit -> Sm.t;
}

val all : unit -> entry list
val find : string -> entry option
val names : unit -> string list

val loc : entry -> int
(** Lines of metal code of the checker ("extensions are small — usually
    between 10 and 200 lines", Section 1); 0 for OCaml-API checkers. *)
