(** AST (de)serialisation — the paper's two-pass architecture (Section 6).

    Pass 1 parses each translation unit in isolation and emits its AST to a
    temporary file; pass 2 reads the emitted files back, "reassembles their
    ASTs, and constructs the CFG and call graph". The emitted form is a
    textual s-expression; the paper notes its AST files are "typically four
    or five times larger than the text representation", and ours land in
    the same ballpark (see the tests).

    Node ids are not serialised: decoding allocates fresh ids, which is all
    the engine needs (ids only key per-run caches). *)

val expr_to_sexp : Cast.expr -> Sexp.t
val expr_of_sexp : Sexp.t -> Cast.expr
val stmt_to_sexp : Cast.stmt -> Sexp.t
val stmt_of_sexp : Sexp.t -> Cast.stmt
val ctyp_to_sexp : Ctyp.t -> Sexp.t
val ctyp_of_sexp : Sexp.t -> Ctyp.t
val global_to_sexp : Cast.global -> Sexp.t
val global_of_sexp : Sexp.t -> Cast.global
val tunit_to_sexp : Cast.tunit -> Sexp.t
val tunit_of_sexp : Sexp.t -> Cast.tunit

val emit_file : string -> Cast.tunit -> unit
(** Pass 1: write the AST file. *)

val read_file : string -> Cast.tunit
(** Pass 2: read it back. Raises {!Sexp.Parse_error} / {!Sexp.Decode_error}
    on malformed input. *)

val read_file_result : string -> (Cast.tunit, string) result
(** Fault-contained {!read_file}: a truncated or corrupt [.mcast] file
    yields [Error description] instead of raising, so a driver can skip
    just that unit with a diagnostic. I/O errors ([Sys_error]) are
    folded in too. *)

val emit_string : Cast.tunit -> string
val read_string : string -> Cast.tunit

(** {1 Binary codec}

    The cache hot path: a length-prefixed binary form of the same AST,
    decoded by a single forward scan (no tokenising). The sexp form
    above remains the interchange format — [.mcast] emit/read, body
    hashing, and [xgcc cache dump] all speak sexp. Malformed binary
    input raises {!Wire.Corrupt}; cache readers degrade it to a miss. *)

val expr_to_bin : Wire.writer -> Cast.expr -> unit
val expr_of_bin : Wire.reader -> Cast.expr
val stmt_to_bin : Wire.writer -> Cast.stmt -> unit
val stmt_of_bin : Wire.reader -> Cast.stmt
val ctyp_to_bin : Wire.writer -> Ctyp.t -> unit
val ctyp_of_bin : Wire.reader -> Ctyp.t
val global_to_bin : Wire.writer -> Cast.global -> unit
val global_of_bin : Wire.reader -> Cast.global
val tunit_to_bin : Wire.writer -> Cast.tunit -> unit
val tunit_of_bin : Wire.reader -> Cast.tunit

(** {1 Content-addressed AST object cache}

    Pass 1 results keyed by post-preprocess content: a warm run whose
    fingerprint matches reuses the emitted object instead of re-lexing
    and re-parsing the translation unit. Objects are stored in the
    binary form with an {!ast_magic} header. *)

val format_version : string
(** Semantic version of the AST encoding; salts {!ast_fingerprint} and
    the engine's body hashes. Bump on any sexp-encoding change. *)

val cache_version : string
(** Version of the binary cache-object layout; also salted into
    {!ast_fingerprint} so a layout change orphans on-disk objects. *)

val ast_magic : string
(** Magic prefix of every binary cache object. *)

val ast_fingerprint : file:string -> source:string -> Fingerprint.t
(** Key for one translation unit: the input file name plus its
    post-preprocess text (locations are baked into the AST, so the name
    is part of the content). *)

val cached_path : cache_dir:string -> Fingerprint.t -> string
(** Where the object for [fp] lives: [<cache_dir>/ast/<fp>.mcast]. *)

val read_cached : cache_dir:string -> Fingerprint.t -> Cast.tunit option
(** [None] on a miss or an unreadable (torn / stale-format) object. *)

val read_cached_file : string -> (Cast.tunit, string) result
(** Decode one binary cache object by path — the [cache dump] entry
    point. [Error description] on corrupt or unreadable input. *)

val write_cached : cache_dir:string -> Fingerprint.t -> Cast.tunit -> unit
(** Atomic (tmp + rename) write; creates the directory as needed. *)

val emit_targets : string list -> (string * string) list
(** Map each input file to a unique [.mcast] output basename: the plain
    basename when unique among the inputs, otherwise a path-derived name
    (separators folded to ['_']). Raises [Invalid_argument] if names
    still collide (e.g. a duplicated input path). *)
