(** AST (de)serialisation — the paper's two-pass architecture (Section 6).

    Pass 1 parses each translation unit in isolation and emits its AST to a
    temporary file; pass 2 reads the emitted files back, "reassembles their
    ASTs, and constructs the CFG and call graph". The emitted form is a
    textual s-expression; the paper notes its AST files are "typically four
    or five times larger than the text representation", and ours land in
    the same ballpark (see the tests).

    Node ids are not serialised: decoding allocates fresh ids, which is all
    the engine needs (ids only key per-run caches). *)

val expr_to_sexp : Cast.expr -> Sexp.t
val expr_of_sexp : Sexp.t -> Cast.expr
val stmt_to_sexp : Cast.stmt -> Sexp.t
val stmt_of_sexp : Sexp.t -> Cast.stmt
val ctyp_to_sexp : Ctyp.t -> Sexp.t
val ctyp_of_sexp : Sexp.t -> Ctyp.t
val tunit_to_sexp : Cast.tunit -> Sexp.t
val tunit_of_sexp : Sexp.t -> Cast.tunit

val emit_file : string -> Cast.tunit -> unit
(** Pass 1: write the AST file. *)

val read_file : string -> Cast.tunit
(** Pass 2: read it back. Raises {!Sexp.Parse_error} / {!Sexp.Decode_error}
    on malformed input. *)

val emit_string : Cast.tunit -> string
val read_string : string -> Cast.tunit
