(** Abstract syntax trees for the C subset.

    AST nodes are the engine's program points (Section 5): every expression
    node carries a unique id and a source location. Structural operations
    ([equal_expr], [key_of_expr], [subst_expr]) deliberately ignore ids and
    locations — pattern matching, synonym tracking and refine/restore all
    compare trees "as code". *)

type unop =
  | Neg
  | Lognot
  | Bitnot
  | Deref
  | Addrof
  | Preinc
  | Predec
  | Postinc
  | Postdec

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Lt
  | Gt
  | Le
  | Ge
  | Eq
  | Ne
  | Band
  | Bor
  | Bxor
  | Land
  | Lor

type expr = { eid : int; eloc : Srcloc.t; enode : enode }

and enode =
  | Eint of int64
  | Efloat of float
  | Echar of char
  | Estr of string
  | Eident of string
  | Eunary of unop * expr
  | Ebinary of binop * expr * expr
  | Eassign of binop option * expr * expr
      (** [Eassign (None, l, r)] is [l = r]; [Eassign (Some Add, l, r)] is
          [l += r]. *)
  | Ecall of expr * expr list
  | Efield of expr * string
  | Earrow of expr * string
  | Eindex of expr * expr
  | Ecast of Ctyp.t * expr
  | Econd of expr * expr * expr
  | Ecomma of expr * expr
  | Esizeof_type of Ctyp.t
  | Esizeof_expr of expr
  | Einit_list of expr list  (** brace initializer *)

type decl = { dname : string; dtyp : Ctyp.t; dinit : expr option }

type stmt = { sid : int; sloc : Srcloc.t; snode : snode }

and snode =
  | Sexpr of expr
  | Sdecl of decl list
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of stmt option * expr option * expr option * stmt
  | Sreturn of expr option
  | Sblock of stmt list
  | Sbreak
  | Scontinue
  | Sswitch of expr * case list
  | Sgoto of string
  | Slabel of string * stmt
  | Snull

and case = { case_guard : int64 option; case_body : stmt list }
(** [case_guard = None] is the [default:] arm. *)

type fundef = {
  fname : string;
  freturn : Ctyp.t;
  fparams : (string * Ctyp.t) list;
  fvariadic : bool;
  fbody : stmt;
  floc : Srcloc.t;
  ffile : string;
  fstatic : bool;
}

type skipped = {
  sk_name : string option;  (** best-effort name of the dropped definition *)
  sk_from : Srcloc.t;  (** start of the skipped source range *)
  sk_to : Srcloc.t;  (** last token the recovery scan consumed *)
  sk_msg : string;  (** the parse error, including its own location *)
}
(** A top-level definition the parser could not parse. Error recovery
    ({!Cparse.parse_tunit}) replaces the broken definition with this stub
    so the rest of the translation unit still analyzes; downstream layers
    treat the name (if any) as an undefined function — the conservative
    call model. *)

type global =
  | Gfun of fundef
  | Gvar of { gdecl : decl; gloc : Srcloc.t; gfile : string; gstatic : bool }
  | Gtypedef of string * Ctyp.t
  | Gcomposite of { ckind : [ `Struct | `Union ]; cname : string; cfields : (string * Ctyp.t) list }
  | Genum of { ename : string; eitems : (string * int64) list }
  | Gproto of { pname : string; ptyp : Ctyp.t }
  | Gskipped of skipped

type tunit = { tu_file : string; tu_globals : global list }

(** {1 Construction} *)

val fresh_eid : unit -> int
val fresh_sid : unit -> int
val mk_expr : ?loc:Srcloc.t -> enode -> expr
val mk_stmt : ?loc:Srcloc.t -> snode -> stmt
val ident : ?loc:Srcloc.t -> string -> expr
val intlit : ?loc:Srcloc.t -> int64 -> expr
val deref : ?loc:Srcloc.t -> expr -> expr
val call : ?loc:Srcloc.t -> string -> expr list -> expr

(** {1 Structural operations} *)

val equal_expr : expr -> expr -> bool
(** Structural equality, ignoring ids and locations. This is the tree
    equivalence used for repeated pattern holes (Section 4) and tracked
    object identity. *)

val compare_expr : expr -> expr -> int
(** Total order consistent with {!equal_expr} (ids and locations ignored),
    compared directly over the structure — no key rendering, no
    allocation. The order is structural, not the lexicographic order of
    rendered {!key_of_expr} strings. *)

val equal_stmt : stmt -> stmt -> bool
(** Structural equality over statements (ids/locations ignored), used by the
    round-trip property tests. A bare [Sblock [s]] does {e not} equal [s]. *)

val key_of_expr : expr -> string
(** Canonical string key for hashing tracked program objects; two expressions
    have equal keys iff they are [equal_expr]. String and character literal
    contents are escaped ([String.escaped] / character codes) so literal
    contents cannot forge the key's delimiter structure. *)

val add_key_of_expr : Buffer.t -> expr -> unit
(** [key_of_expr] rendered into an existing buffer — the allocation-light
    path for callers that intern or concatenate keys. *)

val children : expr -> expr list
(** Immediate subexpressions, left to right. *)

val contains_expr : needle:expr -> expr -> bool
(** [contains_expr ~needle e] holds when [needle] occurs in [e] as a subtree
    (including [e] itself). *)

val subst_expr : needle:expr -> replacement:expr -> expr -> expr
(** Replace every occurrence of [needle] (as a subtree) with [replacement];
    the replaced-into nodes get fresh ids. Used by refine/restore (Table 2). *)

val idents_of_expr : expr -> string list
(** All identifiers mentioned, in order, with duplicates. Used by
    kill-on-redefinition. *)

val exec_order : expr -> expr list
(** All subexpression nodes in execution order (Section 5): a call's
    arguments before the call, an assignment's RHS before its LHS before the
    assignment node itself. The result ends with the root node. *)

val base_lvalue : expr -> expr option
(** The identifier at the base of an lvalue: [x] for [x], [x.f], [x->f],
    [*x], [x[i]]; [None] for other shapes. *)

val pp_unop : Format.formatter -> unop -> unit
val pp_binop : Format.formatter -> binop -> unit
