type t = string

let of_string ?(salt = "") text = Digest.to_hex (Digest.string (salt ^ "\x00" ^ text))

let combine fps =
  Digest.to_hex (Digest.string (String.concat "\x01" fps))

let combine_pairs pairs =
  Digest.to_hex
    (Digest.string
       (String.concat "\x01" (List.map (fun (k, v) -> k ^ "\x02" ^ v) pairs)))

let short fp = if String.length fp <= 8 then fp else String.sub fp 0 8
