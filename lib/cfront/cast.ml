type unop =
  | Neg
  | Lognot
  | Bitnot
  | Deref
  | Addrof
  | Preinc
  | Predec
  | Postinc
  | Postdec

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Lt
  | Gt
  | Le
  | Ge
  | Eq
  | Ne
  | Band
  | Bor
  | Bxor
  | Land
  | Lor

type expr = { eid : int; eloc : Srcloc.t; enode : enode }

and enode =
  | Eint of int64
  | Efloat of float
  | Echar of char
  | Estr of string
  | Eident of string
  | Eunary of unop * expr
  | Ebinary of binop * expr * expr
  | Eassign of binop option * expr * expr
  | Ecall of expr * expr list
  | Efield of expr * string
  | Earrow of expr * string
  | Eindex of expr * expr
  | Ecast of Ctyp.t * expr
  | Econd of expr * expr * expr
  | Ecomma of expr * expr
  | Esizeof_type of Ctyp.t
  | Esizeof_expr of expr
  | Einit_list of expr list

type decl = { dname : string; dtyp : Ctyp.t; dinit : expr option }
type stmt = { sid : int; sloc : Srcloc.t; snode : snode }

and snode =
  | Sexpr of expr
  | Sdecl of decl list
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of stmt option * expr option * expr option * stmt
  | Sreturn of expr option
  | Sblock of stmt list
  | Sbreak
  | Scontinue
  | Sswitch of expr * case list
  | Sgoto of string
  | Slabel of string * stmt
  | Snull

and case = { case_guard : int64 option; case_body : stmt list }

type fundef = {
  fname : string;
  freturn : Ctyp.t;
  fparams : (string * Ctyp.t) list;
  fvariadic : bool;
  fbody : stmt;
  floc : Srcloc.t;
  ffile : string;
  fstatic : bool;
}

type skipped = {
  sk_name : string option;
  sk_from : Srcloc.t;
  sk_to : Srcloc.t;
  sk_msg : string;
}

type global =
  | Gfun of fundef
  | Gvar of { gdecl : decl; gloc : Srcloc.t; gfile : string; gstatic : bool }
  | Gtypedef of string * Ctyp.t
  | Gcomposite of {
      ckind : [ `Struct | `Union ];
      cname : string;
      cfields : (string * Ctyp.t) list;
    }
  | Genum of { ename : string; eitems : (string * int64) list }
  | Gproto of { pname : string; ptyp : Ctyp.t }
  | Gskipped of skipped

type tunit = { tu_file : string; tu_globals : global list }

(* Atomic so ids stay unique when several domains parse or synthesise
   nodes concurrently (parallel pass-1 emission, domain-parallel engine). *)
let eid_counter = Atomic.make 0
let sid_counter = Atomic.make 0
let fresh_eid () = 1 + Atomic.fetch_and_add eid_counter 1
let fresh_sid () = 1 + Atomic.fetch_and_add sid_counter 1

let mk_expr ?(loc = Srcloc.dummy) enode = { eid = fresh_eid (); eloc = loc; enode }
let mk_stmt ?(loc = Srcloc.dummy) snode = { sid = fresh_sid (); sloc = loc; snode }
let ident ?loc name = mk_expr ?loc (Eident name)
let intlit ?loc n = mk_expr ?loc (Eint n)
let deref ?loc e = mk_expr ?loc (Eunary (Deref, e))
let call ?loc fn args = mk_expr ?loc (Ecall (ident ?loc fn, args))

let unop_to_string = function
  | Neg -> "-"
  | Lognot -> "!"
  | Bitnot -> "~"
  | Deref -> "*"
  | Addrof -> "&"
  | Preinc | Postinc -> "++"
  | Predec | Postdec -> "--"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Land -> "&&"
  | Lor -> "||"

let pp_unop ppf u = Format.pp_print_string ppf (unop_to_string u)
let pp_binop ppf b = Format.pp_print_string ppf (binop_to_string b)

let rec equal_expr a b =
  match (a.enode, b.enode) with
  | Eint x, Eint y -> Int64.equal x y
  | Efloat x, Efloat y -> Float.equal x y
  | Echar x, Echar y -> Char.equal x y
  | Estr x, Estr y -> String.equal x y
  | Eident x, Eident y -> String.equal x y
  | Eunary (ua, ea), Eunary (ub, eb) -> ua = ub && equal_expr ea eb
  | Ebinary (oa, la, ra), Ebinary (ob, lb, rb) ->
      oa = ob && equal_expr la lb && equal_expr ra rb
  | Eassign (oa, la, ra), Eassign (ob, lb, rb) ->
      oa = ob && equal_expr la lb && equal_expr ra rb
  | Ecall (fa, aa), Ecall (fb, ab) ->
      equal_expr fa fb && List.length aa = List.length ab && List.for_all2 equal_expr aa ab
  | Efield (ea, fa), Efield (eb, fb) | Earrow (ea, fa), Earrow (eb, fb) ->
      String.equal fa fb && equal_expr ea eb
  | Eindex (aa, ia), Eindex (ab, ib) -> equal_expr aa ab && equal_expr ia ib
  | Ecast (ta, ea), Ecast (tb, eb) -> Ctyp.equal ta tb && equal_expr ea eb
  | Econd (ca, ta, ea), Econd (cb, tb, eb) ->
      equal_expr ca cb && equal_expr ta tb && equal_expr ea eb
  | Ecomma (la, ra), Ecomma (lb, rb) -> equal_expr la lb && equal_expr ra rb
  | Esizeof_type ta, Esizeof_type tb -> Ctyp.equal ta tb
  | Esizeof_expr ea, Esizeof_expr eb -> equal_expr ea eb
  | Einit_list la, Einit_list lb ->
      List.length la = List.length lb && List.for_all2 equal_expr la lb
  | ( ( Eint _ | Efloat _ | Echar _ | Estr _ | Eident _ | Eunary _ | Ebinary _ | Eassign _
      | Ecall _ | Efield _ | Earrow _ | Eindex _ | Ecast _ | Econd _ | Ecomma _
      | Esizeof_type _ | Esizeof_expr _ | Einit_list _ ),
      _ ) ->
      false

(* Canonical key: a compact prefix-form rendering. *)
let add_key_of_expr buf e =
  let add = Buffer.add_string buf in
  let rec go e =
    match e.enode with
    | Eint n ->
        add "i";
        add (Int64.to_string n)
    | Efloat f ->
        add "f";
        add (Float.to_string f)
    | Echar c ->
        (* rendered as the character code: raw delimiter characters (',',
           ')', '"') inside a key would make the prefix form ambiguous *)
        add "c";
        add (string_of_int (Char.code c))
    | Estr s ->
        (* escaped: embedding the contents raw let distinct literals render
           identical keys, e.g. f("x\",s\"y") vs f("x","y") *)
        add "s\"";
        add (String.escaped s);
        add "\""
    | Eident x ->
        add "v(";
        add x;
        add ")"
    | Eunary (u, e1) ->
        add "u(";
        add (unop_to_string u);
        (match u with Postinc | Postdec -> add "post" | _ -> ());
        go e1;
        add ")"
    | Ebinary (o, l, r) ->
        add "b(";
        add (binop_to_string o);
        go l;
        add ",";
        go r;
        add ")"
    | Eassign (o, l, r) ->
        add "a(";
        (match o with None -> () | Some o -> add (binop_to_string o));
        add "=";
        go l;
        add ",";
        go r;
        add ")"
    | Ecall (f, args) ->
        add "call(";
        go f;
        List.iter
          (fun a ->
            add ",";
            go a)
          args;
        add ")"
    | Efield (e1, f) ->
        add "fld(";
        go e1;
        add ".";
        add f;
        add ")"
    | Earrow (e1, f) ->
        add "arw(";
        go e1;
        add ".";
        add f;
        add ")"
    | Eindex (a, i) ->
        add "idx(";
        go a;
        add ",";
        go i;
        add ")"
    | Ecast (t, e1) ->
        add "cast(";
        add (Ctyp.to_string t);
        add ",";
        go e1;
        add ")"
    | Econd (c, t, f) ->
        add "cond(";
        go c;
        add ",";
        go t;
        add ",";
        go f;
        add ")"
    | Ecomma (l, r) ->
        add "comma(";
        go l;
        add ",";
        go r;
        add ")"
    | Esizeof_type t ->
        add "szt(";
        add (Ctyp.to_string t);
        add ")"
    | Esizeof_expr e1 ->
        add "sze(";
        go e1;
        add ")"
    | Einit_list es ->
        add "init(";
        List.iter
          (fun a ->
            go a;
            add ",")
          es;
        add ")"
  in
  go e

let key_of_expr e =
  let buf = Buffer.create 32 in
  add_key_of_expr buf e;
  Buffer.contents buf

(* Total order consistent with [equal_expr], directly over the structure:
   the old implementation rendered both keys and compared the strings,
   allocating two buffers per comparison. *)
let enode_rank = function
  | Eint _ -> 0
  | Efloat _ -> 1
  | Echar _ -> 2
  | Estr _ -> 3
  | Eident _ -> 4
  | Eunary _ -> 5
  | Ebinary _ -> 6
  | Eassign _ -> 7
  | Ecall _ -> 8
  | Efield _ -> 9
  | Earrow _ -> 10
  | Eindex _ -> 11
  | Ecast _ -> 12
  | Econd _ -> 13
  | Ecomma _ -> 14
  | Esizeof_type _ -> 15
  | Esizeof_expr _ -> 16
  | Einit_list _ -> 17

let rec compare_expr a b =
  let ( <?> ) c rest = if c <> 0 then c else rest () in
  match (a.enode, b.enode) with
  | Eint x, Eint y -> Int64.compare x y
  | Efloat x, Efloat y -> Float.compare x y
  | Echar x, Echar y -> Char.compare x y
  | Estr x, Estr y | Eident x, Eident y -> String.compare x y
  | Eunary (ua, ea), Eunary (ub, eb) ->
      Stdlib.compare ua ub <?> fun () -> compare_expr ea eb
  | Ebinary (oa, la, ra), Ebinary (ob, lb, rb) ->
      Stdlib.compare oa ob <?> fun () ->
      compare_expr la lb <?> fun () -> compare_expr ra rb
  | Eassign (oa, la, ra), Eassign (ob, lb, rb) ->
      Stdlib.compare oa ob <?> fun () ->
      compare_expr la lb <?> fun () -> compare_expr ra rb
  | Ecall (fa, aa), Ecall (fb, ab) ->
      compare_expr fa fb <?> fun () -> compare_expr_list aa ab
  | Efield (ea, fa), Efield (eb, fb) | Earrow (ea, fa), Earrow (eb, fb) ->
      String.compare fa fb <?> fun () -> compare_expr ea eb
  | Eindex (aa, ia), Eindex (ab, ib) ->
      compare_expr aa ab <?> fun () -> compare_expr ia ib
  | Ecast (ta, ea), Ecast (tb, eb) ->
      Stdlib.compare ta tb <?> fun () -> compare_expr ea eb
  | Econd (ca, ta, ea), Econd (cb, tb, eb) ->
      compare_expr ca cb <?> fun () ->
      compare_expr ta tb <?> fun () -> compare_expr ea eb
  | Ecomma (la, ra), Ecomma (lb, rb) ->
      compare_expr la lb <?> fun () -> compare_expr ra rb
  | Esizeof_type ta, Esizeof_type tb -> Stdlib.compare ta tb
  | Esizeof_expr ea, Esizeof_expr eb -> compare_expr ea eb
  | Einit_list la, Einit_list lb -> compare_expr_list la lb
  | x, y -> Int.compare (enode_rank x) (enode_rank y)

and compare_expr_list la lb =
  match (la, lb) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | a :: la, b :: lb -> (
      match compare_expr a b with 0 -> compare_expr_list la lb | c -> c)

let children e =
  match e.enode with
  | Eint _ | Efloat _ | Echar _ | Estr _ | Eident _ | Esizeof_type _ -> []
  | Eunary (_, e1) | Ecast (_, e1) | Esizeof_expr e1 | Efield (e1, _) | Earrow (e1, _) ->
      [ e1 ]
  | Ebinary (_, l, r) | Eassign (_, l, r) | Eindex (l, r) | Ecomma (l, r) -> [ l; r ]
  | Econd (c, t, f) -> [ c; t; f ]
  | Ecall (f, args) -> f :: args
  | Einit_list es -> es

let rec contains_expr ~needle e =
  equal_expr needle e || List.exists (fun c -> contains_expr ~needle c) (children e)

let rec subst_expr ~needle ~replacement e =
  if equal_expr needle e then replacement
  else
    let s = subst_expr ~needle ~replacement in
    let renode enode = { e with eid = fresh_eid (); enode } in
    match e.enode with
    | Eint _ | Efloat _ | Echar _ | Estr _ | Eident _ | Esizeof_type _ -> e
    | Eunary (u, e1) -> renode (Eunary (u, s e1))
    | Ebinary (o, l, r) -> renode (Ebinary (o, s l, s r))
    | Eassign (o, l, r) -> renode (Eassign (o, s l, s r))
    | Ecall (f, args) -> renode (Ecall (s f, List.map s args))
    | Efield (e1, f) -> renode (Efield (s e1, f))
    | Earrow (e1, f) -> renode (Earrow (s e1, f))
    | Eindex (a, i) -> renode (Eindex (s a, s i))
    | Ecast (t, e1) -> renode (Ecast (t, s e1))
    | Econd (c, t, f) -> renode (Econd (s c, s t, s f))
    | Ecomma (l, r) -> renode (Ecomma (s l, s r))
    | Esizeof_expr e1 -> renode (Esizeof_expr (s e1))
    | Einit_list es -> renode (Einit_list (List.map s es))

let equal_decl (a : decl) (b : decl) =
  String.equal a.dname b.dname && Ctyp.equal a.dtyp b.dtyp
  && Option.equal equal_expr a.dinit b.dinit

let rec equal_stmt a b =
  match (a.snode, b.snode) with
  | Sexpr ea, Sexpr eb -> equal_expr ea eb
  | Sdecl da, Sdecl db ->
      List.length da = List.length db && List.for_all2 equal_decl da db
  | Sif (ca, ta, ea), Sif (cb, tb, eb) ->
      equal_expr ca cb && equal_stmt ta tb && Option.equal equal_stmt ea eb
  | Swhile (ca, ba), Swhile (cb, bb) -> equal_expr ca cb && equal_stmt ba bb
  | Sdo (ba, ca), Sdo (bb, cb) -> equal_stmt ba bb && equal_expr ca cb
  | Sfor (ia, ca, sa, ba), Sfor (ib, cb, sb, bb) ->
      Option.equal equal_stmt ia ib && Option.equal equal_expr ca cb
      && Option.equal equal_expr sa sb && equal_stmt ba bb
  | Sreturn ea, Sreturn eb -> Option.equal equal_expr ea eb
  | Sblock sa, Sblock sb ->
      List.length sa = List.length sb && List.for_all2 equal_stmt sa sb
  | Sbreak, Sbreak | Scontinue, Scontinue | Snull, Snull -> true
  | Sswitch (ea, ca), Sswitch (eb, cb) ->
      equal_expr ea eb
      && List.length ca = List.length cb
      && List.for_all2
           (fun x y ->
             Option.equal Int64.equal x.case_guard y.case_guard
             && List.length x.case_body = List.length y.case_body
             && List.for_all2 equal_stmt x.case_body y.case_body)
           ca cb
  | Sgoto la, Sgoto lb -> String.equal la lb
  | Slabel (la, sa), Slabel (lb, sb) -> String.equal la lb && equal_stmt sa sb
  | ( ( Sexpr _ | Sdecl _ | Sif _ | Swhile _ | Sdo _ | Sfor _ | Sreturn _ | Sblock _
      | Sbreak | Scontinue | Sswitch _ | Sgoto _ | Slabel _ | Snull ),
      _ ) ->
      false

let idents_of_expr e =
  let acc = ref [] in
  let rec go e =
    (match e.enode with Eident x -> acc := x :: !acc | _ -> ());
    List.iter go (children e)
  in
  go e;
  List.rev !acc

(* Execution order: RHS of assignments before LHS before the assignment
   itself; call arguments before the call node; otherwise children
   left-to-right, node last (post-order). *)
let exec_order root =
  let acc = ref [] in
  let push e = acc := e :: !acc in
  let rec go e =
    (match e.enode with
    | Eassign (_, l, r) ->
        go r;
        go l
    | Ecall (f, args) ->
        go f;
        List.iter go args
    | _ -> List.iter go (children e));
    push e
  in
  go root;
  List.rev !acc

let rec base_lvalue e =
  match e.enode with
  | Eident _ -> Some e
  | Efield (e1, _) | Earrow (e1, _) | Eindex (e1, _) | Eunary (Deref, e1) ->
      base_lvalue e1
  | Ecast (_, e1) -> base_lvalue e1
  | _ -> None
