type t = Atom of string | List of t list

let atom s = Atom s
let list l = List l

let needs_quoting s =
  String.equal s ""
  || String.exists
       (fun c ->
         match c with
         | ' ' | '(' | ')' | '"' | '\\' | '\n' | '\t' | '\r' -> true
         | c -> Char.code c < 32)
       s

let rec to_buffer buf = function
  | Atom s ->
      if needs_quoting s then begin
        Buffer.add_char buf '"';
        String.iter
          (fun c ->
            match c with
            | '"' -> Buffer.add_string buf "\\\""
            | '\\' -> Buffer.add_string buf "\\\\"
            | '\n' -> Buffer.add_string buf "\\n"
            | '\t' -> Buffer.add_string buf "\\t"
            | '\r' -> Buffer.add_string buf "\\r"
            | c -> Buffer.add_char buf c)
          s;
        Buffer.add_char buf '"'
      end
      else Buffer.add_string buf s
  | List items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ' ';
          to_buffer buf item)
        items;
      Buffer.add_char buf ')'

let to_string t =
  let buf = Buffer.create 256 in
  to_buffer buf t;
  Buffer.contents buf

exception Parse_error of int * string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\n' | '\t' | '\r') ->
      c.pos <- c.pos + 1;
      skip_ws c
  | Some ';' ->
      (* comment to end of line *)
      while peek c <> None && peek c <> Some '\n' do
        c.pos <- c.pos + 1
      done;
      skip_ws c
  | _ -> ()

let parse_quoted c =
  c.pos <- c.pos + 1;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> raise (Parse_error (c.pos, "unterminated quoted atom"))
    | Some '"' ->
        c.pos <- c.pos + 1;
        Buffer.contents buf
    | Some '\\' ->
        c.pos <- c.pos + 1;
        (match peek c with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some ch -> Buffer.add_char buf ch
        | None -> raise (Parse_error (c.pos, "dangling escape")));
        c.pos <- c.pos + 1;
        go ()
    | Some ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ()

let parse_bare c =
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some (' ' | '\n' | '\t' | '\r' | '(' | ')' | '"') | None -> ()
    | Some _ ->
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  if c.pos = start then raise (Parse_error (c.pos, "empty atom"));
  String.sub c.src start (c.pos - start)

let rec parse_one c =
  skip_ws c;
  match peek c with
  | None -> raise (Parse_error (c.pos, "unexpected end of input"))
  | Some '(' ->
      c.pos <- c.pos + 1;
      let items = ref [] in
      let rec go () =
        skip_ws c;
        match peek c with
        | Some ')' -> c.pos <- c.pos + 1
        | None -> raise (Parse_error (c.pos, "unterminated list"))
        | Some _ ->
            items := parse_one c :: !items;
            go ()
      in
      go ();
      List (List.rev !items)
  | Some ')' -> raise (Parse_error (c.pos, "unexpected ')'"))
  | Some '"' -> Atom (parse_quoted c)
  | Some _ -> Atom (parse_bare c)

let of_string src =
  let c = { src; pos = 0 } in
  let t = parse_one c in
  skip_ws c;
  if c.pos <> String.length src then raise (Parse_error (c.pos, "trailing input"));
  t

let of_string_many src =
  let c = { src; pos = 0 } in
  let items = ref [] in
  let rec go () =
    skip_ws c;
    if c.pos < String.length src then begin
      items := parse_one c :: !items;
      go ()
    end
  in
  go ();
  List.rev !items

exception Decode_error of string

let as_atom = function
  | Atom s -> s
  | List _ -> raise (Decode_error "expected atom, got list")

let as_list = function
  | List l -> l
  | Atom a -> raise (Decode_error ("expected list, got atom " ^ a))

let assoc key items =
  match
    List.find_opt
      (function List (Atom k :: _) -> String.equal k key | _ -> false)
      items
  with
  | Some t -> t
  | None -> raise (Decode_error ("missing field " ^ key))

let assoc_opt key items =
  List.find_opt
    (function List (Atom k :: _) -> String.equal k key | _ -> false)
    items

let field1 = function
  | List [ _; payload ] -> payload
  | List (Atom k :: _) -> raise (Decode_error ("field " ^ k ^ " expects one payload"))
  | _ -> raise (Decode_error "malformed field")

let fields = function
  | List (_ :: payloads) -> payloads
  | List [] -> raise (Decode_error "expected field node, got empty list")
  | Atom a -> raise (Decode_error ("expected field node, got atom " ^ a))
