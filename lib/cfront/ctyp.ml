type int_size = Ichar | Ishort | Iint | Ilong | Ilonglong
type float_size = Ffloat | Fdouble

type t =
  | Void
  | Int of { signed : bool; size : int_size }
  | Float of float_size
  | Ptr of t
  | Array of t * int option
  | Func of t * t list * bool
  | Struct of string
  | Union of string
  | Enum of string
  | Named of string
  | Unknown

let int_ = Int { signed = true; size = Iint }
let char_ = Int { signed = true; size = Ichar }
let unsigned_int = Int { signed = false; size = Iint }
let long_ = Int { signed = true; size = Ilong }
let void_ptr = Ptr Void

let rec equal a b =
  match (a, b) with
  | Void, Void | Unknown, Unknown -> true
  | Int a, Int b -> Bool.equal a.signed b.signed && a.size = b.size
  | Float a, Float b -> a = b
  | Ptr a, Ptr b -> equal a b
  | Array (a, na), Array (b, nb) -> equal a b && Option.equal Int.equal na nb
  | Func (ra, pa, va), Func (rb, pb, vb) ->
      equal ra rb && List.length pa = List.length pb && List.for_all2 equal pa pb
      && Bool.equal va vb
  | Struct a, Struct b | Union a, Union b | Enum a, Enum b | Named a, Named b ->
      String.equal a b
  | ( ( Void | Int _ | Float _ | Ptr _ | Array _ | Func _ | Struct _ | Union _ | Enum _
      | Named _ | Unknown ),
      _ ) ->
      false

let int_size_to_string = function
  | Ichar -> "char"
  | Ishort -> "short"
  | Iint -> "int"
  | Ilong -> "long"
  | Ilonglong -> "long long"

let rec pp ppf = function
  | Void -> Format.pp_print_string ppf "void"
  | Int { signed; size } ->
      if not signed then Format.pp_print_string ppf "unsigned ";
      Format.pp_print_string ppf (int_size_to_string size)
  | Float Ffloat -> Format.pp_print_string ppf "float"
  | Float Fdouble -> Format.pp_print_string ppf "double"
  | Ptr t -> Format.fprintf ppf "%a *" pp t
  | Array (t, None) -> Format.fprintf ppf "%a []" pp t
  | Array (t, Some n) -> Format.fprintf ppf "%a [%d]" pp t n
  | Func (r, ps, variadic) ->
      let pp_params ppf = function
        | [] -> Format.pp_print_string ppf "void"
        | ps ->
            Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
              pp ppf ps
      in
      Format.fprintf ppf "%a (%a%s)" pp r pp_params ps (if variadic then ", ..." else "")
  | Struct s -> Format.fprintf ppf "struct %s" s
  | Union s -> Format.fprintf ppf "union %s" s
  | Enum s -> Format.fprintf ppf "enum %s" s
  | Named s -> Format.pp_print_string ppf s
  | Unknown -> Format.pp_print_string ppf "?"

let to_string t = Format.asprintf "%a" pp t

let is_pointer = function Ptr _ | Array _ -> true | _ -> false
let is_integer = function Int _ | Enum _ -> true | _ -> false

let is_scalar = function
  | Int _ | Float _ | Enum _ | Ptr _ | Array _ -> true
  | Void | Func _ | Struct _ | Union _ | Named _ | Unknown -> false

let is_function = function Func _ -> true | _ -> false
let pointee = function Ptr t -> t | Array (t, _) -> t | _ -> Unknown
