type t =
  | IDENT of string
  | INT_LIT of int64
  | FLOAT_LIT of float
  | CHAR_LIT of char
  | STR_LIT of string
  | KW_VOID
  | KW_CHAR
  | KW_SHORT
  | KW_INT
  | KW_LONG
  | KW_FLOAT
  | KW_DOUBLE
  | KW_SIGNED
  | KW_UNSIGNED
  | KW_STRUCT
  | KW_UNION
  | KW_ENUM
  | KW_TYPEDEF
  | KW_STATIC
  | KW_EXTERN
  | KW_CONST
  | KW_VOLATILE
  | KW_INLINE
  | KW_REGISTER
  | KW_AUTO
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | KW_BREAK
  | KW_CONTINUE
  | KW_RETURN
  | KW_GOTO
  | KW_SIZEOF
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | COLON
  | QUESTION
  | DOT
  | ARROW
  | ELLIPSIS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | LT
  | GT
  | LE
  | GE
  | EQEQ
  | NEQ
  | ANDAND
  | OROR
  | SHL
  | SHR
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PERCENT_ASSIGN
  | AMP_ASSIGN
  | PIPE_ASSIGN
  | CARET_ASSIGN
  | SHL_ASSIGN
  | SHR_ASSIGN
  | PLUSPLUS
  | MINUSMINUS
  | DOLLAR_LBRACE
  | DOLLAR_WORD of string
  | FAT_ARROW
  | EOF

let keywords =
  [
    ("void", KW_VOID);
    ("char", KW_CHAR);
    ("short", KW_SHORT);
    ("int", KW_INT);
    ("long", KW_LONG);
    ("float", KW_FLOAT);
    ("double", KW_DOUBLE);
    ("signed", KW_SIGNED);
    ("unsigned", KW_UNSIGNED);
    ("struct", KW_STRUCT);
    ("union", KW_UNION);
    ("enum", KW_ENUM);
    ("typedef", KW_TYPEDEF);
    ("static", KW_STATIC);
    ("extern", KW_EXTERN);
    ("const", KW_CONST);
    ("volatile", KW_VOLATILE);
    ("inline", KW_INLINE);
    ("register", KW_REGISTER);
    ("auto", KW_AUTO);
    ("if", KW_IF);
    ("else", KW_ELSE);
    ("while", KW_WHILE);
    ("do", KW_DO);
    ("for", KW_FOR);
    ("switch", KW_SWITCH);
    ("case", KW_CASE);
    ("default", KW_DEFAULT);
    ("break", KW_BREAK);
    ("continue", KW_CONTINUE);
    ("return", KW_RETURN);
    ("goto", KW_GOTO);
    ("sizeof", KW_SIZEOF);
  ]

let keyword_table =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) keywords;
  tbl

let keyword_of_string s = Hashtbl.find_opt keyword_table s

let to_string = function
  | IDENT s -> s
  | INT_LIT n -> Int64.to_string n
  | FLOAT_LIT f -> string_of_float f
  | CHAR_LIT c -> Printf.sprintf "'%c'" c
  | STR_LIT s -> Printf.sprintf "%S" s
  | KW_VOID -> "void"
  | KW_CHAR -> "char"
  | KW_SHORT -> "short"
  | KW_INT -> "int"
  | KW_LONG -> "long"
  | KW_FLOAT -> "float"
  | KW_DOUBLE -> "double"
  | KW_SIGNED -> "signed"
  | KW_UNSIGNED -> "unsigned"
  | KW_STRUCT -> "struct"
  | KW_UNION -> "union"
  | KW_ENUM -> "enum"
  | KW_TYPEDEF -> "typedef"
  | KW_STATIC -> "static"
  | KW_EXTERN -> "extern"
  | KW_CONST -> "const"
  | KW_VOLATILE -> "volatile"
  | KW_INLINE -> "inline"
  | KW_REGISTER -> "register"
  | KW_AUTO -> "auto"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_DO -> "do"
  | KW_FOR -> "for"
  | KW_SWITCH -> "switch"
  | KW_CASE -> "case"
  | KW_DEFAULT -> "default"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_RETURN -> "return"
  | KW_GOTO -> "goto"
  | KW_SIZEOF -> "sizeof"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | COLON -> ":"
  | QUESTION -> "?"
  | DOT -> "."
  | ARROW -> "->"
  | ELLIPSIS -> "..."
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | BANG -> "!"
  | LT -> "<"
  | GT -> ">"
  | LE -> "<="
  | GE -> ">="
  | EQEQ -> "=="
  | NEQ -> "!="
  | ANDAND -> "&&"
  | OROR -> "||"
  | SHL -> "<<"
  | SHR -> ">>"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | MINUS_ASSIGN -> "-="
  | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/="
  | PERCENT_ASSIGN -> "%="
  | AMP_ASSIGN -> "&="
  | PIPE_ASSIGN -> "|="
  | CARET_ASSIGN -> "^="
  | SHL_ASSIGN -> "<<="
  | SHR_ASSIGN -> ">>="
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | DOLLAR_LBRACE -> "${"
  | DOLLAR_WORD s -> Printf.sprintf "$%s$" s
  | FAT_ARROW -> "==>"
  | EOF -> "<eof>"

let pp ppf t = Format.pp_print_string ppf (to_string t)
