type macro = { m_params : string list option; m_body : string }

type env = (string, macro) Hashtbl.t

exception Cpp_error of Srcloc.t * string

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let parse_macro_def name_and_body =
  (* "NAME rest", "NAME(a, b) rest" *)
  let s = String.trim name_and_body in
  let n = String.length s in
  let rec ident_end i = if i < n && is_ident_char s.[i] then ident_end (i + 1) else i in
  let ie = ident_end 0 in
  let name = String.sub s 0 ie in
  if ie < n && Char.equal s.[ie] '(' then begin
    (* function-like: parameters up to the matching ')' *)
    match String.index_from_opt s ie ')' with
    | None -> (name, { m_params = Some []; m_body = "" })
    | Some close ->
        let params_text = String.sub s (ie + 1) (close - ie - 1) in
        let params =
          if String.trim params_text = "" then []
          else List.map String.trim (String.split_on_char ',' params_text)
        in
        let body =
          if close + 1 >= n then "" else String.trim (String.sub s (close + 1) (n - close - 1))
        in
        (name, { m_params = Some params; m_body = body })
  end
  else
    let body = if ie >= n then "" else String.trim (String.sub s ie (n - ie)) in
    (name, { m_params = None; m_body = body })

let env_of_defines defines =
  let env = Hashtbl.create 16 in
  List.iter
    (fun (name, body) ->
      (* "NAME" / "NAME(a,b)" on the left; parse_macro_def handles both *)
      let n, m = parse_macro_def (name ^ " " ^ body) in
      Hashtbl.replace env n m)
    defines;
  env

(* ------------------------------------------------------------------ *)
(* Expansion                                                           *)
(* ------------------------------------------------------------------ *)

(* Substitute parameters in a macro body by identifier occurrence. *)
let subst_params params args body =
  let assoc = List.combine params args in
  let buf = Buffer.create (String.length body + 16) in
  let n = String.length body in
  let i = ref 0 in
  while !i < n do
    let c = body.[!i] in
    if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char body.[!i] do
        incr i
      done;
      let word = String.sub body start (!i - start) in
      match List.assoc_opt word assoc with
      | Some arg -> Buffer.add_string buf arg
      | None -> Buffer.add_string buf word
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

(* Parse a balanced, comma-separated argument list starting after '('.
   Returns (args, position after ')') or None if unbalanced. *)
let parse_args s start =
  let n = String.length s in
  let rec go i depth current acc in_str in_chr =
    if i >= n then None
    else
      let c = s.[i] in
      if in_str then
        go (i + 1) depth (current ^ String.make 1 c) acc
          (not (Char.equal c '"' && (i = 0 || not (Char.equal s.[i - 1] '\\'))))
          in_chr
      else if in_chr then
        go (i + 1) depth (current ^ String.make 1 c) acc in_str
          (not (Char.equal c '\'' && (i = 0 || not (Char.equal s.[i - 1] '\\'))))
      else
        match c with
        | '"' -> go (i + 1) depth (current ^ "\"") acc true in_chr
        | '\'' -> go (i + 1) depth (current ^ "'") acc in_str true
        | '(' -> go (i + 1) (depth + 1) (current ^ "(") acc in_str in_chr
        | ')' when depth = 0 -> Some (List.rev (String.trim current :: acc), i + 1)
        | ')' -> go (i + 1) (depth - 1) (current ^ ")") acc in_str in_chr
        | ',' when depth = 0 -> go (i + 1) depth "" (String.trim current :: acc) in_str in_chr
        | c -> go (i + 1) depth (current ^ String.make 1 c) acc in_str in_chr
  in
  go start 0 "" [] false false

(* One expansion pass over a line: returns (expanded, any_change).
   [hidden] holds macro names currently being expanded (self-reference
   guard). Strings, chars and comments are copied verbatim. *)
let rec expand_once env hidden line =
  let n = String.length line in
  let buf = Buffer.create (n + 32) in
  let changed = ref false in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if Char.equal c '"' then begin
      (* copy string literal *)
      Buffer.add_char buf c;
      incr i;
      let continue_ = ref true in
      while !continue_ && !i < n do
        Buffer.add_char buf line.[!i];
        if Char.equal line.[!i] '\\' && !i + 1 < n then begin
          Buffer.add_char buf line.[!i + 1];
          i := !i + 2
        end
        else begin
          if Char.equal line.[!i] '"' then continue_ := false;
          incr i
        end
      done
    end
    else if Char.equal c '\'' then begin
      Buffer.add_char buf c;
      incr i;
      let continue_ = ref true in
      while !continue_ && !i < n do
        Buffer.add_char buf line.[!i];
        if Char.equal line.[!i] '\\' && !i + 1 < n then begin
          Buffer.add_char buf line.[!i + 1];
          i := !i + 2
        end
        else begin
          if Char.equal line.[!i] '\'' then continue_ := false;
          incr i
        end
      done
    end
    else if Char.equal c '/' && !i + 1 < n && Char.equal line.[!i + 1] '/' then begin
      Buffer.add_string buf (String.sub line !i (n - !i));
      i := n
    end
    else if Char.equal c '/' && !i + 1 < n && Char.equal line.[!i + 1] '*' then begin
      (* copy comment to its end (or end of line) *)
      let close = ref None in
      let j = ref (!i + 2) in
      while !close = None && !j + 1 < n do
        if Char.equal line.[!j] '*' && Char.equal line.[!j + 1] '/' then close := Some (!j + 2);
        incr j
      done;
      let stop = Option.value !close ~default:n in
      Buffer.add_string buf (String.sub line !i (stop - !i));
      i := stop
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char line.[!i] do
        incr i
      done;
      let word = String.sub line start (!i - start) in
      match Hashtbl.find_opt env word with
      | Some m when not (List.mem word hidden) -> (
          match m.m_params with
          | None ->
              changed := true;
              let body, _ = expand_once env (word :: hidden) m.m_body in
              Buffer.add_string buf body
          | Some params -> (
              (* needs an argument list right here (whitespace allowed) *)
              let j = ref !i in
              while !j < n && (Char.equal line.[!j] ' ' || Char.equal line.[!j] '\t') do
                incr j
              done;
              if !j < n && Char.equal line.[!j] '(' then
                match parse_args line (!j + 1) with
                | Some (args, after) when List.length args = List.length params ->
                    changed := true;
                    let substituted = subst_params params args m.m_body in
                    let body, _ = expand_once env (word :: hidden) substituted in
                    Buffer.add_string buf body;
                    i := after
                | Some (args, after)
                  when params = [] && args = [ "" ] ->
                    changed := true;
                    let body, _ = expand_once env (word :: hidden) m.m_body in
                    Buffer.add_string buf body;
                    i := after
                | _ -> Buffer.add_string buf word
              else Buffer.add_string buf word))
      | _ -> Buffer.add_string buf word
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  (Buffer.contents buf, !changed)

let expand_line env line =
  let rec fix line fuel =
    if fuel = 0 then line
    else
      let line', changed = expand_once env [] line in
      if changed then fix line' (fuel - 1) else line'
  in
  fix line 16

(* ------------------------------------------------------------------ *)
(* #if / #elif integer constant expressions                            *)
(* ------------------------------------------------------------------ *)

(* Resolve [defined(X)] / [defined X] to 1/0 *before* macro expansion
   (expanding the operand first would be wrong: [#if defined(FOO)] asks
   about FOO itself, not its body). *)
let resolve_defined env s =
  let n = String.length s in
  let buf = Buffer.create (n + 8) in
  let i = ref 0 in
  let skip_ws j =
    let j = ref j in
    while !j < n && (Char.equal s.[!j] ' ' || Char.equal s.[!j] '\t') do incr j done;
    !j
  in
  let ident_end j =
    let j = ref j in
    while !j < n && is_ident_char s.[!j] do incr j done;
    !j
  in
  while !i < n do
    let c = s.[!i] in
    if is_ident_start c then begin
      let we = ident_end !i in
      let word = String.sub s !i (we - !i) in
      if String.equal word "defined" then begin
        let j = skip_ws we in
        let operand =
          if j < n && Char.equal s.[j] '(' then begin
            let k = skip_ws (j + 1) in
            let ke = ident_end k in
            if ke > k then
              let close = skip_ws ke in
              if close < n && Char.equal s.[close] ')' then
                Some (String.sub s k (ke - k), close + 1)
              else None
            else None
          end
          else
            let ke = ident_end j in
            if ke > j then Some (String.sub s j (ke - j), ke) else None
        in
        match operand with
        | Some (name, stop) ->
            Buffer.add_string buf (if Hashtbl.mem env name then " 1 " else " 0 ");
            i := stop
        | None ->
            Buffer.add_string buf word;
            i := we
      end
      else begin
        Buffer.add_string buf word;
        i := we
      end
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

type cond_tok =
  | Tnum of int64
  | Top of string  (* operator or parenthesis *)

let tokenize_cond ~err s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let two_char_ops = [ "&&"; "||"; "=="; "!="; "<="; ">="; "<<"; ">>" ] in
  while !i < n do
    let c = s.[!i] in
    if Char.equal c ' ' || Char.equal c '\t' then incr i
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && (is_ident_char s.[!i]) do incr i done;
      let text = String.sub s start (!i - start) in
      (* strip integer suffixes (uUlL) *)
      let stop = ref (String.length text) in
      while
        !stop > 0
        && (match text.[!stop - 1] with 'u' | 'U' | 'l' | 'L' -> true | _ -> false)
      do
        decr stop
      done;
      let text = String.sub text 0 !stop in
      (match Int64.of_string_opt text with
      | Some v -> toks := Tnum v :: !toks
      | None -> raise (err (Printf.sprintf "bad integer '%s' in #if" text)))
    end
    else if is_ident_start c then begin
      (* an identifier that survived macro expansion is undefined: 0 *)
      while !i < n && is_ident_char s.[!i] do incr i done;
      toks := Tnum 0L :: !toks
    end
    else if
      !i + 1 < n && List.mem (String.sub s !i 2) two_char_ops
    then begin
      toks := Top (String.sub s !i 2) :: !toks;
      i := !i + 2
    end
    else
      match c with
      | '!' | '<' | '>' | '+' | '-' | '*' | '/' | '%' | '~' | '(' | ')' | '&' | '|'
      | '^' ->
          toks := Top (String.make 1 c) :: !toks;
          incr i
      | '\'' ->
          (* character constant: value of the (possibly escaped) char *)
          let v, stop =
            if !i + 2 < n && Char.equal s.[!i + 1] '\\' && !i + 3 < n
               && Char.equal s.[!i + 3] '\''
            then
              let e = s.[!i + 2] in
              let v =
                match e with
                | 'n' -> 10 | 't' -> 9 | 'r' -> 13 | '0' -> 0 | c -> Char.code c
              in
              (v, !i + 4)
            else if !i + 2 < n && Char.equal s.[!i + 2] '\'' then
              (Char.code s.[!i + 1], !i + 3)
            else (0, n + 1)
          in
          if stop > n then raise (err "bad character constant in #if")
          else begin
            toks := Tnum (Int64.of_int v) :: !toks;
            i := stop
          end
      | c -> raise (err (Printf.sprintf "unexpected '%c' in #if expression" c))
  done;
  Array.of_list (List.rev !toks)

(* Recursive descent over the C conditional-expression subset cpp needs:
   || && | ^ & (in)equality relational shift additive multiplicative unary. *)
let eval_cond_tokens ~err (toks : cond_tok array) =
  let pos = ref 0 in
  let peek () = if !pos < Array.length toks then Some toks.(!pos) else None in
  let advance () = incr pos in
  let is_op o = match peek () with Some (Top o') -> String.equal o o' | _ -> false in
  let b2i b = if b then 1L else 0L in
  let i2b v = not (Int64.equal v 0L) in
  let rec parse_or () =
    let l = ref (parse_and ()) in
    while is_op "||" do
      advance ();
      let r = parse_and () in
      l := b2i (i2b !l || i2b r)
    done;
    !l
  and parse_and () =
    let l = ref (parse_bitor ()) in
    while is_op "&&" do
      advance ();
      let r = parse_bitor () in
      l := b2i (i2b !l && i2b r)
    done;
    !l
  and parse_bitor () =
    let l = ref (parse_bitxor ()) in
    while is_op "|" do
      advance ();
      l := Int64.logor !l (parse_bitxor ())
    done;
    !l
  and parse_bitxor () =
    let l = ref (parse_bitand ()) in
    while is_op "^" do
      advance ();
      l := Int64.logxor !l (parse_bitand ())
    done;
    !l
  and parse_bitand () =
    let l = ref (parse_eq ()) in
    while is_op "&" do
      advance ();
      l := Int64.logand !l (parse_eq ())
    done;
    !l
  and parse_eq () =
    let l = ref (parse_rel ()) in
    let rec go () =
      if is_op "==" then begin
        advance ();
        l := b2i (Int64.equal !l (parse_rel ()));
        go ()
      end
      else if is_op "!=" then begin
        advance ();
        l := b2i (not (Int64.equal !l (parse_rel ())));
        go ()
      end
    in
    go ();
    !l
  and parse_rel () =
    let l = ref (parse_shift ()) in
    let rec go () =
      let cmp op =
        advance ();
        let r = parse_shift () in
        l := b2i (op (Int64.compare !l r) 0);
        go ()
      in
      if is_op "<=" then cmp ( <= )
      else if is_op ">=" then cmp ( >= )
      else if is_op "<" then cmp ( < )
      else if is_op ">" then cmp ( > )
    in
    go ();
    !l
  and parse_shift () =
    let l = ref (parse_add ()) in
    let rec go () =
      if is_op "<<" then begin
        advance ();
        l := Int64.shift_left !l (Int64.to_int (parse_add ()));
        go ()
      end
      else if is_op ">>" then begin
        advance ();
        l := Int64.shift_right !l (Int64.to_int (parse_add ()));
        go ()
      end
    in
    go ();
    !l
  and parse_add () =
    let l = ref (parse_mul ()) in
    let rec go () =
      if is_op "+" then begin
        advance ();
        l := Int64.add !l (parse_mul ());
        go ()
      end
      else if is_op "-" then begin
        advance ();
        l := Int64.sub !l (parse_mul ());
        go ()
      end
    in
    go ();
    !l
  and parse_mul () =
    let l = ref (parse_unary ()) in
    let rec go () =
      let bin op name =
        advance ();
        let r = parse_unary () in
        if Int64.equal r 0L then raise (err (Printf.sprintf "%s by zero in #if" name))
        else begin
          l := op !l r;
          go ()
        end
      in
      if is_op "*" then begin
        advance ();
        l := Int64.mul !l (parse_unary ());
        go ()
      end
      else if is_op "/" then bin Int64.div "division"
      else if is_op "%" then bin Int64.rem "modulo"
    in
    go ();
    !l
  and parse_unary () =
    if is_op "!" then begin
      advance ();
      b2i (Int64.equal (parse_unary ()) 0L)
    end
    else if is_op "-" then begin
      advance ();
      Int64.neg (parse_unary ())
    end
    else if is_op "+" then begin
      advance ();
      parse_unary ()
    end
    else if is_op "~" then begin
      advance ();
      Int64.lognot (parse_unary ())
    end
    else if is_op "(" then begin
      advance ();
      let v = parse_or () in
      if is_op ")" then advance () else raise (err "missing ')' in #if expression");
      v
    end
    else
      match peek () with
      | Some (Tnum v) ->
          advance ();
          v
      | _ -> raise (err "missing operand in #if expression")
  in
  let v = parse_or () in
  if !pos < Array.length toks then raise (err "trailing tokens in #if expression");
  v

let eval_condition env ~file ~line s =
  let err msg = Cpp_error (Srcloc.make ~file ~line ~col:1, msg) in
  try
    let s = resolve_defined env s in
    let s = expand_line env s in
    (* expansion may reintroduce [defined] from a macro body *)
    let s = resolve_defined env s in
    if String.equal (String.trim s) "" then raise (err "empty #if expression")
    else not (Int64.equal (eval_cond_tokens ~err (tokenize_cond ~err s)) 0L)
  with Cpp_error (loc, msg) ->
    (* A malformed constant expression — division/modulo by zero, an
       operator we don't implement, stray tokens — must not kill the whole
       translation unit (real trees are full of exotic #ifs). Degrade to
       "condition false" with a warning; structural errors (#else without
       #if, include nesting) elsewhere in the driver stay fatal. *)
    Diag.warnf "%s: #if condition treated as false: %s" (Srcloc.to_string loc)
      msg;
    false

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(* Physical lines with continuations joined; each logical line remembers
   how many physical lines it covered so we can keep line numbers stable. *)
let logical_lines src =
  let lines = String.split_on_char '\n' src in
  let rec join acc = function
    | [] -> List.rev acc
    | line :: rest ->
        let rec absorb text count rest =
          if String.length text > 0 && Char.equal text.[String.length text - 1] '\\' then
            match rest with
            | next :: rest' ->
                absorb (String.sub text 0 (String.length text - 1) ^ next) (count + 1) rest'
            | [] -> (text, count, [])
          else (text, count, rest)
        in
        let text, count, rest = absorb line 1 rest in
        join ((text, count) :: acc) rest
  in
  join [] lines

let directive_of line =
  let t = String.trim line in
  if String.length t > 0 && Char.equal t.[0] '#' then begin
    let rest = String.trim (String.sub t 1 (String.length t - 1)) in
    let n = String.length rest in
    let rec word_end i = if i < n && is_ident_char rest.[i] then word_end (i + 1) else i in
    let we = word_end 0 in
    let name = String.sub rest 0 we in
    let arg = if we >= n then "" else String.trim (String.sub rest we (n - we)) in
    Some (name, arg)
  end
  else None

let preprocess ?(defines = []) ?(resolve_include = fun _ -> None) ~file src =
  let env = env_of_defines defines in
  (* output accumulated as lines (reversed) so directive/continuation lines
     can be replaced by exactly as many blank lines, keeping locations
     stable; included files splice their own lines in *)
  let out_lines : string list ref = ref [] in
  let emit_line l = out_lines := l :: !out_lines in
  let blank_lines k = for _ = 1 to k do emit_line "" done in
  (* conditional stack: each frame is (currently_emitting, any_branch_taken) *)
  let stack : (bool * bool) list ref = ref [] in
  let emitting () = List.for_all fst !stack in
  let depth = ref 0 in
  let rec process_source ~file src =
    incr depth;
    if !depth > 16 then
      raise (Cpp_error (Srcloc.make ~file ~line:1 ~col:1, "include nesting too deep"));
    let lineno = ref 0 in
    List.iter
      (fun (line, span) ->
        lineno := !lineno + span;
        match directive_of line with
        | Some ("define", arg) ->
            if emitting () then begin
              let name, m = parse_macro_def arg in
              if String.equal name "" then
                raise
                  (Cpp_error (Srcloc.make ~file ~line:!lineno ~col:1, "bad #define"))
              else Hashtbl.replace env name m
            end;
            blank_lines span
        | Some ("undef", arg) ->
            if emitting () then Hashtbl.remove env (String.trim arg);
            blank_lines span
        | Some ("ifdef", arg) ->
            let hold = Hashtbl.mem env (String.trim arg) in
            stack := (hold, hold) :: !stack;
            blank_lines span
        | Some ("ifndef", arg) ->
            let hold = not (Hashtbl.mem env (String.trim arg)) in
            stack := (hold, hold) :: !stack;
            blank_lines span
        | Some ("if", arg) ->
            (* only evaluate inside an active region: skipped regions may
               contain expressions over undefined syntax we must ignore *)
            let hold =
              emitting () && eval_condition env ~file ~line:!lineno arg
            in
            stack := (hold, hold) :: !stack;
            blank_lines span
        | Some ("else", _) ->
            (match !stack with
            | (_, taken) :: rest -> stack := (not taken, true) :: rest
            | [] ->
                raise
                  (Cpp_error
                     (Srcloc.make ~file ~line:!lineno ~col:1, "#else without #if")));
            blank_lines span
        | Some ("elif", arg) ->
            (match !stack with
            | (_, taken) :: rest ->
                let parent_active = List.for_all fst rest in
                let hold =
                  (not taken) && parent_active
                  && eval_condition env ~file ~line:!lineno arg
                in
                stack := (hold, taken || hold) :: rest
            | [] ->
                raise
                  (Cpp_error
                     (Srcloc.make ~file ~line:!lineno ~col:1, "#elif without #if")));
            blank_lines span
        | Some ("endif", _) ->
            (match !stack with
            | _ :: rest -> stack := rest
            | [] ->
                raise
                  (Cpp_error
                     (Srcloc.make ~file ~line:!lineno ~col:1, "#endif without #if")));
            blank_lines span
        | Some ("include", arg) ->
            if emitting () then begin
              let name =
                let t = String.trim arg in
                let strip_delims l r =
                  if
                    String.length t >= 2
                    && Char.equal t.[0] l
                    && Char.equal t.[String.length t - 1] r
                  then Some (String.sub t 1 (String.length t - 2))
                  else None
                in
                match strip_delims '"' '"' with
                | Some n -> Some n
                | None -> strip_delims '<' '>'
              in
              match Option.map resolve_include name |> Option.join with
              | Some content ->
                  process_source ~file:(Option.get name) content;
                  blank_lines span
              | None ->
                  emit_line "/* include skipped */";
                  blank_lines (span - 1)
            end
            else blank_lines span
        | Some (_, _) ->
            (* #pragma, #error, ...: skipped *)
            blank_lines span
        | None ->
            if emitting () then begin
              emit_line (expand_line env line);
              blank_lines (span - 1)
            end
            else blank_lines span)
      (logical_lines src);
    decr depth
  in
  process_source ~file src;
  String.concat "\n" (List.rev !out_lines)
