type t = { file : string; line : int; col : int }

let dummy = { file = "<none>"; line = 0; col = 0 }
let make ~file ~line ~col = { file; line; col }
let pp ppf l = Format.fprintf ppf "%s:%d:%d" l.file l.line l.col
let to_string l = Format.asprintf "%a" pp l

let cross_file_distance = 10_000

let line_distance a b =
  if String.equal a.file b.file then abs (a.line - b.line)
  else cross_file_distance

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> Int.compare a.col b.col
      | c -> c)
  | c -> c
