let sink : (string -> unit) ref = ref prerr_endline
let count = Atomic.make 0

let warnf fmt =
  Printf.ksprintf
    (fun s ->
      Atomic.incr count;
      !sink ("xgcc: warning: " ^ s))
    fmt

let warnings_emitted () = Atomic.get count
let reset_count () = Atomic.set count 0
