let mutex = Mutex.create ()
let sink : (string -> unit) ref = ref prerr_endline
let count = Atomic.make 0

let warnf fmt =
  Printf.ksprintf
    (fun s ->
      Atomic.incr count;
      let line = "xgcc: warning: " ^ s in
      Mutex.protect mutex (fun () -> !sink line))
    fmt

let with_sink s body =
  let old = Mutex.protect mutex (fun () ->
      let o = !sink in
      sink := s;
      o)
  in
  Fun.protect
    ~finally:(fun () -> Mutex.protect mutex (fun () -> sink := old))
    body

let warnings_emitted () = Atomic.get count
let reset_count () = Atomic.set count 0
