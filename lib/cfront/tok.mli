(** Tokens shared by the C lexer and the metal pattern lexer. *)

type t =
  | IDENT of string
  | INT_LIT of int64
  | FLOAT_LIT of float
  | CHAR_LIT of char
  | STR_LIT of string
  (* keywords *)
  | KW_VOID
  | KW_CHAR
  | KW_SHORT
  | KW_INT
  | KW_LONG
  | KW_FLOAT
  | KW_DOUBLE
  | KW_SIGNED
  | KW_UNSIGNED
  | KW_STRUCT
  | KW_UNION
  | KW_ENUM
  | KW_TYPEDEF
  | KW_STATIC
  | KW_EXTERN
  | KW_CONST
  | KW_VOLATILE
  | KW_INLINE
  | KW_REGISTER
  | KW_AUTO
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | KW_BREAK
  | KW_CONTINUE
  | KW_RETURN
  | KW_GOTO
  | KW_SIZEOF
  (* punctuation and operators *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | COLON
  | QUESTION
  | DOT
  | ARROW
  | ELLIPSIS
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | LT
  | GT
  | LE
  | GE
  | EQEQ
  | NEQ
  | ANDAND
  | OROR
  | SHL
  | SHR
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PERCENT_ASSIGN
  | AMP_ASSIGN
  | PIPE_ASSIGN
  | CARET_ASSIGN
  | SHL_ASSIGN
  | SHR_ASSIGN
  | PLUSPLUS
  | MINUSMINUS
  (* metal-specific lexemes, produced only in metal mode *)
  | DOLLAR_LBRACE  (** "${" opening a callout *)
  | DOLLAR_WORD of string  (** "$end_of_path$" and friends *)
  | FAT_ARROW  (** "==>" *)
  | EOF

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Human-readable rendering for parser error messages. *)

val keyword_of_string : string -> t option
