(** Pretty-printer for the C subset.

    Output is valid C for everything the parser accepts, enabling round-trip
    tests (generate → print → reparse) and readable error reports that quote
    the offending expression. *)

val pp_expr : Format.formatter -> Cast.expr -> unit
val expr_to_string : Cast.expr -> string
val pp_stmt : Format.formatter -> Cast.stmt -> unit
val pp_fundef : Format.formatter -> Cast.fundef -> unit
val pp_global : Format.formatter -> Cast.global -> unit
val pp_tunit : Format.formatter -> Cast.tunit -> unit
val tunit_to_string : Cast.tunit -> string

val pp_decl_like : Format.formatter -> Ctyp.t * string -> unit
(** Print [int *x]-style declarators (C's inside-out syntax). *)
