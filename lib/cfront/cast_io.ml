let s = Sexp.atom
let l = Sexp.list

let loc_to_sexp (loc : Srcloc.t) =
  l [ s "@"; s loc.file; s (string_of_int loc.line); s (string_of_int loc.col) ]

let loc_of_sexp sx =
  match sx with
  | Sexp.List [ Sexp.Atom "@"; Sexp.Atom file; Sexp.Atom line; Sexp.Atom col ] ->
      Srcloc.make ~file ~line:(int_of_string line) ~col:(int_of_string col)
  | _ -> raise (Sexp.Decode_error "bad location")

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let int_size_to_string = function
  | Ctyp.Ichar -> "char"
  | Ctyp.Ishort -> "short"
  | Ctyp.Iint -> "int"
  | Ctyp.Ilong -> "long"
  | Ctyp.Ilonglong -> "llong"

let int_size_of_string = function
  | "char" -> Ctyp.Ichar
  | "short" -> Ctyp.Ishort
  | "int" -> Ctyp.Iint
  | "long" -> Ctyp.Ilong
  | "llong" -> Ctyp.Ilonglong
  | other -> raise (Sexp.Decode_error ("bad int size " ^ other))

let rec ctyp_to_sexp = function
  | Ctyp.Void -> s "void"
  | Ctyp.Unknown -> s "?"
  | Ctyp.Int { signed; size } ->
      l [ s "int"; s (if signed then "s" else "u"); s (int_size_to_string size) ]
  | Ctyp.Float Ctyp.Ffloat -> s "float"
  | Ctyp.Float Ctyp.Fdouble -> s "double"
  | Ctyp.Ptr t -> l [ s "ptr"; ctyp_to_sexp t ]
  | Ctyp.Array (t, None) -> l [ s "arr"; ctyp_to_sexp t ]
  | Ctyp.Array (t, Some n) -> l [ s "arr"; ctyp_to_sexp t; s (string_of_int n) ]
  | Ctyp.Func (r, ps, variadic) ->
      l
        (s (if variadic then "vfunc" else "func")
        :: ctyp_to_sexp r :: List.map ctyp_to_sexp ps)
  | Ctyp.Struct name -> l [ s "struct"; s name ]
  | Ctyp.Union name -> l [ s "union"; s name ]
  | Ctyp.Enum name -> l [ s "enum"; s name ]
  | Ctyp.Named name -> l [ s "named"; s name ]

let rec ctyp_of_sexp sx =
  match sx with
  | Sexp.Atom "void" -> Ctyp.Void
  | Sexp.Atom "?" -> Ctyp.Unknown
  | Sexp.Atom "float" -> Ctyp.Float Ctyp.Ffloat
  | Sexp.Atom "double" -> Ctyp.Float Ctyp.Fdouble
  | Sexp.List [ Sexp.Atom "int"; Sexp.Atom sign; Sexp.Atom size ] ->
      Ctyp.Int { signed = String.equal sign "s"; size = int_size_of_string size }
  | Sexp.List [ Sexp.Atom "ptr"; t ] -> Ctyp.Ptr (ctyp_of_sexp t)
  | Sexp.List [ Sexp.Atom "arr"; t ] -> Ctyp.Array (ctyp_of_sexp t, None)
  | Sexp.List [ Sexp.Atom "arr"; t; Sexp.Atom n ] ->
      Ctyp.Array (ctyp_of_sexp t, Some (int_of_string n))
  | Sexp.List (Sexp.Atom "func" :: r :: ps) ->
      Ctyp.Func (ctyp_of_sexp r, List.map ctyp_of_sexp ps, false)
  | Sexp.List (Sexp.Atom "vfunc" :: r :: ps) ->
      Ctyp.Func (ctyp_of_sexp r, List.map ctyp_of_sexp ps, true)
  | Sexp.List [ Sexp.Atom "struct"; Sexp.Atom n ] -> Ctyp.Struct n
  | Sexp.List [ Sexp.Atom "union"; Sexp.Atom n ] -> Ctyp.Union n
  | Sexp.List [ Sexp.Atom "enum"; Sexp.Atom n ] -> Ctyp.Enum n
  | Sexp.List [ Sexp.Atom "named"; Sexp.Atom n ] -> Ctyp.Named n
  | other -> raise (Sexp.Decode_error ("bad type " ^ Sexp.to_string other))

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let unop_to_string = function
  | Cast.Neg -> "neg"
  | Cast.Lognot -> "not"
  | Cast.Bitnot -> "bnot"
  | Cast.Deref -> "deref"
  | Cast.Addrof -> "addr"
  | Cast.Preinc -> "preinc"
  | Cast.Predec -> "predec"
  | Cast.Postinc -> "postinc"
  | Cast.Postdec -> "postdec"

let unop_of_string = function
  | "neg" -> Cast.Neg
  | "not" -> Cast.Lognot
  | "bnot" -> Cast.Bitnot
  | "deref" -> Cast.Deref
  | "addr" -> Cast.Addrof
  | "preinc" -> Cast.Preinc
  | "predec" -> Cast.Predec
  | "postinc" -> Cast.Postinc
  | "postdec" -> Cast.Postdec
  | other -> raise (Sexp.Decode_error ("bad unop " ^ other))

let binop_to_string = function
  | Cast.Add -> "add"
  | Cast.Sub -> "sub"
  | Cast.Mul -> "mul"
  | Cast.Div -> "div"
  | Cast.Mod -> "mod"
  | Cast.Shl -> "shl"
  | Cast.Shr -> "shr"
  | Cast.Lt -> "lt"
  | Cast.Gt -> "gt"
  | Cast.Le -> "le"
  | Cast.Ge -> "ge"
  | Cast.Eq -> "eq"
  | Cast.Ne -> "ne"
  | Cast.Band -> "band"
  | Cast.Bor -> "bor"
  | Cast.Bxor -> "bxor"
  | Cast.Land -> "land"
  | Cast.Lor -> "lor"

let binop_of_string = function
  | "add" -> Cast.Add
  | "sub" -> Cast.Sub
  | "mul" -> Cast.Mul
  | "div" -> Cast.Div
  | "mod" -> Cast.Mod
  | "shl" -> Cast.Shl
  | "shr" -> Cast.Shr
  | "lt" -> Cast.Lt
  | "gt" -> Cast.Gt
  | "le" -> Cast.Le
  | "ge" -> Cast.Ge
  | "eq" -> Cast.Eq
  | "ne" -> Cast.Ne
  | "band" -> Cast.Band
  | "bor" -> Cast.Bor
  | "bxor" -> Cast.Bxor
  | "land" -> Cast.Land
  | "lor" -> Cast.Lor
  | other -> raise (Sexp.Decode_error ("bad binop " ^ other))

let rec expr_to_sexp (e : Cast.expr) =
  let node =
    match e.enode with
    | Cast.Eint n -> l [ s "i"; s (Int64.to_string n) ]
    | Cast.Efloat f -> l [ s "f"; s (Float.to_string f) ]
    | Cast.Echar c -> l [ s "c"; s (string_of_int (Char.code c)) ]
    | Cast.Estr str -> l [ s "str"; s str ]
    | Cast.Eident x -> l [ s "v"; s x ]
    | Cast.Eunary (u, e1) -> l [ s "u"; s (unop_to_string u); expr_to_sexp e1 ]
    | Cast.Ebinary (o, a, b) ->
        l [ s "b"; s (binop_to_string o); expr_to_sexp a; expr_to_sexp b ]
    | Cast.Eassign (None, a, b) -> l [ s "set"; expr_to_sexp a; expr_to_sexp b ]
    | Cast.Eassign (Some o, a, b) ->
        l [ s "setop"; s (binop_to_string o); expr_to_sexp a; expr_to_sexp b ]
    | Cast.Ecall (f, args) -> l (s "call" :: expr_to_sexp f :: List.map expr_to_sexp args)
    | Cast.Efield (e1, f) -> l [ s "fld"; expr_to_sexp e1; s f ]
    | Cast.Earrow (e1, f) -> l [ s "arw"; expr_to_sexp e1; s f ]
    | Cast.Eindex (a, i) -> l [ s "idx"; expr_to_sexp a; expr_to_sexp i ]
    | Cast.Ecast (t, e1) -> l [ s "cast"; ctyp_to_sexp t; expr_to_sexp e1 ]
    | Cast.Econd (c, t, f) ->
        l [ s "cond"; expr_to_sexp c; expr_to_sexp t; expr_to_sexp f ]
    | Cast.Ecomma (a, b) -> l [ s "comma"; expr_to_sexp a; expr_to_sexp b ]
    | Cast.Esizeof_type t -> l [ s "szt"; ctyp_to_sexp t ]
    | Cast.Esizeof_expr e1 -> l [ s "sze"; expr_to_sexp e1 ]
    | Cast.Einit_list es -> l (s "init" :: List.map expr_to_sexp es)
  in
  l [ node; loc_to_sexp e.eloc ]

let rec expr_of_sexp sx =
  match sx with
  | Sexp.List [ node; locx ] ->
      let loc = loc_of_sexp locx in
      let enode =
        match node with
        | Sexp.List [ Sexp.Atom "i"; Sexp.Atom n ] -> Cast.Eint (Int64.of_string n)
        | Sexp.List [ Sexp.Atom "f"; Sexp.Atom f ] -> Cast.Efloat (float_of_string f)
        | Sexp.List [ Sexp.Atom "c"; Sexp.Atom n ] -> Cast.Echar (Char.chr (int_of_string n))
        | Sexp.List [ Sexp.Atom "str"; Sexp.Atom str ] -> Cast.Estr str
        | Sexp.List [ Sexp.Atom "v"; Sexp.Atom x ] -> Cast.Eident x
        | Sexp.List [ Sexp.Atom "u"; Sexp.Atom u; e1 ] ->
            Cast.Eunary (unop_of_string u, expr_of_sexp e1)
        | Sexp.List [ Sexp.Atom "b"; Sexp.Atom o; a; b ] ->
            Cast.Ebinary (binop_of_string o, expr_of_sexp a, expr_of_sexp b)
        | Sexp.List [ Sexp.Atom "set"; a; b ] ->
            Cast.Eassign (None, expr_of_sexp a, expr_of_sexp b)
        | Sexp.List [ Sexp.Atom "setop"; Sexp.Atom o; a; b ] ->
            Cast.Eassign (Some (binop_of_string o), expr_of_sexp a, expr_of_sexp b)
        | Sexp.List (Sexp.Atom "call" :: f :: args) ->
            Cast.Ecall (expr_of_sexp f, List.map expr_of_sexp args)
        | Sexp.List [ Sexp.Atom "fld"; e1; Sexp.Atom f ] -> Cast.Efield (expr_of_sexp e1, f)
        | Sexp.List [ Sexp.Atom "arw"; e1; Sexp.Atom f ] -> Cast.Earrow (expr_of_sexp e1, f)
        | Sexp.List [ Sexp.Atom "idx"; a; i ] ->
            Cast.Eindex (expr_of_sexp a, expr_of_sexp i)
        | Sexp.List [ Sexp.Atom "cast"; t; e1 ] ->
            Cast.Ecast (ctyp_of_sexp t, expr_of_sexp e1)
        | Sexp.List [ Sexp.Atom "cond"; c; t; f ] ->
            Cast.Econd (expr_of_sexp c, expr_of_sexp t, expr_of_sexp f)
        | Sexp.List [ Sexp.Atom "comma"; a; b ] ->
            Cast.Ecomma (expr_of_sexp a, expr_of_sexp b)
        | Sexp.List [ Sexp.Atom "szt"; t ] -> Cast.Esizeof_type (ctyp_of_sexp t)
        | Sexp.List [ Sexp.Atom "sze"; e1 ] -> Cast.Esizeof_expr (expr_of_sexp e1)
        | Sexp.List (Sexp.Atom "init" :: es) -> Cast.Einit_list (List.map expr_of_sexp es)
        | other -> raise (Sexp.Decode_error ("bad expr " ^ Sexp.to_string other))
      in
      Cast.mk_expr ~loc enode
  | other -> raise (Sexp.Decode_error ("bad expr wrapper " ^ Sexp.to_string other))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let decl_to_sexp (d : Cast.decl) =
  l
    (s "d" :: s d.dname :: ctyp_to_sexp d.dtyp
    :: (match d.dinit with None -> [] | Some e -> [ expr_to_sexp e ]))

let decl_of_sexp = function
  | Sexp.List [ Sexp.Atom "d"; Sexp.Atom name; t ] ->
      { Cast.dname = name; dtyp = ctyp_of_sexp t; dinit = None }
  | Sexp.List [ Sexp.Atom "d"; Sexp.Atom name; t; init ] ->
      { Cast.dname = name; dtyp = ctyp_of_sexp t; dinit = Some (expr_of_sexp init) }
  | other -> raise (Sexp.Decode_error ("bad decl " ^ Sexp.to_string other))

let rec stmt_to_sexp (st : Cast.stmt) =
  let node =
    match st.snode with
    | Cast.Sexpr e -> l [ s "expr"; expr_to_sexp e ]
    | Cast.Sdecl ds -> l (s "decl" :: List.map decl_to_sexp ds)
    | Cast.Sif (c, t, None) -> l [ s "if"; expr_to_sexp c; stmt_to_sexp t ]
    | Cast.Sif (c, t, Some e) ->
        l [ s "ife"; expr_to_sexp c; stmt_to_sexp t; stmt_to_sexp e ]
    | Cast.Swhile (c, b) -> l [ s "while"; expr_to_sexp c; stmt_to_sexp b ]
    | Cast.Sdo (b, c) -> l [ s "do"; stmt_to_sexp b; expr_to_sexp c ]
    | Cast.Sfor (init, c, step, b) ->
        l
          [
            s "for";
            (match init with None -> s "_" | Some st -> stmt_to_sexp st);
            (match c with None -> s "_" | Some e -> expr_to_sexp e);
            (match step with None -> s "_" | Some e -> expr_to_sexp e);
            stmt_to_sexp b;
          ]
    | Cast.Sreturn None -> s "ret"
    | Cast.Sreturn (Some e) -> l [ s "rete"; expr_to_sexp e ]
    | Cast.Sblock ss -> l (s "block" :: List.map stmt_to_sexp ss)
    | Cast.Sbreak -> s "break"
    | Cast.Scontinue -> s "continue"
    | Cast.Sswitch (e, cases) ->
        l
          (s "switch" :: expr_to_sexp e
          :: List.map
               (fun (c : Cast.case) ->
                 l
                   ((match c.case_guard with
                    | None -> s "default"
                    | Some v -> s (Int64.to_string v))
                   :: List.map stmt_to_sexp c.case_body))
               cases)
    | Cast.Sgoto label -> l [ s "goto"; s label ]
    | Cast.Slabel (label, st1) -> l [ s "label"; s label; stmt_to_sexp st1 ]
    | Cast.Snull -> s "skip"
  in
  l [ node; loc_to_sexp st.sloc ]

and stmt_of_sexp sx =
  match sx with
  | Sexp.List [ node; locx ] ->
      let loc = loc_of_sexp locx in
      let snode =
        match node with
        | Sexp.List [ Sexp.Atom "expr"; e ] -> Cast.Sexpr (expr_of_sexp e)
        | Sexp.List (Sexp.Atom "decl" :: ds) -> Cast.Sdecl (List.map decl_of_sexp ds)
        | Sexp.List [ Sexp.Atom "if"; c; t ] ->
            Cast.Sif (expr_of_sexp c, stmt_of_sexp t, None)
        | Sexp.List [ Sexp.Atom "ife"; c; t; e ] ->
            Cast.Sif (expr_of_sexp c, stmt_of_sexp t, Some (stmt_of_sexp e))
        | Sexp.List [ Sexp.Atom "while"; c; b ] ->
            Cast.Swhile (expr_of_sexp c, stmt_of_sexp b)
        | Sexp.List [ Sexp.Atom "do"; b; c ] -> Cast.Sdo (stmt_of_sexp b, expr_of_sexp c)
        | Sexp.List [ Sexp.Atom "for"; init; c; step; b ] ->
            let opt_stmt = function Sexp.Atom "_" -> None | sx -> Some (stmt_of_sexp sx) in
            let opt_expr = function Sexp.Atom "_" -> None | sx -> Some (expr_of_sexp sx) in
            Cast.Sfor (opt_stmt init, opt_expr c, opt_expr step, stmt_of_sexp b)
        | Sexp.Atom "ret" -> Cast.Sreturn None
        | Sexp.List [ Sexp.Atom "rete"; e ] -> Cast.Sreturn (Some (expr_of_sexp e))
        | Sexp.List (Sexp.Atom "block" :: ss) -> Cast.Sblock (List.map stmt_of_sexp ss)
        | Sexp.Atom "break" -> Cast.Sbreak
        | Sexp.Atom "continue" -> Cast.Scontinue
        | Sexp.List (Sexp.Atom "switch" :: e :: cases) ->
            Cast.Sswitch
              ( expr_of_sexp e,
                List.map
                  (function
                    | Sexp.List (guard :: body) ->
                        let case_guard =
                          match guard with
                          | Sexp.Atom "default" -> None
                          | Sexp.Atom v -> Some (Int64.of_string v)
                          | _ -> raise (Sexp.Decode_error "bad case guard")
                        in
                        { Cast.case_guard; case_body = List.map stmt_of_sexp body }
                    | _ -> raise (Sexp.Decode_error "bad case"))
                  cases )
        | Sexp.List [ Sexp.Atom "goto"; Sexp.Atom label ] -> Cast.Sgoto label
        | Sexp.List [ Sexp.Atom "label"; Sexp.Atom label; st1 ] ->
            Cast.Slabel (label, stmt_of_sexp st1)
        | Sexp.Atom "skip" -> Cast.Snull
        | other -> raise (Sexp.Decode_error ("bad stmt " ^ Sexp.to_string other))
      in
      Cast.mk_stmt ~loc snode
  | other -> raise (Sexp.Decode_error ("bad stmt wrapper " ^ Sexp.to_string other))

(* ------------------------------------------------------------------ *)
(* Globals and translation units                                       *)
(* ------------------------------------------------------------------ *)

let global_to_sexp = function
  | Cast.Gfun f ->
      l
        [
          s "fun";
          s f.fname;
          ctyp_to_sexp f.freturn;
          l
            (List.map
               (fun (n, t) -> l [ s n; ctyp_to_sexp t ])
               f.fparams);
          s (if f.fvariadic then "variadic" else "fixed");
          s (if f.fstatic then "static" else "extern");
          loc_to_sexp f.floc;
          s f.ffile;
          stmt_to_sexp f.fbody;
        ]
  | Cast.Gvar { gdecl; gloc; gfile; gstatic } ->
      l
        [
          s "var";
          decl_to_sexp gdecl;
          loc_to_sexp gloc;
          s gfile;
          s (if gstatic then "static" else "extern");
        ]
  | Cast.Gtypedef (name, t) -> l [ s "typedef"; s name; ctyp_to_sexp t ]
  | Cast.Gcomposite { ckind; cname; cfields } ->
      l
        (s (match ckind with `Struct -> "structdef" | `Union -> "uniondef")
        :: s cname
        :: List.map (fun (n, t) -> l [ s n; ctyp_to_sexp t ]) cfields)
  | Cast.Genum { ename; eitems } ->
      l
        (s "enumdef" :: s ename
        :: List.map (fun (n, v) -> l [ s n; s (Int64.to_string v) ]) eitems)
  | Cast.Gproto { pname; ptyp } -> l [ s "proto"; s pname; ctyp_to_sexp ptyp ]
  | Cast.Gskipped { sk_name; sk_from; sk_to; sk_msg } ->
      l
        [
          s "skipped";
          (match sk_name with Some n -> l [ s n ] | None -> l []);
          loc_to_sexp sk_from;
          loc_to_sexp sk_to;
          s sk_msg;
        ]

let named_typ_of_sexp = function
  | Sexp.List [ Sexp.Atom n; t ] -> (n, ctyp_of_sexp t)
  | _ -> raise (Sexp.Decode_error "bad named type")

let global_of_sexp = function
  | Sexp.List
      [ Sexp.Atom "fun"; Sexp.Atom fname; ret; Sexp.List params; Sexp.Atom va;
        Sexp.Atom st; locx; Sexp.Atom ffile; body ] ->
      Cast.Gfun
        {
          fname;
          freturn = ctyp_of_sexp ret;
          fparams = List.map named_typ_of_sexp params;
          fvariadic = String.equal va "variadic";
          fstatic = String.equal st "static";
          floc = loc_of_sexp locx;
          ffile;
          fbody = stmt_of_sexp body;
        }
  | Sexp.List [ Sexp.Atom "var"; d; locx; Sexp.Atom gfile; Sexp.Atom st ] ->
      Cast.Gvar
        {
          gdecl = decl_of_sexp d;
          gloc = loc_of_sexp locx;
          gfile;
          gstatic = String.equal st "static";
        }
  | Sexp.List [ Sexp.Atom "typedef"; Sexp.Atom name; t ] ->
      Cast.Gtypedef (name, ctyp_of_sexp t)
  | Sexp.List (Sexp.Atom "structdef" :: Sexp.Atom cname :: fields) ->
      Cast.Gcomposite
        { ckind = `Struct; cname; cfields = List.map named_typ_of_sexp fields }
  | Sexp.List (Sexp.Atom "uniondef" :: Sexp.Atom cname :: fields) ->
      Cast.Gcomposite
        { ckind = `Union; cname; cfields = List.map named_typ_of_sexp fields }
  | Sexp.List (Sexp.Atom "enumdef" :: Sexp.Atom ename :: items) ->
      Cast.Genum
        {
          ename;
          eitems =
            List.map
              (function
                | Sexp.List [ Sexp.Atom n; Sexp.Atom v ] -> (n, Int64.of_string v)
                | _ -> raise (Sexp.Decode_error "bad enum item"))
              items;
        }
  | Sexp.List [ Sexp.Atom "proto"; Sexp.Atom pname; t ] ->
      Cast.Gproto { pname; ptyp = ctyp_of_sexp t }
  | Sexp.List [ Sexp.Atom "skipped"; name; from_x; to_x; Sexp.Atom sk_msg ] ->
      let sk_name =
        match name with
        | Sexp.List [ Sexp.Atom n ] -> Some n
        | Sexp.List [] -> None
        | _ -> raise (Sexp.Decode_error "bad skipped name")
      in
      Cast.Gskipped
        { sk_name; sk_from = loc_of_sexp from_x; sk_to = loc_of_sexp to_x; sk_msg }
  | other -> raise (Sexp.Decode_error ("bad global " ^ Sexp.to_string other))

let tunit_to_sexp (tu : Cast.tunit) =
  l (s "tunit" :: s tu.tu_file :: List.map global_to_sexp tu.tu_globals)

let tunit_of_sexp = function
  | Sexp.List (Sexp.Atom "tunit" :: Sexp.Atom tu_file :: globals) ->
      { Cast.tu_file; tu_globals = List.map global_of_sexp globals }
  | other -> raise (Sexp.Decode_error ("bad tunit " ^ Sexp.to_string other))

let emit_string tu = Sexp.to_string (tunit_to_sexp tu)
let read_string src = tunit_of_sexp (Sexp.of_string src)

(* Tmp-then-rename: a crash mid-emit must not leave a truncated .mcast
   that a later pass-2 reassembly reads as corrupt. *)
let emit_file path tu =
  let tmp = Filename.temp_file ~temp_dir:(Filename.dirname path) ".mcast" ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc (emit_string tu);
     output_char oc '\n'
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  read_string src

(* Fault-contained variant for pass-2 reassembly: a truncated or corrupt
   [.mcast] becomes a diagnosable [Error], mirroring the cache policy of
   [read_cached] below (same exception set — literal atoms decode with
   int_of_string/Int64.of_string/Char.chr, which raise
   Failure/Invalid_argument on tampered input). *)
let read_file_result path =
  match read_file path with
  | tu -> Ok tu
  | exception
      (( Sexp.Parse_error _ | Sexp.Decode_error _ | Failure _
       | Invalid_argument _ | Sys_error _ | End_of_file ) as e) ->
      Error (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Binary codec                                                         *)
(* ------------------------------------------------------------------ *)

(* The sexp form above stays the interchange format (emit/read, cache
   dumps, body hashing); the cache hot path uses this length-prefixed
   binary encoding instead — decoding it is a single forward scan with
   no tokenising, which is what makes warm probes cheap. Corruption
   surfaces as [Wire.Corrupt] (or a codec exception on a valid frame
   with nonsense contents) and every caller degrades it to a miss. *)

let bad fmt = Printf.ksprintf (fun m -> raise (Wire.Corrupt m)) fmt

let loc_to_bin b (l : Srcloc.t) =
  Wire.string b l.file;
  Wire.int b l.line;
  Wire.int b l.col

let loc_of_bin r =
  let file = Wire.rstring r in
  let line = Wire.rint r in
  let col = Wire.rint r in
  Srcloc.make ~file ~line ~col

let int_size_tag = function
  | Ctyp.Ichar -> 0
  | Ishort -> 1
  | Iint -> 2
  | Ilong -> 3
  | Ilonglong -> 4

let int_size_of_tag = function
  | 0 -> Ctyp.Ichar
  | 1 -> Ishort
  | 2 -> Iint
  | 3 -> Ilong
  | 4 -> Ilonglong
  | n -> bad "bad int size %d" n

let rec ctyp_to_bin b (t : Ctyp.t) =
  match t with
  | Void -> Wire.u8 b 0
  | Int { signed; size } ->
      Wire.u8 b 1;
      Wire.bool b signed;
      Wire.u8 b (int_size_tag size)
  | Float Ffloat -> Wire.u8 b 2
  | Float Fdouble -> Wire.u8 b 3
  | Ptr t ->
      Wire.u8 b 4;
      ctyp_to_bin b t
  | Array (t, n) ->
      Wire.u8 b 5;
      ctyp_to_bin b t;
      Wire.option b Wire.int n
  | Func (r, ps, variadic) ->
      Wire.u8 b 6;
      ctyp_to_bin b r;
      Wire.list b ctyp_to_bin ps;
      Wire.bool b variadic
  | Struct s ->
      Wire.u8 b 7;
      Wire.string b s
  | Union s ->
      Wire.u8 b 8;
      Wire.string b s
  | Enum s ->
      Wire.u8 b 9;
      Wire.string b s
  | Named s ->
      Wire.u8 b 10;
      Wire.string b s
  | Unknown -> Wire.u8 b 11

let rec ctyp_of_bin r : Ctyp.t =
  match Wire.ru8 r with
  | 0 -> Void
  | 1 ->
      let signed = Wire.rbool r in
      Int { signed; size = int_size_of_tag (Wire.ru8 r) }
  | 2 -> Float Ffloat
  | 3 -> Float Fdouble
  | 4 -> Ptr (ctyp_of_bin r)
  | 5 ->
      let t = ctyp_of_bin r in
      Array (t, Wire.roption r Wire.rint)
  | 6 ->
      let ret = ctyp_of_bin r in
      let ps = Wire.rlist r ctyp_of_bin in
      Func (ret, ps, Wire.rbool r)
  | 7 -> Struct (Wire.rstring r)
  | 8 -> Union (Wire.rstring r)
  | 9 -> Enum (Wire.rstring r)
  | 10 -> Named (Wire.rstring r)
  | 11 -> Unknown
  | n -> bad "bad ctyp tag %d" n

let unop_tag = function
  | Cast.Neg -> 0
  | Lognot -> 1
  | Bitnot -> 2
  | Deref -> 3
  | Addrof -> 4
  | Preinc -> 5
  | Predec -> 6
  | Postinc -> 7
  | Postdec -> 8

let unop_of_tag = function
  | 0 -> Cast.Neg
  | 1 -> Lognot
  | 2 -> Bitnot
  | 3 -> Deref
  | 4 -> Addrof
  | 5 -> Preinc
  | 6 -> Predec
  | 7 -> Postinc
  | 8 -> Postdec
  | n -> bad "bad unop tag %d" n

let binop_tag = function
  | Cast.Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | Mod -> 4
  | Shl -> 5
  | Shr -> 6
  | Lt -> 7
  | Gt -> 8
  | Le -> 9
  | Ge -> 10
  | Eq -> 11
  | Ne -> 12
  | Band -> 13
  | Bor -> 14
  | Bxor -> 15
  | Land -> 16
  | Lor -> 17

let binop_of_tag = function
  | 0 -> Cast.Add
  | 1 -> Sub
  | 2 -> Mul
  | 3 -> Div
  | 4 -> Mod
  | 5 -> Shl
  | 6 -> Shr
  | 7 -> Lt
  | 8 -> Gt
  | 9 -> Le
  | 10 -> Ge
  | 11 -> Eq
  | 12 -> Ne
  | 13 -> Band
  | 14 -> Bor
  | 15 -> Bxor
  | 16 -> Land
  | 17 -> Lor
  | n -> bad "bad binop tag %d" n

let rec expr_to_bin b (e : Cast.expr) =
  loc_to_bin b e.eloc;
  match e.enode with
  | Eint n ->
      Wire.u8 b 0;
      Wire.i64 b n
  | Efloat f ->
      Wire.u8 b 1;
      Wire.float b f
  | Echar c ->
      Wire.u8 b 2;
      Wire.u8 b (Char.code c)
  | Estr s ->
      Wire.u8 b 3;
      Wire.string b s
  | Eident x ->
      Wire.u8 b 4;
      Wire.string b x
  | Eunary (u, e1) ->
      Wire.u8 b 5;
      Wire.u8 b (unop_tag u);
      expr_to_bin b e1
  | Ebinary (o, l, r) ->
      Wire.u8 b 6;
      Wire.u8 b (binop_tag o);
      expr_to_bin b l;
      expr_to_bin b r
  | Eassign (o, l, r) ->
      Wire.u8 b 7;
      Wire.option b (fun b o -> Wire.u8 b (binop_tag o)) o;
      expr_to_bin b l;
      expr_to_bin b r
  | Ecall (f, args) ->
      Wire.u8 b 8;
      expr_to_bin b f;
      Wire.list b expr_to_bin args
  | Efield (e1, f) ->
      Wire.u8 b 9;
      expr_to_bin b e1;
      Wire.string b f
  | Earrow (e1, f) ->
      Wire.u8 b 10;
      expr_to_bin b e1;
      Wire.string b f
  | Eindex (a, i) ->
      Wire.u8 b 11;
      expr_to_bin b a;
      expr_to_bin b i
  | Ecast (t, e1) ->
      Wire.u8 b 12;
      ctyp_to_bin b t;
      expr_to_bin b e1
  | Econd (c, t, f) ->
      Wire.u8 b 13;
      expr_to_bin b c;
      expr_to_bin b t;
      expr_to_bin b f
  | Ecomma (l, r) ->
      Wire.u8 b 14;
      expr_to_bin b l;
      expr_to_bin b r
  | Esizeof_type t ->
      Wire.u8 b 15;
      ctyp_to_bin b t
  | Esizeof_expr e1 ->
      Wire.u8 b 16;
      expr_to_bin b e1
  | Einit_list es ->
      Wire.u8 b 17;
      Wire.list b expr_to_bin es

let rec expr_of_bin r : Cast.expr =
  let loc = loc_of_bin r in
  let node : Cast.enode =
    match Wire.ru8 r with
    | 0 -> Eint (Wire.ri64 r)
    | 1 -> Efloat (Wire.rfloat r)
    | 2 -> Echar (Char.chr (Wire.ru8 r))
    | 3 -> Estr (Wire.rstring r)
    | 4 -> Eident (Wire.rstring r)
    | 5 ->
        let u = unop_of_tag (Wire.ru8 r) in
        Eunary (u, expr_of_bin r)
    | 6 ->
        let o = binop_of_tag (Wire.ru8 r) in
        let l = expr_of_bin r in
        Ebinary (o, l, expr_of_bin r)
    | 7 ->
        let o = Wire.roption r (fun r -> binop_of_tag (Wire.ru8 r)) in
        let l = expr_of_bin r in
        Eassign (o, l, expr_of_bin r)
    | 8 ->
        let f = expr_of_bin r in
        Ecall (f, Wire.rlist r expr_of_bin)
    | 9 ->
        let e1 = expr_of_bin r in
        Efield (e1, Wire.rstring r)
    | 10 ->
        let e1 = expr_of_bin r in
        Earrow (e1, Wire.rstring r)
    | 11 ->
        let a = expr_of_bin r in
        Eindex (a, expr_of_bin r)
    | 12 ->
        let t = ctyp_of_bin r in
        Ecast (t, expr_of_bin r)
    | 13 ->
        let c = expr_of_bin r in
        let t = expr_of_bin r in
        Econd (c, t, expr_of_bin r)
    | 14 ->
        let l = expr_of_bin r in
        Ecomma (l, expr_of_bin r)
    | 15 -> Esizeof_type (ctyp_of_bin r)
    | 16 -> Esizeof_expr (expr_of_bin r)
    | 17 -> Einit_list (Wire.rlist r expr_of_bin)
    | n -> bad "bad expr tag %d" n
  in
  Cast.mk_expr ~loc node

let decl_to_bin b (d : Cast.decl) =
  Wire.string b d.dname;
  ctyp_to_bin b d.dtyp;
  Wire.option b expr_to_bin d.dinit

let decl_of_bin r : Cast.decl =
  let dname = Wire.rstring r in
  let dtyp = ctyp_of_bin r in
  { dname; dtyp; dinit = Wire.roption r expr_of_bin }

let rec stmt_to_bin b (s : Cast.stmt) =
  loc_to_bin b s.sloc;
  match s.snode with
  | Sexpr e ->
      Wire.u8 b 0;
      expr_to_bin b e
  | Sdecl ds ->
      Wire.u8 b 1;
      Wire.list b decl_to_bin ds
  | Sif (c, t, e) ->
      Wire.u8 b 2;
      expr_to_bin b c;
      stmt_to_bin b t;
      Wire.option b stmt_to_bin e
  | Swhile (c, body) ->
      Wire.u8 b 3;
      expr_to_bin b c;
      stmt_to_bin b body
  | Sdo (body, c) ->
      Wire.u8 b 4;
      stmt_to_bin b body;
      expr_to_bin b c
  | Sfor (init, c, step, body) ->
      Wire.u8 b 5;
      Wire.option b stmt_to_bin init;
      Wire.option b expr_to_bin c;
      Wire.option b expr_to_bin step;
      stmt_to_bin b body
  | Sreturn e ->
      Wire.u8 b 6;
      Wire.option b expr_to_bin e
  | Sblock ss ->
      Wire.u8 b 7;
      Wire.list b stmt_to_bin ss
  | Sbreak -> Wire.u8 b 8
  | Scontinue -> Wire.u8 b 9
  | Sswitch (e, cases) ->
      Wire.u8 b 10;
      expr_to_bin b e;
      Wire.list b
        (fun b (c : Cast.case) ->
          Wire.option b Wire.i64 c.case_guard;
          Wire.list b stmt_to_bin c.case_body)
        cases
  | Sgoto l ->
      Wire.u8 b 11;
      Wire.string b l
  | Slabel (l, s1) ->
      Wire.u8 b 12;
      Wire.string b l;
      stmt_to_bin b s1
  | Snull -> Wire.u8 b 13

let rec stmt_of_bin r : Cast.stmt =
  let loc = loc_of_bin r in
  let node : Cast.snode =
    match Wire.ru8 r with
    | 0 -> Sexpr (expr_of_bin r)
    | 1 -> Sdecl (Wire.rlist r decl_of_bin)
    | 2 ->
        let c = expr_of_bin r in
        let t = stmt_of_bin r in
        Sif (c, t, Wire.roption r stmt_of_bin)
    | 3 ->
        let c = expr_of_bin r in
        Swhile (c, stmt_of_bin r)
    | 4 ->
        let body = stmt_of_bin r in
        Sdo (body, expr_of_bin r)
    | 5 ->
        let init = Wire.roption r stmt_of_bin in
        let c = Wire.roption r expr_of_bin in
        let step = Wire.roption r expr_of_bin in
        Sfor (init, c, step, stmt_of_bin r)
    | 6 -> Sreturn (Wire.roption r expr_of_bin)
    | 7 -> Sblock (Wire.rlist r stmt_of_bin)
    | 8 -> Sbreak
    | 9 -> Scontinue
    | 10 ->
        let e = expr_of_bin r in
        Sswitch
          ( e,
            Wire.rlist r (fun r : Cast.case ->
                let case_guard = Wire.roption r Wire.ri64 in
                { case_guard; case_body = Wire.rlist r stmt_of_bin }) )
    | 11 -> Sgoto (Wire.rstring r)
    | 12 ->
        let l = Wire.rstring r in
        Slabel (l, stmt_of_bin r)
    | 13 -> Snull
    | n -> bad "bad stmt tag %d" n
  in
  Cast.mk_stmt ~loc node

let global_to_bin b (g : Cast.global) =
  match g with
  | Gfun f ->
      Wire.u8 b 0;
      Wire.string b f.fname;
      ctyp_to_bin b f.freturn;
      Wire.list b
        (fun b (n, t) ->
          Wire.string b n;
          ctyp_to_bin b t)
        f.fparams;
      Wire.bool b f.fvariadic;
      stmt_to_bin b f.fbody;
      loc_to_bin b f.floc;
      Wire.string b f.ffile;
      Wire.bool b f.fstatic
  | Gvar { gdecl; gloc; gfile; gstatic } ->
      Wire.u8 b 1;
      decl_to_bin b gdecl;
      loc_to_bin b gloc;
      Wire.string b gfile;
      Wire.bool b gstatic
  | Gtypedef (name, t) ->
      Wire.u8 b 2;
      Wire.string b name;
      ctyp_to_bin b t
  | Gcomposite { ckind; cname; cfields } ->
      Wire.u8 b 3;
      Wire.u8 b (match ckind with `Struct -> 0 | `Union -> 1);
      Wire.string b cname;
      Wire.list b
        (fun b (n, t) ->
          Wire.string b n;
          ctyp_to_bin b t)
        cfields
  | Genum { ename; eitems } ->
      Wire.u8 b 4;
      Wire.string b ename;
      Wire.list b
        (fun b (n, v) ->
          Wire.string b n;
          Wire.i64 b v)
        eitems
  | Gproto { pname; ptyp } ->
      Wire.u8 b 5;
      Wire.string b pname;
      ctyp_to_bin b ptyp
  | Gskipped sk ->
      Wire.u8 b 6;
      Wire.option b Wire.string sk.sk_name;
      loc_to_bin b sk.sk_from;
      loc_to_bin b sk.sk_to;
      Wire.string b sk.sk_msg

let global_of_bin r : Cast.global =
  match Wire.ru8 r with
  | 0 ->
      let fname = Wire.rstring r in
      let freturn = ctyp_of_bin r in
      let fparams =
        Wire.rlist r (fun r ->
            let n = Wire.rstring r in
            (n, ctyp_of_bin r))
      in
      let fvariadic = Wire.rbool r in
      let fbody = stmt_of_bin r in
      let floc = loc_of_bin r in
      let ffile = Wire.rstring r in
      let fstatic = Wire.rbool r in
      Gfun { fname; freturn; fparams; fvariadic; fbody; floc; ffile; fstatic }
  | 1 ->
      let gdecl = decl_of_bin r in
      let gloc = loc_of_bin r in
      let gfile = Wire.rstring r in
      Gvar { gdecl; gloc; gfile; gstatic = Wire.rbool r }
  | 2 ->
      let name = Wire.rstring r in
      Gtypedef (name, ctyp_of_bin r)
  | 3 ->
      let ckind =
        match Wire.ru8 r with
        | 0 -> `Struct
        | 1 -> `Union
        | n -> bad "bad composite kind %d" n
      in
      let cname = Wire.rstring r in
      let cfields =
        Wire.rlist r (fun r ->
            let n = Wire.rstring r in
            (n, ctyp_of_bin r))
      in
      Gcomposite { ckind; cname; cfields }
  | 4 ->
      let ename = Wire.rstring r in
      let eitems =
        Wire.rlist r (fun r ->
            let n = Wire.rstring r in
            (n, Wire.ri64 r))
      in
      Genum { ename; eitems }
  | 5 ->
      let pname = Wire.rstring r in
      Gproto { pname; ptyp = ctyp_of_bin r }
  | 6 ->
      let sk_name = Wire.roption r Wire.rstring in
      let sk_from = loc_of_bin r in
      let sk_to = loc_of_bin r in
      Gskipped { sk_name; sk_from; sk_to; sk_msg = Wire.rstring r }
  | n -> bad "bad global tag %d" n

let tunit_to_bin b (tu : Cast.tunit) =
  Wire.string b tu.tu_file;
  Wire.list b global_to_bin tu.tu_globals

let tunit_of_bin r : Cast.tunit =
  let tu_file = Wire.rstring r in
  { tu_file; tu_globals = Wire.rlist r global_of_bin }

(* ------------------------------------------------------------------ *)
(* Content-addressed AST object cache                                   *)
(* ------------------------------------------------------------------ *)

(* Bump whenever the sexp encoding above (or the parser semantics that
   feed it) change: every cached object becomes unreachable at once.
   This version also salts the engine's body hashes, so it doubles as
   the semantic version of the AST encoding. *)
let format_version = "mcast-2"

(* Version of the *binary* cache object layout; salted into the
   fingerprint (together with [format_version]) so a layout change
   orphans every on-disk object instead of tripping over it. *)
let cache_version = "mcast-bin-1"
let ast_magic = "XGAST1\n"

let ast_fingerprint ~file ~source =
  (* The file name is part of the key: source locations ([ffile], locs)
     are baked into the emitted AST, so identical text under two names
     must not share an object. *)
  Fingerprint.of_string
    ~salt:(format_version ^ "+" ^ cache_version)
    (file ^ "\x00" ^ source)

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ when Sys.file_exists d -> ()
    end
  in
  go dir

let cached_path ~cache_dir fp = Filename.concat (Filename.concat cache_dir "ast") (fp ^ ".mcast")

let decode_cached_string src =
  let r = Wire.reader ~magic:ast_magic src in
  let tu = tunit_of_bin r in
  if not (Wire.at_end r) then bad "trailing bytes in cache object";
  tu

let read_cached_file path =
  match decode_cached_string (Wire.read_file path) with
  | tu -> Ok tu
  | exception
      ((Wire.Corrupt _ | Failure _ | Invalid_argument _ | Sys_error _) as e) ->
      Error (Printexc.to_string e)

let read_cached ~cache_dir fp =
  let path = cached_path ~cache_dir fp in
  if Sys.file_exists path then
    (* a corrupt, truncated, or vanished object is a miss, never an
       error: the binary decoder raises [Wire.Corrupt] on malformed
       frames (and Failure/Invalid_argument on nonsense payloads such
       as out-of-range char codes) *)
    match read_cached_file path with Ok tu -> Some tu | Error _ -> None
  else None

let write_cached ~cache_dir fp tu =
  let path = cached_path ~cache_dir fp in
  mkdir_p (Filename.dirname path);
  let b = Wire.writer ~magic:ast_magic () in
  tunit_to_bin b tu;
  (* tmp + rename in the same directory so concurrent writers (e.g. two
     [-j] runs sharing a cache) never expose a torn object. *)
  let tmp = Filename.temp_file ~temp_dir:(Filename.dirname path) "obj" ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (Wire.contents b);
  close_out oc;
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Emit output naming                                                   *)
(* ------------------------------------------------------------------ *)

let emit_targets files =
  let plain f = Filename.remove_extension (Filename.basename f) ^ ".mcast" in
  let counts = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let b = plain f in
      Hashtbl.replace counts b (1 + Option.value ~default:0 (Hashtbl.find_opt counts b)))
    files;
  let from_path f =
    let rec strip p =
      if String.length p >= 2 && String.sub p 0 2 = "./" then
        strip (String.sub p 2 (String.length p - 2))
      else p
    in
    let p = strip (Filename.remove_extension f) in
    String.map (function '/' | '\\' | ':' -> '_' | c -> c) p ^ ".mcast"
  in
  let targets =
    List.map
      (fun f ->
        let b = plain f in
        (f, if Hashtbl.find counts b = 1 then b else from_path f))
      files
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (f, t) ->
      match Hashtbl.find_opt seen t with
      | Some prev ->
          invalid_arg
            (Printf.sprintf "emit: output name %s collides for inputs %s and %s" t prev f)
      | None -> Hashtbl.add seen t f)
    targets;
  targets
