exception Lex_error of Srcloc.t * string

type mode = C_mode | Metal_mode
type token = { tok : Tok.t; loc : Srcloc.t }

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
}

let loc_of st = Srcloc.make ~file:st.file ~line:st.line ~col:(st.pos - st.bol + 1)
let error st msg = raise (Lex_error (loc_of st, msg))
let len st = String.length st.src
let at_end st = st.pos >= len st
let peek st = if at_end st then '\000' else st.src.[st.pos]
let peek2 st = if st.pos + 1 >= len st then '\000' else st.src.[st.pos + 1]
let peek3 st = if st.pos + 2 >= len st then '\000' else st.src.[st.pos + 2]

let advance st =
  if not (at_end st) then begin
    if Char.equal st.src.[st.pos] '\n' then begin
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
    end;
    st.pos <- st.pos + 1
  end

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || Char.equal c '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  if at_end st then ()
  else
    match peek st with
    | ' ' | '\t' | '\r' | '\n' ->
        advance st;
        skip_trivia st
    | '/' when Char.equal (peek2 st) '/' ->
        while (not (at_end st)) && not (Char.equal (peek st) '\n') do
          advance st
        done;
        skip_trivia st
    | '/' when Char.equal (peek2 st) '*' ->
        advance st;
        advance st;
        let rec close () =
          if at_end st then error st "unterminated comment"
          else if Char.equal (peek st) '*' && Char.equal (peek2 st) '/' then begin
            advance st;
            advance st
          end
          else begin
            advance st;
            close ()
          end
        in
        close ();
        skip_trivia st
    | '#' when st.pos = st.bol || only_blank_before st ->
        (* preprocessor directive: skip the whole (possibly continued) line *)
        let rec to_eol () =
          if at_end st then ()
          else if Char.equal (peek st) '\\' && Char.equal (peek2 st) '\n' then begin
            advance st;
            advance st;
            to_eol ()
          end
          else if Char.equal (peek st) '\n' then advance st
          else begin
            advance st;
            to_eol ()
          end
        in
        to_eol ();
        skip_trivia st

    | _ -> ()

and only_blank_before st =
  let rec check i =
    if i >= st.pos then true
    else
      match st.src.[i] with ' ' | '\t' -> check (i + 1) | _ -> false
  in
  check st.bol

let lex_ident st =
  let start = st.pos in
  while (not (at_end st)) && is_ident_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_number st =
  let start = st.pos in
  let is_hex_lit =
    Char.equal (peek st) '0' && (Char.equal (peek2 st) 'x' || Char.equal (peek2 st) 'X')
  in
  if is_hex_lit then begin
    advance st;
    advance st;
    while (not (at_end st)) && is_hex st.src.[st.pos] do
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    (* swallow integer suffixes *)
    while (not (at_end st)) && (match peek st with 'u' | 'U' | 'l' | 'L' -> true | _ -> false) do
      advance st
    done;
    try Tok.INT_LIT (Int64.of_string text)
    with _ -> error st ("bad hex literal " ^ text)
  end
  else begin
    while (not (at_end st)) && is_digit (peek st) do
      advance st
    done;
    let is_float =
      (Char.equal (peek st) '.' && is_digit (peek2 st))
      || Char.equal (peek st) 'e'
      || Char.equal (peek st) 'E'
    in
    if is_float then begin
      if Char.equal (peek st) '.' then begin
        advance st;
        while (not (at_end st)) && is_digit (peek st) do
          advance st
        done
      end;
      if Char.equal (peek st) 'e' || Char.equal (peek st) 'E' then begin
        advance st;
        if Char.equal (peek st) '+' || Char.equal (peek st) '-' then advance st;
        while (not (at_end st)) && is_digit (peek st) do
          advance st
        done
      end;
      let text = String.sub st.src start (st.pos - start) in
      (match peek st with 'f' | 'F' | 'l' | 'L' -> advance st | _ -> ());
      try Tok.FLOAT_LIT (float_of_string text)
      with _ -> error st ("bad float literal " ^ text)
    end
    else begin
      let text = String.sub st.src start (st.pos - start) in
      while
        (not (at_end st)) && (match peek st with 'u' | 'U' | 'l' | 'L' -> true | _ -> false)
      do
        advance st
      done;
      (* octal literals: leading 0 *)
      let text =
        if String.length text > 1 && Char.equal text.[0] '0' then "0o" ^ String.sub text 1 (String.length text - 1)
        else text
      in
      try Tok.INT_LIT (Int64.of_string text)
      with _ -> error st ("bad integer literal " ^ text)
    end
  end

let lex_escape st =
  advance st;
  (* past backslash *)
  let c = peek st in
  advance st;
  match c with
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | 'a' -> '\007'
  | 'b' -> '\b'
  | 'f' -> '\012'
  | 'v' -> '\011'
  | c -> c

let lex_string st =
  advance st;
  (* past opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    if at_end st then error st "unterminated string literal"
    else
      match peek st with
      | '"' ->
          advance st;
          Buffer.contents buf
      | '\\' ->
          Buffer.add_char buf (lex_escape st);
          go ()
      | c ->
          advance st;
          Buffer.add_char buf c;
          go ()
  in
  Tok.STR_LIT (go ())

let lex_char st =
  advance st;
  let c = if Char.equal (peek st) '\\' then lex_escape st else (
    let c = peek st in
    advance st;
    c)
  in
  if not (Char.equal (peek st) '\'') then error st "unterminated char literal";
  advance st;
  Tok.CHAR_LIT c

(* A $word$ lexeme like $end_of_path$; also plain $ident used by callout
   suffixes. *)
let lex_dollar st =
  advance st;
  (* past $ *)
  if Char.equal (peek st) '{' then begin
    advance st;
    Tok.DOLLAR_LBRACE
  end
  else begin
    let word = lex_ident st in
    if Char.equal (peek st) '$' then advance st;
    Tok.DOLLAR_WORD word
  end

let next_token mode st =
  skip_trivia st;
  let loc = loc_of st in
  let tok =
    if at_end st then Tok.EOF
    else
      let c = peek st in
      if is_ident_start c then
        let word = lex_ident st in
        match Tok.keyword_of_string word with Some kw -> kw | None -> Tok.IDENT word
      else if is_digit c then lex_number st
      else if Char.equal c '"' then lex_string st
      else if Char.equal c '\'' then lex_char st
      else if Char.equal c '$' && (match mode with Metal_mode -> true | C_mode -> false) then
        lex_dollar st
      else begin
        let two = advance in
        match (c, peek2 st, peek3 st) with
        | '=', '=', '>' when (match mode with Metal_mode -> true | C_mode -> false) ->
            two st; two st; two st; Tok.FAT_ARROW
        | '.', '.', '.' -> two st; two st; two st; Tok.ELLIPSIS
        | '<', '<', '=' -> two st; two st; two st; Tok.SHL_ASSIGN
        | '>', '>', '=' -> two st; two st; two st; Tok.SHR_ASSIGN
        | '-', '>', _ -> two st; two st; Tok.ARROW
        | '+', '+', _ -> two st; two st; Tok.PLUSPLUS
        | '-', '-', _ -> two st; two st; Tok.MINUSMINUS
        | '<', '<', _ -> two st; two st; Tok.SHL
        | '>', '>', _ -> two st; two st; Tok.SHR
        | '<', '=', _ -> two st; two st; Tok.LE
        | '>', '=', _ -> two st; two st; Tok.GE
        | '=', '=', _ -> two st; two st; Tok.EQEQ
        | '!', '=', _ -> two st; two st; Tok.NEQ
        | '&', '&', _ -> two st; two st; Tok.ANDAND
        | '|', '|', _ -> two st; two st; Tok.OROR
        | '+', '=', _ -> two st; two st; Tok.PLUS_ASSIGN
        | '-', '=', _ -> two st; two st; Tok.MINUS_ASSIGN
        | '*', '=', _ -> two st; two st; Tok.STAR_ASSIGN
        | '/', '=', _ -> two st; two st; Tok.SLASH_ASSIGN
        | '%', '=', _ -> two st; two st; Tok.PERCENT_ASSIGN
        | '&', '=', _ -> two st; two st; Tok.AMP_ASSIGN
        | '|', '=', _ -> two st; two st; Tok.PIPE_ASSIGN
        | '^', '=', _ -> two st; two st; Tok.CARET_ASSIGN
        | '(', _, _ -> two st; Tok.LPAREN
        | ')', _, _ -> two st; Tok.RPAREN
        | '{', _, _ -> two st; Tok.LBRACE
        | '}', _, _ -> two st; Tok.RBRACE
        | '[', _, _ -> two st; Tok.LBRACKET
        | ']', _, _ -> two st; Tok.RBRACKET
        | ';', _, _ -> two st; Tok.SEMI
        | ',', _, _ -> two st; Tok.COMMA
        | ':', _, _ -> two st; Tok.COLON
        | '?', _, _ -> two st; Tok.QUESTION
        | '.', _, _ -> two st; Tok.DOT
        | '+', _, _ -> two st; Tok.PLUS
        | '-', _, _ -> two st; Tok.MINUS
        | '*', _, _ -> two st; Tok.STAR
        | '/', _, _ -> two st; Tok.SLASH
        | '%', _, _ -> two st; Tok.PERCENT
        | '&', _, _ -> two st; Tok.AMP
        | '|', _, _ -> two st; Tok.PIPE
        | '^', _, _ -> two st; Tok.CARET
        | '~', _, _ -> two st; Tok.TILDE
        | '!', _, _ -> two st; Tok.BANG
        | '<', _, _ -> two st; Tok.LT
        | '>', _, _ -> two st; Tok.GT
        | '=', _, _ -> two st; Tok.ASSIGN
        | c, _, _ -> error st (Printf.sprintf "unexpected character %C" c)
      end
  in
  { tok; loc }

let tokenize ?(mode = C_mode) ~file src =
  let st = { src; file; pos = 0; line = 1; bol = 0 } in
  let rec go acc =
    let t = next_token mode st in
    match t.tok with Tok.EOF -> List.rev (t :: acc) | _ -> go (t :: acc)
  in
  go []
