(** Recursive-descent parser for the C subset.

    The parser keeps a typedef environment so that [T *x;] parses as a
    declaration when [T] is a known typedef, and an enum-constant environment
    for constant folding of [case] labels. metal pattern fragments reuse
    [expr_of_tokens]/[stmt_of_tokens] with the pattern's hole variables
    pre-registered as ordinary identifiers. *)

exception Parse_error of Srcloc.t * string

val parse_tunit : file:string -> string -> Cast.tunit
(** Parse a whole translation unit from source text, with error recovery:
    a parse error inside one top-level definition does not abort the unit.
    The parser resynchronizes at the next top-level boundary (a [;] or the
    closing [}] at brace depth 0, scanning from the failed definition's
    first token) and records a {!Cast.Gskipped} stub carrying the skipped
    source range and the error message, then keeps parsing. Only lexer
    errors ({!Clex.Lex_error}) still abort the whole unit — there is no
    token stream to resynchronize on.

    The single-fragment entry points below ({!expr_of_string},
    {!stmts_of_string}, {!expr_of_tokens}) deliberately stay strict and
    raise {!Parse_error}: metal pattern compilation must reject bad
    patterns, not silently skip them. *)

val parse_tunit_file : string -> Cast.tunit
(** Read a file from disk and parse it (same error recovery). *)

val expr_of_string : ?typedefs:(string * Ctyp.t) list -> file:string -> string -> Cast.expr
(** Parse a single expression (comma allowed). Used by tests and by the metal
    pattern compiler. *)

val stmts_of_string :
  ?typedefs:(string * Ctyp.t) list -> file:string -> string -> Cast.stmt list
(** Parse a brace-less statement sequence, e.g. a metal pattern written as
    statements. *)

val expr_of_tokens :
  ?typedefs:(string * Ctyp.t) list -> Clex.token list -> Cast.expr * Clex.token list
(** Parse one expression from a token stream, returning unconsumed tokens
    (the terminating [EOF] token always remains). *)

val const_eval : Cast.expr -> int64 option
(** Best-effort constant folding over integer expressions. *)
