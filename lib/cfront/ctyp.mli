(** C types for the subset front end.

    Types are deliberately coarse: the analyses in the paper only need to
    distinguish pointers from scalars and to know struct field layouts, so we
    keep a structural representation with no qualifiers. *)

type int_size = Ichar | Ishort | Iint | Ilong | Ilonglong
type float_size = Ffloat | Fdouble

type t =
  | Void
  | Int of { signed : bool; size : int_size }
  | Float of float_size
  | Ptr of t
  | Array of t * int option
  | Func of t * t list * bool  (** return, params, variadic *)
  | Struct of string
  | Union of string
  | Enum of string
  | Named of string  (** typedef name, resolved through a {!Ctyping.env} *)
  | Unknown  (** escape hatch: undeclared identifiers, unsupported forms *)

val int_ : t
(** Plain signed [int]. *)

val char_ : t
val unsigned_int : t
val long_ : t
val void_ptr : t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val is_pointer : t -> bool
(** Structural test; arrays also count as pointers (they decay). [Named]
    types must be resolved first (see {!Ctyping.resolve}). *)

val is_scalar : t -> bool
(** Integers, floats, enums, and pointers. *)

val is_integer : t -> bool
val is_function : t -> bool

val pointee : t -> t
(** [pointee (Ptr t)] is [t]; [Unknown] otherwise. *)
