exception Parse_error of Srcloc.t * string

type st = {
  toks : Clex.token array;
  mutable idx : int;
  typedefs : (string, Ctyp.t) Hashtbl.t;
  enum_consts : (string, int64) Hashtbl.t;
  file : string;
}

let make_state ?(typedefs = []) ~file toks =
  let st =
    {
      toks = Array.of_list toks;
      idx = 0;
      typedefs = Hashtbl.create 16;
      enum_consts = Hashtbl.create 16;
      file;
    }
  in
  List.iter (fun (n, t) -> Hashtbl.replace st.typedefs n t) typedefs;
  st

let cur st = st.toks.(st.idx)
let cur_tok st = (cur st).Clex.tok
let cur_loc st = (cur st).Clex.loc

let peek_tok st n =
  let i = st.idx + n in
  if i < Array.length st.toks then st.toks.(i).Clex.tok else Tok.EOF

let error st msg = raise (Parse_error (cur_loc st, msg))
let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let eat st tok =
  if cur_tok st = tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (Tok.to_string tok)
         (Tok.to_string (cur_tok st)))

let eat_ident st =
  match cur_tok st with
  | Tok.IDENT s ->
      advance st;
      s
  | t -> error st (Printf.sprintf "expected identifier but found %s" (Tok.to_string t))

let accept st tok =
  if cur_tok st = tok then begin
    advance st;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Type parsing                                                        *)
(* ------------------------------------------------------------------ *)

let is_base_type_tok = function
  | Tok.KW_VOID | Tok.KW_CHAR | Tok.KW_SHORT | Tok.KW_INT | Tok.KW_LONG | Tok.KW_FLOAT
  | Tok.KW_DOUBLE | Tok.KW_SIGNED | Tok.KW_UNSIGNED | Tok.KW_STRUCT | Tok.KW_UNION
  | Tok.KW_ENUM ->
      true
  | _ -> false

let is_qualifier_tok = function
  | Tok.KW_CONST | Tok.KW_VOLATILE | Tok.KW_STATIC | Tok.KW_EXTERN | Tok.KW_INLINE
  | Tok.KW_REGISTER | Tok.KW_AUTO ->
      true
  | _ -> false

let is_type_start st =
  let t = cur_tok st in
  is_base_type_tok t || is_qualifier_tok t || t = Tok.KW_TYPEDEF
  || match t with Tok.IDENT s -> Hashtbl.mem st.typedefs s | _ -> false

(* Parameter names are dropped from Ctyp.Func; function definitions need
   them, so the declarator parser records the most recent (outermost)
   named parameter list here. Domain-local so concurrent parses (parallel
   pass-1 emission) don't clobber each other's in-flight declarator. *)
let last_named_params_key : (string * Ctyp.t) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let last_named_params () = Domain.DLS.get last_named_params_key

type specifiers = {
  spec_typ : Ctyp.t;
  spec_static : bool;
  spec_typedef : bool;
  spec_new_globals : Cast.global list;  (** struct/enum bodies defined inline *)
}

(* Parse declaration specifiers: qualifiers, storage classes and one base
   type. Also handles inline struct/union/enum definitions, returning them
   so the caller can register globals. *)
let rec parse_specifiers st =
  let static = ref false in
  let is_typedef = ref false in
  let signedness = ref None in
  let size_words = ref [] in
  let base = ref None in
  let new_globals = ref [] in
  let rec loop () =
    match cur_tok st with
    | Tok.KW_CONST | Tok.KW_VOLATILE | Tok.KW_INLINE | Tok.KW_REGISTER | Tok.KW_AUTO ->
        advance st;
        loop ()
    | Tok.KW_STATIC ->
        advance st;
        static := true;
        loop ()
    | Tok.KW_EXTERN ->
        advance st;
        loop ()
    | Tok.KW_TYPEDEF ->
        advance st;
        is_typedef := true;
        loop ()
    | Tok.KW_SIGNED ->
        advance st;
        signedness := Some true;
        loop ()
    | Tok.KW_UNSIGNED ->
        advance st;
        signedness := Some false;
        loop ()
    | Tok.KW_SHORT ->
        advance st;
        size_words := `Short :: !size_words;
        loop ()
    | Tok.KW_LONG ->
        advance st;
        size_words := `Long :: !size_words;
        loop ()
    | Tok.KW_VOID ->
        advance st;
        base := Some Ctyp.Void;
        loop ()
    | Tok.KW_CHAR ->
        advance st;
        base := Some (Ctyp.Int { signed = true; size = Ctyp.Ichar });
        loop ()
    | Tok.KW_INT ->
        advance st;
        base := Some Ctyp.int_;
        loop ()
    | Tok.KW_FLOAT ->
        advance st;
        base := Some (Ctyp.Float Ctyp.Ffloat);
        loop ()
    | Tok.KW_DOUBLE ->
        advance st;
        base := Some (Ctyp.Float Ctyp.Fdouble);
        loop ()
    | Tok.KW_STRUCT | Tok.KW_UNION ->
        let kind = if cur_tok st = Tok.KW_STRUCT then `Struct else `Union in
        advance st;
        let name =
          match cur_tok st with
          | Tok.IDENT s ->
              advance st;
              s
          | _ -> Printf.sprintf "<anon%d>" (Cast.fresh_eid ())
        in
        if cur_tok st = Tok.LBRACE then begin
          advance st;
          let fields = ref [] in
          while cur_tok st <> Tok.RBRACE do
            let spec = parse_specifiers st in
            let rec fields_loop () =
              let fname, ftyp = parse_declarator st spec.spec_typ in
              fields := (fname, ftyp) :: !fields;
              if accept st Tok.COMMA then fields_loop ()
            in
            fields_loop ();
            eat st Tok.SEMI
          done;
          eat st Tok.RBRACE;
          new_globals :=
            Cast.Gcomposite { ckind = kind; cname = name; cfields = List.rev !fields }
            :: !new_globals
        end;
        base := Some (match kind with `Struct -> Ctyp.Struct name | `Union -> Ctyp.Union name);
        loop ()
    | Tok.KW_ENUM ->
        advance st;
        let name =
          match cur_tok st with
          | Tok.IDENT s ->
              advance st;
              s
          | _ -> Printf.sprintf "<anon%d>" (Cast.fresh_eid ())
        in
        if cur_tok st = Tok.LBRACE then begin
          advance st;
          let items = ref [] in
          let next = ref 0L in
          while cur_tok st <> Tok.RBRACE do
            let item = eat_ident st in
            let value =
              if accept st Tok.ASSIGN then begin
                match cur_tok st with
                | Tok.INT_LIT n ->
                    advance st;
                    n
                | Tok.MINUS ->
                    advance st;
                    let n =
                      match cur_tok st with
                      | Tok.INT_LIT n ->
                          advance st;
                          n
                      | _ -> error st "expected integer in enum initializer"
                    in
                    Int64.neg n
                | Tok.IDENT other when Hashtbl.mem st.enum_consts other ->
                    advance st;
                    Hashtbl.find st.enum_consts other
                | _ -> error st "expected constant in enum initializer"
              end
              else !next
            in
            next := Int64.add value 1L;
            Hashtbl.replace st.enum_consts item value;
            items := (item, value) :: !items;
            if (not (accept st Tok.COMMA)) && cur_tok st <> Tok.RBRACE then
              error st "expected ',' or '}' in enum body"
          done;
          eat st Tok.RBRACE;
          new_globals := Cast.Genum { ename = name; eitems = List.rev !items } :: !new_globals
        end;
        base := Some (Ctyp.Enum name);
        loop ()
    | Tok.IDENT s when !base = None && !size_words = [] && !signedness = None
                       && Hashtbl.mem st.typedefs s ->
        advance st;
        base := Some (Ctyp.Named s);
        loop ()
    | _ -> ()
  in
  loop ();
  let typ =
    match (!base, !size_words, !signedness) with
    | Some (Ctyp.Int { size = Ctyp.Ichar; _ }), [], Some s ->
        Ctyp.Int { signed = s; size = Ctyp.Ichar }
    | Some t, [], None -> t
    | Some (Ctyp.Int _), words, s | None, ((_ :: _) as words), s ->
        let signed = Option.value s ~default:true in
        let size =
          match words with
          | [ `Short ] -> Ctyp.Ishort
          | [ `Long ] -> Ctyp.Ilong
          | [ `Long; `Long ] -> Ctyp.Ilonglong
          | _ -> Ctyp.Iint
        in
        Ctyp.Int { signed; size }
    | Some (Ctyp.Float Ctyp.Fdouble), [ `Long ], _ -> Ctyp.Float Ctyp.Fdouble
    | Some t, _, _ -> t
    | None, [], Some s -> Ctyp.Int { signed = s; size = Ctyp.Iint }
    | None, [], None -> Ctyp.int_
  in
  {
    spec_typ = typ;
    spec_static = !static;
    spec_typedef = !is_typedef;
    spec_new_globals = List.rev !new_globals;
  }

(* Declarator: pointers, then a direct declarator, then array/function
   suffixes. Returns (name, type). [name] is "" for abstract declarators. *)
and parse_declarator st base =
  let base = parse_pointers st base in
  parse_direct_declarator st base

and parse_pointers st base =
  if accept st Tok.STAR then begin
    let rec quals () =
      match cur_tok st with
      | Tok.KW_CONST | Tok.KW_VOLATILE ->
          advance st;
          quals ()
      | _ -> ()
    in
    quals ();
    parse_pointers st (Ctyp.Ptr base)
  end
  else base

and parse_direct_declarator st base =
  (* Either IDENT, or ( declarator ) for function pointers, or abstract. *)
  match cur_tok st with
  | Tok.IDENT name ->
      advance st;
      let typ = parse_declarator_suffixes st base in
      (name, typ)
  | Tok.LPAREN when peek_tok st 1 = Tok.STAR ->
      (* "( * name)(params)" or "( * name)[n]": parse inner, apply suffixes to base *)
      advance st;
      let inner_base_marker = Ctyp.Unknown in
      let name, inner = parse_declarator st inner_base_marker in
      eat st Tok.RPAREN;
      let typ = parse_declarator_suffixes st base in
      (* Replace the marker inside [inner] with [typ]. *)
      let rec plug t =
        match t with
        | Ctyp.Unknown -> typ
        | Ctyp.Ptr t -> Ctyp.Ptr (plug t)
        | Ctyp.Array (t, n) -> Ctyp.Array (plug t, n)
        | Ctyp.Func (r, ps, v) -> Ctyp.Func (plug r, ps, v)
        | t -> t
      in
      (name, plug inner)
  | _ ->
      (* abstract declarator *)
      let typ = parse_declarator_suffixes st base in
      ("", typ)

and parse_declarator_suffixes st base =
  match cur_tok st with
  | Tok.LBRACKET ->
      advance st;
      let n =
        match cur_tok st with
        | Tok.INT_LIT n ->
            advance st;
            Some (Int64.to_int n)
        | Tok.IDENT s when Hashtbl.mem st.enum_consts s ->
            advance st;
            Some (Int64.to_int (Hashtbl.find st.enum_consts s))
        | _ -> None
      in
      eat st Tok.RBRACKET;
      let inner = parse_declarator_suffixes st base in
      Ctyp.Array (inner, n)
  | Tok.LPAREN ->
      advance st;
      let params, variadic = parse_params st in
      eat st Tok.RPAREN;
      last_named_params () := params;
      Ctyp.Func (base, List.map snd params, variadic)
  | _ -> base

and parse_params st =
  if cur_tok st = Tok.RPAREN then ([], false)
  else if cur_tok st = Tok.KW_VOID && peek_tok st 1 = Tok.RPAREN then begin
    advance st;
    ([], false)
  end
  else begin
    let params = ref [] in
    let variadic = ref false in
    let rec loop () =
      if cur_tok st = Tok.ELLIPSIS then begin
        advance st;
        variadic := true
      end
      else begin
        let spec = parse_specifiers st in
        let name, typ = parse_declarator st spec.spec_typ in
        params := (name, typ) :: !params;
        if accept st Tok.COMMA then loop ()
      end
    in
    loop ();
    (List.rev !params, !variadic)
  end

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let mk st loc enode = ignore st; Cast.mk_expr ~loc enode

(* Does a '(' at the current position start a cast / type, i.e. is the next
   token a type-start? *)
let lparen_is_type st =
  cur_tok st = Tok.LPAREN
  &&
  match peek_tok st 1 with
  | t when is_base_type_tok t -> true
  | Tok.KW_CONST | Tok.KW_VOLATILE -> true
  | Tok.IDENT s -> Hashtbl.mem st.typedefs s
  | _ -> false

let rec parse_expr st : Cast.expr =
  let e = parse_assign st in
  if cur_tok st = Tok.COMMA then begin
    let loc = cur_loc st in
    advance st;
    let rhs = parse_expr st in
    mk st loc (Cast.Ecomma (e, rhs))
  end
  else e

and parse_assign st =
  let lhs = parse_cond st in
  let mk_assign op =
    let loc = cur_loc st in
    advance st;
    let rhs = parse_assign st in
    mk st loc (Cast.Eassign (op, lhs, rhs))
  in
  match cur_tok st with
  | Tok.ASSIGN -> mk_assign None
  | Tok.PLUS_ASSIGN -> mk_assign (Some Cast.Add)
  | Tok.MINUS_ASSIGN -> mk_assign (Some Cast.Sub)
  | Tok.STAR_ASSIGN -> mk_assign (Some Cast.Mul)
  | Tok.SLASH_ASSIGN -> mk_assign (Some Cast.Div)
  | Tok.PERCENT_ASSIGN -> mk_assign (Some Cast.Mod)
  | Tok.AMP_ASSIGN -> mk_assign (Some Cast.Band)
  | Tok.PIPE_ASSIGN -> mk_assign (Some Cast.Bor)
  | Tok.CARET_ASSIGN -> mk_assign (Some Cast.Bxor)
  | Tok.SHL_ASSIGN -> mk_assign (Some Cast.Shl)
  | Tok.SHR_ASSIGN -> mk_assign (Some Cast.Shr)
  | _ -> lhs

and parse_cond st =
  let c = parse_binary st 3 in
  if cur_tok st = Tok.QUESTION then begin
    let loc = cur_loc st in
    advance st;
    let t = parse_assign st in
    eat st Tok.COLON;
    let f = parse_cond st in
    mk st loc (Cast.Econd (c, t, f))
  end
  else c

and binop_of_tok = function
  | Tok.STAR -> Some (Cast.Mul, 12)
  | Tok.SLASH -> Some (Cast.Div, 12)
  | Tok.PERCENT -> Some (Cast.Mod, 12)
  | Tok.PLUS -> Some (Cast.Add, 11)
  | Tok.MINUS -> Some (Cast.Sub, 11)
  | Tok.SHL -> Some (Cast.Shl, 10)
  | Tok.SHR -> Some (Cast.Shr, 10)
  | Tok.LT -> Some (Cast.Lt, 9)
  | Tok.GT -> Some (Cast.Gt, 9)
  | Tok.LE -> Some (Cast.Le, 9)
  | Tok.GE -> Some (Cast.Ge, 9)
  | Tok.EQEQ -> Some (Cast.Eq, 8)
  | Tok.NEQ -> Some (Cast.Ne, 8)
  | Tok.AMP -> Some (Cast.Band, 7)
  | Tok.CARET -> Some (Cast.Bxor, 6)
  | Tok.PIPE -> Some (Cast.Bor, 5)
  | Tok.ANDAND -> Some (Cast.Land, 4)
  | Tok.OROR -> Some (Cast.Lor, 3)
  | _ -> None

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_tok (cur_tok st) with
    | Some (op, prec) when prec >= min_prec ->
        let loc = cur_loc st in
        advance st;
        let rhs = parse_binary st (prec + 1) in
        lhs := mk st loc (Cast.Ebinary (op, !lhs, rhs))
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  let loc = cur_loc st in
  match cur_tok st with
  | Tok.PLUS ->
      advance st;
      parse_unary st
  | Tok.MINUS ->
      advance st;
      mk st loc (Cast.Eunary (Cast.Neg, parse_unary st))
  | Tok.BANG ->
      advance st;
      mk st loc (Cast.Eunary (Cast.Lognot, parse_unary st))
  | Tok.TILDE ->
      advance st;
      mk st loc (Cast.Eunary (Cast.Bitnot, parse_unary st))
  | Tok.STAR ->
      advance st;
      mk st loc (Cast.Eunary (Cast.Deref, parse_unary st))
  | Tok.AMP ->
      advance st;
      mk st loc (Cast.Eunary (Cast.Addrof, parse_unary st))
  | Tok.PLUSPLUS ->
      advance st;
      mk st loc (Cast.Eunary (Cast.Preinc, parse_unary st))
  | Tok.MINUSMINUS ->
      advance st;
      mk st loc (Cast.Eunary (Cast.Predec, parse_unary st))
  | Tok.KW_SIZEOF ->
      advance st;
      if lparen_is_type st then begin
        advance st;
        let spec = parse_specifiers st in
        let _, typ = parse_declarator st spec.spec_typ in
        eat st Tok.RPAREN;
        mk st loc (Cast.Esizeof_type typ)
      end
      else mk st loc (Cast.Esizeof_expr (parse_unary st))
  | Tok.LPAREN when lparen_is_type st ->
      advance st;
      let spec = parse_specifiers st in
      let _, typ = parse_declarator st spec.spec_typ in
      eat st Tok.RPAREN;
      mk st loc (Cast.Ecast (typ, parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    let loc = cur_loc st in
    match cur_tok st with
    | Tok.LPAREN ->
        advance st;
        let args = ref [] in
        if cur_tok st <> Tok.RPAREN then begin
          let rec loop () =
            args := parse_assign st :: !args;
            if accept st Tok.COMMA then loop ()
          in
          loop ()
        end;
        eat st Tok.RPAREN;
        e := mk st loc (Cast.Ecall (!e, List.rev !args))
    | Tok.LBRACKET ->
        advance st;
        let i = parse_expr st in
        eat st Tok.RBRACKET;
        e := mk st loc (Cast.Eindex (!e, i))
    | Tok.DOT ->
        advance st;
        let f = eat_ident st in
        e := mk st loc (Cast.Efield (!e, f))
    | Tok.ARROW ->
        advance st;
        let f = eat_ident st in
        e := mk st loc (Cast.Earrow (!e, f))
    | Tok.PLUSPLUS ->
        advance st;
        e := mk st loc (Cast.Eunary (Cast.Postinc, !e))
    | Tok.MINUSMINUS ->
        advance st;
        e := mk st loc (Cast.Eunary (Cast.Postdec, !e))
    | _ -> continue_ := false
  done;
  !e

and parse_primary st =
  let loc = cur_loc st in
  match cur_tok st with
  | Tok.INT_LIT n ->
      advance st;
      mk st loc (Cast.Eint n)
  | Tok.FLOAT_LIT f ->
      advance st;
      mk st loc (Cast.Efloat f)
  | Tok.CHAR_LIT c ->
      advance st;
      mk st loc (Cast.Echar c)
  | Tok.STR_LIT s ->
      advance st;
      (* adjacent string literal concatenation *)
      let buf = Buffer.create (String.length s) in
      Buffer.add_string buf s;
      let rec more () =
        match cur_tok st with
        | Tok.STR_LIT s2 ->
            advance st;
            Buffer.add_string buf s2;
            more ()
        | _ -> ()
      in
      more ();
      mk st loc (Cast.Estr (Buffer.contents buf))
  | Tok.IDENT x ->
      advance st;
      mk st loc (Cast.Eident x)
  | Tok.LPAREN ->
      advance st;
      let e = parse_expr st in
      eat st Tok.RPAREN;
      e
  | Tok.LBRACE ->
      (* brace initializer in expression position *)
      advance st;
      let items = ref [] in
      if cur_tok st <> Tok.RBRACE then begin
        let rec loop () =
          items := parse_assign st :: !items;
          if accept st Tok.COMMA && cur_tok st <> Tok.RBRACE then loop ()
        in
        loop ()
      end;
      eat st Tok.RBRACE;
      mk st loc (Cast.Einit_list (List.rev !items))
  | t -> error st (Printf.sprintf "unexpected token %s in expression" (Tok.to_string t))

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let rec const_eval (e : Cast.expr) : int64 option =
  let ( let* ) = Option.bind in
  match e.enode with
  | Cast.Eint n -> Some n
  | Cast.Echar c -> Some (Int64.of_int (Char.code c))
  | Cast.Eunary (Cast.Neg, e1) ->
      let* v = const_eval e1 in
      Some (Int64.neg v)
  | Cast.Eunary (Cast.Lognot, e1) ->
      let* v = const_eval e1 in
      Some (if Int64.equal v 0L then 1L else 0L)
  | Cast.Eunary (Cast.Bitnot, e1) ->
      let* v = const_eval e1 in
      Some (Int64.lognot v)
  | Cast.Ebinary (op, l, r) -> (
      let* a = const_eval l in
      let* b = const_eval r in
      let bool_ c = Some (if c then 1L else 0L) in
      match op with
      | Cast.Add -> Some (Int64.add a b)
      | Cast.Sub -> Some (Int64.sub a b)
      | Cast.Mul -> Some (Int64.mul a b)
      | Cast.Div -> if Int64.equal b 0L then None else Some (Int64.div a b)
      | Cast.Mod -> if Int64.equal b 0L then None else Some (Int64.rem a b)
      | Cast.Shl -> Some (Int64.shift_left a (Int64.to_int b land 63))
      | Cast.Shr -> Some (Int64.shift_right a (Int64.to_int b land 63))
      | Cast.Lt -> bool_ (Int64.compare a b < 0)
      | Cast.Gt -> bool_ (Int64.compare a b > 0)
      | Cast.Le -> bool_ (Int64.compare a b <= 0)
      | Cast.Ge -> bool_ (Int64.compare a b >= 0)
      | Cast.Eq -> bool_ (Int64.equal a b)
      | Cast.Ne -> bool_ (not (Int64.equal a b))
      | Cast.Band -> Some (Int64.logand a b)
      | Cast.Bor -> Some (Int64.logor a b)
      | Cast.Bxor -> Some (Int64.logxor a b)
      | Cast.Land -> bool_ ((not (Int64.equal a 0L)) && not (Int64.equal b 0L))
      | Cast.Lor -> bool_ ((not (Int64.equal a 0L)) || not (Int64.equal b 0L)))
  | Cast.Ecast (_, e1) -> const_eval e1
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let mk_stmt loc snode = Cast.mk_stmt ~loc snode

let rec parse_stmt st : Cast.stmt =
  let loc = cur_loc st in
  match cur_tok st with
  | Tok.SEMI ->
      advance st;
      mk_stmt loc Cast.Snull
  | Tok.LBRACE ->
      advance st;
      let stmts = parse_stmt_list st in
      eat st Tok.RBRACE;
      mk_stmt loc (Cast.Sblock stmts)
  | Tok.KW_IF ->
      advance st;
      eat st Tok.LPAREN;
      let c = parse_expr st in
      eat st Tok.RPAREN;
      let t = parse_stmt st in
      let e = if accept st Tok.KW_ELSE then Some (parse_stmt st) else None in
      mk_stmt loc (Cast.Sif (c, t, e))
  | Tok.KW_WHILE ->
      advance st;
      eat st Tok.LPAREN;
      let c = parse_expr st in
      eat st Tok.RPAREN;
      let b = parse_stmt st in
      mk_stmt loc (Cast.Swhile (c, b))
  | Tok.KW_DO ->
      advance st;
      let b = parse_stmt st in
      eat st Tok.KW_WHILE;
      eat st Tok.LPAREN;
      let c = parse_expr st in
      eat st Tok.RPAREN;
      eat st Tok.SEMI;
      mk_stmt loc (Cast.Sdo (b, c))
  | Tok.KW_FOR ->
      advance st;
      eat st Tok.LPAREN;
      let init =
        if cur_tok st = Tok.SEMI then begin
          advance st;
          None
        end
        else if is_type_start st then begin
          let s = parse_declaration_stmt st in
          Some s
        end
        else begin
          let e = parse_expr st in
          eat st Tok.SEMI;
          Some (mk_stmt loc (Cast.Sexpr e))
        end
      in
      let cond = if cur_tok st = Tok.SEMI then None else Some (parse_expr st) in
      eat st Tok.SEMI;
      let step = if cur_tok st = Tok.RPAREN then None else Some (parse_expr st) in
      eat st Tok.RPAREN;
      let b = parse_stmt st in
      mk_stmt loc (Cast.Sfor (init, cond, step, b))
  | Tok.KW_RETURN ->
      advance st;
      let e = if cur_tok st = Tok.SEMI then None else Some (parse_expr st) in
      eat st Tok.SEMI;
      mk_stmt loc (Cast.Sreturn e)
  | Tok.KW_BREAK ->
      advance st;
      eat st Tok.SEMI;
      mk_stmt loc Cast.Sbreak
  | Tok.KW_CONTINUE ->
      advance st;
      eat st Tok.SEMI;
      mk_stmt loc Cast.Scontinue
  | Tok.KW_GOTO ->
      advance st;
      let l = eat_ident st in
      eat st Tok.SEMI;
      mk_stmt loc (Cast.Sgoto l)
  | Tok.KW_SWITCH ->
      advance st;
      eat st Tok.LPAREN;
      let e = parse_expr st in
      eat st Tok.RPAREN;
      eat st Tok.LBRACE;
      let cases = ref [] in
      while cur_tok st <> Tok.RBRACE do
        let guard =
          match cur_tok st with
          | Tok.KW_CASE ->
              advance st;
              let ce = parse_cond st in
              let v =
                match const_eval ce with
                | Some v -> v
                | None -> (
                    match ce.enode with
                    | Cast.Eident s when Hashtbl.mem st.enum_consts s ->
                        Hashtbl.find st.enum_consts s
                    | _ -> error st "case label is not a constant")
              in
              eat st Tok.COLON;
              Some v
          | Tok.KW_DEFAULT ->
              advance st;
              eat st Tok.COLON;
              None
          | _ -> error st "expected case or default in switch body"
        in
        let body = ref [] in
        while
          cur_tok st <> Tok.KW_CASE && cur_tok st <> Tok.KW_DEFAULT
          && cur_tok st <> Tok.RBRACE
        do
          body := parse_stmt st :: !body
        done;
        cases := { Cast.case_guard = guard; case_body = List.rev !body } :: !cases
      done;
      eat st Tok.RBRACE;
      mk_stmt loc (Cast.Sswitch (e, List.rev !cases))
  | Tok.IDENT l when peek_tok st 1 = Tok.COLON && not (Hashtbl.mem st.typedefs l) ->
      advance st;
      advance st;
      let s = parse_stmt st in
      mk_stmt loc (Cast.Slabel (l, s))
  | _ when is_type_start st -> parse_declaration_stmt st
  | _ ->
      let e = parse_expr st in
      eat st Tok.SEMI;
      mk_stmt loc (Cast.Sexpr e)

and parse_stmt_list st =
  let stmts = ref [] in
  while cur_tok st <> Tok.RBRACE && cur_tok st <> Tok.EOF do
    stmts := parse_stmt st :: !stmts
  done;
  List.rev !stmts

and parse_declaration_stmt st =
  let loc = cur_loc st in
  let spec = parse_specifiers st in
  let decls = ref [] in
  let rec loop () =
    let name, typ = parse_declarator st spec.spec_typ in
    let init =
      if accept st Tok.ASSIGN then Some (parse_assign_or_init st) else None
    in
    if spec.spec_typedef then Hashtbl.replace st.typedefs name typ
    else decls := { Cast.dname = name; dtyp = typ; dinit = init } :: !decls;
    if accept st Tok.COMMA then loop ()
  in
  loop ();
  eat st Tok.SEMI;
  mk_stmt loc (Cast.Sdecl (List.rev !decls))

and parse_assign_or_init st =
  if cur_tok st = Tok.LBRACE then parse_primary st else parse_assign st

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_global st : Cast.global list =
  let loc = cur_loc st in
  let spec = parse_specifiers st in
  let emitted = spec.spec_new_globals in
  (* A bare "struct foo { ... };" or "enum e {...};" *)
  if cur_tok st = Tok.SEMI then begin
    advance st;
    emitted
  end
  else begin
    let name, typ = parse_declarator st spec.spec_typ in
    if spec.spec_typedef then begin
      Hashtbl.replace st.typedefs name typ;
      eat st Tok.SEMI;
      emitted @ [ Cast.Gtypedef (name, typ) ]
    end
    else
      match (typ, cur_tok st) with
      | Ctyp.Func (ret, _, variadic), Tok.LBRACE ->
          (* We must re-derive named params: re-parse is awkward, so
             parse_declarator keeps names via parse_params — but the type
             dropped them. We recover them by re-walking the token span is
             overkill; instead parse_params stored names in [last_params]. *)
          let params = !(last_named_params ()) in
          advance st;
          let body_stmts = parse_stmt_list st in
          eat st Tok.RBRACE;
          let body = Cast.mk_stmt ~loc (Cast.Sblock body_stmts) in
          emitted
          @ [
              Cast.Gfun
                {
                  fname = name;
                  freturn = ret;
                  fparams = params;
                  fvariadic = variadic;
                  fbody = body;
                  floc = loc;
                  ffile = st.file;
                  fstatic = spec.spec_static;
                };
            ]
      | Ctyp.Func _, _ ->
          eat st Tok.SEMI;
          emitted @ [ Cast.Gproto { pname = name; ptyp = typ } ]
      | _, _ ->
          let globals = ref emitted in
          let init =
            if accept st Tok.ASSIGN then Some (parse_assign_or_init st) else None
          in
          globals :=
            !globals
            @ [
                Cast.Gvar
                  {
                    gdecl = { Cast.dname = name; dtyp = typ; dinit = init };
                    gloc = loc;
                    gfile = st.file;
                    gstatic = spec.spec_static;
                  };
              ];
          while accept st Tok.COMMA do
            let name, typ = parse_declarator st spec.spec_typ in
            let init =
              if accept st Tok.ASSIGN then Some (parse_assign_or_init st) else None
            in
            globals :=
              !globals
              @ [
                  Cast.Gvar
                    {
                      gdecl = { Cast.dname = name; dtyp = typ; dinit = init };
                      gloc = loc;
                      gfile = st.file;
                      gstatic = spec.spec_static;
                    };
                ]
          done;
          eat st Tok.SEMI;
          !globals
  end

(* --- Error recovery (fault containment) ---------------------------- *)

(* After a parse error, resynchronize at the next plausible top-level
   boundary: scanning from the *start* of the failed definition, consume
   tokens until a ';' at brace depth 0 or the '}' that closes the
   outermost brace. Restarting from the definition's first token (rather
   than the error point) makes the depth count meaningful — an error
   inside a function body still skips exactly to that body's closing
   brace. Every branch below advances, so the scan terminates. *)
let synchronize st =
  let depth = ref 0 in
  let stop = ref false in
  while not !stop do
    match cur_tok st with
    | Tok.EOF -> stop := true
    | Tok.LBRACE ->
        incr depth;
        advance st
    | Tok.RBRACE ->
        decr depth;
        advance st;
        if !depth <= 0 then begin
          (* "struct s { ... };" — fold a trailing ';' into the skip *)
          ignore (accept st Tok.SEMI);
          stop := true
        end
    | Tok.SEMI ->
        advance st;
        if !depth <= 0 then stop := true
    | _ -> advance st
  done

(* Best-effort name for the skip diagnostic: the first identifier that
   looks like a declarator head (directly followed by '('), else the
   first identifier at all. *)
let guess_skipped_name st ~lo ~hi =
  let name = ref None and fn = ref None in
  for i = lo to hi - 1 do
    match st.toks.(i).Clex.tok with
    | Tok.IDENT s ->
        if !name = None then name := Some s;
        if !fn = None && i + 1 < hi && st.toks.(i + 1).Clex.tok = Tok.LPAREN then
          fn := Some s
    | _ -> ()
  done;
  match !fn with Some _ as v -> v | None -> !name

let parse_tunit ~file src =
  let toks = Clex.tokenize ~file src in
  let st = make_state ~file toks in
  let globals = ref [] in
  while cur_tok st <> Tok.EOF do
    let start_idx = st.idx in
    let from_loc = cur_loc st in
    match parse_global st with
    | gs -> globals := !globals @ gs
    | exception Parse_error (eloc, msg) ->
        (* Drop the broken definition, keep the rest of the unit: record
           a stub carrying the skipped range and the error so pass 2 can
           report per-function skip diagnostics instead of dying. *)
        st.idx <- start_idx;
        synchronize st;
        let last = max start_idx (st.idx - 1) in
        let sk =
          {
            Cast.sk_name = guess_skipped_name st ~lo:start_idx ~hi:st.idx;
            sk_from = from_loc;
            sk_to = st.toks.(last).Clex.loc;
            sk_msg = Printf.sprintf "%s: %s" (Srcloc.to_string eloc) msg;
          }
        in
        globals := !globals @ [ Cast.Gskipped sk ];
        (* guarantee progress even when the error is on the very token
           the scan would stop at *)
        if st.idx = start_idx then advance st
  done;
  { Cast.tu_file = file; tu_globals = !globals }

let parse_tunit_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse_tunit ~file:path src

let expr_of_tokens ?typedefs toks =
  let st = make_state ?typedefs ~file:"<expr>" toks in
  let e = parse_expr st in
  let rest = Array.to_list (Array.sub st.toks st.idx (Array.length st.toks - st.idx)) in
  (e, rest)

let expr_of_string ?typedefs ~file src =
  let toks = Clex.tokenize ~file src in
  let st = make_state ?typedefs ~file toks in
  let e = parse_expr st in
  if cur_tok st <> Tok.EOF then error st "trailing tokens after expression";
  e

let stmts_of_string ?typedefs ~file src =
  let toks = Clex.tokenize ~file src in
  let st = make_state ?typedefs ~file toks in
  let stmts = parse_stmt_list st in
  if cur_tok st <> Tok.EOF then error st "trailing tokens after statements";
  stmts
