(** A miniature C preprocessor.

    The original xgcc sat behind gcc's cpp, so every checker matched
    {e post-expansion} code — kernel idioms like
    [#define KFREE(p) do { kfree(p); } while (0)] still triggered the free
    checker. This module provides the subset of cpp that systems-code
    idioms need:

    - object-like and function-like [#define] (textual substitution with
      balanced-parenthesis argument parsing, recursive expansion with a
      self-reference guard), [#undef];
    - [#ifdef] / [#ifndef] / [#else] / [#endif], plus [#if] / [#elif]
      over integer constant expressions: [defined(X)] / [defined X],
      decimal/hex/octal and character literals, unary [! ~ + -], binary
      [* / % + - << >> < <= > >= == != & ^ | && ||], and parentheses.
      Macros in the expression are expanded first; identifiers that
      survive expansion evaluate to 0, as in C. Expressions inside
      inactive regions are not evaluated. A condition that cannot be
      evaluated — division or modulo by zero, an unhandled operator,
      stray tokens — degrades to false with a {!Diag.warnf} warning
      instead of raising, so one bad [#if] cannot kill the translation
      unit;
    - [#include "file"] through a caller-supplied resolver;
    - line continuations, and comment/string protection (no expansion
      inside string or character literals, or comments).

    Not supported (and silently skipped as directives): [#pragma],
    [#error], token pasting [##], stringising [#], variadic macros. *)

type macro = {
  m_params : string list option;  (** [None] for object-like macros *)
  m_body : string;
}

type env

val env_of_defines : (string * string) list -> env
(** [("NAME", "body")] pairs become object-like macros; a name containing
    ["("] such as ["MAX(a,b)"] defines a function-like macro. *)

exception Cpp_error of Srcloc.t * string

val preprocess :
  ?defines:(string * string) list ->
  ?resolve_include:(string -> string option) ->
  file:string ->
  string ->
  string
(** Expand the source text. Unresolvable includes are replaced by a comment
    (the paper's engine likewise "silently continues" past missing
    definitions). Line counts are preserved for directive lines so source
    locations stay meaningful. *)

val expand_line : env -> string -> string
(** Macro-expand one logical line (exposed for tests). *)
