(** Minimal s-expressions, used to serialise ASTs between the two analysis
    passes (Section 6: pass 1 "compiles each file in isolation, emitting
    ASTs to a temporary file"; pass 2 "reads these temporary files [and]
    reassembles their ASTs"). *)

type t = Atom of string | List of t list

val atom : string -> t
val list : t list -> t

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

exception Parse_error of int * string
(** Byte offset and message. *)

val of_string : string -> t
(** Parse exactly one s-expression (trailing whitespace allowed). Atoms with
    spaces, parens, quotes or control characters round-trip via quoting. *)

val of_string_many : string -> t list

(** {1 Decoding helpers} *)

exception Decode_error of string

val as_atom : t -> string
val as_list : t -> t list

val assoc : string -> t list -> t
(** Find [(key ...)] in a field list; raises {!Decode_error} if missing.
    Returns the whole [(key v1 v2 ...)] node. *)

val assoc_opt : string -> t list -> t option

val field1 : t -> t
(** The single payload of a [(key payload)] node. *)

val fields : t -> t list
(** All payloads of a [(key p1 p2 ...)] node. *)
