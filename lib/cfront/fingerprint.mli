(** Content fingerprints for the persistent incremental cache.

    A fingerprint is a hex digest of some analysis input — post-preprocess
    source text, a serialised AST, an extension's metal source — salted
    with a version string so that format or semantics changes invalidate
    every stale cache entry at once rather than silently reusing it.

    Fingerprints are pure content hashes: no timestamps, no absolute
    paths beyond what the caller folds in. Equal inputs (under the same
    salt) always yield equal fingerprints across runs and machines, which
    is what makes cache entries shareable and warm runs reproducible. *)

type t = string
(** Lowercase hex digest. *)

val of_string : ?salt:string -> string -> t
(** [of_string ?salt text] hashes [text], prefixed by [salt] (default
    empty). Use a version salt for any on-disk format. *)

val combine : t list -> t
(** Hash of an ordered list of fingerprints (order-sensitive). *)

val combine_pairs : (string * t) list -> t
(** Hash of labelled fingerprints, e.g. [(function name, body hash)];
    order-sensitive — sort first for set semantics. *)

val short : t -> string
(** First 8 hex characters, for human-facing disambiguation suffixes. *)
