module Smap = Map.Make (String)

type env = {
  typedefs : Ctyp.t Smap.t;
  fields : (string * Ctyp.t) list Smap.t;  (* struct/union name -> fields *)
  enum_consts : int64 Smap.t;
  vars : Ctyp.t Smap.t;
  funcs : Ctyp.t Smap.t;
  defs : Cast.fundef Smap.t;
  globals_meta : (string * bool) Smap.t;  (* var -> defining file, is_static *)
}

let empty =
  {
    typedefs = Smap.empty;
    fields = Smap.empty;
    enum_consts = Smap.empty;
    vars = Smap.empty;
    funcs = Smap.empty;
    defs = Smap.empty;
    globals_meta = Smap.empty;
  }

let rec resolve env t =
  match t with
  | Ctyp.Named n -> (
      match Smap.find_opt n env.typedefs with
      | Some t' when not (Ctyp.equal t t') -> resolve env t'
      | _ -> Ctyp.Unknown)
  | t -> t

let add_global env (g : Cast.global) =
  match g with
  | Cast.Gfun f ->
      let typ = Ctyp.Func (f.freturn, List.map snd f.fparams, f.fvariadic) in
      {
        env with
        funcs = Smap.add f.fname typ env.funcs;
        defs = Smap.add f.fname f env.defs;
      }
  | Cast.Gvar { gdecl; gfile; gstatic; _ } ->
      {
        env with
        vars = Smap.add gdecl.dname gdecl.dtyp env.vars;
        globals_meta = Smap.add gdecl.dname (gfile, gstatic) env.globals_meta;
      }
  | Cast.Gtypedef (n, t) -> { env with typedefs = Smap.add n t env.typedefs }
  | Cast.Gcomposite { cname; cfields; _ } ->
      { env with fields = Smap.add cname cfields env.fields }
  | Cast.Genum { eitems; _ } ->
      {
        env with
        enum_consts =
          List.fold_left (fun m (n, v) -> Smap.add n v m) env.enum_consts eitems;
      }
  | Cast.Gproto { pname; ptyp } -> (
      match ptyp with
      | Ctyp.Func _ -> { env with funcs = Smap.add pname ptyp env.funcs }
      | t -> { env with vars = Smap.add pname t env.vars })
  (* a skipped definition contributes nothing: calls to its name stay
     undefined, i.e. the conservative call model *)
  | Cast.Gskipped _ -> env

let add_tunit env (tu : Cast.tunit) = List.fold_left add_global env tu.tu_globals
let of_program tus = List.fold_left add_tunit empty tus

let rec locals_of_stmt acc (s : Cast.stmt) =
  match s.snode with
  | Cast.Sdecl ds ->
      List.fold_left (fun acc (d : Cast.decl) -> (d.dname, d.dtyp) :: acc) acc ds
  | Cast.Sif (_, t, e) ->
      let acc = locals_of_stmt acc t in
      Option.fold ~none:acc ~some:(locals_of_stmt acc) e
  | Cast.Swhile (_, b) | Cast.Sdo (b, _) | Cast.Slabel (_, b) -> locals_of_stmt acc b
  | Cast.Sfor (init, _, _, b) ->
      let acc = Option.fold ~none:acc ~some:(locals_of_stmt acc) init in
      locals_of_stmt acc b
  | Cast.Sblock ss -> List.fold_left locals_of_stmt acc ss
  | Cast.Sswitch (_, cases) ->
      List.fold_left
        (fun acc (c : Cast.case) -> List.fold_left locals_of_stmt acc c.case_body)
        acc cases
  | Cast.Sexpr _ | Cast.Sreturn _ | Cast.Sbreak | Cast.Scontinue | Cast.Sgoto _
  | Cast.Snull ->
      acc

let enter_function env (f : Cast.fundef) =
  let vars =
    List.fold_left (fun m (n, t) -> Smap.add n t m) env.vars f.fparams
  in
  let vars =
    List.fold_left
      (fun m (n, t) -> Smap.add n t m)
      vars
      (List.rev (locals_of_stmt [] f.fbody))
  in
  { env with vars }

let lookup_var env n = Smap.find_opt n env.vars
let lookup_global_info env n = Smap.find_opt n env.globals_meta
let lookup_fields env n = Smap.find_opt n env.fields
let lookup_function env n = Smap.find_opt n env.funcs
let lookup_fundef env n = Smap.find_opt n env.defs
let fundefs env = List.map snd (Smap.bindings env.defs)

let field_type env composite fname =
  match resolve env composite with
  | Ctyp.Struct n | Ctyp.Union n -> (
      match Smap.find_opt n env.fields with
      | Some fields -> (
          match List.assoc_opt fname fields with Some t -> t | None -> Ctyp.Unknown)
      | None -> Ctyp.Unknown)
  | _ -> Ctyp.Unknown

(* [resolve] only unfolds the head; for typing we want the head resolved at
   each step. *)
let head env t = match t with Ctyp.Named _ -> resolve env t | t -> t

let rec type_of_expr env (e : Cast.expr) : Ctyp.t =
  match e.enode with
  | Cast.Eint _ -> Ctyp.int_
  | Cast.Efloat _ -> Ctyp.Float Ctyp.Fdouble
  | Cast.Echar _ -> Ctyp.char_
  | Cast.Estr _ -> Ctyp.Ptr Ctyp.char_
  | Cast.Eident x -> (
      match lookup_var env x with
      | Some t -> t
      | None -> (
          match lookup_function env x with
          | Some t -> t
          | None ->
              if Smap.mem x env.enum_consts then Ctyp.int_ else Ctyp.Unknown))
  | Cast.Eunary (Cast.Deref, e1) ->
      head env (Ctyp.pointee (head env (type_of_expr env e1)))
  | Cast.Eunary (Cast.Addrof, e1) -> Ctyp.Ptr (type_of_expr env e1)
  | Cast.Eunary (Cast.Lognot, _) -> Ctyp.int_
  | Cast.Eunary (_, e1) -> type_of_expr env e1
  | Cast.Ebinary ((Cast.Lt | Cast.Gt | Cast.Le | Cast.Ge | Cast.Eq | Cast.Ne | Cast.Land | Cast.Lor), _, _)
    ->
      Ctyp.int_
  | Cast.Ebinary ((Cast.Add | Cast.Sub), l, r) ->
      (* pointer arithmetic keeps the pointer type *)
      let tl = head env (type_of_expr env l) in
      let tr = head env (type_of_expr env r) in
      if Ctyp.is_pointer tl then tl else if Ctyp.is_pointer tr then tr else tl
  | Cast.Ebinary (_, l, _) -> type_of_expr env l
  | Cast.Eassign (_, l, _) -> type_of_expr env l
  | Cast.Ecall (f, _) -> (
      match head env (type_of_expr env f) with
      | Ctyp.Func (r, _, _) -> r
      | Ctyp.Ptr (Ctyp.Func (r, _, _)) -> r
      | _ -> Ctyp.Unknown)
  | Cast.Efield (e1, f) -> field_type env (type_of_expr env e1) f
  | Cast.Earrow (e1, f) ->
      field_type env (Ctyp.pointee (head env (type_of_expr env e1))) f
  | Cast.Eindex (a, _) -> head env (Ctyp.pointee (head env (type_of_expr env a)))
  | Cast.Ecast (t, _) -> t
  | Cast.Econd (_, t, _) -> type_of_expr env t
  | Cast.Ecomma (_, r) -> type_of_expr env r
  | Cast.Esizeof_type _ | Cast.Esizeof_expr _ -> Ctyp.unsigned_int
  | Cast.Einit_list _ -> Ctyp.Unknown

let is_pointer_expr env e =
  let t = head env (type_of_expr env e) in
  Ctyp.is_pointer t
  || (match e.enode with Cast.Eunary (Cast.Addrof, _) | Cast.Estr _ -> true | _ -> false)

let is_scalar_expr env e =
  let t = head env (type_of_expr env e) in
  Ctyp.is_scalar t
