(** User-facing warning channel for fault-containment diagnostics.

    Reports on stdout must stay machine-parseable, so every degradation
    notice — skipped definitions, unparseable files, exhausted analysis
    budgets, duplicate definitions — goes through this one function, which
    writes a single [xgcc: warning: ...] line to stderr. Libraries call it
    directly instead of each inventing a logging convention. *)

val warnf : ('a, unit, string, unit) format4 -> 'a
(** [warnf fmt ...] emits one warning line, prefixed with
    [xgcc: warning: ], through the current {!sink}. *)

val sink : (string -> unit) ref
(** Where finished warning lines go. Defaults to stderr
    ([prerr_endline]); tests swap it to capture diagnostics, the CLI
    leaves it alone. The line passed in already carries the prefix.
    Every emission holds an internal mutex across the sink call, so
    warnings from worker domains cannot interleave mid-line and a sink
    swap never catches a warning in flight. *)

val with_sink : (string -> unit) -> (unit -> 'a) -> 'a
(** [with_sink s body] routes every warning emitted during [body] —
    including warnings raised on worker domains — to [s], restoring the
    previous sink afterwards even on exception. The swap happens under
    the emission mutex, so no in-flight warning can land on the old sink
    mid-swap. The serve daemon uses this to give each request its own
    diagnostic buffer instead of leaking warnings into a concurrent
    request's reply. *)

val warnings_emitted : unit -> int
(** Warnings emitted through {!warnf} since the last {!reset_count} —
    process-local observability for [--stats]. *)

val reset_count : unit -> unit
