(** User-facing warning channel for fault-containment diagnostics.

    Reports on stdout must stay machine-parseable, so every degradation
    notice — skipped definitions, unparseable files, exhausted analysis
    budgets, duplicate definitions — goes through this one function, which
    writes a single [xgcc: warning: ...] line to stderr. Libraries call it
    directly instead of each inventing a logging convention. *)

val warnf : ('a, unit, string, unit) format4 -> 'a
(** [warnf fmt ...] emits one warning line, prefixed with
    [xgcc: warning: ], through the current {!sink}. *)

val sink : (string -> unit) ref
(** Where finished warning lines go. Defaults to stderr
    ([prerr_endline]); tests swap it to capture diagnostics, the CLI
    leaves it alone. The line passed in already carries the prefix. *)

val warnings_emitted : unit -> int
(** Warnings emitted through {!warnf} since the last {!reset_count} —
    process-local observability for [--stats]. *)

val reset_count : unit -> unit
