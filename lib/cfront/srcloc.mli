(** Source locations for C and metal sources.

    Every AST node carries a location so that error reports can point at the
    offending line, and so that the ranking heuristics of Section 9 (distance
    in lines between the start of a property and the error) have something to
    measure. *)

type t = {
  file : string;  (** originating file name, or a pseudo-name for strings *)
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
}

val dummy : t
(** Placeholder location for synthesised nodes. *)

val make : file:string -> line:int -> col:int -> t

val pp : Format.formatter -> t -> unit
(** Prints [file:line:col]. *)

val to_string : t -> string

val line_distance : t -> t -> int
(** [line_distance a b] is the absolute difference in line numbers, used by
    the generic ranking criteria. Locations in different files rank as a
    large constant distance. *)

val compare : t -> t -> int
(** Lexicographic order on (file, line, col). *)
