(** Length-prefixed binary encoding for the persistent caches.

    The hot cache paths (pass-1 AST objects, function-summary and root
    replay entries) used to round-trip through sexps; parsing them back
    dominated warm-run time. This module is the shared wire layer for the
    binary replacements: varint ints (zigzag, so negatives stay short),
    length-prefixed strings, and a magic prefix per entry kind so a file
    of the wrong kind or version reads as {!Corrupt} — which every cache
    treats as a miss, never an error.

    The encoding is deliberately not self-describing: each consumer owns
    its layout and versions it through the magic string plus the
    fingerprint salt of the enclosing store. *)

exception Corrupt of string
(** Truncated, malformed, or wrong-magic input. Cache readers catch this
    and degrade to a miss. *)

(** {1 Writing} *)

type writer

val writer : ?magic:string -> unit -> writer
val u8 : writer -> int -> unit
val int : writer -> int -> unit
val i64 : writer -> int64 -> unit
val float : writer -> float -> unit
val bool : writer -> bool -> unit
val string : writer -> string -> unit
val option : writer -> (writer -> 'a -> unit) -> 'a option -> unit
val list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val contents : writer -> string

(** {1 Reading} *)

type reader

val reader : ?magic:string -> string -> reader
(** Raises {!Corrupt} when [magic] is given and the input does not start
    with it. *)

val ru8 : reader -> int
val rint : reader -> int
val ri64 : reader -> int64
val rfloat : reader -> float
val rbool : reader -> bool
val rstring : reader -> string
val roption : reader -> (reader -> 'a) -> 'a option
val rlist : reader -> (reader -> 'a) -> 'a list
val at_end : reader -> bool

val read_file : string -> string
(** Whole-file read; raises [Sys_error] like [open_in]. *)
