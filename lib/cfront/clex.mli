(** Hand-written lexer for the C subset and for metal sources.

    The same lexer serves both languages: metal's pattern fragments are
    "an extended version of the source language" (Section 4), so metal mode
    simply enables a few extra lexemes ([${], [$word$], [==>]) that plain C
    mode never produces. *)

exception Lex_error of Srcloc.t * string

type mode =
  | C_mode  (** plain C: [==>] lexes as [==] followed by [>] *)
  | Metal_mode  (** also produce [DOLLAR_LBRACE], [DOLLAR_WORD], [FAT_ARROW] *)

type token = { tok : Tok.t; loc : Srcloc.t }

val tokenize : ?mode:mode -> file:string -> string -> token list
(** [tokenize ~file src] lexes [src] completely, ending with an [EOF] token.
    Comments ([//] and [/* */]) and preprocessor lines (leading [#]) are
    skipped. Raises [Lex_error] on malformed input. *)
