open Cast

(* Precedence levels, higher binds tighter. *)
let binop_prec = function
  | Mul | Div | Mod -> 12
  | Add | Sub -> 11
  | Shl | Shr -> 10
  | Lt | Gt | Le | Ge -> 9
  | Eq | Ne -> 8
  | Band -> 7
  | Bxor -> 6
  | Bor -> 5
  | Land -> 4
  | Lor -> 3

let prec e =
  match e.enode with
  | Eint _ | Efloat _ | Echar _ | Estr _ | Eident _ -> 16
  | Ecall _ | Efield _ | Earrow _ | Eindex _ -> 15
  | Eunary ((Postinc | Postdec), _) -> 15
  | Eunary (_, _) | Ecast _ | Esizeof_expr _ | Esizeof_type _ -> 14
  | Ebinary (o, _, _) -> binop_prec o
  | Econd _ -> 2
  | Eassign _ -> 1
  | Ecomma _ -> 0
  | Einit_list _ -> 16

(* Render the base type and the declarator suffix for C's inside-out
   declaration syntax: [int *x], [int x[10]], [int ( * f)(int)]. We only
   handle the shapes our parser produces. *)
let rec pp_decl_like ppf (t, name) =
  match t with
  | Ctyp.Ptr (Ctyp.Func (r, ps, v)) ->
      let inner = Format.asprintf "(*%s)" name in
      pp_decl_like ppf (Ctyp.Func (r, ps, v), inner)
  | Ctyp.Ptr t -> pp_decl_like ppf (t, "*" ^ name)
  | Ctyp.Array (t, n) ->
      let suffix = match n with None -> "[]" | Some n -> Printf.sprintf "[%d]" n in
      pp_decl_like ppf (t, name ^ suffix)
  | Ctyp.Func (r, ps, variadic) ->
      let params =
        match ps with
        | [] -> "void"
        | ps -> String.concat ", " (List.map Ctyp.to_string ps)
      in
      let params = if variadic then params ^ ", ..." else params in
      pp_decl_like ppf (r, Printf.sprintf "%s(%s)" name params)
  | t -> Format.fprintf ppf "%a %s" Ctyp.pp t name

let rec pp_expr_prec min_prec ppf e =
  let p = prec e in
  let parens = p < min_prec in
  if parens then Format.pp_print_string ppf "(";
  (match e.enode with
  | Eint n -> Format.pp_print_string ppf (Int64.to_string n)
  | Efloat f -> Format.fprintf ppf "%g" f
  | Echar c -> Format.fprintf ppf "'%s'" (Char.escaped c)
  | Estr s -> Format.fprintf ppf "%S" s
  | Eident x -> Format.pp_print_string ppf x
  | Eunary (Postinc, e1) -> Format.fprintf ppf "%a++" (pp_expr_prec 15) e1
  | Eunary (Postdec, e1) -> Format.fprintf ppf "%a--" (pp_expr_prec 15) e1
  | Eunary (u, e1) -> Format.fprintf ppf "%a%a" pp_unop u (pp_expr_prec 14) e1
  | Ebinary (o, l, r) ->
      let bp = binop_prec o in
      Format.fprintf ppf "%a %a %a" (pp_expr_prec bp) l pp_binop o (pp_expr_prec (bp + 1)) r
  | Eassign (o, l, r) ->
      let op = match o with None -> "=" | Some o -> Format.asprintf "%a=" pp_binop o in
      Format.fprintf ppf "%a %s %a" (pp_expr_prec 2) l op (pp_expr_prec 1) r
  | Ecall (f, args) ->
      Format.fprintf ppf "%a(%a)" (pp_expr_prec 15) f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (pp_expr_prec 1))
        args
  | Efield (e1, f) -> Format.fprintf ppf "%a.%s" (pp_expr_prec 15) e1 f
  | Earrow (e1, f) -> Format.fprintf ppf "%a->%s" (pp_expr_prec 15) e1 f
  | Eindex (a, i) -> Format.fprintf ppf "%a[%a]" (pp_expr_prec 15) a (pp_expr_prec 0) i
  | Ecast (t, e1) -> Format.fprintf ppf "(%a)%a" Ctyp.pp t (pp_expr_prec 14) e1
  | Econd (c, t, f) ->
      Format.fprintf ppf "%a ? %a : %a" (pp_expr_prec 3) c (pp_expr_prec 1) t
        (pp_expr_prec 2) f
  | Ecomma (l, r) -> Format.fprintf ppf "%a, %a" (pp_expr_prec 1) l (pp_expr_prec 0) r
  | Esizeof_type t -> Format.fprintf ppf "sizeof(%a)" Ctyp.pp t
  | Esizeof_expr e1 -> Format.fprintf ppf "sizeof(%a)" (pp_expr_prec 0) e1
  | Einit_list es ->
      Format.fprintf ppf "{ %a }"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (pp_expr_prec 1))
        es);
  if parens then Format.pp_print_string ppf ")"

let pp_expr ppf e = pp_expr_prec 0 ppf e
let expr_to_string e = Format.asprintf "%a" pp_expr e

let pp_decl ppf (d : decl) =
  pp_decl_like ppf (d.dtyp, d.dname);
  match d.dinit with
  | None -> ()
  | Some e -> Format.fprintf ppf " = %a" (pp_expr_prec 1) e

let rec pp_stmt ppf s =
  match s.snode with
  | Sexpr e -> Format.fprintf ppf "@[%a;@]" pp_expr e
  | Sdecl ds ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
        (fun ppf d -> Format.fprintf ppf "@[%a;@]" pp_decl d)
        ppf ds
  | Sif (c, t, None) -> Format.fprintf ppf "@[<v 2>if (%a)@ %a@]" pp_expr c pp_stmt t
  | Sif (c, t, Some e) ->
      (* dangling else: brace the then-branch if a trailing open 'if' inside
         it would otherwise capture our 'else' on reparse *)
      let rec ends_with_open_if s =
        match s.snode with
        | Sif (_, _, None) -> true
        | Sif (_, _, Some e1) -> ends_with_open_if e1
        | Swhile (_, b) | Sfor (_, _, _, b) | Slabel (_, b) -> ends_with_open_if b
        | _ -> false
      in
      if ends_with_open_if t then
        Format.fprintf ppf "@[<v>@[<v 2>if (%a) {@ %a@]@ }@ @[<v 2>else@ %a@]@]"
          pp_expr c pp_stmt t pp_stmt e
      else
        Format.fprintf ppf "@[<v>@[<v 2>if (%a)@ %a@]@ @[<v 2>else@ %a@]@]" pp_expr c
          pp_stmt t pp_stmt e
  | Swhile (c, b) -> Format.fprintf ppf "@[<v 2>while (%a)@ %a@]" pp_expr c pp_stmt b
  | Sdo (b, c) -> Format.fprintf ppf "@[<v 2>do@ %a@]@ while (%a);" pp_stmt b pp_expr c
  | Sfor (init, cond, step, b) ->
      let pp_init ppf = function
        | None -> Format.pp_print_string ppf ";"
        | Some { snode = Sexpr e; _ } -> Format.fprintf ppf "%a;" pp_expr e
        | Some { snode = Sdecl [ d ]; _ } -> Format.fprintf ppf "%a;" pp_decl d
        | Some s -> pp_stmt ppf s
      in
      let pp_opt ppf = function None -> () | Some e -> pp_expr ppf e in
      Format.fprintf ppf "@[<v 2>for (%a %a; %a)@ %a@]" pp_init init pp_opt cond pp_opt
        step pp_stmt b
  | Sreturn None -> Format.pp_print_string ppf "return;"
  | Sreturn (Some e) -> Format.fprintf ppf "return %a;" pp_expr e
  | Sblock ss ->
      Format.fprintf ppf "@[<v 2>{@ %a@]@ }"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ") pp_stmt)
        ss
  | Sbreak -> Format.pp_print_string ppf "break;"
  | Scontinue -> Format.pp_print_string ppf "continue;"
  | Sswitch (e, cases) ->
      let pp_case ppf c =
        (match c.case_guard with
        | None -> Format.fprintf ppf "@[<v 2>default:"
        | Some n -> Format.fprintf ppf "@[<v 2>case %Ld:" n);
        List.iter (fun s -> Format.fprintf ppf "@ %a" pp_stmt s) c.case_body;
        Format.fprintf ppf "@]"
      in
      Format.fprintf ppf "@[<v 2>switch (%a) {@ %a@]@ }" pp_expr e
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ") pp_case)
        cases
  | Sgoto l -> Format.fprintf ppf "goto %s;" l
  | Slabel (l, s) -> Format.fprintf ppf "@[<v>%s:@ %a@]" l pp_stmt s
  | Snull -> Format.pp_print_string ppf ";"

let pp_body ppf s =
  match s.snode with
  | Sblock ss ->
      Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ") pp_stmt ppf ss
  | _ -> pp_stmt ppf s

let pp_fundef ppf f =
  let params =
    match f.fparams with
    | [] -> "void"
    | ps ->
        String.concat ", "
          (List.map (fun (n, t) -> Format.asprintf "%a" pp_decl_like (t, n)) ps)
  in
  let params = if f.fvariadic then params ^ ", ..." else params in
  Format.fprintf ppf "@[<v>%s%a {@;<0 2>@[<v>%a@]@ }@]"
    (if f.fstatic then "static " else "")
    pp_decl_like
    (f.freturn, Printf.sprintf "%s(%s)" f.fname params)
    pp_body f.fbody

let pp_global ppf = function
  | Gfun f -> pp_fundef ppf f
  | Gvar { gdecl; gstatic; _ } ->
      Format.fprintf ppf "@[%s%a"
        (if gstatic then "static " else "")
        pp_decl_like (gdecl.dtyp, gdecl.dname);
      (match gdecl.dinit with
      | None -> ()
      | Some e -> Format.fprintf ppf " = %a" pp_expr e);
      Format.fprintf ppf ";@]"
  | Gtypedef (name, t) -> Format.fprintf ppf "typedef %a;" pp_decl_like (t, name)
  | Gcomposite { ckind; cname; cfields } ->
      let kw = match ckind with `Struct -> "struct" | `Union -> "union" in
      Format.fprintf ppf "@[<v 2>%s %s {" kw cname;
      List.iter
        (fun (n, t) -> Format.fprintf ppf "@ @[%a;@]" pp_decl_like (t, n))
        cfields;
      Format.fprintf ppf "@]@ };"
  | Genum { ename; eitems } ->
      Format.fprintf ppf "@[<v 2>enum %s {" ename;
      List.iter (fun (n, v) -> Format.fprintf ppf "@ %s = %Ld," n v) eitems;
      Format.fprintf ppf "@]@ };"
  | Gproto { pname; ptyp } -> Format.fprintf ppf "@[%a;@]" pp_decl_like (ptyp, pname)
  | Gskipped { sk_name; sk_msg; _ } ->
      Format.fprintf ppf "/* skipped%s: %s */"
        (match sk_name with Some n -> " " ^ n | None -> "")
        sk_msg

let pp_tunit ppf tu =
  Format.fprintf ppf "@[<v>%a@]@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ @ ")
       pp_global)
    tu.tu_globals

let tunit_to_string tu = Format.asprintf "%a" pp_tunit tu
