(** Light type inference for the C subset.

    metal's typed holes (Table 1: [any_pointer], [any_scalar], a concrete C
    type, ...) need to know the type of candidate expressions. This module
    provides a best-effort, scope-insensitive environment: all of a
    function's locals are visible at once. That is enough for pattern
    matching — shadowing across inner scopes is rare in the systems code the
    paper targets and only affects hole typing, never correctness of the
    engine itself. *)

type env

val empty : env

val of_program : Cast.tunit list -> env
(** Collect typedefs, struct/union fields, enum constants, global variables
    and function signatures from every translation unit. *)

val add_tunit : env -> Cast.tunit -> env

val enter_function : env -> Cast.fundef -> env
(** Extend with the function's parameters and every local declared anywhere
    in its body. *)

val resolve : env -> Ctyp.t -> Ctyp.t
(** Unfold typedef names to their definitions (cycle-safe). *)

val lookup_var : env -> string -> Ctyp.t option

val lookup_global_info : env -> string -> (string * bool) option
(** For file-scope rules (Section 6.1): [(defining_file, is_static)] for a
    global variable, [None] for locals/unknowns. *)

val lookup_fields : env -> string -> (string * Ctyp.t) list option
val lookup_function : env -> string -> Ctyp.t option
(** Type of a named function ([Ctyp.Func _]), if declared or defined. *)

val lookup_fundef : env -> string -> Cast.fundef option
val fundefs : env -> Cast.fundef list

val type_of_expr : env -> Cast.expr -> Ctyp.t
(** Best-effort type of an expression; [Ctyp.Unknown] when undetermined. *)

val is_pointer_expr : env -> Cast.expr -> bool
(** After resolving typedefs; string literals and [&e] count as pointers, and
    expressions of [Unknown] type conservatively do {e not} count. *)

val is_scalar_expr : env -> Cast.expr -> bool
