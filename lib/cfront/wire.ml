exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

type writer = Buffer.t

let writer ?magic () =
  let b = Buffer.create 256 in
  Option.iter (Buffer.add_string b) magic;
  b

let u8 b n = Buffer.add_char b (Char.chr (n land 0xff))

(* LEB128 over the zigzag encoding, so small negative ints stay small.
   OCaml ints fit 63 bits; the zigzag doubles, which is exactly what the
   Int64 path below handles for the full-width literals. *)
let rec uvarint b n =
  if n < 0x80 then u8 b n
  else begin
    u8 b (0x80 lor (n land 0x7f));
    uvarint b (n lsr 7)
  end

let int b n = uvarint b ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

let i64 b n =
  let open Int64 in
  let z = logxor (shift_left n 1) (shift_right n 63) in
  let rec go z =
    if unsigned_compare z 0x80L < 0 then u8 b (to_int z)
    else begin
      u8 b (0x80 lor (to_int (logand z 0x7fL)));
      go (shift_right_logical z 7)
    end
  in
  go z

let float b f = i64 b (Int64.bits_of_float f)
let bool b v = u8 b (if v then 1 else 0)

let string b s =
  uvarint b (String.length s);
  Buffer.add_string b s

let option b enc = function
  | None -> u8 b 0
  | Some v ->
      u8 b 1;
      enc b v

let list b enc xs =
  uvarint b (List.length xs);
  List.iter (enc b) xs

let contents = Buffer.contents

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type reader = { src : string; mutable pos : int }

let reader ?magic src =
  let r = { src; pos = 0 } in
  (match magic with
  | None -> ()
  | Some m ->
      let n = String.length m in
      if String.length src < n || not (String.equal (String.sub src 0 n) m) then
        corrupt "bad magic (want %S)" m;
      r.pos <- n);
  r

let ru8 r =
  if r.pos >= String.length r.src then corrupt "truncated at byte %d" r.pos;
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let ruvarint r =
  let rec go shift acc =
    if shift > Sys.int_size then corrupt "varint overflow at byte %d" r.pos;
    let c = ru8 r in
    let acc = acc lor ((c land 0x7f) lsl shift) in
    if c < 0x80 then acc else go (shift + 7) acc
  in
  go 0 0

let rint r =
  let z = ruvarint r in
  (z lsr 1) lxor (-(z land 1))

let ri64 r =
  let open Int64 in
  let rec go shift acc =
    if shift > 70 then corrupt "varint64 overflow at byte %d" r.pos;
    let c = ru8 r in
    let acc = logor acc (shift_left (of_int (c land 0x7f)) shift) in
    if c < 0x80 then acc else go (shift + 7) acc
  in
  let z = go 0 0L in
  logxor (shift_right_logical z 1) (neg (logand z 1L))

let rfloat r = Int64.float_of_bits (ri64 r)
let rbool r = match ru8 r with 0 -> false | 1 -> true | n -> corrupt "bad bool %d" n

let rstring r =
  let n = ruvarint r in
  if n < 0 || r.pos + n > String.length r.src then
    corrupt "truncated string (%d bytes) at byte %d" n r.pos;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let roption r dec = match ru8 r with
  | 0 -> None
  | 1 -> Some (dec r)
  | n -> corrupt "bad option tag %d" n

let rlist r dec =
  let n = ruvarint r in
  (* bound the preallocation by what the input could possibly hold *)
  if n > String.length r.src - r.pos + 1 then corrupt "bad list length %d" n;
  List.init n (fun _ -> dec r)

let at_end r = r.pos >= String.length r.src

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))
