type verdict = Real | False_positive | Undecided
type entry = { verdict : verdict; report : Report.t }

let mark_of = function Real -> 'R' | False_positive -> 'F' | Undecided -> '?'

let verdict_of_mark = function
  | 'R' | 'r' -> Some Real
  | 'F' | 'f' -> Some False_positive
  | '?' -> Some Undecided
  | _ -> None

(* The pipe-separated fields after the mark are exactly the identity-key
   fields plus the location, so import can re-match reports robustly. *)
let line_of (r : Report.t) =
  Printf.sprintf "%c|%s|%s:%d|%s" (mark_of Undecided) (Report.identity_key r)
    r.loc.Srcloc.file r.loc.Srcloc.line r.message

let export reports =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "# metal/xgcc triage file - mark each line: R (real), F (false positive), ? (skip)\n";
  List.iter
    (fun r ->
      Buffer.add_string buf (line_of r);
      Buffer.add_char buf '\n')
    reports;
  Buffer.contents buf

let export_file path reports =
  let tmp = Filename.temp_file ~temp_dir:(Filename.dirname path) ".triage" ".tmp" in
  let oc = open_out tmp in
  (try output_string oc (export reports)
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

exception Malformed of int * string

let import ~reports text =
  let lines = String.split_on_char '\n' text in
  let verdicts : (string, verdict) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if String.length line > 0 && not (Char.equal line.[0] '#') then begin
        match String.index_opt line '|' with
        | None -> raise (Malformed (lineno + 1, "missing '|' separator"))
        | Some bar -> (
            let mark_field = String.sub line 0 bar in
            if String.length mark_field <> 1 then
              raise (Malformed (lineno + 1, "mark must be a single character"));
            match verdict_of_mark mark_field.[0] with
            | None ->
                raise
                  (Malformed (lineno + 1, Printf.sprintf "bad mark %C" mark_field.[0]))
            | Some v ->
                let rest = String.sub line (bar + 1) (String.length line - bar - 1) in
                (* the identity key is everything up to the location field,
                   i.e. the first 5 '|'-separated components of the rest *)
                let parts = String.split_on_char '|' rest in
                let key =
                  match parts with
                  | a :: b :: c :: d :: e :: _ -> String.concat "|" [ a; b; c; d; e ]
                  | _ -> raise (Malformed (lineno + 1, "truncated entry"))
                in
                Hashtbl.replace verdicts key v)
      end)
    lines;
  List.map
    (fun r ->
      let v =
        Option.value (Hashtbl.find_opt verdicts (Report.identity_key r))
          ~default:Undecided
      in
      { verdict = v; report = r })
    reports

let import_file ~reports path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  import ~reports text

let apply entries db =
  let db =
    List.fold_left
      (fun db e ->
        match e.verdict with
        | False_positive -> History.add db e.report
        | Real | Undecided -> db)
      db entries
  in
  let counts : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match e.report.Report.rule with
      | None -> ()
      | Some rule ->
          let real, fp = Option.value (Hashtbl.find_opt counts rule) ~default:(0, 0) in
          let real, fp =
            match e.verdict with
            | Real -> (real + 1, fp)
            | False_positive -> (real, fp + 1)
            | Undecided -> (real, fp)
          in
          Hashtbl.replace counts rule (real, fp))
    entries;
  ( db,
    List.sort compare
      (Hashtbl.fold (fun rule (real, fp) acc -> (rule, real, fp) :: acc) counts []) )

