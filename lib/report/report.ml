type t = {
  checker : string;
  message : string;
  loc : Srcloc.t;
  start_loc : Srcloc.t;
  func : string;
  file : string;
  var : string option;
  rule : string option;
  conditionals : int;
  syn_chain : int;
  call_depth : int;
  annotations : string list;
}

let make ~checker ~message ~loc ?(start_loc = Srcloc.dummy) ?(func = "") ?(file = "")
    ?var ?rule ?(conditionals = 0) ?(syn_chain = 0) ?(call_depth = 0)
    ?(annotations = []) () =
  let start_loc = if start_loc == Srcloc.dummy then loc else start_loc in
  let file = if String.equal file "" then loc.Srcloc.file else file in
  {
    checker;
    message;
    loc;
    start_loc;
    func;
    file;
    var;
    rule;
    conditionals;
    syn_chain;
    call_depth;
    annotations;
  }

let pp ppf r =
  Format.fprintf ppf "%a: [%s] %s" Srcloc.pp r.loc r.checker r.message;
  if r.func <> "" then Format.fprintf ppf " (in %s)" r.func;
  (match r.annotations with
  | [] -> ()
  | anns -> Format.fprintf ppf " {%s}" (String.concat "," anns));
  if r.call_depth > 0 then Format.fprintf ppf " [interprocedural depth %d]" r.call_depth

let to_string r = Format.asprintf "%a" pp r

let identity_key r =
  Printf.sprintf "%s|%s|%s|%s|%s" r.file r.func r.checker
    (Option.value r.var ~default:"")
    r.message

type collector = { mutable items : t list; mutable n : int }

let new_collector () = { items = []; n = 0 }

let emit c r =
  c.items <- r :: c.items;
  c.n <- c.n + 1

let reports c = List.rev c.items
let count c = c.n

let clear c =
  c.items <- [];
  c.n <- 0
