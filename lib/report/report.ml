type t = {
  checker : string;
  message : string;
  loc : Srcloc.t;
  start_loc : Srcloc.t;
  func : string;
  file : string;
  var : string option;
  rule : string option;
  conditionals : int;
  syn_chain : int;
  call_depth : int;
  annotations : string list;
}

let make ~checker ~message ~loc ?(start_loc = Srcloc.dummy) ?(func = "") ?(file = "")
    ?var ?rule ?(conditionals = 0) ?(syn_chain = 0) ?(call_depth = 0)
    ?(annotations = []) () =
  let start_loc = if start_loc == Srcloc.dummy then loc else start_loc in
  let file = if String.equal file "" then loc.Srcloc.file else file in
  {
    checker;
    message;
    loc;
    start_loc;
    func;
    file;
    var;
    rule;
    conditionals;
    syn_chain;
    call_depth;
    annotations;
  }

let pp ppf r =
  Format.fprintf ppf "%a: [%s] %s" Srcloc.pp r.loc r.checker r.message;
  if r.func <> "" then Format.fprintf ppf " (in %s)" r.func;
  (match r.annotations with
  | [] -> ()
  | anns -> Format.fprintf ppf " {%s}" (String.concat "," anns));
  if r.call_depth > 0 then Format.fprintf ppf " [interprocedural depth %d]" r.call_depth

let to_string r = Format.asprintf "%a" pp r

let identity_key r =
  Printf.sprintf "%s|%s|%s|%s|%s" r.file r.func r.checker
    (Option.value r.var ~default:"")
    r.message

let opt_to_sexp = function None -> Sexp.atom "_" | Some v -> Sexp.list [ Sexp.atom v ]

let opt_of_sexp = function
  | Sexp.Atom "_" -> None
  | Sexp.List [ Sexp.Atom v ] -> Some v
  | _ -> raise (Sexp.Decode_error "bad option")

let loc_to_sexp (loc : Srcloc.t) =
  Sexp.list
    [ Sexp.atom loc.file; Sexp.atom (string_of_int loc.line);
      Sexp.atom (string_of_int loc.col) ]

let loc_of_sexp = function
  | Sexp.List [ Sexp.Atom file; Sexp.Atom line; Sexp.Atom col ] ->
      Srcloc.make ~file ~line:(int_of_string line) ~col:(int_of_string col)
  | _ -> raise (Sexp.Decode_error "bad report location")

let to_sexp r =
  Sexp.list
    [
      Sexp.atom "report";
      Sexp.atom r.checker;
      Sexp.atom r.message;
      loc_to_sexp r.loc;
      loc_to_sexp r.start_loc;
      Sexp.atom r.func;
      Sexp.atom r.file;
      opt_to_sexp r.var;
      opt_to_sexp r.rule;
      Sexp.atom (string_of_int r.conditionals);
      Sexp.atom (string_of_int r.syn_chain);
      Sexp.atom (string_of_int r.call_depth);
      Sexp.list (List.map Sexp.atom r.annotations);
    ]

let of_sexp = function
  | Sexp.List
      [ Sexp.Atom "report"; Sexp.Atom checker; Sexp.Atom message; loc; start_loc;
        Sexp.Atom func; Sexp.Atom file; var; rule; Sexp.Atom conditionals;
        Sexp.Atom syn_chain; Sexp.Atom call_depth; Sexp.List annotations ] ->
      {
        checker;
        message;
        loc = loc_of_sexp loc;
        start_loc = loc_of_sexp start_loc;
        func;
        file;
        var = opt_of_sexp var;
        rule = opt_of_sexp rule;
        conditionals = int_of_string conditionals;
        syn_chain = int_of_string syn_chain;
        call_depth = int_of_string call_depth;
        annotations =
          List.map
            (function
              | Sexp.Atom a -> a
              | _ -> raise (Sexp.Decode_error "bad annotation"))
            annotations;
      }
  | other -> raise (Sexp.Decode_error ("bad report " ^ Sexp.to_string other))

(* Binary form for the persistent root-replay entries; mirrors [to_sexp]
   field for field (the sexp form stays the `cache dump` rendering). *)

let bin_loc b (loc : Srcloc.t) =
  Wire.string b loc.file;
  Wire.int b loc.line;
  Wire.int b loc.col

let rbin_loc r =
  let file = Wire.rstring r in
  let line = Wire.rint r in
  let col = Wire.rint r in
  Srcloc.make ~file ~line ~col

let to_bin b r =
  Wire.string b r.checker;
  Wire.string b r.message;
  bin_loc b r.loc;
  bin_loc b r.start_loc;
  Wire.string b r.func;
  Wire.string b r.file;
  Wire.option b Wire.string r.var;
  Wire.option b Wire.string r.rule;
  Wire.int b r.conditionals;
  Wire.int b r.syn_chain;
  Wire.int b r.call_depth;
  Wire.list b Wire.string r.annotations

let of_bin r =
  let checker = Wire.rstring r in
  let message = Wire.rstring r in
  let loc = rbin_loc r in
  let start_loc = rbin_loc r in
  let func = Wire.rstring r in
  let file = Wire.rstring r in
  let var = Wire.roption r Wire.rstring in
  let rule = Wire.roption r Wire.rstring in
  let conditionals = Wire.rint r in
  let syn_chain = Wire.rint r in
  let call_depth = Wire.rint r in
  let annotations = Wire.rlist r Wire.rstring in
  {
    checker;
    message;
    loc;
    start_loc;
    func;
    file;
    var;
    rule;
    conditionals;
    syn_chain;
    call_depth;
    annotations;
  }

type collector = { mutable items : t list; mutable n : int }

let new_collector () = { items = []; n = 0 }

let emit c r =
  c.items <- r :: c.items;
  c.n <- c.n + 1

let reports c = List.rev c.items
let count c = c.n

let clear c =
  c.items <- [];
  c.n <- 0

let truncate c keep =
  (* items are stored newest-first, so dropping everything emitted after
     the first [keep] reports means dropping from the front *)
  if keep <= 0 then clear c
  else if c.n > keep then begin
    let rec drop items k = if k <= 0 then items else drop (List.tl items) (k - 1) in
    c.items <- drop c.items (c.n - keep);
    c.n <- keep
  end
