let z ?(p0 = 0.5) ~n ~e () =
  if n = 0 then neg_infinity
  else
    let n = float_of_int n and e = float_of_int e in
    ((e /. n) -. p0) /. sqrt (p0 *. (1. -. p0) /. n)

let rank_rules rules =
  let scored =
    List.map (fun (rule, e, c) -> (rule, z ~n:(e + c) ~e ())) rules
  in
  List.sort (fun (_, a) (_, b) -> Float.compare b a) scored
