type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%g" f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write buf (Str k);
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing — the serve daemon reads newline-delimited JSON requests, so
   the emitter above gains its inverse here rather than growing a
   dependency. Strict on structure (unterminated strings, trailing
   garbage, bad escapes all raise), permissive on nothing.              *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse_fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* UTF-8-encode one \uXXXX code point; surrogate halves are encoded
   independently (the emitter above never produces them). *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && Char.equal s.[!pos] c then incr pos
    else parse_fail "expected %C at offset %d" c !pos
  in
  let literal word v =
    let k = String.length word in
    if !pos + k <= n && String.equal (String.sub s !pos k) word then begin
      pos := !pos + k;
      v
    end
    else parse_fail "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      if Char.equal c '"' then Buffer.contents buf
      else if Char.equal c '\\' then begin
        if !pos >= n then parse_fail "unterminated escape";
        let e = s.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if !pos + 4 > n then parse_fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> parse_fail "bad \\u escape %S" hex
            in
            add_utf8 buf code
        | c -> parse_fail "bad escape \\%C" c);
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    let lit = String.sub s start (!pos - start) in
    let floaty =
      String.exists (fun c -> Char.equal c '.' || Char.equal c 'e' || Char.equal c 'E') lit
    in
    if floaty then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> parse_fail "bad number %S" lit
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> parse_fail "bad number %S" lit)
  in
  let rec parse_value () =
    skip_ws ();
    if !pos >= n then parse_fail "unexpected end of input";
    match s.[!pos] with
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | '"' -> Str (parse_string ())
    | '[' ->
        incr pos;
        skip_ws ();
        if !pos < n && Char.equal s.[!pos] ']' then begin
          incr pos;
          Arr []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            if !pos >= n then parse_fail "unterminated array"
            else if Char.equal s.[!pos] ',' then begin
              incr pos;
              items (v :: acc)
            end
            else begin
              expect ']';
              List.rev (v :: acc)
            end
          in
          Arr (items [])
    | '{' ->
        incr pos;
        skip_ws ();
        if !pos < n && Char.equal s.[!pos] '}' then begin
          incr pos;
          Obj []
        end
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            if !pos >= n then parse_fail "unterminated object"
            else if Char.equal s.[!pos] ',' then begin
              incr pos;
              fields ((k, v) :: acc)
            end
            else begin
              expect '}';
              List.rev ((k, v) :: acc)
            end
          in
          Obj (fields [])
    | '0' .. '9' | '-' -> parse_number ()
    | c -> parse_fail "unexpected %C at offset %d" c !pos
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then parse_fail "trailing content at offset %d" !pos;
  v

let of_report (r : Report.t) =
  Obj
    [
      ("checker", Str r.checker);
      ("message", Str r.message);
      ("file", Str r.file);
      ("line", Int r.loc.Srcloc.line);
      ("col", Int r.loc.Srcloc.col);
      ("function", Str r.func);
      ("start_line", Int r.start_loc.Srcloc.line);
      ("variable", match r.var with Some v -> Str v | None -> Null);
      ("rule", match r.rule with Some v -> Str v | None -> Null);
      ("conditionals", Int r.conditionals);
      ("synonym_chain", Int r.syn_chain);
      ("call_depth", Int r.call_depth);
      ("annotations", Arr (List.map (fun a -> Str a) r.annotations));
    ]

let reports_to_string reports =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n  ";
      write buf (of_report r))
    reports;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
