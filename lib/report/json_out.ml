type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%g" f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write buf (Str k);
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

let of_report (r : Report.t) =
  Obj
    [
      ("checker", Str r.checker);
      ("message", Str r.message);
      ("file", Str r.file);
      ("line", Int r.loc.Srcloc.line);
      ("col", Int r.loc.Srcloc.col);
      ("function", Str r.func);
      ("start_line", Int r.start_loc.Srcloc.line);
      ("variable", match r.var with Some v -> Str v | None -> Null);
      ("rule", match r.rule with Some v -> Str v | None -> Null);
      ("conditionals", Int r.conditionals);
      ("synonym_chain", Int r.syn_chain);
      ("call_depth", Int r.call_depth);
      ("annotations", Arr (List.map (fun a -> Str a) r.annotations));
    ]

let reports_to_string reports =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n  ";
      write buf (of_report r))
    reports;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
