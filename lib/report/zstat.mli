(** The z-statistic for proportions (Section 9, "Statistical ranking").

    [z (e + c) e] evaluates the hypothesis that an outcome observed [e]
    times out of [n = e + c] trials is consistent with the null hypothesis
    probability [p0] (default 0.5 — "a rule is obeyed or violated at
    random"). Large positive values mean the rule is almost always followed,
    so its violations are likely real errors. *)

val z : ?p0:float -> n:int -> e:int -> unit -> float
(** [(e/n - p0) / sqrt (p0 * (1 - p0) / n)]. Returns [neg_infinity] when
    [n = 0]. *)

val rank_rules : (string * int * int) list -> (string * float) list
(** [rank_rules [(rule, examples, counterexamples); ...]] sorts rules by
    descending z-statistic. *)
