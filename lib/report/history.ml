module Sset = Set.Make (String)

type db = Sset.t

let empty = Sset.empty
let add db r = Sset.add (Report.identity_key r) db
let of_reports reports = List.fold_left add empty reports
let mem db r = Sset.mem (Report.identity_key r) db
let size = Sset.cardinal

let suppress db reports =
  let kept = List.filter (fun r -> not (mem db r)) reports in
  (kept, List.length reports - List.length kept)

let load path =
  if not (Sys.file_exists path) then empty
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line -> go (if String.equal line "" then acc else Sset.add line acc)
      | exception End_of_file -> acc
    in
    let db = go empty in
    close_in ic;
    db
  end

(* Write-then-rename so a crash mid-save (or a concurrent reader) never
   sees a truncated suppression DB — a torn file would silently stop
   suppressing half the known reports. *)
let save path db =
  let tmp = Filename.temp_file ~temp_dir:(Filename.dirname path) ".history" ".tmp" in
  let oc = open_out tmp in
  (try Sset.iter (fun k -> output_string oc (k ^ "\n")) db
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path
