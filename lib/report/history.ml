module Sset = Set.Make (String)

type db = Sset.t

let empty = Sset.empty
let add db r = Sset.add (Report.identity_key r) db
let of_reports reports = List.fold_left add empty reports
let mem db r = Sset.mem (Report.identity_key r) db
let size = Sset.cardinal

let suppress db reports =
  let kept = List.filter (fun r -> not (mem db r)) reports in
  (kept, List.length reports - List.length kept)

let load path =
  if not (Sys.file_exists path) then empty
  else begin
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line -> go (if String.equal line "" then acc else Sset.add line acc)
      | exception End_of_file -> acc
    in
    let db = go empty in
    close_in ic;
    db
  end

let save path db =
  let oc = open_out path in
  Sset.iter (fun k -> output_string oc (k ^ "\n")) db;
  close_out oc
