type severity = Security | Error_path | Normal | Minor

let severity_of (r : Report.t) =
  if List.mem "SECURITY" r.annotations then Security
  else if List.mem "ERROR" r.annotations then Error_path
  else if List.mem "MINOR" r.annotations then Minor
  else Normal

let severity_rank = function Security -> 0 | Error_path -> 1 | Normal -> 2 | Minor -> 3

(* Each conditional is arbitrarily weighted as ten lines of distance. *)
let distance_score (r : Report.t) =
  Srcloc.line_distance r.loc r.start_loc + (10 * r.conditionals)

let generic_key (r : Report.t) =
  ( severity_rank (severity_of r),
    (if r.call_depth = 0 then 0 else 1),
    r.call_depth,
    (if r.syn_chain = 0 then 0 else 1),
    r.syn_chain,
    distance_score r )

let compare_keys (a1, a2, a3, a4, a5, a6) (b1, b2, b3, b4, b5, b6) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c
  else
    let c = Int.compare a2 b2 in
    if c <> 0 then c
    else
      let c = Int.compare a3 b3 in
      if c <> 0 then c
      else
        let c = Int.compare a4 b4 in
        if c <> 0 then c
        else
          let c = Int.compare a5 b5 in
          if c <> 0 then c else Int.compare a6 b6

let generic_sort reports =
  List.stable_sort (fun a b -> compare_keys (generic_key a) (generic_key b)) reports

let statistical_sort ~counters reports =
  let z_of_rule rule =
    match List.find_opt (fun (r, _, _) -> String.equal r rule) counters with
    | Some (_, e, c) -> Zstat.z ~n:(e + c) ~e ()
    | None -> neg_infinity
  in
  let z_of (r : Report.t) =
    match r.rule with Some rule -> z_of_rule rule | None -> neg_infinity
  in
  List.stable_sort
    (fun a b ->
      let c = Float.compare (z_of b) (z_of a) in
      if c <> 0 then c else compare_keys (generic_key a) (generic_key b))
    reports

let stratified reports =
  let sorted = generic_sort reports in
  List.filter_map
    (fun sev ->
      match List.filter (fun r -> severity_of r = sev) sorted with
      | [] -> None
      | rs -> Some (sev, rs))
    [ Security; Error_path; Normal; Minor ]

let group_by_rule reports =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (r : Report.t) ->
      let rule = Option.value r.rule ~default:"<no rule>" in
      if not (Hashtbl.mem tbl rule) then order := rule :: !order;
      Hashtbl.replace tbl rule (r :: Option.value (Hashtbl.find_opt tbl rule) ~default:[]))
    reports;
  List.rev_map (fun rule -> (rule, List.rev (Hashtbl.find tbl rule))) !order
