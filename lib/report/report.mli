(** Error reports and the measurements ranking needs (Section 9).

    Every report carries, besides the message, the inputs to the generic
    ranking criteria: the distance between the error and where the checker
    started tracking the property, the number of conditionals the error path
    crossed, the synonym-chain length, and the interprocedural call-chain
    depth. Checker-specific annotations ([SECURITY]/[ERROR]/[MINOR]) and a
    rule key for statistical grouping ride along. *)

type t = {
  checker : string;
  message : string;
  loc : Srcloc.t;  (** the statement containing the error *)
  start_loc : Srcloc.t;  (** where the extension started checking *)
  func : string;
  file : string;
  var : string option;  (** the tracked object, as printed source *)
  rule : string option;  (** grouping key, e.g. the freeing function's name *)
  conditionals : int;
  syn_chain : int;
  call_depth : int;  (** 0 means purely local *)
  annotations : string list;
}

val make :
  checker:string ->
  message:string ->
  loc:Srcloc.t ->
  ?start_loc:Srcloc.t ->
  ?func:string ->
  ?file:string ->
  ?var:string ->
  ?rule:string ->
  ?conditionals:int ->
  ?syn_chain:int ->
  ?call_depth:int ->
  ?annotations:string list ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val identity_key : t -> string
(** The cross-version identity used by history suppression (Section 8):
    file name, function name, variable names and the error text — fields
    that are "relatively invariant under edits (unlike line numbers)". *)

val to_sexp : t -> Sexp.t
val of_sexp : Sexp.t -> t
(** Lossless round-trip; the [cache dump] rendering. Raises
    [Sexp.Decode_error] on malformed input. *)

val to_bin : Wire.writer -> t -> unit
val of_bin : Wire.reader -> t
(** Binary form used by the persistent result cache's hot path. Raises
    [Wire.Corrupt] on malformed input. *)

type collector

val new_collector : unit -> collector
val emit : collector -> t -> unit
val reports : collector -> t list
(** In emission order. *)

val count : collector -> int
val clear : collector -> unit

val truncate : collector -> int -> unit
(** [truncate c n] drops every report emitted after the first [n],
    restoring the collector to an earlier {!count} — the rollback
    primitive the engine's per-root fault containment uses to discard a
    degraded root's partial output. *)
