(** Triage sessions — the inspection loop around ranking and history.

    Section 9's model: the user inspects the ranked reports class by class
    "until the false positive rate is too high", marking each as real or a
    false positive. Section 8's "History" then remembers the false
    positives so future runs suppress them. This module implements the
    round trip as a plain text file the user edits:

    {v
    # metal/xgcc triage file — mark each line: R (real), F (false), ? (skip)
    ?|free_checker|dev.c|f|p|using p after free!
    v}

    [export] writes reports in ranked order; the user flips the leading
    marks; [import] reads the verdicts back; [apply] folds the false
    positives into a history database and summarises per-rule false
    positive counts (which feed the z-statistic the other way: rules whose
    reports keep getting marked F are unreliable). *)

type verdict = Real | False_positive | Undecided

type entry = { verdict : verdict; report : Report.t }

val export : Report.t list -> string
(** Serialise (ranked order preserved). *)

val export_file : string -> Report.t list -> unit

exception Malformed of int * string
(** Line number and message. *)

val import : reports:Report.t list -> string -> entry list
(** Re-attach verdicts to the report objects by identity key; reports
    missing from the file come back [Undecided]. Raises {!Malformed} on
    unparseable lines. *)

val import_file : reports:Report.t list -> string -> entry list

val apply : entry list -> History.db -> History.db * (string * int * int) list
(** Fold [False_positive] entries into the history database; also return
    per-rule (real, false-positive) counts for statistical re-ranking. *)
