(** Minimal JSON emission for reports — machine-readable CLI output, so the
    ranking/suppression pipeline can feed review tooling (the role the
    paper's web-based error inspector played). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
val escape : string -> string

val of_report : Report.t -> t

val reports_to_string : Report.t list -> string
(** A JSON array of report objects, one per line inside the array. *)
