(** Minimal JSON emission for reports — machine-readable CLI output, so the
    ranking/suppression pipeline can feed review tooling (the role the
    paper's web-based error inspector played). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
val escape : string -> string

exception Parse_error of string

val of_string : string -> t
(** Parse one JSON value — the inverse of {!to_string}, used by the serve
    daemon's newline-delimited request protocol. Raises {!Parse_error} on
    malformed input or trailing content; [\uXXXX] escapes are decoded to
    UTF-8 (surrogate halves independently). Numbers without [.]/[e] parse
    as [Int], everything else as [Float]. *)

val of_report : Report.t -> t

val reports_to_string : Report.t list -> string
(** A JSON array of report objects, one per line inside the array. *)
