(** Cross-version false-positive suppression (Section 8, "History").

    "A simple alternative is to just remember false positives from past
    versions and suppress them in future versions." Reports are matched by
    {!Report.identity_key} — file, function, variable names and error text —
    which survives edits better than line numbers. The database is a plain
    text file, one key per line. *)

type db

val empty : db
val of_reports : Report.t list -> db
val add : db -> Report.t -> db
val mem : db -> Report.t -> bool
val size : db -> int

val suppress : db -> Report.t list -> Report.t list * int
(** [(kept, suppressed_count)]. *)

val load : string -> db
(** Loads a database file; a missing file yields {!empty}. *)

val save : string -> db -> unit
