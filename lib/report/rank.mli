(** Error ranking (Section 9).

    The ideal ranking puts true, severe, cheap-to-inspect errors first. We
    approximate it exactly as the paper does:

    - stratify by severity class from checker annotations
      ([SECURITY] > [ERROR] > unannotated > [MINOR]);
    - partition local errors before interprocedural ones, the latter ordered
      by call-chain length;
    - partition direct errors before synonym-mediated ones, the latter
      ordered by assignment-chain length;
    - within a partition, sort by line distance plus ten lines per
      conditional crossed;
    - optionally re-rank by the z-statistic of each report's rule
      ("statistical ranking"). *)

type severity = Security | Error_path | Normal | Minor

val severity_of : Report.t -> severity

val generic_key : Report.t -> int * int * int * int * int * int
(** The composite sort key implementing the criteria above (smaller ranks
    first). Exposed for tests. *)

val generic_sort : Report.t list -> Report.t list

val statistical_sort :
  counters:(string * int * int) list -> Report.t list -> Report.t list
(** [counters] maps rule names to (examples, counterexamples); reports whose
    rule has a higher z-statistic come first, unknown rules last. Ties fall
    back to the generic key. *)

val stratified : Report.t list -> (severity * Report.t list) list
(** Severity classes in inspection order, each internally generically
    sorted — "the user can start with the most important class, inspect
    within that class until the false positive rate is too high ..., and
    skip to the next class". Empty classes are omitted. *)

val group_by_rule : Report.t list -> (string * Report.t list) list
(** Group reports computed from a common analysis fact so they can be
    suppressed together when the fact is wrong. *)
