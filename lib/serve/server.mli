(** The analysis daemon behind [xgcc serve].

    A server loads the corpus once and keeps everything a batch run
    rebuilds from scratch hot in memory: pass-1 ASTs, the supergraph's
    [Exprid]/[Flat] tables (rebuilt cheaply per re-check from the held
    ASTs), compiled dispatch, and the two-level summary store (opened
    with [memory:true], so warm probes never touch disk). A one-file
    edit re-fingerprints and re-parses only that file and drives
    [Engine.run] through the existing early-cutoff machinery; the
    diagnostics it replies with are byte-identical to a cold
    [xgcc check --format json] of the same tree — the engine's replay
    discipline guarantees it, and the test suite and CI assert it.

    Requests arrive as newline-delimited JSON ({!Proto}) on stdin or a
    Unix socket. Rapid successive edits coalesce: while another request
    line is already pending, a [didChange] only applies its overlay and
    replies [queued]; the single re-check happens when the storm drains. *)

type config = {
  c_files : string list;  (** analysis inputs, in batch-run order *)
  c_parse : path:string -> source:string -> (Cast.tunit, string) result;
      (** pass-1 front end (preprocessing included), fault-contained:
          an [Error] skips the file with a warning, like batch mode *)
  c_exts : Sm.t list;
  c_options : Engine.options;
  c_jobs : int;
  c_store : Summary_store.t option;
      (** open with [memory:true]; [persist] additionally writes entries
          back so a later batch run or daemon restart starts warm *)
  c_rank : string;  (** ["generic"] (default ranking), ["stat"], ["none"] *)
}

type t

type check_out = {
  o_diagnostics : string;
      (** the full ranked report set, exactly the bytes a cold
          [xgcc check --format json] prints *)
  o_reports : int;
  o_rechecked : bool;  (** false: served from the last clean result *)
  o_recheck_s : float;
  o_warnings : string list;  (** this request's captured Diag lines *)
  o_degraded : int;
  o_drifted : string list;
      (** files that changed on disk while the engine ran; their roots
          are degraded with a warning and the server stays dirty *)
}

val create : config -> (t, string) result
(** Read and fingerprint the corpus. Fails if any input is unreadable. *)

val check : t -> check_out
(** Re-check if anything changed since the last clean result, else
    return that result. Used directly for warm-up and benchmarks; the
    request loop goes through {!handle_request}. *)

val handle_request : t -> more_pending:bool -> Proto.request -> Json_out.t * bool
(** Process one request, returning the reply and whether to shut down.
    [more_pending] is the edit-storm coalescing signal — the transport
    passes whether another complete request line is already waiting.
    Exposed for in-process tests, which drive the protocol
    deterministically without pipes or timing. *)

val handle_line : t -> more_pending:bool -> string -> Json_out.t * bool
(** {!Proto.request_of_line} + {!handle_request}; protocol errors become
    [{"ok":false}] replies. *)

val serve_stdio : ?debounce:float -> t -> unit
(** Run the request loop over stdin/stdout until EOF or [shutdown].
    [debounce] (default 20ms) is how long a [didChange] waits for a
    follow-up request before committing to a re-check. *)

val serve_socket : ?debounce:float -> t -> path:string -> unit
(** Listen on a Unix socket, serving one client at a time, until a
    client sends [shutdown]. The socket file is removed on exit. *)
