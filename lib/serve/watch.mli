(** File snapshots for the analysis daemon.

    The daemon analyses a fixed set of files. Each one is either
    {e disk-backed} (contents re-read and re-hashed before every run, so
    an on-disk edit is never silently ignored) or carries an
    {e overlay} (contents supplied by [didChange], authoritative until
    dropped — the editor-buffer model). *)

type file = {
  w_path : string;
  mutable w_src : string;  (** contents the next run will analyse *)
  mutable w_fp : Fingerprint.t;  (** fingerprint of [w_src] *)
  mutable w_overlay : bool;  (** true: [w_src] came from [didChange] *)
}

type t

val create : string list -> (t, string) result
(** Read and fingerprint every file. Any unreadable file fails the whole
    startup — a daemon serving a partial tree would lie to every
    request. *)

val files : t -> file list
(** In the order given to {!create} — the analysis input order, which
    fixes report order and therefore byte-identity with a batch run. *)

val find : t -> string -> file option

val set_overlay : t -> path:string -> text:string option -> (bool, string) result
(** Install ([Some text]) or drop ([None], re-reading disk) the overlay
    for [path]. [Ok changed] says whether the contents actually differ —
    the caller skips re-checking when they don't. Unknown paths and
    unreadable re-reads are [Error] (the previous snapshot stays). *)

val revalidate : t -> string list * string list
(** Re-read and re-hash every disk-backed file, updating changed
    snapshots in place. Returns [(changed, missing)] paths; missing
    files keep their last good snapshot so the daemon keeps serving. *)

val drifted : t -> string list
(** Disk-backed files whose on-disk contents no longer match the
    snapshot just analysed (read-only check, run {e after} an analysis
    to detect mid-run edits). Unreadable counts as drifted. *)

val stale_roots : Supergraph.t -> string list -> string list
(** Callgraph roots whose transitive closure defines a function in one
    of the given files — the results to degrade when those files changed
    mid-run instead of mixing AST generations. *)
