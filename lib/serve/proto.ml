type request =
  | Check
  | Did_change of { path : string; text : string option }
  | Stats
  | Shutdown

let request_of_line line =
  match Json_out.of_string line with
  | exception Json_out.Parse_error m -> Error ("bad JSON: " ^ m)
  | Json_out.Obj fields -> (
      let str k =
        match List.assoc_opt k fields with
        | Some (Json_out.Str s) -> Some s
        | _ -> None
      in
      match str "cmd" with
      | Some "check" -> Ok Check
      | Some "didChange" -> (
          match str "path" with
          | Some path -> Ok (Did_change { path; text = str "text" })
          | None -> Error "didChange requires a string \"path\"")
      | Some "stats" -> Ok Stats
      | Some "shutdown" -> Ok Shutdown
      | Some other -> Error (Printf.sprintf "unknown cmd %S" other)
      | None -> Error "request object must carry a string \"cmd\"")
  | _ -> Error "request must be a JSON object"

(* One reply per request, exactly one line: to_string never emits a raw
   newline (Json_out.escape turns them into \n inside strings), so the
   framing invariant holds even though the diagnostics payload embeds the
   multi-line cold-check output verbatim. *)
let to_line j = Json_out.to_string j ^ "\n"

let error_response msg =
  Json_out.Obj [ ("ok", Json_out.Bool false); ("error", Json_out.Str msg) ]
