type file = {
  w_path : string;
  mutable w_src : string;
  mutable w_fp : Fingerprint.t;
  mutable w_overlay : bool;
}

type t = { files : file array; by_path : (string, file) Hashtbl.t }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fp_of source = Fingerprint.of_string source

let create paths =
  match
    List.map
      (fun p ->
        match read_file p with
        | src -> { w_path = p; w_src = src; w_fp = fp_of src; w_overlay = false }
        | exception Sys_error msg -> raise (Failure (p ^ ": " ^ msg)))
      paths
  with
  | files ->
      let t =
        { files = Array.of_list files; by_path = Hashtbl.create (List.length paths) }
      in
      Array.iter (fun f -> Hashtbl.replace t.by_path f.w_path f) t.files;
      Ok t
  | exception Failure msg -> Error msg

let files t = Array.to_list t.files
let find t path = Hashtbl.find_opt t.by_path path

let set_overlay t ~path ~text =
  match find t path with
  | None -> Error (Printf.sprintf "%s: not part of the served tree" path)
  | Some f -> (
      match text with
      | Some src ->
          let fp = fp_of src in
          let changed = not (String.equal fp f.w_fp) in
          f.w_src <- src;
          f.w_fp <- fp;
          f.w_overlay <- true;
          Ok changed
      | None -> (
          f.w_overlay <- false;
          match read_file path with
          | src ->
              let fp = fp_of src in
              let changed = not (String.equal fp f.w_fp) in
              f.w_src <- src;
              f.w_fp <- fp;
              Ok changed
          | exception Sys_error msg ->
              (* keep the last good snapshot: the daemon stays serving *)
              Error (Printf.sprintf "%s: cannot re-read: %s" path msg)))

(* Re-stat and re-hash every disk-backed file before a run: cheap
   insurance that a fingerprint taken at startup is not silently trusted
   forever (the stale-snapshot bug cached batch mode had). Overlay files
   are authoritative in memory, so disk is not consulted for them. *)
let revalidate t =
  let changed = ref [] and missing = ref [] in
  Array.iter
    (fun f ->
      if not f.w_overlay then
        if not (Sys.file_exists f.w_path) then missing := f.w_path :: !missing
        else
          match read_file f.w_path with
          | src ->
              let fp = fp_of src in
              if not (String.equal fp f.w_fp) then begin
                f.w_src <- src;
                f.w_fp <- fp;
                changed := f.w_path :: !changed
              end
          | exception Sys_error _ -> missing := f.w_path :: !missing)
    t.files;
  (List.rev !changed, List.rev !missing)

(* Post-run drift detection: which disk-backed files no longer match the
   snapshot the run analysed? Read-only — the next revalidate picks the
   new contents up; this only tells the caller which results to degrade. *)
let drifted t =
  let out = ref [] in
  Array.iter
    (fun f ->
      if not f.w_overlay then
        match read_file f.w_path with
        | src -> if not (String.equal (fp_of src) f.w_fp) then out := f.w_path :: !out
        | exception Sys_error _ -> out := f.w_path :: !out)
    t.files;
  List.rev !out

(* Roots whose transitive callee closure touches a function defined in
   one of [changed_paths] — the results a mid-run edit can have poisoned. *)
let stale_roots sg changed_paths =
  if changed_paths = [] then []
  else
    let changed = List.fold_left (fun s p -> p :: s) [] changed_paths in
    let in_changed file = List.exists (String.equal file) changed in
    List.filter
      (fun root ->
        List.exists
          (fun fn ->
            match Supergraph.file_of_function sg fn with
            | Some file -> in_changed file
            | None -> false)
          (Callgraph.closures sg.Supergraph.callgraph root))
      (Supergraph.roots sg)
