type config = {
  c_files : string list;
  c_parse : path:string -> source:string -> (Cast.tunit, string) result;
  c_exts : Sm.t list;
  c_options : Engine.options;
  c_jobs : int;
  c_store : Summary_store.t option;
  c_rank : string;
}

type t = {
  cfg : config;
  watch : Watch.t;
  (* pass-1 AST cache: path -> (fingerprint of the source it was parsed
     from, AST). Unchanged files keep their parsed object across
     re-checks, so an edit re-parses exactly one file. *)
  asts : (string, Fingerprint.t * Cast.tunit) Hashtbl.t;
  mutable dirty : bool;
  mutable last : (string * int) option;  (* diagnostics bytes, report count *)
  mutable n_checks : int;
  mutable n_edits : int;
  mutable n_coalesced : int;
  mutable n_rechecks : int;
  mutable last_recheck_s : float;
}

type check_out = {
  o_diagnostics : string;
  o_reports : int;
  o_rechecked : bool;
  o_recheck_s : float;
  o_warnings : string list;
  o_degraded : int;
  o_drifted : string list;
}

let create cfg =
  match Watch.create cfg.c_files with
  | Error msg -> Error msg
  | Ok watch ->
      Ok
        {
          cfg;
          watch;
          asts = Hashtbl.create 64;
          dirty = true;
          last = None;
          n_checks = 0;
          n_edits = 0;
          n_coalesced = 0;
          n_rechecks = 0;
          last_recheck_s = 0.;
        }

let rank_reports cfg (result : Engine.result) =
  match cfg.c_rank with
  | "stat" -> Rank.statistical_sort ~counters:result.Engine.counters result.Engine.reports
  | "none" -> result.Engine.reports
  | _ -> Rank.generic_sort result.Engine.reports

(* One full warm re-check: revalidate disk snapshots, re-parse only
   changed files, rebuild the supergraph over the held ASTs, and drive
   the engine through the (memory-backed) store. Every Diag warning the
   run emits — including ones raised on worker domains — is captured
   into this request's reply instead of a shared stderr. *)
let recheck t =
  let warnings = ref [] in
  Diag.with_sink
    (fun line -> warnings := line :: !warnings)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let _changed, missing = Watch.revalidate t.watch in
      List.iter
        (fun p -> Diag.warnf "%s: vanished from disk; analysing last good snapshot" p)
        missing;
      let tus =
        List.filter_map
          (fun (f : Watch.file) ->
            match Hashtbl.find_opt t.asts f.Watch.w_path with
            | Some (fp, tu) when String.equal fp f.Watch.w_fp -> Some tu
            | _ -> (
                match t.cfg.c_parse ~path:f.Watch.w_path ~source:f.Watch.w_src with
                | Ok tu ->
                    Hashtbl.replace t.asts f.Watch.w_path (f.Watch.w_fp, tu);
                    Some tu
                | Error msg ->
                    Hashtbl.remove t.asts f.Watch.w_path;
                    Diag.warnf "%s: skipping entire file: %s" f.Watch.w_path msg;
                    None))
          (Watch.files t.watch)
      in
      let sg = Supergraph.build tus in
      (match t.cfg.c_store with
      | Some s -> Summary_store.reset_stats s
      | None -> ());
      let result =
        Engine.run ~options:t.cfg.c_options ~jobs:t.cfg.c_jobs
          ?cache:t.cfg.c_store sg t.cfg.c_exts
      in
      List.iter
        (fun (d : Engine.degraded) ->
          Diag.warnf "analysis of root %s degraded: %s" d.Engine.d_root
            d.Engine.d_reason)
        result.Engine.degraded;
      (* a file rewritten while the engine was running means these results
         mix AST generations: degrade the affected roots loudly and stay
         dirty so the next check recomputes from the new contents *)
      let drifted = Watch.drifted t.watch in
      List.iter
        (fun root ->
          Diag.warnf "analysis of root %s degraded: source file changed on disk during the run"
            root)
        (Watch.stale_roots sg drifted);
      t.dirty <- drifted <> [];
      let ranked = rank_reports t.cfg result in
      let diagnostics = Json_out.reports_to_string ranked in
      let dt = Unix.gettimeofday () -. t0 in
      t.n_rechecks <- t.n_rechecks + 1;
      t.last_recheck_s <- dt;
      t.last <- Some (diagnostics, List.length ranked);
      {
        o_diagnostics = diagnostics;
        o_reports = List.length ranked;
        o_rechecked = true;
        o_recheck_s = dt;
        o_warnings = List.rev !warnings;
        o_degraded = List.length result.Engine.degraded;
        o_drifted = drifted;
      })

let check t =
  (* the cached clean result is only trustworthy if disk still matches
     the analysed snapshots: re-stat and re-hash before serving it, so an
     edit that never announced itself via didChange still forces a
     re-check (the stale-snapshot bug batch mode had) *)
  let changed, _missing = Watch.revalidate t.watch in
  if changed <> [] then t.dirty <- true;
  match t.last with
  | Some (diagnostics, n) when not t.dirty ->
      {
        o_diagnostics = diagnostics;
        o_reports = n;
        o_rechecked = false;
        o_recheck_s = 0.;
        o_warnings = [];
        o_degraded = 0;
        o_drifted = [];
      }
  | _ -> recheck t

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)
(* ------------------------------------------------------------------ *)

let diagnostics_reply t (o : check_out) =
  let open Json_out in
  let cache_fields =
    match t.cfg.c_store with
    | None -> []
    | Some s ->
        let st = Summary_store.stats s in
        [
          ("roots_replayed", Int st.Summary_store.roots_replayed);
          ("roots_recomputed", Int st.Summary_store.roots_recomputed);
          ("fns_recomputed", Int st.Summary_store.fns_recomputed);
        ]
  in
  Obj
    ([
       ("ok", Bool true);
       ("event", Str "diagnostics");
       ("rechecked", Bool o.o_rechecked);
       ("recheck_s", Float o.o_recheck_s);
       ("reports", Int o.o_reports);
       ("degraded", Int o.o_degraded);
       ("drifted", Arr (List.map (fun p -> Str p) o.o_drifted));
       ("warnings", Arr (List.map (fun w -> Str w) o.o_warnings));
     ]
    @ (if o.o_rechecked then cache_fields else [])
    @ [ ("diagnostics", Str o.o_diagnostics) ])

let stats_reply t =
  let open Json_out in
  let store_fields =
    match t.cfg.c_store with
    | None -> [ ("store", Str "none") ]
    | Some s ->
        let st = Summary_store.stats s in
        [
          ( "store",
            Str
              (match
                 (Summary_store.in_memory s, Summary_store.disk_persist s)
               with
              | true, true -> "memory+disk"
              | true, false -> "memory"
              | false, true -> "disk"
              | false, false -> "read-only") );
          ("mem_entries", Int (Summary_store.mem_entries s));
          ("fn_hits", Int st.Summary_store.fn_hits);
          ("fn_stale", Int st.Summary_store.fn_stale);
          ("fn_absent", Int st.Summary_store.fn_absent);
          ("roots_replayed", Int st.Summary_store.roots_replayed);
          ("roots_recomputed", Int st.Summary_store.roots_recomputed);
          ("fns_recomputed", Int st.Summary_store.fns_recomputed);
        ]
  in
  Obj
    ([
       ("ok", Bool true);
       ("event", Str "stats");
       ("files", Int (List.length t.cfg.c_files));
       ("checkers", Int (List.length t.cfg.c_exts));
       ("jobs", Int t.cfg.c_jobs);
       ("checks", Int t.n_checks);
       ("edits", Int t.n_edits);
       ("coalesced", Int t.n_coalesced);
       ("rechecks", Int t.n_rechecks);
       ("last_recheck_s", Float t.last_recheck_s);
       ("dirty", Bool t.dirty);
     ]
    @ store_fields)

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                    *)
(* ------------------------------------------------------------------ *)

(* [more_pending] is the coalescing signal: when the transport already
   holds another complete request line, a [didChange] only applies its
   edit and replies [queued] — the re-check happens once, when the storm
   drains. Every request still gets exactly one reply, in order. *)
let handle_request t ~more_pending (req : Proto.request) =
  match req with
  | Proto.Check ->
      t.n_checks <- t.n_checks + 1;
      (diagnostics_reply t (check t), false)
  | Proto.Did_change { path; text } -> (
      t.n_edits <- t.n_edits + 1;
      match Watch.set_overlay t.watch ~path ~text with
      | Error msg -> (Proto.error_response msg, false)
      | Ok changed ->
          if changed then t.dirty <- true;
          if more_pending then begin
            t.n_coalesced <- t.n_coalesced + 1;
            ( Json_out.Obj
                [
                  ("ok", Json_out.Bool true);
                  ("event", Json_out.Str "queued");
                  ("path", Json_out.Str path);
                  ("changed", Json_out.Bool changed);
                ],
              false )
          end
          else (diagnostics_reply t (check t), false))
  | Proto.Stats -> (stats_reply t, false)
  | Proto.Shutdown ->
      ( Json_out.Obj
          [ ("ok", Json_out.Bool true); ("event", Json_out.Str "bye") ],
        true )

let handle_line t ~more_pending line =
  match Proto.request_of_line line with
  | Error msg -> (Proto.error_response msg, false)
  | Ok req -> handle_request t ~more_pending req

(* ------------------------------------------------------------------ *)
(* Transport: newline-delimited requests over a pair of fds            *)
(* ------------------------------------------------------------------ *)

(* Line reader with its own buffer: the coalescing decision must see
   lines the kernel already delivered, which an in_channel would hide in
   its private buffer while select() reports the fd idle. *)
type reader = {
  r_fd : Unix.file_descr;
  r_buf : Buffer.t;
  r_chunk : bytes;
  mutable r_eof : bool;
}

let reader fd = { r_fd = fd; r_buf = Buffer.create 4096; r_chunk = Bytes.create 4096; r_eof = false }

let buffered_line r =
  let s = Buffer.contents r.r_buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear r.r_buf;
      Buffer.add_substring r.r_buf s (i + 1) (String.length s - i - 1);
      Some line

(* Pull more bytes, waiting at most [timeout] seconds (negative: block).
   Returns false on EOF or timeout. *)
let fill r ~timeout =
  if r.r_eof then false
  else
    let ready =
      if timeout < 0. then true
      else
        match Unix.select [ r.r_fd ] [] [] timeout with
        | [], _, _ -> false
        | _ -> true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if not ready then false
    else
      match Unix.read r.r_fd r.r_chunk 0 (Bytes.length r.r_chunk) with
      | 0 ->
          r.r_eof <- true;
          false
      | n ->
          Buffer.add_subbytes r.r_buf r.r_chunk 0 n;
          true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let rec read_line_block r =
  match buffered_line r with
  | Some line -> Some line
  | None ->
      if fill r ~timeout:(-1.) then read_line_block r
      else if Buffer.length r.r_buf > 0 then begin
        (* unterminated trailing line at EOF: take it whole *)
        let line = Buffer.contents r.r_buf in
        Buffer.clear r.r_buf;
        Some line
      end
      else None

(* Does another complete request line arrive within the debounce window?
   Keeps pulling until a full line is buffered or the window closes. *)
let more_within r ~debounce =
  let deadline = Unix.gettimeofday () +. debounce in
  let rec go () =
    let s = Buffer.contents r.r_buf in
    if String.contains s '\n' then true
    else
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0. then false
      else if fill r ~timeout:left then go ()
      else false
  in
  go ()

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Serve one connection. Returns true when the client asked the daemon to
   shut down (vs. just disconnecting). *)
let serve_fd t ~debounce ~fd_in ~fd_out =
  let r = reader fd_in in
  let rec loop () =
    match read_line_block r with
    | None -> false
    | Some line ->
        if String.trim line = "" then loop ()
        else begin
          let more = more_within r ~debounce in
          let reply, quit = handle_line t ~more_pending:more line in
          write_all fd_out (Proto.to_line reply);
          if quit then true else loop ()
        end
  in
  loop ()

let serve_stdio ?(debounce = 0.02) t =
  ignore (serve_fd t ~debounce ~fd_in:Unix.stdin ~fd_out:Unix.stdout)

let serve_socket ?(debounce = 0.02) t ~path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> () | Sys_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> () | Sys_error _ -> ())
    (fun () ->
      let rec accept_loop () =
        match Unix.accept sock with
        | client, _ ->
            let quit =
              Fun.protect
                ~finally:(fun () ->
                  try Unix.close client with Unix.Unix_error _ -> ())
                (fun () ->
                  try serve_fd t ~debounce ~fd_in:client ~fd_out:client
                  with Unix.Unix_error (Unix.EPIPE, _, _) -> false)
            in
            if not quit then accept_loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      in
      accept_loop ())
