(** Wire protocol of the analysis daemon: newline-delimited JSON.

    Each request is one line holding one JSON object with a string
    [cmd] field; each reply is one line holding one JSON object with a
    boolean [ok] field. The four requests:

    - [{"cmd":"check"}] — re-check the tree (no-op fast path when
      nothing changed) and reply with diagnostics;
    - [{"cmd":"didChange","path":P,"text":T}] — replace [P]'s contents
      with [T] without touching disk (the editor-buffer overlay); omit
      [text] to drop the overlay and re-read [P] from disk. Replies
      with diagnostics, or with a cheap [{"event":"queued"}] when the
      server knows more input is already pending (edit-storm
      coalescing);
    - [{"cmd":"stats"}] — counters since startup plus the last
      re-check's cache statistics;
    - [{"cmd":"shutdown"}] — acknowledge and exit the serve loop. *)

type request =
  | Check
  | Did_change of { path : string; text : string option }
  | Stats
  | Shutdown

val request_of_line : string -> (request, string) result
(** Decode one request line. All protocol errors — malformed JSON,
    non-object payloads, unknown or missing [cmd] — come back as
    [Error reason] so the serve loop can reply instead of dying. *)

val to_line : Json_out.t -> string
(** Render a reply as exactly one newline-terminated line (JSON string
    escaping keeps embedded newlines out of the framing). *)

val error_response : string -> Json_out.t
(** [{"ok":false,"error":msg}] *)
