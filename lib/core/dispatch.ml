(* Compiled transition dispatch.

   [compile] runs once per extension per run context and precomputes
   everything [Engine.apply_transitions] used to rediscover at every node:

   - per-transition metadata ([ctr]): source kind, the pruned
     callsite-model pattern, the mentioned holes, event-kind capabilities;
   - a head-constructor discrimination index: the subject node's root
     constructor (call to a known name, or one of ~15 shapes) selects the
     subset of transitions whose pattern root could possibly match it;
   - block-level skip sets: a block whose head summary
     ({!Block_heads.of_block}) intersects no pattern-root requirement of
     the extension cannot fire anything, so the engine skips
     [apply_transitions] for all of its nodes.

   Soundness of the index rests on how {!Pattern.match_expr} treats
   roots: the subject's root constructor is compared literally against a
   non-hole pattern root (casts are only stripped at hole positions), so
   a pattern rooted in a specific constructor can only match subjects
   with that same root. Hole-rooted patterns (other than [any_fn_call])
   strip subject casts and can match anything, so they live in a wildcard
   fallback list that is appended to every bucket; callout-only patterns
   are unknowable statically and stay wildcards too. Candidate lists are
   sorted by declaration index, so first-match-wins semantics are
   bit-for-bit those of the naive scan over the full transition list. *)

module Sset = Set.Make (String)

(* ------------------------------------------------------------------ *)
(* Callsite modelling                                                  *)
(* ------------------------------------------------------------------ *)

(* Callsite modelling (Section 6): "the analysis does not follow calls to
   kfree because the extension matches these calls". Only call-shaped
   patterns model a call. The value of an assignment or cast chain, of a
   comma expression, and of either conditional arm can come from a call,
   so the walk looks through all of them. *)
let rec expr_shape_is_call (e : Cast.expr) =
  match e.enode with
  | Cast.Ecall _ -> true
  | Cast.Eassign (_, _, r) -> expr_shape_is_call r
  | Cast.Ecast (_, e1) -> expr_shape_is_call e1
  | Cast.Ecomma (_, r) -> expr_shape_is_call r
  | Cast.Econd (_, t, f) -> expr_shape_is_call t || expr_shape_is_call f
  | _ -> false

let rec pattern_models_call = function
  | Pattern.Pexpr e -> expr_shape_is_call e
  | Pattern.Pcallout _ -> true
  | Pattern.Pand (a, b) | Pattern.Por (a, b) ->
      pattern_models_call a || pattern_models_call b
  | Pattern.Pend_of_path | Pattern.Pnever | Pattern.Palways -> false

(* The sub-pattern the engine matches at call nodes to decide whether the
   extension models the callsite. Keeping only call-shaped disjuncts (and
   callouts, which are unknowable) means a bare hole that happens to sit
   in a disjunction with a call pattern cannot suppress following a
   pointer-valued call it incidentally matches — the same guarantee the
   engine always gave bare-hole patterns standing alone. A conjunction is
   kept whole: both conjuncts must hold anyway. *)
let rec call_model (p : Pattern.t) : Pattern.t option =
  match p with
  | Pattern.Pexpr e -> if expr_shape_is_call e then Some p else None
  | Pattern.Pcallout _ -> Some p
  | Pattern.Pand (a, b) ->
      if pattern_models_call a || pattern_models_call b then Some p else None
  | Pattern.Por (a, b) -> (
      match (call_model a, call_model b) with
      | Some a', Some b' -> Some (Pattern.Por (a', b'))
      | (Some _ as r), None | None, (Some _ as r) -> r
      | None, None -> None)
  | Pattern.Pend_of_path | Pattern.Pnever | Pattern.Palways -> None

(* ------------------------------------------------------------------ *)
(* Pattern-root head sets                                              *)
(* ------------------------------------------------------------------ *)

type headset =
  | Any
  | Heads of { mask : int; calls : Sset.t; any_call : bool }

let hs_empty = Heads { mask = 0; calls = Sset.empty; any_call = false }

let hs_shape s =
  Heads
    { mask = 1 lsl Block_heads.shape_code s; calls = Sset.empty; any_call = false }

let hs_union a b =
  match (a, b) with
  | Any, _ | _, Any -> Any
  | Heads a, Heads b ->
      Heads
        {
          mask = a.mask lor b.mask;
          calls = Sset.union a.calls b.calls;
          any_call = a.any_call || b.any_call;
        }

(* Set-theoretic intersection of the denoted node sets: a named call [f]
   is covered by a side either via its [calls] or via [any_call]. *)
let hs_inter a b =
  match (a, b) with
  | Any, x | x, Any -> x
  | Heads a, Heads b ->
      Heads
        {
          mask = a.mask land b.mask;
          calls =
            Sset.union
              (Sset.inter a.calls b.calls)
              (Sset.union
                 (if a.any_call then b.calls else Sset.empty)
                 (if b.any_call then a.calls else Sset.empty));
          any_call = a.any_call && b.any_call;
        }

let expr_heads holes (e : Cast.expr) =
  match e.enode with
  | Cast.Eident h -> (
      match List.assoc_opt h holes with
      | Some Holes.Any_fn_call ->
          (* matches only call subjects, any callee *)
          Heads { mask = 0; calls = Sset.empty; any_call = true }
      | Some Holes.Any_arguments ->
          (* an argument-list hole in expression position never matches *)
          hs_empty
      | Some _ ->
          (* bare hole: subject casts are stripped, so any root can match *)
          Any
      | None -> hs_shape Block_heads.Sident)
  | Cast.Ecall (pf, _) -> (
      match pf.enode with
      | Cast.Eident f when not (List.mem_assoc f holes) ->
          Heads { mask = 0; calls = Sset.singleton f; any_call = false }
      | _ ->
          (* hole or computed expression in callee position: any call *)
          Heads { mask = 0; calls = Sset.empty; any_call = true })
  | Cast.Eassign _ -> hs_shape Block_heads.Sassign
  | Cast.Eunary (Cast.Deref, _) -> hs_shape Block_heads.Sderef
  | Cast.Eunary _ -> hs_shape Block_heads.Sunary
  | Cast.Ebinary _ -> hs_shape Block_heads.Sbinary
  | Cast.Ecast _ -> hs_shape Block_heads.Scast
  | Cast.Econd _ -> hs_shape Block_heads.Scond
  | Cast.Ecomma _ -> hs_shape Block_heads.Scomma
  | Cast.Efield _ -> hs_shape Block_heads.Sfield
  | Cast.Earrow _ -> hs_shape Block_heads.Sarrow
  | Cast.Eindex _ -> hs_shape Block_heads.Sindex
  | Cast.Eint _ | Cast.Efloat _ | Cast.Echar _ | Cast.Estr _ ->
      hs_shape Block_heads.Slit
  | Cast.Esizeof_type _ | Cast.Esizeof_expr _ -> hs_shape Block_heads.Ssizeof
  | Cast.Einit_list _ -> hs_shape Block_heads.Sinit

let rec pattern_heads holes = function
  | Pattern.Pexpr e -> expr_heads holes e
  | Pattern.Pcallout _ | Pattern.Palways -> Any
  | Pattern.Pnever | Pattern.Pend_of_path -> hs_empty
  | Pattern.Por (a, b) -> hs_union (pattern_heads holes a) (pattern_heads holes b)
  | Pattern.Pand (a, b) -> hs_inter (pattern_heads holes a) (pattern_heads holes b)

type classified =
  | Wildcard
  | Rooted of {
      shapes : Block_heads.shape list;
      calls : string list;
      any_call : bool;
    }

let classify ~holes p =
  match pattern_heads holes p with
  | Any -> Wildcard
  | Heads { mask; calls; any_call } ->
      Rooted
        {
          shapes =
            List.filter
              (fun s -> mask land (1 lsl Block_heads.shape_code s) <> 0)
              Block_heads.all_shapes;
          calls = Sset.elements calls;
          any_call;
        }

(* ------------------------------------------------------------------ *)
(* Compiled form                                                       *)
(* ------------------------------------------------------------------ *)

type ctr = {
  c_tr : Sm.transition;
  c_src_var : string option;  (** [Src_var v] source value *)
  c_src_global : string option;  (** [Src_global g] source value *)
  c_src_global_code : int;  (** interned code of [c_src_global]; -1 = none *)
  c_call_model : Pattern.t option;
      (** pruned callsite-model pattern; [None] = does not model calls *)
  c_holes : (string * Holes.t) list;  (** holes the pattern mentions *)
  c_mentions_svar : bool;
  c_matches_node : bool;
  c_matches_eop : bool;
}

(* One candidate list plus the prescan facts [Engine.apply_transitions]
   needs before touching any transition: whether anything in the list can
   model a callsite, whether anything has a variable source, and the
   distinct global source states. Precomputing these turns the engine's
   per-node no-match prescan into three field reads and (at most) a short
   string-array scan — no closure, no refs, no per-transition loop. *)
type bucket = {
  b_trs : int array;
  b_any_model : bool;  (* some candidate has a callsite model *)
  b_has_var : bool;  (* some candidate has a Src_var source *)
  b_globals : string array;  (* distinct Src_global source states *)
  b_global_codes : int array;  (* the same states as interned codes *)
}

type t = {
  ext : Sm.t;
  sg : Supergraph.t;
  indexed : bool;
  states : string array;
      (* the extension's statically known state values in declaration
         order: code 0 is [Sm.stop_value], then the start state, then
         source and destination values. Runtime [set_global] can write
         strings outside this set, so gstates remain strings at runtime
         and [state_code] resolves them by content (possibly to -1). *)
  state_codes : (string, int) Hashtbl.t;
  trs : ctr array;
  all_node : bucket;
  eop_var : int array;
  eop_global : int array;
  by_call : (string, bucket) Hashtbl.t;
  generic_call : bucket;
  by_shape : bucket array;
  live : Bytes.t;
      (* per-block skip set over flat block ids ([Supergraph.flat]):
         live.(fb) = '\001' iff some transition could match some node of
         that block. Filled at compile so the whole value is immutable
         and shared read-only across worker domains. *)
}

let indexed t = t.indexed
let transitions t = t.trs
let states t = t.states

let state_code t s =
  match Hashtbl.find_opt t.state_codes s with Some c -> c | None -> -1
let all_node t = t.all_node.b_trs
let eop_var t = t.eop_var
let eop_global t = t.eop_global

let merge lists = Array.of_list (List.sort_uniq Int.compare (List.concat lists))

let mk_bucket (trs : ctr array) (b_trs : int array) =
  let any_model = ref false and has_var = ref false in
  let globs = ref [] in
  Array.iter
    (fun i ->
      let c = trs.(i) in
      if c.c_call_model <> None then any_model := true;
      if c.c_src_var <> None then has_var := true;
      match c.c_src_global with
      | Some g ->
          if not (List.mem_assoc g !globs) then
            globs := (g, c.c_src_global_code) :: !globs
      | None -> ())
    b_trs;
  {
    b_trs;
    b_any_model = !any_model;
    b_has_var = !has_var;
    b_globals = Array.of_list (List.rev_map fst !globs);
    b_global_codes = Array.of_list (List.rev_map snd !globs);
  }

(* The extension's statically known state values, coded densely with
   [Sm.stop_value] reserved at 0. Sources, destinations and the start
   state are all here; only [set_global] actions can write states outside
   this set at runtime, which is why gstates stay strings in [Sm.sm_inst]
   and codes are resolved by content at the comparison boundary. *)
let collect_states (ext : Sm.t) =
  let codes : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let add s =
    if not (Hashtbl.mem codes s) then begin
      Hashtbl.add codes s (Hashtbl.length codes);
      order := s :: !order
    end
  in
  add Sm.stop_value;
  add ext.Sm.start_state;
  let rec dest = function
    | Sm.To_var v | Sm.To_global v -> add v
    | Sm.On_branch (a, b) ->
        dest a;
        dest b
    | Sm.To_stop | Sm.Same -> ()
  in
  List.iter
    (fun (tr : Sm.transition) ->
      (match tr.tr_source with Sm.Src_var v -> add v | Sm.Src_global g -> add g);
      dest tr.tr_dest)
    ext.Sm.transitions;
  (Array.of_list (List.rev !order), codes)

let compile ?(indexed = true) ~sg (ext : Sm.t) : t =
  let states, state_codes = collect_states ext in
  let trs =
    Array.of_list
      (List.map
         (fun (tr : Sm.transition) ->
           {
             c_tr = tr;
             c_src_var =
               (match tr.tr_source with
               | Sm.Src_var v -> Some v
               | Sm.Src_global _ -> None);
             c_src_global =
               (match tr.tr_source with
               | Sm.Src_global g -> Some g
               | Sm.Src_var _ -> None);
             c_src_global_code =
               (match tr.tr_source with
               | Sm.Src_global g -> Hashtbl.find state_codes g
               | Sm.Src_var _ -> -1);
             c_call_model = call_model tr.tr_pattern;
             c_holes = Pattern.holes_of tr.tr_pattern ext.Sm.holes;
             c_mentions_svar =
               (match ext.Sm.svar with
               | Some sv -> Pattern.mentions_hole tr.tr_pattern sv
               | None -> false);
             c_matches_node = Pattern.can_match_node tr.tr_pattern;
             c_matches_eop = Pattern.can_match_end_of_path tr.tr_pattern;
           })
         ext.Sm.transitions)
  in
  let idxs p =
    Array.to_list trs
    |> List.mapi (fun i c -> (i, c))
    |> List.filter_map (fun (i, c) -> if p c then Some i else None)
  in
  let all_node_l = idxs (fun c -> c.c_matches_node) in
  let eop_var = idxs (fun c -> c.c_matches_eop && c.c_src_var <> None) in
  let eop_global = idxs (fun c -> c.c_matches_eop && c.c_src_global <> None) in
  let fallback = ref [] in
  let any_call = ref [] in
  let named : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
  let shape_lists = Array.make Block_heads.n_shapes [] in
  let ext_mask = ref 0 in
  let ext_any_call = ref false in
  let ext_wild = ref false in
  let ext_calls = Hashtbl.create 8 in
  if indexed then
    Array.iteri
      (fun i c ->
        if c.c_matches_node then
          match pattern_heads ext.Sm.holes c.c_tr.Sm.tr_pattern with
          | Any ->
              fallback := i :: !fallback;
              ext_wild := true
          | Heads { mask; calls; any_call = ac } ->
              for s = 0 to Block_heads.n_shapes - 1 do
                if mask land (1 lsl s) <> 0 then
                  shape_lists.(s) <- i :: shape_lists.(s)
              done;
              ext_mask := !ext_mask lor mask;
              if ac then begin
                any_call := i :: !any_call;
                ext_any_call := true
              end;
              Sset.iter
                (fun f ->
                  Hashtbl.replace ext_calls f ();
                  let r =
                    match Hashtbl.find_opt named f with
                    | Some r -> r
                    | None ->
                        let r = ref [] in
                        Hashtbl.add named f r;
                        r
                  in
                  r := i :: !r)
                calls)
      trs;
  let generic_call = mk_bucket trs (merge [ !any_call; !fallback ]) in
  let by_call = Hashtbl.create (Hashtbl.length named) in
  Hashtbl.iter
    (fun f r ->
      Hashtbl.replace by_call f (mk_bucket trs (merge [ !r; !any_call; !fallback ])))
    named;
  let by_shape =
    Array.init Block_heads.n_shapes (fun s ->
        if s = Block_heads.shape_code Block_heads.Scall_other then generic_call
        else mk_bucket trs (merge [ shape_lists.(s); !fallback ]))
  in
  (* Per-block skip set over flat ids, filled once here so the compiled
     form never writes afterwards and can be shared read-only across
     engine worker domains (one compile per extension instead of one per
     worker context). Unindexed dispatch marks everything live. *)
  let flat = sg.Supergraph.flat in
  let nb = flat.Flat.n_blocks in
  let live = Bytes.make nb (if indexed then '\000' else '\001') in
  if indexed then begin
    let ext_wild = !ext_wild
    and ext_mask = !ext_mask
    and ext_any_call = !ext_any_call in
    let call_bit = 1 lsl Block_heads.shape_code Block_heads.Scall_other in
    let co = flat.Flat.call_off in
    for fb = 0 to nb - 1 do
      let m = flat.Flat.head_mask.(fb) in
      let lv =
        ext_wild
        || ext_mask land m <> 0
        || (ext_any_call && (co.(fb + 1) > co.(fb) || m land call_bit <> 0))
        ||
        let rec scan i =
          i < co.(fb + 1)
          && (Hashtbl.mem ext_calls flat.Flat.call_names.(i) || scan (i + 1))
        in
        scan co.(fb)
      in
      if lv then Bytes.set live fb '\001'
    done
  end;
  {
    ext;
    sg;
    indexed;
    states;
    state_codes;
    trs;
    all_node = mk_bucket trs (Array.of_list all_node_l);
    eop_var = Array.of_list eop_var;
    eop_global = Array.of_list eop_global;
    by_call;
    generic_call;
    by_shape;
    live;
  }

(* Per-node, so allocation-free: no [head] constructor, no [find_opt]
   option — named calls probe [by_call] with [Not_found] as the miss
   path, everything else indexes [by_shape] by code. *)
let candidates t (node : Cast.expr) =
  if not t.indexed then t.all_node
  else
    match node.Cast.enode with
    | Cast.Ecall ({ enode = Cast.Eident f; _ }, _) -> (
        match Hashtbl.find t.by_call f with
        | b -> b
        | exception Not_found -> t.generic_call)
    | _ -> t.by_shape.(Block_heads.shape_code_of node)

(* Out-of-range flat ids (a function the supergraph does not know has
   fbase -1, making every fb negative) answer [true] — conservative, the
   engine then consults the per-node candidate buckets as before. *)
let block_live_flat t fb =
  fb < 0 || fb >= Bytes.length t.live || Bytes.unsafe_get t.live fb = '\001'
