exception Metal_error of Srcloc.t * string

type st = { toks : Clex.token array; mutable idx : int }

let cur st = st.toks.(st.idx)
let cur_tok st = (cur st).Clex.tok
let cur_loc st = (cur st).Clex.loc
let error st msg = raise (Metal_error (cur_loc st, msg))
let advance st = if st.idx < Array.length st.toks - 1 then st.idx <- st.idx + 1

let eat st tok =
  if cur_tok st = tok then advance st
  else
    error st
      (Printf.sprintf "expected %s but found %s" (Tok.to_string tok)
         (Tok.to_string (cur_tok st)))

let eat_ident st =
  match cur_tok st with
  | Tok.IDENT s ->
      advance st;
      s
  | t -> error st (Printf.sprintf "expected identifier, found %s" (Tok.to_string t))

let accept st tok =
  if cur_tok st = tok then begin
    advance st;
    true
  end
  else false

let accept_word st w =
  match cur_tok st with
  | Tok.IDENT s when String.equal s w ->
      advance st;
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Fragments: collect a balanced token run and hand it to the C parser *)
(* ------------------------------------------------------------------ *)

(* Tokens between the just-consumed opening brace and its matching
   closing brace. *)
let collect_braced st =
  let depth = ref 1 in
  let toks = ref [] in
  while !depth > 0 do
    (match cur_tok st with
    | Tok.LBRACE -> incr depth
    | Tok.RBRACE -> decr depth
    | Tok.EOF -> error st "unterminated pattern fragment"
    | _ -> ());
    if !depth > 0 then begin
      toks := cur st :: !toks;
      advance st
    end
    else advance st (* past the closing brace *)
  done;
  List.rev !toks

let fragment_to_expr st (toks : Clex.token list) loc =
  (* drop a trailing semicolon: patterns are often written as statements *)
  let toks =
    match List.rev toks with
    | { Clex.tok = Tok.SEMI; _ } :: rest -> List.rev rest
    | _ -> toks
  in
  match toks with
  | [] -> error st "empty pattern fragment"
  | _ -> (
      let eof = { Clex.tok = Tok.EOF; loc } in
      let e, rest = Cparse.expr_of_tokens (toks @ [ eof ]) in
      match rest with
      | [ { Clex.tok = Tok.EOF; _ } ] | [] -> e
      | t :: _ ->
          raise
            (Metal_error
               ( t.Clex.loc,
                 Printf.sprintf "trailing %s in pattern fragment"
                   (Tok.to_string t.Clex.tok) )))

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_hole_type st =
  match cur_tok st with
  | Tok.IDENT name when Option.is_some (Holes.of_name name) ->
      advance st;
      Option.get (Holes.of_name name)
  | _ ->
      (* a C type: base keywords (possibly struct/union tag) then stars *)
      let base =
        match cur_tok st with
        | Tok.KW_VOID ->
            advance st;
            Ctyp.Void
        | Tok.KW_CHAR ->
            advance st;
            Ctyp.char_
        | Tok.KW_INT ->
            advance st;
            Ctyp.int_
        | Tok.KW_LONG ->
            advance st;
            Ctyp.long_
        | Tok.KW_SHORT ->
            advance st;
            Ctyp.Int { signed = true; size = Ctyp.Ishort }
        | Tok.KW_FLOAT ->
            advance st;
            Ctyp.Float Ctyp.Ffloat
        | Tok.KW_DOUBLE ->
            advance st;
            Ctyp.Float Ctyp.Fdouble
        | Tok.KW_UNSIGNED ->
            advance st;
            (match cur_tok st with
            | Tok.KW_INT ->
                advance st;
                Ctyp.unsigned_int
            | Tok.KW_CHAR ->
                advance st;
                Ctyp.Int { signed = false; size = Ctyp.Ichar }
            | Tok.KW_LONG ->
                advance st;
                Ctyp.Int { signed = false; size = Ctyp.Ilong }
            | _ -> Ctyp.unsigned_int)
        | Tok.KW_STRUCT ->
            advance st;
            Ctyp.Struct (eat_ident st)
        | Tok.KW_UNION ->
            advance st;
            Ctyp.Union (eat_ident st)
        | Tok.KW_ENUM ->
            advance st;
            Ctyp.Enum (eat_ident st)
        | Tok.IDENT name ->
            advance st;
            Ctyp.Named name
        | t -> error st (Printf.sprintf "expected hole type, found %s" (Tok.to_string t))
      in
      let rec stars t = if accept st Tok.STAR then stars (Ctyp.Ptr t) else t in
      Holes.Concrete (stars base)

let parse_decl st ~state =
  (* "decl" already consumed *)
  let hole = parse_hole_type st in
  let rec names acc =
    let n = eat_ident st in
    if accept st Tok.COMMA then names (n :: acc) else List.rev (n :: acc)
  in
  let ns = names [] in
  eat st Tok.SEMI;
  { Metal_ast.d_state = state; d_hole = hole; d_names = ns }

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)
(* ------------------------------------------------------------------ *)

let rec parse_pattern st = parse_pat_or st

and parse_pat_or st =
  let left = parse_pat_and st in
  if accept st Tok.OROR then Pattern.Por (left, parse_pat_or st) else left

and parse_pat_and st =
  let left = parse_pat_atom st in
  if accept st Tok.ANDAND then Pattern.Pand (left, parse_pat_and st) else left

and parse_pat_atom st =
  let loc = cur_loc st in
  match cur_tok st with
  | Tok.LBRACE ->
      advance st;
      let toks = collect_braced st in
      Pattern.Pexpr (fragment_to_expr st toks loc)
  | Tok.DOLLAR_LBRACE -> (
      advance st;
      let toks = collect_braced st in
      match toks with
      | [ { Clex.tok = Tok.INT_LIT 0L; _ } ] -> Pattern.Pnever
      | [ { Clex.tok = Tok.INT_LIT 1L; _ } ] -> Pattern.Palways
      | _ -> Pattern.Pcallout (fragment_to_expr st toks loc))
  | Tok.DOLLAR_WORD w when String.equal w "end_of_path" ->
      advance st;
      Pattern.Pend_of_path
  | Tok.LPAREN ->
      advance st;
      let p = parse_pattern st in
      eat st Tok.RPAREN;
      p
  | t -> error st (Printf.sprintf "expected pattern, found %s" (Tok.to_string t))

(* ------------------------------------------------------------------ *)
(* Destinations and actions                                            *)
(* ------------------------------------------------------------------ *)

let rec parse_dest st : Metal_ast.dest =
  match cur_tok st with
  | Tok.LBRACE ->
      (* { true = dest, false = dest } *)
      advance st;
      let read_side expected =
        let w = eat_ident st in
        if not (String.equal w expected) then
          error st (Printf.sprintf "expected '%s' in branch destination" expected);
        eat st Tok.ASSIGN;
        parse_dest st
      in
      let t = read_side "true" in
      eat st Tok.COMMA;
      let f = read_side "false" in
      eat st Tok.RBRACE;
      Metal_ast.Dbranch (t, f)
  | Tok.IDENT name ->
      advance st;
      if accept st Tok.DOT then begin
        let statev = eat_ident st in
        Metal_ast.Dvar (name, statev)
      end
      else Metal_ast.Dglobal name
  | t -> error st (Printf.sprintf "expected destination, found %s" (Tok.to_string t))

let parse_action_block st : Metal_ast.action_stmt list =
  (* "{" already consumed; parse "name(args);"* until "}" *)
  let stmts = ref [] in
  while cur_tok st <> Tok.RBRACE do
    let loc = cur_loc st in
    let name = eat_ident st in
    eat st Tok.LPAREN;
    let args = ref [] in
    if cur_tok st <> Tok.RPAREN then begin
      let rec arg_loop () =
        (* each argument is a C expression: collect its tokens up to a
           top-level comma or the closing paren *)
        let depth = ref 0 in
        let toks = ref [] in
        let continue_ = ref true in
        while !continue_ do
          match cur_tok st with
          | Tok.LPAREN ->
              incr depth;
              toks := cur st :: !toks;
              advance st
          | Tok.RPAREN when !depth = 0 -> continue_ := false
          | Tok.RPAREN ->
              decr depth;
              toks := cur st :: !toks;
              advance st
          | Tok.COMMA when !depth = 0 -> continue_ := false
          | Tok.EOF -> error st "unterminated action argument"
          | _ ->
              toks := cur st :: !toks;
              advance st
        done;
        let eof = { Clex.tok = Tok.EOF; loc } in
        let e, _ = Cparse.expr_of_tokens (List.rev !toks @ [ eof ]) in
        args := e :: !args;
        if accept st Tok.COMMA then arg_loop ()
      in
      arg_loop ()
    end;
    eat st Tok.RPAREN;
    eat st Tok.SEMI;
    stmts := { Metal_ast.ac_name = name; ac_args = List.rev !args; ac_loc = loc } :: !stmts
  done;
  eat st Tok.RBRACE;
  List.rev !stmts

(* ------------------------------------------------------------------ *)
(* Rules and clauses                                                   *)
(* ------------------------------------------------------------------ *)

let parse_rule st : Metal_ast.rule =
  let loc = cur_loc st in
  let pattern = parse_pattern st in
  eat st Tok.FAT_ARROW;
  (* rhs: action-only "{...}" that contains statements, or dest
     (possibly a branch "{ true = ..., false = ... }") optionally followed
     by ", { actions }" *)
  let is_branch_brace () =
    (* both action blocks and branch destinations start with '{'; a branch
       destination starts with the word "true" *)
    cur_tok st = Tok.LBRACE
    && (match st.toks.(st.idx + 1).Clex.tok with
       | Tok.IDENT w -> String.equal w "true"
       | _ -> false)
    && st.toks.(st.idx + 2).Clex.tok = Tok.ASSIGN
  in
  let dest, actions =
    if cur_tok st = Tok.LBRACE && not (is_branch_brace ()) then begin
      advance st;
      (Metal_ast.Dnone, parse_action_block st)
    end
    else begin
      let d = parse_dest st in
      let acts =
        if accept st Tok.COMMA then begin
          eat st Tok.LBRACE;
          parse_action_block st
        end
        else []
      in
      (d, acts)
    end
  in
  { Metal_ast.r_pattern = pattern; r_dest = dest; r_actions = actions; r_loc = loc }

let parse_clause st : Metal_ast.clause =
  let first = eat_ident st in
  let source =
    if accept st Tok.DOT then Metal_ast.Svar (first, eat_ident st)
    else Metal_ast.Sglobal first
  in
  eat st Tok.COLON;
  let rules = ref [ parse_rule st ] in
  while accept st Tok.PIPE do
    rules := parse_rule st :: !rules
  done;
  eat st Tok.SEMI;
  { Metal_ast.c_source = source; c_rules = List.rev !rules }

let parse_sm st : Metal_ast.t =
  let loc = cur_loc st in
  if not (accept_word st "sm") then error st "expected 'sm'";
  let name = eat_ident st in
  eat st Tok.LBRACE;
  let decls = ref [] in
  let options = ref [] in
  let clauses = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match cur_tok st with
    | Tok.RBRACE ->
        advance st;
        continue_ := false
    | Tok.IDENT "state" when st.toks.(st.idx + 1).Clex.tok = Tok.IDENT "decl" ->
        advance st;
        advance st;
        decls := parse_decl st ~state:true :: !decls
    | Tok.IDENT "decl" ->
        advance st;
        decls := parse_decl st ~state:false :: !decls
    | Tok.IDENT "option" ->
        advance st;
        options := eat_ident st :: !options;
        eat st Tok.SEMI
    | Tok.EOF -> error st "unterminated sm definition"
    | _ -> clauses := parse_clause st :: !clauses
  done;
  {
    Metal_ast.sm_name = name;
    sm_decls = List.rev !decls;
    sm_clauses = List.rev !clauses;
    sm_options = List.rev !options;
    sm_loc = loc;
  }

let parse ~file src =
  let toks = Clex.tokenize ~mode:Clex.Metal_mode ~file src in
  let st = { toks = Array.of_list toks; idx = 0 } in
  let sms = ref [] in
  while cur_tok st <> Tok.EOF do
    sms := parse_sm st :: !sms
  done;
  List.rev !sms

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse ~file:path src
