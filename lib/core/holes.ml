type t =
  | Concrete of Ctyp.t
  | Any_expr
  | Any_scalar
  | Any_pointer
  | Any_arguments
  | Any_fn_call

let of_name = function
  | "any_expr" -> Some Any_expr
  | "any_scalar" -> Some Any_scalar
  | "any_pointer" -> Some Any_pointer
  | "any_arguments" -> Some Any_arguments
  | "any_fn_call" -> Some Any_fn_call
  | _ -> None

let name = function
  | Concrete t -> Ctyp.to_string t
  | Any_expr -> "any_expr"
  | Any_scalar -> "any_scalar"
  | Any_pointer -> "any_pointer"
  | Any_arguments -> "any_arguments"
  | Any_fn_call -> "any_fn_call"

let matches env t (e : Cast.expr) =
  match t with
  | Any_expr -> true
  | Any_scalar -> Ctyping.is_scalar_expr env e
  | Any_pointer -> Ctyping.is_pointer_expr env e
  | Any_fn_call -> ( match e.enode with Cast.Ecall _ -> true | _ -> false)
  | Any_arguments -> false
  | Concrete want -> (
      let got = Ctyping.type_of_expr env e in
      Ctyp.equal got want
      ||
      (* tolerate unknown inferred types: a concrete-typed hole should not
         refuse expressions the light typer cannot classify *)
      match got with Ctyp.Unknown -> true | _ -> false)

let pp ppf t = Format.pp_print_string ppf (name t)
