(** A fixed-size domain pool over shared work (OCaml 5 [Domain]s, stdlib
    only).

    The engine's unit of parallelism is one callgraph root (or, in pass 1,
    one input file): tasks are independent, so the primitives here are a
    plain atomic work queue ({!run}, {!run_results}) and a work-stealing
    scheduler over a caller-supplied priority order ({!run_sched}).
    Results come back in index order regardless of which domain ran which
    task, which is what makes the engine's merge step deterministic.

    All entry points degrade rather than crash when [Domain.spawn] itself
    fails (thread or fd exhaustion): the work still completes on the
    domains that did spawn — worst case the calling domain alone — and a
    single warning is emitted through {!Diag.warnf}. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], clamped to at least 1 — the
    default worker count for [-j 0]. *)

val chunks : jobs:int -> int -> (int * int) array
(** [chunks ~jobs n] partitions [0 .. n-1] into contiguous [(start, length)]
    ranges, about four per worker (never more than [n], never empty).
    Batching items into chunked tasks amortises per-task fixed costs that
    dominated one-task-per-item scheduling; contiguity keeps a chunk-order
    merge identical to an item-order merge. *)

val run_results :
  ?spawn:((unit -> unit) -> unit Domain.t) ->
  jobs:int ->
  int ->
  (int -> 'a) ->
  ('a, exn) result array
(** Fault-isolating [run]: each task's outcome is recorded individually
    as [Ok] or [Error] and every task runs — one crashing task never
    aborts the queue or discards another task's result. This is the
    worker-isolation primitive: the engine converts an [Error] chunk into
    [Degraded] roots and keeps going. Same inline guarantee for
    [jobs <= 1] / [n <= 1] as {!run}. [?spawn] substitutes for
    [Domain.spawn] in tests of spawn-failure degradation. *)

val run :
  ?spawn:((unit -> unit) -> unit Domain.t) ->
  jobs:int ->
  int ->
  (int -> 'a) ->
  'a array
(** [run ~jobs n f] evaluates [f 0 .. f (n-1)] on up to [jobs] domains
    (the calling domain included) and returns the results in index order.

    [jobs <= 1] or [n <= 1] runs everything inline in the calling domain —
    no domain is spawned, so the sequential path is byte-for-byte the old
    behavior. Tasks must not raise for flow control: the first exception
    raised by any task aborts the queue (no new tasks start), is captured,
    and is re-raised in the calling domain after all workers join. *)

(** {1 Work-stealing scheduler} *)

type sched_stats = {
  workers : int;  (** domains that ran tasks, the calling domain included *)
  stolen : int;  (** tasks a worker took from another worker's deque *)
  spawn_failures : int;  (** worker domains that failed to spawn *)
}

val run_sched :
  ?spawn:((unit -> unit) -> unit Domain.t) ->
  jobs:int ->
  ?order:int array ->
  int ->
  (worker:int -> int -> 'a) ->
  ('a, exn) result array * sched_stats
(** [run_sched ~jobs ~order n f] evaluates task indices [0 .. n-1] on up
    to [jobs] domains with per-task fault isolation (as {!run_results})
    and returns results in index order plus scheduling statistics.

    [order] is a permutation of [0 .. n-1] giving global task priority
    (default: index order). It is striped round-robin across per-worker
    deques, so every worker starts near the front of the order; an owner
    pops its own deque front-first, and a worker whose deque runs dry
    steals from the back of another's — the furthest-out work. The engine
    passes a bottom-up callgraph order here so that short, shared callees
    are analyzed (and their summaries published) before the tall callers
    that demand them.

    The scheduler never reorders results — byte-determinism of the merge
    is the caller's concern and holds as long as the merge reads the
    returned array in index order. [jobs <= 1] or [n <= 1] runs every
    task inline in the calling domain in [order] sequence, with [worker]
    = 0. [?spawn] substitutes for [Domain.spawn] in tests; spawn failure
    degrades to the domains already running (the seeded deques of missing
    workers are drained by stealing) and counts in [spawn_failures]. *)
