(** A fixed-size domain pool over a shared work queue (OCaml 5 [Domain]s,
    stdlib only).

    The engine's unit of parallelism is one callgraph root (or, in pass 1,
    one input file): tasks are independent, so the pool is a plain atomic
    work queue — each domain repeatedly claims the next unclaimed index and
    evaluates it. Results come back in index order regardless of which
    domain ran which task, which is what makes the engine's merge step
    deterministic. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()], clamped to at least 1 — the
    default worker count for [-j 0]. *)

val chunks : jobs:int -> int -> (int * int) array
(** [chunks ~jobs n] partitions [0 .. n-1] into contiguous [(start, length)]
    ranges, about four per worker (never more than [n], never empty).
    Batching items into chunked tasks amortises per-task fixed costs that
    dominated one-task-per-item scheduling; contiguity keeps a chunk-order
    merge identical to an item-order merge. *)

val run_results : jobs:int -> int -> (int -> 'a) -> ('a, exn) result array
(** Fault-isolating [run]: each task's outcome is recorded individually
    as [Ok] or [Error] and every task runs — one crashing task never
    aborts the queue or discards another task's result. This is the
    worker-isolation primitive: the engine converts an [Error] chunk into
    [Degraded] roots and keeps going. Same inline guarantee for
    [jobs <= 1] / [n <= 1] as {!run}. *)

val run : jobs:int -> int -> (int -> 'a) -> 'a array
(** [run ~jobs n f] evaluates [f 0 .. f (n-1)] on up to [jobs] domains
    (the calling domain included) and returns the results in index order.

    [jobs <= 1] or [n <= 1] runs everything inline in the calling domain —
    no domain is spawned, so the sequential path is byte-for-byte the old
    behavior. Tasks must not raise for flow control: the first exception
    raised by any task aborts the queue (no new tasks start), is captured,
    and is re-raised in the calling domain after all workers join. *)
