(* Per-root intern tables: dense integer ids for the strings the traversal
   hot path used to rebuild and rehash on every cache probe.

   Two id spaces share one table:

   - atoms: any string (a gstate, an instance value, an expression key from
     [Cast.key_of_expr], or a fully rendered tuple key) mapped to a dense
     int; [name] is an array read back to the string.
   - tuples: the triple (gstate atom, target-key atom, value atom) mapped
     to the atom id of its rendered tuple key. The rendering happens at
     most once per distinct triple; every later probe packs the three
     component ids into one immediate int (20 bits each) and hashes that,
     allocating nothing at all. Components too large to pack — about a
     million distinct strings in one root — fall back to a boxed-triple
     spill table with identical semantics.

   Because a tuple id IS the atom id of its rendered key, two tuples get
   the same id exactly when their rendered keys are equal — the identity
   the string-keyed representation used. Persisted source-tuple keys
   (re-recorded verbatim through [Summary.add_src_key]) intern into the
   same space, so replayed and recomputed state cannot disagree.

   Tables are per root context and never shared across domains. Each is
   paired 1:1 with the root's Exprid context: [eatom] caches the
   expression-id -> atom mapping on the interner itself (instances carry
   only the int id; the old scheme cached the atom on the instance and
   validated it against [stamp]). *)

type t = {
  mutable names : string array; (* atom id -> string *)
  mutable n : int;
  ids : (string, int) Hashtbl.t; (* string -> atom id *)
  packed : (int, int) Hashtbl.t;
      (* the triple packed into one int (20 bits per component) -> tuple
         id; the no-allocation fast path of [tuple] *)
  triples : (int * int * int, int) Hashtbl.t;
      (* spill table for components >= 2^20 - 1 (one root would need
         about a million distinct strings to reach it) *)
  mutable eatoms : int array;
      (* expression id (Exprid, base space) -> atom id, -1 = unmapped: the
         per-interner cache behind [eatom], replacing the stamp-validated
         per-instance cache (each interner is paired 1:1 with one Exprid
         context by the engine, so the mapping never goes stale) *)
  eatoms_over : (int, int) Hashtbl.t;
      (* same cache for sparse overflow expression ids *)
  strings : bool;
      (* [--no-state-ids]: resolve tuple identity by rendering the tuple
         key and hashing the string on every call — the string-keyed
         baseline the packed-triple cache replaces *)
  stamp : int;
}

(* Atomic: stamps must stay unique across engine worker domains. *)
let stamp_counter = Atomic.make 0

let create ?(strings = false) ?(n_exprs = 0) () =
  {
    names = Array.make 64 "";
    n = 0;
    ids = Hashtbl.create 256;
    packed = Hashtbl.create 256;
    triples = Hashtbl.create 8;
    eatoms = Array.make (max 1 n_exprs) (-1);
    eatoms_over = Hashtbl.create 16;
    strings;
    stamp = 1 + Atomic.fetch_and_add stamp_counter 1;
  }

let strings_mode t = t.strings
let stamp t = t.stamp
let n_atoms t = t.n
let n_tuples t = Hashtbl.length t.packed + Hashtbl.length t.triples

let atom t s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> id
  | None ->
      let id = t.n in
      if id = Array.length t.names then begin
        let bigger = Array.make (2 * id) "" in
        Array.blit t.names 0 bigger 0 id;
        t.names <- bigger
      end;
      t.names.(id) <- s;
      t.n <- id + 1;
      Hashtbl.replace t.ids s id;
      id

let name t id = t.names.(id)

let eatom t id render =
  if id >= 0 && id < Array.length t.eatoms then begin
    let a = t.eatoms.(id) in
    if a >= 0 then a
    else begin
      let a = atom t (render ()) in
      t.eatoms.(id) <- a;
      a
    end
  end
  else
    match Hashtbl.find_opt t.eatoms_over id with
    | Some a -> a
    | None ->
        let a = atom t (render ()) in
        Hashtbl.replace t.eatoms_over id a;
        a

let no_var = -1

let render t ~g ~vkey ~vval =
  if vkey = no_var then Printf.sprintf "(%s,<>)" (name t g)
  else Printf.sprintf "(%s,%s->%s)" (name t g) (name t vkey) (name t vval)

(* Components at or above this never pack (they would collide under the
   20-bit fields); [no_var] maps to field value 0 via the +1 bias. *)
let spill_lim = (1 lsl 20) - 1

let tuple t ~g ~vkey ~vval =
  if t.strings then
    (* string-keyed baseline: pay the render and the string hash on every
       probe, exactly as the rendered-key caches did *)
    atom t (render t ~g ~vkey ~vval)
  else if g < spill_lim && vkey < spill_lim && vval < spill_lim then begin
    (* 3 x 20 bits + the bias fit in 61 bits: always a positive OCaml
       int, and building the key allocates nothing (unlike the boxed
       triple the spill path hashes) *)
    let key = (((g lsl 20) lor (vkey + 1)) lsl 20) lor (vval + 1) in
    match Hashtbl.find t.packed key with
    | id -> id
    | exception Not_found ->
        let id = atom t (render t ~g ~vkey ~vval) in
        Hashtbl.replace t.packed key id;
        id
  end
  else
    match Hashtbl.find t.triples (g, vkey, vval) with
    | id -> id
    | exception Not_found ->
        let id = atom t (render t ~g ~vkey ~vval) in
        Hashtbl.replace t.triples (g, vkey, vval) id;
        id
