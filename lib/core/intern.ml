(* Per-root intern tables: dense integer ids for the strings the traversal
   hot path used to rebuild and rehash on every cache probe.

   Two id spaces share one table:

   - atoms: any string (a gstate, an instance value, an expression key from
     [Cast.key_of_expr], or a fully rendered tuple key) mapped to a dense
     int; [name] is an array read back to the string.
   - tuples: the triple (gstate atom, target-key atom, value atom) mapped
     to the atom id of its rendered tuple key. The rendering happens at
     most once per distinct triple; every later probe is an int-triple
     hash lookup that allocates nothing but the key triple.

   Because a tuple id IS the atom id of its rendered key, two tuples get
   the same id exactly when their rendered keys are equal — the identity
   the string-keyed representation used. Persisted source-tuple keys
   (re-recorded verbatim through [Summary.add_src_key]) intern into the
   same space, so replayed and recomputed state cannot disagree.

   Tables are per root context and never shared across domains; [stamp]
   distinguishes interners so ids cached inside long-lived values
   ([Sm.instance]) can be validated before reuse. *)

type t = {
  mutable names : string array; (* atom id -> string *)
  mutable n : int;
  ids : (string, int) Hashtbl.t; (* string -> atom id *)
  triples : (int * int * int, int) Hashtbl.t; (* (g, vkey, vval) -> tuple id *)
  stamp : int;
}

(* Atomic: stamps must stay unique across engine worker domains. *)
let stamp_counter = Atomic.make 0

let create () =
  {
    names = Array.make 64 "";
    n = 0;
    ids = Hashtbl.create 256;
    triples = Hashtbl.create 256;
    stamp = 1 + Atomic.fetch_and_add stamp_counter 1;
  }

let stamp t = t.stamp
let n_atoms t = t.n
let n_tuples t = Hashtbl.length t.triples

let atom t s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> id
  | None ->
      let id = t.n in
      if id = Array.length t.names then begin
        let bigger = Array.make (2 * id) "" in
        Array.blit t.names 0 bigger 0 id;
        t.names <- bigger
      end;
      t.names.(id) <- s;
      t.n <- id + 1;
      Hashtbl.replace t.ids s id;
      id

let name t id = t.names.(id)

let no_var = -1

let tuple t ~g ~vkey ~vval =
  match Hashtbl.find_opt t.triples (g, vkey, vval) with
  | Some id -> id
  | None ->
      let rendered =
        if vkey = no_var then Printf.sprintf "(%s,<>)" (name t g)
        else Printf.sprintf "(%s,%s->%s)" (name t g) (name t vkey) (name t vval)
      in
      let id = atom t rendered in
      Hashtbl.replace t.triples (g, vkey, vval) id;
      id
