(* Per-root intern tables: dense integer ids for the strings the traversal
   hot path used to rebuild and rehash on every cache probe.

   Two id spaces share one table:

   - atoms: any string (a gstate, an instance value, an expression key from
     [Cast.key_of_expr], or a fully rendered tuple key) mapped to a dense
     int; [name] is an array read back to the string.
   - tuples: the triple (gstate atom, target-key atom, value atom) mapped
     to the atom id of its rendered tuple key. The rendering happens at
     most once per distinct triple; every later probe packs the three
     component ids into one immediate int (20 bits each) and hashes that,
     allocating nothing at all. Components too large to pack — about a
     million distinct strings in one root — fall back to a boxed-triple
     spill table with identical semantics.

   Because a tuple id IS the atom id of its rendered key, two tuples get
   the same id exactly when their rendered keys are equal — the identity
   the string-keyed representation used. Persisted source-tuple keys
   (re-recorded verbatim through [Summary.add_src_key]) intern into the
   same space, so replayed and recomputed state cannot disagree.

   Tables are per root context and never shared across domains; [stamp]
   distinguishes interners so ids cached inside long-lived values
   ([Sm.instance]) can be validated before reuse. *)

type t = {
  mutable names : string array; (* atom id -> string *)
  mutable n : int;
  ids : (string, int) Hashtbl.t; (* string -> atom id *)
  packed : (int, int) Hashtbl.t;
      (* the triple packed into one int (20 bits per component) -> tuple
         id; the no-allocation fast path of [tuple] *)
  triples : (int * int * int, int) Hashtbl.t;
      (* spill table for components >= 2^20 - 1 (one root would need
         about a million distinct strings to reach it) *)
  stamp : int;
}

(* Atomic: stamps must stay unique across engine worker domains. *)
let stamp_counter = Atomic.make 0

let create () =
  {
    names = Array.make 64 "";
    n = 0;
    ids = Hashtbl.create 256;
    packed = Hashtbl.create 256;
    triples = Hashtbl.create 8;
    stamp = 1 + Atomic.fetch_and_add stamp_counter 1;
  }

let stamp t = t.stamp
let n_atoms t = t.n
let n_tuples t = Hashtbl.length t.packed + Hashtbl.length t.triples

let atom t s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> id
  | None ->
      let id = t.n in
      if id = Array.length t.names then begin
        let bigger = Array.make (2 * id) "" in
        Array.blit t.names 0 bigger 0 id;
        t.names <- bigger
      end;
      t.names.(id) <- s;
      t.n <- id + 1;
      Hashtbl.replace t.ids s id;
      id

let name t id = t.names.(id)

let no_var = -1

let render t ~g ~vkey ~vval =
  if vkey = no_var then Printf.sprintf "(%s,<>)" (name t g)
  else Printf.sprintf "(%s,%s->%s)" (name t g) (name t vkey) (name t vval)

(* Components at or above this never pack (they would collide under the
   20-bit fields); [no_var] maps to field value 0 via the +1 bias. *)
let spill_lim = (1 lsl 20) - 1

let tuple t ~g ~vkey ~vval =
  if g < spill_lim && vkey < spill_lim && vval < spill_lim then begin
    (* 3 x 20 bits + the bias fit in 61 bits: always a positive OCaml
       int, and building the key allocates nothing (unlike the boxed
       triple the spill path hashes) *)
    let key = (((g lsl 20) lor (vkey + 1)) lsl 20) lor (vval + 1) in
    match Hashtbl.find t.packed key with
    | id -> id
    | exception Not_found ->
        let id = atom t (render t ~g ~vkey ~vval) in
        Hashtbl.replace t.packed key id;
        id
  end
  else
    match Hashtbl.find t.triples (g, vkey, vval) with
    | id -> id
    | exception Not_found ->
        let id = atom t (render t ~g ~vkey ~vval) in
        Hashtbl.replace t.triples (g, vkey, vval) id;
        id
