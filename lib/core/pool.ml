let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

(* ~4 chunks per worker: enough slack for the queue to balance uneven task
   costs, while per-task fixed costs (context setup, result merge) are paid
   per chunk rather than per item. *)
let chunks ~jobs n =
  if n <= 0 then [||]
  else begin
    let k = min n (max 1 (jobs * 4)) in
    let base = n / k and rem = n mod k in
    Array.init k (fun c ->
        let start = (c * base) + min c rem in
        let len = base + if c < rem then 1 else 0 in
        (start, len))
  end

(* Fault-isolating variant: every task runs to completion and reports
   [Ok] or [Error] individually — one domain's crash never aborts the
   queue or poisons other tasks' results. [run] below keeps the original
   fail-fast contract for callers where any failure is fatal anyway. *)
let run_results ~jobs n f =
  let guarded i = match f i with v -> Ok v | exception e -> Error e in
  if n <= 0 then [||]
  else if jobs <= 1 || n = 1 then Array.init n guarded
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (guarded i);
        worker ()
      end
    in
    let spawned = List.init (min (jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.map
      (function
        | Some r -> r
        | None -> Error (Invalid_argument "Pool.run_results: task skipped"))
      results
  end

let run ~jobs n f =
  if n <= 0 then [||]
  else if jobs <= 1 || n = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure : exn option Atomic.t = Atomic.make None in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && Atomic.get failure = None then begin
        (match f i with
        | v -> results.(i) <- Some v
        | exception e -> ignore (Atomic.compare_and_set failure None (Some e)));
        worker ()
      end
    in
    (* the calling domain is worker number [jobs]; spawn the rest *)
    let spawned = List.init (min (jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map
      (function Some v -> v | None -> invalid_arg "Pool.run: task skipped")
      results
  end
