let recommended_jobs () = max 1 (Domain.recommended_domain_count ())

(* ~4 chunks per worker: enough slack for the queue to balance uneven task
   costs, while per-task fixed costs (context setup, result merge) are paid
   per chunk rather than per item. *)
let chunks ~jobs n =
  if n <= 0 then [||]
  else begin
    let k = min n (max 1 (jobs * 4)) in
    let base = n / k and rem = n mod k in
    Array.init k (fun c ->
        let start = (c * base) + min c rem in
        let len = base + if c < rem then 1 else 0 in
        (start, len))
  end

(* Spawn up to [k] worker domains, degrading instead of crashing when
   [Domain.spawn] itself raises (thread or fd exhaustion): the queue
   drains on whatever was spawned plus the calling domain. Stop at the
   first failure — if the system is out of threads, further attempts just
   burn time — and say so once on the diagnostics channel. *)
let spawn_guarded ~spawn k body =
  let rec go acc i =
    if i >= k then List.rev acc
    else
      match spawn body with
      | d -> go (d :: acc) (i + 1)
      | exception e ->
          Diag.warnf "Domain.spawn failed (%s); degrading to %d worker domain(s)"
            (Printexc.to_string e)
            (List.length acc + 1);
          List.rev acc
  in
  go [] 0

(* Fault-isolating variant: every task runs to completion and reports
   [Ok] or [Error] individually — one domain's crash never aborts the
   queue or poisons other tasks' results. [run] below keeps the original
   fail-fast contract for callers where any failure is fatal anyway. *)
let run_results ?(spawn = Domain.spawn) ~jobs n f =
  let guarded i = match f i with v -> Ok v | exception e -> Error e in
  if n <= 0 then [||]
  else if jobs <= 1 || n = 1 then Array.init n guarded
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (guarded i);
        worker ()
      end
    in
    let spawned = spawn_guarded ~spawn (min (jobs - 1) (n - 1)) worker in
    worker ();
    List.iter Domain.join spawned;
    Array.map
      (function
        | Some r -> r
        | None -> Error (Invalid_argument "Pool.run_results: task skipped"))
      results
  end

let run ?(spawn = Domain.spawn) ~jobs n f =
  if n <= 0 then [||]
  else if jobs <= 1 || n = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure : exn option Atomic.t = Atomic.make None in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && Atomic.get failure = None then begin
        (match f i with
        | v -> results.(i) <- Some v
        | exception e -> ignore (Atomic.compare_and_set failure None (Some e)));
        worker ()
      end
    in
    (* the calling domain is worker number [jobs]; spawn the rest *)
    let spawned = spawn_guarded ~spawn (min (jobs - 1) (n - 1)) worker in
    worker ();
    List.iter Domain.join spawned;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map
      (function Some v -> v | None -> invalid_arg "Pool.run: task skipped")
      results
  end

(* ------------------------------------------------------------------ *)
(* Work-stealing scheduler                                             *)
(* ------------------------------------------------------------------ *)

type sched_stats = { workers : int; stolen : int; spawn_failures : int }

(* One per worker. The owner pops from [head] (front: the earliest tasks
   of the priority order it was seeded with); thieves take from [tail]
   (back: the furthest-out work, minimising contention with the owner).
   A plain mutex per deque is enough — the critical section is two index
   updates, and each task claim is the cheap part of running an analysis
   root for milliseconds. *)
type deque = {
  lock : Mutex.t;
  tasks : int array;
  mutable head : int;
  mutable tail : int;
}

let deque_pop d =
  Mutex.lock d.lock;
  let r =
    if d.head < d.tail then begin
      let t = d.tasks.(d.head) in
      d.head <- d.head + 1;
      Some t
    end
    else None
  in
  Mutex.unlock d.lock;
  r

let deque_steal d =
  Mutex.lock d.lock;
  let r =
    if d.head < d.tail then begin
      d.tail <- d.tail - 1;
      Some d.tasks.(d.tail)
    end
    else None
  in
  Mutex.unlock d.lock;
  r

let run_sched ?(spawn = Domain.spawn) ~jobs ?order n f =
  let guarded ~worker i =
    match f ~worker i with v -> Ok v | exception e -> Error e
  in
  let order =
    match order with
    | Some o ->
        if Array.length o <> n then invalid_arg "Pool.run_sched: bad order";
        o
    | None -> Array.init n Fun.id
  in
  let inline_stats = { workers = 1; stolen = 0; spawn_failures = 0 } in
  if n <= 0 then ([||], inline_stats)
  else if jobs <= 1 || n = 1 then begin
    let results = Array.make n (Error Not_found) in
    Array.iter (fun i -> results.(i) <- guarded ~worker:0 i) order;
    (results, inline_stats)
  end
  else begin
    let nw = min jobs n in
    (* Stripe the priority order across the deques: task [order.(k)] seeds
       deque [k mod nw], so every worker starts at the front of the global
       order and the backs of all deques hold the latest (for the engine:
       tallest) tasks. *)
    let dqs =
      Array.init nw (fun w ->
          let mine = ref [] in
          Array.iteri (fun k t -> if k mod nw = w then mine := t :: !mine) order;
          let tasks = Array.of_list (List.rev !mine) in
          { lock = Mutex.create (); tasks; head = 0; tail = Array.length tasks })
    in
    let results = Array.make n None in
    let stolen = Array.make nw 0 in
    (* Tasks are static (running one never enqueues another), so a worker
       may exit as soon as every deque answers empty; each task index is
       claimed exactly once under its deque's lock, so each [results] slot
       is written by exactly one domain. *)
    let rec worker w =
      match deque_pop dqs.(w) with
      | Some i ->
          results.(i) <- Some (guarded ~worker:w i);
          worker w
      | None ->
          let rec try_steal k =
            if k >= nw then ()
            else begin
              let v = (w + k) mod nw in
              match deque_steal dqs.(v) with
              | Some i ->
                  stolen.(w) <- stolen.(w) + 1;
                  results.(i) <- Some (guarded ~worker:w i);
                  worker w
              | None -> try_steal (k + 1)
            end
          in
          try_steal 1
    in
    (* Workers 1..nw-1 are spawned; the calling domain is worker 0. A
       deque whose spawn failed still drains: every live worker steals
       from every deque once its own runs dry. *)
    let spawned = ref [] in
    let give_up = ref false in
    for w = 1 to nw - 1 do
      if not !give_up then
        match spawn (fun () -> worker w) with
        | d -> spawned := d :: !spawned
        | exception e ->
            Diag.warnf
              "Domain.spawn failed (%s); degrading to %d worker domain(s)"
              (Printexc.to_string e)
              (List.length !spawned + 1);
            give_up := true
    done;
    worker 0;
    List.iter Domain.join !spawned;
    let results =
      Array.map
        (function
          | Some r -> r
          | None -> Error (Invalid_argument "Pool.run_sched: task skipped"))
        results
    in
    ( results,
      {
        workers = List.length !spawned + 1;
        stolen = Array.fold_left ( + ) 0 stolen;
        spawn_failures = nw - 1 - List.length !spawned;
      } )
  end
