type pair = {
  needle : Cast.expr;  (* caller-scope tree *)
  pname : string;  (* formal parameter name *)
  via_address : bool;  (* actual was &needle: state maps through *formal *)
  byval_candidate : bool;  (* plain xa/xf rule *)
}

type mapping = { pairs : pair list; param_names : string list }

let rec expr_size (e : Cast.expr) =
  let children =
    match e.enode with
    | Cast.Eunary (_, e1)
    | Cast.Ecast (_, e1)
    | Cast.Esizeof_expr e1
    | Cast.Efield (e1, _)
    | Cast.Earrow (e1, _) ->
        [ e1 ]
    | Cast.Ebinary (_, l, r)
    | Cast.Eassign (_, l, r)
    | Cast.Eindex (l, r)
    | Cast.Ecomma (l, r) ->
        [ l; r ]
    | Cast.Econd (c, t, f) -> [ c; t; f ]
    | Cast.Ecall (f, args) -> f :: args
    | Cast.Einit_list es -> es
    | _ -> []
  in
  1 + List.fold_left (fun acc c -> acc + expr_size c) 0 children

let rec strip_casts (e : Cast.expr) =
  match e.enode with Cast.Ecast (_, e1) -> strip_casts e1 | _ -> e

(* A marker identifier that cannot clash with C identifiers. *)
let tmp_name pname = "$" ^ pname
let is_tmp name = String.length name > 0 && Char.equal name.[0] '$'

let untmp name = String.sub name 1 (String.length name - 1)

let make_mapping ~params ~args =
  let rec pair_up params args acc =
    match (params, args) with
    | [], _ | _, [] -> List.rev acc
    | (pname, _) :: params, arg :: args ->
        let arg = strip_casts arg in
        let p =
          match arg.enode with
          | Cast.Eunary (Cast.Addrof, inner) ->
              { needle = inner; pname; via_address = true; byval_candidate = false }
          | _ -> { needle = arg; pname; via_address = false; byval_candidate = true }
        in
        pair_up params args (p :: acc)
  in
  let pairs = pair_up params args [] in
  let param_names = List.map (fun p -> p.pname) pairs in
  (* more specific (larger) needles substitute first *)
  let pairs =
    List.stable_sort
      (fun a b -> Int.compare (expr_size b.needle) (expr_size a.needle))
      pairs
  in
  { pairs; param_names }

let repl_of ~tmp p =
  let name = if tmp then tmp_name p.pname else p.pname in
  let base = Cast.ident name in
  if p.via_address then Cast.deref base else base

(* Substitute every tmp marker identifier with its plain formal name. *)
let rec rename_tmps (e : Cast.expr) =
  match e.enode with
  | Cast.Eident x when is_tmp x -> Cast.ident ~loc:e.eloc (untmp x)
  | _ ->
      let r = rename_tmps in
      let renode enode = { e with eid = Cast.fresh_eid (); enode } in
      (match e.enode with
      | Cast.Eint _ | Cast.Efloat _ | Cast.Echar _ | Cast.Estr _ | Cast.Eident _
      | Cast.Esizeof_type _ ->
          e
      | Cast.Eunary (u, e1) -> renode (Cast.Eunary (u, r e1))
      | Cast.Ebinary (o, l, rr) -> renode (Cast.Ebinary (o, r l, r rr))
      | Cast.Eassign (o, l, rr) -> renode (Cast.Eassign (o, r l, r rr))
      | Cast.Ecall (f, args) -> renode (Cast.Ecall (r f, List.map r args))
      | Cast.Efield (e1, f) -> renode (Cast.Efield (r e1, f))
      | Cast.Earrow (e1, f) -> renode (Cast.Earrow (r e1, f))
      | Cast.Eindex (a, i) -> renode (Cast.Eindex (r a, r i))
      | Cast.Ecast (t, e1) -> renode (Cast.Ecast (t, r e1))
      | Cast.Econd (c, t, f) -> renode (Cast.Econd (r c, r t, r f))
      | Cast.Ecomma (l, rr) -> renode (Cast.Ecomma (r l, r rr))
      | Cast.Esizeof_expr e1 -> renode (Cast.Esizeof_expr (r e1))
      | Cast.Einit_list es -> renode (Cast.Einit_list (List.map r es)))

let refine_tmp m tree =
  List.fold_left
    (fun tree p -> Cast.subst_expr ~needle:p.needle ~replacement:(repl_of ~tmp:true p) tree)
    tree m.pairs

let refine_tree m tree = rename_tmps (refine_tmp m tree)

(* Restore works in two phases to avoid name capture when an actual and a
   formal share a name: first mark every formal identifier with a tmp
   marker, then substitute the (marked) formal trees with their actuals.
   Any marker left afterwards is a formal that cannot map back (a bare [xf]
   whose actual was [&xa]). *)
let restore_marked m tree =
  let marked =
    List.fold_left
      (fun tree pname ->
        Cast.subst_expr ~needle:(Cast.ident pname)
          ~replacement:(Cast.ident (tmp_name pname))
          tree)
      tree m.param_names
  in
  let pairs =
    List.stable_sort
      (fun a b ->
        Int.compare (expr_size (repl_of ~tmp:true b)) (expr_size (repl_of ~tmp:true a)))
      m.pairs
  in
  List.fold_left
    (fun tree p ->
      Cast.subst_expr ~needle:(repl_of ~tmp:true p) ~replacement:p.needle tree)
    marked pairs

let restore_tree m tree = rename_tmps (restore_marked m tree)

let is_byval_root m (tree : Cast.expr) =
  match tree.enode with
  | Cast.Eident x ->
      List.exists (fun p -> p.byval_candidate && String.equal p.pname x) m.pairs
  | _ -> false

type xfer = Mapped of Cast.expr | Global_pass | Inactivate | Save
type back = Back of Cast.expr | Back_global | Back_dropped

let fun_scope_names (f : Cast.fundef) =
  let rec locals acc (s : Cast.stmt) =
    match s.snode with
    | Cast.Sdecl ds -> List.fold_left (fun acc (d : Cast.decl) -> d.dname :: acc) acc ds
    | Cast.Sif (_, t, e) ->
        let acc = locals acc t in
        Option.fold ~none:acc ~some:(locals acc) e
    | Cast.Swhile (_, b) | Cast.Sdo (b, _) | Cast.Slabel (_, b) -> locals acc b
    | Cast.Sfor (init, _, _, b) ->
        let acc = Option.fold ~none:acc ~some:(locals acc) init in
        locals acc b
    | Cast.Sblock ss -> List.fold_left locals acc ss
    | Cast.Sswitch (_, cases) ->
        List.fold_left
          (fun acc (c : Cast.case) -> List.fold_left locals acc c.case_body)
          acc cases
    | _ -> acc
  in
  List.map fst f.fparams @ locals [] f.fbody

let scope_names = fun_scope_names

let classify_refine ~typing ~caller ?caller_scope ~callee_file m tree =
  let caller_names =
    match caller_scope with Some ns -> ns | None -> fun_scope_names caller
  in
  let refined_tmp = refine_tmp m tree in
  let idents = Cast.idents_of_expr refined_tmp in
  let applied = List.exists is_tmp idents in
  let leftover_local =
    List.exists (fun x -> (not (is_tmp x)) && List.mem x caller_names) idents
  in
  if applied then if leftover_local then Save else Mapped (rename_tmps refined_tmp)
  else if leftover_local then Save
  else begin
    let file_scope_other =
      List.exists
        (fun x ->
          match Ctyping.lookup_global_info typing x with
          | Some (file, true) -> not (String.equal file callee_file)
          | _ -> false)
        idents
    in
    if file_scope_other then Inactivate else Global_pass
  end

let classify_restore ~typing ~callee ?callee_scope m tree =
  ignore typing;
  let callee_locals =
    List.filter
      (fun n -> not (List.mem n m.param_names))
      (match callee_scope with Some ns -> ns | None -> fun_scope_names callee)
  in
  let idents = Cast.idents_of_expr tree in
  if List.exists (fun x -> List.mem x callee_locals) idents then Back_dropped
  else begin
    let substituted = restore_marked m tree in
    let idents' = Cast.idents_of_expr substituted in
    if List.exists is_tmp idents' then
      (* a leftover marker is a formal with no mapping back to the caller
         (e.g. a bare [xf] whose actual was [&xa]) *)
      Back_dropped
    else if List.exists (fun x -> List.mem x m.param_names) idents then
      Back substituted
    else Back_global
  end
