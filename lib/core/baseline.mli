(** The bottom-up exhaustive baseline the paper argues against (Section 6):

    "rather than analyzing each function starting from all possible states,
    we only analyze each function starting in the states that can reach
    that function along an interprocedurally valid path."

    A bottom-up summariser in the style of the finite-state RHS algorithm
    must prepare each function for {e every} possible entry state: every
    global-state value crossed with every assignment of variable-specific
    state values to the function's pointer-typed parameters. This module
    measures both sides:

    - {!exhaustive_entry_states}: the state count the bottom-up scheme
      would analyse (computed from the extension's state space);
    - {!run_exhaustive}: actually runs the engine once per such entry state
      (intraprocedurally), so wall-clock comparisons are possible;
    - {!topdown_entry_states}: the number of distinct entry states the
      top-down analysis actually fed each function (read back from the
      engine's entry-block caches). *)

val state_values : Sm.t -> string list
(** The variable-specific state values reachable in the extension (targets
    of [To_var] destinations and sources of variable clauses), excluding
    the sink. *)

val global_values : Sm.t -> string list

val exhaustive_entry_states : Supergraph.t -> Sm.t -> int
(** Σ over functions of |gstates| × Π over pointer params (|var states| + 1). *)

val topdown_entry_states : Supergraph.t -> Sm.t -> int
(** Distinct entry tuples observed per function by an actual top-down run. *)

val run_exhaustive : Supergraph.t -> Sm.t -> int
(** Run the engine once per exhaustive entry state of every function
    (interprocedural following disabled — the baseline consumes summaries
    instead). Returns the number of intraprocedural runs performed. *)
