let rec pp_pattern ppf (p : Pattern.t) =
  match p with
  | Pattern.Pexpr e -> Format.fprintf ppf "{ %a }" Cprint.pp_expr e
  | Pattern.Pand (a, b) -> Format.fprintf ppf "%a && %a" pp_pattern_atom a pp_pattern_atom b
  | Pattern.Por (a, b) -> Format.fprintf ppf "%a || %a" pp_pattern_atom a pp_pattern_atom b
  | Pattern.Pcallout e -> Format.fprintf ppf "${ %a }" Cprint.pp_expr e
  | Pattern.Pend_of_path -> Format.pp_print_string ppf "$end_of_path$"
  | Pattern.Pnever -> Format.pp_print_string ppf "${0}"
  | Pattern.Palways -> Format.pp_print_string ppf "${1}"

and pp_pattern_atom ppf p =
  match p with
  | Pattern.Pand _ | Pattern.Por _ -> Format.fprintf ppf "(%a)" pp_pattern p
  | _ -> pp_pattern ppf p

let rec pp_dest ppf (d : Metal_ast.dest) =
  match d with
  | Metal_ast.Dvar (v, s) -> Format.fprintf ppf "%s.%s" v s
  | Metal_ast.Dglobal s -> Format.pp_print_string ppf s
  | Metal_ast.Dbranch (t, f) ->
      Format.fprintf ppf "{ true = %a, false = %a }" pp_dest t pp_dest f
  | Metal_ast.Dnone -> ()

let pp_action ppf (a : Metal_ast.action_stmt) =
  Format.fprintf ppf "%s(%a);" a.ac_name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Cprint.pp_expr)
    a.ac_args

let pp_rule ppf (r : Metal_ast.rule) =
  Format.fprintf ppf "@[<hv 2>%a ==>" pp_pattern r.r_pattern;
  (match (r.r_dest, r.r_actions) with
  | Metal_ast.Dnone, actions ->
      Format.fprintf ppf "@ @[<hv 2>{ %a }@]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ") pp_action)
        actions
  | dest, [] -> Format.fprintf ppf "@ %a" pp_dest dest
  | dest, actions ->
      Format.fprintf ppf "@ %a,@ @[<hv 2>{ %a }@]" pp_dest dest
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ") pp_action)
        actions);
  Format.fprintf ppf "@]"

let pp ppf (m : Metal_ast.t) =
  Format.fprintf ppf "@[<v>sm %s {@;<0 2>@[<v>" m.sm_name;
  List.iter (fun o -> Format.fprintf ppf "option %s;@ " o) m.sm_options;
  List.iter
    (fun (d : Metal_ast.decl) ->
      Format.fprintf ppf "%sdecl %s %s;@ "
        (if d.d_state then "state " else "")
        (Holes.name d.d_hole)
        (String.concat ", " d.d_names))
    m.sm_decls;
  List.iteri
    (fun i (c : Metal_ast.clause) ->
      if i > 0 || m.sm_decls <> [] || m.sm_options <> [] then Format.fprintf ppf "@ ";
      (match c.c_source with
      | Metal_ast.Sglobal g -> Format.fprintf ppf "%s:" g
      | Metal_ast.Svar (v, s) -> Format.fprintf ppf "%s.%s:" v s);
      List.iteri
        (fun j r ->
          if j = 0 then Format.fprintf ppf "@;<1 2>%a" pp_rule r
          else Format.fprintf ppf "@ | %a" pp_rule r)
        c.c_rules;
      Format.fprintf ppf "@ ;")
    m.sm_clauses;
  Format.fprintf ppf "@]@ }@]"

let to_string m = Format.asprintf "%a" pp m
