(** Per-root intern tables: dense integer ids for state-tuple components.

    The traversal hot path ({!Engine}'s block-cache probes, edge dedup,
    and suffix-summary relaxation) used to render every state tuple to a
    string ([Printf.sprintf]) and hash it on each probe. This module maps
    the components — gstates, instance values, expression keys — to dense
    ints ({e atoms}) and full tuples to the atom id of their rendered key,
    so each distinct tuple is rendered at most once and every subsequent
    probe is an integer hash lookup.

    A tuple id equals the atom id of its rendered key, so id equality is
    exactly rendered-key equality — the identity the string-keyed
    representation used, which is what keeps reports, counters and
    serialised summaries byte-identical.

    One interner lives per root context ({!Engine}); it is never shared
    across domains. *)

type t

val create : ?strings:bool -> ?n_exprs:int -> unit -> t
(** [n_exprs] sizes the dense expression-id cache behind {!eatom} (pass
    the supergraph's [Exprid.n]; overflow ids hash into a side table).
    [strings] (default [false]) puts the interner in string-keyed
    baseline mode ([--no-state-ids]): {!tuple} renders the tuple key and
    hashes the string on every call instead of probing the packed-triple
    cache. Ids are identical in both modes — only their cost differs. *)

val strings_mode : t -> bool
(** Whether this interner was created with [~strings:true]. *)

val stamp : t -> int
(** Unique (process-wide) identity of this interner, for diagnostics and
    tests. *)

val atom : t -> string -> int
(** Intern a string, returning its dense id (stable for the life of the
    interner). *)

val name : t -> int -> string
(** The string behind an atom id (array read). *)

val eatom : t -> int -> (unit -> string) -> int
(** [eatom t id render] is the atom of the expression with hash-consed id
    [id], calling [render] (the key rendering) only on the first probe of
    that id under this interner. This replaced the per-instance
    stamp-validated cache: the mapping lives with the interner, so
    instances carry only their int id. *)

val no_var : int
(** Pseudo-atom for the [<>] placeholder component of a tuple. *)

val tuple : t -> g:int -> vkey:int -> vval:int -> int
(** Id of the state tuple [(g, vkey->vval)] — or [(g, <>)] when [vkey] is
    {!no_var}. Renders the tuple key (exactly as [Summary.tuple_key] does)
    on first sight only; later probes pack the component ids into one
    immediate int and allocate nothing (components beyond 2^20-1 spill to
    a boxed-triple table with identical semantics). *)

val n_atoms : t -> int
val n_tuples : t -> int
(** Table sizes, for [--stats]. *)
