(** Per-root intern tables: dense integer ids for state-tuple components.

    The traversal hot path ({!Engine}'s block-cache probes, edge dedup,
    and suffix-summary relaxation) used to render every state tuple to a
    string ([Printf.sprintf]) and hash it on each probe. This module maps
    the components — gstates, instance values, expression keys — to dense
    ints ({e atoms}) and full tuples to the atom id of their rendered key,
    so each distinct tuple is rendered at most once and every subsequent
    probe is an integer hash lookup.

    A tuple id equals the atom id of its rendered key, so id equality is
    exactly rendered-key equality — the identity the string-keyed
    representation used, which is what keeps reports, counters and
    serialised summaries byte-identical.

    One interner lives per root context ({!Engine}); it is never shared
    across domains. *)

type t

val create : unit -> t

val stamp : t -> int
(** Unique (process-wide) identity of this interner. Ids cached inside
    long-lived mutable values record the stamp they were minted under and
    are re-interned when it no longer matches. *)

val atom : t -> string -> int
(** Intern a string, returning its dense id (stable for the life of the
    interner). *)

val name : t -> int -> string
(** The string behind an atom id (array read). *)

val no_var : int
(** Pseudo-atom for the [<>] placeholder component of a tuple. *)

val tuple : t -> g:int -> vkey:int -> vval:int -> int
(** Id of the state tuple [(g, vkey->vval)] — or [(g, <>)] when [vkey] is
    {!no_var}. Renders the tuple key (exactly as [Summary.tuple_key] does)
    on first sight only; later probes pack the component ids into one
    immediate int and allocate nothing (components beyond 2^20-1 spill to
    a boxed-triple table with identical semantics). *)

val n_atoms : t -> int
val n_tuples : t -> int
(** Table sizes, for [--stats]. *)
