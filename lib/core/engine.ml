module Sset = Set.Make (String)
module Iset = Set.Make (Int)
module Smap = Map.Make (String)

let log_src = Logs.Src.create "mc.engine" ~doc:"xgcc analysis engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type options = {
  caching : bool;
  pruning : bool;
  interproc : bool;
  auto_kill : bool;
  synonyms : bool;
  max_call_depth : int;
  max_instances : int;
  dispatch : bool;
  flatten : bool;
  state_ids : bool;
      (* resolve instance identity through the supergraph's hash-cons table
         ([Exprid]); off ([--no-state-ids]), every lookup renders the key
         string and resolves it through the same id space — the A/B
         allocation baseline, observably identical by construction *)
  max_nodes_per_root : int;
  timeout_per_root : float;
}

let default_options =
  {
    caching = true;
    pruning = true;
    interproc = true;
    auto_kill = true;
    synonyms = true;
    max_call_depth = 40;
    max_instances = 64;
    dispatch = true;
    flatten = true;
    state_ids = true;
    max_nodes_per_root = 0;
    timeout_per_root = 0.;
  }

type stats = {
  mutable blocks_visited : int;
  mutable nodes_visited : int;
  mutable cache_hits : int;
  mutable paths_explored : int;
  mutable calls_followed : int;
  mutable summary_hits : int;
  mutable pruned_branches : int;
  mutable transitions_fired : int;
  mutable instances_created : int;
  mutable functions_traversed : int;
      (* distinct functions entered by the traversal, for coverage *)
  mutable cache_probes : int;
      (* block-cache and summary-cache membership tests (each an interned
         integer lookup); cache_hits / cache_probes is the hit rate *)
  mutable intern_atoms : int;
  mutable intern_tuples : int;
      (* final intern-table sizes, summed over root contexts; not persisted
         in the summary store (replayed roots contribute 0) *)
  mutable match_attempts : int;
      (* Pattern.match_event calls made by the transition loops *)
  mutable index_hits : int;
      (* nodes whose head-index candidate list was narrower than the full
         node-matching transition list *)
  mutable blocks_skipped : int;
      (* block visits where the skip set proved no transition could match
         any node, so apply_transitions never ran.
         Like the intern counters these three are process-local: not
         persisted in the summary store, replayed roots contribute 0. *)
  mutable shared_published : int;
      (* parallel scheduler: summary units computed once in a scratch
         context and published to the shared store *)
  mutable shared_replayed : int;
      (* publications replayed into a demanding root's context *)
  mutable shared_recomputed : int;
      (* duplicate publications dropped first-writer-wins — the "a shared
         unit was computed twice" tripwire, structurally 0 *)
  mutable sched_steals : int;  (* tasks taken from another worker's deque *)
  mutable sched_waits : int;
      (* acquires that blocked on a unit another worker was computing.
         These five exist only at [jobs > 1]; steals and waits are
         scheduling noise (timing-dependent), the other three are
         deterministic for a given program and extension. *)
}

let new_stats () =
  {
    blocks_visited = 0;
    nodes_visited = 0;
    cache_hits = 0;
    paths_explored = 0;
    calls_followed = 0;
    summary_hits = 0;
    pruned_branches = 0;
    transitions_fired = 0;
    instances_created = 0;
    functions_traversed = 0;
    cache_probes = 0;
    intern_atoms = 0;
    intern_tuples = 0;
    match_attempts = 0;
    index_hits = 0;
    blocks_skipped = 0;
    shared_published = 0;
    shared_replayed = 0;
    shared_recomputed = 0;
    sched_steals = 0;
    sched_waits = 0;
  }

type degraded = { d_root : string; d_reason : string }

type result = {
  reports : Report.t list;
  counters : (string * int * int) list;
  stats : stats;
  degraded : degraded list;
}

(* ------------------------------------------------------------------ *)
(* Contexts                                                            *)
(* ------------------------------------------------------------------ *)

type fsum = {
  f_it : Intern.t;  (* interner the lazily created tables below share *)
  bs : Summary.t option array;
  sfx : Summary.t option array;
      (* per-block summary / suffix-summary tables, created on first use:
         a given extension touches only the blocks its traversal reaches,
         so eagerly building three hash tables for every block of every
         function it ever calls into dominated cold-run allocation *)
  rets : (string, unit) Hashtbl.t;
      (* values with which a tracked, *returned* object left the function —
         the "follow simple value flow" hook: callers re-attach the state to
         the call expression so assignments pick it up as a synonym *)
}

let block_sum (f : fsum) (arr : Summary.t option array) i =
  match Array.unsafe_get arr i with
  | Some s -> s
  | None ->
      let s = Summary.create ~intern:f.f_it () in
      Array.unsafe_set arr i (Some s);
      s

let bsum f i = block_sum f f.bs i
let sfxsum f i = block_sum f f.sfx i

(* Materialise the dense shape the introspection API and the summary
   store expect; untouched blocks yield (empty) summaries exactly as the
   eager representation produced. *)
let densify it (arr : Summary.t option array) =
  Array.map
    (function Some s -> s | None -> Summary.create ~intern:it ())
    arr

(* A publication: everything one shared summary unit — a pure-entry callee
   analysed from a scratch context — produced. Immutable once built (the
   scratch context is discarded), so worker domains read it without
   synchronization beyond the store's publish/acquire handshake. *)
type pub = {
  p_fsums : (string * fsum) list;
      (* the unit's summary tables, sorted by function name; replay
         re-adds their content through the demander's interner *)
  p_reports : Report.t list;  (* emission order *)
  p_counters : (string * int * int) list;  (* sorted by rule *)
  p_annots : (int * string list) list;
      (* per node id, the tags the unit added beyond the extension-base
         table, oldest first; node ids are stable in-process *)
  p_traversed : string list;
  p_deps : string list;
      (* keys of shared units this unit itself demanded (transitively):
         a root that replays this publication has, observably, also
         traversed those *)
  p_stats : stats;
}

(* Shared by every worker context of one extension run. *)
type shared_ctx = {
  sh_tbl : pub Shared_sums.t;
  sh_heights : string -> int option;  (* Callgraph.acyclic_heights *)
  sh_base_annots : (int, string list) Hashtbl.t;
      (* the annotation table as of the start of this extension (earlier
         extensions' tags): read-only while the pool runs; scratch
         contexts seed from it and publications record deltas against it *)
}

(* Alias of the flat table's event type, so [events_of_block] can return
   the prebuilt global arrays directly in flat mode. *)
type ev = Flat.ev =
  | Ev_node of Cast.expr
  | Ev_fresh of string
  | Ev_scope_end of string list

(* One reversible table mutation inside a contained root. [rollback_root]
   replays the journal newest-first, so the oldest entry for a key is
   applied last — restoring exactly the pre-root value even when a key
   was mutated several times. Journaling is armed only between
   [snapshot_root] and the end of [run_root_contained]; scratch contexts
   and cross-context merges never journal, so their table writes are
   permanent as before. *)
type undo =
  | U_annot of int * string list option
      (* eid, pre-root tags ([None] = eid was absent) *)
  | U_mark of (string, unit) Hashtbl.t * string
      (* insertion of a fresh key into a unit table
         (traversed / demanded) *)
  | U_imark of (int, unit) Hashtbl.t * int
      (* insertion of a fresh interned key into an int-keyed unit table
         (report dedup) *)
  | U_counter of string * (int * int) option  (* rule, pre-root counts *)
  | U_adone of int  (* flat block id whose [annots_done] bit was set *)

type rctx = {
  sg : Supergraph.t;
  opts : options;
  ids : Exprid.ctx;
      (* expression-identity resolver over the supergraph's shared
         hash-cons table; per context (the overflow side tables are
         unsynchronised), never shared across domains *)
  intern : Intern.t;  (* shared by every summary this context creates *)
  store0 : Store.t;
      (* empty store seeding this context's {!Store} family: derived
         stores share one variable-interning table, so it must stay
         within this context's domain (like [ids]) *)
  collector : Report.collector;
  counters : (string, int * int) Hashtbl.t;
  annots : (int, string list) Hashtbl.t;
  annots_done : Bytes.t;
      (* per flat block id: terminator annotations ([mc_branch]/[mc_return])
         already laid down in this context — the flat events path applies
         them on first visit instead of at event-list build time *)
  fsums : (string, fsum) Hashtbl.t;
  events_cache : (string, ev array) Hashtbl.t;
  dedup : (int, unit) Hashtbl.t;
      (* emitted-report identity keys, interned through [intern] — probes
         and journal cells are int-sized; the merge-time dedup tables stay
         string-keyed because atoms are context-local *)
  traversed : (string, unit) Hashtbl.t;
  demanded : (string, unit) Hashtbl.t;
      (* keys of shared units this context replayed (transitively via
         [p_deps]); the merge folds a publication's counters and stats in
         exactly once iff some surviving root demanded it, which is the
         set of units a sequential run would have paid for *)
  mutable shared : shared_ctx option;  (* None outside the parallel scheduler *)
  st : stats;
  mutable cur_ext : Sm.t;
  mutable dsp : Dispatch.t;  (* compiled form of cur_ext, kept in lockstep *)
  (* per-root analysis budget (fault containment): [fuel] counts down over
     nodes visited + instances created, [deadline] is an absolute wall
     clock polled every [budget_poll] charges; both are re-armed by
     [reset_budget] at each root *)
  mutable fuel : int;
  mutable deadline : float;
  mutable poll : int;
  mutable degraded_roots : degraded list;  (* reverse order of abandonment *)
  mutable node_matched : bool;
      (* out-parameter of [apply_transitions]: whether the last node event
         matched (consulted by the caller to decide call following).
         Returning it alongside the walk would box a 3-word tuple on
         every node visited — the single hottest allocation site. *)
  mutable journal : undo list;
      (* reverse-chronological undo log of table mutations since the last
         [snapshot_root]; rollback replays it instead of restoring deep
         copies of every table (copying five hashtables plus a bitset per
         root per extension dominated the engine's allocation profile) *)
  mutable journaling : bool;  (* true only inside [run_root_contained] *)
}

type fctx = {
  cfg : Cfg.t;
  typing : Ctyping.env;
  fname : string;
  ffile : string;
  fbase : int;
      (* flat id of this function's block 0 ([Flat.fbase]); -1 for
         functions the supergraph's flat table does not know *)
  fsum : fsum;
      (* this function's summary tables, resolved once per frame instead
         of per block visit (fsums entries are never replaced while a
         frame is live: resets happen only at extension boundaries and
         root rollback) *)
  depth : int;
  stack : string list;
  locals : string list;  (* declared locals, not params: filtered from suffix summaries *)
}

type walk = { sm : Sm.sm_inst; store : Store.t; created : Iset.t }
(* [created]: target ids of the instances created since block entry — the
   add-edge discriminator of [record_block_edges] *)

(* ------------------------------------------------------------------ *)
(* Per-root analysis budgets (fault containment)                       *)
(* ------------------------------------------------------------------ *)

(* Raised from the traversal's charge points when the current root's
   budget runs out; [run_root_contained] converts it into a [degraded]
   note and abandons exactly that root. Never escapes the engine. *)
exception Budget_exceeded of string

let budget_poll = 256

let reset_budget rctx =
  rctx.fuel <-
    (if rctx.opts.max_nodes_per_root > 0 then rctx.opts.max_nodes_per_root
     else max_int);
  rctx.deadline <-
    (if rctx.opts.timeout_per_root > 0. then
       Unix.gettimeofday () +. rctx.opts.timeout_per_root
     else 0.);
  rctx.poll <- budget_poll

(* One unit of work: a node visit or an instance creation. The fuel test
   is a decrement and compare; the clock is only read every [budget_poll]
   charges so the deadline costs nothing measurable on the hot path. *)
let charge_budget rctx =
  rctx.fuel <- rctx.fuel - 1;
  if rctx.fuel <= 0 then
    raise
      (Budget_exceeded
         (Printf.sprintf "node budget of %d exhausted"
            rctx.opts.max_nodes_per_root));
  if rctx.deadline > 0. then begin
    rctx.poll <- rctx.poll - 1;
    if rctx.poll <= 0 then begin
      rctx.poll <- budget_poll;
      if Unix.gettimeofday () > rctx.deadline then
        raise
          (Budget_exceeded
             (Printf.sprintf "deadline of %gs exceeded"
                rctx.opts.timeout_per_root))
    end
  end

(* Charge a replayed shared unit to the demanding root's node budget: the
   same units a private traversal of the callee would have charged one by
   one ([p_stats] counts the scratch context's own visits, excluding
   nested shared units — those are charged separately via [p_deps]). The
   exhaustion message matches [charge_budget]'s exactly so a degraded
   root reads the same whether the work was private or shared. *)
let charge_pub rctx (p : pub) =
  if rctx.opts.max_nodes_per_root > 0 then begin
    rctx.fuel <-
      rctx.fuel - (p.p_stats.nodes_visited + p.p_stats.instances_created);
    if rctx.fuel <= 0 then
      raise
        (Budget_exceeded
           (Printf.sprintf "node budget of %d exhausted"
              rctx.opts.max_nodes_per_root))
  end

let get_fsum rctx (cfg : Cfg.t) =
  match Hashtbl.find_opt rctx.fsums cfg.fname with
  | Some s -> s
  | None ->
      let n = Cfg.n_blocks cfg in
      let s =
        {
          f_it = rctx.intern;
          bs = Array.make n None;
          sfx = Array.make n None;
          rets = Hashtbl.create 4;
        }
      in
      Hashtbl.replace rctx.fsums cfg.fname s;
      s

(* Content-level union of one function's summary tables: edges and src
   keys are re-added through [dst]'s interner, so tables from different
   contexts (worker write-back merge, shared-unit replay) combine no
   matter whose interner produced them. *)
let merge_fsum_into (dst : fsum) (src : fsum) =
  let union (d : Summary.t option array) (s : Summary.t option array) =
    Array.iteri
      (fun i sum ->
        match sum with
        | None -> ()
        | Some sum ->
            let di = block_sum dst d i in
            Summary.iter_edges (fun e -> ignore (Summary.add_edge di e)) sum;
            List.iter (Summary.add_src_key di) (Summary.srcs_list sum))
      s
  in
  union dst.bs src.bs;
  union dst.sfx src.sfx;
  Hashtbl.iter (fun k () -> Hashtbl.replace dst.rets k ()) src.rets

(* The same key [emit_report] guards the per-rctx dedup table with. *)
let report_key (r : Report.t) =
  Printf.sprintf "%s@%s" (Report.identity_key r) (Srcloc.to_string r.Report.loc)

let j_push rctx u = if rctx.journaling then rctx.journal <- u :: rctx.journal

let make_fctx rctx ~depth ~stack (cfg : Cfg.t) =
  let f = cfg.func in
  if not (Hashtbl.mem rctx.traversed f.fname) then begin
    j_push rctx (U_mark (rctx.traversed, f.fname));
    Hashtbl.replace rctx.traversed f.fname ()
  end;
  {
    cfg;
    typing = Ctyping.enter_function rctx.sg.Supergraph.typing f;
    fname = f.fname;
    ffile = f.ffile;
    fbase = Flat.fbase rctx.sg.Supergraph.flat f.fname;
    fsum = get_fsum rctx cfg;
    depth;
    stack;
    locals = List.map fst (Cfg.locals_of f);
  }

(* ------------------------------------------------------------------ *)
(* Events of a block (memoised: trees keep stable eids across visits)  *)
(* ------------------------------------------------------------------ *)

let annotate_node rctx (e : Cast.expr) tag =
  let prev = Hashtbl.find_opt rctx.annots e.eid in
  let tags = Option.value prev ~default:[] in
  if not (List.mem tag tags) then begin
    j_push rctx (U_annot (e.eid, prev));
    Hashtbl.replace rctx.annots e.eid (tag :: tags)
  end

(* Flat mode returns the supergraph's prebuilt global event arrays (no
   per-context list building at all) and lays the terminator annotations
   down on the block's first visit in this context, tracked by the
   [annots_done] bitset (idempotent anyway — [annotate_node] dedups — but
   the bitset keeps repeat visits allocation- and probe-free). Boxed mode
   rebuilds per-context event arrays exactly as before, annotating at
   build time; it exists as the A/B baseline ([--no-flat]) and its
   synthesised decl-initialiser trees get per-context node ids. *)
let events_of_block rctx fctx (block : Block.t) =
  let flat = rctx.sg.Supergraph.flat in
  let fb = fctx.fbase + block.bid in
  if rctx.opts.flatten && fctx.fbase >= 0 then begin
    if Bytes.get rctx.annots_done fb = '\000' then begin
      j_push rctx (U_adone fb);
      Bytes.set rctx.annots_done fb '\001';
      Array.iter
        (fun (e, tag) -> annotate_node rctx e tag)
        (Flat.annots flat fb)
    end;
    Flat.events flat fb
  end
  else
    let key = Printf.sprintf "%s#%d" fctx.fname block.bid in
    match Hashtbl.find_opt rctx.events_cache key with
    | Some evs -> evs
    | None ->
        let of_elem = function
          | Block.Tree e -> List.map (fun n -> Ev_node n) (Cast.exec_order e)
          | Block.Decl d -> (
              match d.Cast.dinit with
              | Some init ->
                  let synth =
                    Cast.mk_expr ~loc:init.eloc
                      (Cast.Eassign (None, Cast.ident ~loc:init.eloc d.Cast.dname, init))
                  in
                  Ev_fresh d.Cast.dname
                  :: List.map (fun n -> Ev_node n) (Cast.exec_order synth)
              | None -> [ Ev_fresh d.Cast.dname ])
          | Block.End_of_scope vars -> [ Ev_scope_end vars ]
        in
        let term_evs =
          match block.term with
          | Block.Branch (c, _, _) ->
              annotate_node rctx c "mc_branch";
              List.map (fun n -> Ev_node n) (Cast.exec_order c)
          | Block.Switch (e, _) ->
              annotate_node rctx e "mc_branch";
              List.map (fun n -> Ev_node n) (Cast.exec_order e)
          | Block.Return (Some e) ->
              annotate_node rctx e "mc_return";
              List.map (fun n -> Ev_node n) (Cast.exec_order e)
          | Block.Jump _ | Block.Return None | Block.Exit -> []
        in
        let evs = Array.of_list (List.concat_map of_elem block.elems @ term_evs) in
        Hashtbl.replace rctx.events_cache key evs;
        evs

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let bump_counter rctx which rule =
  let prev = Hashtbl.find_opt rctx.counters rule in
  let e, c = Option.value prev ~default:(0, 0) in
  let e, c = match which with `Example -> (e + 1, c) | `Counterexample -> (e, c + 1) in
  j_push rctx (U_counter (rule, prev));
  Hashtbl.replace rctx.counters rule (e, c)

let node_annotated rctx (e : Cast.expr) tag =
  match Hashtbl.find_opt rctx.annots e.eid with
  | Some tags -> List.mem tag tags
  | None -> false

let kill_path_tag = "mc_kill_path"

(* Severity annotations left on AST nodes by previously-run extensions
   (the SECURITY/ERROR/MINOR composition idiom of Section 9) are folded
   into reports emitted at those nodes. *)
let severity_tags = [ "SECURITY"; "ERROR"; "MINOR" ]

let emit_report rctx fctx ~node ~inst ?(annotations = []) ?rule ?var msg =
  let loc =
    match node with
    | Some (n : Cast.expr) -> n.eloc
    | None -> (
        match inst with
        | Some (i : Sm.instance) -> i.created_loc
        | None -> fctx.cfg.Cfg.func.Cast.floc)
  in
  let start_loc, conds, syn, cdepth, default_var =
    match inst with
    | Some (i : Sm.instance) ->
        ( i.created_loc,
          i.conditionals,
          i.syn_chain,
          abs (fctx.depth - i.created_depth),
          Some (Cprint.expr_to_string i.target) )
    | None -> (loc, 0, 0, 0, None)
  in
  let var =
    match var with Some (v : Cast.expr) -> Some (Cprint.expr_to_string v) | None -> default_var
  in
  let annotations =
    match node with
    | Some (n : Cast.expr) -> (
        match Hashtbl.find_opt rctx.annots n.eid with
        | Some tags ->
            annotations
            @ List.filter
                (fun t -> List.mem t severity_tags && not (List.mem t annotations))
                tags
        | None -> annotations)
    | None -> annotations
  in
  let r =
    Report.make ~checker:rctx.cur_ext.Sm.sm_name ~message:msg ~loc ~start_loc
      ~func:fctx.fname ~file:fctx.ffile ?var ?rule ~conditionals:conds ~syn_chain:syn
      ~call_depth:cdepth ~annotations ()
  in
  let key = Printf.sprintf "%s@%s" (Report.identity_key r) (Srcloc.to_string loc) in
  let atom = Intern.atom rctx.intern key in
  if not (Hashtbl.mem rctx.dedup atom) then begin
    j_push rctx (U_imark (rctx.dedup, atom));
    Hashtbl.replace rctx.dedup atom ();
    Log.info (fun m -> m "report: %a" Report.pp r);
    Report.emit rctx.collector r
  end

let make_actx rctx fctx walk ~node ~bindings ~inst : Sm.actx =
  {
    a_node = node;
    a_loc =
      (match node with
      | Some (n : Cast.expr) -> n.eloc
      | None -> Srcloc.dummy);
    a_bindings = bindings;
    a_inst = inst;
    a_sm = walk.sm;
    a_func = fctx.fname;
    a_depth = fctx.depth;
    a_typing = fctx.typing;
    a_report =
      (fun ?annotations ?rule ?var msg ->
        emit_report rctx fctx ~node ~inst ?annotations ?rule ?var msg);
    a_count = (fun which rule -> bump_counter rctx which rule);
    a_annotate = (fun e tag -> annotate_node rctx e tag);
    a_kill_path = (fun () -> walk.sm.killed_path <- true);
  }

(* ------------------------------------------------------------------ *)
(* Destinations                                                        *)
(* ------------------------------------------------------------------ *)

(* Mirror a state change onto every synonym of [inst]. *)
let synonyms_of (sm : Sm.sm_inst) (inst : Sm.instance) =
  if inst.syn_group = 0 then []
  else
    List.filter
      (fun (i : Sm.instance) -> i != inst && i.syn_group = inst.syn_group)
      sm.actives

let set_instance_value (sm : Sm.sm_inst) (inst : Sm.instance) v =
  inst.value <- v;
  List.iter (fun (i : Sm.instance) -> i.value <- v) (synonyms_of sm inst)

let stop_instance (sm : Sm.sm_inst) (inst : Sm.instance) =
  let syns = synonyms_of sm inst in
  Sm.remove_instance sm inst;
  List.iter (Sm.remove_instance sm) syns

let create_tracked rctx fctx walk ?(syn_chain = 0) ?(data = []) ~target ~value
    ~(node : Cast.expr) () =
  if List.length walk.sm.actives >= rctx.opts.max_instances then walk
  else begin
    let inst =
      Sm.new_instance ~data ~syn_chain ~ids:rctx.ids ~target ~value
        ~created_at:node.eid ~created_loc:node.eloc ~created_depth:fctx.depth ()
    in
    Sm.add_instance walk.sm inst;
    rctx.st.instances_created <- rctx.st.instances_created + 1;
    charge_budget rctx;
    { walk with created = Iset.add inst.target_id walk.created }
  end

let svar_binding (ext : Sm.t) (bindings : Pattern.bindings) =
  match ext.svar with
  | None -> None
  | Some v -> (
      match List.assoc_opt v bindings with
      | Some (Pattern.Bnode tree) -> Some tree
      | _ -> None)

(* Apply a destination for a transition triggered by [inst] (variable
   source) or creating/affecting the object bound to the state variable
   (global source). Returns the updated walk. *)
(* Apply a destination; returns the updated walk and the instance the
   transition affected (for creations, the new instance — so that actions,
   which run after the destination, can initialise its data values). *)
let apply_dest rctx fctx walk ~(node : Cast.expr option) ~bindings
    ~(inst : Sm.instance option) (dest : Sm.dest) =
  let sm = walk.sm in
  match dest with
  | Sm.Same -> (walk, inst)
  | Sm.To_global g ->
      sm.gstate <- g;
      (walk, inst)
  | Sm.To_stop -> (
      match inst with
      | Some i ->
          stop_instance sm i;
          (walk, inst)
      | None -> (
          (* global-source stop: stop the instance on the bound object *)
          match svar_binding sm.ext bindings with
          | Some tree -> (
              match Sm.find_instance sm ~id:(Exprid.id rctx.ids tree) with
              | Some i ->
                  stop_instance sm i;
                  (walk, Some i)
              | None -> (walk, None))
          | None -> (walk, None)))
  | Sm.To_var v -> (
      match inst with
      | Some i ->
          set_instance_value sm i v;
          (walk, inst)
      | None -> (
          match svar_binding sm.ext bindings with
          | Some tree -> (
              match node with
              | Some n ->
                  let walk =
                    create_tracked rctx fctx walk ~target:tree ~value:v ~node:n ()
                  in
                  (walk, Sm.find_instance walk.sm ~id:(Exprid.id rctx.ids tree))
              | None -> (walk, None))
          | None -> (walk, None)))
  | Sm.On_branch (t, f) ->
      (match node with
      | Some n ->
          sm.pendings <-
            {
              Sm.p_node = n;
              p_on_var = None;
              p_true = t;
              p_false = f;
              p_inst_id = Option.map (fun (i : Sm.instance) -> i.target_id) inst;
              p_bindings = bindings;
              p_action = None;
            }
            :: sm.pendings
      | None -> ());
      (walk, inst)

(* ------------------------------------------------------------------ *)
(* Transitions at a node                                               *)
(* ------------------------------------------------------------------ *)

let callout_ctx rctx fctx node =
  { Callout.typing = fctx.typing; node; annots = rctx.annots }

(* Apply the extension at a program point. Returns (any pattern matched,
   updated walk). Semantics:
   - variable-specific instances are iterated before the global instance,
     so e.g. a double-free fires before the start-state transition would
     silently re-track the pointer;
   - per instance (and for the global machine) the first matching
     transition in declaration order wins — this is what makes the
     targeted-suppression idiom of Section 8 work: a suppression rule
     listed before the error rule absorbs the idiomatic match;
   - transitions are judged against the state as it was when the point was
     reached (no same-node cascading).

   The loops run over the compiled candidate list for the node's head
   constructor (see {!Dispatch}), which preserves declaration order and is
   a superset of the transitions that can actually match, so
   first-match-wins picks the same winner as a scan of the full list.

   Callsite modelling (Section 6): "the analysis does not follow calls to
   kfree because the extension matches these calls". The prepass matches
   each candidate's pruned call model ([Dispatch.call_model]) instead of
   its full pattern, so only call-shaped disjuncts (and callouts) count —
   a bare hole that happens to match a pointer-valued call expression must
   not suppress following it, even when it sits in a disjunction with a
   call pattern. *)
let apply_transitions rctx fctx walk (node : Cast.expr) =
  let sm = walk.sm in
  let ext = sm.ext in
  let dsp = rctx.dsp in
  let trs = Dispatch.transitions dsp in
  let bucket = Dispatch.candidates dsp node in
  let cand = bucket.Dispatch.b_trs in
  if
    Dispatch.indexed dsp
    && Array.length cand < Array.length (Dispatch.all_node dsp)
  then rctx.st.index_hits <- rctx.st.index_hits + 1;
  (* Short-circuit prepass: decide from the bucket's precompiled facts
     alone whether any loop below could do anything, before allocating
     the callout context or the entry-state tables. No per-transition
     scan, no closure: three field reads plus (rarely) a short
     string-array walk for the global source states. *)
  let entry_gstate = sm.gstate in
  (* resolved by content: a runtime [set_global] string codes to the same
     int as the equal static state, or to -1 when outside the state table *)
  let entry_gc = Dispatch.state_code dsp entry_gstate in
  let any_model = bucket.Dispatch.b_any_model in
  let any_var = bucket.Dispatch.b_has_var && sm.actives <> [] in
  let any_glob =
    let gs = bucket.Dispatch.b_global_codes in
    let n = Array.length gs in
    let rec scan i = i < n && (gs.(i) = entry_gc || scan (i + 1)) in
    n > 0 && scan 0
  in
  if (not any_model) && (not any_var) && not any_glob then begin
    rctx.node_matched <- false;
    walk
  end
  else begin
    let cctx = callout_ctx rctx fctx (Some node) in
    let matched = ref false in
    let touched : (int, unit) Hashtbl.t option ref = ref None in
    let touch id =
      match !touched with
      | Some t -> Hashtbl.replace t id ()
      | None ->
          let t = Hashtbl.create 4 in
          Hashtbl.replace t id ();
          touched := Some t
    in
    let touched_mem id =
      match !touched with Some t -> Hashtbl.mem t id | None -> false
    in
    let walk = ref walk in
    if any_model then
      Array.iter
        (fun ti ->
          let c = trs.(ti) in
          if not !matched then
            match c.Dispatch.c_call_model with
            | None -> ()
            | Some model -> (
                rctx.st.match_attempts <- rctx.st.match_attempts + 1;
                match
                  Pattern.match_event ~ctx:cctx ~holes:c.Dispatch.c_holes model
                    (Pattern.At_node node)
                with
                | Some _ -> matched := true
                | None -> ()))
        cand;
    (* variable-specific instances first; first matching transition wins *)
    if any_var then begin
      let entry_values : (int, string) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (i : Sm.instance) ->
          Hashtbl.replace entry_values i.target_id i.value)
        sm.actives;
      let value_at_entry (i : Sm.instance) =
        Option.value (Hashtbl.find_opt entry_values i.target_id) ~default:i.value
      in
      List.iter
        (fun (i : Sm.instance) ->
          if i.created_at <> node.eid && not i.inactive then begin
            let v0 = value_at_entry i in
            if String.equal i.value v0 then begin
              let init =
                match ext.svar with
                | Some sv -> [ (sv, Pattern.Bnode i.target) ]
                | None -> []
              in
              let fired = ref false in
              Array.iter
                (fun ti ->
                  let c = trs.(ti) in
                  if not !fired then
                    match c.Dispatch.c_src_var with
                    | Some v when String.equal v v0 -> (
                        let tr = c.Dispatch.c_tr in
                        rctx.st.match_attempts <- rctx.st.match_attempts + 1;
                        match
                          Pattern.match_event ~init ~ctx:cctx
                            ~holes:c.Dispatch.c_holes tr.Sm.tr_pattern
                            (Pattern.At_node node)
                        with
                        | None -> ()
                        | Some bindings ->
                            fired := true;
                            matched := true;
                            rctx.st.transitions_fired <-
                              rctx.st.transitions_fired + 1;
                            touch i.target_id;
                            let walk', affected =
                              apply_dest rctx fctx !walk ~node:(Some node)
                                ~bindings ~inst:(Some i) tr.Sm.tr_dest
                            in
                            walk := walk';
                            (match tr.Sm.tr_action with
                            | Some act ->
                                act
                                  (make_actx rctx fctx !walk ~node:(Some node)
                                     ~bindings ~inst:affected)
                            | None -> ()))
                    | Some _ | None -> ())
                cand
            end
          end)
        sm.actives
    end;
    (* then the global machine; first matching transition wins *)
    if any_glob then begin
      let gfired = ref false in
      Array.iter
        (fun ti ->
          let c = trs.(ti) in
          match c.Dispatch.c_src_global with
          | None -> ()
          | Some _ ->
              if
                (not !gfired)
                && c.Dispatch.c_src_global_code = entry_gc
                && String.equal sm.gstate entry_gstate
              then begin
                let tr = c.Dispatch.c_tr in
                rctx.st.match_attempts <- rctx.st.match_attempts + 1;
                match
                  Pattern.match_event ~ctx:cctx ~holes:c.Dispatch.c_holes
                    tr.Sm.tr_pattern (Pattern.At_node node)
                with
                | None -> ()
                | Some bindings ->
                    matched := true;
                    (* suppress re-creation when the bound object was already
                       transitioned at this very node (e.g. a double free) *)
                    let suppressed =
                      match svar_binding ext bindings with
                      | Some tree -> touched_mem (Exprid.id rctx.ids tree)
                      | None -> false
                    in
                    if not suppressed then begin
                      gfired := true;
                      rctx.st.transitions_fired <- rctx.st.transitions_fired + 1;
                      let walk', affected =
                        apply_dest rctx fctx !walk ~node:(Some node) ~bindings
                          ~inst:None tr.Sm.tr_dest
                      in
                      walk := walk';
                      match tr.Sm.tr_action with
                      | Some act ->
                          act
                            (make_actx rctx fctx !walk ~node:(Some node)
                               ~bindings ~inst:affected)
                      | None -> ()
                    end
              end)
        cand
    end;
    rctx.node_matched <- !matched;
    !walk
  end

(* End-of-path events: fire [$end_of_path$] transitions for the given
   instances (those permanently leaving scope) and, when [global] is set,
   also global-source end-of-path transitions (program termination).
   First-match-wins per instance, matching the node semantics. *)
let fire_end_of_path rctx fctx walk ~(instances : Sm.instance list) ~global =
  let sm = walk.sm in
  let ext = sm.ext in
  let dsp = rctx.dsp in
  let trs = Dispatch.transitions dsp in
  let eop_var = Dispatch.eop_var dsp in
  let eop_global = Dispatch.eop_global dsp in
  if
    (instances = [] || Array.length eop_var = 0)
    && ((not global) || Array.length eop_global = 0)
  then walk
  else begin
    let cctx = callout_ctx rctx fctx None in
    let walk = ref walk in
    if Array.length eop_var > 0 then
      List.iter
        (fun (i : Sm.instance) ->
          let fired = ref false in
          Array.iter
            (fun ti ->
              let c = trs.(ti) in
              if (not !fired) && List.memq i sm.actives then
                match c.Dispatch.c_src_var with
                | Some v when String.equal i.value v && not i.inactive -> (
                    let tr = c.Dispatch.c_tr in
                    rctx.st.match_attempts <- rctx.st.match_attempts + 1;
                    match
                      Pattern.match_event ~ctx:cctx ~holes:c.Dispatch.c_holes
                        tr.Sm.tr_pattern Pattern.At_end_of_path
                    with
                    | None -> ()
                    | Some bindings ->
                        fired := true;
                        rctx.st.transitions_fired <- rctx.st.transitions_fired + 1;
                        let bindings =
                          match ext.svar with
                          | Some sv -> (sv, Pattern.Bnode i.target) :: bindings
                          | None -> bindings
                        in
                        (* the action runs before the destination so it can
                           still read the dying instance's state *)
                        (match tr.Sm.tr_action with
                        | Some act ->
                            act
                              (make_actx rctx fctx !walk ~node:None ~bindings
                                 ~inst:(Some i))
                        | None -> ());
                        let walk', _ =
                          apply_dest rctx fctx !walk ~node:None ~bindings
                            ~inst:(Some i) tr.Sm.tr_dest
                        in
                        walk := walk')
                | Some _ | None -> ())
            eop_var)
        instances;
    if global && Array.length eop_global > 0 then begin
      let gfired = ref false in
      let gc = Dispatch.state_code dsp sm.gstate in
      Array.iter
        (fun ti ->
          let c = trs.(ti) in
          if not !gfired then
            match c.Dispatch.c_src_global with
            | Some _ when c.Dispatch.c_src_global_code = gc -> (
                let tr = c.Dispatch.c_tr in
                rctx.st.match_attempts <- rctx.st.match_attempts + 1;
                match
                  Pattern.match_event ~ctx:cctx ~holes:c.Dispatch.c_holes
                    tr.Sm.tr_pattern Pattern.At_end_of_path
                with
                | None -> ()
                | Some bindings ->
                    gfired := true;
                    rctx.st.transitions_fired <- rctx.st.transitions_fired + 1;
                    (match tr.Sm.tr_action with
                    | Some act ->
                        act
                          (make_actx rctx fctx !walk ~node:None ~bindings
                             ~inst:None)
                    | None -> ());
                    let walk', _ =
                      apply_dest rctx fctx !walk ~node:None ~bindings ~inst:None
                        tr.Sm.tr_dest
                    in
                    walk := walk')
            | Some _ | None -> ())
        eop_global
    end;
    !walk
  end

(* ------------------------------------------------------------------ *)
(* Transparent write handling: synonyms, kills, value tracking         *)
(* ------------------------------------------------------------------ *)

let rec contains_eid (e : Cast.expr) eid =
  e.eid = eid
  ||
  let children =
    match e.enode with
    | Cast.Eunary (_, e1)
    | Cast.Ecast (_, e1)
    | Cast.Esizeof_expr e1
    | Cast.Efield (e1, _)
    | Cast.Earrow (e1, _) ->
        [ e1 ]
    | Cast.Ebinary (_, l, r)
    | Cast.Eassign (_, l, r)
    | Cast.Eindex (l, r)
    | Cast.Ecomma (l, r) ->
        [ l; r ]
    | Cast.Econd (c, t, f) -> [ c; t; f ]
    | Cast.Ecall (f, args) -> f :: args
    | Cast.Einit_list es -> es
    | _ -> []
  in
  List.exists (fun c -> contains_eid c eid) children

let rec strip_casts (e : Cast.expr) =
  match e.enode with Cast.Ecast (_, e1) -> strip_casts e1 | _ -> e

(* Kill-on-redefinition: [x] was just (re)defined at [node]; any tracked
   object that uses [x] is transitioned to stop — "the single most important
   technique for suppressing false positives". *)
let kill_mentions rctx walk ~(at : int) x =
  ignore rctx;
  let sm = walk.sm in
  let victims =
    List.filter
      (fun (i : Sm.instance) ->
        i.created_at <> at && List.mem x (Cast.idents_of_expr i.target))
      sm.actives
  in
  List.iter (fun i -> Sm.remove_instance sm i) victims

(* Writing through an lvalue path ([*p = e], [x.f = e], [a[i] = e]) defines
   the named location, not its base variable: only tracked objects that
   contain the written lvalue are invalidated. *)
let kill_containing rctx walk ~(at : int) (lv : Cast.expr) =
  ignore rctx;
  let sm = walk.sm in
  let victims =
    List.filter
      (fun (i : Sm.instance) ->
        i.created_at <> at && Cast.contains_expr ~needle:lv i.target)
      sm.actives
  in
  List.iter (fun i -> Sm.remove_instance sm i) victims

let handle_writes rctx fctx walk (node : Cast.expr) =
  let sm = walk.sm in
  let opts = rctx.opts in
  match node.enode with
  | Cast.Eassign (op, l, r) ->
      (* a pending path-specific transition whose call result is being
         stored: remember the destination variable *)
      List.iter
        (fun (p : Sm.pending) ->
          if p.p_on_var = None && contains_eid r p.p_node.Cast.eid then
            p.p_on_var <-
              (match Cast.base_lvalue l with
              | Some { enode = Cast.Eident x; _ } -> Some x
              | _ -> None))
        sm.pendings;
      (* synonyms: q = p gives q a copy of p's state *)
      let walk =
        if op = None && opts.synonyms && sm.ext.track_synonyms then begin
          (* the value of [a = b = e] is [b]'s value: follow chained
             assignments to the innermost lvalue *)
          let rec value_source (e : Cast.expr) =
            match (strip_casts e).enode with
            | Cast.Eassign (None, l2, _) -> value_source l2
            | _ -> strip_casts e
          in
          let rsrc = value_source r in
          match Sm.find_instance sm ~id:(Exprid.id rctx.ids rsrc) with
          | Some src
            when src.created_at <> node.eid
                 && Option.is_some (Cast.base_lvalue l)
                 && not (Cast.equal_expr l rsrc) ->
              let group =
                if src.syn_group = 0 then begin
                  let g = Sm.fresh_syn_group () in
                  src.syn_group <- g;
                  g
                end
                else src.syn_group
              in
              let walk =
                create_tracked rctx fctx walk ~syn_chain:(src.syn_chain + 1)
                  ~data:src.data ~target:l ~value:src.value ~node ()
              in
              (match Sm.find_instance walk.sm ~id:(Exprid.id rctx.ids l) with
              | Some i when i.created_at = node.eid -> i.syn_group <- group
              | _ -> ());
              walk
          | _ -> walk
        end
        else walk
      in
      (* kill *)
      if opts.auto_kill && sm.ext.auto_kill then begin
        match l.enode with
        | Cast.Eident x -> kill_mentions rctx walk ~at:node.eid x
        | _ -> kill_containing rctx walk ~at:node.eid l
      end;
      (* value tracking *)
      let store =
        match l.enode with
        | Cast.Eident x -> (
            match op with
            | None -> Store.assign walk.store x r
            | Some o ->
                Store.assign walk.store x (Cast.mk_expr (Cast.Ebinary (o, l, r))))
        | _ -> walk.store
      in
      { walk with store }
  | Cast.Eunary (((Cast.Preinc | Cast.Predec | Cast.Postinc | Cast.Postdec) as u), l)
    -> (
      (if opts.auto_kill && sm.ext.auto_kill then
         match l.enode with
         | Cast.Eident x -> kill_mentions rctx walk ~at:node.eid x
         | _ -> kill_containing rctx walk ~at:node.eid l);
      match l.enode with
      | Cast.Eident x ->
          let op =
            match u with
            | Cast.Preinc | Cast.Postinc -> Cast.Add
            | _ -> Cast.Sub
          in
          let store =
            Store.assign walk.store x
              (Cast.mk_expr (Cast.Ebinary (op, l, Cast.intlit 1L)))
          in
          { walk with store }
      | _ -> walk)
  | Cast.Ecall ({ enode = Cast.Eident f; _ }, args)
    when Supergraph.cfg_of rctx.sg f = None ->
      (* unknown function: its callees may write through pointer args *)
      let store =
        List.fold_left
          (fun store (a : Cast.expr) ->
            match (strip_casts a).enode with
            | Cast.Eunary (Cast.Addrof, { enode = Cast.Eident x; _ }) ->
                Store.assign_unknown store x
            | _ -> store)
          walk.store args
      in
      { walk with store }
  | _ -> walk

(* ------------------------------------------------------------------ *)
(* Block edge recording                                                *)
(* ------------------------------------------------------------------ *)

(* The block-entry snapshot is an array of (instance key atom, rendered
   target key, entry tuple id, entry tuple), deduplicated so each atom
   appears once (last active wins — exactly what the [Smap.add] fold this
   replaces did). Probes are a linear scan by int atom over a handful of
   entries; the dominant no-instance case is a zero-length array and
   costs nothing. The entry tuple (and its id) must be captured at block
   entry: [instance.value] is mutated in place as transitions fire, so it
   cannot be reconstructed from the instance afterwards. *)
type snapshot_entry = {
  se_atom : int;  (* instance key atom = the vkey atom of its tuples *)
  se_key : string;
  se_id : int;  (* entry tuple id, for probe-first edge recording *)
  se_tup : Summary.tuple;
}

let snapshot_find (snapshot : snapshot_entry array) atom =
  let n = Array.length snapshot in
  let rec go i =
    if i >= n then None
    else
      let se = Array.unsafe_get snapshot i in
      if se.se_atom = atom then Some se else go (i + 1)
  in
  go 0

(* Probe-first: src/dst tuple ids are computed from component atoms and
   checked against the edge table before any tuple or edge record is
   built — on the hit path (the overwhelming majority of block visits
   re-walk already-recorded state) this allocates nothing in ids mode.
   The probes are exactly the ids [Summary.add_edge] dedups by, so the
   recorded edge set and its insertion order are unchanged. *)
let record_block_edges ~ids ~intern (bs : Summary.t) ~depth_base ~entry_g
    ~(snapshot : snapshot_entry array) walk =
  let sm = walk.sm in
  let exit_g = sm.gstate in
  let entry_ga = Summary.key_atom bs entry_g in
  let exit_ga = Summary.key_atom bs exit_g in
  let gsrc =
    Summary.tuple_id_atoms bs ~g:entry_ga ~vkey:Intern.no_var ~vval:Intern.no_var
  in
  let gdst =
    Summary.tuple_id_atoms bs ~g:exit_ga ~vkey:Intern.no_var ~vval:Intern.no_var
  in
  if not (Summary.mem_edge_ids bs ~src:gsrc ~dst:gdst Summary.Transition) then
    ignore
      (Summary.add_edge bs
         {
           Summary.e_src = Summary.global_tuple entry_g;
           e_dst = Summary.global_tuple exit_g;
           e_kind = Summary.Transition;
         });
  let unknown_a = Summary.key_atom bs Summary.unknown_value in
  let live = Hashtbl.create 8 in
  List.iter
    (fun (i : Sm.instance) ->
      if not i.inactive then begin
        let atom = Summary.instance_key_atom ids intern i in
        Hashtbl.replace live atom ();
        let cur_id =
          Summary.tuple_id_atoms bs ~g:exit_ga ~vkey:atom
            ~vval:(Summary.key_atom bs i.value)
        in
        let add_unknown () =
          if
            not
              (Summary.mem_edge_ids bs
                 ~src:
                   (Summary.tuple_id_atoms bs ~g:entry_ga ~vkey:atom
                      ~vval:unknown_a)
                 ~dst:cur_id Summary.Add)
          then
            ignore
              (Summary.add_edge bs
                 {
                   Summary.e_src =
                     Summary.unknown_tuple_of_instance ~ids ~gstate:entry_g i;
                   e_dst = Summary.tuple_of_instance ~ids ~gstate:exit_g ~depth_base i;
                   e_kind = Summary.Add;
                 })
        in
        if Iset.mem i.target_id walk.created then add_unknown ()
        else
          match snapshot_find snapshot atom with
          | Some se ->
              if
                not
                  (Summary.mem_edge_ids bs ~src:se.se_id ~dst:cur_id
                     Summary.Transition)
              then
                ignore
                  (Summary.add_edge bs
                     {
                       Summary.e_src = se.se_tup;
                       e_dst =
                         Summary.tuple_of_instance ~ids ~gstate:exit_g ~depth_base i;
                       e_kind = Summary.Transition;
                     })
          | None -> add_unknown ()
      end)
    sm.actives;
  (* Entry tuples whose instance died: transition to stop. Edge insertion
     order is observable (it flows through [Summary.order] into relax and
     summary application), so iterate in the lexicographic target-key
     order the [Smap.iter] this replaces used — the sort runs only on the
     rare blocks entered with live instances. *)
  if Array.length snapshot > 0 then begin
    let stop_a = Summary.key_atom bs Sm.stop_value in
    let by_key = Array.copy snapshot in
    Array.sort (fun a b -> String.compare a.se_key b.se_key) by_key;
    Array.iter
      (fun se ->
        if not (Hashtbl.mem live se.se_atom) then
          match se.se_tup.Summary.t_v with
          | Some v ->
              let dst_id =
                Summary.tuple_id_atoms bs ~g:exit_ga ~vkey:se.se_atom ~vval:stop_a
              in
              if
                not
                  (Summary.mem_edge_ids bs ~src:se.se_id ~dst:dst_id
                     Summary.Transition)
              then
                ignore
                  (Summary.add_edge bs
                     {
                       Summary.e_src = se.se_tup;
                       e_dst =
                         {
                           Summary.t_g = exit_g;
                           t_v = Some { v with Summary.v_value = Sm.stop_value };
                         };
                       e_kind = Summary.Transition;
                     })
          | None -> ())
      by_key
  end

(* ------------------------------------------------------------------ *)
(* Relax: suffix-summary computation (Figure 6)                        *)
(* ------------------------------------------------------------------ *)

(* Suffix summaries never mention function locals ("the analysis would never
   use these edges") nor edges ending in stop. *)
let suffix_eligible fctx (e : Summary.edge) =
  (not (Summary.ends_in_stop e))
  &&
  let local_tv (tv : Summary.tvar option) =
    match tv with
    | None -> false
    | Some v ->
        List.exists
          (fun x -> List.mem x fctx.locals)
          (Cast.idents_of_expr v.Summary.v_tree)
  in
  (not (local_tv e.e_src.t_v)) && not (local_tv e.e_dst.t_v)

let propagate fctx (prev_bs : Summary.t) (prev_sfx : Summary.t) (cur_sfx : Summary.t) =
  let changed = ref false in
  Summary.iter_edges
    (fun (e : Summary.edge) ->
      if suffix_eligible fctx e then
        match e.e_kind with
        | Summary.Transition ->
            Summary.iter_by_dst prev_bs e.e_src
              (fun (pe : Summary.edge) ->
                let newe =
                  { Summary.e_src = pe.e_src; e_dst = e.e_dst; e_kind = pe.e_kind }
                in
                if suffix_eligible fctx newe && Summary.add_edge prev_sfx newe then
                  changed := true)
        | Summary.Add ->
            Summary.iter_edges
              (fun (pe : Summary.edge) ->
                if
                  Summary.is_global_only pe
                  && String.equal pe.e_dst.t_g e.e_src.t_g
                then begin
                  let newe =
                    { e with Summary.e_src = { e.e_src with Summary.t_g = pe.e_src.t_g } }
                  in
                  if Summary.add_edge prev_sfx newe then changed := true
                end)
              prev_bs)
    cur_sfx;
  !changed

(* [backtrace] lists the blocks of the current intraprocedural path, most
   recent first. The head is the terminal block: the function exit on a
   completed path, or the block where a cache hit aborted the path. *)
let relax _rctx fctx (backtrace : int list) =
  let sums = fctx.fsum in
  match backtrace with
  | [] -> ()
  | terminal :: rest ->
      if terminal = fctx.cfg.exit_ then
        (* ep's suffix summary equals its block summary *)
        (let tsfx = sfxsum sums terminal in
         Summary.iter_edges
           (fun e ->
             if suffix_eligible fctx e then ignore (Summary.add_edge tsfx e))
           (bsum sums terminal));
      let rec walk cur = function
        | [] -> ()
        | prev :: rest ->
            let changed =
              propagate fctx (bsum sums prev) (sfxsum sums prev) (sfxsum sums cur)
            in
            if changed then walk prev rest
      in
      walk terminal rest

(* ------------------------------------------------------------------ *)
(* Pending path-specific transitions                                   *)
(* ------------------------------------------------------------------ *)

(* Does the pending apply to this branch condition? Either the condition is
   (or contains at its root) the very node the pattern matched, or it tests
   the variable the call's result was assigned to. *)
let pending_applies (p : Sm.pending) (cond : Cast.expr) =
  let rec root_test (c : Cast.expr) =
    c.eid = p.p_node.Cast.eid
    ||
    match c.enode with
    | Cast.Ebinary (Cast.Ne, l, { enode = Cast.Eint 0L; _ }) -> root_test l
    | Cast.Ecast (_, e1) -> root_test e1
    | _ -> false
  in
  if root_test cond then Some false (* direct: polarity as-is *)
  else
    match p.p_on_var with
    | None -> None
    | Some x -> (
        match cond.enode with
        | Cast.Eident y when String.equal x y -> Some false
        | Cast.Ebinary (Cast.Ne, { enode = Cast.Eident y; _ }, { enode = Cast.Eint 0L; _ })
          when String.equal x y ->
            Some false
        | Cast.Ebinary (Cast.Eq, { enode = Cast.Eident y; _ }, { enode = Cast.Eint 0L; _ })
          when String.equal x y ->
            Some true (* inverted polarity *)
        | _ -> None)

let resolve_pendings rctx fctx walk ~(cond : Cast.expr option) ~taken =
  let sm = walk.sm in
  let walk = ref walk in
  let remaining = ref [] in
  List.iter
    (fun (p : Sm.pending) ->
      let applies =
        match cond with
        | None ->
            (* path end: a pending whose call result was stored but never
               branched on resolves pessimistically to the false dest; a
               pending that was never even observable (result discarded or
               an incidental non-branch match) is dropped without
               transitioning *)
            if p.p_on_var = None then `Drop else `Apply false
        | Some c -> (
            match pending_applies p c with
            | None -> `Keep
            | Some inverted -> `Apply inverted)
      in
      match applies with
      | `Drop -> ()
      | `Keep -> remaining := p :: !remaining
      | `Apply inverted ->
          let taken = match cond with None -> false | Some _ -> taken in
          let effective = if inverted then not taken else taken in
          let dest = if effective then p.p_true else p.p_false in
          let inst =
            match p.p_inst_id with
            | Some id -> Sm.find_instance sm ~id
            | None -> None
          in
          let walk', _ =
            apply_dest rctx fctx !walk ~node:(Some p.p_node) ~bindings:p.p_bindings ~inst
              dest
          in
          walk := walk')
    sm.pendings;
  sm.pendings <- List.rev !remaining;
  !walk

(* ------------------------------------------------------------------ *)
(* Interprocedural: refine / summary application / restore             *)
(* ------------------------------------------------------------------ *)

type call_setup = {
  cs_mapping : Refine.mapping;
  cs_refined : Sm.sm_inst;
  cs_saved : Sm.instance list;  (* caller-local and sleeping file-scope state *)
  cs_meta : (int, Sm.instance) Hashtbl.t;  (* refined target id -> caller instance *)
}

let refine_call rctx fctx walk (callee : Cast.fundef) (args : Cast.expr list) =
  let sm = walk.sm in
  let mapping = Refine.make_mapping ~params:callee.fparams ~args in
  let refined = Sm.initial sm.ext in
  refined.gstate <- sm.gstate;
  let saved = ref [] in
  let meta = Hashtbl.create 8 in
  let caller_scope = Refine.scope_names fctx.cfg.func in
  List.iter
    (fun (i : Sm.instance) ->
      if i.inactive then saved := i :: !saved
      else
        match
          Refine.classify_refine ~typing:rctx.sg.Supergraph.typing
            ~caller:fctx.cfg.func ~caller_scope ~callee_file:callee.ffile mapping
            i.target
        with
        | Refine.Mapped tree ->
            let i' = Sm.retargeted i ~ids:rctx.ids ~target:tree in
            Sm.add_instance refined i';
            Hashtbl.replace meta i'.Sm.target_id i;
            (* by-value (Table 2 row 1): the callee sees the state, but the
               caller's own instance is untouched at return *)
            if sm.ext.byval_restore && Refine.is_byval_root mapping tree then
              saved := i :: !saved
        | Refine.Global_pass ->
            let i' = Sm.clone_instance i in
            Sm.add_instance refined i';
            Hashtbl.replace meta i'.Sm.target_id i
        | Refine.Inactivate | Refine.Save -> saved := i :: !saved)
    sm.actives;
  { cs_mapping = mapping; cs_refined = refined; cs_saved = List.rev !saved; cs_meta = meta }

(* One tracked-object outcome of a call, pulled out of the callee's
   function summary. *)
type outcome = {
  o_tree : Cast.expr;  (* callee-scope tree *)
  o_value : string;
  o_from : int option;
      (* target id of the refined instance it transitioned from,
         None = created in the callee *)
  o_depth : int;  (* creation depth relative to the caller (ranking) *)
}

(* Partition the applicable function-summary edges into disjoint exit
   states (Section 6.3 step 5). The summary has lost cross-object path
   correlation; we build [max per-object multiplicity] exit states, object
   [j] contributing outcome [min (i, n_j - 1)] to state [i], so the
   continuation cost stays linear. *)
let apply_function_summary ~ids (sums : fsum) (cfg : Cfg.t) (refined : Sm.sm_inst) :
    (string * outcome list) list =
  let sfx = sfxsum sums cfg.entry in
  let all = Summary.edges sfx in
  if all = [] then
    (* the callee has never completed a path (e.g. recursion bottom):
       assume identity *)
    [
      ( refined.gstate,
        List.filter_map
          (fun (i : Sm.instance) ->
            if i.inactive then None
            else
              Some
                {
                  o_tree = i.target;
                  o_value = i.value;
                  o_from = Some i.target_id;
                  o_depth = 0;
                })
          refined.actives );
    ]
  else begin
    let g = refined.gstate in
    (* rendered keys: summary tuples are string-keyed (they persist) *)
    let instance_keys =
      List.filter_map
        (fun (i : Sm.instance) ->
          if i.inactive then None else Some (Sm.instance_key ids i))
        refined.actives
    in
    (* global outcomes *)
    let gouts =
      let from_global =
        List.filter_map
          (fun (e : Summary.edge) ->
            if Summary.is_global_only e && String.equal e.e_src.t_g g then
              Some e.e_dst.t_g
            else None)
          all
      in
      let outs = List.sort_uniq String.compare from_global in
      if outs = [] then [ g ] else outs
    in
    (* per-instance outcomes *)
    let inst_outs =
      List.filter_map
        (fun (i : Sm.instance) ->
          if i.inactive then None
          else begin
            let tup = Summary.tuple_of_instance ~ids ~gstate:g i in
            let outs =
              List.filter_map
                (fun (e : Summary.edge) ->
                  if e.e_kind = Summary.Transition && Summary.tuple_equal e.e_src tup
                  then
                    match e.e_dst.t_v with
                    | Some v ->
                        Some
                          {
                            o_tree = v.v_tree;
                            o_value = v.v_value;
                            o_from = Some i.target_id;
                            o_depth = v.v_depth + 1;
                          }
                    | None -> None
                  else None)
                all
            in
            (* dedup by value *)
            let outs =
              List.sort_uniq (fun a b -> String.compare a.o_value b.o_value) outs
            in
            if outs = [] then None (* stopped (or unseen) in callee: dropped *)
            else Some outs
          end)
        refined.actives
    in
    (* created objects *)
    let add_groups : (string, outcome list) Hashtbl.t = Hashtbl.create 4 in
    List.iter
      (fun (e : Summary.edge) ->
        if e.e_kind = Summary.Add && String.equal e.e_src.t_g g then
          match (e.e_src.t_v, e.e_dst.t_v) with
          | Some sv, Some dv when not (List.mem sv.v_key instance_keys) ->
              let prev = Option.value (Hashtbl.find_opt add_groups sv.v_key) ~default:[] in
              let out =
                {
                  o_tree = dv.v_tree;
                  o_value = dv.v_value;
                  o_from = None;
                  o_depth = dv.v_depth + 1;
                }
              in
              if not (List.exists (fun o -> String.equal o.o_value out.o_value) prev)
              then Hashtbl.replace add_groups sv.v_key (out :: prev)
          | _ -> ())
      all;
    let add_outs = Hashtbl.fold (fun _ outs acc -> List.rev outs :: acc) add_groups [] in
    let k =
      List.fold_left max 1
        (List.length gouts
        :: List.map List.length inst_outs
        @ List.map List.length add_outs)
    in
    let nth_clamped xs i = List.nth xs (min i (List.length xs - 1)) in
    List.init k (fun i ->
        let gstate = nth_clamped gouts i in
        let outs = List.map (fun outs -> nth_clamped outs i) (inst_outs @ add_outs) in
        (gstate, outs))
  end

let restore_partition rctx fctx walk0 (setup : call_setup) (callee : Cast.fundef)
    ~(callsite : Cast.expr) ((gstate, outs) : string * outcome list) : walk =
  let pre = walk0.sm in
  let sm' : Sm.sm_inst =
    {
      Sm.ext = pre.ext;
      gstate;
      actives = [];
      pendings = Sm.clone_pendings pre.pendings;
      killed_path = false;
    }
  in
  let created = ref walk0.created in
  let callee_scope = Refine.scope_names callee in
  List.iter
    (fun out ->
      match
        Refine.classify_restore ~typing:rctx.sg.Supergraph.typing ~callee
          ~callee_scope setup.cs_mapping out.o_tree
      with
      | Refine.Back_dropped -> ()
      | (Refine.Back_global | Refine.Back _) as back -> (
          let tree =
            match back with Refine.Back t -> t | _ -> out.o_tree
          in
          match out.o_from with
          | Some refined_id -> (
              match Hashtbl.find_opt setup.cs_meta refined_id with
              | Some orig ->
                  let value =
                    if
                      pre.ext.byval_restore
                      && Refine.is_byval_root setup.cs_mapping out.o_tree
                    then orig.value (* Table 2 row 1, by-value restore *)
                    else out.o_value
                  in
                  let i' = Sm.retargeted orig ~ids:rctx.ids ~target:tree ~value in
                  Sm.add_instance sm' i'
              | None ->
                  let i =
                    Sm.new_instance ~ids:rctx.ids ~target:tree ~value:out.o_value
                      ~created_at:callsite.eid ~created_loc:callsite.eloc
                      ~created_depth:(fctx.depth + out.o_depth) ()
                  in
                  Sm.add_instance sm' i;
                  created := Iset.add i.Sm.target_id !created)
          | None ->
              let i =
                Sm.new_instance ~ids:rctx.ids ~target:tree ~value:out.o_value
                  ~created_at:callsite.eid ~created_loc:callsite.eloc
                  ~created_depth:(fctx.depth + out.o_depth) ()
              in
              Sm.add_instance sm' i;
              created := Iset.add i.Sm.target_id !created))
    outs;
  (* saved caller-local state reappears; sleeping file-scope state wakes up
     if we are back in its file *)
  List.iter
    (fun (i : Sm.instance) ->
      let i = Sm.clone_instance i in
      (match Cast.idents_of_expr i.target with
      | x :: _ -> (
          match Ctyping.lookup_global_info rctx.sg.Supergraph.typing x with
          | Some (file, true) -> i.inactive <- not (String.equal file fctx.ffile)
          | _ -> ())
      | [] -> ());
      Sm.add_instance sm' i)
    setup.cs_saved;
  { sm = sm'; store = walk0.store; created = !created }

(* ------------------------------------------------------------------ *)
(* The traversal                                                       *)
(* ------------------------------------------------------------------ *)

let rec contains_call (e : Cast.expr) =
  match e.enode with
  | Cast.Ecall _ -> true
  | Cast.Eunary (_, e1)
  | Cast.Ecast (_, e1)
  | Cast.Esizeof_expr e1
  | Cast.Efield (e1, _)
  | Cast.Earrow (e1, _) ->
      contains_call e1
  | Cast.Ebinary (_, l, r)
  | Cast.Eassign (_, l, r)
  | Cast.Eindex (l, r)
  | Cast.Ecomma (l, r) ->
      contains_call l || contains_call r
  | Cast.Econd (c, t, f) -> contains_call c || contains_call t || contains_call f
  | Cast.Einit_list es -> List.exists contains_call es
  | Cast.Eint _ | Cast.Efloat _ | Cast.Echar _ | Cast.Estr _ | Cast.Eident _
  | Cast.Esizeof_type _ ->
      false

let call_target rctx (node : Cast.expr) =
  match node.enode with
  | Cast.Ecall ({ enode = Cast.Eident f; _ }, args) -> (
      match Supergraph.cfg_of rctx.sg f with
      | Some cfg -> Some (f, args, cfg)
      | None -> None)
  | _ -> None

let rec traverse rctx fctx walk (backtrace : int list) (bid : int) : unit =
  rctx.st.blocks_visited <- rctx.st.blocks_visited + 1;
  let block = Cfg.block fctx.cfg bid in
  let bs = bsum fctx.fsum bid in
  let sm = walk.sm in
  let store =
    if block.havoc = [] then walk.store else Store.havoc walk.store block.havoc
  in
  (* cache check: drop instances whose tuple this block has seen; abort the
     path when nothing new remains *)
  let aborted =
    if not rctx.opts.caching then false
    else begin
      let seen, fresh =
        List.partition
          (fun (i : Sm.instance) ->
            (not i.inactive)
            &&
            (rctx.st.cache_probes <- rctx.st.cache_probes + 1;
             Summary.mem_src_instance bs ~ids:rctx.ids ~gstate:sm.gstate i))
          sm.actives
      in
      let seen = List.filter (fun (i : Sm.instance) -> not i.inactive) seen in
      sm.actives <- fresh @ List.filter (fun (i : Sm.instance) -> i.inactive) sm.actives;
      if List.exists (fun (i : Sm.instance) -> not i.inactive) fresh then false
      else if seen <> [] then true (* every var tuple was cached *)
      else begin
        rctx.st.cache_probes <- rctx.st.cache_probes + 1;
        Summary.mem_src_global bs sm.gstate
      end
    end
  in
  if aborted then begin
    Log.debug (fun m ->
        m "[%s] cache hit in %s at B%d" rctx.cur_ext.Sm.sm_name fctx.fname bid);
    rctx.st.cache_hits <- rctx.st.cache_hits + 1;
    rctx.st.paths_explored <- rctx.st.paths_explored + 1;
    relax rctx fctx (bid :: backtrace)
  end
  else begin
    Summary.add_src_sm bs ~ids:rctx.ids sm;
    let entry_g = sm.gstate in
    (* block-entry snapshot: (key atom, target key, entry tuple) per live
       instance, later duplicates of an atom replacing earlier ones (the
       [Smap.add] overwrite this array replaces); [||] when no instance
       is live, which is the common case and allocates nothing *)
    let snapshot =
      if List.for_all (fun (i : Sm.instance) -> i.inactive) sm.actives then [||]
      else begin
        let entry_ga = Summary.key_atom bs entry_g in
        let entries =
          List.filter_map
            (fun (i : Sm.instance) ->
              if i.inactive then None
              else
                let atom = Summary.instance_key_atom rctx.ids rctx.intern i in
                Some
                  {
                    se_atom = atom;
                    se_key = Sm.instance_key rctx.ids i;
                    se_id =
                      Summary.tuple_id_atoms bs ~g:entry_ga ~vkey:atom
                        ~vval:(Summary.key_atom bs i.value);
                    se_tup =
                      Summary.tuple_of_instance ~ids:rctx.ids ~gstate:entry_g
                        ~depth_base:fctx.depth i;
                  })
            sm.actives
        in
        let seen = Hashtbl.create 8 in
        let keep =
          List.filter
            (fun se ->
              if Hashtbl.mem seen se.se_atom then false
              else begin
                Hashtbl.replace seen se.se_atom ();
                true
              end)
            (List.rev entries)
        in
        Array.of_list (List.rev keep)
      end
    in
    let walk = { walk with store; created = Iset.empty } in
    (* at the function exit node, unresolved path-specific transitions take
       their false destination before scope-end events fire *)
    let walk =
      if bid = fctx.cfg.exit_ && walk.sm.pendings <> [] then
        resolve_pendings rctx fctx walk ~cond:None ~taken:false
      else walk
    in
    (* skip-set check: when no transition of the extension could match any
       node of this block, apply_transitions is a provable no-op for every
       node event and is skipped wholesale; scope ends, fresh-variable
       kills and write handling still run *)
    let live =
      fctx.fbase < 0 || Dispatch.block_live_flat rctx.dsp (fctx.fbase + bid)
    in
    if not live then rctx.st.blocks_skipped <- rctx.st.blocks_skipped + 1;
    let evs = events_of_block rctx fctx block in
    process_events rctx fctx ~live evs 0 walk (fun walk' ->
        (* call-expression instances are ephemeral value-flow carriers:
           they must not leak into summaries or outlive their statement *)
        walk'.sm.actives <-
          List.filter
            (fun (i : Sm.instance) ->
              not (contains_call i.target))
            walk'.sm.actives;
        record_block_edges ~ids:rctx.ids ~intern:rctx.intern bs
          ~depth_base:fctx.depth ~entry_g ~snapshot walk';
        let bt = bid :: backtrace in
        if walk'.sm.killed_path then begin
          rctx.st.paths_explored <- rctx.st.paths_explored + 1;
          relax rctx fctx bt
        end
        else handle_terminator rctx fctx walk' bt block)
  end

and process_events rctx fctx ~live (evs : ev array) (i : int) walk
    (k : walk -> unit) : unit =
  if i >= Array.length evs then k walk
  else if walk.sm.killed_path then k walk
  else
    match Array.unsafe_get evs i with
    | Ev_scope_end vars ->
        let leaving =
          List.filter
            (fun (inst : Sm.instance) ->
              (not inst.inactive)
              && List.exists
                   (fun x -> List.mem x vars)
                   (Cast.idents_of_expr inst.target))
            walk.sm.actives
        in
        let walk =
          if leaving = [] then walk
          else fire_end_of_path rctx fctx walk ~instances:leaving ~global:false
        in
        process_events rctx fctx ~live evs (i + 1) walk k
    | Ev_fresh x ->
        if rctx.opts.auto_kill && walk.sm.ext.auto_kill then
          kill_mentions rctx walk ~at:(-1) x;
        let walk = { walk with store = Store.assign_unknown walk.store x } in
        process_events rctx fctx ~live evs (i + 1) walk k
    | Ev_node node ->
        rctx.st.nodes_visited <- rctx.st.nodes_visited + 1;
        charge_budget rctx;
        if node_annotated rctx node kill_path_tag then begin
          walk.sm.killed_path <- true;
          k walk
        end
        else begin
          let walk =
            if live then apply_transitions rctx fctx walk node
            else begin
              rctx.node_matched <- false;
              walk
            end
          in
          let matched = rctx.node_matched in
          let walk = handle_writes rctx fctx walk node in
          match call_target rctx node with
          | Some (f, args, callee_cfg)
            when rctx.opts.interproc && (not matched)
                 && fctx.depth < rctx.opts.max_call_depth ->
              follow_call rctx fctx walk node f args callee_cfg (fun walk' ->
                  process_events rctx fctx ~live evs (i + 1) walk' k)
          | _ -> process_events rctx fctx ~live evs (i + 1) walk k
        end

and follow_call rctx fctx walk (node : Cast.expr) fname args (callee_cfg : Cfg.t)
    (k : walk -> unit) : unit =
  rctx.st.calls_followed <- rctx.st.calls_followed + 1;
  Log.debug (fun m ->
      m "[%s] follow %s -> %s at %a (depth %d)" rctx.cur_ext.Sm.sm_name fctx.fname
        fname Srcloc.pp node.eloc fctx.depth);
  let callee = callee_cfg.func in
  let setup = refine_call rctx fctx walk callee args in
  let sums = get_fsum rctx callee_cfg in
  let entry_bs = bsum sums callee_cfg.entry in
  (* has the callee's entry block already seen every tuple of the refined
     state? (the probes mirror [Summary.tuples_of_sm]) *)
  let all_cached =
    let refined = setup.cs_refined in
    let any = ref false in
    let missing = ref false in
    List.iter
      (fun (i : Sm.instance) ->
        if not i.Sm.inactive then begin
          any := true;
          rctx.st.cache_probes <- rctx.st.cache_probes + 1;
          if
            not
              (Summary.mem_src_instance entry_bs ~ids:rctx.ids
                 ~gstate:refined.Sm.gstate i)
          then missing := true
        end)
      refined.Sm.actives;
    if !any then not !missing
    else begin
      rctx.st.cache_probes <- rctx.st.cache_probes + 1;
      Summary.mem_src_global entry_bs refined.Sm.gstate
    end
  in
  if all_cached then rctx.st.summary_hits <- rctx.st.summary_hits + 1
  else if not (shared_call rctx fctx setup fname callee_cfg) then begin
    (* analyse the callee in this (refined) state, populating its summary *)
    let callee_fctx =
      make_fctx rctx ~depth:(fctx.depth + 1) ~stack:(fname :: fctx.stack) callee_cfg
    in
    let callee_sm = Sm.clone setup.cs_refined in
    callee_sm.pendings <- [];
    (* False-path pruning stays per-function: caller-specific parameter
       constants must NOT flow into the callee, or the callee's function
       summary (keyed only by state tuples, Section 6.2) would memoise
       conclusions that are valid for one caller only. This also matches
       the published system, whose pruning was intraprocedural
       (Section 8, footnote). *)
    traverse rctx callee_fctx
      { sm = callee_sm; store = rctx.store0; created = Iset.empty }
      [] callee_cfg.entry
  end;
  let partitions =
    apply_function_summary ~ids:rctx.ids sums callee_cfg setup.cs_refined
  in
  let ret_value =
    (* simple value flow: if the callee returned a tracked object, its state
       rides on the call expression so that [l = f(...)] re-attaches it to
       [l] via the synonym machinery *)
    Hashtbl.fold (fun v () _acc -> Some v) sums.rets None
  in
  List.iter
    (fun part ->
      let walk' = restore_partition rctx fctx walk setup callee ~callsite:node part in
      let walk' =
        match ret_value with
        | Some v when not (String.equal v Sm.stop_value) ->
            let i =
              Sm.new_instance ~ids:rctx.ids ~target:node ~value:v
                ~created_at:node.eid ~created_loc:node.eloc
                ~created_depth:(fctx.depth + 1) ()
            in
            Sm.add_instance walk'.sm i;
            { walk' with created = Iset.add i.Sm.target_id walk'.created }
        | _ -> walk'
      in
      (* the callee may have written through pointer arguments *)
      let store =
        List.fold_left
          (fun store (a : Cast.expr) ->
            match (strip_casts a).enode with
            | Cast.Eunary (Cast.Addrof, { enode = Cast.Eident x; _ }) ->
                Store.assign_unknown store x
            | _ -> store)
          walk'.store args
      in
      k { walk' with store })
    partitions

(* --- shared summary units (parallel scheduler) ---------------------
   A callee entered with no active instances is characterized by its name
   and the inbound global state alone, so its traversal — summaries,
   reports, counter bumps, annotations — is the same no matter which root
   demands it. When a shared store is installed, such a unit is computed
   exactly once fleet-wide: the first demander claims it, analyses the
   callee in a fresh *scratch* context (so the publication cannot depend
   on the demander's history), publishes, and every demander (claimer
   included) replays the publication into its own context, which leaves
   that context exactly as if it had traversed the callee itself. *)

and shared_call rctx fctx (setup : call_setup) fname (callee_cfg : Cfg.t) : bool =
  match rctx.shared with
  | None -> false
  | Some sh -> (
      if setup.cs_refined.Sm.actives <> [] then false
      else
        (* The height gate makes the unit context-free AND deadlock-free:
           [depth + 1 + h <= max_call_depth] means no call in the callee's
           subtree would be depth-truncated for THIS demander, and the
           scratch (entered at depth 0) explores the identical untruncated
           tree. Cyclic-closure callees (height None) are never shared, so
           a worker waiting on a claimed unit only ever waits on strictly
           smaller heights — a wait cycle would be a call cycle. *)
        match sh.sh_heights fname with
        | Some h when fctx.depth + 1 + h <= rctx.opts.max_call_depth ->
            let gstate = setup.cs_refined.Sm.gstate in
            let key = fname ^ "\x00" ^ gstate in
            let p =
              match Shared_sums.acquire sh.sh_tbl key with
              | Shared_sums.Ready p ->
                  (* some root already paid the traversal: the sequential
                     engine would have taken a summary hit here *)
                  rctx.st.summary_hits <- rctx.st.summary_hits + 1;
                  p
              | Shared_sums.Claimed -> (
                  match compute_pub sh rctx fname callee_cfg gstate with
                  | p ->
                      Shared_sums.publish sh.sh_tbl key p;
                      p
                  | exception e ->
                      (* never publish a truncated unit: retract the claim
                         (waiters re-acquire and re-claim) and let the
                         demanding root's boundary degrade it, exactly as a
                         sequential traversal crash would *)
                      Shared_sums.abort sh.sh_tbl key;
                      raise e)
            in
            (* Budget accounting (first demand of this unit only — replays
               of an already-demanded unit are free, as the sequential
               engine's summary cache would have made them): charge the
               unit's own work, then each not-yet-demanded transitive dep's.
               A charge can raise [Budget_exceeded], degrading this root
               with the same reason a private traversal would have. *)
            let first = not (Hashtbl.mem rctx.demanded key) in
            if first then begin
              j_push rctx (U_mark (rctx.demanded, key));
              Hashtbl.replace rctx.demanded key ();
              charge_pub rctx p;
              List.iter
                (fun dk ->
                  if not (Hashtbl.mem rctx.demanded dk) then begin
                    j_push rctx (U_mark (rctx.demanded, dk));
                    Hashtbl.replace rctx.demanded dk ();
                    match Shared_sums.find_published sh.sh_tbl dk with
                    | Some dp -> charge_pub rctx dp
                    | None -> ()
                  end)
                p.p_deps
            end;
            replay_pub rctx p;
            true
        | _ -> false)

and compute_pub sh rctx fname (callee_cfg : Cfg.t) gstate : pub =
  let scratch =
    {
      sg = rctx.sg;
      opts = rctx.opts;
      (* same domain, synchronous: sharing the demander's id resolver keeps
         one overflow id per distinct synthesized key per worker *)
      ids = rctx.ids;
      intern =
        Intern.create
          ~strings:(not rctx.opts.state_ids)
          ~n_exprs:(Exprid.n rctx.sg.Supergraph.ids) ();
      store0 = rctx.store0;
      collector = Report.new_collector ();
      counters = Hashtbl.create 16;
      annots = Hashtbl.copy sh.sh_base_annots;
      annots_done = Bytes.make rctx.sg.Supergraph.flat.Flat.n_blocks '\000';
      fsums = Hashtbl.create 16;
      events_cache = Hashtbl.create 64;
      dedup = Hashtbl.create 16;
      traversed = Hashtbl.create 16;
      demanded = Hashtbl.create 8;
      shared = Some sh;  (* nested pure callees share recursively *)
      st = new_stats ();
      cur_ext = rctx.cur_ext;
      dsp = rctx.dsp;  (* compiled dispatch is immutable, shared read-only *)
      fuel = max_int;
      deadline = 0.;
      poll = budget_poll;
      degraded_roots = [];
      node_matched = false;
      journal = [];
      journaling = false;
    }
  in
  reset_budget scratch;
  let callee_fctx = make_fctx scratch ~depth:0 ~stack:[ fname ] callee_cfg in
  let sm = Sm.initial scratch.cur_ext in
  sm.Sm.gstate <- gstate;
  traverse scratch callee_fctx
    { sm; store = scratch.store0; created = Iset.empty }
    [] callee_cfg.entry;
  scratch.st.intern_atoms <- Intern.n_atoms scratch.intern;
  scratch.st.intern_tuples <- Intern.n_tuples scratch.intern;
  let sorted_fold tbl render =
    List.sort compare (Hashtbl.fold (fun k v acc -> render k v :: acc) tbl [])
  in
  {
    p_fsums = sorted_fold scratch.fsums (fun f s -> (f, s));
    p_reports = Report.reports scratch.collector;
    p_counters = sorted_fold scratch.counters (fun rule (e, c) -> (rule, e, c));
    p_annots =
      (* the tags the unit added beyond the extension base, oldest first
         (annotate_node prepends, so fresh tags are the list's prefix) *)
      List.sort compare
        (Hashtbl.fold
           (fun eid tags acc ->
             let fresh_n =
               List.length tags
               - List.length
                   (Option.value
                      (Hashtbl.find_opt sh.sh_base_annots eid)
                      ~default:[])
             in
             if fresh_n <= 0 then acc
             else
               (eid, List.rev (List.filteri (fun i _ -> i < fresh_n) tags))
               :: acc)
           scratch.annots []);
    p_traversed = sorted_fold scratch.traversed (fun f () -> f);
    p_deps = sorted_fold scratch.demanded (fun k () -> k);
    p_stats = scratch.st;
  }

and replay_pub rctx (p : pub) : unit =
  rctx.st.shared_replayed <- rctx.st.shared_replayed + 1;
  List.iter
    (fun (f, src) ->
      match Supergraph.cfg_of rctx.sg f with
      | None -> ()
      | Some cfg -> merge_fsum_into (get_fsum rctx cfg) src)
    p.p_fsums;
  List.iter
    (fun r ->
      let atom = Intern.atom rctx.intern (report_key r) in
      if not (Hashtbl.mem rctx.dedup atom) then begin
        j_push rctx (U_imark (rctx.dedup, atom));
        Hashtbl.replace rctx.dedup atom ();
        Report.emit rctx.collector r
      end)
    p.p_reports;
  List.iter
    (fun (eid, tags) ->
      let prev = Hashtbl.find_opt rctx.annots eid in
      let cur = ref (Option.value prev ~default:[]) in
      let changed = ref false in
      List.iter
        (fun t ->
          if not (List.mem t !cur) then begin
            cur := t :: !cur;
            changed := true
          end)
        tags;
      if !changed then begin
        j_push rctx (U_annot (eid, prev));
        Hashtbl.replace rctx.annots eid !cur
      end)
    p.p_annots;
  List.iter
    (fun f ->
      if not (Hashtbl.mem rctx.traversed f) then begin
        j_push rctx (U_mark (rctx.traversed, f));
        Hashtbl.replace rctx.traversed f ()
      end)
    p.p_traversed
(* counters and stats are NOT injected: the merge folds each demanded
   publication's accounting in exactly once. [shared_call] marks the
   publication's [p_deps] as demanded (and budget-charges them) before
   calling here. *)

and handle_terminator rctx fctx walk (bt : int list) (block : Block.t) : unit =
  match block.term with
  | Block.Jump b -> traverse rctx fctx walk bt b
  | Block.Return ret ->
      (match ret with
      | Some e ->
          let rid = Exprid.id rctx.ids (strip_casts e) in
          let sums = fctx.fsum in
          List.iter
            (fun (i : Sm.instance) ->
              if (not i.inactive) && i.target_id = rid then
                Hashtbl.replace sums.rets i.value ())
            walk.sm.actives
      | None -> ());
      traverse rctx fctx walk bt fctx.cfg.exit_
  | Block.Exit ->
      rctx.st.paths_explored <- rctx.st.paths_explored + 1;
      let walk =
        if fctx.depth = 0 then
          fire_end_of_path rctx fctx walk
            ~instances:(List.filter (fun (i : Sm.instance) -> not i.inactive) walk.sm.actives)
            ~global:true
        else walk
      in
      ignore walk;
      relax rctx fctx bt
  | Block.Branch (cond, tdest, fdest) ->
      let verdict =
        if rctx.opts.pruning then Store.decide walk.store cond else Store.Unknown
      in
      let go taken target ~split =
        let sm' = Sm.clone walk.sm in
        if split then
          List.iter
            (fun (i : Sm.instance) -> i.conditionals <- i.conditionals + 1)
            sm'.actives;
        let store' =
          if rctx.opts.pruning then Store.assume walk.store cond taken else walk.store
        in
        let walk' = { walk with sm = sm'; store = store' } in
        let walk' = resolve_pendings rctx fctx walk' ~cond:(Some cond) ~taken in
        traverse rctx fctx walk' bt target
      in
      (match verdict with
      | Store.True ->
          rctx.st.pruned_branches <- rctx.st.pruned_branches + 1;
          go true tdest ~split:false
      | Store.False ->
          rctx.st.pruned_branches <- rctx.st.pruned_branches + 1;
          go false fdest ~split:false
      | Store.Unknown ->
          go true tdest ~split:true;
          go false fdest ~split:true)
  | Block.Switch (scrut, arms) ->
      let known = if rctx.opts.pruning then Store.eval walk.store scrut else None in
      let arms_to_take =
        match known with
        | Some v -> (
            match List.find_opt (fun (g, _) -> g = Some v) arms with
            | Some arm -> [ arm ]
            | None -> (
                match List.find_opt (fun (g, _) -> g = None) arms with
                | Some d -> [ d ]
                | None -> arms))
        | None -> arms
      in
      if List.length arms_to_take < List.length arms then
        rctx.st.pruned_branches <- rctx.st.pruned_branches + 1;
      let split = List.length arms_to_take > 1 in
      List.iter
        (fun (guard, target) ->
          let sm' = Sm.clone walk.sm in
          if split then
            List.iter
              (fun (i : Sm.instance) -> i.conditionals <- i.conditionals + 1)
              sm'.actives;
          let store' =
            match guard with
            | Some v when rctx.opts.pruning ->
                Store.assume walk.store
                  (Cast.mk_expr (Cast.Ebinary (Cast.Eq, scrut, Cast.intlit v)))
                  true
            | None when rctx.opts.pruning ->
                (* default arm: the scrutinee differs from every case guard *)
                List.fold_left
                  (fun store (g, _) ->
                    match g with
                    | Some v ->
                        Store.assume store
                          (Cast.mk_expr (Cast.Ebinary (Cast.Eq, scrut, Cast.intlit v)))
                          false
                    | None -> store)
                  walk.store arms
            | _ -> walk.store
          in
          traverse rctx fctx { walk with sm = sm'; store = store' } bt target)
        arms_to_take

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let run_root rctx (ext : Sm.t) root =
  match Supergraph.cfg_of rctx.sg root with
  | None -> ()
  | Some cfg ->
      let fctx = make_fctx rctx ~depth:0 ~stack:[ root ] cfg in
      let walk =
        { sm = Sm.initial ext; store = rctx.store0; created = Iset.empty }
      in
      traverse rctx fctx walk [] cfg.entry

(* ------------------------------------------------------------------ *)
(* Root-boundary fault containment                                     *)
(* ------------------------------------------------------------------ *)

(* A root that blows its budget (or crashes outright) must abandon ONLY
   itself: every other root's reports stay byte-identical to a run that
   never had the bad root, at any [-j]. The mutable state a partial
   traversal can leak into is rolled back on failure via the undo
   journal armed by [snapshot_root] (each table write inside a root
   records its pre-root value; the tables are add/replace-only, so
   replaying the journal newest-first restores them exactly). Journaling
   replaces the earlier deep-copy snapshots, which cloned five
   hashtables plus a bitset per root per extension and dominated the
   engine's allocation profile — healthy roots (the common case) now pay
   one journal cell per table write instead of a full copy up front.

   - reports/dedup: partial reports would survive the merge (and their
     dedup keys would suppress identical reports from healthy roots);
     reports themselves are truncated back to a count taken at the root
     boundary;
   - counters, annots, traversed, demanded: partial contributions change
     later roots' view (annotations) or the result's accounting;
   - stats: restored wholesale (one small record copy) so accounting
     matches a run without the degraded root.

   Function summaries and the events cache are different: a snapshot
   would have to deep-copy every Summary, so instead they are RESET on
   failure. A truncated summary records source tuples whose paths never
   ran to completion — a later root trusting it as complete would take a
   cache hit that suppresses exactly the re-traversal that reports, so a
   degraded root's summaries are unusable by construction. Resetting also
   discards summaries healthy earlier roots computed, but summaries are
   pure caches ("trade repeated work for nothing observable"), so the
   cost is re-traversal, never output. The events cache is reset with the
   annotations it lays down ([mc_branch]/[mc_return]) so both stay in
   lockstep. *)

type root_snapshot = { sn_reports : int; sn_stats : stats }

let copy_stats (s : stats) = { s with blocks_visited = s.blocks_visited }

let assign_stats (dst : stats) (src : stats) =
  dst.blocks_visited <- src.blocks_visited;
  dst.nodes_visited <- src.nodes_visited;
  dst.cache_hits <- src.cache_hits;
  dst.paths_explored <- src.paths_explored;
  dst.calls_followed <- src.calls_followed;
  dst.summary_hits <- src.summary_hits;
  dst.pruned_branches <- src.pruned_branches;
  dst.transitions_fired <- src.transitions_fired;
  dst.instances_created <- src.instances_created;
  dst.functions_traversed <- src.functions_traversed;
  dst.cache_probes <- src.cache_probes;
  dst.intern_atoms <- src.intern_atoms;
  dst.intern_tuples <- src.intern_tuples;
  dst.match_attempts <- src.match_attempts;
  dst.index_hits <- src.index_hits;
  dst.blocks_skipped <- src.blocks_skipped;
  dst.shared_published <- src.shared_published;
  dst.shared_replayed <- src.shared_replayed;
  dst.shared_recomputed <- src.shared_recomputed;
  dst.sched_steals <- src.sched_steals;
  dst.sched_waits <- src.sched_waits

let snapshot_root rctx =
  rctx.journal <- [];
  rctx.journaling <- true;
  { sn_reports = Report.count rctx.collector; sn_stats = copy_stats rctx.st }

let apply_undo rctx = function
  | U_annot (eid, Some tags) -> Hashtbl.replace rctx.annots eid tags
  | U_annot (eid, None) -> Hashtbl.remove rctx.annots eid
  | U_mark (tbl, key) -> Hashtbl.remove tbl key
  | U_imark (tbl, key) -> Hashtbl.remove tbl key
  | U_counter (rule, Some v) -> Hashtbl.replace rctx.counters rule v
  | U_counter (rule, None) -> Hashtbl.remove rctx.counters rule
  | U_adone fb -> Bytes.set rctx.annots_done fb '\000'

let rollback_root rctx sn =
  Report.truncate rctx.collector sn.sn_reports;
  List.iter (apply_undo rctx) rctx.journal;
  assign_stats rctx.st sn.sn_stats;
  Hashtbl.reset rctx.fsums;
  Hashtbl.reset rctx.events_cache

(* The root boundary: run one root under its budget, catching budget
   exhaustion and arbitrary crashes (a checker action raising, a stack
   overflow on a pathological CFG) alike. On failure the root is rolled
   back and recorded as [degraded]; the caller moves on to the next
   root. Either way the journal is released: a healthy root's writes
   become permanent, and cross-root work (worker merges, shared-summary
   publication) runs unjournaled. *)
let run_root_contained rctx (ext : Sm.t) root =
  let sn = snapshot_root rctx in
  reset_budget rctx;
  (try run_root rctx ext root
   with e ->
     let reason =
       match e with
       | Budget_exceeded r -> r
       | e -> "uncaught exception: " ^ Printexc.to_string e
     in
     rollback_root rctx sn;
     rctx.degraded_roots <-
       { d_root = root; d_reason = reason } :: rctx.degraded_roots);
  rctx.journaling <- false;
  rctx.journal <- []

(* Installing an extension in a context compiles its dispatch tables;
   [cur_ext] and [dsp] must stay in lockstep, so this is the only way
   either is assigned. *)
let set_extension rctx (ext : Sm.t) =
  rctx.cur_ext <- ext;
  rctx.dsp <- Dispatch.compile ~indexed:rctx.opts.dispatch ~sg:rctx.sg ext

let run_extension rctx (ext : Sm.t) =
  set_extension rctx ext;
  let roots = Supergraph.roots rctx.sg in
  Log.debug (fun m ->
      m "running extension %s over roots: %s" ext.Sm.sm_name
        (String.concat ", " roots));
  List.iter (run_root_contained rctx ext) roots

(* Worker contexts start on an already-compiled extension: eager dispatch
   compilation is per-extension work, and the compiled form is immutable,
   so one compile (in the base context) serves every per-root context. *)
let new_rctx_in ?(options = default_options) ~ext ~dsp sg =
  {
    sg;
    opts = options;
    ids = Exprid.make_ctx ~strings:(not options.state_ids) sg.Supergraph.ids;
    intern =
      Intern.create
        ~strings:(not options.state_ids)
        ~n_exprs:(Exprid.n sg.Supergraph.ids) ();
    store0 = Store.create ();
    collector = Report.new_collector ();
    counters = Hashtbl.create 16;
    annots = Hashtbl.create 64;
    annots_done = Bytes.make (max 1 sg.Supergraph.flat.Flat.n_blocks) '\000';
    fsums = Hashtbl.create 64;
    events_cache = Hashtbl.create 256;
    dedup = Hashtbl.create 64;
    traversed = Hashtbl.create 64;
    demanded = Hashtbl.create 16;
    shared = None;
    st = new_stats ();
    cur_ext = ext;
    dsp;
    fuel = max_int;
    deadline = 0.;
    poll = budget_poll;
    degraded_roots = [];
    node_matched = false;
    journal = [];
    journaling = false;
  }

let new_rctx ?(options = default_options) sg =
  let none = Sm.make ~name:"<none>" [] in
  new_rctx_in ~options ~ext:none
    ~dsp:(Dispatch.compile ~indexed:options.dispatch ~sg none)
    sg

let collect_result rctx =
  rctx.st.functions_traversed <- Hashtbl.length rctx.traversed;
  (* fold in this context's own intern tables; worker contexts already
     contributed theirs through [add_stats] *)
  rctx.st.intern_atoms <- rctx.st.intern_atoms + Intern.n_atoms rctx.intern;
  rctx.st.intern_tuples <- rctx.st.intern_tuples + Intern.n_tuples rctx.intern;
  {
    reports = Report.reports rctx.collector;
    counters =
      List.sort
        (fun (a, _, _) (b, _, _) -> String.compare a b)
        (Hashtbl.fold (fun rule (e, c) acc -> (rule, e, c) :: acc) rctx.counters []);
    stats = rctx.st;
    degraded = List.rev rctx.degraded_roots;
  }

(* ------------------------------------------------------------------ *)
(* Domain-parallel execution                                           *)
(* ------------------------------------------------------------------ *)

(* Per-root traversals are independent monotone computations over the
   shared, immutable supergraph — the only cross-root coupling in the
   sequential engine is through caches (function summaries, block src
   tuples, report dedup) that trade repeated work for nothing observable.
   So the parallel mode gives every root task a private [rctx] (collector,
   counters, stats, fsums, events cache, dedup) and folds the results back
   in root order, which makes the output independent of how the pool
   schedules roots onto domains. *)

(* Fold a worker's annotation table into [base], preserving each node's
   tag insertion order (annotate_node prepends). *)
let merge_annots base worker =
  Hashtbl.iter
    (fun eid tags ->
      let cur = Option.value (Hashtbl.find_opt base eid) ~default:[] in
      let cur =
        List.fold_left
          (fun cur tag -> if List.mem tag cur then cur else tag :: cur)
          cur (List.rev tags)
      in
      Hashtbl.replace base eid cur)
    worker

let add_stats (acc : stats) (s : stats) =
  acc.blocks_visited <- acc.blocks_visited + s.blocks_visited;
  acc.nodes_visited <- acc.nodes_visited + s.nodes_visited;
  acc.cache_hits <- acc.cache_hits + s.cache_hits;
  acc.paths_explored <- acc.paths_explored + s.paths_explored;
  acc.calls_followed <- acc.calls_followed + s.calls_followed;
  acc.summary_hits <- acc.summary_hits + s.summary_hits;
  acc.pruned_branches <- acc.pruned_branches + s.pruned_branches;
  acc.transitions_fired <- acc.transitions_fired + s.transitions_fired;
  acc.instances_created <- acc.instances_created + s.instances_created;
  acc.cache_probes <- acc.cache_probes + s.cache_probes;
  acc.intern_atoms <- acc.intern_atoms + s.intern_atoms;
  acc.intern_tuples <- acc.intern_tuples + s.intern_tuples;
  acc.match_attempts <- acc.match_attempts + s.match_attempts;
  acc.index_hits <- acc.index_hits + s.index_hits;
  acc.blocks_skipped <- acc.blocks_skipped + s.blocks_skipped;
  acc.shared_published <- acc.shared_published + s.shared_published;
  acc.shared_replayed <- acc.shared_replayed + s.shared_replayed;
  acc.shared_recomputed <- acc.shared_recomputed + s.shared_recomputed;
  acc.sched_steals <- acc.sched_steals + s.sched_steals;
  acc.sched_waits <- acc.sched_waits + s.sched_waits

(* Stamp a worker context's intern-table sizes into its stats so the
   root-order merge can fold them like any other counter. *)
let seal_worker_stats (w : rctx) =
  w.st.intern_atoms <- Intern.n_atoms w.intern;
  w.st.intern_tuples <- Intern.n_tuples w.intern

(* Parallel execution is a work-stealing schedule over individual roots.
   Each root runs in a private context (fresh collector, counters, stats,
   summaries, events cache, dedup) seeded from the base annotation table,
   so its output is independent of which domain ran it and of every other
   root — the merge below, in root order, is therefore byte-identical at
   any [-j]. What the old static chunking could NOT avoid — a hot callee
   re-analysed once per chunk that demands it — is handled by a shared
   publish-once store: pure-entry callee units are computed exactly once
   fleet-wide in scratch contexts and replayed into each demanding root
   (see [shared_call]). Sharing needs [caching] on and per-root timeouts
   off (a wall-clock deadline is timing-dependent, so which unit blows it
   is not reproducible). Node budgets are compatible: a replayed unit is
   charged to the demanding root's fuel — its own work plus its
   not-yet-demanded transitive deps — exactly the units a private
   traversal would have charged, and a unit whose own traversal blows the
   scratch budget aborts its claim and degrades the demanding root with
   the same reason (see [shared_call]/[charge_pub]). *)
let run_extension_parallel ~jobs base (ext : Sm.t) =
  set_extension base ext;
  let roots = Array.of_list (Supergraph.roots base.sg) in
  let n = Array.length roots in
  let heights = Callgraph.acyclic_heights base.sg.Supergraph.callgraph in
  (* bottom-up schedule: shallow roots first, so short shared callees are
     published before the tall callers that would otherwise all compute
     them; ties (and cyclic-closure roots, scheduled last) in root order *)
  let height_of i =
    match heights roots.(i) with Some h -> h | None -> max_int
  in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> compare (height_of a, a) (height_of b, b)) order;
  let sharing = base.opts.caching && base.opts.timeout_per_root = 0. in
  let sh =
    if sharing then
      Some
        {
          sh_tbl = Shared_sums.create ();
          sh_heights = heights;
          sh_base_annots = base.annots;
        }
    else None
  in
  Log.debug (fun m ->
      m "running extension %s over %d roots on %d domains (sharing %b)"
        ext.Sm.sm_name n jobs sharing);
  (* [base] is read-only while the pool runs. *)
  let tasks, sched =
    Pool.run_sched ~jobs ~order n (fun ~worker:_ i ->
        let rctx = new_rctx_in ~options:base.opts ~ext ~dsp:base.dsp base.sg in
        rctx.shared <- sh;
        Hashtbl.iter (fun k v -> Hashtbl.replace rctx.annots k v) base.annots;
        run_root_contained rctx ext roots.(i);
        (* summaries and block events are per-root scratch state; the
           merge reads only deltas, so release them with the task *)
        Hashtbl.reset rctx.fsums;
        Hashtbl.reset rctx.events_cache;
        seal_worker_stats rctx;
        rctx)
  in
  (* Deterministic merge, in root order. The dedup table is fresh per
     extension rather than shared across extensions the way one mutable
     table is in the sequential path — report identity keys embed the
     checker name, so the observable result is the same and no mutable
     state leaks between extension runs. *)
  let dedup : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let demanded : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i task ->
      match task with
      | Ok (w : rctx) ->
          List.iter
            (fun r ->
              let key = report_key r in
              if not (Hashtbl.mem dedup key) then begin
                Hashtbl.replace dedup key ();
                Report.emit base.collector r
              end)
            (Report.reports w.collector);
          Hashtbl.iter
            (fun rule (e, c) ->
              let e0, c0 =
                Option.value (Hashtbl.find_opt base.counters rule) ~default:(0, 0)
              in
              Hashtbl.replace base.counters rule (e0 + e, c0 + c))
            w.counters;
          merge_annots base.annots w.annots;
          Hashtbl.iter (fun f () -> Hashtbl.replace base.traversed f ()) w.traversed;
          Hashtbl.iter (fun k () -> Hashtbl.replace demanded k ()) w.demanded;
          add_stats base.st w.st;
          List.iter
            (fun d -> base.degraded_roots <- d :: base.degraded_roots)
            (List.rev w.degraded_roots)
      | Error e ->
          (* the task failed outside the root boundary (worker setup) —
             degrade this root, keep the rest *)
          base.degraded_roots <-
            {
              d_root = roots.(i);
              d_reason = "worker failed: " ^ Printexc.to_string e;
            }
            :: base.degraded_roots)
    tasks;
  (* Fold each shared unit's accounting in exactly once, in sorted key
     order — but only units some surviving root demanded. A publication
     whose every demander was rolled back contributes nothing, exactly as
     its traversal would have been rolled back sequentially. *)
  (match sh with
  | None -> ()
  | Some sh ->
      Shared_sums.fold_published sh.sh_tbl
        (fun key (p : pub) () ->
          if Hashtbl.mem demanded key then begin
            List.iter
              (fun (rule, e, c) ->
                let e0, c0 =
                  Option.value
                    (Hashtbl.find_opt base.counters rule)
                    ~default:(0, 0)
                in
                Hashtbl.replace base.counters rule (e0 + e, c0 + c))
              p.p_counters;
            add_stats base.st p.p_stats
          end)
        ();
      let ss = Shared_sums.stats sh.sh_tbl in
      base.st.shared_published <- base.st.shared_published + ss.Shared_sums.published;
      base.st.shared_recomputed <-
        base.st.shared_recomputed + ss.Shared_sums.recomputed;
      base.st.sched_waits <- base.st.sched_waits + ss.Shared_sums.waits);
  base.st.sched_steals <- base.st.sched_steals + sched.Pool.stolen

(* ------------------------------------------------------------------ *)
(* Persistent-cache execution                                          *)
(* ------------------------------------------------------------------ *)

(* The cached mode reuses the parallel-mode execution model: every root is
   an independent computation in a private rctx, merged in root order.
   That equivalence (established for [-j]) is what lets a warm run replay
   a stored per-root result verbatim — the merge cannot tell a replayed
   root from a recomputed one. Cached function summaries are deliberately
   NOT seeded into live output traversals: a seeded summary would take
   summary hits that suppress exactly the re-traversals that emit reports,
   so the warm output would stop being byte-identical to the cold run.

   Invalidation is two-level, with early cutoff (the Shake/Salsa
   discipline). Each function has a persisted entry keyed by a digest of
   its OWN body, the file-scope declarations, its callees' summary
   CONTENT hashes, and the annotation state its closure can observe. The
   content hash digests what the function's analysis actually produces: a
   canonical traversal from the function's entry under the extension's
   initial state, recorded as summary tables + reports + counter and
   annotation deltas. A warm run recomputes edited functions bottom-up
   (callgraph height order, callees seeded from their canonical tables);
   when an edit leaves a function's canonical result byte-identical, its
   content hash is unchanged, so every caller's key — which folds content,
   not body — still validates and the edit stops propagating right there.
   Root replay entries key on the content hashes of the root's transitive
   closure, so a root whose closure absorbed the edit replays verbatim.

   The canonical traversal is a DIGEST, never an output path: reports
   always come from stored root entries (recorded from real worker runs)
   or fresh worker runs, which keeps warm output byte-identical by the
   same argument as before. The cutoff boundary is the standard
   summary-based trade: the canonical run observes callees from the
   extension's initial entry state, so a behaviour difference visible
   only under a caller-specific state that canonical summaries happen to
   cover can in principle escape the content hash. Any body edit still
   flips the edited function's own key (body hash), so the edited
   function itself always recomputes. *)

(* Bump whenever engine or builtin-checker semantics change in a way that
   can alter analysis output. The digest below is folded into every
   persistent cache key, so a stamp change orphans results computed by
   older builds instead of silently replaying them — the store's format
   version only guards the entry encoding, not what the engine computed. *)
let analysis_version = "xgcc-analysis-4"

let options_digest (o : options) =
  (* budgets are part of the digest: a budget-limited run can legitimately
     produce fewer reports, so its cache entries must not be replayed by
     an unlimited run (or vice versa). Representation switches ([flatten],
     [dispatch], [state_ids]) are deliberately absent: they cannot change
     output, so warm caches replay across those modes *)
  Printf.sprintf "%s c%b p%b i%b k%b s%b d%d m%d n%d t%g" analysis_version
    o.caching o.pruning o.interproc o.auto_kill o.synonyms o.max_call_depth
    o.max_instances o.max_nodes_per_root o.timeout_per_root

let stats_to_list (s : stats) =
  [
    s.blocks_visited; s.nodes_visited; s.cache_hits; s.paths_explored;
    s.calls_followed; s.summary_hits; s.pruned_branches; s.transitions_fired;
    s.instances_created;
  ]

let add_stats_list (acc : stats) = function
  | [ b; n; ch; p; cf; sh; pb; tf; ic ] ->
      acc.blocks_visited <- acc.blocks_visited + b;
      acc.nodes_visited <- acc.nodes_visited + n;
      acc.cache_hits <- acc.cache_hits + ch;
      acc.paths_explored <- acc.paths_explored + p;
      acc.calls_followed <- acc.calls_followed + cf;
      acc.summary_hits <- acc.summary_hits + sh;
      acc.pruned_branches <- acc.pruned_branches + pb;
      acc.transitions_fired <- acc.transitions_fired + tf;
      acc.instances_created <- acc.instances_created + ic
  | _ -> ()

let rec iter_exprs_expr f (e : Cast.expr) =
  f e;
  let children =
    match e.enode with
    | Cast.Eunary (_, e1)
    | Cast.Ecast (_, e1)
    | Cast.Esizeof_expr e1
    | Cast.Efield (e1, _)
    | Cast.Earrow (e1, _) ->
        [ e1 ]
    | Cast.Ebinary (_, l, r)
    | Cast.Eassign (_, l, r)
    | Cast.Eindex (l, r)
    | Cast.Ecomma (l, r) ->
        [ l; r ]
    | Cast.Econd (c, t, fe) -> [ c; t; fe ]
    | Cast.Ecall (fn, args) -> fn :: args
    | Cast.Einit_list es -> es
    | Cast.Eint _ | Cast.Efloat _ | Cast.Echar _ | Cast.Estr _ | Cast.Eident _
    | Cast.Esizeof_type _ ->
        []
  in
  List.iter (iter_exprs_expr f) children

let rec iter_exprs_stmt f (s : Cast.stmt) =
  match s.snode with
  | Cast.Sexpr e -> iter_exprs_expr f e
  | Cast.Sdecl ds ->
      List.iter
        (fun (d : Cast.decl) -> Option.iter (iter_exprs_expr f) d.dinit)
        ds
  | Cast.Sif (c, t, e) ->
      iter_exprs_expr f c;
      iter_exprs_stmt f t;
      Option.iter (iter_exprs_stmt f) e
  | Cast.Swhile (c, b) ->
      iter_exprs_expr f c;
      iter_exprs_stmt f b
  | Cast.Sdo (b, c) ->
      iter_exprs_stmt f b;
      iter_exprs_expr f c
  | Cast.Sfor (init, c, step, b) ->
      Option.iter (iter_exprs_stmt f) init;
      Option.iter (iter_exprs_expr f) c;
      Option.iter (iter_exprs_expr f) step;
      iter_exprs_stmt f b
  | Cast.Sreturn e -> Option.iter (iter_exprs_expr f) e
  | Cast.Sblock ss -> List.iter (iter_exprs_stmt f) ss
  | Cast.Sswitch (e, cases) ->
      iter_exprs_expr f e;
      List.iter
        (fun (c : Cast.case) -> List.iter (iter_exprs_stmt f) c.case_body)
        cases
  | Cast.Slabel (_, s1) -> iter_exprs_stmt f s1
  | Cast.Sbreak | Cast.Scontinue | Cast.Sgoto _ | Cast.Snull -> ()

(* Node ids are not stable across runs (decoding allocates fresh ids), so
   persisted annotation deltas are positional and re-resolved against the
   current program here. (location, printed expression) alone is
   ambiguous — the same header parsed into two translation units, or
   macro expansion duplicating an expression at one location, gives
   distinct nodes the same key — so the key also carries the enclosing
   global definition's name and the node's occurrence rank under that
   (location, printed, definition) triple, assigned in the deterministic
   index-traversal order below. Replay then targets exactly the node the
   worker annotated, never a positional twin. *)
let annot_base (loc : Srcloc.t) ~printed ~ctx =
  Printf.sprintf "%s:%d:%d|%s|%s" loc.file loc.line loc.col printed ctx

type annot_index = {
  ai_exprs : (int, Cast.expr) Hashtbl.t;  (* eid -> node *)
  ai_pos : (int, string * int) Hashtbl.t;  (* eid -> (enclosing def, occurrence) *)
  ai_ids : (string, int) Hashtbl.t;  (* full positional key -> eid *)
}

let build_annot_index (sg : Supergraph.t) =
  let ix =
    {
      ai_exprs = Hashtbl.create 1024;
      ai_pos = Hashtbl.create 1024;
      ai_ids = Hashtbl.create 1024;
    }
  in
  let occs : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  let visit ctx (e : Cast.expr) =
    if not (Hashtbl.mem ix.ai_exprs e.Cast.eid) then begin
      Hashtbl.replace ix.ai_exprs e.Cast.eid e;
      let base = annot_base e.eloc ~printed:(Cprint.expr_to_string e) ~ctx in
      let occ = Option.value (Hashtbl.find_opt occs base) ~default:0 in
      Hashtbl.replace occs base (occ + 1);
      Hashtbl.replace ix.ai_pos e.Cast.eid (ctx, occ);
      Hashtbl.replace ix.ai_ids (base ^ "#" ^ string_of_int occ) e.Cast.eid
    end
  in
  List.iter
    (fun (tu : Cast.tunit) ->
      List.iter
        (function
          | Cast.Gfun fd -> iter_exprs_stmt (visit fd.fname) fd.fbody
          | Cast.Gvar { gdecl = { dname; dinit = Some e; _ }; _ } ->
              iter_exprs_expr (visit dname) e
          | _ -> ())
        tu.tu_globals)
    sg.Supergraph.tunits;
  ix

(* The tags a worker added beyond the base table it was seeded from,
   oldest-first, attached to the worker's expression node. Tags on nodes
   absent from the program index (per-rctx synthesised nodes, e.g.
   declaration initialisers) are dropped — matching parallel mode, where
   their ids are meaningless to other workers anyway. *)
let annot_delta ~base ~ix (worker : (int, string list) Hashtbl.t) =
  let deltas =
    Hashtbl.fold
      (fun eid tags acc ->
        let fresh_n =
          List.length tags
          - List.length (Option.value (Hashtbl.find_opt base eid) ~default:[])
        in
        if fresh_n <= 0 then acc
        else
          match Hashtbl.find_opt ix.ai_exprs eid with
          | None -> acc
          | Some e ->
              let ctx, occ = Hashtbl.find ix.ai_pos eid in
              let fresh = List.rev (List.filteri (fun i _ -> i < fresh_n) tags) in
              (e.Cast.eloc, Cprint.expr_to_string e, ctx, occ, fresh) :: acc)
      worker []
  in
  List.sort
    (fun ((a : Srcloc.t), pa, ca, oa, _) ((b : Srcloc.t), pb, cb, ob, _) ->
      compare (a.file, a.line, a.col, pa, ca, oa) (b.file, b.line, b.col, pb, cb, ob))
    deltas

let inject_annots base ~ix annots =
  List.iter
    (fun ((loc : Srcloc.t), printed, ctx, occ, tags) ->
      let k = annot_base loc ~printed ~ctx ^ "#" ^ string_of_int occ in
      match Hashtbl.find_opt ix.ai_ids k with
      | None -> ()
      | Some eid ->
          let cur =
            ref (Option.value (Hashtbl.find_opt base.annots eid) ~default:[])
          in
          List.iter
            (fun tag -> if not (List.mem tag !cur) then cur := tag :: !cur)
            tags;
          Hashtbl.replace base.annots eid !cur)
    annots

let run_extension_cached ~jobs ~store ~ext_key ~body_hash ~decls_hash
    ~closures ~heights ~ix base (ext : Sm.t) =
  set_extension base ext;
  let cg = base.sg.Supergraph.callgraph in
  let sst = Summary_store.stats store in
  let base_snapshot = Hashtbl.copy base.annots in
  (* Annotation-state hashes, one per enclosing definition: extensions
     after the first see the tags earlier extensions left anywhere in the
     program, so cache keys must cover them — but hashing the whole table
     into every key would re-invalidate everything downstream of any
     annotation. Grouping by the annotated node's enclosing definition
     lets a key fold exactly the groups its closure can observe. Tags on
     nodes outside the program index are dropped, matching [annot_delta];
     tags in non-function contexts (global initialisers) land in one
     shared misc group, folded into every key (conservative, tiny). *)
  let annot_groups : (string, string list ref) Hashtbl.t = Hashtbl.create 16 in
  let annot_misc = ref [] in
  Hashtbl.iter
    (fun eid tags ->
      match Hashtbl.find_opt ix.ai_exprs eid with
      | None -> ()
      | Some e ->
          let ctx, occ = Hashtbl.find ix.ai_pos eid in
          let entry =
            annot_base e.Cast.eloc ~printed:(Cprint.expr_to_string e) ~ctx
            ^ "#" ^ string_of_int occ ^ "="
            ^ String.concat "," (List.rev tags)
          in
          if Callgraph.is_defined cg ctx then begin
            match Hashtbl.find_opt annot_groups ctx with
            | Some r -> r := entry :: !r
            | None -> Hashtbl.replace annot_groups ctx (ref [ entry ])
          end
          else annot_misc := entry :: !annot_misc)
    base_snapshot;
  let group_hash entries =
    Fingerprint.of_string ~salt:"annot-1"
      (String.concat "\x00" (List.sort String.compare entries))
  in
  let annot_misc_h = group_hash !annot_misc in
  let annot_hashes : (string, Fingerprint.t) Hashtbl.t =
    Hashtbl.create (Hashtbl.length annot_groups)
  in
  Hashtbl.iter
    (fun ctx entries -> Hashtbl.replace annot_hashes ctx (group_hash !entries))
    annot_groups;
  let annot_key_of cl =
    Fingerprint.combine
      [
        annot_misc_h;
        Fingerprint.combine_pairs
          (List.filter_map
             (fun g ->
               Option.map (fun h -> (g, h)) (Hashtbl.find_opt annot_hashes g))
             cl);
      ]
  in
  (* Early cutoff needs the canonical traversal to terminate and to be
     timing-independent, so it requires the summary caches on and per-root
     budgets off; otherwise entries degrade to body-hash keying (any edit
     invalidates transitive callers — the pre-cutoff behaviour). *)
  let cutoff =
    base.opts.caching && base.opts.max_nodes_per_root = 0
    && base.opts.timeout_per_root = 0.
  in
  let content : (string, Fingerprint.t) Hashtbl.t = Hashtbl.create 64 in
  let content_of f =
    match Hashtbl.find_opt content f with Some c -> c | None -> body_hash f
  in
  let canon :
      (string, Summary.t array * Summary.t array * string list) Hashtbl.t =
    Hashtbl.create 64
  in
  let unchanged : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let fn_key f callees cl =
    Fingerprint.combine
      [
        body_hash f;
        decls_hash;
        Fingerprint.combine_pairs (List.map (fun g -> (g, content_of g)) callees);
        annot_key_of cl;
      ]
  in
  (* Canonical recomputation: traverse [f] alone from its entry under the
     extension's initial state, callees seeded from their canonical
     tables (summary hits make the pass cheap and make the result a
     function of callee CONTENT, which is exactly what the key folds).
     Runs in a scratch context — a digest computation, never an output
     path. Returns the canonical tables plus the content hash of
     everything observable: tables, returned states, reports, counter
     deltas, and the annotation delta. *)
  let compute_canonical f callees =
    match Supergraph.cfg_of base.sg f with
    | None -> None
    | Some (cfg : Cfg.t) -> (
        let scratch =
          {
            sg = base.sg;
            opts = base.opts;
            ids = base.ids;
            intern =
              Intern.create
                ~strings:(not base.opts.state_ids)
                ~n_exprs:(Exprid.n base.sg.Supergraph.ids) ();
            store0 = base.store0;
            collector = Report.new_collector ();
            counters = Hashtbl.create 16;
            annots = Hashtbl.copy base_snapshot;
            annots_done =
              Bytes.make (max 1 base.sg.Supergraph.flat.Flat.n_blocks) '\000';
            fsums = Hashtbl.create 16;
            events_cache = Hashtbl.create 64;
            dedup = Hashtbl.create 16;
            traversed = Hashtbl.create 16;
            demanded = Hashtbl.create 8;
            shared = None;
            st = new_stats ();
            cur_ext = base.cur_ext;
            dsp = base.dsp;
            fuel = max_int;
            deadline = 0.;
            poll = budget_poll;
            degraded_roots = [];
            node_matched = false;
            journal = [];
            journaling = false;
          }
        in
        List.iter
          (fun g ->
            match (Hashtbl.find_opt canon g, Supergraph.cfg_of base.sg g) with
            | Some (gbs, gsfx, grets), Some gcfg ->
                let rets = Hashtbl.create (List.length grets + 1) in
                List.iter (fun k -> Hashtbl.replace rets k ()) grets;
                merge_fsum_into
                  (get_fsum scratch gcfg)
                  {
                    f_it = scratch.intern;
                    bs = Array.map Option.some gbs;
                    sfx = Array.map Option.some gsfx;
                    rets;
                  }
            | _ -> ())
          callees;
        match
          let fctx = make_fctx scratch ~depth:0 ~stack:[ f ] cfg in
          traverse scratch fctx
            {
              sm = Sm.initial scratch.cur_ext;
              store = scratch.store0;
              created = Iset.empty;
            }
            [] cfg.entry
        with
        | exception _ -> None
        | () ->
            let s = get_fsum scratch cfg in
            let bs = densify scratch.intern s.bs in
            let sfx = densify scratch.intern s.sfx in
            let rets =
              List.sort String.compare
                (Hashtbl.fold (fun k () acc -> k :: acc) s.rets [])
            in
            let b = Wire.writer () in
            Wire.int b (Array.length bs);
            Array.iter (Summary.to_bin b) bs;
            Array.iter (Summary.to_bin b) sfx;
            Wire.list b Wire.string rets;
            Wire.list b Report.to_bin (Report.reports scratch.collector);
            Wire.list b
              (fun b (rule, (e, c)) ->
                Wire.string b rule;
                Wire.int b e;
                Wire.int b c)
              (List.sort compare
                 (Hashtbl.fold
                    (fun rule ec acc -> (rule, ec) :: acc)
                    scratch.counters []));
            Wire.list b
              (fun b ((loc : Srcloc.t), printed, actx, occ, tags) ->
                Wire.string b loc.file;
                Wire.int b loc.line;
                Wire.int b loc.col;
                Wire.string b printed;
                Wire.string b actx;
                Wire.int b occ;
                Wire.list b Wire.string tags)
              (annot_delta ~base:base_snapshot ~ix scratch.annots);
            Some
              (bs, sfx, rets, Fingerprint.of_string ~salt:"canon-1" (Wire.contents b)))
  in
  if not cutoff then
    List.iter
      (fun f -> Hashtbl.replace content f (body_hash f))
      (Callgraph.functions cg)
  else begin
    (* bottom-up over the acyclic portion: every callee's content hash
       (and canonical tables) exists before any caller's key needs it.
       An acyclic function's closure cannot touch a cycle, so cycle
       members — pinned to body-hash content, neither probed nor stored —
       never appear as missing seeds. *)
    let acyclic, cyclic =
      List.partition (fun f -> heights f <> None) (Callgraph.functions cg)
    in
    List.iter (fun f -> Hashtbl.replace content f (body_hash f)) cyclic;
    let ordered =
      List.sort
        (fun a b ->
          compare (Option.get (heights a), a) (Option.get (heights b), b))
        acyclic
    in
    List.iter
      (fun f ->
        let cl = closures f in
        let callees = List.filter (fun g -> not (String.equal g f)) cl in
        let key = fn_key f callees cl in
        match Summary_store.probe_fn store ~ext:ext_key ~fname:f ~key with
        | Summary_store.Hit e ->
            Hashtbl.replace content f e.Summary_store.f_content;
            Hashtbl.replace canon f
              (e.Summary_store.f_bs, e.Summary_store.f_sfx,
               e.Summary_store.f_rets)
        | (Summary_store.Stale _ | Summary_store.Absent) as p -> (
            sst.Summary_store.fns_recomputed <-
              sst.Summary_store.fns_recomputed + 1;
            match compute_canonical f callees with
            | None -> Hashtbl.replace content f (body_hash f)
            | Some (bs, sfx, rets, c) ->
                Hashtbl.replace content f c;
                Hashtbl.replace canon f (bs, sfx, rets);
                (match p with
                | Summary_store.Stale old when String.equal old c ->
                    (* the cutoff: recomputation reproduced the stored
                       content, so callers' keys still validate *)
                    sst.Summary_store.sums_unchanged <-
                      sst.Summary_store.sums_unchanged + 1;
                    Hashtbl.replace unchanged f ()
                | _ -> ());
                Summary_store.store_fn store ~ext:ext_key ~fname:f ~key
                  ~content:c ~bs ~sfx ~rets))
      ordered
  end;
  let root_key r =
    let cl = closures r in
    Fingerprint.combine
      [
        decls_hash;
        Fingerprint.combine_pairs (List.map (fun g -> (g, content_of g)) cl);
        annot_key_of cl;
      ]
  in
  let roots = Array.of_list (Supergraph.roots base.sg) in
  let plans =
    Array.map
      (fun r ->
        match
          Summary_store.load_root store ~ext:ext_key ~root:r ~key:(root_key r)
        with
        | Some e ->
            if List.exists (Hashtbl.mem unchanged) (closures r) then
              sst.Summary_store.roots_salvaged <-
                sst.Summary_store.roots_salvaged + 1;
            `Replay e
        | None -> `Compute)
      roots
  in
  let invalid = ref [] in
  Array.iteri
    (fun i p -> match p with `Compute -> invalid := i :: !invalid | `Replay _ -> ())
    plans;
  let invalid = Array.of_list (List.rev !invalid) in
  Log.debug (fun m ->
      m "extension %s: %d/%d roots replayed from cache" ext.Sm.sm_name
        (Array.length roots - Array.length invalid)
        (Array.length roots));
  let workers =
    Pool.run_results ~jobs (Array.length invalid) (fun j ->
        let rctx = new_rctx_in ~options:base.opts ~ext ~dsp:base.dsp base.sg in
        Hashtbl.iter (fun k v -> Hashtbl.replace rctx.annots k v) base.annots;
        run_root_contained rctx ext roots.(invalid.(j));
        seal_worker_stats rctx;
        rctx)
  in
  let worker_of = Hashtbl.create 16 in
  Array.iteri (fun j idx -> Hashtbl.replace worker_of idx j) invalid;
  (* deterministic merge in root order, replayed and recomputed roots alike *)
  let dedup : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let emit_merged r =
    let key = report_key r in
    if not (Hashtbl.mem dedup key) then begin
      Hashtbl.replace dedup key ();
      Report.emit base.collector r
    end
  in
  let add_counter rule e c =
    let e0, c0 = Option.value (Hashtbl.find_opt base.counters rule) ~default:(0, 0) in
    Hashtbl.replace base.counters rule (e0 + e, c0 + c)
  in
  Array.iteri
    (fun idx root ->
      match plans.(idx) with
      | `Replay (e : Summary_store.root_entry) ->
          List.iter emit_merged e.r_reports;
          List.iter (fun (rule, ex, cx) -> add_counter rule ex cx) e.r_counters;
          inject_annots base ~ix e.r_annots;
          List.iter (fun f -> Hashtbl.replace base.traversed f ()) e.r_traversed;
          add_stats_list base.st e.r_stats
      | `Compute -> (
          match workers.(Hashtbl.find worker_of idx) with
          | Error e ->
              (* worker crashed outside the root boundary: degrade this
                 root, persist nothing for it *)
              base.degraded_roots <-
                {
                  d_root = root;
                  d_reason = "worker failed: " ^ Printexc.to_string e;
                }
                :: base.degraded_roots
          | Ok w when w.degraded_roots <> [] ->
              (* the root blew its budget (or crashed) and was rolled
                 back: record the degraded note and — critically — do NOT
                 store a root entry. An empty entry would replay as "this
                 root is clean" on the next warm run. Its fsums were reset
                 by the rollback, so the function-summary write-back below
                 gets nothing from it either. *)
              List.iter
                (fun d -> base.degraded_roots <- d :: base.degraded_roots)
                (List.rev w.degraded_roots);
              add_stats base.st w.st
          | Ok w ->
              List.iter emit_merged (Report.reports w.collector);
              Hashtbl.iter (fun rule (e, c) -> add_counter rule e c) w.counters;
              merge_annots base.annots w.annots;
              Hashtbl.iter
                (fun f () -> Hashtbl.replace base.traversed f ())
                w.traversed;
              add_stats base.st w.st;
              if Summary_store.persist store then
                Summary_store.store_root store ~ext:ext_key
                  {
                    Summary_store.r_root = root;
                    r_key = root_key root;
                    r_reports = Report.reports w.collector;
                    r_counters =
                      List.sort
                        (fun (a, _, _) (b, _, _) -> String.compare a b)
                        (Hashtbl.fold
                           (fun rule (e, c) acc -> (rule, e, c) :: acc)
                           w.counters []);
                    r_annots = annot_delta ~base:base_snapshot ~ix w.annots;
                    r_traversed =
                      List.sort String.compare
                        (Hashtbl.fold (fun f () acc -> f :: acc) w.traversed []);
                    r_stats = stats_to_list w.st;
                  }))
    roots

let run_cached ?options ~jobs store sg exts =
  let rctx = new_rctx ?options sg in
  Callout.install_builtins ();
  let body_hash_tbl = Hashtbl.create 64 in
  let body_hash f =
    match Hashtbl.find_opt body_hash_tbl f with
    | Some h -> h
    | None ->
        let h =
          match Supergraph.cfg_of sg f with
          | Some (cfg : Cfg.t) ->
              Fingerprint.of_string ~salt:Cast_io.format_version
                (Sexp.to_string (Cast_io.global_to_sexp (Cast.Gfun cfg.func)))
          | None -> Fingerprint.of_string f
        in
        Hashtbl.replace body_hash_tbl f h;
        h
  in
  let cg = sg.Supergraph.callgraph in
  let closures = Callgraph.closures cg in
  let heights = Callgraph.acyclic_heights cg in
  (* Analysis output depends on more than function bodies: typedefs,
     struct/union layouts, enum constants, prototypes and global-variable
     declarations all feed the typing environment (and file-scope statics
     drive sleep/wake partitioning), yet none of them appear in any Gfun
     sexp. Hash every non-function global into every cache key so a
     declaration-level edit invalidates cached entries too. *)
  let decls_hash =
    Fingerprint.of_string ~salt:Cast_io.format_version
      (String.concat "\x00"
         (List.concat_map
            (fun (tu : Cast.tunit) ->
              List.filter_map
                (function
                  | Cast.Gfun _ -> None
                  | g -> Some (Sexp.to_string (Cast_io.global_to_sexp g)))
                tu.tu_globals)
            sg.Supergraph.tunits))
  in
  let ix = build_annot_index sg in
  List.iteri
    (fun i ext ->
      Hashtbl.reset rctx.fsums;
      run_extension_cached ~jobs ~store ~ext_key:(Summary_store.ext_key store i)
        ~body_hash ~decls_hash ~closures ~heights ~ix rctx ext)
    exts;
  Summary_store.save_last_run store;
  collect_result rctx

let run ?options ?(jobs = 1) ?cache sg exts =
  match cache with
  | Some store -> run_cached ?options ~jobs store sg exts
  | None ->
      let rctx = new_rctx ?options sg in
      (* callout registration mutates a global table: force it before domains
         race on first lookup *)
      if jobs > 1 then Callout.install_builtins ();
      List.iter
        (fun ext ->
          (* summaries are per-extension *)
          Hashtbl.reset rctx.fsums;
          if jobs > 1 then run_extension_parallel ~jobs rctx ext
          else run_extension rctx ext)
        exts;
      collect_result rctx

let run_with_summaries ?options sg exts =
  let rctx = new_rctx ?options sg in
  let per_ext =
    List.map
      (fun ext ->
        Hashtbl.reset rctx.fsums;
        run_extension rctx ext;
        let summaries = Hashtbl.create 16 in
        Hashtbl.iter
          (fun fname (s : fsum) ->
            Hashtbl.replace summaries fname
              (densify s.f_it s.bs, densify s.f_it s.sfx))
          rctx.fsums;
        (ext.Sm.sm_name, summaries))
      exts
  in
  (collect_result rctx, per_ext)

let run_function ?options sg (sm : Sm.sm_inst) ~fname =
  let rctx = new_rctx ?options sg in
  set_extension rctx sm.Sm.ext;
  (match Supergraph.cfg_of sg fname with
  | None -> ()
  | Some cfg ->
      let fctx = make_fctx rctx ~depth:0 ~stack:[ fname ] cfg in
      traverse rctx fctx
        { sm = Sm.clone sm; store = rctx.store0; created = Iset.empty }
        [] cfg.entry);
  collect_result rctx

let check_source ?options ~file src exts =
  let tu = Cparse.parse_tunit ~file src in
  let sg = Supergraph.build [ tu ] in
  run ?options sg exts

let check_files ?options files exts =
  let tus = List.map Cparse.parse_tunit_file files in
  let sg = Supergraph.build tus in
  run ?options sg exts
