type value = string

let stop_value = "stop"

type instance = {
  target : Cast.expr;
  target_id : int;
      (* hash-consed id of [target] (Exprid): the identity the engine's
         instance lookups, seen-tuple probes and summary keys compare —
         id equality is exactly rendered-key equality *)
  mutable value : value;
  mutable data : (string * string) list;
  mutable int_data : (string * int) list;
  created_at : int;
  created_loc : Srcloc.t;
  created_depth : int;
  mutable conditionals : int;
  mutable syn_chain : int;
  mutable syn_group : int;
  mutable inactive : bool;
}

type dest =
  | To_var of value
  | To_stop
  | To_global of value
  | On_branch of dest * dest
  | Same

type source = Src_global of value | Src_var of value

type pending = {
  p_node : Cast.expr;
  mutable p_on_var : string option;
  p_true : dest;
  p_false : dest;
  p_inst_id : int option;
  p_bindings : Pattern.bindings;
  p_action : (actx -> unit) option;
}

and actx = {
  a_node : Cast.expr option;
  a_loc : Srcloc.t;
  a_bindings : Pattern.bindings;
  a_inst : instance option;
  a_sm : sm_inst;
  a_func : string;
  a_depth : int;
  a_typing : Ctyping.env;
  a_report :
    ?annotations:string list -> ?rule:string -> ?var:Cast.expr -> string -> unit;
  a_count : [ `Example | `Counterexample ] -> string -> unit;
  a_annotate : Cast.expr -> string -> unit;
  a_kill_path : unit -> unit;
}

and action = actx -> unit

and transition = {
  tr_source : source;
  tr_pattern : Pattern.t;
  tr_dest : dest;
  tr_action : action option;
}

and t = {
  sm_name : string;
  start_state : value;
  svar : string option;
  holes : (string * Holes.t) list;
  transitions : transition list;
  auto_kill : bool;
  track_synonyms : bool;
  byval_restore : bool;
}

and sm_inst = {
  ext : t;
  mutable gstate : value;
  mutable actives : instance list;
  mutable pendings : pending list;
  mutable killed_path : bool;
}

let make ~name ?(start = "start") ?svar ?(holes = []) ?(auto_kill = true)
    ?(track_synonyms = true) ?(byval_restore = false) transitions =
  {
    sm_name = name;
    start_state = start;
    svar;
    holes;
    transitions;
    auto_kill;
    track_synonyms;
    byval_restore;
  }

let initial ext = { ext; gstate = ext.start_state; actives = []; pendings = []; killed_path = false }

let clone_instance i =
  {
    target = i.target;
    target_id = i.target_id;
    value = i.value;
    data = i.data;
    int_data = i.int_data;
    created_at = i.created_at;
    created_loc = i.created_loc;
    created_depth = i.created_depth;
    conditionals = i.conditionals;
    syn_chain = i.syn_chain;
    syn_group = i.syn_group;
    inactive = i.inactive;
  }

let clone_pendings ps = List.map (fun p -> { p with p_on_var = p.p_on_var }) ps

let clone sm =
  {
    ext = sm.ext;
    gstate = sm.gstate;
    actives = List.map clone_instance sm.actives;
    pendings = clone_pendings sm.pendings;
    killed_path = sm.killed_path;
  }

let new_instance ?(data = []) ?(syn_chain = 0) ~ids ~target ~value ~created_at
    ~created_loc ~created_depth () =
  {
    target;
    target_id = Exprid.id ids target;
    value;
    data;
    int_data = [];
    created_at;
    created_loc;
    created_depth;
    conditionals = 0;
    syn_chain;
    syn_group = 0;
    inactive = false;
  }

let retargeted ?value ~ids i ~target =
  {
    (clone_instance i) with
    target;
    target_id = Exprid.id ids target;
    value = Option.value value ~default:i.value;
  }

let instance_key ids i =
  (* strings mode ([--no-state-ids]) renders the key on every call — the
     honest A/B baseline for what the engine paid before hash-consing *)
  if Exprid.strings_mode ids then Cast.key_of_expr i.target
  else
    (* an instance seeded from another context may carry an overflow id this
       context cannot resolve; render its target directly in that case *)
    match Exprid.find_key ids i.target_id with
    | Some k -> k
    | None -> Cast.key_of_expr i.target

let find_instance sm ~id =
  List.find_opt (fun i -> (not i.inactive) && i.target_id = id) sm.actives

let add_instance sm inst =
  sm.actives <-
    inst :: List.filter (fun i -> i.target_id <> inst.target_id) sm.actives

let remove_instance sm inst = sm.actives <- List.filter (fun i -> i != inst) sm.actives

let get_int i k = Option.value (List.assoc_opt k i.int_data) ~default:0
let set_int i k v = i.int_data <- (k, v) :: List.remove_assoc k i.int_data
let get_data i k = List.assoc_opt k i.data
let set_data i k v = i.data <- (k, v) :: List.remove_assoc k i.data

let rec pp_dest ppf = function
  | To_var v -> Format.fprintf ppf "v.%s" v
  | To_stop -> Format.pp_print_string ppf "v.stop"
  | To_global g -> Format.fprintf ppf "$%s" g
  | On_branch (t, f) -> Format.fprintf ppf "{ true = %a, false = %a }" pp_dest t pp_dest f
  | Same -> Format.pp_print_string ppf "<same>"

let pp_inst ppf sm =
  Format.fprintf ppf "@[<v>[%s] gstate=%s" sm.ext.sm_name sm.gstate;
  List.iter
    (fun i ->
      Format.fprintf ppf "@ %s : %s%s" (Cprint.expr_to_string i.target) i.value
        (if i.inactive then " (inactive)" else ""))
    sm.actives;
  Format.fprintf ppf "@]"

(* Atomic: synonym groups must stay distinct across engine worker domains. *)
let syn_group_counter = Atomic.make 0
let fresh_syn_group () = 1 + Atomic.fetch_and_add syn_group_counter 1
