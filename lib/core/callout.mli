(** Callout registry (Section 4).

    "Callouts let programmers extend the matching language ... by writing
    boolean expressions in C code that determine whether a match occurs."
    Our callout bodies are parsed as C expressions whose function calls
    dispatch into this registry of OCaml predicates — the same role the
    paper's "extensive library of functions useful as callouts" plays.

    Callouts can refer to the current program point ([mc_stmt]) and, when
    conjoined with other patterns, to those patterns' hole variables. *)

type value =
  | Vbool of bool
  | Vint of int64
  | Vstr of string
  | Vast of Cast.expr
  | Vargs of Cast.expr list
  | Vunit

type ctx = {
  typing : Ctyping.env;
  node : Cast.expr option;  (** the current program point, [mc_stmt] *)
  annots : (int, string list) Hashtbl.t;  (** AST annotations, for composition *)
}

type fn = ctx -> value list -> value

val register : string -> fn -> unit
(** Later registrations shadow earlier ones. *)

val lookup : string -> fn option

val truthy : value -> bool

val names : unit -> string list
(** All registered callout names, sorted. *)

(** The builtin library is registered at module initialisation:
    - [mc_is_call_to(fn, "name")] — is [fn] a call to (or the name of) the
      given function;
    - [mc_identifier(v)] — printed source of the AST bound to [v];
    - [mc_is_constant(e)] / [mc_constant_value(e)];
    - [mc_is_pointer(e)], [mc_is_scalar(e)];
    - [mc_nth_arg(args, n)] — n-th argument of an argument-list hole;
    - [mc_num_args(args)];
    - [mc_contains(haystack, needle)] — AST containment;
    - [mc_annotated(e, "tag")] — was this node annotated by a previously-run
      extension (composition, Section 3.2);
    - [mc_derefs(node, v)] — does [node] read through the pointer [v]
      ([*v], [v->f], [v[i]]) — the full meaning of the paper's [{*v}];
    - [mc_is_ident(e)] — is the bound AST a bare identifier (e.g. to
      restrict tracking to simple locals);
    - [mc_name_contains(e, "substr")] — identifier text test. *)

val install_builtins : unit -> unit
(** Idempotent; called on first use automatically. *)
