(** Parser for metal source text (see {!Metal_ast} for the grammar). *)

exception Metal_error of Srcloc.t * string

val parse : file:string -> string -> Metal_ast.t list
(** Parse every [sm] definition in the text. Raises {!Metal_error} (or
    {!Cparse.Parse_error} for a malformed embedded C fragment). *)

val parse_file : string -> Metal_ast.t list
