(* A sharded publish-once table shared by the parallel scheduler's worker
   domains. Generic in the published value so the engine can store its own
   publication record (which mentions engine types) without a dependency
   cycle. See shared_sums.mli for the protocol. *)

type 'a entry = Computing | Published of 'a

type 'a shard = {
  lock : Mutex.t;
  cond : Condition.t;
  tbl : (string, 'a entry) Hashtbl.t;
}

type 'a t = {
  shards : 'a shard array;
  mask : int;
  waits : int Atomic.t;
  published : int Atomic.t;
  recomputed : int Atomic.t;
}

type stats = { published : int; waits : int; recomputed : int }

let create ?(shards = 64) () =
  (* power-of-two shard count so [hash land mask] picks a shard *)
  let n = max 1 shards in
  let rec pow2 k = if k >= n then k else pow2 (k * 2) in
  let n = pow2 1 in
  {
    shards =
      Array.init n (fun _ ->
          {
            lock = Mutex.create ();
            cond = Condition.create ();
            tbl = Hashtbl.create 64;
          });
    mask = n - 1;
    waits = Atomic.make 0;
    published = Atomic.make 0;
    recomputed = Atomic.make 0;
  }

let shard_of t key = t.shards.(Hashtbl.hash key land t.mask)

type 'a claim = Claimed | Ready of 'a

let acquire t key =
  let s = shard_of t key in
  Mutex.lock s.lock;
  let waited = ref false in
  let rec loop () =
    match Hashtbl.find_opt s.tbl key with
    | None ->
        Hashtbl.replace s.tbl key Computing;
        Claimed
    | Some (Published v) -> Ready v
    | Some Computing ->
        if not !waited then begin
          waited := true;
          Atomic.incr t.waits
        end;
        Condition.wait s.cond s.lock;
        loop ()
  in
  let r = loop () in
  Mutex.unlock s.lock;
  r

let publish t key v =
  let s = shard_of t key in
  Mutex.lock s.lock;
  (match Hashtbl.find_opt s.tbl key with
  | Some (Published _) ->
      (* first writer wins; a second publish means the unit was computed
         twice, which the scheduler exists to prevent — count it *)
      Atomic.incr t.recomputed
  | Some Computing | None ->
      Hashtbl.replace s.tbl key (Published v);
      Atomic.incr t.published);
  Condition.broadcast s.cond;
  Mutex.unlock s.lock

let find_published t key =
  let s = shard_of t key in
  Mutex.lock s.lock;
  let r =
    match Hashtbl.find_opt s.tbl key with
    | Some (Published v) -> Some v
    | Some Computing | None -> None
  in
  Mutex.unlock s.lock;
  r

let abort t key =
  let s = shard_of t key in
  Mutex.lock s.lock;
  (match Hashtbl.find_opt s.tbl key with
  | Some Computing -> Hashtbl.remove s.tbl key
  | Some (Published _) | None -> ());
  Condition.broadcast s.cond;
  Mutex.unlock s.lock

let stats (t : 'a t) : stats =
  {
    published = Atomic.get t.published;
    waits = Atomic.get t.waits;
    recomputed = Atomic.get t.recomputed;
  }

let fold_published t f init =
  (* deterministic order: gather every published pair, sort by key *)
  let pairs = ref [] in
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      Hashtbl.iter
        (fun k e -> match e with Published v -> pairs := (k, v) :: !pairs | Computing -> ())
        s.tbl;
      Mutex.unlock s.lock)
    t.shards;
  let pairs = List.sort (fun (a, _) (b, _) -> String.compare a b) !pairs in
  List.fold_left (fun acc (k, v) -> f k v acc) init pairs
