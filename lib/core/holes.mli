(** Typed pattern holes (Section 4, Table 1).

    A hole variable declared with [decl] (or [state decl]) can be "filled" by
    any source construct of the appropriate type:

    {v
    Hole Type       Matches
    any C type      any expression of that type
    any_expr        any legal expression
    any_scalar      any scalar value (int, float, etc.)
    any_pointer     any pointer of any type
    any_arguments   any argument list
    any_fn_call     any function call
    v} *)

type t =
  | Concrete of Ctyp.t
  | Any_expr
  | Any_scalar
  | Any_pointer
  | Any_arguments
  | Any_fn_call

val of_name : string -> t option
(** Recognise the meta-type keywords ("any_pointer", "any expr" spelled with
    an underscore, ...). Returns [None] for ordinary type names. *)

val name : t -> string

val matches : Ctyping.env -> t -> Cast.expr -> bool
(** Can this expression fill the hole? [Any_arguments] always answers
    [false] here — argument-list holes are handled structurally by the
    pattern matcher, not per-expression. *)

val pp : Format.formatter -> t -> unit
