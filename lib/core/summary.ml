type tvar = { v_key : string; v_tree : Cast.expr; v_value : string; v_depth : int }
(* [v_depth] is the creation depth of the instance relative to the current
   frame (0 = created here); it rides along for ranking but is excluded
   from tuple keys so it never affects caching. *)
type tuple = { t_g : string; t_v : tvar option }

let unknown_value = "<unknown>"

let tuple_key t =
  match t.t_v with
  | None -> Printf.sprintf "(%s,<>)" t.t_g
  | Some v -> Printf.sprintf "(%s,%s->%s)" t.t_g v.v_key v.v_value

let tuple_equal a b = String.equal (tuple_key a) (tuple_key b)

let pp_tuple ppf t =
  match t.t_v with
  | None -> Format.fprintf ppf "(%s,<>)" t.t_g
  | Some v ->
      Format.fprintf ppf "(%s,v:%s->%s)" t.t_g
        (Cprint.expr_to_string v.v_tree)
        (if String.equal v.v_value unknown_value then "unknown" else v.v_value)

let tuple_of_instance ~gstate ?(depth_base = 0) (i : Sm.instance) =
  {
    t_g = gstate;
    t_v =
      Some
        {
          v_key = i.target_key;
          v_tree = i.target;
          v_value = i.value;
          v_depth = max 0 (i.created_depth - depth_base);
        };
  }

let global_tuple g = { t_g = g; t_v = None }

let unknown_tuple ~gstate tree =
  {
    t_g = gstate;
    t_v =
      Some
        {
          v_key = Cast.key_of_expr tree;
          v_tree = tree;
          v_value = unknown_value;
          v_depth = 0;
        };
  }

let tuples_of_sm (sm : Sm.sm_inst) =
  let active = List.filter (fun (i : Sm.instance) -> not i.inactive) sm.actives in
  match active with
  | [] -> [ global_tuple sm.gstate ]
  | instances -> List.map (tuple_of_instance ~gstate:sm.gstate) instances

type kind = Transition | Add
type edge = { e_src : tuple; e_dst : tuple; e_kind : kind }

let edge_key e =
  Printf.sprintf "%s=>%s:%s" (tuple_key e.e_src) (tuple_key e.e_dst)
    (match e.e_kind with Transition -> "t" | Add -> "a")

let pp_edge ppf e = Format.fprintf ppf "%a --> %a" pp_tuple e.e_src pp_tuple e.e_dst

let is_global_only e = e.e_src.t_v = None && e.e_dst.t_v = None

let ends_in_stop e =
  match e.e_dst.t_v with
  | Some v -> String.equal v.v_value Sm.stop_value
  | None -> false

type t = {
  tbl : (string, edge) Hashtbl.t;
  srcs : (string, unit) Hashtbl.t;
  mutable order : edge list;  (* insertion order, newest first *)
}

let create () = { tbl = Hashtbl.create 8; srcs = Hashtbl.create 8; order = [] }

let add_edge t e =
  let k = edge_key e in
  if Hashtbl.mem t.tbl k then false
  else begin
    Hashtbl.replace t.tbl k e;
    t.order <- e :: t.order;
    true
  end

let remove_edge t e =
  let k = edge_key e in
  if Hashtbl.mem t.tbl k then begin
    Hashtbl.remove t.tbl k;
    t.order <- List.filter (fun e' -> not (String.equal (edge_key e') k)) t.order
  end

let edges t = List.rev t.order
let transitions t = List.filter (fun e -> e.e_kind = Transition) (edges t)
let adds t = List.filter (fun e -> e.e_kind = Add) (edges t)
let mem_src t tup = Hashtbl.mem t.srcs (tuple_key tup)
let add_src t tup = Hashtbl.replace t.srcs (tuple_key tup) ()
let srcs_count t = Hashtbl.length t.srcs
let size t = Hashtbl.length t.tbl

let clear t =
  Hashtbl.reset t.tbl;
  Hashtbl.reset t.srcs;
  t.order <- []

let find_by_dst t tup = List.filter (fun e -> tuple_equal e.e_dst tup) (edges t)

let srcs_list t =
  List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) t.srcs [])

let add_src_key t k = Hashtbl.replace t.srcs k ()

(* --- sexp (de)serialisation, for the persistent summary store --------- *)

let tuple_to_sexp tup =
  match tup.t_v with
  | None -> Sexp.list [ Sexp.atom tup.t_g ]
  | Some v ->
      Sexp.list
        [
          Sexp.atom tup.t_g;
          Sexp.atom v.v_key;
          Cast_io.expr_to_sexp v.v_tree;
          Sexp.atom v.v_value;
          Sexp.atom (string_of_int v.v_depth);
        ]

let tuple_of_sexp = function
  | Sexp.List [ Sexp.Atom g ] -> { t_g = g; t_v = None }
  | Sexp.List [ Sexp.Atom g; Sexp.Atom v_key; tree; Sexp.Atom v_value; Sexp.Atom d ] ->
      {
        t_g = g;
        t_v =
          Some
            {
              v_key;
              v_tree = Cast_io.expr_of_sexp tree;
              v_value;
              v_depth = int_of_string d;
            };
      }
  | other -> raise (Sexp.Decode_error ("bad tuple " ^ Sexp.to_string other))

let edge_to_sexp e =
  Sexp.list
    [
      Sexp.atom (match e.e_kind with Transition -> "t" | Add -> "a");
      tuple_to_sexp e.e_src;
      tuple_to_sexp e.e_dst;
    ]

let edge_of_sexp = function
  | Sexp.List [ Sexp.Atom kind; src; dst ] ->
      {
        e_src = tuple_of_sexp src;
        e_dst = tuple_of_sexp dst;
        e_kind =
          (match kind with
          | "t" -> Transition
          | "a" -> Add
          | k -> raise (Sexp.Decode_error ("bad edge kind " ^ k)));
      }
  | other -> raise (Sexp.Decode_error ("bad edge " ^ Sexp.to_string other))

let to_sexp t =
  Sexp.list
    [
      Sexp.atom "sum";
      Sexp.list (List.map edge_to_sexp (edges t));
      Sexp.list (List.map Sexp.atom (srcs_list t));
    ]

let of_sexp = function
  | Sexp.List [ Sexp.Atom "sum"; Sexp.List edges; Sexp.List srcs ] ->
      let t = create () in
      List.iter (fun e -> ignore (add_edge t (edge_of_sexp e))) edges;
      List.iter
        (function
          | Sexp.Atom k -> add_src_key t k
          | _ -> raise (Sexp.Decode_error "bad src key"))
        srcs;
      t
  | other -> raise (Sexp.Decode_error ("bad summary " ^ Sexp.to_string other))

let pp ppf t =
  let es = edges t in
  let interesting = List.filter (fun e -> not (is_global_only e)) es in
  let shown = if interesting = [] then es else interesting in
  match shown with
  | [] -> Format.pp_print_string ppf "(empty)"
  | es ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
        pp_edge ppf es
