type tvar = { v_key : string; v_tree : Cast.expr; v_value : string; v_depth : int }
(* [v_depth] is the creation depth of the instance relative to the current
   frame (0 = created here); it rides along for ranking but is excluded
   from tuple keys so it never affects caching. *)
type tuple = { t_g : string; t_v : tvar option }

let unknown_value = "<unknown>"

let tuple_key t =
  match t.t_v with
  | None -> Printf.sprintf "(%s,<>)" t.t_g
  | Some v -> Printf.sprintf "(%s,%s->%s)" t.t_g v.v_key v.v_value

(* Component-wise: equal iff the rendered keys are equal (neither state
   names nor expression keys can produce the separators), without paying
   for the rendering. *)
let tuple_equal a b =
  String.equal a.t_g b.t_g
  &&
  match (a.t_v, b.t_v) with
  | None, None -> true
  | Some va, Some vb -> String.equal va.v_key vb.v_key && String.equal va.v_value vb.v_value
  | None, Some _ | Some _, None -> false

let pp_tuple ppf t =
  match t.t_v with
  | None -> Format.fprintf ppf "(%s,<>)" t.t_g
  | Some v ->
      Format.fprintf ppf "(%s,v:%s->%s)" t.t_g
        (Cprint.expr_to_string v.v_tree)
        (if String.equal v.v_value unknown_value then "unknown" else v.v_value)

let tuple_of_instance ~ids ~gstate ?(depth_base = 0) (i : Sm.instance) =
  {
    t_g = gstate;
    t_v =
      Some
        {
          v_key = Sm.instance_key ids i;
          v_tree = i.target;
          v_value = i.value;
          v_depth = max 0 (i.created_depth - depth_base);
        };
  }

let global_tuple g = { t_g = g; t_v = None }

let unknown_tuple ~gstate tree =
  {
    t_g = gstate;
    t_v =
      Some
        {
          v_key = Cast.key_of_expr tree;
          v_tree = tree;
          v_value = unknown_value;
          v_depth = 0;
        };
  }

(* Same tuple as [unknown_tuple ~gstate i.target], but resolving the key
   through the shared id table instead of re-rendering the expression. *)
let unknown_tuple_of_instance ~ids ~gstate (i : Sm.instance) =
  {
    t_g = gstate;
    t_v =
      Some
        {
          v_key = Sm.instance_key ids i;
          v_tree = i.target;
          v_value = unknown_value;
          v_depth = 0;
        };
  }

let tuples_of_sm ~ids (sm : Sm.sm_inst) =
  let active = List.filter (fun (i : Sm.instance) -> not i.inactive) sm.actives in
  match active with
  | [] -> [ global_tuple sm.gstate ]
  | instances -> List.map (tuple_of_instance ~ids ~gstate:sm.gstate) instances

type kind = Transition | Add
type edge = { e_src : tuple; e_dst : tuple; e_kind : kind }

let edge_key e =
  Printf.sprintf "%s=>%s:%s" (tuple_key e.e_src) (tuple_key e.e_dst)
    (match e.e_kind with Transition -> "t" | Add -> "a")

let pp_edge ppf e = Format.fprintf ppf "%a --> %a" pp_tuple e.e_src pp_tuple e.e_dst

let is_global_only e = e.e_src.t_v = None && e.e_dst.t_v = None

let ends_in_stop e =
  match e.e_dst.t_v with
  | Some v -> String.equal v.v_value Sm.stop_value
  | None -> false

(* A summary keys everything by interned tuple ids: [tbl] (edge dedup) by
   the packed (src id, dst id, kind), [srcs] (the block cache) and [by_dst]
   (the relax index) by tuple id. The interner is typically shared by every
   summary of a root context, so an id computed against one summary is
   valid against all of them and per-instance id caches amortise across
   blocks. *)
type t = {
  it : Intern.t;
  tbl : (int, edge) Hashtbl.t;
  srcs : (int, unit) Hashtbl.t;
  by_dst : (int, edge list) Hashtbl.t;  (* dst tuple id -> edges, newest first *)
  (* insertion order as a growable array: the relax pass re-reads each
     block's edges on every path, so order must iterate oldest-first
     without building a fresh list each time *)
  mutable earr : edge array;
  mutable elen : int;
}

let create ?intern () =
  let it = match intern with Some it -> it | None -> Intern.create () in
  {
    it;
    tbl = Hashtbl.create 8;
    srcs = Hashtbl.create 8;
    by_dst = Hashtbl.create 8;
    earr = [||];
    elen = 0;
  }

let push_edge t e =
  let cap = Array.length t.earr in
  if t.elen = cap then begin
    let arr = Array.make (if cap = 0 then 4 else 2 * cap) e in
    Array.blit t.earr 0 arr 0 t.elen;
    t.earr <- arr
  end;
  Array.unsafe_set t.earr t.elen e;
  t.elen <- t.elen + 1

let tuple_id t tup =
  let g = Intern.atom t.it tup.t_g in
  match tup.t_v with
  | None -> Intern.tuple t.it ~g ~vkey:Intern.no_var ~vval:Intern.no_var
  | Some v ->
      Intern.tuple t.it ~g ~vkey:(Intern.atom t.it v.v_key)
        ~vval:(Intern.atom t.it v.v_value)

(* The interned atom of the instance's target key: instances carry only the
   hash-consed target id, and the id -> atom mapping is cached on the
   interner itself ([Intern.eatom]), so the key renders at most once per
   distinct expression id per root. *)
let instance_key_atom ids it (i : Sm.instance) =
  (* strings mode resolves through the rendered key's string hash on every
     probe (the pre-hash-cons behaviour); ids mode renders at most once
     per distinct expression per interner via the id -> atom cache *)
  if Exprid.strings_mode ids then Intern.atom it (Sm.instance_key ids i)
  else Intern.eatom it i.Sm.target_id (fun () -> Sm.instance_key ids i)

let instance_tuple_id t ~ids ~gstate (i : Sm.instance) =
  Intern.tuple t.it
    ~g:(Intern.atom t.it gstate)
    ~vkey:(instance_key_atom ids t.it i)
    ~vval:(Intern.atom t.it i.Sm.value)

let global_tuple_id t g =
  Intern.tuple t.it ~g:(Intern.atom t.it g) ~vkey:Intern.no_var ~vval:Intern.no_var

(* Tuple ids stay well under 2^30 (they count distinct strings seen by one
   root), so a packed 63-bit int is a safe edge key. *)
let pack_edge_id s d kind = (s lsl 32) lor (d lsl 1) lor kind
let kind_code = function Transition -> 0 | Add -> 1

let edge_ids t e =
  let s = tuple_id t e.e_src in
  let d = tuple_id t e.e_dst in
  (s, d, pack_edge_id s d (kind_code e.e_kind))

(* --- probe-first recording ------------------------------------------
   The engine's block-edge recording computes src/dst tuple ids from
   component atoms and probes [mem_edge_ids] before constructing any
   tuple or edge record; records are built only on a miss (the first
   sighting). With ids the probe is a packed-int hash lookup allocating
   nothing; in strings mode every [Intern.tuple] call re-renders the
   tuple key, so probes cost exactly what the string-keyed caches
   paid. *)
let key_atom t s = Intern.atom t.it s
let tuple_id_atoms t ~g ~vkey ~vval = Intern.tuple t.it ~g ~vkey ~vval

let mem_edge_ids t ~src ~dst kind =
  Hashtbl.mem t.tbl (pack_edge_id src dst (kind_code kind))

let add_edge t e =
  let _, d, k = edge_ids t e in
  if Hashtbl.mem t.tbl k then false
  else begin
    Hashtbl.replace t.tbl k e;
    push_edge t e;
    Hashtbl.replace t.by_dst d
      (e :: Option.value (Hashtbl.find_opt t.by_dst d) ~default:[]);
    true
  end

let remove_edge t e =
  let _, d, k = edge_ids t e in
  if Hashtbl.mem t.tbl k then begin
    Hashtbl.remove t.tbl k;
    let not_e e' = (let _, _, k' = edge_ids t e' in k') <> k in
    let kept = List.filter not_e (Array.to_list (Array.sub t.earr 0 t.elen)) in
    t.earr <- Array.of_list kept;
    t.elen <- List.length kept;
    match Hashtbl.find_opt t.by_dst d with
    | Some es -> Hashtbl.replace t.by_dst d (List.filter not_e es)
    | None -> ()
  end

let edges t = Array.to_list (Array.sub t.earr 0 t.elen)

(* Oldest-first iteration/fold with no per-call list copy — what the hot
   relax/propagate loops use. The snapshot semantics of the list-based
   [edges] are preserved: the length is read once, so edges added during
   iteration (possible when a self-loop makes prev = cur) are not seen. *)
let iter_edges f t =
  let arr = t.earr and n = t.elen in
  for i = 0 to n - 1 do
    f (Array.unsafe_get arr i)
  done

let no_edges t = t.elen = 0
let transitions t = List.filter (fun e -> e.e_kind = Transition) (edges t)
let adds t = List.filter (fun e -> e.e_kind = Add) (edges t)
let mem_src t tup = Hashtbl.mem t.srcs (tuple_id t tup)
let add_src t tup = Hashtbl.replace t.srcs (tuple_id t tup) ()
let mem_src_instance t ~ids ~gstate i =
  Hashtbl.mem t.srcs (instance_tuple_id t ~ids ~gstate i)

let mem_src_global t g = Hashtbl.mem t.srcs (global_tuple_id t g)

let add_src_sm t ~ids (sm : Sm.sm_inst) =
  let any = ref false in
  List.iter
    (fun (i : Sm.instance) ->
      if not i.Sm.inactive then begin
        any := true;
        Hashtbl.replace t.srcs (instance_tuple_id t ~ids ~gstate:sm.Sm.gstate i) ()
      end)
    sm.Sm.actives;
  if not !any then Hashtbl.replace t.srcs (global_tuple_id t sm.Sm.gstate) ()

let srcs_count t = Hashtbl.length t.srcs
let size t = Hashtbl.length t.tbl

let clear t =
  Hashtbl.reset t.tbl;
  Hashtbl.reset t.srcs;
  Hashtbl.reset t.by_dst;
  t.earr <- [||];
  t.elen <- 0

(* Oldest-first, matching the pre-index behavior of filtering [edges t]. *)
let find_by_dst t tup =
  match Hashtbl.find_opt t.by_dst (tuple_id t tup) with
  | Some es -> List.rev es
  | None -> []

(* Oldest-first iteration over one destination's edges without the
   [List.rev] copy; the recursion depth is the per-dst fan-in, a handful
   of edges in practice. *)
let iter_by_dst t tup f =
  match Hashtbl.find t.by_dst (tuple_id t tup) with
  | es ->
      let rec go = function
        | [] -> ()
        | e :: tl ->
            go tl;
            f e
      in
      go es
  | exception Not_found -> ()

let srcs_list t =
  List.sort String.compare
    (Hashtbl.fold (fun id () acc -> Intern.name t.it id :: acc) t.srcs [])

(* A persisted key is a full rendered tuple key; its atom id is exactly
   the id [tuple_id] assigns the live tuple, so replayed and recomputed
   entries land in the same id space. *)
let add_src_key t k = Hashtbl.replace t.srcs (Intern.atom t.it k) ()

(* --- sexp (de)serialisation, for the persistent summary store ---------
   The on-disk format is unchanged from the string-keyed representation
   (edges in insertion order, sorted rendered src keys): interning is a
   purely in-memory encoding, so sumstore-2 entries stay valid. *)

let tuple_to_sexp tup =
  match tup.t_v with
  | None -> Sexp.list [ Sexp.atom tup.t_g ]
  | Some v ->
      Sexp.list
        [
          Sexp.atom tup.t_g;
          Sexp.atom v.v_key;
          Cast_io.expr_to_sexp v.v_tree;
          Sexp.atom v.v_value;
          Sexp.atom (string_of_int v.v_depth);
        ]

let tuple_of_sexp = function
  | Sexp.List [ Sexp.Atom g ] -> { t_g = g; t_v = None }
  | Sexp.List [ Sexp.Atom g; Sexp.Atom v_key; tree; Sexp.Atom v_value; Sexp.Atom d ] ->
      {
        t_g = g;
        t_v =
          Some
            {
              v_key;
              v_tree = Cast_io.expr_of_sexp tree;
              v_value;
              v_depth = int_of_string d;
            };
      }
  | other -> raise (Sexp.Decode_error ("bad tuple " ^ Sexp.to_string other))

let edge_to_sexp e =
  Sexp.list
    [
      Sexp.atom (match e.e_kind with Transition -> "t" | Add -> "a");
      tuple_to_sexp e.e_src;
      tuple_to_sexp e.e_dst;
    ]

let edge_of_sexp = function
  | Sexp.List [ Sexp.Atom kind; src; dst ] ->
      {
        e_src = tuple_of_sexp src;
        e_dst = tuple_of_sexp dst;
        e_kind =
          (match kind with
          | "t" -> Transition
          | "a" -> Add
          | k -> raise (Sexp.Decode_error ("bad edge kind " ^ k)));
      }
  | other -> raise (Sexp.Decode_error ("bad edge " ^ Sexp.to_string other))

let to_sexp t =
  Sexp.list
    [
      Sexp.atom "sum";
      Sexp.list (List.map edge_to_sexp (edges t));
      Sexp.list (List.map Sexp.atom (srcs_list t));
    ]

let of_sexp = function
  | Sexp.List [ Sexp.Atom "sum"; Sexp.List edges; Sexp.List srcs ] ->
      let t = create () in
      List.iter (fun e -> ignore (add_edge t (edge_of_sexp e))) edges;
      List.iter
        (function
          | Sexp.Atom k -> add_src_key t k
          | _ -> raise (Sexp.Decode_error "bad src key"))
        srcs;
      t
  | other -> raise (Sexp.Decode_error ("bad summary " ^ Sexp.to_string other))

(* --- binary (de)serialisation, the store's hot path -------------------
   Mirrors the sexp form content for content (edges in insertion order,
   sorted rendered src keys), so replaying a binary entry reconstructs
   the exact summary a sexp entry would — and so the serialized bytes
   are a deterministic function of the summary's content, which is what
   lets the engine use them as the cutoff content hash. *)

let tuple_to_bin b tup =
  match tup.t_v with
  | None ->
      Wire.u8 b 0;
      Wire.string b tup.t_g
  | Some v ->
      Wire.u8 b 1;
      Wire.string b tup.t_g;
      Wire.string b v.v_key;
      Cast_io.expr_to_bin b v.v_tree;
      Wire.string b v.v_value;
      Wire.int b v.v_depth

let tuple_of_bin r =
  match Wire.ru8 r with
  | 0 -> { t_g = Wire.rstring r; t_v = None }
  | 1 ->
      let t_g = Wire.rstring r in
      let v_key = Wire.rstring r in
      let v_tree = Cast_io.expr_of_bin r in
      let v_value = Wire.rstring r in
      let v_depth = Wire.rint r in
      { t_g; t_v = Some { v_key; v_tree; v_value; v_depth } }
  | n -> raise (Wire.Corrupt (Printf.sprintf "bad tuple tag %d" n))

let edge_to_bin b e =
  Wire.u8 b (match e.e_kind with Transition -> 0 | Add -> 1);
  tuple_to_bin b e.e_src;
  tuple_to_bin b e.e_dst

let edge_of_bin r =
  let e_kind =
    match Wire.ru8 r with
    | 0 -> Transition
    | 1 -> Add
    | n -> raise (Wire.Corrupt (Printf.sprintf "bad edge kind %d" n))
  in
  let e_src = tuple_of_bin r in
  let e_dst = tuple_of_bin r in
  { e_src; e_dst; e_kind }

let to_bin b t =
  Wire.int b t.elen;
  iter_edges (edge_to_bin b) t;
  Wire.list b Wire.string (srcs_list t)

let of_bin r =
  let t = create () in
  let n = Wire.rint r in
  if n < 0 then raise (Wire.Corrupt "bad edge count");
  for _ = 1 to n do
    ignore (add_edge t (edge_of_bin r))
  done;
  List.iter (add_src_key t) (Wire.rlist r Wire.rstring);
  t

let pp ppf t =
  let es = edges t in
  let interesting = List.filter (fun e -> not (is_global_only e)) es in
  let shown = if interesting = [] then es else interesting in
  match shown with
  | [] -> Format.pp_print_string ppf "(empty)"
  | es ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
        pp_edge ppf es
