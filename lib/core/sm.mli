(** The state-machine abstraction (Sections 2–3).

    An extension defines one global state variable and optionally one
    variable-specific state variable. The global variable has exactly one
    instance; the variable-specific one has an instance per tracked program
    object, so the number of SMs grows and shrinks during analysis. An SM
    state is the pair (global value, one variable-specific instance) — the
    state tuple of Section 5.2 ({!Summary.tuple}).

    Extensions written directly in OCaml construct {!t} values through this
    module; metal sources compile to the same representation
    ({!Metal_compile}). *)

type value = string

val stop_value : value
(** The sink state: "when an instance is assigned the value stop, the state
    machine tracking that instance is removed". *)

type instance = {
  target : Cast.expr;  (** the program object carrying the state *)
  target_id : int;
      (** hash-consed id of [target] ({!Exprid}): the integer identity
          every instance lookup, seen-tuple probe and summary key
          compares; id equality is exactly rendered-key equality *)
  mutable value : value;
  mutable data : (string * string) list;
      (** extension-defined data value (Section 3.1): arbitrary fields the
          extension manipulates inside actions *)
  mutable int_data : (string * int) list;  (** numeric data, e.g. lock depth *)
  created_at : int;  (** eid of the creating node: an instance cannot
          trigger a transition where it was created *)
  created_loc : Srcloc.t;
  created_depth : int;  (** call depth at creation, for ranking *)
  mutable conditionals : int;  (** branches crossed while alive, for ranking *)
  mutable syn_chain : int;  (** synonym assignment-chain length *)
  mutable syn_group : int;
      (** synonym set id (0 = none): "state changes in one are mirrored in
          the other" *)
  mutable inactive : bool;  (** file-scope object temporarily out of scope *)
}

(** Where a transition may go. *)
type dest =
  | To_var of value  (** v.state — creates the instance when fired from a
          global-state source *)
  | To_stop
  | To_global of value
  | On_branch of dest * dest  (** path-specific: true-path dest, false-path dest *)
  | Same  (** action-only transition *)

type source = Src_global of value | Src_var of value

(** A pending path-specific transition: matched at a condition (or at a call
    whose result was stored in a variable) and resolved when the branch is
    taken. *)
type pending = {
  p_node : Cast.expr;  (** the matched node (condition root or call) *)
  mutable p_on_var : string option;
      (** if the matched call's result was assigned, the variable to watch *)
  p_true : dest;
  p_false : dest;
  p_inst_id : int option;
      (** triggering instance's [target_id], if var-sourced *)
  p_bindings : Pattern.bindings;
  p_action : (actx -> unit) option;
}

and actx = {
  a_node : Cast.expr option;
  a_loc : Srcloc.t;
  a_bindings : Pattern.bindings;
  a_inst : instance option;  (** the triggering instance *)
  a_sm : sm_inst;
  a_func : string;
  a_depth : int;
  a_typing : Ctyping.env;
  a_report :
    ?annotations:string list -> ?rule:string -> ?var:Cast.expr -> string -> unit;
      (** emit an error report; location/ranking fields are filled from the
          engine context and triggering instance *)
  a_count : [ `Example | `Counterexample ] -> string -> unit;
      (** statistical counters per rule (Sections 3.2, 9) *)
  a_annotate : Cast.expr -> string -> unit;
      (** attach an annotation to an AST node (composition) *)
  a_kill_path : unit -> unit;
      (** stop traversing the current path (the path-kill idiom) *)
}

and action = actx -> unit

and transition = {
  tr_source : source;
  tr_pattern : Pattern.t;
  tr_dest : dest;
  tr_action : action option;
}

and t = {
  sm_name : string;
  start_state : value;  (** initial global state *)
  svar : string option;  (** name of the [state decl] hole variable *)
  holes : (string * Holes.t) list;  (** all [decl]/[state decl] holes *)
  transitions : transition list;
  auto_kill : bool;  (** kill-on-redefinition runs unless the checker
          requests otherwise (Section 8) *)
  track_synonyms : bool;
  byval_restore : bool;
      (** Table 2, row 1: restore the actual's state by value (unchanged)
          instead of by reference *)
}

and sm_inst = {
  ext : t;
  mutable gstate : value;
  mutable actives : instance list;
  mutable pendings : pending list;
  mutable killed_path : bool;
}

val make :
  name:string ->
  ?start:value ->
  ?svar:string ->
  ?holes:(string * Holes.t) list ->
  ?auto_kill:bool ->
  ?track_synonyms:bool ->
  ?byval_restore:bool ->
  transition list ->
  t

val initial : t -> sm_inst
(** The initial state: global instance at [start_state], no tracked
    objects (the [<>] placeholder is implicit). *)

val clone : sm_inst -> sm_inst
val clone_instance : instance -> instance

val clone_pendings : pending list -> pending list
(** Copy a pending list so mutations on one path don't leak into another;
    shared by [clone] and the engine's summary-replay partitioning. *)

val fresh_syn_group : unit -> int
(** Deep copy — "modifications ... are private to each path: mutations
    revert when the extension backtracks" is implemented by cloning at
    split points. *)

val new_instance :
  ?data:(string * string) list ->
  ?syn_chain:int ->
  ids:Exprid.ctx ->
  target:Cast.expr ->
  value:value ->
  created_at:int ->
  created_loc:Srcloc.t ->
  created_depth:int ->
  unit ->
  instance

val retargeted : ?value:value -> ids:Exprid.ctx -> instance -> target:Cast.expr -> instance
(** A copy of the instance re-attached to [target] (fresh [target_id]
    resolved under [ids]), optionally with a new value. The only safe way
    to change an instance's target: a record [with] update would carry
    the old target's id over to the new tree. *)

val instance_key : Exprid.ctx -> instance -> string
(** The rendered key of the instance's target: a shared-string table read
    for ids known to [ids], a direct rendering for an instance seeded
    from another context. *)

val find_instance : sm_inst -> id:int -> instance option
(** Active (non-inactive) instance attached to the object with this
    hash-consed id. *)

val add_instance : sm_inst -> instance -> unit
(** Replaces any existing instance on the same object. *)

val remove_instance : sm_inst -> instance -> unit

val get_int : instance -> string -> int
(** Numeric data field, defaulting to 0. *)

val set_int : instance -> string -> int -> unit

val get_data : instance -> string -> string option
val set_data : instance -> string -> string -> unit

val pp_dest : Format.formatter -> dest -> unit
val pp_inst : Format.formatter -> sm_inst -> unit
