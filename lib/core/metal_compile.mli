(** Compile parsed metal definitions to executable extensions.

    The action mini-language plays the role of the paper's "C code actions":
    arbitrary computation at transition time. Statements are calls, executed
    in order:

    - [err(fmt, args...)] — report an error; [%s] placeholders consume the
      evaluated arguments (e.g. [mc_identifier(v)]);
    - [annotate("SECURITY")] — tag subsequent reports in this block
      (checker-specific ranking, Section 9);
    - [set_rule(expr)] — rule key for statistical ranking / grouping;
    - [example(expr)] / [counterexample(expr)] — statistical counters
      (rule inference, Sections 3.2 and 9);
    - [example_in_func()] / [counterexample_in_func()] / [set_rule_to_func()]
      — counters keyed by the enclosing function ("Ranking code",
      Section 9);
    - [annotate_ast(hole, "tag")] — AST annotation for extension
      composition (Section 3.2);
    - [kill_path()] — stop traversing the current path (path-kill);
    - [set_global("state")] — update the global instance directly
      (Section 3.1);
    - [incr("field")] / [decr("field")] / [set("field", n)] — the
      triggering instance's numeric data value (Section 3.1, e.g. recursive
      lock depth);
    - [err_if_over("field", limit, fmt)] / [err_if_under("field", limit,
      fmt)] — report when a data field crosses a bound;
    - any registered {!Callout} name — escape to OCaml code.

    Complex escapes beyond this are written against the OCaml API directly
    ({!Sm.make} with closure actions). *)

exception Compile_error of Srcloc.t * string

val compile : Metal_ast.t -> Sm.t

val load : file:string -> string -> Sm.t list
(** Parse and compile every [sm] in the text. *)

val load_file : string -> Sm.t list
