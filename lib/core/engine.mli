(** The xgcc analysis engine (Sections 5, 6, 8).

    Applies metal extensions to a program's supergraph with:

    - a depth-first, execution-order traversal of each function's CFG, one
      path at a time, with per-path (clone-on-branch) extension state;
    - block-level state-tuple caching: a path is aborted as soon as every
      tuple of the current extension state has already been seen at the
      block (Section 5.2–5.3);
    - block summaries (transition + add edges), suffix summaries computed by
      the backward [relax] pass (Figure 6), and function summaries (the
      entry block's suffix summary) that memoise whole-function effects
      (Section 6.2);
    - a top-down interprocedural traversal from callgraph roots with
      refine/restore at call boundaries (Section 6.1, Table 2) and
      summary-driven continuation after calls (Section 6.3);
    - transparent false-positive suppression: kill-on-redefinition,
      synonyms, and false-path pruning via {!Store} (Section 8). *)

type options = {
  caching : bool;  (** block-level state caching (Section 5.2) *)
  pruning : bool;  (** false-path pruning (Section 8) *)
  interproc : bool;  (** follow calls to defined functions (Section 6) *)
  auto_kill : bool;  (** kill-on-redefinition (Section 8) *)
  synonyms : bool;  (** synonym tracking (Section 8) *)
  max_call_depth : int;
  max_instances : int;  (** cap on simultaneously tracked objects per SM *)
  dispatch : bool;
      (** head-constructor transition indexing and block skip sets
          ({!Dispatch}). Purely an execution strategy: reports are
          byte-identical either way, so the flag is deliberately {e not}
          part of {!options_digest}. Default on; [--no-dispatch-index]
          turns it off for A/B comparison. *)
  flatten : bool;
      (** serve block events from the supergraph's prebuilt flat tables
          ({!Flat}) instead of rebuilding per-context event lists. Like
          [dispatch], purely an execution strategy — reports are
          byte-identical either way and the flag is {e not} part of
          {!options_digest}, so warm caches replay across modes. Default
          on; [--no-flat] turns it off for A/B comparison. *)
  state_ids : bool;
      (** resolve tracked-object identity through the supergraph's
          hash-cons table ({!Exprid}): instance lookups, seen-tuple probes
          and summary keys compare dense int ids and keys render at most
          once per distinct expression per root. Off, every probe renders
          the key string and resolves it through the same id space — the
          A/B allocation baseline. Like [flatten]/[dispatch], purely a
          representation switch: reports are byte-identical either way and
          the flag is {e not} part of {!options_digest}, so warm caches
          replay across modes. Default on; [--no-state-ids] turns it off. *)
  max_nodes_per_root : int;
      (** per-root fuel: nodes visited plus instances created before the
          root is abandoned as {!degraded}. [0] (the default) means
          unlimited. Part of {!options_digest} — a budget changes what
          the analysis can report. *)
  timeout_per_root : float;
      (** per-root wall-clock deadline in seconds; [0.] (the default)
          means none. Inherently nondeterministic — meant as a production
          backstop, while [max_nodes_per_root] gives reproducible
          containment. Part of {!options_digest}. *)
}

val default_options : options

type stats = {
  mutable blocks_visited : int;
  mutable nodes_visited : int;
  mutable cache_hits : int;
  mutable paths_explored : int;
  mutable calls_followed : int;
  mutable summary_hits : int;
  mutable pruned_branches : int;
  mutable transitions_fired : int;
  mutable instances_created : int;
  mutable functions_traversed : int;
      (** distinct functions the traversal entered (coverage) *)
  mutable cache_probes : int;
      (** block-cache and summary-cache membership tests, each an interned
          integer lookup; [cache_hits / cache_probes] is the hit rate *)
  mutable intern_atoms : int;
  mutable intern_tuples : int;
      (** final intern-table sizes ({!Intern}), summed over root contexts.
          The three counters above are process-local observability: they
          are not persisted in the summary store, so roots replayed from a
          warm cache contribute 0. *)
  mutable match_attempts : int;
      (** [Pattern.match_event] calls made by the transition loops — the
          quantity the dispatch index exists to reduce *)
  mutable index_hits : int;
      (** node events whose head-index candidate list was strictly
          narrower than the extension's full node-matching list *)
  mutable blocks_skipped : int;
      (** block visits proven dead by the skip set, so the transition
          loops never ran for their nodes. Like the intern counters,
          these three are process-local: not persisted in the summary
          store, 0 for cache-replayed roots. *)
  mutable shared_published : int;
      (** parallel scheduler only ([jobs > 1]): shared summary units —
          pure-entry callees — computed once in a scratch context and
          published to the fleet-wide store *)
  mutable shared_replayed : int;
      (** publications replayed into demanding roots' contexts (each
          replay stands in for a traversal the old chunked mode would
          have re-run) *)
  mutable shared_recomputed : int;
      (** duplicate publications dropped first-writer-wins — the "a
          shared unit was computed more than once" tripwire. Structurally
          0: the store's claim protocol prevents double computation. *)
  mutable sched_steals : int;
      (** root tasks a worker stole from another worker's deque *)
  mutable sched_waits : int;
      (** unit acquisitions that blocked on a claim another worker held.
          Steals and waits are timing noise and may differ between runs;
          [shared_published]/[shared_replayed]/[shared_recomputed] are
          deterministic for a given program, extension and option set. *)
}

type degraded = { d_root : string; d_reason : string }
(** A callgraph root the engine abandoned: it exhausted its analysis
    budget ({!options.max_nodes_per_root} / {!options.timeout_per_root})
    or its traversal raised. Containment is per root: a degraded root
    contributes {e nothing} — no reports, counters, annotations, cached
    entries or function summaries (a truncated summary would be trusted
    as complete, suppressing the re-traversals that report) — and every
    other root's output is byte-identical to a run without it, at any
    [jobs]. *)

type result = {
  reports : Report.t list;
  counters : (string * int * int) list;
      (** rule -> (examples, counterexamples), from [a_count] actions *)
  stats : stats;
  degraded : degraded list;
      (** roots abandoned by fault containment, in root order; empty on a
          healthy run *)
}

val analysis_version : string
(** Semantic version stamp of the engine and builtin checkers, bumped on
    any change that can alter analysis output. {!options_digest} folds it
    into every persistent cache key so results computed by an older build
    are orphaned rather than silently replayed (the store's format
    version only guards the entry encoding, not the semantics). *)

val options_digest : options -> string
(** Stable textual digest of the options, prefixed with
    {!analysis_version} and folded into persistent cache keys (an option
    or engine-semantics change must invalidate cached results). *)

val run :
  ?options:options ->
  ?jobs:int ->
  ?cache:Summary_store.t ->
  Supergraph.t ->
  Sm.t list ->
  result
(** Apply each extension in turn (composition order: earlier extensions'
    AST annotations are visible to later ones), starting from every
    callgraph root.

    [jobs] (default 1) is the number of worker domains. With [jobs = 1]
    the engine runs exactly as before — one root context shared by every
    root, function summaries reused across roots. With [jobs > 1] each
    callgraph root is an individual task on a work-stealing scheduler
    ({!Pool.run_sched}), dispatched bottom-up by acyclic callgraph height
    and analysed in a private root context over the shared supergraph.
    Callees entered with no active instances (characterized by name and
    inbound global state alone) are {e shared summary units}: computed
    exactly once fleet-wide in a scratch context, published to a
    publish-once store, and replayed into every demanding root — the hot
    shared callee that static chunking re-analysed once per chunk is paid
    for once, at any [-j] ([stats.shared_recomputed] asserts this).
    Results are merged deterministically in root order (reports
    re-deduplicated by their identity key, counters and stats summed,
    each shared unit's accounting folded in exactly once), so the reports
    are byte-identical to the sequential run and independent of
    scheduling. Unit sharing requires [caching] on and per-root timeouts
    off ([timeout_per_root = 0.], wall-clock deadlines being inherently
    timing-dependent); node budgets compose with sharing — a replayed
    unit (plus its not-yet-demanded transitive deps) is charged to the
    demanding root's fuel exactly as a private traversal of the callee
    would have been, so [max_nodes_per_root] no longer disables the
    shared store and [shared_recomputed] stays 0 under budgets.
    Annotations still compose across extensions (merged between extension
    runs); annotations made during one root's traversal are not visible to
    {e other roots of the same extension} in parallel mode.

    [cache] switches to persistent incremental execution on top of the
    same per-root model: roots whose transitive-callee closure hash
    matches a stored entry are replayed verbatim from the store, the rest
    are recomputed on the pool ([jobs] applies to them) and written back
    (unless the store is read-only). Reports stay byte-identical to an
    uncached run at any [jobs]. Per-function summaries are persisted as
    the invalidation ledger — a leaf edit flips exactly the leaf and its
    transitive callers to stale — with hit/stale/absent counts in the
    store's stats. *)

val run_function :
  ?options:options -> Supergraph.t -> Sm.sm_inst -> fname:string -> result
(** Analyse a single function starting from the given extension state — the
    entry point the exhaustive bottom-up baseline ({!Baseline}) uses to
    charge one run per possible entry state. *)

val check_source : ?options:options -> file:string -> string -> Sm.t list -> result
(** Convenience: parse one translation unit from text, build the supergraph,
    run. *)

val check_files : ?options:options -> string list -> Sm.t list -> result
(** Parse the given C files into one program and run. *)

(** {1 Introspection} (used by the Figure 5 reproduction and the CLI) *)

type summaries := (string, Summary.t array * Summary.t array) Hashtbl.t
(** function name -> (block summaries, suffix summaries), indexed by block
    id. *)

val run_with_summaries :
  ?options:options -> Supergraph.t -> Sm.t list -> result * (string * summaries) list
(** Like {!run} (sequential), also returning each extension's summary
    tables, keyed by extension name in run order (Figure 5 material).
    Summaries are per-extension: running two extensions returns two
    entries, not just the last extension's tables. *)
