(** Surface syntax of metal (Sections 2–4), as parsed.

    The concrete grammar follows the paper's figures:

    {v
    sm free_checker {
      state decl any_pointer v;
      decl any_expr x;

      start:
        { kfree(v) } ==> v.freed
      ;
      v.freed:
        { *v }      ==> v.stop, { err("using %s after free!", mc_identifier(v)); }
      | { kfree(v) } ==> v.stop, { err("double free of %s!", mc_identifier(v)); }
      ;
    }
    v}

    Path-specific destinations are written
    [{ true = l.locked, false = l.stop }] (Figure 3), callouts [${ ... }],
    and the end-of-path pattern [$end_of_path$]. *)

type decl = {
  d_state : bool;  (** declared with [state decl] *)
  d_hole : Holes.t;
  d_names : string list;
}

type dest =
  | Dvar of string * string  (** [v.freed]; [v.stop] maps to the sink *)
  | Dglobal of string  (** bare state name: global-state destination *)
  | Dbranch of dest * dest  (** [{ true = d, false = d }] *)
  | Dnone  (** action-only rule *)

type action_stmt = { ac_name : string; ac_args : Cast.expr list; ac_loc : Srcloc.t }

type rule = {
  r_pattern : Pattern.t;
  r_dest : dest;
  r_actions : action_stmt list;
  r_loc : Srcloc.t;
}

type source = Sglobal of string | Svar of string * string

type clause = { c_source : source; c_rules : rule list }

type t = {
  sm_name : string;
  sm_decls : decl list;
  sm_clauses : clause list;
  sm_options : string list;  (** [option no_auto_kill;] etc. *)
  sm_loc : Srcloc.t;
}

val svar_of : t -> string option
(** The (single) [state decl] hole name, if any. *)

val holes_of : t -> (string * Holes.t) list
