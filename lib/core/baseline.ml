module Sset = Set.Make (String)

let state_values (ext : Sm.t) =
  let rec dest_values acc = function
    | Sm.To_var v -> Sset.add v acc
    | Sm.On_branch (a, b) -> dest_values (dest_values acc a) b
    | Sm.To_stop | Sm.To_global _ | Sm.Same -> acc
  in
  let acc =
    List.fold_left
      (fun acc (tr : Sm.transition) ->
        let acc = dest_values acc tr.tr_dest in
        match tr.tr_source with Sm.Src_var v -> Sset.add v acc | Sm.Src_global _ -> acc)
      Sset.empty ext.transitions
  in
  Sset.elements acc

let global_values (ext : Sm.t) =
  let rec dest_values acc = function
    | Sm.To_global g -> Sset.add g acc
    | Sm.On_branch (a, b) -> dest_values (dest_values acc a) b
    | Sm.To_var _ | Sm.To_stop | Sm.Same -> acc
  in
  let acc =
    List.fold_left
      (fun acc (tr : Sm.transition) ->
        let acc = dest_values acc tr.tr_dest in
        match tr.tr_source with
        | Sm.Src_global g -> Sset.add g acc
        | Sm.Src_var _ -> acc)
      (Sset.singleton ext.start_state)
      ext.transitions
  in
  Sset.elements acc

let pointer_params (typing : Ctyping.env) (f : Cast.fundef) =
  List.filter
    (fun (_, t) -> Ctyp.is_pointer (Ctyping.resolve typing t) || Ctyp.is_pointer t)
    f.fparams

let exhaustive_entry_states (sg : Supergraph.t) (ext : Sm.t) =
  let g = max 1 (List.length (global_values ext)) in
  let v = List.length (state_values ext) in
  List.fold_left
    (fun acc (f : Cast.fundef) ->
      let params = List.length (pointer_params sg.Supergraph.typing f) in
      let rec pow b n = if n = 0 then 1 else b * pow b (n - 1) in
      acc + (g * pow (v + 1) params))
    0
    (Ctyping.fundefs sg.Supergraph.typing)

let topdown_entry_states (sg : Supergraph.t) (ext : Sm.t) =
  (* run once and count distinct tuples at each function's entry block *)
  let _result, per_ext = Engine.run_with_summaries sg [ ext ] in
  let summaries =
    match per_ext with [ (_, s) ] -> s | _ -> assert false
  in
  Hashtbl.fold
    (fun fname (bs, _sfx) acc ->
      match Supergraph.cfg_of sg fname with
      | None -> acc
      | Some cfg -> acc + Summary.srcs_count bs.(cfg.Cfg.entry))
    summaries 0

let run_exhaustive (sg : Supergraph.t) (ext : Sm.t) =
  let options = { Engine.default_options with Engine.interproc = false } in
  (* param idents are in the supergraph's hash-cons base table, so seeded
     instances carry the same ids the engine's own contexts resolve *)
  let ids = Exprid.make_ctx sg.Supergraph.ids in
  let gvals = global_values ext in
  let svals = state_values ext in
  let runs = ref 0 in
  List.iter
    (fun (f : Cast.fundef) ->
      let params = pointer_params sg.Supergraph.typing f in
      (* enumerate assignments of (no state | each state value) to params *)
      let rec assignments = function
        | [] -> [ [] ]
        | (pname, _) :: rest ->
            let tails = assignments rest in
            List.concat_map
              (fun tail ->
                (None :: List.map (fun v -> Some (pname, v)) svals)
                |> List.map (fun choice ->
                       match choice with None -> tail | Some b -> b :: tail))
              tails
      in
      List.iter
        (fun g ->
          List.iter
            (fun assignment ->
              incr runs;
              let seeded =
                let sm = Sm.initial ext in
                sm.Sm.gstate <- g;
                List.iter
                  (fun (pname, v) ->
                    Sm.add_instance sm
                      (Sm.new_instance ~ids ~target:(Cast.ident pname) ~value:v
                         ~created_at:(-1) ~created_loc:f.floc ~created_depth:0 ()))
                  assignment;
                sm
              in
              ignore (Engine.run_function ~options sg seeded ~fname:f.fname))
            (assignments params))
        gvals)
    (Ctyping.fundefs sg.Supergraph.typing);
  !runs
